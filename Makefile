# Development targets for the tbtso reproduction.

GO ?= go

.PHONY: all build vet lint verify test race check bench bench-guard bench-compare bench-sim mc-bench sim-bench fuzz-smoke obs-smoke obs-report interrupt-smoke figures figures-quick demos clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static checks: go vet plus the repository's own fence-discipline and
# shared-memory-escape analyzer (see docs/ANALYSIS.md).
lint: vet
	$(GO) run ./cmd/tbtso-lint ./...

# Δ-bound certification: extract the //tbtso:verify-annotated protocol
# pairs, model-check them across the Δ sweep, and diff the verdicts
# against the committed certificates in certs/ (see docs/VERIFY.md).
# After an intended protocol change: go run ./cmd/tbtso-verify -update
verify:
	$(GO) run ./cmd/tbtso-verify ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# The full gate: everything CI runs.
check: build lint test race verify

# testing.B versions of every figure + micro/ablation benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Compile-rot guard: build and link every benchmark and run each once.
# Benchmarks are not compiled by `go test` runs, so without this a
# refactor can silently break them.
bench-guard:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Figure-JSON regression gates: diff the committed baselines against
# themselves (structure/codec sanity). Against a fresh run:
#   go run ./cmd/tbtso-bench -figure mc -json > new.json
#   go run ./cmd/tbtso-bench -compare BENCH_mc.json new.json
# (same for -figure sim and BENCH_sim.json)
bench-compare:
	$(GO) run ./cmd/tbtso-bench -compare BENCH_mc.json BENCH_mc.json
	$(GO) run ./cmd/tbtso-bench -compare BENCH_sim.json BENCH_sim.json

# Regenerate the simulator-throughput baseline (engine speedup + fuzz
# worker scaling; docs/PERF.md).
bench-sim:
	$(GO) run ./cmd/tbtso-bench -figure sim -json > BENCH_sim.json
	$(GO) run ./cmd/tbtso-bench -compare BENCH_sim.json BENCH_sim.json

# Observability smoke: a short monitored litmus sweep with the live ops
# endpoint up (the Prometheus scrape must show zero Δ-residency
# violations), then a monitored fuzz campaign with /coverage scraped
# mid-flight and its artifacts aggregated by tbtso-obs
# (docs/OBSERVABILITY.md). CI runs the same sequence.
obs-smoke:
	./scripts/obs-smoke.sh

# Aggregation smoke: two short campaigns merged by tbtso-obs into one
# report — totals must cover both runs, and the report must -compare
# clean against its own bytes (docs/OBSERVABILITY.md).
obs-report:
	./scripts/obs-report.sh

# Interruption smoke: SIGINT a live checkpointed fuzz campaign and a
# lingering ops endpoint; graceful drain, resumable checkpoint,
# byte-identical resume, cancellable linger (docs/ROBUSTNESS.md). CI
# runs the same sequence.
interrupt-smoke:
	./scripts/interrupt-smoke.sh

# Model-checker explorer smoke benchmarks: one iteration of each
# engine/program/Δ cell (sequential vs parallel vs reductions-off).
# The committed baseline is BENCH_mc.json (tbtso-bench -figure mc -json).
mc-bench:
	$(GO) test -run '^$$' -bench BenchmarkExplore -benchtime=1x ./internal/mc

# Machine execution-engine smoke benchmarks: the sim figure's cells as
# testing.B benches (direct vs goroutine engine, campaign workers).
# The committed baseline is BENCH_sim.json (tbtso-bench -figure sim -json).
sim-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkCampaignWorkers' -benchtime=1x ./internal/bench

# Differential-fuzzing smoke: short seeded runs of the native fuzz
# targets (machine-vs-checker containment, state-encoding round trip)
# plus the planted negative controls end to end (docs/FUZZ.md). A real
# campaign: go test -fuzz=FuzzMachineVsChecker ./internal/fuzz, or
# go run ./cmd/tbtso-fuzz -n 10000 -deltas 0,1,3,inf.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMachineVsChecker -fuzztime 10s ./internal/fuzz
	$(GO) test -run '^$$' -fuzz FuzzEncodeRoundTrip -fuzztime 10s ./internal/mc
	$(GO) run ./cmd/tbtso-fuzz -plant

# Regenerate every figure of the paper's evaluation (plus the §6.1
# bail-out validation and the §4.2.1 sizing numbers).
figures:
	$(GO) run ./cmd/tbtso-bench -figure all

figures-quick:
	$(GO) run ./cmd/tbtso-bench -figure all -quick

# Extension experiments: thread scaling and the passive RW lock.
extensions:
	$(GO) run ./cmd/tbtso-bench -figure scaling,rwlock

# The soundness demonstrations.
demos:
	$(GO) run ./cmd/tbtso-sim -demo reclaim
	$(GO) run ./cmd/tbtso-sim -demo deque
	$(GO) run ./cmd/tbtso-sim -exhaustive

clean:
	$(GO) clean ./...
