// Quickstart: a concurrent hash table protected by fence-free hazard
// pointers (FFHP), the paper's §4 contribution.
//
//	go run ./examples/quickstart
//
// Four goroutines hammer a shared table with lookups, inserts and
// removes. Removed nodes go through FFHP's Δ-deferred reclamation into
// the unmanaged arena; at the end the example prints reclamation
// statistics and verifies the arena saw no use-after-free.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/hashtable"
	"tbtso/internal/list"
	"tbtso/internal/smr"
)

func main() {
	const (
		workers  = 4
		universe = 4096
		ops      = 200_000
	)

	// The arena is the unmanaged node pool: freed nodes are really
	// reused, so reclamation bugs would be detected, not hidden by the
	// garbage collector.
	ar := arena.New(universe+workers*1200, workers+1)

	// FFHP with the paper's parameters: K=3 hazard pointers per thread
	// (what Michael's list needs), retirement threshold R, and the
	// TBTSO visibility bound Δ.
	ffhp := smr.NewFFHP(smr.Config{
		Threads: workers,
		K:       list.NumSlots,
		R:       1024,
		Arena:   ar,
		Delta:   500 * time.Microsecond, // the paper's hardware-TBTSO Δ
	})
	defer ffhp.Close()

	table := hashtable.New(ar, ffhp, 1024)

	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer ffhp.Flush(tid) // reclaim leftovers on the way out
			key := uint64(tid)
			for i := 0; i < ops; i++ {
				key = key*2862933555777941757 + 3037000493 // cheap LCG
				k := key % universe
				switch i % 4 {
				case 0:
					if _, err := table.Insert(tid, k); err != nil {
						log.Fatalf("insert: %v", err)
					}
				case 1:
					table.Remove(tid, k)
				default:
					table.Lookup(tid, k) // fence-free fast path
				}
			}
		}(tid)
	}
	wg.Wait()

	fmt.Printf("table size:        %d keys\n", table.Len())
	fmt.Printf("nodes allocated:   %d\n", ar.Allocs())
	fmt.Printf("nodes freed:       %d\n", ar.Frees())
	fmt.Printf("awaiting Δ:        %d retired nodes\n", ffhp.Unreclaimed())
	for tid := 0; tid < workers; tid++ {
		scans, loops, frees := ffhp.Scans(tid)
		fmt.Printf("worker %d:          %d reclaim scans, %d retire-loop passes, %d frees\n",
			tid, scans, loops, frees)
	}
	if v := ar.Violations(); v != 0 {
		log.Fatalf("MEMORY SAFETY VIOLATIONS: %d (first: %v)", v, ar.FirstViolation())
	}
	fmt.Println("no use-after-free detected — FFHP reclaimed safely without fast-path fences")
}
