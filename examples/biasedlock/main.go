// Biased locking example: a logging pipeline whose hot thread owns the
// log's lock, with a rare control-plane thread occasionally rotating
// the log — the asymmetric workload §5 targets.
//
//	go run ./examples/biasedlock
//
// The example runs the same scenario over the fence-free biased lock
// (FFBL, with echoing), the safe-point biased lock, and a plain mutex,
// then repeats it with the owner stalling mid-run to show FFBL's
// bounded non-owner wait versus the safe-point lock's blocking.
package main

import (
	"fmt"
	"sync"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/lock"
)

// logState is the shared state both threads mutate under the lock.
type logState struct {
	lines     int
	rotations int
}

func run(lk lock.BiasedLock, ownerStall time.Duration) (ownerOps, rotations int, rotateWait time.Duration) {
	var st logState
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Owner: the hot logging thread.
	wg.Add(1)
	go func() {
		defer wg.Done()
		stalled := false
		for {
			select {
			case <-stop:
				// Keep the safe-point lock serviceable while the
				// control plane finishes (its documented contract).
				if sp, ok := lk.(*lock.SafePointBiased); ok {
					for i := 0; i < 1000; i++ {
						sp.SafePoint()
						time.Sleep(100 * time.Microsecond)
					}
				}
				return
			default:
			}
			if ownerStall > 0 && !stalled && st.lines > 5000 {
				time.Sleep(ownerStall) // "scheduled out"
				stalled = true
			}
			lk.OwnerLock()
			st.lines++
			lk.OwnerUnlock()
		}
	}()

	// Control plane: rotates the log a few times, measuring how long
	// each acquisition takes.
	start := time.Now()
	var maxWait time.Duration
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		t0 := time.Now()
		lk.OtherLock()
		if w := time.Since(t0); w > maxWait {
			maxWait = w
		}
		st.rotations++
		lk.OtherUnlock()
	}
	_ = start
	close(stop)
	wg.Wait()
	return st.lines, st.rotations, maxWait
}

func main() {
	delta := 500 * time.Microsecond
	locks := []func() lock.BiasedLock{
		func() lock.BiasedLock { return lock.NewFFBL(core.NewFixedDelta(delta), true) },
		func() lock.BiasedLock { return lock.NewSafePointBiased() },
		func() lock.BiasedLock { return lock.NewPthread() },
	}

	fmt.Println("scenario 1: owner logging continuously, 5 rare rotations")
	for _, mk := range locks {
		lk := mk()
		lines, rot, wait := run(lk, 0)
		fmt.Printf("  %-22s %9d log lines, %d rotations, max rotation wait %v\n",
			lk.Name(), lines, rot, wait.Round(time.Microsecond))
	}

	fmt.Println("\nscenario 2: owner stalls 100 ms mid-run (context switch)")
	fmt.Println("  (FFBL's non-owner waits at most ~Δ; the safe-point lock blocks for the stall)")
	for _, mk := range locks {
		lk := mk()
		lines, rot, wait := run(lk, 100*time.Millisecond)
		fmt.Printf("  %-22s %9d log lines, %d rotations, max rotation wait %v\n",
			lk.Name(), lines, rot, wait.Round(time.Microsecond))
	}
}
