// Reclamation example: Figure 7 in miniature. One reader stalls inside
// an operation (as a context switch would) while updaters churn the
// table; the example tracks each scheme's retired-but-unreclaimed
// memory and prints the peaks.
//
//	go run ./examples/reclamation
//
// Expected shape, per §7.1.2: FFHP and HP stay bounded by their
// retirement threshold (FFHP a bit above HP — it keeps the last Δ of
// retirements); RCU's waste grows with the stall, because a reader
// stalled inside a critical section blocks every grace period.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/hashtable"
	"tbtso/internal/list"
	"tbtso/internal/smr"
)

const (
	workers  = 4
	universe = 2048
	r        = 512
	runFor   = 300 * time.Millisecond
)

func measure(kind smr.Kind, stall time.Duration) (peakBytes uint64) {
	// Generous headroom: RCU's waste is bounded by grace-period
	// latency, not R, and growing during the stall is the point.
	ar := arena.New(universe+workers*(r+64)+40000, workers+1)
	s := smr.New(kind, smr.Config{
		Threads: workers, K: list.NumSlots, R: r, Arena: ar,
		Delta: 500 * time.Microsecond,
	})
	defer s.Close()
	table := hashtable.New(ar, s, 256)

	var stop atomic.Bool
	var peak atomic.Uint64
	var wg sync.WaitGroup

	// Sampler: tracks peak waste.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			w := uint64(s.Unreclaimed()) * arena.NodeBytes
			for {
				old := peak.Load()
				if w <= old || peak.CompareAndSwap(old, w) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Worker 0: a reader that stalls once, inside a lookup.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer flush(s, 0)
		stalled := stall == 0
		k := uint64(1)
		for !stop.Load() {
			k = k*6364136223846793005 + 1442695040888963407
			if !stalled {
				table.LookupStalled(0, k%universe, func() { time.Sleep(stall) })
				stalled = true
				continue
			}
			table.Lookup(0, k%universe)
		}
	}()

	// Workers 1..n: updaters generating garbage.
	for tid := 1; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer flush(s, tid)
			span := universe / workers
			lo := uint64(tid * span)
			for !stop.Load() {
				for k := lo; k < lo+uint64(span) && !stop.Load(); k++ {
					if _, err := table.Insert(tid, k); err != nil {
						time.Sleep(200 * time.Microsecond) // allocator pressure
					}
					if k%64 == 63 {
						runtime.Gosched()
					}
				}
				for k := lo; k < lo+uint64(span) && !stop.Load(); k++ {
					table.Remove(tid, k)
					if k%64 == 63 {
						runtime.Gosched()
					}
				}
			}
		}(tid)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	if v := ar.Violations(); v != 0 {
		panic(fmt.Sprintf("%s: %d memory-safety violations", kind, v))
	}
	return peak.Load()
}

func flush(s smr.Scheme, tid int) {
	s.Flush(tid)
	if rcu, ok := s.(*smr.RCU); ok {
		rcu.Offline(tid)
	}
}

func main() {
	fmt.Printf("peak retired-but-unreclaimed memory (R=%d nodes ≈ %d KiB/thread)\n\n", r, r*arena.NodeBytes/1024)
	fmt.Printf("%-12s %14s %14s %14s\n", "scheme", "no stall", "50ms stall", "150ms stall")
	for _, kind := range []smr.Kind{smr.KindFFHP, smr.KindHP, smr.KindRCU} {
		fmt.Printf("%-12s", kind)
		for _, stall := range []time.Duration{0, 50 * time.Millisecond, 150 * time.Millisecond} {
			peak := measure(kind, stall)
			fmt.Printf(" %11.1f KiB", float64(peak)/1024)
		}
		fmt.Println()
	}
	fmt.Println("\nFFHP/HP stay bounded by R; RCU grows with the stall (it cannot reclaim")
	fmt.Println("while any reader is inside an operation) — the §7.1.2 trade-off.")
}
