// Work-stealing example: a tiny task scheduler built on the TBTSO
// fence-free deque (the §8 application — nonblocking fence-free work
// stealing, which the spatially bounded TSO[S] cannot support).
//
//	go run ./examples/workstealing
//
// One producer/owner generates a tree of tasks into its deque and
// processes them LIFO with fence-free Push/Take; idle workers steal
// FIFO, paying the Δ wait only when they actually steal. The program
// checks that every task ran exactly once.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/deque"
)

const (
	totalTasks = 100_000
	stealers   = 3
)

func main() {
	d := deque.New(1<<14, core.NewFixedDelta(50*time.Microsecond))
	var executed sync.Map // task id -> *int32
	var nExecuted atomic.Int64
	runTask := func(id uint64) {
		c, _ := executed.LoadOrStore(id, new(int32))
		atomic.AddInt32(c.(*int32), 1)
		nExecuted.Add(1)
	}

	var ownerTook, stolen atomic.Int64
	var done atomic.Bool
	var wg sync.WaitGroup

	// Owner: produce tasks in bursts, process own work LIFO.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		next := uint64(1)
		for next <= totalTasks {
			for i := 0; i < 8 && next <= totalTasks; i++ {
				if d.Push(next) { // fence-free
					next++
				}
			}
			if id, ok := d.Take(); ok { // fence-free
				runTask(id)
				ownerTook.Add(1)
			}
		}
		for { // drain
			id, ok := d.Take()
			if !ok {
				if d.Size() == 0 {
					return
				}
				continue
			}
			runTask(id)
			ownerTook.Add(1)
		}
	}()

	// Stealers: idle workers that steal FIFO (each steal waits Δ).
	for s := 0; s < stealers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if id, ok := d.Steal(); ok {
					runTask(id)
					stolen.Add(1)
				}
			}
			for {
				id, ok := d.Steal()
				if !ok {
					return
				}
				runTask(id)
				stolen.Add(1)
			}
		}()
	}
	wg.Wait()
	for { // anything both sides gave up on
		id, ok := d.Take()
		if !ok {
			break
		}
		runTask(id)
		ownerTook.Add(1)
	}

	dups, lost := 0, 0
	for id := uint64(1); id <= totalTasks; id++ {
		c, ok := executed.Load(id)
		switch {
		case !ok:
			lost++
		case atomic.LoadInt32(c.(*int32)) != 1:
			dups++
		}
	}
	fmt.Printf("tasks executed:  %d\n", nExecuted.Load())
	fmt.Printf("  by the owner:  %d (LIFO, fence-free)\n", ownerTook.Load())
	fmt.Printf("  stolen:        %d (FIFO, Δ-waiting slow path)\n", stolen.Load())
	if dups != 0 || lost != 0 {
		fmt.Printf("BROKEN: %d duplicated, %d lost\n", dups, lost)
		return
	}
	fmt.Println("every task ran exactly once")
}
