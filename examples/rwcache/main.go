// Read-mostly cache example: a configuration snapshot read on every
// request and replaced rarely — the workload passive reader-writer
// locks target (Liu et al. [23], rebuilt here on the TBTSO bound; see
// §8 of the paper and internal/rwlock).
//
//	go run ./examples/rwcache
//
// Readers take the fence-free read lock around every lookup; a writer
// replaces the configuration a few times per second, paying the
// visibility bound per update. The example reports read throughput and
// verifies every reader always observed a consistent snapshot.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/rwlock"
)

// config is the guarded snapshot; Version and Checksum must agree.
type config struct {
	Version  uint64
	Endpoint string
	Checksum uint64 // Version*7, so torn reads are detectable
}

func main() {
	const (
		readers = 4
		runFor  = 500 * time.Millisecond
	)
	lk := rwlock.New(readers, core.NewFixedDelta(500*time.Microsecond))
	current := &config{Version: 1, Endpoint: "https://a.example", Checksum: 7}

	var reads, torn stats64
	var updates atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var n, bad uint64
			for !stop.Load() {
				lk.RLock(r) // fence-free fast path
				c := current
				if c.Checksum != c.Version*7 {
					bad++
				}
				lk.RUnlock(r)
				n++
			}
			reads.add(n)
			torn.add(bad)
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			time.Sleep(50 * time.Millisecond)
			v := updates.Add(1) + 1
			next := &config{Version: v, Endpoint: "https://b.example", Checksum: v * 7}
			lk.Lock() // waits out the bound, then for readers to drain
			current = next
			lk.Unlock()
		}
	}()

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("reads:           %d (%.1fM/s across %d readers)\n",
		reads.load(), float64(reads.load())/runFor.Seconds()/1e6, readers)
	fmt.Printf("config updates:  %d\n", updates.Load())
	if torn.load() != 0 {
		fmt.Printf("TORN SNAPSHOTS:  %d\n", torn.load())
		return
	}
	fmt.Println("every read saw a consistent snapshot — fence-free read side, Δ-waiting writer")
}

// stats64 is a tiny atomic accumulator.
type stats64 struct{ v atomic.Uint64 }

func (s *stats64) add(n uint64) { s.v.Add(n) }
func (s *stats64) load() uint64 { return s.v.Load() }
