// Litmus example: watch the memory model change as the Δ bound is
// tightened, on the executable TBTSO abstract machine of §2.
//
//	go run ./examples/litmus
//
// The program runs the store-buffering test and the paper's asymmetric
// flag principle (§3) over plain TSO and TBTSO machines, printing the
// outcome histograms. On plain TSO the fence-free flag principle can
// fail (both threads miss each other); with any Δ bound and the slow
// side waiting Δ, the failure outcome disappears — that observation is
// the whole paper in one table.
package main

import (
	"fmt"

	"tbtso/internal/litmus"
	"tbtso/internal/tso"
)

func explore(t litmus.Test, delta uint64, seeds int) {
	rep := litmus.Run(t, litmus.RunConfig{
		Seeds:    seeds,
		Delta:    delta,
		Policies: []tso.DrainPolicy{tso.DrainRandom, tso.DrainAdversarial},
	})
	model := "TSO (unbounded)"
	if delta > 0 {
		model = fmt.Sprintf("TBTSO[Δ=%d ticks]", delta)
	}
	fmt.Printf("%s on %s — %d executions\n", t.Name, model, rep.Total)
	fmt.Print(rep)
	if rep.ForbiddenSeen() {
		fmt.Println("  !!! forbidden outcome observed")
	}
	fmt.Println()
}

func main() {
	fmt.Println("=== classic store buffering: the relaxation TSO permits ===")
	explore(litmus.StoreBuffering(false), 0, 200)

	fmt.Println("=== with fences (the symmetric flag principle): 0/0 gone ===")
	explore(litmus.StoreBuffering(true), 0, 200)

	fmt.Println("=== the asymmetric flag principle, fence-free fast side ===")
	fmt.Println("--- on plain TSO the principle is UNSOUND (look for saw0=0 saw1=0): ---")
	unsound := litmus.TBTSOFlagPrinciple()
	unsound.Forbidden = nil // Δ=0 makes the 0/0 outcome legal; just count it
	explore(unsound, 0, 200)

	fmt.Println("--- on TBTSO[Δ] the same code is sound: ---")
	explore(litmus.TBTSOFlagPrinciple(), 150, 200)

	fmt.Println("=== one adversarial TSO execution, traced ===")
	out, trace, err := litmus.OnceTraced(litmus.StoreBuffering(false), tso.Config{
		Policy: tso.DrainAdversarial, Seed: 0, Trace: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("outcome: %s\n", out.Key())
	for _, e := range trace {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println("\nnote how both stores commit only after both loads — the store buffer at work")
}
