package tbtso_test

import (
	"fmt"
	"testing"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/bench"
	"tbtso/internal/core"
	"tbtso/internal/hashtable"
	"tbtso/internal/list"
	"tbtso/internal/lock"
	"tbtso/internal/ostick"
	"tbtso/internal/quiesce"
	"tbtso/internal/smr"
	"tbtso/internal/stack"
	"tbtso/internal/workload"
)

// benchCell is the per-iteration workload duration: short enough that
// the default -benchtime completes, long enough to reach steady state.
const benchCell = 10 * time.Millisecond

func benchOptions() bench.Options {
	return bench.Options{Duration: benchCell, Runs: 1, Buckets: 128, Quick: true}.Defaults()
}

// --- Figure 4: quiescence latency ---------------------------------------

func BenchmarkFigure4_Quiescence(b *testing.B) {
	p := quiesce.DefaultParams()
	for _, threads := range []int{1, 8, 80} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var last quiesce.Fig4Point
			for i := 0; i < b.N; i++ {
				last = quiesce.QuiescenceLatency(p, threads, 200)
			}
			b.ReportMetric(float64(last.QuiesceAvg.Nanoseconds()), "model-ns/quiesce")
			b.ReportMetric(last.SlowdownVsN, "×normal-op")
		})
	}
}

// --- Figure 5: store visibility CDF -------------------------------------

func BenchmarkFigure5_StoreVisibility(b *testing.B) {
	p := quiesce.DefaultParams()
	for _, pl := range []quiesce.Placement{quiesce.PlacementSMT, quiesce.PlacementSameSocket, quiesce.PlacementCrossSocket} {
		b.Run(pl.String(), func(b *testing.B) {
			var p999 int64
			for i := 0; i < b.N; i++ {
				h := quiesce.StoreVisibilityCDF(p, pl, quiesce.LoadStream, 100_000)
				p999 = h.Quantile(0.999)
			}
			b.ReportMetric(float64(p999), "model-p99.9-ns")
		})
	}
}

// --- Figure 6: hash-table throughput per SMR scheme ----------------------

func benchTableCell(b *testing.B, kind smr.Kind, mix workload.Mix, chainLen int) {
	b.Helper()
	o := benchOptions()
	board := ostick.NewBoard(o.Threads, o.TickPeriod)
	defer board.Stop()
	var readers, updaters float64
	for i := 0; i < b.N; i++ {
		res := bench.RunTableCell(bench.TableCell{
			Kind: kind, Mix: mix, ChainLen: chainLen,
			Threads: o.Threads, Buckets: o.Buckets,
			Duration: o.Duration, DeltaHW: o.DeltaHW, Board: board,
			R: 4096,
		})
		if res.Violations != 0 {
			b.Fatalf("%d arena violations", res.Violations)
		}
		readers = res.ReaderRate
		updaters = res.UpdaterRate
	}
	b.ReportMetric(readers, "reader-ops/s")
	b.ReportMetric(updaters, "updater-ops/s")
}

func BenchmarkFigure6_ReadOnly_ShortChains(b *testing.B) {
	for _, kind := range bench.Figure6Schemes() {
		b.Run(string(kind), func(b *testing.B) {
			benchTableCell(b, kind, workload.ReadOnly, 4)
		})
	}
}

func BenchmarkFigure6_ReadOnly_LongChains(b *testing.B) {
	for _, kind := range bench.Figure6Schemes() {
		b.Run(string(kind), func(b *testing.B) {
			benchTableCell(b, kind, workload.ReadOnly, 64)
		})
	}
}

func BenchmarkFigure6_ReadWrite_ShortChains(b *testing.B) {
	for _, kind := range bench.Figure6Schemes() {
		b.Run(string(kind), func(b *testing.B) {
			benchTableCell(b, kind, workload.ReadWrite, 4)
		})
	}
}

func BenchmarkFigure6_ReadWrite_LongChains(b *testing.B) {
	for _, kind := range bench.Figure6Schemes() {
		b.Run(string(kind), func(b *testing.B) {
			benchTableCell(b, kind, workload.ReadWrite, 64)
		})
	}
}

// --- Figure 7: retired-node memory under reader stalls -------------------

func BenchmarkFigure7_MemoryUnderStall(b *testing.B) {
	o := benchOptions()
	for _, kind := range bench.Figure7Schemes() {
		for _, stall := range []time.Duration{0, 10 * time.Millisecond} {
			b.Run(fmt.Sprintf("%s/stall=%v", kind, stall), func(b *testing.B) {
				board := ostick.NewBoard(o.Threads, o.TickPeriod)
				defer board.Stop()
				var peak uint64
				for i := 0; i < b.N; i++ {
					res := bench.RunTableCell(bench.TableCell{
						Kind: kind, Mix: workload.ReadWrite, ChainLen: 4,
						Threads: o.Threads, Buckets: o.Buckets,
						Duration: 2*stall + 20*time.Millisecond, DeltaHW: o.DeltaHW, Board: board,
						Stall: stall, SampleWaste: true, R: 512,
					})
					peak = res.PeakWaste
				}
				b.ReportMetric(float64(peak), "peak-waste-bytes")
			})
		}
	}
}

// --- Figure 8: biased-lock throughput per pattern ------------------------

func BenchmarkFigure8_BiasedLocks(b *testing.B) {
	o := benchOptions()
	locks, names, cleanup := bench.Figure8Locks(o)
	defer cleanup()
	for _, pat := range workload.Patterns() {
		for i, mk := range locks {
			b.Run(pat.Name+"/"+names[i], func(b *testing.B) {
				var owner, other float64
				for n := 0; n < b.N; n++ {
					res := bench.RunLockCell(mk, pat, benchCell)
					owner, other = res.OwnerRate, res.OtherRate
				}
				b.ReportMetric(owner, "owner-acq/s")
				b.ReportMetric(other, "other-acq/s")
			})
		}
	}
}

// --- §4.2.1 sizing --------------------------------------------------------

func BenchmarkSizing_RetireRate(b *testing.B) {
	o := benchOptions()
	var res bench.SizingResult
	for i := 0; i < b.N; i++ {
		_, res = bench.Sizing(o)
	}
	b.ReportMetric(res.RetireRatePerMsPerThread, "retires/ms/thread")
	b.ReportMetric(float64(res.SuggestedR), "suggested-R")
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblation_Plist compares reclaim()'s plist as the paper's
// sorted array + binary search versus a hash set (§4.1).
func BenchmarkAblation_Plist(b *testing.B) {
	for _, usemap := range []bool{false, true} {
		name := "sorted-array"
		if usemap {
			name = "hash-set"
		}
		b.Run(name, func(b *testing.B) {
			ar := arena.New(1<<16, 2)
			hp := smr.NewHP(smr.Config{Threads: 1, K: 3, R: 1 << 12, Arena: ar, Delta: time.Millisecond})
			defer hp.Close()
			hp.SetPlistMap(usemap)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := ar.Alloc(0)
				hp.Retire(0, h) // reclaims every R retirements
			}
		})
	}
}

// BenchmarkAblation_RlistScan compares the §4.2 time-ordered early-exit
// rlist scan against rescanning every entry.
func BenchmarkAblation_RlistScan(b *testing.B) {
	for _, ordered := range []bool{true, false} {
		name := "ordered-early-exit"
		if !ordered {
			name = "full-scan"
		}
		b.Run(name, func(b *testing.B) {
			ar := arena.New(1<<16, 2)
			ff := smr.NewFFHP(smr.Config{Threads: 1, K: 3, R: 1 << 12, Arena: ar, Delta: 200 * time.Millisecond})
			defer ff.Close()
			ff.SetOrderedScan(ordered)
			// Δ is long, so reclaim() finds nothing eligible and the
			// scan cost itself is what we measure.
			for i := 0; i < (1<<12)-1; i++ {
				ff.Retire(0, ar.Alloc(0))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ff.ReclaimNow(0)
			}
		})
	}
}

// BenchmarkAblation_ConstrainedReclaim compares the §4.2.1
// constrained-case reclaim (skip scans until the oldest H+1 retirees
// pass the bound) against eagerly rescanning: the skipped scans are
// pure waste when Δ > R.
func BenchmarkAblation_ConstrainedReclaim(b *testing.B) {
	for _, constrained := range []bool{true, false} {
		name := "eager-rescan"
		if constrained {
			name = "constrained-skip"
		}
		b.Run(name, func(b *testing.B) {
			ar := arena.New(1<<14, 2)
			ff := smr.NewFFHP(smr.Config{Threads: 1, K: 3, R: 1 << 12, Arena: ar, Delta: time.Hour})
			defer ff.Close()
			ff.SetConstrainedMode(constrained)
			for i := 0; i < 1<<11; i++ {
				ff.Retire(0, ar.Alloc(0)) // below R: no retire loop
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ff.ReclaimNow(0) // nothing eligible (Δ = 1h)
			}
		})
	}
}

// BenchmarkAblation_PublicationCost isolates how much of the fast path
// is hazard-pointer publication (Go's seq-cst store) by comparing FFHP
// against the no-protection Leaky scheme on identical read-only
// traversals. On the paper's hardware the publication is a plain MOV;
// in Go it is an XCHG, and this ablation quantifies that distortion
// (see EXPERIMENTS.md).
func BenchmarkAblation_PublicationCost(b *testing.B) {
	for _, kind := range []smr.Kind{smr.KindFFHP, smr.KindLeak} {
		b.Run(string(kind), func(b *testing.B) {
			ar := arena.New(1<<12, 2)
			s := smr.New(kind, smr.Config{Threads: 1, K: 3, R: 64, Arena: ar, Delta: time.Millisecond})
			defer s.Close()
			l := list.New(ar, s, 0)
			for k := uint64(0); k < 64; k++ {
				if _, err := l.Insert(0, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.OpBegin(0, 0)
				l.Contains(0, uint64(i)&63)
				s.OpEnd(0)
			}
		})
	}
}

// BenchmarkAblation_DeltaGranularity compares the retire-side cost of
// the TBTSO 0.5 ms bound against the 4 ms adapted board (§6.2's "extra
// work in the slow path").
func BenchmarkAblation_DeltaGranularity(b *testing.B) {
	board := ostick.NewBoard(4, 4*time.Millisecond)
	defer board.Stop()
	bounds := map[string]core.Bound{
		"delta-0.5ms": core.NewFixedDelta(500 * time.Microsecond),
		"board-4ms":   core.NewTickBoard(board),
	}
	for name, bd := range bounds {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var c int64
			for i := 0; i < b.N; i++ {
				if bd.Cutoff() > 0 {
					c++
				}
			}
			_ = c
		})
	}
}

// --- Microbenchmarks ------------------------------------------------------

// BenchmarkMicro_ProtectCost measures one protect (+fence for HP) —
// the per-node fast-path difference between HP and FFHP.
func BenchmarkMicro_ProtectCost(b *testing.B) {
	ar := arena.New(16, 2)
	h := ar.Alloc(0)
	cfg := smr.Config{Threads: 1, K: 3, R: 64, Arena: ar, Delta: time.Millisecond}
	schemes := map[string]smr.Scheme{
		"HP-store+fence": smr.NewHP(cfg),
		"FFHP-storeonly": smr.NewFFHP(cfg),
	}
	for name, s := range schemes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Protect(0, 0, h)
			}
		})
	}
}

// BenchmarkMicro_TableLookup measures one hash-table lookup per scheme.
func BenchmarkMicro_TableLookup(b *testing.B) {
	for _, kind := range []smr.Kind{smr.KindFFHP, smr.KindHP, smr.KindRCU, smr.KindEBR, smr.KindDTA, smr.KindStack} {
		b.Run(string(kind), func(b *testing.B) {
			ar := arena.New(1<<13, 2)
			s := smr.New(kind, smr.Config{Threads: 1, K: 3, R: 256, Arena: ar, Delta: time.Millisecond})
			defer s.Close()
			tb := hashtable.New(ar, s, 256)
			for k := uint64(0); k < 1024; k += 2 {
				if _, err := tb.Insert(0, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.Lookup(0, uint64(i)&1023)
			}
		})
	}
}

// BenchmarkMicro_StackPushPop measures one push+pop pair on the
// Treiber stack per scheme — the smallest complete protect/validate/
// retire cycle.
func BenchmarkMicro_StackPushPop(b *testing.B) {
	for _, kind := range []smr.Kind{smr.KindFFHP, smr.KindHP, smr.KindEBR} {
		b.Run(string(kind), func(b *testing.B) {
			// R per the §4.2.1 rule: this loop retires ~6 nodes/µs, so
			// R must exceed rate×Δ×2 ≈ 12000 or FFHP's retire loop
			// stalls waiting out Δ (under-provisioning R is itself a
			// measurable effect; see the sizing experiment).
			ar := arena.New(1<<16, 2)
			s := smr.New(kind, smr.Config{Threads: 1, K: stack.NumSlots, R: 1 << 14, Arena: ar, Delta: time.Millisecond})
			defer s.Close()
			st := stack.New(ar, s, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Push(0, uint64(i))
				st.Pop(0)
			}
			b.StopTimer()
			if ar.Violations() != 0 {
				b.Fatalf("violations: %d", ar.Violations())
			}
		})
	}
}

// BenchmarkMicro_BiasedOwnerPath measures the uncontended owner
// acquire/release pair for every lock — the fast path Figure 8's first
// pattern stresses.
func BenchmarkMicro_BiasedOwnerPath(b *testing.B) {
	locks := []lock.BiasedLock{
		lock.NewPthread(),
		lock.NewBaselineBiased(),
		lock.NewFFBL(core.NewFixedDelta(500*time.Microsecond), true),
		lock.NewSafePointBiased(),
	}
	for _, lk := range locks {
		b.Run(lk.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lk.OwnerLock()
				lk.OwnerUnlock()
			}
		})
	}
}
