// Package arena provides an unmanaged, fixed-capacity node pool with
// generation-checked handles. It restores, inside a garbage-collected
// language, the property that makes safe memory reclamation meaningful:
// a freed node's slot is genuinely reused, so accessing it after free is
// an observable error rather than something the GC papers over.
//
// Nodes are addressed by Handle — a packed (generation, index) pair —
// never by Go pointer. Freeing a node bumps its slot's generation and
// poisons its key, so any later access through a stale handle either
// fails the generation check or reads the poison value; both are
// recorded as violations. The concurrent list (internal/list) packs
// handles together with a mark bit into a single word, mirroring the
// paper's <next,mark> MarkPtr.
package arena

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Handle identifies a node: bits [0,32) hold index+1, bits [32,56) hold
// the slot's generation at allocation time. The zero Handle is the null
// pointer. Handles fit in 56 bits so a mark bit can be packed alongside
// (see MarkWord).
type Handle uint64

const (
	idxBits = 32
	idxMask = (1 << idxBits) - 1
	genBits = 24
	genMask = (1 << genBits) - 1

	// Poison is written to a node's key on free.
	Poison uint64 = 0xDEADBEEFDEADBEEF
)

// Nil is the null handle.
const Nil Handle = 0

func makeHandle(idx int, gen uint32) Handle {
	return Handle(uint64(idx+1) | (uint64(gen)&genMask)<<idxBits)
}

func (h Handle) index() int  { return int(uint64(h)&idxMask) - 1 }
func (h Handle) gen() uint32 { return uint32(uint64(h) >> idxBits & genMask) }
func (h Handle) IsNil() bool { return h == Nil }
func (h Handle) String() string {
	if h.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("#%d@g%d", h.index(), h.gen())
}

// MarkWord packs a Handle and a mark bit into one uint64 for atomic
// compare-and-swap — the paper's MarkPtr (Figure 1, mark stored in the
// LSB of next).
type MarkWord uint64

// Pack builds a MarkWord from a handle and mark.
func Pack(h Handle, marked bool) MarkWord {
	w := MarkWord(h) << 1
	if marked {
		w |= 1
	}
	return w
}

// Unpack splits a MarkWord.
func (w MarkWord) Unpack() (Handle, bool) {
	return Handle(w >> 1), w&1 == 1
}

// Handle returns the handle part.
func (w MarkWord) Handle() Handle { return Handle(w >> 1) }

// Marked returns the mark bit.
func (w MarkWord) Marked() bool { return w&1 == 1 }

// node is one slot: all fields are atomics because a (correctly
// protected) reader may load them while the owner publishes, and
// because stale readers in *buggy* schemes must fault detectably, not
// race undefined-behaviourally.
type node struct {
	gen  atomic.Uint32
	live atomic.Bool
	key  atomic.Uint64
	next atomic.Uint64 // a MarkWord
	_    [fencePad]byte
}

// fencePad pads node to a full cache line (4+4+8+8 = 24 bytes header,
// pad to 64) to avoid false sharing between adjacent nodes. The paper
// equalizes node sizes across SMR schemes for the same reason.
const fencePad = 40

// Violation describes a detected misuse of freed memory.
type Violation struct {
	Kind   string // "gen-mismatch", "dead-read", "double-free", "wild-free"
	Handle Handle
}

// Arena is the pool. Alloc/Free are safe for concurrent use; per-thread
// caches keep the fast path lock-free.
type Arena struct {
	nodes []node

	mu     sync.Mutex
	global []Handle // free handles not in any thread cache
	caches []cache  // per-thread free caches

	violations atomic.Uint64
	firstViol  atomic.Uint64 // packed first violation handle (diagnostic)

	allocs atomic.Uint64
	frees  atomic.Uint64
}

const cacheBatch = 32

type cache struct {
	free []Handle
	_    [40]byte
}

// New creates an arena of the given capacity with per-thread caches for
// `threads` workers. Capacity is a hard bound; size it to
// universe + threads×R + slack, as §4.2.1 prescribes.
func New(capacity, threads int) *Arena {
	if capacity >= idxMask {
		panic("arena: capacity too large for handle encoding")
	}
	a := &Arena{
		nodes:  make([]node, capacity),
		global: make([]Handle, 0, capacity),
		caches: make([]cache, threads),
	}
	for i := capacity - 1; i >= 0; i-- {
		a.global = append(a.global, makeHandle(i, 0))
	}
	return a
}

// Capacity returns the total number of slots.
func (a *Arena) Capacity() int { return len(a.nodes) }

// Alloc returns a fresh node handle for thread tid, or Nil if the pool
// is exhausted. The node's key and next are NOT reset; the caller
// initializes them before publishing.
func (a *Arena) Alloc(tid int) Handle {
	c := &a.caches[tid]
	if len(c.free) == 0 {
		a.mu.Lock()
		n := cacheBatch
		if n > len(a.global) {
			n = len(a.global)
		}
		c.free = append(c.free, a.global[len(a.global)-n:]...)
		a.global = a.global[:len(a.global)-n]
		a.mu.Unlock()
		if len(c.free) == 0 {
			return Nil
		}
	}
	h := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	n := &a.nodes[h.index()]
	n.live.Store(true)
	a.allocs.Add(1)
	return h
}

// Free returns a node to the pool: the slot's generation is bumped (so
// every outstanding handle to it goes stale) and the key is poisoned.
// Double frees and wild handles are recorded as violations.
func (a *Arena) Free(tid int, h Handle) {
	idx := h.index()
	if idx < 0 || idx >= len(a.nodes) {
		a.recordViolation(h)
		return
	}
	n := &a.nodes[idx]
	if n.gen.Load() != h.gen() || !n.live.Load() {
		a.recordViolation(h)
		return
	}
	n.live.Store(false)
	n.gen.Add(1)
	n.key.Store(Poison)
	a.frees.Add(1)
	c := &a.caches[tid]
	newGen := n.gen.Load()
	c.free = append(c.free, makeHandle(idx, newGen))
	if len(c.free) > 2*cacheBatch {
		a.mu.Lock()
		spill := c.free[:cacheBatch]
		a.global = append(a.global, spill...)
		c.free = append(c.free[:0], c.free[cacheBatch:]...)
		a.mu.Unlock()
	}
}

// FreeShared frees a node without going through any per-thread cache,
// pushing straight to the global pool under the lock. Background
// reclaimer goroutines (which have no tid) use this.
func (a *Arena) FreeShared(h Handle) {
	idx := h.index()
	if idx < 0 || idx >= len(a.nodes) {
		a.recordViolation(h)
		return
	}
	n := &a.nodes[idx]
	if n.gen.Load() != h.gen() || !n.live.Load() {
		a.recordViolation(h)
		return
	}
	n.live.Store(false)
	n.gen.Add(1)
	n.key.Store(Poison)
	a.frees.Add(1)
	a.mu.Lock()
	a.global = append(a.global, makeHandle(idx, n.gen.Load()))
	a.mu.Unlock()
}

func (a *Arena) recordViolation(h Handle) {
	if a.violations.Add(1) == 1 {
		a.firstViol.Store(uint64(h))
	}
}

// check validates h's generation; a mismatch means the caller holds a
// stale handle to a freed (possibly reallocated) node.
func (a *Arena) check(h Handle) *node {
	idx := h.index()
	if idx < 0 || idx >= len(a.nodes) {
		a.recordViolation(h)
		return nil
	}
	n := &a.nodes[idx]
	if n.gen.Load() != h.gen() {
		a.recordViolation(h)
		return nil
	}
	return n
}

// Key reads the node's key. A read through a stale handle records a
// violation and returns Poison.
func (a *Arena) Key(h Handle) uint64 {
	n := a.check(h)
	if n == nil {
		return Poison
	}
	return n.key.Load()
}

// SetKey writes the node's key (before publication).
func (a *Arena) SetKey(h Handle, k uint64) {
	if n := a.check(h); n != nil {
		n.key.Store(k)
	}
}

// Next loads the node's <next,mark> word.
func (a *Arena) Next(h Handle) MarkWord {
	n := a.check(h)
	if n == nil {
		return 0
	}
	return MarkWord(n.next.Load())
}

// SetNext stores the node's <next,mark> word (before publication).
func (a *Arena) SetNext(h Handle, w MarkWord) {
	if n := a.check(h); n != nil {
		n.next.Store(uint64(w))
	}
}

// CASNext atomically swings the node's <next,mark> word.
func (a *Arena) CASNext(h Handle, old, new MarkWord) bool {
	n := a.check(h)
	if n == nil {
		return false
	}
	return n.next.CompareAndSwap(uint64(old), uint64(new))
}

// Violations reports how many stale accesses, double frees, or wild
// frees were detected.
func (a *Arena) Violations() uint64 { return a.violations.Load() }

// FirstViolation returns the handle involved in the first violation.
func (a *Arena) FirstViolation() Handle { return Handle(a.firstViol.Load()) }

// Live reports allocs - frees: the number of live nodes.
func (a *Arena) Live() int { return int(a.allocs.Load()) - int(a.frees.Load()) }

// Allocs and Frees report lifetime counts.
func (a *Arena) Allocs() uint64 { return a.allocs.Load() }

// Frees reports the number of Free calls that succeeded.
func (a *Arena) Frees() uint64 { return a.frees.Load() }

// NodeBytes is the in-memory size of one node, used for the memory
// consumption figures.
const NodeBytes = 64
