package arena

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocFreeReuse(t *testing.T) {
	a := New(4, 1)
	h1 := a.Alloc(0)
	h2 := a.Alloc(0)
	if h1.IsNil() || h2.IsNil() || h1 == h2 {
		t.Fatalf("bad handles %v %v", h1, h2)
	}
	a.SetKey(h1, 42)
	if a.Key(h1) != 42 {
		t.Fatalf("key = %d", a.Key(h1))
	}
	a.Free(0, h1)
	h3 := a.Alloc(0)
	if h3.index() != h1.index() {
		t.Fatalf("expected slot reuse: %v vs %v", h3, h1)
	}
	if h3.gen() == h1.gen() {
		t.Fatal("generation must change on reuse")
	}
	if a.Violations() != 0 {
		t.Fatalf("violations = %d", a.Violations())
	}
}

func TestStaleHandleDetected(t *testing.T) {
	a := New(4, 1)
	h := a.Alloc(0)
	a.SetKey(h, 7)
	a.Free(0, h)
	if got := a.Key(h); got != Poison {
		t.Fatalf("stale read returned %d, want Poison", got)
	}
	if a.Violations() == 0 {
		t.Fatal("stale read not recorded")
	}
	if a.FirstViolation() != h {
		t.Fatalf("first violation %v, want %v", a.FirstViolation(), h)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a := New(4, 1)
	h := a.Alloc(0)
	a.Free(0, h)
	a.Free(0, h)
	if a.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", a.Violations())
	}
	if a.Frees() != 1 {
		t.Fatalf("frees = %d, want 1", a.Frees())
	}
}

func TestNilAndWildHandles(t *testing.T) {
	a := New(2, 1)
	if !Nil.IsNil() {
		t.Fatal("Nil not nil")
	}
	a.Free(0, Handle(999999)) // wild
	if a.Violations() != 1 {
		t.Fatalf("wild free not detected")
	}
}

func TestExhaustion(t *testing.T) {
	a := New(3, 1)
	for i := 0; i < 3; i++ {
		if a.Alloc(0).IsNil() {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if !a.Alloc(0).IsNil() {
		t.Fatal("expected exhaustion")
	}
	if a.Live() != 3 {
		t.Fatalf("Live = %d", a.Live())
	}
}

func TestMarkWordPacking(t *testing.T) {
	f := func(idx uint32, gen uint32, marked bool) bool {
		h := makeHandle(int(idx%(1<<20)), gen)
		w := Pack(h, marked)
		gh, gm := w.Unpack()
		return gh == h && gm == marked && w.Handle() == h && w.Marked() == marked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	const threads = 8
	const iters = 2000
	a := New(threads*8+16, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var held []Handle
			for i := 0; i < iters; i++ {
				if h := a.Alloc(tid); !h.IsNil() {
					a.SetKey(h, uint64(i))
					held = append(held, h)
				}
				if len(held) > 4 {
					a.Free(tid, held[0])
					held = held[1:]
				}
			}
			for _, h := range held {
				a.Free(tid, h)
			}
		}(tid)
	}
	wg.Wait()
	if a.Violations() != 0 {
		t.Fatalf("violations = %d", a.Violations())
	}
	if a.Live() != 0 {
		t.Fatalf("leaked %d nodes", a.Live())
	}
}

func TestCASNext(t *testing.T) {
	a := New(2, 1)
	h := a.Alloc(0)
	n := a.Alloc(0)
	a.SetNext(h, Pack(n, false))
	if !a.CASNext(h, Pack(n, false), Pack(n, true)) {
		t.Fatal("CAS should succeed")
	}
	if a.CASNext(h, Pack(n, false), Pack(Nil, false)) {
		t.Fatal("CAS should fail on changed word")
	}
	w := a.Next(h)
	if w.Handle() != n || !w.Marked() {
		t.Fatalf("next = %v marked=%v", w.Handle(), w.Marked())
	}
}
