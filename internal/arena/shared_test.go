package arena

import (
	"sync"
	"testing"
)

func TestFreeShared(t *testing.T) {
	a := New(4, 1)
	h := a.Alloc(0)
	a.FreeShared(h)
	if a.Frees() != 1 || a.Live() != 0 {
		t.Fatalf("frees=%d live=%d", a.Frees(), a.Live())
	}
	// Slot must be reusable.
	h2 := a.Alloc(0)
	deadline := 0
	for h2.IsNil() && deadline < 3 {
		h2 = a.Alloc(0)
		deadline++
	}
	if h2.IsNil() {
		t.Fatal("slot not returned to the pool")
	}
	// Double FreeShared is a violation.
	a.FreeShared(h)
	if a.Violations() == 0 {
		t.Fatal("double FreeShared not detected")
	}
}

func TestFreeSharedConcurrentWithAllocs(t *testing.T) {
	// A background "reclaimer" frees via FreeShared while workers
	// allocate/free through their caches.
	const workers = 4
	a := New(1024, workers)
	toFree := make(chan Handle, 256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reclaimer
		defer wg.Done()
		for h := range toFree {
			a.FreeShared(h)
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < 3000; i++ {
				h := a.Alloc(w)
				if h.IsNil() {
					continue
				}
				a.SetKey(h, uint64(i))
				if i%2 == 0 {
					a.Free(w, h)
				} else {
					toFree <- h
				}
			}
		}(w)
	}
	ww.Wait()
	close(toFree)
	wg.Wait()
	if v := a.Violations(); v != 0 {
		t.Fatalf("violations: %d", v)
	}
	if a.Live() != 0 {
		t.Fatalf("leaked %d", a.Live())
	}
}

func TestHandleStringAndCapacity(t *testing.T) {
	a := New(8, 1)
	if a.Capacity() != 8 {
		t.Fatalf("capacity = %d", a.Capacity())
	}
	h := a.Alloc(0)
	if h.String() == "" || Nil.String() != "nil" {
		t.Fatal("handle rendering broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized arena did not panic")
		}
	}()
	New(1<<33, 1)
}

func TestGenerationWraparoundSafety(t *testing.T) {
	// Repeated free/alloc of one slot must keep producing distinct
	// handles within the generation space.
	a := New(1, 1)
	prev := Handle(0)
	for i := 0; i < 1000; i++ {
		h := a.Alloc(0)
		if h == prev {
			t.Fatalf("generation reuse after %d cycles", i)
		}
		prev = h
		a.Free(0, h)
	}
	if a.Violations() != 0 {
		t.Fatalf("violations: %d", a.Violations())
	}
}
