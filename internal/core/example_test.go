package core_test

import (
	"fmt"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/vclock"
)

// A visibility bound answers "is a store from time t0 certainly global
// by now?" — the question every TBTSO slow path asks.
func ExampleFixedDelta() {
	bound := core.NewFixedDelta(2 * time.Millisecond)
	t0 := vclock.Now()
	fmt.Println("eligible immediately:", bound.Eligible(t0))
	bound.Wait(t0) // the slow path waits out the remainder of Δ
	fmt.Println("eligible after Wait:", bound.Eligible(t0))
	// Output:
	// eligible immediately: false
	// eligible after Wait: true
}

// The asymmetric flag principle (§3): the fast side raises with no
// fence; the slow side raises, fences, waits out the bound, then looks.
// At least one side observes the other.
func ExampleAsymmetricFlag() {
	f := core.NewAsymmetricFlag(core.NewFixedDelta(time.Millisecond))

	// Fast side (e.g. a reader protecting a node):
	f.FastRaise(1)
	sawSlow := f.FastLook()

	// Slow side (e.g. a reclaimer), possibly concurrent:
	sawFast := f.SlowRaiseAndLook(1)

	fmt.Println("at least one side saw the other:", sawSlow != 0 || sawFast != 0)
	// Output: at least one side saw the other: true
}
