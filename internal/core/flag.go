package core

import (
	"sync/atomic"

	"tbtso/internal/fence"
	"tbtso/internal/vclock"
)

// AsymmetricFlag is the §3 TBTSO flag principle as a native primitive:
// a fast side that raises its flag with no fence, and a slow side that
// raises its flag, fences, waits out the visibility bound, and then
// looks. The guarantee: at least one side observes the other.
//
// This type is the building block both FFHP and FFBL instantiate
// implicitly; it is exported so applications can build their own
// asymmetric protocols (e.g. asymmetric membarrier-style schemes).
type AsymmetricFlag struct {
	fast  atomic.Uint64
	_     [fence.CacheLine - 8]byte
	slow  atomic.Uint64
	_     [fence.CacheLine - 8]byte
	bound Bound
	line  fence.Line
}

// NewAsymmetricFlag creates the flag pair with the given bound.
func NewAsymmetricFlag(b Bound) *AsymmetricFlag {
	return &AsymmetricFlag{bound: b}
}

// FastRaise raises the fast side's flag. No fence is issued: on TBTSO
// the store becomes visible within the bound.
//
//tbtso:fencefree
func (f *AsymmetricFlag) FastRaise(v uint64) {
	f.fast.Store(v)
}

// FastLook reads the slow side's flag. Per the principle this may be
// done immediately after FastRaise with no fence in between.
//
//tbtso:fencefree
func (f *AsymmetricFlag) FastLook() uint64 {
	return f.slow.Load()
}

// FastLower clears the fast flag.
func (f *AsymmetricFlag) FastLower() { f.fast.Store(0) }

// SlowRaiseAndLook raises the slow side's flag, fences, waits out the
// visibility bound, and returns the fast side's flag. If the returned
// value is zero, the fast side had not raised its flag before our raise
// became visible — and therefore the fast side will observe ours.
//
//tbtso:requires-fence
func (f *AsymmetricFlag) SlowRaiseAndLook(v uint64) uint64 {
	f.slow.Store(v)
	f.line.Full()
	f.bound.Wait(vclock.Now())
	return f.fast.Load()
}

// SlowLower clears the slow flag.
func (f *AsymmetricFlag) SlowLower() { f.slow.Store(0) }
