// Package core implements the paper's primary contribution as reusable
// native primitives: the notion of a *visibility bound* — "by when is
// every earlier store globally visible?" — and the asymmetric TBTSO
// flag principle (§3) built on it.
//
// Two bounds are provided, matching the paper's two deployment models:
//
//   - FixedDelta: the TBTSO[Δ] hardware model (§2, §6.1). A store
//     performed at time t0 is visible by t0+Δ, so the slow path simply
//     waits out the remainder of Δ.
//   - TickBoard: the x86 adaptation with OS help (§6.2). The slow path
//     instead waits until every entry of the per-core time array A is
//     newer than t0.
//
// Both expose the same Cutoff/Eligible/Wait interface, which is exactly
// what lets FFHP and FFBL switch between the TBTSO[0.5 ms] and adapted
// [4 ms] variants the evaluation compares.
//
// The machine-level counterpart of this package lives in
// internal/machalg, where the same principle runs on the abstract
// machine of internal/tso.
package core

import (
	"time"

	"tbtso/internal/ostick"
	"tbtso/internal/vclock"
)

// Bound answers visibility questions against the global clock
// (vclock.Now). Implementations must be safe for concurrent use.
type Bound interface {
	// Name identifies the bound for reports (e.g. "Δ=0.5ms").
	Name() string
	// Cutoff returns a time c such that every store performed by a
	// thread at or before c is globally visible now. Cutoff is
	// monotonically nondecreasing across calls.
	Cutoff() int64
	// Eligible reports whether a store performed at t0 is certainly
	// visible (t0 <= Cutoff()). A convenience wrapper.
	Eligible(t0 int64) bool
	// Wait blocks until every store performed at or before t0 is
	// globally visible. Slow-path only.
	Wait(t0 int64)
}

// FixedDelta is the TBTSO[Δ] bound: stores are visible Δ after issue.
type FixedDelta struct {
	delta time.Duration
	name  string
}

// NewFixedDelta returns a Bound for TBTSO[Δ].
func NewFixedDelta(delta time.Duration) *FixedDelta {
	return &FixedDelta{delta: delta, name: "Δ=" + delta.String()}
}

// Name implements Bound.
func (d *FixedDelta) Name() string { return d.name }

// Delta returns Δ.
func (d *FixedDelta) Delta() time.Duration { return d.delta }

// Cutoff implements Bound: now - Δ.
func (d *FixedDelta) Cutoff() int64 { return vclock.Now() - int64(d.delta) }

// Eligible implements Bound.
func (d *FixedDelta) Eligible(t0 int64) bool { return t0 <= d.Cutoff() }

// Wait implements Bound by sleeping/spinning out the remainder of Δ.
func (d *FixedDelta) Wait(t0 int64) {
	for {
		remain := t0 + int64(d.delta) - vclock.Now()
		if remain <= 0 {
			return
		}
		if remain > int64(50*time.Microsecond) {
			time.Sleep(time.Duration(remain))
		}
		// Short remainders spin on the clock.
	}
}

// TickBoard is the §6.2 adapted bound: visibility is established by
// observing that every per-core timer-interrupt timestamp passed t0.
type TickBoard struct {
	board *ostick.Board
	name  string
}

// NewTickBoard wraps an ostick.Board as a Bound.
func NewTickBoard(b *ostick.Board) *TickBoard {
	return &TickBoard{board: b, name: "A-board"}
}

// Name implements Bound.
func (t *TickBoard) Name() string { return t.name }

// Board returns the underlying time array.
func (t *TickBoard) Board() *ostick.Board { return t.board }

// Cutoff implements Bound: the minimum entry of A. Scanning A is the
// "extra work in the slow path" §6.2 describes.
func (t *TickBoard) Cutoff() int64 { return t.board.MinTime() }

// Eligible implements Bound.
func (t *TickBoard) Eligible(t0 int64) bool { return t.board.AllPast(t0) }

// Wait implements Bound.
func (t *TickBoard) Wait(t0 int64) { t.board.WaitAllPast(t0) }

// Immediate is a degenerate bound for environments whose stores are
// immediately visible (Go's sequentially consistent atomics give this
// natively). It exists for tests and as the "unsound on real TSO"
// configuration knob: using it where a real bound is required is
// exactly the bug the paper's Δ prevents.
type Immediate struct{}

// Name implements Bound.
func (Immediate) Name() string { return "immediate" }

// Cutoff implements Bound.
func (Immediate) Cutoff() int64 { return vclock.Now() }

// Eligible implements Bound.
func (Immediate) Eligible(int64) bool { return true }

// Wait implements Bound.
func (Immediate) Wait(int64) {}
