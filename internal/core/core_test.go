package core

import (
	"sync"
	"testing"
	"time"

	"tbtso/internal/ostick"
	"tbtso/internal/vclock"
)

func TestFixedDeltaCutoffLagsByDelta(t *testing.T) {
	d := NewFixedDelta(10 * time.Millisecond)
	now := vclock.Now()
	c := d.Cutoff()
	if c > now-int64(9*time.Millisecond) {
		t.Fatalf("cutoff %d too close to now %d", c, now)
	}
	if d.Eligible(now) {
		t.Fatal("a store from right now cannot be eligible")
	}
	if !d.Eligible(now - int64(11*time.Millisecond)) {
		t.Fatal("a store older than Δ must be eligible")
	}
}

func TestFixedDeltaWait(t *testing.T) {
	d := NewFixedDelta(3 * time.Millisecond)
	t0 := vclock.Now()
	start := time.Now()
	d.Wait(t0)
	if e := time.Since(start); e < 2*time.Millisecond {
		t.Fatalf("Wait returned after %v, want ≈3 ms", e)
	}
	if !d.Eligible(t0) {
		t.Fatal("not eligible after Wait")
	}
	// Waiting for an old timestamp returns immediately.
	start = time.Now()
	d.Wait(vclock.Now() - int64(time.Second))
	if e := time.Since(start); e > time.Millisecond {
		t.Fatalf("Wait on old timestamp took %v", e)
	}
}

func TestCutoffMonotone(t *testing.T) {
	d := NewFixedDelta(time.Millisecond)
	prev := d.Cutoff()
	for i := 0; i < 1000; i++ {
		c := d.Cutoff()
		if c < prev {
			t.Fatal("cutoff went backwards")
		}
		prev = c
	}
}

func TestTickBoardBound(t *testing.T) {
	b := ostick.NewBoard(3, time.Millisecond)
	defer b.Stop()
	tb := NewTickBoard(b)
	t0 := vclock.Now()
	if tb.Eligible(t0) {
		t.Fatal("eligible before any board tick")
	}
	tb.Wait(t0)
	if !tb.Eligible(t0) {
		t.Fatal("not eligible after Wait")
	}
	if tb.Cutoff() <= t0 {
		t.Fatal("cutoff did not pass t0 after Wait")
	}
	if tb.Board() != b {
		t.Fatal("Board accessor broken")
	}
}

func TestImmediate(t *testing.T) {
	var im Immediate
	if !im.Eligible(vclock.Now()) {
		t.Fatal("Immediate must always be eligible")
	}
	im.Wait(vclock.Now()) // must not block
	if im.Name() == "" || NewFixedDelta(time.Second).Name() == "" {
		t.Fatal("bounds must have names")
	}
}

func TestAsymmetricFlagPrinciple(t *testing.T) {
	// The §3 guarantee: for concurrent fast and slow participants, at
	// least one observes the other. Run many racing rounds.
	for round := 0; round < 200; round++ {
		f := NewAsymmetricFlag(NewFixedDelta(50 * time.Microsecond))
		var fastSaw, slowSaw uint64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			f.FastRaise(1)
			fastSaw = f.FastLook()
		}()
		go func() {
			defer wg.Done()
			slowSaw = f.SlowRaiseAndLook(1)
		}()
		wg.Wait()
		if fastSaw == 0 && slowSaw == 0 {
			t.Fatalf("round %d: both sides missed each other", round)
		}
		f.FastLower()
		f.SlowLower()
	}
}
