// Package stack implements a Treiber stack over the unmanaged arena
// with pluggable safe memory reclamation — the other classic consumer
// of hazard pointers (Michael's original paper [28] uses it as the
// introductory example). It exists to show the smr.Scheme protocol is
// not list-shaped: one protection slot, one validation, same fence-free
// story under FFHP.
package stack

import (
	"sync/atomic"

	"tbtso/internal/arena"
	"tbtso/internal/smr"
)

// NumSlots is the number of protection slots the stack requires.
const NumSlots = 1

// Stack is a concurrent LIFO of uint64 values.
type Stack struct {
	top   atomic.Uint64 // an arena.MarkWord with the mark unused
	ar    *arena.Arena
	smr   smr.Scheme
	shard uint64
}

// New creates a stack whose nodes come from ar and whose reclamation is
// managed by s.
func New(ar *arena.Arena, s smr.Scheme, shard uint64) *Stack {
	return &Stack{ar: ar, smr: s, shard: shard}
}

// Push adds v. It reports false if the arena is exhausted.
func (st *Stack) Push(tid int, v uint64) bool {
	st.smr.OpBegin(tid, st.shard)
	defer st.smr.OpEnd(tid)
	n := st.ar.Alloc(tid)
	if n.IsNil() {
		return false
	}
	st.ar.SetKey(n, v)
	for {
		old := arena.MarkWord(st.top.Load())
		st.ar.SetNext(n, old)
		if st.top.CompareAndSwap(uint64(old), uint64(arena.Pack(n, false))) {
			st.smr.UpdateHint(tid, st.shard)
			return true
		}
	}
}

// Pop removes the most recently pushed value; ok is false when empty.
// The pop fast path is the hazard-pointer protocol in miniature:
// protect the observed top, revalidate it (pointer-based schemes), read
// through it, and CAS it out.
func (st *Stack) Pop(tid int) (v uint64, ok bool) {
	st.smr.OpBegin(tid, st.shard)
	defer st.smr.OpEnd(tid)
	for {
		if st.smr.Visit(tid) {
			continue // transactional scheme aborted
		}
		tw := arena.MarkWord(st.top.Load())
		t := tw.Handle()
		if t.IsNil() {
			return 0, false
		}
		if st.smr.Protect(tid, 0, t) {
			if arena.MarkWord(st.top.Load()) != tw {
				continue // top moved between read and publication
			}
		}
		next := st.ar.Next(t)
		if !st.top.CompareAndSwap(uint64(tw), uint64(next)) {
			continue
		}
		v = st.ar.Key(t)
		st.smr.UpdateHint(tid, st.shard)
		st.smr.Retire(tid, t)
		return v, true
	}
}

// Len counts nodes. Quiescent use only.
func (st *Stack) Len() int {
	n := 0
	for h := arena.MarkWord(st.top.Load()).Handle(); !h.IsNil(); {
		n++
		h = st.ar.Next(h).Handle()
	}
	return n
}
