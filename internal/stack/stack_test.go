package stack

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/smr"
)

func newStack(kind smr.Kind, threads, capacity int) (*Stack, *arena.Arena, smr.Scheme) {
	ar := arena.New(capacity, threads+1)
	s := smr.New(kind, smr.Config{
		Threads: threads,
		K:       NumSlots,
		R:       threads*NumSlots + 8,
		Arena:   ar,
		Delta:   time.Millisecond,
	})
	return New(ar, s, 0), ar, s
}

func TestSequentialLIFO(t *testing.T) {
	st, ar, s := newStack(smr.KindFFHP, 1, 64)
	defer s.Close()
	for v := uint64(1); v <= 5; v++ {
		if !st.Push(0, v) {
			t.Fatalf("push %d failed", v)
		}
	}
	if st.Len() != 5 {
		t.Fatalf("len = %d", st.Len())
	}
	for want := uint64(5); want >= 1; want-- {
		v, ok := st.Pop(0)
		if !ok || v != want {
			t.Fatalf("pop = %d,%v; want %d", v, ok, want)
		}
	}
	if _, ok := st.Pop(0); ok {
		t.Fatal("pop from empty succeeded")
	}
	s.Flush(0)
	if ar.Violations() != 0 {
		t.Fatalf("violations: %d", ar.Violations())
	}
}

func TestExhaustion(t *testing.T) {
	st, _, s := newStack(smr.KindLeak, 1, 3)
	defer s.Close()
	for i := 0; i < 3; i++ {
		if !st.Push(0, uint64(i)) {
			t.Fatal("push failed early")
		}
	}
	if st.Push(0, 99) {
		t.Fatal("push to exhausted arena succeeded")
	}
}

// TestConcurrentConservation: values pushed = values popped + values
// left, each exactly once, for every scheme.
func TestConcurrentConservation(t *testing.T) {
	const (
		threads = 4
		perT    = 3000
	)
	kinds := append(smr.AllKinds(), smr.KindGuards, smr.KindFFGuards)
	for _, kind := range kinds {
		if kind == smr.KindFFHPTicks {
			continue // board-backed variant covered in list tests
		}
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			st, ar, s := newStack(kind, threads, 16384)
			defer s.Close()
			var popped sync.Map
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid) * perT
					for i := uint64(0); i < perT; i++ {
						for !st.Push(tid, base+i+1) {
							time.Sleep(50 * time.Microsecond)
						}
						if i%2 == 1 {
							if v, ok := st.Pop(tid); ok {
								if _, dup := popped.LoadOrStore(v, tid); dup {
									t.Errorf("value %d popped twice", v)
									return
								}
							}
						}
					}
					s.Flush(tid)
					if rcu, ok := s.(*smr.RCU); ok {
						rcu.Offline(tid)
					}
				}(tid)
			}
			wg.Wait()
			// Drain what remains.
			for {
				v, ok := st.Pop(0)
				if !ok {
					break
				}
				if _, dup := popped.LoadOrStore(v, -1); dup {
					t.Fatalf("leftover value %d already popped", v)
				}
			}
			count := 0
			popped.Range(func(any, any) bool { count++; return true })
			if count != threads*perT {
				t.Fatalf("popped %d distinct values, want %d", count, threads*perT)
			}
			if ar.Violations() != 0 {
				t.Fatalf("violations: %d", ar.Violations())
			}
		})
	}
}

func TestPopProtectsAgainstReclaim(t *testing.T) {
	// Two threads pop the same top concurrently: the loser must not
	// fault even if the winner retires and reclamation runs.
	st, ar, s := newStack(smr.KindHP, 2, 256)
	defer s.Close()
	for i := uint64(1); i <= 100; i++ {
		st.Push(0, i)
	}
	var wg sync.WaitGroup
	var got atomic.Int64
	for tid := 0; tid < 2; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				if _, ok := st.Pop(tid); !ok {
					return
				}
				got.Add(1)
			}
		}(tid)
	}
	wg.Wait()
	if got.Load() != 100 {
		t.Fatalf("popped %d, want 100", got.Load())
	}
	if ar.Violations() != 0 {
		t.Fatalf("violations: %d", ar.Violations())
	}
}
