package stack_test

import (
	"fmt"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/smr"
	"tbtso/internal/stack"
)

// A Treiber stack with fence-free hazard-pointer protection: pops
// publish one hazard pointer per attempt and retire the node they win.
func Example() {
	ar := arena.New(64, 2)
	s := smr.New(smr.KindFFHP, smr.Config{
		Threads: 1, K: stack.NumSlots, R: 16,
		Arena: ar, Delta: 500 * time.Microsecond,
	})
	defer s.Close()

	st := stack.New(ar, s, 0)
	st.Push(0, 10)
	st.Push(0, 20)

	v, _ := st.Pop(0)
	fmt.Println("popped:", v)
	fmt.Println("left:", st.Len())

	s.Flush(0) // reclaim the popped node after Δ
	fmt.Println("violations:", ar.Violations())
	// Output:
	// popped: 20
	// left: 1
	// violations: 0
}
