package smr

import (
	"sort"
	"sync/atomic"

	"tbtso/internal/arena"
	"tbtso/internal/core"
	"tbtso/internal/fence"
	"tbtso/internal/obs"
	"tbtso/internal/obs/monitor"
	"tbtso/internal/vclock"
)

// hpSlot is one hazard pointer, padded against false sharing.
type hpSlot struct {
	h atomic.Uint64 // arena.Handle
	_ [fence.CacheLine - 8]byte
}

// hpThread is the per-thread private state. Only the owning worker
// touches entries; rcount is atomic so Unreclaimed can observe it.
type hpThread struct {
	entries []retired
	rcount  atomic.Int64
	plist   []uint64 // scratch for reclaim: sorted handles
	scans   uint64   // reclaim() invocations
	loops   uint64   // iterations of the FFHP retire loop
	frees   uint64
	retires uint64 // Retire() calls
	_       [8]byte
}

// The `ffhp` verification pair (docs/VERIFY.md): the writer is a
// reader-side thread doing the fence-free protect (plain store of the
// hazard pointer) followed by the validation load of the link word; the
// reader is a reclaiming thread doing the removal CAS, the Δ wait, and
// the hazard-pointer scan. Forbidden is the §4 scan miss — the writer
// validated against the pre-removal link while the reclaimer's scan saw
// the hazard slot still empty.
//
//tbtso:property pair=ffhp forbid writer.link == 0 && reader.slots.h == 0

// HazardPointers implements standard HP (Figure 2a) and FFHP
// (Figure 2b) behind one type:
//
//   - fenced=true, bound=nil:   standard hazard pointers. Protect issues
//     a full fence; reclaim scans every retired node.
//   - fenced=false, bound!=nil: fence-free hazard pointers. Protect is a
//     plain store; reclaim only scans nodes retired before the bound's
//     cutoff, and the retire-side loop re-runs reclaim until below R.
//
// plist is a sorted array searched by binary search — the paper's
// practical choice (§4.1); NewHP/NewFFHP pick the discipline.
type HazardPointers struct {
	name        string
	fenced      bool
	bound       core.Bound
	k, r        int
	threads     int
	slots       []hpSlot // threads*k, slot(t,i) = t*k+i
	fences      *fence.Lines
	perTh       []hpThread
	arena       *arena.Arena
	usemap      bool // ablation: plist as a hash set instead of a sorted array
	ordered     bool // exploit rlist time order to cut scans short (default)
	constrained bool // §4.2.1 constrained case: skip scans until H+1 oldest are eligible

	pub struct{ retires, scans, loops, frees obs.Publisher }
}

// SetPlistMap switches reclaim's plist lookup structure from the
// paper's sorted array + binary search to a hash set — the §4.1
// complexity ablation (BenchmarkAblation_Plist).
func (hp *HazardPointers) SetPlistMap(on bool) { hp.usemap = on }

// SetOrderedScan controls whether reclaim exploits the rlist's
// retirement-time order to stop scanning at the first too-young entry
// (§4.2: "scanning rlist from oldest to newest retired objects is
// trivial and costs O(1) per object"). On by default; turning it off is
// the BenchmarkAblation_RlistScan configuration.
func (hp *HazardPointers) SetOrderedScan(on bool) { hp.ordered = on }

// SetConstrainedMode enables the §4.2.1 constrained-case optimization
// for Δ > R > H: reclaim() does no work at all — not even the
// hazard-pointer snapshot — until the bound has passed for the oldest
// H+1 retired objects, giving the O(Δ) worst case the paper derives
// instead of busy rescans that cannot free anything.
func (hp *HazardPointers) SetConstrainedMode(on bool) { hp.constrained = on }

// NewHP returns standard hazard pointers [28].
func NewHP(cfg Config) *HazardPointers {
	cfg.validate()
	return newHP(cfg, string(KindHP), true, nil)
}

// NewFFHP returns the paper's fence-free hazard pointers with the
// TBTSO[Δ] bound.
func NewFFHP(cfg Config) *HazardPointers {
	cfg.validate()
	return newHP(cfg, string(KindFFHP), false, core.NewFixedDelta(cfg.Delta))
}

// NewFFHPBound returns FFHP over an arbitrary visibility bound — used
// for the §6.2 adapted variant (time-array board) and for ablations.
func NewFFHPBound(cfg Config, b core.Bound) *HazardPointers {
	cfg.validate()
	name := string(KindFFHP) + "[" + b.Name() + "]"
	if _, ok := b.(*core.TickBoard); ok {
		name = string(KindFFHPTicks)
	}
	return newHP(cfg, name, false, b)
}

func newHP(cfg Config, name string, fenced bool, bound core.Bound) *HazardPointers {
	hp := &HazardPointers{
		name:    name,
		fenced:  fenced,
		bound:   bound,
		k:       cfg.K,
		r:       cfg.R,
		threads: cfg.Threads,
		slots:   make([]hpSlot, cfg.Threads*cfg.K),
		fences:  fence.NewLines(cfg.Threads),
		perTh:   make([]hpThread, cfg.Threads),
		ordered: true,
	}
	hp.arena = cfg.Arena
	return hp
}

// Name implements Scheme.
func (hp *HazardPointers) Name() string { return hp.name }

// OpBegin implements Scheme (hazard pointers need no brackets).
func (hp *HazardPointers) OpBegin(int, uint64) {}

// OpEnd implements Scheme.
func (hp *HazardPointers) OpEnd(int) {}

// Protect implements Scheme: publish the hazard pointer and, for
// standard HP, fence so the publication precedes the caller's
// validation read. Both variants require validation; FFHP merely skips
// the fence (§4.2: "we omit the fence from the hazard pointer
// validation code"). The two disciplines live in separately annotated
// helpers so tbtso-lint can enforce each statically.
func (hp *HazardPointers) Protect(tid, slot int, h arena.Handle) bool {
	if hp.fenced {
		hp.protectFenced(tid, slot, h)
	} else {
		hp.protectFenceFree(tid, slot, h)
	}
	return true
}

// protectFenceFree is FFHP's publication (Figure 2b): a plain store
// with no serializing instruction — the fast-path saving the whole
// paper is about. Sound only under a visibility bound. Writer step 1
// of the `ffhp` verification pair (docs/VERIFY.md); Validate is
// step 2, and together they are the protect→validate store/load pair
// whose soundness tbtso-verify certifies under mc's TBTSO[Δ] sweep.
//
//tbtso:verify pair=ffhp role=writer step=1
//tbtso:fencefree
func (hp *HazardPointers) protectFenceFree(tid, slot int, h arena.Handle) {
	hp.slots[tid*hp.k+slot].h.Store(uint64(h)) //tbtso:model val=1
}

// protectFenced is standard HP's publication (Figure 2a): the fence
// orders the hazard-pointer store before the validation read.
//
//tbtso:requires-fence
func (hp *HazardPointers) protectFenced(tid, slot int, h arena.Handle) {
	hp.slots[tid*hp.k+slot].h.Store(uint64(h))
	hp.fences.Full(tid)
}

// Copy implements Scheme: copying from a lower slot needs no fence in
// either variant, because reclaimers scan slots in ascending order and
// TSO preserves store order (§4.1).
//
//tbtso:fencefree
func (hp *HazardPointers) Copy(tid, slot int, h arena.Handle) {
	hp.slots[tid*hp.k+slot].h.Store(uint64(h))
}

// Visit implements Scheme.
func (hp *HazardPointers) Visit(int) bool { return false }

// UpdateHint implements Scheme.
func (hp *HazardPointers) UpdateHint(int, uint64) {}

// Retire implements Scheme (Figure 2 retire()). Fence-free in both
// variants — and transitively so through reclaim() and arena.Free,
// which tbtso-lint verifies: the §4.2 progress argument (the retire
// loop terminates within Δ) assumes the loop body issues no fence.
//
//tbtso:fencefree
func (hp *HazardPointers) Retire(tid int, h arena.Handle) {
	t := &hp.perTh[tid]
	t.retires++
	t.entries = append(t.entries, retired{h: h, t: vclock.Now()})
	t.rcount.Add(1)
	if hp.bound == nil {
		if int(t.rcount.Load()) >= hp.r {
			hp.reclaim(tid)
		}
		return
	}
	// FFHP: loop until below R; bounded by Δ (§4.2, progress guarantee).
	for int(t.rcount.Load()) >= hp.r {
		t.loops++
		hp.reclaim(tid)
	}
}

// ReclaimNow runs one explicit reclaim() pass for tid (Figure 2's
// reclaim()); normally Retire invokes it, but benchmarks and tests can
// drive it directly.
func (hp *HazardPointers) ReclaimNow(tid int) { hp.reclaim(tid) }

// reclaim is Figure 2's reclaim(): snapshot all hazard pointers
// (ascending slot order), then free eligible unprotected entries.
func (hp *HazardPointers) reclaim(tid int) {
	t := &hp.perTh[tid]
	cutoff := int64(1<<63 - 1)
	if hp.bound != nil {
		cutoff = hp.bound.Cutoff() // Figure 2b line 45
	}
	if hp.constrained && hp.bound != nil {
		// §4.2.1: with Δ > R > H a scan is pointless until at least
		// H+1 of the oldest retirees are past the bound — otherwise
		// fewer than H+1 candidates exist and all may be protected.
		h := hp.threads * hp.k
		if len(t.entries) <= h || t.entries[h].t >= cutoff {
			return
		}
	}
	t.scans++
	t.plist = t.plist[:0]
	for i := range hp.slots {
		if v := hp.scanSlot(i); v != 0 {
			t.plist = append(t.plist, v)
		}
	}
	var pset map[uint64]struct{}
	if hp.usemap {
		pset = make(map[uint64]struct{}, len(t.plist))
		for _, v := range t.plist {
			pset[v] = struct{}{}
		}
	} else {
		sort.Slice(t.plist, func(a, b int) bool { return t.plist[a] < t.plist[b] })
	}

	kept := t.entries[:0]
	for i, e := range t.entries {
		if e.t >= cutoff {
			if hp.ordered {
				// rlist is in retirement order: everything after this
				// entry is younger, so keep the tail wholesale (§4.2).
				kept = append(kept, t.entries[i:]...)
				break
			}
			kept = append(kept, e)
			continue
		}
		prot := false
		if hp.usemap {
			_, prot = pset[uint64(e.h)]
		} else {
			prot = hp.protected(t.plist, e.h)
		}
		if prot {
			kept = append(kept, e)
			continue
		}
		hp.arena.Free(tid, e.h)
		t.frees++
	}
	// Zero the tail so freed handles do not linger.
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = retired{}
	}
	t.entries = kept
	t.rcount.Store(int64(len(kept)))
}

// scanSlot reads one hazard slot during reclaim's snapshot (Figure 2
// line 46, ascending slot order). Reader step 3 of the `ffhp` pair: by
// the time the scan runs, waitRetired has burned out Δ, so a protect
// store issued before the removal became visible has drained.
//
//tbtso:verify pair=ffhp role=reader step=3
func (hp *HazardPointers) scanSlot(i int) uint64 {
	return hp.slots[i].h.Load()
}

// waitRetired waits out the visibility bound for a node retired at
// time t (Figure 2b line 45's cutoff, in blocking form): after it
// returns, every protect store issued before the node's removal became
// visible is itself visible. Reader step 2 of the `ffhp` pair; the
// bound wait is extracted as a Wait op.
//
//tbtso:verify pair=ffhp role=reader step=2
func (hp *HazardPointers) waitRetired(t int64) {
	hp.bound.Wait(t)
}

func (hp *HazardPointers) protected(plist []uint64, h arena.Handle) bool {
	v := uint64(h)
	i := sort.Search(len(plist), func(i int) bool { return plist[i] >= v })
	return i < len(plist) && plist[i] == v
}

// Unreclaimed implements Scheme.
func (hp *HazardPointers) Unreclaimed() int {
	n := int64(0)
	for i := range hp.perTh {
		n += hp.perTh[i].rcount.Load()
	}
	return int(n)
}

// Flush implements Scheme: wait out the bound for the youngest retired
// node, then reclaim until nothing unprotected remains.
func (hp *HazardPointers) Flush(tid int) {
	t := &hp.perTh[tid]
	if len(t.entries) == 0 {
		return
	}
	if hp.bound != nil {
		hp.waitRetired(t.entries[len(t.entries)-1].t)
	}
	before := -1
	for len(t.entries) > 0 && len(t.entries) != before {
		before = len(t.entries)
		hp.reclaim(tid)
	}
}

// Close implements Scheme.
func (hp *HazardPointers) Close() {}

// Scans reports reclaim() invocations and frees for thread tid
// (benchmark introspection).
func (hp *HazardPointers) Scans(tid int) (scans, loops, frees uint64) {
	t := &hp.perTh[tid]
	return t.scans, t.loops, t.frees
}

// Metrics publishes the scheme's aggregate counters into reg under
// "smr.<scheme>." names: retires, reclaim scans, retire-loop
// iterations, frees, and the still-unreclaimed node count. Call it
// after (or periodically during) a run; the per-thread sources are the
// same owner-private counters the hot paths already maintain, so
// observation costs the hot paths nothing. Successive calls add only
// the growth since the previous call, so several scheme instances can
// accumulate into one registry.
func (hp *HazardPointers) Metrics(reg *obs.Registry) {
	var scans, loops, frees, retires uint64
	for i := range hp.perTh {
		t := &hp.perTh[i]
		scans += t.scans
		loops += t.loops
		frees += t.frees
		retires += t.retires
	}
	prefix := "smr." + hp.name + "."
	hp.pub.retires.Publish(reg.Counter(prefix+"retires"), retires)
	hp.pub.scans.Publish(reg.Counter(prefix+"scans"), scans)
	hp.pub.loops.Publish(reg.Counter(prefix+"retire_loops"), loops)
	hp.pub.frees.Publish(reg.Counter(prefix+"frees"), frees)
	reg.Gauge(prefix + "unreclaimed").Set(int64(hp.Unreclaimed()))
}

// VerifyAccounting publishes the scheme's counters into reg and
// cross-checks the reclamation accounting invariant — every retired
// node is either freed or still pending, frees + unreclaimed ==
// retires — via the obs/monitor registry-fed check. Call it at
// quiescence (workers joined); mid-run the counters are transiently
// inconsistent by design. Returns nil when the books balance.
//
// reg must be private to this scheme instance or the "smr.<name>."
// namespace must have a single publisher; counters accumulated from
// several instances cannot be attributed back.
func (hp *HazardPointers) VerifyAccounting(reg *obs.Registry) []monitor.Violation {
	hp.Metrics(reg)
	return monitor.CheckSMRAccounting(reg, hp.name)
}

// ClearSlots resets thread tid's hazard pointers (op teardown in
// workloads that park workers).
func (hp *HazardPointers) ClearSlots(tid int) {
	for i := 0; i < hp.k; i++ {
		hp.slots[tid*hp.k+i].h.Store(0)
	}
}
