package smr

import (
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/arena"
)

// RCU is a quiescent-state-based userspace RCU [26, 10]: readers impose
// zero fast-path overhead beyond announcing a quiescent state between
// operations; writers retire nodes into per-thread bags that a
// background reclaimer frees after a grace period.
//
// Two properties of the paper's evaluation fall out of this structure:
//
//   - Reclamation lags retirement (the background thread "periodically
//     wakes up and frees memory"), so RCU holds ~40% more waste memory
//     than hazard pointers even with no stalls (Figure 7).
//   - A reader stalled *inside* an operation blocks the grace period
//     entirely, so waste memory grows with the stall (Figure 7's trend),
//     unlike FFHP whose bound is per-thread R.
type RCU struct {
	cfg Config

	// qs[tid] counts quiescent states; bit 63 marks the thread offline.
	qs []paddedInt

	mu   sync.Mutex // guards bags handed to the reclaimer
	bags [][]arena.Handle

	pending []rcuBatch
	waste   atomic.Int64 // retired, not yet freed

	period time.Duration
	stop   chan struct{}
	done   chan struct{}
}

const rcuOffline = int64(1) << 62

type rcuBatch struct {
	nodes []arena.Handle
	snap  []int64 // qs snapshot at batch creation
}

// DefaultGracePeriod is the reclaimer's wakeup period.
const DefaultGracePeriod = time.Millisecond

// NewRCU starts the background reclaimer.
func NewRCU(cfg Config) *RCU {
	cfg.validate()
	r := &RCU{
		cfg:    cfg,
		qs:     make([]paddedInt, cfg.Threads),
		bags:   make([][]arena.Handle, cfg.Threads),
		period: DefaultGracePeriod,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.reclaimer()
	return r
}

// Name implements Scheme.
func (r *RCU) Name() string { return string(KindRCU) }

// OpBegin implements Scheme. QSBR read-side entry is free.
func (r *RCU) OpBegin(int, uint64) {}

// OpEnd implements Scheme: passing between operations is the quiescent
// state. A single plain atomic increment — no fence, no shared-line
// contention — which is why RCU is the paper's zero-overhead yardstick.
func (r *RCU) OpEnd(tid int) {
	r.qs[tid].v.Add(1)
}

// Protect implements Scheme: no per-node work, no validation needed —
// nodes cannot be freed while any reader is mid-operation.
func (r *RCU) Protect(int, int, arena.Handle) bool { return false }

// Copy implements Scheme.
func (r *RCU) Copy(int, int, arena.Handle) {}

// Visit implements Scheme.
func (r *RCU) Visit(int) bool { return false }

// UpdateHint implements Scheme.
func (r *RCU) UpdateHint(int, uint64) {}

// Retire implements Scheme: call_rcu-style deferred free.
func (r *RCU) Retire(tid int, h arena.Handle) {
	r.mu.Lock()
	r.bags[tid] = append(r.bags[tid], h)
	r.mu.Unlock()
	r.waste.Add(1)
}

// Offline marks tid as permanently quiescent (worker exiting).
// Idempotent: calling it twice must not wrap the counter back below the
// offline threshold.
func (r *RCU) Offline(tid int) {
	for {
		cur := r.qs[tid].v.Load()
		if cur >= rcuOffline {
			return
		}
		if r.qs[tid].v.CompareAndSwap(cur, cur+rcuOffline) {
			return
		}
	}
}

// Unreclaimed implements Scheme.
func (r *RCU) Unreclaimed() int { return int(r.waste.Load()) }

// Flush implements Scheme. Only the background thread frees; Flush
// announces the caller's own quiescence repeatedly and waits a bounded
// number of reclaimer wakeups. It must never fake other threads'
// quiescent states — they may be mid-operation.
func (r *RCU) Flush(tid int) {
	r.qs[tid].v.Add(1)
	deadline := time.Now().Add(50 * r.period)
	for r.waste.Load() > 0 && time.Now().Before(deadline) {
		r.qs[tid].v.Add(1) // the caller is quiescent; keep announcing
		time.Sleep(r.period)
	}
}

// Close implements Scheme.
func (r *RCU) Close() {
	close(r.stop)
	<-r.done
}

func (r *RCU) snapshot() []int64 {
	s := make([]int64, len(r.qs))
	for i := range r.qs {
		s[i] = r.qs[i].v.Load()
	}
	return s
}

// graceElapsed reports whether every thread has either advanced past
// its snapshot or gone offline.
func (r *RCU) graceElapsed(snap []int64) bool {
	for i := range r.qs {
		cur := r.qs[i].v.Load()
		if cur >= rcuOffline {
			continue // offline
		}
		if cur == snap[i] {
			return false
		}
	}
	return true
}

func (r *RCU) reclaimer() {
	defer close(r.done)
	tick := time.NewTicker(r.period)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		// Collect new retirements into a batch stamped with the current
		// quiescence snapshot.
		r.mu.Lock()
		var nodes []arena.Handle
		for i := range r.bags {
			if len(r.bags[i]) > 0 {
				nodes = append(nodes, r.bags[i]...)
				r.bags[i] = r.bags[i][:0]
			}
		}
		r.mu.Unlock()
		if len(nodes) > 0 {
			r.pending = append(r.pending, rcuBatch{nodes: nodes, snap: r.snapshot()})
		}
		// Free batches whose grace period elapsed. The reclaimer has no
		// worker tid, so it bypasses the per-thread caches.
		kept := r.pending[:0]
		for _, b := range r.pending {
			if r.graceElapsed(b.snap) {
				for _, h := range b.nodes {
					r.cfg.Arena.FreeShared(h)
				}
				r.waste.Add(-int64(len(b.nodes)))
			} else {
				kept = append(kept, b)
			}
		}
		r.pending = kept
	}
}
