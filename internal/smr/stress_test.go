package smr

import (
	"sync"
	"testing"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/ostick"
)

// TestSchemeStressDirect hammers every scheme directly (no list): each
// worker allocates, protects, retires and flushes, while a designated
// reader keeps one node protected and verifies it survives.
func TestSchemeStressDirect(t *testing.T) {
	board := ostick.NewBoard(4, time.Millisecond)
	defer board.Stop()
	kinds := append(AllKinds(), KindGuards, KindFFGuards)
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			const workers = 3
			ar := arena.New(8192, workers+1)
			cfg := Config{
				Threads: workers,
				K:       3,
				R:       workers*3 + 8,
				Arena:   ar,
				Delta:   time.Millisecond,
				Board:   board,
			}
			s := New(kind, cfg)
			defer s.Close()

			// Worker 0 pins one node with a protection slot for the
			// whole run (pointer-based schemes) or by staying inside an
			// operation (epoch/quiescence schemes).
			pinned := ar.Alloc(0)
			ar.SetKey(pinned, 424242)
			s.OpBegin(0, 0)
			s.Protect(0, 0, pinned)

			var wg sync.WaitGroup
			for w := 1; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Iteration count sized so the adapted variant's
					// board waits (≥1 ms per retire-loop pass) keep the
					// test fast.
					for i := 0; i < 800; i++ {
						h := ar.Alloc(w)
						if h.IsNil() {
							time.Sleep(100 * time.Microsecond)
							continue
						}
						s.OpBegin(w, uint64(i))
						s.Visit(w)
						s.OpEnd(w)
						s.UpdateHint(w, uint64(i))
						s.Retire(w, h)
					}
					s.Flush(w)
					if rcu, ok := s.(*RCU); ok {
						rcu.Offline(w)
					}
				}(w)
			}
			wg.Wait()

			if got := ar.Key(pinned); got != 424242 {
				t.Fatalf("pinned node corrupted: key=%d", got)
			}
			if v := ar.Violations(); v != 0 {
				t.Fatalf("%d violations", v)
			}
			// Release the pin and flush; the node itself was never
			// retired, so it stays live.
			s.Protect(0, 0, arena.Nil)
			s.OpEnd(0)
			s.Flush(0)
			if rcu, ok := s.(*RCU); ok {
				rcu.Offline(0)
				deadline := time.Now().Add(2 * time.Second)
				for s.Unreclaimed() > 0 && time.Now().Before(deadline) {
					time.Sleep(DefaultGracePeriod)
				}
			}
			if ar.Violations() != 0 {
				t.Fatalf("violations after flush: %d", ar.Violations())
			}
		})
	}
}

// TestRetireAllThenFlushEveryScheme checks the basic conservation per
// scheme: retire N nodes, flush, expect most (or all) reclaimed and
// alloc bookkeeping consistent.
func TestRetireAllThenFlushEveryScheme(t *testing.T) {
	board := ostick.NewBoard(2, time.Millisecond)
	defer board.Stop()
	kinds := append(AllKinds(), KindGuards, KindFFGuards)
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			ar := arena.New(512, 2)
			cfg := Config{Threads: 1, K: 3, R: 16, Arena: ar, Delta: time.Millisecond, Board: board}
			s := New(kind, cfg)
			defer s.Close()
			const n = 100
			for i := 0; i < n; i++ {
				s.OpBegin(0, 0)
				s.OpEnd(0)
				s.Retire(0, ar.Alloc(0))
			}
			s.Flush(0)
			if rcu, ok := s.(*RCU); ok {
				rcu.Offline(0)
				deadline := time.Now().Add(2 * time.Second)
				for s.Unreclaimed() > 0 && time.Now().Before(deadline) {
					time.Sleep(DefaultGracePeriod)
				}
			}
			if got := s.Unreclaimed(); got != 0 {
				t.Fatalf("unreclaimed = %d after flush", got)
			}
			if int(ar.Frees()) != n {
				t.Fatalf("frees = %d, want %d", ar.Frees(), n)
			}
			if ar.Violations() != 0 {
				t.Fatalf("violations: %d", ar.Violations())
			}
		})
	}
}
