package smr

import (
	"tbtso/internal/arena"
	"tbtso/internal/fence"
)

// stShards is the granularity of conflict tracking (hash buckets map
// onto these version words).
const stShards = 256

// stSplitVisits is the simulated HTM capacity: a transaction that
// visits more nodes than this must split — commit the current segment
// and start a new one — mirroring StackTrack's reaction to capacity
// aborts (§7.1.1: "StackTrack starts to experience transaction capacity
// aborts, forcing it to split each operation into multiple
// transactions").
const stSplitVisits = 48

// StackTrack simulates Alistarh et al.'s HTM-based reclamation [4] at
// the cost profile the paper measures. Hardware transactional memory is
// not reachable from Go, so the transaction mechanics are modeled (see
// DESIGN.md): an operation runs as a speculative segment validated
// against a per-shard version word that updaters bump; begin/commit
// each cost a serializing instruction (as HTM begin/commit do), a
// conflicting update aborts the operation (Visit returns restart), and
// operations longer than the capacity split into multiple segments.
// Reclamation piggybacks on an internal epoch scheme: with every
// traversal inside a transaction, a freed node would abort its readers,
// so nodes can be freed as soon as concurrent operations finish.
type StackTrack struct {
	cfg      Config
	versions []paddedInt // per-shard conflict versions
	perTh    []stThread
	inner    *EBR // reclamation substrate (transactions make frees safe)
	fences   *fence.Lines
}

type stThread struct {
	shard    uint64
	startVer int64
	visits   int
	aborts   uint64
	splits   uint64
	txns     uint64
	_        [16]byte
}

// NewStackTrack returns the simulated-HTM scheme.
func NewStackTrack(cfg Config) *StackTrack {
	cfg.validate()
	return &StackTrack{
		cfg:      cfg,
		versions: make([]paddedInt, stShards),
		perTh:    make([]stThread, cfg.Threads),
		inner:    NewEBR(cfg),
		fences:   fence.NewLines(cfg.Threads),
	}
}

// Name implements Scheme.
func (s *StackTrack) Name() string { return string(KindStack) }

// OpBegin implements Scheme: transaction begin.
//
//tbtso:requires-fence
func (s *StackTrack) OpBegin(tid int, shard uint64) {
	t := &s.perTh[tid]
	t.shard = shard % stShards
	t.startVer = s.versions[t.shard].v.Load()
	t.visits = 0
	t.txns++
	s.fences.Full(tid) // XBEGIN-equivalent serialization cost
	s.inner.OpBegin(tid, shard)
}

// OpEnd implements Scheme: final commit.
//
//tbtso:requires-fence
func (s *StackTrack) OpEnd(tid int) {
	s.fences.Full(tid) // XEND-equivalent
	s.inner.OpEnd(tid)
}

// Protect implements Scheme: nodes read inside a transaction need no
// per-node publication.
func (s *StackTrack) Protect(int, int, arena.Handle) bool { return false }

// Copy implements Scheme.
func (s *StackTrack) Copy(int, int, arena.Handle) {}

// Visit implements Scheme: per-node work — detect conflicts, split on
// capacity.
func (s *StackTrack) Visit(tid int) bool {
	t := &s.perTh[tid]
	t.visits++
	if t.visits%stSplitVisits != 0 {
		return false
	}
	cur := s.versions[t.shard].v.Load()
	if cur != t.startVer {
		// Conflict: abort and restart the operation.
		t.aborts++
		t.startVer = cur
		t.visits = 0
		return true
	}
	// Capacity split: commit this segment, begin the next.
	t.splits++
	s.fences.Full(tid)
	return false
}

// UpdateHint implements Scheme: a structural update is a conflict for
// every transaction reading the shard.
func (s *StackTrack) UpdateHint(_ int, shard uint64) {
	s.versions[shard%stShards].v.Add(1)
}

// Retire implements Scheme.
func (s *StackTrack) Retire(tid int, h arena.Handle) {
	s.inner.Retire(tid, h)
}

// Unreclaimed implements Scheme.
func (s *StackTrack) Unreclaimed() int { return s.inner.Unreclaimed() }

// Flush implements Scheme.
func (s *StackTrack) Flush(tid int) { s.inner.Flush(tid) }

// Close implements Scheme.
func (s *StackTrack) Close() { s.inner.Close() }

// TxnStats reports transactions, aborts and splits for tid.
func (s *StackTrack) TxnStats(tid int) (txns, aborts, splits uint64) {
	t := &s.perTh[tid]
	return t.txns, t.aborts, t.splits
}
