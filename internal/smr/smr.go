// Package smr implements safe memory reclamation schemes over the
// unmanaged arena: the paper's fence-free hazard pointers (FFHP, §4)
// and every baseline its evaluation compares against — standard hazard
// pointers (HP), quiescence-state-based RCU, epoch-based reclamation
// (EBR), a drop-the-anchor-style timestamp scheme (DTA), and a
// simulated-HTM StackTrack.
//
// All schemes implement the Scheme interface, which is shaped around
// Michael's list traversal protocol (internal/list): operations are
// bracketed by OpBegin/OpEnd, pointer-based schemes publish handles via
// Protect/Copy and request source revalidation, transactional schemes
// may demand a restart from Visit, and removed nodes are handed to
// Retire once their removal is globally visible.
package smr

import (
	"fmt"
	"sync/atomic"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/core"
	"tbtso/internal/ostick"
)

// Scheme is a pluggable reclamation scheme. Methods taking tid are
// called only by worker tid, concurrently across workers.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// OpBegin brackets the start of one data-structure operation.
	// shard identifies the region being accessed (hash bucket index);
	// transactional schemes use it for conflict tracking.
	OpBegin(tid int, shard uint64)
	// OpEnd brackets the end of the operation.
	OpEnd(tid int)
	// Protect announces that tid will dereference h through protection
	// slot `slot`; it reports whether the caller must revalidate the
	// pointer it read h from (the hazard-pointer validation step).
	Protect(tid, slot int, h arena.Handle) (validate bool)
	// Copy re-publishes an already protected handle into slot (which
	// must be higher than the slot currently protecting it). Never
	// requires validation (§4.1, copying hazard pointers).
	Copy(tid, slot int, h arena.Handle)
	// Visit is called once per traversed node. It reports whether the
	// operation must restart (a transactional scheme aborted).
	Visit(tid int) (restart bool)
	// UpdateHint notifies the scheme of a successful structural update
	// in shard (transactional schemes bump conflict versions).
	UpdateHint(tid int, shard uint64)
	// Retire hands a removed node to the scheme for deferred free. The
	// removal must already be globally visible; the list's removal CAS
	// guarantees that.
	Retire(tid int, h arena.Handle)
	// Unreclaimed reports how many retired nodes are not yet freed —
	// the "waste" memory of Figure 7.
	Unreclaimed() int
	// Flush frees everything currently safe to free for tid, waiting
	// for visibility/grace as needed. Quiescent use only.
	Flush(tid int)
	// Close releases background resources (reclaimer goroutines,
	// tickers). The scheme must not be used afterwards.
	Close()
}

// Config carries the parameters shared by scheme constructors.
type Config struct {
	// Threads is the number of workers (tids 0..Threads-1).
	Threads int
	// K is the number of protection slots per thread (hazard pointers).
	K int
	// R is the retirement threshold (§4.1). Must exceed Threads*K for
	// the hazard-pointer schemes.
	R int
	// Arena is the node pool retired nodes are freed into.
	Arena *arena.Arena
	// Delta is the TBTSO visibility bound used by FFHP (0.5 ms for the
	// hardware model, unused by other schemes).
	Delta time.Duration
	// Board, if non-nil, selects the §6.2 adapted variant for FFHP:
	// visibility is established from the time array instead of Δ.
	Board *ostick.Board
}

func (c Config) validate() {
	if c.Threads <= 0 || c.K <= 0 {
		panic("smr: Threads and K must be positive")
	}
	if c.Arena == nil {
		panic("smr: Arena required")
	}
	if c.R <= c.Threads*c.K {
		panic(fmt.Sprintf("smr: R=%d must exceed H=%d", c.R, c.Threads*c.K))
	}
}

// Kind names a scheme for the registry.
type Kind string

// The schemes of the evaluation (§7.1).
const (
	KindHP        Kind = "HP"         // standard hazard pointers [28]
	KindFFHP      Kind = "FFHP"       // fence-free hazard pointers (§4), Δ bound
	KindFFHPTicks Kind = "FFHP-adpt"  // FFHP adapted to x86 via the OS board (§6.2)
	KindRCU       Kind = "RCU"        // QSBR userspace RCU [26]
	KindEBR       Kind = "EBR"        // epoch-based reclamation [15]
	KindDTA       Kind = "DTA"        // drop-the-anchor-style timestamps [6]
	KindStack     Kind = "StackTrack" // simulated-HTM StackTrack [4]
	KindLeak      Kind = "none"       // no reclamation (overhead floor)
	// Guards variants [19] — §4 notes FFHP's ideas apply to them too.
	KindGuards   Kind = "Guards"
	KindFFGuards Kind = "FFGuards"
)

// New constructs a scheme by kind.
func New(kind Kind, cfg Config) Scheme {
	switch kind {
	case KindHP:
		return NewHP(cfg)
	case KindFFHP:
		return NewFFHP(cfg)
	case KindFFHPTicks:
		if cfg.Board == nil {
			panic("smr: FFHP-adpt requires Config.Board")
		}
		return NewFFHPBound(cfg, core.NewTickBoard(cfg.Board))
	case KindRCU:
		return NewRCU(cfg)
	case KindEBR:
		return NewEBR(cfg)
	case KindDTA:
		return NewDTA(cfg)
	case KindStack:
		return NewStackTrack(cfg)
	case KindLeak:
		return NewLeaky(cfg)
	case KindGuards:
		return NewGuards(cfg)
	case KindFFGuards:
		return NewFFGuards(cfg)
	default:
		panic(fmt.Sprintf("smr: unknown scheme kind %q", kind))
	}
}

// AllKinds lists every scheme, in the order the evaluation reports.
func AllKinds() []Kind {
	return []Kind{KindFFHP, KindFFHPTicks, KindHP, KindRCU, KindEBR, KindDTA, KindStack}
}

// retired is an rlist entry: an <object, time> pair (Figure 2b).
type retired struct {
	h arena.Handle
	t int64
}

// Leaky never reclaims: the zero-overhead, unbounded-memory floor used
// by ablation benchmarks.
type Leaky struct {
	cfg    Config
	counts []paddedInt
}

type paddedInt struct {
	v atomic.Int64
	_ [56]byte
}

// NewLeaky returns the no-reclamation scheme.
func NewLeaky(cfg Config) *Leaky {
	cfg.validate()
	return &Leaky{cfg: cfg, counts: make([]paddedInt, cfg.Threads)}
}

// Name implements Scheme.
func (l *Leaky) Name() string { return string(KindLeak) }

// OpBegin implements Scheme.
func (l *Leaky) OpBegin(int, uint64) {}

// OpEnd implements Scheme.
func (l *Leaky) OpEnd(int) {}

// Protect implements Scheme.
func (l *Leaky) Protect(int, int, arena.Handle) bool { return false }

// Copy implements Scheme.
func (l *Leaky) Copy(int, int, arena.Handle) {}

// Visit implements Scheme.
func (l *Leaky) Visit(int) bool { return false }

// UpdateHint implements Scheme.
func (l *Leaky) UpdateHint(int, uint64) {}

// Retire implements Scheme by leaking the node.
func (l *Leaky) Retire(tid int, _ arena.Handle) { l.counts[tid].v.Add(1) }

// Unreclaimed implements Scheme.
func (l *Leaky) Unreclaimed() int {
	n := 0
	for i := range l.counts {
		n += int(l.counts[i].v.Load())
	}
	return n
}

// Flush implements Scheme.
func (l *Leaky) Flush(int) {}

// Close implements Scheme.
func (l *Leaky) Close() {}
