package smr

import (
	"sync"
	"sync/atomic"

	"tbtso/internal/arena"
	"tbtso/internal/core"
	"tbtso/internal/fence"
	"tbtso/internal/vclock"
)

// Guards implements Herlihy, Luchangco, Martin and Moir's guards [19]
// in the pass-the-buck style, which §4 notes "differs from hazard
// pointers only in how removed objects are stored before being
// reclaimed": instead of per-thread rlists, removed objects go into a
// shared liberation pool, and any thread's Liberate pass may free any
// thread's retirees. The same fence-free transformation applies — omit
// the fence after posting a guard and only liberate objects older than
// the visibility bound — so both the fenced original and the fence-free
// variant are provided (NewGuards / NewFFGuards).
type Guards struct {
	name    string
	fenced  bool
	bound   core.Bound // nil for the fenced original
	k       int
	r       int
	threads int
	slots   []hpSlot
	fences  *fence.Lines
	arena   *arena.Arena

	mu    sync.Mutex
	pool  []retired // the shared store of removed objects
	waste atomic.Int64

	liberates atomic.Uint64
	freed     atomic.Uint64
}

// NewGuards returns the fenced original.
func NewGuards(cfg Config) *Guards {
	cfg.validate()
	return newGuards(cfg, string(KindGuards), true, nil)
}

// NewFFGuards returns the fence-free variant over the TBTSO Δ bound.
func NewFFGuards(cfg Config) *Guards {
	cfg.validate()
	return newGuards(cfg, string(KindFFGuards), false, core.NewFixedDelta(cfg.Delta))
}

func newGuards(cfg Config, name string, fenced bool, bound core.Bound) *Guards {
	return &Guards{
		name:    name,
		fenced:  fenced,
		bound:   bound,
		k:       cfg.K,
		r:       cfg.R,
		threads: cfg.Threads,
		slots:   make([]hpSlot, cfg.Threads*cfg.K),
		fences:  fence.NewLines(cfg.Threads),
		arena:   cfg.Arena,
	}
}

// Name implements Scheme.
func (g *Guards) Name() string { return g.name }

// OpBegin implements Scheme.
func (g *Guards) OpBegin(int, uint64) {}

// OpEnd implements Scheme.
func (g *Guards) OpEnd(int) {}

// Protect implements Scheme: post the guard; the fenced original orders
// it before the caller's validation read. As with HazardPointers, the
// two disciplines are separately annotated helpers.
func (g *Guards) Protect(tid, slot int, h arena.Handle) bool {
	if g.fenced {
		g.postFenced(tid, slot, h)
	} else {
		g.postFenceFree(tid, slot, h)
	}
	return true
}

// postFenceFree posts the guard with a plain store — the fence-free
// transformation of §4 applied to pass-the-buck guards.
//
//tbtso:fencefree
func (g *Guards) postFenceFree(tid, slot int, h arena.Handle) {
	g.slots[tid*g.k+slot].h.Store(uint64(h))
}

// postFenced posts the guard and fences (the original HLMM discipline).
//
//tbtso:requires-fence
func (g *Guards) postFenced(tid, slot int, h arena.Handle) {
	g.slots[tid*g.k+slot].h.Store(uint64(h))
	g.fences.Full(tid)
}

// Copy implements Scheme (§4.1's copy rule holds for guards too).
//
//tbtso:fencefree
func (g *Guards) Copy(tid, slot int, h arena.Handle) {
	g.slots[tid*g.k+slot].h.Store(uint64(h))
}

// Visit implements Scheme.
func (g *Guards) Visit(int) bool { return false }

// UpdateHint implements Scheme.
func (g *Guards) UpdateHint(int, uint64) {}

// Retire implements Scheme: hand the object to the shared pool; any
// thread whose retirement tips the pool past R runs a Liberate pass.
func (g *Guards) Retire(tid int, h arena.Handle) {
	g.mu.Lock()
	g.pool = append(g.pool, retired{h: h, t: vclock.Now()})
	over := len(g.pool) >= g.r
	g.mu.Unlock()
	g.waste.Add(1)
	if over {
		g.Liberate(tid)
	}
}

// Liberate is the pass-the-buck reclamation pass: take the pool, free
// every sufficiently old object no guard protects, put the rest back.
// Unlike hazard pointers' per-thread reclaim, it liberates other
// threads' retirees too.
func (g *Guards) Liberate(tid int) {
	g.liberates.Add(1)
	g.mu.Lock()
	batch := g.pool
	g.pool = nil
	g.mu.Unlock()
	if len(batch) == 0 {
		return
	}

	cutoff := int64(1<<63 - 1)
	if g.bound != nil {
		cutoff = g.bound.Cutoff()
	}
	guarded := make(map[uint64]struct{}, len(g.slots))
	for i := range g.slots {
		if v := g.slots[i].h.Load(); v != 0 {
			guarded[v] = struct{}{}
		}
	}

	kept := batch[:0]
	freed := 0
	for _, e := range batch {
		if e.t >= cutoff {
			kept = append(kept, e)
			continue
		}
		if _, ok := guarded[uint64(e.h)]; ok {
			kept = append(kept, e) // pass the buck: someone guards it
			continue
		}
		g.arena.Free(tid, e.h)
		freed++
	}
	g.waste.Add(-int64(freed))
	g.freed.Add(uint64(freed))
	if len(kept) > 0 {
		g.mu.Lock()
		g.pool = append(g.pool, kept...)
		g.mu.Unlock()
	}
}

// Unreclaimed implements Scheme.
func (g *Guards) Unreclaimed() int { return int(g.waste.Load()) }

// Flush implements Scheme.
func (g *Guards) Flush(tid int) {
	if g.bound != nil {
		g.mu.Lock()
		newest := int64(0)
		for _, e := range g.pool {
			if e.t > newest {
				newest = e.t
			}
		}
		g.mu.Unlock()
		if newest > 0 {
			g.bound.Wait(newest)
		}
	}
	g.Liberate(tid)
}

// Close implements Scheme.
func (g *Guards) Close() {}

// Stats reports liberation passes and total frees.
func (g *Guards) Stats() (liberates, freed uint64) {
	return g.liberates.Load(), g.freed.Load()
}
