package smr

import "sync/atomic"

// This file holds the two link-word primitives of the paper's §4
// protect/retire protocol that live on the DATA STRUCTURE side rather
// than inside the scheme: validating a traversal source after a
// protect, and the removal CAS that precedes Retire. Data structures
// (internal/list, and the hash table through it) call these instead of
// raw atomics so the protocol steps are named, annotated, and
// extractable by tbtso-verify as the `ffhp` pair (docs/VERIFY.md).

// Validate re-reads a link word after a hazard-pointer publication and
// reports whether it still holds want — Figure 1's "validate *prev"
// (lines 33/36/38). For FFHP the preceding protect store is unfenced,
// so this load may execute while the publication is still buffered;
// the §4.2 argument that reclaimers cannot miss it anyway is exactly
// what the `ffhp` certificate checks. Writer step 2 of that pair.
//
//tbtso:verify pair=ffhp role=writer step=2
//tbtso:fencefree
func Validate(link *atomic.Uint64, want uint64) bool {
	return link.Load() == want
}

// PublishLink CASes a link word from old to new, publishing a
// structural update. For removals (unlink before Retire) the x86 LOCK
// semantics of the CAS make the removal globally visible before the
// retire — the §4.2 precondition the Δ-bound argument starts from.
// Reader step 1 of the `ffhp` pair: the checker models the successful
// CAS as a serializing RMW.
//
//tbtso:verify pair=ffhp role=reader step=1
func PublishLink(link *atomic.Uint64, old, new uint64) bool {
	return link.CompareAndSwap(old, new) //tbtso:model val=1
}
