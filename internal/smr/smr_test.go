package smr

import (
	"testing"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/core"
	"tbtso/internal/ostick"
)

func testConfig(threads int) Config {
	return Config{
		Threads: threads,
		K:       3,
		R:       threads*3 + 2,
		Arena:   arena.New(4096, threads+1),
		Delta:   2 * time.Millisecond,
	}
}

func TestRegistryConstructsEveryKind(t *testing.T) {
	board := ostick.NewBoard(2, time.Millisecond)
	defer board.Stop()
	for _, k := range append(AllKinds(), KindLeak) {
		cfg := testConfig(2)
		cfg.Board = board
		s := New(k, cfg)
		if s.Name() == "" {
			t.Fatalf("%v: empty name", k)
		}
		s.OpBegin(0, 0)
		s.Protect(0, 0, arena.Nil)
		s.Visit(0)
		s.OpEnd(0)
		s.Flush(0)
		s.Close()
	}
}

func TestHPProtectedNodeSurvivesReclaim(t *testing.T) {
	cfg := testConfig(2)
	hp := NewHP(cfg)
	defer hp.Close()
	h := cfg.Arena.Alloc(0)
	hp.Protect(1, 0, h) // thread 1 protects
	// Thread 0 retires it R times' worth of other nodes to force scans.
	hp.Retire(0, h)
	for i := 0; i < cfg.R+2; i++ {
		x := cfg.Arena.Alloc(0)
		hp.Retire(0, x)
	}
	if cfg.Arena.Violations() != 0 {
		t.Fatalf("violations: %d", cfg.Arena.Violations())
	}
	// h must still be live: reading through it must not fault.
	_ = cfg.Arena.Key(h)
	if cfg.Arena.Violations() != 0 {
		t.Fatal("protected node was freed")
	}
	// Unprotect; now a flush must free everything.
	hp.Protect(1, 0, arena.Nil)
	hp.Flush(0)
	if got := hp.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed = %d after flush", got)
	}
}

func TestFFHPDefersYoungNodes(t *testing.T) {
	cfg := testConfig(1)
	cfg.R = 8
	cfg.Delta = 50 * time.Millisecond
	ff := NewFFHP(cfg)
	defer ff.Close()
	// Retire R-1 nodes: below threshold, nothing freed.
	for i := 0; i < cfg.R-1; i++ {
		ff.Retire(0, cfg.Arena.Alloc(0))
	}
	if got := ff.Unreclaimed(); got != cfg.R-1 {
		t.Fatalf("unreclaimed = %d, want %d", got, cfg.R-1)
	}
	// An explicit reclaim must not free anything: all nodes are younger
	// than Δ.
	ff.reclaim(0)
	if frees := cfg.Arena.Frees(); frees != 0 {
		t.Fatalf("reclaim freed %d nodes younger than Δ", frees)
	}
}

func TestFFHPRetireLoopFreesOnceEligible(t *testing.T) {
	cfg := testConfig(1)
	cfg.R = 8
	cfg.Delta = 3 * time.Millisecond
	ff := NewFFHP(cfg)
	defer ff.Close()
	start := time.Now()
	// Crossing R forces the retire loop, which per Figure 2b spins
	// reclaim() until below R — i.e. it waits out Δ.
	for i := 0; i < cfg.R; i++ {
		ff.Retire(0, cfg.Arena.Alloc(0))
	}
	if got := ff.Unreclaimed(); got >= cfg.R {
		t.Fatalf("retire loop exited with %d >= R", got)
	}
	if waited := time.Since(start); waited < cfg.Delta/2 {
		t.Fatalf("retire loop returned after %v — did not wait out Δ", waited)
	}
	_, loops, frees := ff.Scans(0)
	if loops == 0 || frees == 0 {
		t.Fatalf("loops=%d frees=%d", loops, frees)
	}
}

func TestFFHPAdaptedUsesBoard(t *testing.T) {
	board := ostick.NewBoard(2, time.Millisecond)
	defer board.Stop()
	cfg := testConfig(1)
	cfg.Board = board
	s := New(KindFFHPTicks, cfg)
	defer s.Close()
	if s.Name() != string(KindFFHPTicks) {
		t.Fatalf("name = %q", s.Name())
	}
	for i := 0; i < cfg.R; i++ {
		s.Retire(0, cfg.Arena.Alloc(0))
	}
	if got := s.Unreclaimed(); got >= cfg.R {
		t.Fatalf("adapted retire loop exited with %d >= R", got)
	}
}

func TestFFHPBoundImmediateFreesInstantly(t *testing.T) {
	cfg := testConfig(1)
	cfg.R = 4
	ff := NewFFHPBound(cfg, core.Immediate{})
	defer ff.Close()
	for i := 0; i < cfg.R; i++ {
		ff.Retire(0, cfg.Arena.Alloc(0))
	}
	if got := ff.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed = %d with immediate bound", got)
	}
}

func TestConstrainedModeSkipsPointlessScans(t *testing.T) {
	// §4.2.1 constrained case (Δ > R > H): reclaim() must do no work
	// until the oldest H+1 retirees are past the bound.
	cfg := testConfig(1) // H = 3
	cfg.R = 8
	cfg.Delta = 40 * time.Millisecond
	ff := NewFFHP(cfg)
	defer ff.Close()
	ff.SetConstrainedMode(true)
	for i := 0; i < cfg.R-1; i++ {
		ff.Retire(0, cfg.Arena.Alloc(0))
	}
	ff.ReclaimNow(0)
	ff.ReclaimNow(0)
	if scans, _, _ := ff.Scans(0); scans != 0 {
		t.Fatalf("constrained reclaim scanned %d times before the bound passed", scans)
	}
	// Once the bound passes for the oldest H+1, scans resume and free.
	cfg2 := testConfig(1)
	cfg2.R = 8
	cfg2.Delta = time.Millisecond
	ff2 := NewFFHP(cfg2)
	defer ff2.Close()
	ff2.SetConstrainedMode(true)
	for i := 0; i < cfg2.R; i++ {
		ff2.Retire(0, cfg2.Arena.Alloc(0)) // the retire loop waits out Δ
	}
	if scans, _, frees := ff2.Scans(0); scans == 0 || frees == 0 {
		t.Fatalf("constrained reclaim never resumed: scans=%d frees=%d", scans, frees)
	}
}

func TestRCUStalledReaderBlocksReclamation(t *testing.T) {
	cfg := testConfig(2)
	r := NewRCU(cfg)
	defer r.Close()
	r.OpBegin(1, 0) // reader 1 enters and stalls
	for i := 0; i < 10; i++ {
		r.Retire(0, cfg.Arena.Alloc(0))
		r.OpEnd(0) // thread 0 keeps passing quiescent states
	}
	time.Sleep(10 * DefaultGracePeriod)
	if got := r.Unreclaimed(); got != 10 {
		t.Fatalf("RCU freed %d nodes while a reader was stalled", 10-got)
	}
	// Reader leaves; grace periods resume.
	r.OpEnd(1)
	deadline := time.Now().Add(2 * time.Second)
	for r.Unreclaimed() > 0 {
		r.OpEnd(0)
		r.OpEnd(1)
		if time.Now().After(deadline) {
			t.Fatalf("RCU never freed after reader left: %d", r.Unreclaimed())
		}
		time.Sleep(DefaultGracePeriod)
	}
}

func TestRCUOfflineUnblocks(t *testing.T) {
	cfg := testConfig(2)
	r := NewRCU(cfg)
	defer r.Close()
	r.Retire(0, cfg.Arena.Alloc(0))
	r.Offline(1) // thread 1 never ran; mark it offline
	deadline := time.Now().Add(2 * time.Second)
	for r.Unreclaimed() > 0 {
		r.OpEnd(0)
		if time.Now().After(deadline) {
			t.Fatal("offline thread still blocks grace periods")
		}
		time.Sleep(DefaultGracePeriod)
	}
}

func TestEBRActiveReaderBlocksAdvance(t *testing.T) {
	cfg := testConfig(2)
	e := NewEBR(cfg)
	defer e.Close()
	e.OpBegin(1, 0) // reader active in epoch 0
	for i := 0; i < 3*cfg.R; i++ {
		e.Retire(0, cfg.Arena.Alloc(0))
	}
	if frees := cfg.Arena.Frees(); frees != 0 {
		t.Fatalf("EBR freed %d nodes with a pinned reader", frees)
	}
	e.OpEnd(1)
	for i := 0; i < 8; i++ {
		e.OpBegin(1, 0)
		e.OpEnd(1)
		e.Retire(0, cfg.Arena.Alloc(0))
		e.tryAdvance(0)
	}
	e.Flush(0)
	if got := cfg.Arena.Frees(); got == 0 {
		t.Fatal("EBR never freed after reader left")
	}
}

func TestDTAFreesWhenNoOpsInFlight(t *testing.T) {
	cfg := testConfig(2)
	d := NewDTA(cfg)
	defer d.Close()
	d.Retire(0, cfg.Arena.Alloc(0))
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("DTA kept %d nodes with no ops in flight", got)
	}
}

func TestDTAInFlightOpBlocksFrees(t *testing.T) {
	cfg := testConfig(2)
	d := NewDTA(cfg)
	defer d.Close()
	d.OpBegin(1, 0)
	time.Sleep(time.Millisecond) // ensure the retire is after op begin
	d.Retire(0, cfg.Arena.Alloc(0))
	if got := d.Unreclaimed(); got != 1 {
		t.Fatalf("DTA freed a node retired during an in-flight op")
	}
	d.OpEnd(1)
	d.Flush(0)
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("DTA kept %d nodes after ops finished", got)
	}
}

func TestStackTrackAbortsOnConflict(t *testing.T) {
	cfg := testConfig(2)
	s := NewStackTrack(cfg)
	defer s.Close()
	s.OpBegin(0, 7)
	// Walk up to just before a split boundary: no restart.
	for i := 0; i < stSplitVisits-1; i++ {
		if s.Visit(0) {
			t.Fatal("unexpected restart before split boundary")
		}
	}
	// A conflicting update in the same shard, then the boundary visit.
	s.UpdateHint(1, 7)
	if !s.Visit(0) {
		t.Fatal("no restart despite conflicting update at split boundary")
	}
	_, aborts, _ := s.TxnStats(0)
	if aborts != 1 {
		t.Fatalf("aborts = %d", aborts)
	}
	s.OpEnd(0)
}

func TestStackTrackSplitsWithoutConflict(t *testing.T) {
	cfg := testConfig(1)
	s := NewStackTrack(cfg)
	defer s.Close()
	s.OpBegin(0, 3)
	for i := 0; i < 3*stSplitVisits; i++ {
		if s.Visit(0) {
			t.Fatal("restart without any conflict")
		}
	}
	s.OpEnd(0)
	_, _, splits := s.TxnStats(0)
	if splits != 3 {
		t.Fatalf("splits = %d, want 3", splits)
	}
}

func TestLeakyNeverFrees(t *testing.T) {
	cfg := testConfig(1)
	l := NewLeaky(cfg)
	defer l.Close()
	for i := 0; i < 5; i++ {
		l.Retire(0, cfg.Arena.Alloc(0))
	}
	l.Flush(0)
	if got := l.Unreclaimed(); got != 5 {
		t.Fatalf("unreclaimed = %d", got)
	}
	if cfg.Arena.Frees() != 0 {
		t.Fatal("leaky scheme freed something")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Threads: 0, K: 1, R: 10, Arena: arena.New(8, 1)},
		{Threads: 1, K: 1, R: 1, Arena: arena.New(8, 1)}, // R <= H
		{Threads: 1, K: 1, R: 10},                        // nil arena
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", bad)
				}
			}()
			NewHP(bad)
		}()
	}
}

func TestPlistMapAblationStillCorrect(t *testing.T) {
	cfg := testConfig(2)
	hp := NewHP(cfg)
	defer hp.Close()
	hp.SetPlistMap(true)
	h := cfg.Arena.Alloc(0)
	hp.Protect(1, 2, h)
	for i := 0; i < cfg.R+1; i++ {
		hp.Retire(0, cfg.Arena.Alloc(0))
	}
	hp.Retire(0, h)
	hp.reclaim(0)
	_ = cfg.Arena.Key(h)
	if cfg.Arena.Violations() != 0 {
		t.Fatal("map-based plist freed a protected node")
	}
}

func TestRCUOfflineIdempotent(t *testing.T) {
	cfg := testConfig(2)
	r := NewRCU(cfg)
	defer r.Close()
	r.Retire(0, cfg.Arena.Alloc(0))
	r.Offline(1)
	r.Offline(1) // double offline must not wrap the counter
	deadline := time.Now().Add(2 * time.Second)
	for r.Unreclaimed() > 0 {
		r.OpEnd(0)
		if time.Now().After(deadline) {
			t.Fatal("grace periods frozen after double Offline")
		}
		time.Sleep(DefaultGracePeriod)
	}
}
