package smr

import (
	"testing"
	"time"

	"tbtso/internal/arena"
)

func TestGuardsProtectedObjectSurvivesLiberation(t *testing.T) {
	cfg := testConfig(2)
	g := NewGuards(cfg)
	defer g.Close()
	h := cfg.Arena.Alloc(0)
	g.Protect(1, 0, h)
	g.Retire(0, h)
	for i := 0; i < cfg.R+2; i++ {
		g.Retire(0, cfg.Arena.Alloc(0))
	}
	_ = cfg.Arena.Key(h)
	if cfg.Arena.Violations() != 0 {
		t.Fatal("guarded object was liberated")
	}
	g.Protect(1, 0, arena.Nil)
	g.Liberate(0)
	if got := g.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed = %d after unguard + liberate", got)
	}
}

func TestGuardsPoolIsShared(t *testing.T) {
	// The defining difference from hazard pointers: thread 1 can
	// liberate what thread 0 retired.
	cfg := testConfig(2)
	g := NewGuards(cfg)
	defer g.Close()
	for i := 0; i < 5; i++ {
		g.Retire(0, cfg.Arena.Alloc(0))
	}
	g.Liberate(1)
	if got := g.Unreclaimed(); got != 0 {
		t.Fatalf("thread 1 failed to liberate thread 0's retirees: %d left", got)
	}
	if cfg.Arena.Frees() != 5 {
		t.Fatalf("frees = %d", cfg.Arena.Frees())
	}
}

func TestFFGuardsDeferYoungObjects(t *testing.T) {
	cfg := testConfig(1)
	cfg.Delta = 50 * time.Millisecond
	g := NewFFGuards(cfg)
	defer g.Close()
	g.Retire(0, cfg.Arena.Alloc(0))
	g.Liberate(0)
	if got := g.Unreclaimed(); got != 1 {
		t.Fatalf("fence-free guards liberated an object younger than Δ")
	}
}

func TestFFGuardsFlushWaitsOutDelta(t *testing.T) {
	cfg := testConfig(1)
	cfg.Delta = 3 * time.Millisecond
	g := NewFFGuards(cfg)
	defer g.Close()
	g.Retire(0, cfg.Arena.Alloc(0))
	start := time.Now()
	g.Flush(0)
	if g.Unreclaimed() != 0 {
		t.Fatal("flush left objects behind")
	}
	if time.Since(start) < cfg.Delta/2 {
		t.Fatal("flush did not wait out Δ")
	}
}

func TestGuardsViaRegistry(t *testing.T) {
	for _, k := range []Kind{KindGuards, KindFFGuards} {
		s := New(k, testConfig(2))
		if s.Name() != string(k) {
			t.Fatalf("name = %q", s.Name())
		}
		s.Retire(0, testConfigArena(s))
		s.Close()
	}
}

// testConfigArena allocs a node from the scheme's arena via a tiny
// type switch (keeps the registry test self-contained).
func testConfigArena(s Scheme) arena.Handle {
	if g, ok := s.(*Guards); ok {
		return g.arena.Alloc(0)
	}
	panic("unexpected scheme")
}
