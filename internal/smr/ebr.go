package smr

import (
	"sync/atomic"

	"tbtso/internal/arena"
	"tbtso/internal/fence"
)

// EBR is classic epoch-based reclamation [15]: readers announce the
// global epoch on entry; a retired node is freed once the global epoch
// has advanced twice past its retirement epoch, which cannot happen
// while any reader that might hold it is still active.
//
// EBR is the related-work baseline: its read side costs one announce
// store per operation (cheaper than HP's per-node fence, costlier than
// QSBR's nothing), and like RCU it is blocking — a stalled reader stops
// the epoch from advancing.
type EBR struct {
	cfg    Config
	epoch  atomic.Uint64
	locals []paddedInt // announced epoch<<1 | active
	perTh  []ebrThread
	waste  atomic.Int64
	fences *fence.Lines
}

type ebrThread struct {
	bags    [3][]arena.Handle // bags[e%3] holds nodes retired in epoch e
	bagEpos [3]uint64
	retires int
	_       [32]byte
}

// NewEBR returns an epoch-based scheme.
func NewEBR(cfg Config) *EBR {
	cfg.validate()
	return &EBR{
		cfg:    cfg,
		locals: make([]paddedInt, cfg.Threads),
		perTh:  make([]ebrThread, cfg.Threads),
		fences: fence.NewLines(cfg.Threads),
	}
}

// Name implements Scheme.
func (e *EBR) Name() string { return string(KindEBR) }

// OpBegin implements Scheme: announce the current epoch as active. The
// announce store must be ordered before the traversal's loads, which on
// TSO requires a fence — the cost HP and EBR share and FFHP sheds.
//
//tbtso:requires-fence
func (e *EBR) OpBegin(tid int, _ uint64) {
	cur := e.epoch.Load()
	e.locals[tid].v.Store(int64(cur<<1 | 1))
	e.fences.Full(tid)
}

// OpEnd implements Scheme: go inactive.
func (e *EBR) OpEnd(tid int) {
	e.locals[tid].v.Store(0)
}

// Protect implements Scheme.
func (e *EBR) Protect(int, int, arena.Handle) bool { return false }

// Copy implements Scheme.
func (e *EBR) Copy(int, int, arena.Handle) {}

// Visit implements Scheme.
func (e *EBR) Visit(int) bool { return false }

// UpdateHint implements Scheme.
func (e *EBR) UpdateHint(int, uint64) {}

// Retire implements Scheme.
//
// Bag labeling invariant: bagEpos[slot] ≡ slot (mod 3) whenever the bag
// is nonempty, so a nonempty bag whose label differs from the current
// epoch holds nodes retired at least 3 epochs ago — safe to free under
// the two-epoch rule.
func (e *EBR) Retire(tid int, h arena.Handle) {
	t := &e.perTh[tid]
	cur := e.epoch.Load()
	slot := cur % 3
	if t.bagEpos[slot] != cur {
		e.freeBag(tid, slot) // content is >= 3 epochs old (or empty)
		t.bagEpos[slot] = cur
	}
	t.bags[slot] = append(t.bags[slot], h)
	e.waste.Add(1)
	t.retires++
	if t.retires%e.cfg.R == 0 {
		e.tryAdvance(tid)
	}
}

func (e *EBR) freeBag(tid int, slot uint64) {
	t := &e.perTh[tid]
	for _, h := range t.bags[slot] {
		e.cfg.Arena.Free(tid, h)
	}
	e.waste.Add(-int64(len(t.bags[slot])))
	t.bags[slot] = t.bags[slot][:0]
}

// tryAdvance bumps the global epoch if every active reader has
// announced the current one, then frees the bag that became two epochs
// old.
func (e *EBR) tryAdvance(tid int) {
	cur := e.epoch.Load()
	for i := range e.locals {
		v := e.locals[i].v.Load()
		if v&1 == 1 && uint64(v>>1) != cur {
			return // a reader is still in an older epoch
		}
	}
	if e.epoch.CompareAndSwap(cur, cur+1) {
		// Our bag (cur-1)%3 holds nodes retired at epoch <= cur-1; the
		// global epoch is now cur+1 >= retireEpoch+2, so it is safe.
		// The label is left in place (the bag is empty afterwards and
		// Retire relabels on next use), preserving the residue
		// invariant documented on Retire.
		old := (cur + 2) % 3 // == (cur-1) mod 3
		e.freeBag(tid, old)
	}
}

// Unreclaimed implements Scheme.
func (e *EBR) Unreclaimed() int { return int(e.waste.Load()) }

// Flush implements Scheme: go inactive, then help the epoch forward
// and free every own bag that satisfies the two-epoch rule. If another
// reader stays pinned in an old epoch the epoch cannot advance and some
// bags stay unreclaimed — EBR is blocking, which is exactly the
// limitation (§8) that distinguishes it from FFHP.
func (e *EBR) Flush(tid int) {
	e.locals[tid].v.Store(0)
	t := &e.perTh[tid]
	for attempt := 0; attempt < 64; attempt++ {
		e.tryAdvance(tid)
		cur := e.epoch.Load()
		for slot := uint64(0); slot < 3; slot++ {
			if len(t.bags[slot]) > 0 && t.bagEpos[slot]+2 <= cur {
				e.freeBag(tid, slot)
			}
		}
		if len(t.bags[0])+len(t.bags[1])+len(t.bags[2]) == 0 {
			return
		}
	}
}

// Close implements Scheme.
func (e *EBR) Close() {}
