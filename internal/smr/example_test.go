package smr_test

import (
	"fmt"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/smr"
)

// FFHP end to end: protect, validate (caller's job), retire, and
// Δ-deferred reclamation.
func ExampleNewFFHP() {
	ar := arena.New(64, 2)
	ffhp := smr.NewFFHP(smr.Config{
		Threads: 1,
		K:       3,
		R:       8,
		Arena:   ar,
		Delta:   time.Millisecond,
	})
	defer ffhp.Close()

	node := ar.Alloc(0)
	ar.SetKey(node, 42)

	// The fast path: publish the hazard pointer with NO fence. The
	// returned true means "now revalidate your source pointer".
	needsValidation := ffhp.Protect(0, 0, node)
	fmt.Println("validate after protect:", needsValidation)

	// Some time later the node is removed from its structure (a CAS
	// makes the removal globally visible) and retired.
	ffhp.Protect(0, 0, arena.Nil) // reader moved on
	ffhp.Retire(0, node)

	// Reclamation defers Δ, then frees.
	ffhp.Flush(0)
	fmt.Println("unreclaimed after flush:", ffhp.Unreclaimed())
	fmt.Println("arena frees:", ar.Frees())
	// Output:
	// validate after protect: true
	// unreclaimed after flush: 0
	// arena frees: 1
}
