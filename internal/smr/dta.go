package smr

import (
	"sync/atomic"

	"tbtso/internal/arena"
	"tbtso/internal/fence"
	"tbtso/internal/vclock"
)

// DTA approximates Braginsky, Kogan and Petrank's "drop the anchor"
// reclamation [6] at the cost profile the paper measures:
//
//   - Fast path (readers): every operation updates a per-thread
//     timestamp at begin and end, issues a fence, and performs one
//     anchor compare-and-swap (§7.1.1: "every lookup() operation
//     updates a per-thread timestamp of when it begins and ends
//     (including issuing a fence), and sets a per-thread anchor variable
//     using an atomic compare-and-swap at least once").
//   - Slow path (updaters): after removing a node, the updater reads
//     every thread's timestamp (§7.1.1: "an updater reads each thread's
//     timestamp after removing a node"), which is a cross-core cache
//     miss per thread and is what makes DTA updates two orders of
//     magnitude slower.
//
// The full DTA algorithm additionally freezes list segments to recover
// from stalled threads; that machinery gives DTA bounded memory under
// stalls but does not change the fast-path costs the figures compare,
// so this reproduction omits it (see DESIGN.md).
type DTA struct {
	cfg Config
	// ts[tid] is the thread's current operation-begin timestamp, or 0
	// when idle. Read by every updater on retire — the shared-line
	// traffic DTA pays for.
	ts      []paddedInt
	anchors []paddedInt
	perTh   []dtaThread
	waste   atomic.Int64
	fences  *fence.Lines
}

type dtaThread struct {
	entries []retired
	_       [40]byte
}

// NewDTA returns the drop-the-anchor-style scheme.
func NewDTA(cfg Config) *DTA {
	cfg.validate()
	return &DTA{
		cfg:     cfg,
		ts:      make([]paddedInt, cfg.Threads),
		anchors: make([]paddedInt, cfg.Threads),
		perTh:   make([]dtaThread, cfg.Threads),
		fences:  fence.NewLines(cfg.Threads),
	}
}

// Name implements Scheme.
func (d *DTA) Name() string { return string(KindDTA) }

// OpBegin implements Scheme: timestamp + fence + anchor CAS.
//
//tbtso:requires-fence
func (d *DTA) OpBegin(tid int, _ uint64) {
	d.ts[tid].v.Store(vclock.Now())
	d.fences.Full(tid)
	a := &d.anchors[tid].v
	old := a.Load()
	a.CompareAndSwap(old, old+1)
}

// OpEnd implements Scheme: timestamp update on exit.
func (d *DTA) OpEnd(tid int) {
	d.ts[tid].v.Store(0)
}

// Protect implements Scheme: traversal is quiescence-protected.
func (d *DTA) Protect(int, int, arena.Handle) bool { return false }

// Copy implements Scheme.
func (d *DTA) Copy(int, int, arena.Handle) {}

// Visit implements Scheme.
func (d *DTA) Visit(int) bool { return false }

// UpdateHint implements Scheme.
func (d *DTA) UpdateHint(int, uint64) {}

// Retire implements Scheme: record the node, then read every thread's
// timestamp to free whatever predates all in-flight operations.
func (d *DTA) Retire(tid int, h arena.Handle) {
	t := &d.perTh[tid]
	t.entries = append(t.entries, retired{h: h, t: vclock.Now()})
	d.waste.Add(1)
	d.reclaim(tid)
}

// reclaim frees own entries retired before every in-flight operation
// began. The min-scan is the expensive cross-thread read.
func (d *DTA) reclaim(tid int) {
	cutoff := int64(1<<63 - 1)
	for i := range d.ts {
		if v := d.ts[i].v.Load(); v != 0 && v < cutoff {
			cutoff = v
		}
	}
	t := &d.perTh[tid]
	kept := t.entries[:0]
	freed := 0
	for _, e := range t.entries {
		if e.t >= cutoff {
			kept = append(kept, e)
			continue
		}
		d.cfg.Arena.Free(tid, e.h)
		freed++
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = retired{}
	}
	t.entries = kept
	d.waste.Add(-int64(freed))
}

// Unreclaimed implements Scheme.
func (d *DTA) Unreclaimed() int { return int(d.waste.Load()) }

// Flush implements Scheme.
func (d *DTA) Flush(tid int) {
	d.ts[tid].v.Store(0)
	d.reclaim(tid)
}

// Close implements Scheme.
func (d *DTA) Close() {}
