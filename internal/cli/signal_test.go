package cli

import (
	"context"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSignalContextCancelsOnSignal delivers a real SIGINT to the
// process and asserts the context cancels (the second-signal hard-exit
// path is exercised by the subprocess tests in cmd/tbtso-fuzz).
func TestSignalContextCancelsOnSignal(t *testing.T) {
	var buf strings.Builder
	ctx, stop := SignalContext(context.Background(), &buf)
	defer stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled within 5s of SIGINT")
	}
	if !strings.Contains(buf.String(), "interrupted") {
		t.Fatalf("no interruption note written, got %q", buf.String())
	}
}

// TestSignalContextStop releases the handler without a signal.
func TestSignalContextStop(t *testing.T) {
	ctx, stop := SignalContext(context.Background(), &strings.Builder{})
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not cancel the context")
	}
}

func TestExitCode(t *testing.T) {
	live := context.Background()
	gone, cancel := context.WithCancel(live)
	cancel()
	cases := []struct {
		ctx  context.Context
		code int
		want int
	}{
		{live, 0, 0},
		{live, 1, 1},
		{live, 2, 2},
		{gone, 0, ExitInterrupted},
		{gone, 1, ExitInterrupted},
		{gone, 2, 2}, // usage errors pass through
		{gone, ExitInterrupted, ExitInterrupted},
	}
	for _, c := range cases {
		if got := ExitCode(c.ctx, c.code); got != c.want {
			t.Errorf("ExitCode(ctxErr=%v, %d) = %d, want %d", c.ctx.Err(), c.code, got, c.want)
		}
	}
}
