// Package cli holds the process-lifecycle plumbing shared by the six
// tbtso commands: the SIGINT/SIGTERM handler that turns the first
// signal into a context cancellation (graceful drain: running engines
// stop at their next cooperative check, artifacts and checkpoints are
// flushed, the obs session tears down) and the second into a hard
// exit, plus the exit-code conventions. Every command routes through a
// single `run() int` whose value feeds the one os.Exit in main, so no
// exit path can skip deferred cleanup. See docs/ROBUSTNESS.md.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// Exit codes shared by the commands. 0/1/2 follow the pre-existing
// per-command conventions (clean / findings / usage error); interrupted
// runs use 128+SIGINT so CI and shells can tell "stopped on request,
// partial artifacts are valid" from "found something".
const (
	// ExitInterrupted is returned by a run that drained gracefully
	// after the first SIGINT/SIGTERM (and by the hard second-signal
	// exit): 130 = 128 + SIGINT, the shell convention.
	ExitInterrupted = 130
)

// SignalContext returns a context cancelled by the first SIGINT or
// SIGTERM. The second signal hard-exits the process with
// ExitInterrupted — the escape hatch when the graceful drain itself
// hangs. Notes are written to w (pass os.Stderr). The returned stop
// function releases the signal handler (restoring default delivery)
// and cancels the context.
func SignalContext(parent context.Context, w io.Writer) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case s := <-ch:
			fmt.Fprintf(w, "interrupted (%v): draining and flushing artifacts; a second signal forces exit\n", s)
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
			return
		}
		s := <-ch
		fmt.Fprintf(w, "second signal (%v): hard exit\n", s)
		os.Exit(ExitInterrupted)
	}()
	return ctx, func() {
		signal.Stop(ch)
		cancel()
	}
}

// ExitCode folds interruption into a command's exit code: a run that
// was interrupted never reports success, so a cancelled context turns
// code 0 (and code 1, "findings", whose findings are partial) into
// ExitInterrupted; usage errors (2) pass through.
func ExitCode(ctx context.Context, code int) int {
	if ctx.Err() != nil && code <= 1 {
		return ExitInterrupted
	}
	return code
}
