// Package mc is an exhaustive explicit-state model checker for
// litmus-sized programs under the TSO and TBTSO memory models. Where
// internal/tso samples executions of the clocked abstract machine with
// a seeded scheduler, this package enumerates EVERY interleaving and
// every drain schedule of a small straight-line program, so statements
// like "the 0/0 outcome is impossible under TBTSO[Δ=3]" become
// exhaustive proofs at that bound rather than statistical evidence.
//
// The model: each thread is a fixed sequence of operations over a small
// set of shared variables. A system state is (per-thread program
// counter and wait progress, per-thread FIFO store buffer with entry
// ages, memory, registers). Transitions are: execute a thread's next
// enabled operation, or dequeue the oldest entry of a thread's buffer.
// Every transition ages all buffered entries by one; under TBTSO[Δ] a
// state with an entry of age ≥ Δ admits only dequeue transitions for
// such entries — the temporal bound as a scheduling constraint, exactly
// the admissibility condition of §2. Δ = 0 means unbounded (plain TSO).
//
// Two engines share the model. ExploreSequential (reference.go) is the
// original recursive DFS with string-keyed memoization, kept as the
// oracle. Explore/ExploreBounded/ExploreParallel (explore.go) run a
// work-stealing frontier over a compact binary state encoding with a
// sharded visited set and sound partial-order/symmetry reductions —
// the same outcome sets, orders of magnitude faster. See docs/MC.md.
package mc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OpKind enumerates the operation alphabet.
type OpKind int

// The operations.
const (
	// OpStore buffers Val into Addr.
	OpStore OpKind = iota
	// OpLoad reads Addr (own buffer first, then memory) into Reg.
	OpLoad
	// OpFence completes only when the thread's buffer is empty.
	OpFence
	// OpRMW atomically adds Val to Addr and stores the OLD value into
	// Reg; it requires an empty buffer (x86 LOCK semantics).
	OpRMW
	// OpWait completes only after Val global transitions have occurred
	// since it became the thread's next operation — the "wait Δ time
	// units" of the TBTSO flag principle.
	OpWait
)

// Op is one instruction.
type Op struct {
	Kind OpKind
	Addr int
	Val  int
	Reg  int
}

// Convenience constructors.
func St(addr, val int) Op     { return Op{Kind: OpStore, Addr: addr, Val: val} }
func Ld(addr, reg int) Op     { return Op{Kind: OpLoad, Addr: addr, Reg: reg} }
func Fence() Op               { return Op{Kind: OpFence} }
func RMW(addr, v, reg int) Op { return Op{Kind: OpRMW, Addr: addr, Val: v, Reg: reg} }
func Wait(n int) Op           { return Op{Kind: OpWait, Val: n} }

// Program is a set of threads over Vars shared variables (all initially
// zero) and Regs registers per thread (all initially zero).
type Program struct {
	Threads [][]Op
	Vars    int
	Regs    int
}

// shape renders the program's dimensions for errors and panics.
func (p Program) shape(delta int) string {
	lens := make([]string, len(p.Threads))
	for i, t := range p.Threads {
		lens[i] = fmt.Sprint(len(t))
	}
	return fmt.Sprintf("%d threads (%s ops), %d vars, %d regs, Δ=%d",
		len(p.Threads), strings.Join(lens, "+"), p.Vars, p.Regs, delta)
}

// Result is the outcome of an exhaustive exploration.
type Result struct {
	// Outcomes maps canonical register-assignment strings (e.g.
	// "T0:r0=1 T1:r0=0") to true.
	Outcomes map[string]bool
	// States is the number of distinct states visited. For the
	// parallel engine this counts canonical states: reductions
	// (terminal collapse, partial order, symmetry) make it smaller
	// than the reference explorer's count for the same program.
	States int
	// Transitions is the number of successor states generated,
	// including ones the visited set deduplicated (parallel engine
	// only; the reference explorer leaves it zero).
	Transitions int
	// DedupHits is how many generated successors were already in the
	// visited set (parallel engine only).
	DedupHits int
	// PorPrunes is how many states were expanded through the
	// invisible-dequeue partial-order reduction instead of a full
	// successor fan-out (parallel engine only; the reference explorer
	// leaves it zero).
	PorPrunes int
	// TerminalCollapses is how many terminal states had their drain
	// tails collapsed instead of explored (parallel engine only).
	TerminalCollapses int
}

// Has reports whether the outcome string was observed.
func (r Result) Has(outcome string) bool { return r.Outcomes[outcome] }

// List returns the outcomes sorted.
func (r Result) List() []string {
	out := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type bufEntry struct {
	addr, val int
	age       int
}

type state struct {
	pc    []int
	wait  []int  // remaining Wait transitions per thread
	armed []bool // whether the thread's current Wait has been armed
	bufs  [][]bufEntry
	mem   []int
	regs  [][]int
}

func newState(p Program) *state {
	s := &state{
		pc:    make([]int, len(p.Threads)),
		wait:  make([]int, len(p.Threads)),
		armed: make([]bool, len(p.Threads)),
		bufs:  make([][]bufEntry, len(p.Threads)),
		mem:   make([]int, p.Vars),
		regs:  make([][]int, len(p.Threads)),
	}
	for i := range s.regs {
		s.regs[i] = make([]int, p.Regs)
	}
	return s
}

func (s *state) clone() *state {
	c := &state{
		pc:    append([]int(nil), s.pc...),
		wait:  append([]int(nil), s.wait...),
		armed: append([]bool(nil), s.armed...),
		bufs:  make([][]bufEntry, len(s.bufs)),
		mem:   append([]int(nil), s.mem...),
		regs:  make([][]int, len(s.regs)),
	}
	for i := range s.bufs {
		c.bufs[i] = append([]bufEntry(nil), s.bufs[i]...)
	}
	for i := range s.regs {
		c.regs[i] = append([]int(nil), s.regs[i]...)
	}
	return c
}

// copyInto overwrites dst with src, reusing dst's slice capacity so the
// parallel engine's per-worker scratch states allocate only while
// buffers grow past their high-water mark.
func (s *state) copyInto(dst *state) {
	dst.pc = append(dst.pc[:0], s.pc...)
	dst.wait = append(dst.wait[:0], s.wait...)
	dst.armed = append(dst.armed[:0], s.armed...)
	dst.mem = append(dst.mem[:0], s.mem...)
	if cap(dst.bufs) < len(s.bufs) {
		dst.bufs = make([][]bufEntry, len(s.bufs))
	}
	dst.bufs = dst.bufs[:len(s.bufs)]
	for i := range s.bufs {
		dst.bufs[i] = append(dst.bufs[i][:0], s.bufs[i]...)
	}
	if cap(dst.regs) < len(s.regs) {
		dst.regs = make([][]int, len(s.regs))
	}
	dst.regs = dst.regs[:len(s.regs)]
	for i := range s.regs {
		dst.regs[i] = append(dst.regs[i][:0], s.regs[i]...)
	}
}

// ageAll advances every buffered entry's age by one, capping at cap
// (ages beyond the bound are equivalent, which keeps the space finite).
func (s *state) ageAll(cap int) {
	for i := range s.bufs {
		for j := range s.bufs[i] {
			if s.bufs[i][j].age < cap {
				s.bufs[i][j].age++
			}
		}
	}
	for i := range s.wait {
		if s.wait[i] > 0 {
			s.wait[i]--
		}
	}
}

func (s *state) outcome() string {
	return outcomeString(s.regs)
}

// FormatOutcome renders per-thread register files in the package's
// canonical "T0:r0=1 T1:r0=0" form — the key space of Result.Outcomes.
// External harnesses (internal/fuzz's machine runner) use it to put
// sampled executions in the checker's outcome vocabulary.
func FormatOutcome(regs [][]int) string { return outcomeString(regs) }

// AppendOutcome appends the canonical rendering of regs to dst and
// returns the extended slice — the allocation-free form of
// FormatOutcome for hot paths that format an outcome per machine run
// (fuzz campaigns reuse one buffer across a whole campaign).
func AppendOutcome(dst []byte, regs [][]int) []byte {
	first := true
	for i, rf := range regs {
		for r, v := range rf {
			if !first {
				dst = append(dst, ' ')
			}
			first = false
			dst = append(dst, 'T')
			dst = strconv.AppendInt(dst, int64(i), 10)
			dst = append(dst, ':', 'r')
			dst = strconv.AppendInt(dst, int64(r), 10)
			dst = append(dst, '=')
			dst = strconv.AppendInt(dst, int64(v), 10)
		}
	}
	return dst
}

// outcomeString renders per-thread register files in the package's
// canonical "T0:r0=1 T1:r0=0" form.
func outcomeString(regs [][]int) string {
	return string(AppendOutcome(nil, regs))
}

// DefaultMaxStates bounds an exploration. The parallel engine sustains
// millions of states per second, so this budget is reachable in
// seconds; the reference explorer needs minutes for it.
const DefaultMaxStates = 2_000_000

// Explore exhaustively enumerates all executions of p under TBTSO with
// the given drain bound Δ in transitions (0 = plain TSO, unbounded).
// It panics — naming the program shape and the states visited — if the
// state space exceeds DefaultMaxStates; use ExploreBounded to handle
// truncation explicitly.
func Explore(p Program, delta int) Result {
	res, err := ExploreParallel(p, delta, Options{})
	if err != nil {
		panic(err.Error())
	}
	return res
}

// ExploreBounded is Explore with an explicit state budget. On
// truncation it returns the partial Result (Outcomes is a subset and
// absence proves nothing) together with a *TruncatedError describing
// the budget, the states visited and the program shape; match it with
// errors.Is(err, ErrTruncated) or errors.As.
func ExploreBounded(p Program, delta, maxStates int) (Result, error) {
	return ExploreParallel(p, delta, Options{MaxStates: maxStates})
}
