// Package mc is an exhaustive explicit-state model checker for
// litmus-sized programs under the TSO and TBTSO memory models. Where
// internal/tso samples executions of the clocked abstract machine with
// a seeded scheduler, this package enumerates EVERY interleaving and
// every drain schedule of a small straight-line program, so statements
// like "the 0/0 outcome is impossible under TBTSO[Δ=3]" become
// exhaustive proofs at that bound rather than statistical evidence.
//
// The model: each thread is a fixed sequence of operations over a small
// set of shared variables. A system state is (per-thread program
// counter and wait progress, per-thread FIFO store buffer with entry
// ages, memory, registers). Transitions are: execute a thread's next
// enabled operation, or dequeue the oldest entry of a thread's buffer.
// Every transition ages all buffered entries by one; under TBTSO[Δ] a
// state with an entry of age ≥ Δ admits only dequeue transitions for
// such entries — the temporal bound as a scheduling constraint, exactly
// the admissibility condition of §2. Δ = 0 means unbounded (plain TSO).
//
// Depth-first search with full-state memoization keeps the exploration
// finite; final register assignments are collected as the program's
// outcome set.
package mc

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind enumerates the operation alphabet.
type OpKind int

// The operations.
const (
	// OpStore buffers Val into Addr.
	OpStore OpKind = iota
	// OpLoad reads Addr (own buffer first, then memory) into Reg.
	OpLoad
	// OpFence completes only when the thread's buffer is empty.
	OpFence
	// OpRMW atomically adds Val to Addr and stores the OLD value into
	// Reg; it requires an empty buffer (x86 LOCK semantics).
	OpRMW
	// OpWait completes only after Val global transitions have occurred
	// since it became the thread's next operation — the "wait Δ time
	// units" of the TBTSO flag principle.
	OpWait
)

// Op is one instruction.
type Op struct {
	Kind OpKind
	Addr int
	Val  int
	Reg  int
}

// Convenience constructors.
func St(addr, val int) Op     { return Op{Kind: OpStore, Addr: addr, Val: val} }
func Ld(addr, reg int) Op     { return Op{Kind: OpLoad, Addr: addr, Reg: reg} }
func Fence() Op               { return Op{Kind: OpFence} }
func RMW(addr, v, reg int) Op { return Op{Kind: OpRMW, Addr: addr, Val: v, Reg: reg} }
func Wait(n int) Op           { return Op{Kind: OpWait, Val: n} }

// Program is a set of threads over Vars shared variables (all initially
// zero) and Regs registers per thread (all initially zero).
type Program struct {
	Threads [][]Op
	Vars    int
	Regs    int
}

// Result is the outcome of an exhaustive exploration.
type Result struct {
	// Outcomes maps canonical register-assignment strings (e.g.
	// "T0:r0=1 T1:r0=0") to true.
	Outcomes map[string]bool
	// States is the number of distinct states visited.
	States int
}

// Has reports whether the outcome string was observed.
func (r Result) Has(outcome string) bool { return r.Outcomes[outcome] }

// List returns the outcomes sorted.
func (r Result) List() []string {
	out := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type bufEntry struct {
	addr, val int
	age       int
}

type state struct {
	pc    []int
	wait  []int  // remaining Wait transitions per thread
	armed []bool // whether the thread's current Wait has been armed
	bufs  [][]bufEntry
	mem   []int
	regs  [][]int
}

func newState(p Program) *state {
	s := &state{
		pc:    make([]int, len(p.Threads)),
		wait:  make([]int, len(p.Threads)),
		armed: make([]bool, len(p.Threads)),
		bufs:  make([][]bufEntry, len(p.Threads)),
		mem:   make([]int, p.Vars),
		regs:  make([][]int, len(p.Threads)),
	}
	for i := range s.regs {
		s.regs[i] = make([]int, p.Regs)
	}
	return s
}

func (s *state) clone() *state {
	c := &state{
		pc:    append([]int(nil), s.pc...),
		wait:  append([]int(nil), s.wait...),
		armed: append([]bool(nil), s.armed...),
		bufs:  make([][]bufEntry, len(s.bufs)),
		mem:   append([]int(nil), s.mem...),
		regs:  make([][]int, len(s.regs)),
	}
	for i := range s.bufs {
		c.bufs[i] = append([]bufEntry(nil), s.bufs[i]...)
	}
	for i := range s.regs {
		c.regs[i] = append([]int(nil), s.regs[i]...)
	}
	return c
}

// key canonicalizes the state for memoization.
func (s *state) key() string {
	var b strings.Builder
	for i := range s.pc {
		fmt.Fprintf(&b, "p%d.%d.%v;", s.pc[i], s.wait[i], s.armed[i])
		for _, e := range s.bufs[i] {
			fmt.Fprintf(&b, "%d=%d@%d,", e.addr, e.val, e.age)
		}
		b.WriteByte('|')
		for _, r := range s.regs[i] {
			fmt.Fprintf(&b, "%d,", r)
		}
		b.WriteByte(';')
	}
	for _, v := range s.mem {
		fmt.Fprintf(&b, "%d.", v)
	}
	return b.String()
}

// ageAll advances every buffered entry's age by one, capping at cap
// (ages beyond the bound are equivalent, which keeps the space finite).
func (s *state) ageAll(cap int) {
	for i := range s.bufs {
		for j := range s.bufs[i] {
			if s.bufs[i][j].age < cap {
				s.bufs[i][j].age++
			}
		}
	}
	for i := range s.wait {
		if s.wait[i] > 0 {
			s.wait[i]--
		}
	}
}

func (s *state) outcome() string {
	var parts []string
	for i, regs := range s.regs {
		for r, v := range regs {
			parts = append(parts, fmt.Sprintf("T%d:r%d=%d", i, r, v))
		}
	}
	return strings.Join(parts, " ")
}

// DefaultMaxStates bounds an exploration; litmus-sized programs use a
// few hundred states, so hitting this indicates a program too large for
// exhaustive checking.
const DefaultMaxStates = 2_000_000

// Explore exhaustively enumerates all executions of p under TBTSO with
// the given drain bound Δ in transitions (0 = plain TSO, unbounded).
// It panics if the state space exceeds DefaultMaxStates; use
// ExploreBounded to handle truncation explicitly.
func Explore(p Program, delta int) Result {
	res, complete := ExploreBounded(p, delta, DefaultMaxStates)
	if !complete {
		panic("mc: state space exceeds DefaultMaxStates; program too large for exhaustive checking")
	}
	return res
}

// ExploreBounded is Explore with an explicit state budget; complete
// reports whether the enumeration finished (when false, Outcomes is a
// subset and absence proves nothing).
func ExploreBounded(p Program, delta, maxStates int) (res Result, complete bool) {
	if len(p.Threads) == 0 {
		return Result{Outcomes: map[string]bool{"": true}, States: 1}, true
	}
	res = Result{Outcomes: map[string]bool{}}
	complete = true
	seen := map[string]bool{}
	ageCap := delta + 1
	if delta == 0 {
		ageCap = 0 // ages are irrelevant without a bound; keep them 0
	}

	var dfs func(s *state)
	dfs = func(s *state) {
		if res.States >= maxStates {
			complete = false
			return
		}
		k := s.key()
		if seen[k] {
			return
		}
		seen[k] = true
		res.States++

		// Forced dequeues: under TBTSO[Δ] an entry at age ≥ Δ must
		// leave before anything else happens.
		if delta > 0 {
			forced := false
			for i := range s.bufs {
				if len(s.bufs[i]) > 0 && s.bufs[i][0].age >= delta {
					forced = true
					n := s.clone()
					e := n.bufs[i][0]
					n.bufs[i] = n.bufs[i][1:]
					n.mem[e.addr] = e.val
					n.ageAll(ageCap)
					dfs(n)
				}
			}
			if forced {
				return // only forced transitions are admissible here
			}
		}

		progress := false
		for i, ops := range p.Threads {
			// Voluntary dequeue.
			if len(s.bufs[i]) > 0 {
				progress = true
				n := s.clone()
				e := n.bufs[i][0]
				n.bufs[i] = n.bufs[i][1:]
				n.mem[e.addr] = e.val
				n.ageAll(ageCap)
				dfs(n)
			}
			if s.pc[i] >= len(ops) {
				continue
			}
			op := ops[s.pc[i]]
			switch op.Kind {
			case OpStore:
				progress = true
				n := s.clone()
				n.bufs[i] = append(n.bufs[i], bufEntry{addr: op.Addr, val: op.Val})
				n.pc[i]++
				n.ageAll(ageCap)
				dfs(n)
			case OpLoad:
				progress = true
				n := s.clone()
				v := n.mem[op.Addr]
				for j := len(n.bufs[i]) - 1; j >= 0; j-- {
					if n.bufs[i][j].addr == op.Addr {
						v = n.bufs[i][j].val
						break
					}
				}
				n.regs[i][op.Reg] = v
				n.pc[i]++
				n.ageAll(ageCap)
				dfs(n)
			case OpFence:
				if len(s.bufs[i]) == 0 {
					progress = true
					n := s.clone()
					n.pc[i]++
					n.ageAll(ageCap)
					dfs(n)
				}
			case OpRMW:
				if len(s.bufs[i]) == 0 {
					progress = true
					n := s.clone()
					old := n.mem[op.Addr]
					n.regs[i][op.Reg] = old
					n.mem[op.Addr] = old + op.Val
					n.pc[i]++
					n.ageAll(ageCap)
					dfs(n)
				}
			case OpWait:
				progress = true
				n := s.clone()
				switch {
				case !n.armed[i] && op.Val > 0:
					// Arm the wait; it elapses as transitions occur.
					n.armed[i] = true
					n.wait[i] = op.Val
				case n.wait[i] == 0:
					// Elapsed (or zero-length): advance.
					n.armed[i] = false
					n.pc[i]++
				default:
					// Still pending: burn one transition.
				}
				n.ageAll(ageCap)
				dfs(n)
			}
		}
		if !progress {
			// Terminal: flush any remaining buffers already handled by
			// the dequeue transitions above; with empty buffers and all
			// pcs done, record the outcome.
			done := true
			for i := range p.Threads {
				if s.pc[i] < len(p.Threads[i]) || len(s.bufs[i]) > 0 {
					done = false
				}
			}
			if done {
				res.Outcomes[s.outcome()] = true
			}
		}
	}
	dfs(newState(p))
	return res, complete
}
