package mc

import (
	"bytes"
	"slices"
)

// Sound reductions for the TSO/TBTSO transition system. Three apply
// (each with an off switch in Options; docs/MC.md carries the full
// soundness arguments):
//
//  1. Terminal collapse (any Δ): once every thread's pc is past its
//     last op, only dequeue transitions remain and none of them touches
//     a register, so the outcome is already determined — record it and
//     skip the factorially many interleavings of the remaining drains.
//
//  2. Invisible-dequeue priority (Δ=0, no Wait ops): a voluntary
//     dequeue of thread i's oldest entry (address a) is a left mover
//     when no OTHER thread's remaining ops load or RMW a, and either i
//     itself never reads a again or nobody else can write a (no
//     remaining store/RMW to a elsewhere, no buffered a-entry
//     elsewhere). Such a dequeue observationally commutes with every
//     transition any d-free execution can take, is never disabled, and
//     must occur in every complete schedule, so exploring it ALONE
//     preserves the outcome set (a singleton persistent set; the state
//     graph is acyclic at Δ=0 without waits, so there is no ignoring
//     problem). Under Δ>0 — or with Wait ops — every transition ages
//     buffers and drains wait counters, coupling all transition pairs
//     through the admissibility rule, so no two transitions are
//     independent and the reduction is disabled.
//
//  3. Symmetry canonicalization (any Δ): threads with byte-identical
//     op sequences induce an automorphism of the transition system, so
//     states are explored up to sorting each identity group by its
//     thread-local encoding; recorded outcomes are closed under the
//     group's permutations afterwards (orbit expansion), restoring the
//     exact outcome set.

// symGroups returns the groups (size ≥ 2) of thread indices with
// identical op slices, or nil if every thread is unique.
func symGroups(p Program) [][]int {
	var groups [][]int
	used := make([]bool, len(p.Threads))
	for i := range p.Threads {
		if used[i] {
			continue
		}
		g := []int{i}
		for j := i + 1; j < len(p.Threads); j++ {
			if !used[j] && slices.Equal(p.Threads[i], p.Threads[j]) {
				g = append(g, j)
				used[j] = true
			}
		}
		if len(g) > 1 {
			groups = append(groups, g)
		}
	}
	return groups
}

// accessMasks precomputes, per thread and per pc, the bitmask of
// addresses the suffix Threads[i][pc:] reads (Load/RMW) and writes
// (Store/RMW). Row pc == len(ops) is zero. Only valid for Vars ≤ 64;
// callers gate on that.
func accessMasks(p Program) (reads, writes [][]uint64) {
	reads = make([][]uint64, len(p.Threads))
	writes = make([][]uint64, len(p.Threads))
	for i, ops := range p.Threads {
		reads[i] = make([]uint64, len(ops)+1)
		writes[i] = make([]uint64, len(ops)+1)
		for pc := len(ops) - 1; pc >= 0; pc-- {
			r, w := reads[i][pc+1], writes[i][pc+1]
			op := ops[pc]
			bit := uint64(1) << uint(op.Addr)
			switch op.Kind {
			case OpLoad:
				r |= bit
			case OpStore:
				w |= bit
			case OpRMW:
				r |= bit
				w |= bit
			}
			reads[i][pc], writes[i][pc] = r, w
		}
	}
	return reads, writes
}

// hasWaits reports whether any thread contains an OpWait — waits couple
// transitions through the global transition counter, which disables the
// invisible-dequeue reduction.
func hasWaits(p Program) bool {
	for _, ops := range p.Threads {
		for _, op := range ops {
			if op.Kind == OpWait {
				return true
			}
		}
	}
	return false
}

// invisibleDequeue returns the lowest thread index whose head buffer
// entry satisfies the invisibility condition above, or -1. Only called
// when the engine's porOK gate (Δ=0, no waits, Vars ≤ 64, reduction
// enabled) holds.
func (e *engine) invisibleDequeue(s *state) int {
	for i := range s.bufs {
		if len(s.bufs[i]) == 0 {
			continue
		}
		bit := uint64(1) << uint(s.bufs[i][0].addr)
		var othersRead, othersWrite uint64
		for j := range s.bufs {
			if j == i {
				continue
			}
			othersRead |= e.readsAfter[j][s.pc[j]]
			othersWrite |= e.writesAfter[j][s.pc[j]]
			for _, en := range s.bufs[j] {
				othersWrite |= uint64(1) << uint(en.addr)
			}
		}
		if othersRead&bit != 0 {
			continue
		}
		selfReads := e.readsAfter[i][s.pc[i]]
		if selfReads&bit == 0 || othersWrite&bit == 0 {
			return i
		}
	}
	return -1
}

// canonicalize sorts each identity group's threads by their local-state
// encoding, mutating s in place. Scratch buffers live on the worker so
// steady-state canonicalization is allocation-free.
func (w *worker) canonicalize(s *state) {
	for gi, g := range w.e.groups {
		keys := w.symKeys[gi]
		for k, ti := range g {
			keys[k] = s.appendThread(keys[k][:0], ti)
		}
		// Insertion sort of the group's thread-local states by encoded
		// key; groups are tiny (2–8 threads).
		for a := 1; a < len(g); a++ {
			for b := a; b > 0 && bytes.Compare(keys[b], keys[b-1]) < 0; b-- {
				keys[b], keys[b-1] = keys[b-1], keys[b]
				i, j := g[b], g[b-1]
				s.pc[i], s.pc[j] = s.pc[j], s.pc[i]
				s.wait[i], s.wait[j] = s.wait[j], s.wait[i]
				s.armed[i], s.armed[j] = s.armed[j], s.armed[i]
				s.bufs[i], s.bufs[j] = s.bufs[j], s.bufs[i]
				s.regs[i], s.regs[j] = s.regs[j], s.regs[i]
			}
		}
	}
}

// orbit applies every permutation of every identity group to regs and
// calls emit for each resulting register assignment (including the
// identity). regs is not retained.
func orbit(groups [][]int, regs [][]int, emit func([][]int)) {
	if len(groups) == 0 {
		emit(regs)
		return
	}
	var rec func(gi int)
	rec = func(gi int) {
		if gi == len(groups) {
			emit(regs)
			return
		}
		g := groups[gi]
		perm := make([]int, len(g))
		copy(perm, g)
		// Heap's algorithm over the group's thread slots, swapping the
		// register files directly.
		var heaps func(k int)
		heaps = func(k int) {
			if k == 1 {
				rec(gi + 1)
				return
			}
			for i := 0; i < k; i++ {
				heaps(k - 1)
				if i < k-1 {
					if k%2 == 0 {
						regs[perm[i]], regs[perm[k-1]] = regs[perm[k-1]], regs[perm[i]]
					} else {
						regs[perm[0]], regs[perm[k-1]] = regs[perm[k-1]], regs[perm[0]]
					}
				}
			}
		}
		heaps(len(g))
	}
	rec(0)
}
