package mc

import (
	"hash/maphash"
	"sync"
)

// visited is the sharded de-duplication set at the heart of the
// parallel engine: a power-of-two array of string-keyed hash sets, each
// behind its own mutex, indexed by the top bits of a maphash of the
// encoded state. Workers touch one shard per lookup, so with 64 shards
// contention is negligible even at full-core fan-out, and the interned
// key string the insert allocates is shared with the frontier (the
// frontier stores the same string, not a second copy).
type visited struct {
	seed   maphash.Seed
	shards [visitedShards]visitedShard
}

const visitedShards = 64 // power of two

type visitedShard struct {
	mu sync.Mutex
	m  map[string]struct{}
	// Pad each shard to its own cache line so neighbouring locks don't
	// false-share.
	_ [40]byte
}

func newVisited() *visited {
	v := &visited{seed: maphash.MakeSeed()}
	for i := range v.shards {
		v.shards[i].m = make(map[string]struct{})
	}
	return v
}

// insert adds the encoded state if absent. It returns the interned key
// (the map's own string, valid for the caller to retain) and whether
// the state was novel. The string(b) conversion in the lookup path is
// allocation-free (Go's map-index-by-converted-bytes fast path); only
// a novel insert pays one allocation for the interned copy.
func (v *visited) insert(b []byte) (key string, novel bool) {
	h := maphash.Bytes(v.seed, b)
	sh := &v.shards[h>>(64-6)&(visitedShards-1)]
	sh.mu.Lock()
	if _, ok := sh.m[string(b)]; ok {
		sh.mu.Unlock()
		return "", false
	}
	key = string(b)
	sh.m[key] = struct{}{}
	sh.mu.Unlock()
	return key, true
}
