package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/obs"
)

// Options configures ExploreParallel. The zero value asks for the
// defaults: DefaultMaxStates budget, GOMAXPROCS workers, all
// reductions on, no metrics.
type Options struct {
	// MaxStates bounds the number of distinct (canonical) states
	// visited; 0 means DefaultMaxStates.
	MaxStates int
	// Workers is the worker-goroutine count; 0 means GOMAXPROCS.
	Workers int
	// NoReduction disables the partial-order reductions (terminal
	// collapse and invisible-dequeue priority), for differential
	// testing against the reference explorer's full state graph.
	NoReduction bool
	// NoSymmetry disables identical-thread canonicalization.
	NoSymmetry bool
	// Metrics, if non-nil, receives explorer progress: counters
	// mc.states, mc.transitions, mc.dedup_hits, mc.por_prunes,
	// mc.terminal_collapses and gauges mc.states_per_sec,
	// mc.frontier_depth, mc.workers.
	Metrics *obs.Registry
	// Context, if non-nil, makes the exploration cooperatively
	// cancellable: on cancellation the workers drain their frontiers
	// without expanding further and ExploreParallel returns the partial
	// Result wrapped in a *InterruptedError. nil means uncancellable
	// (context.Background semantics, with no watcher goroutine).
	Context context.Context
}

// ErrTruncated is the sentinel matched by errors.Is when an
// exploration exhausts its state budget.
var ErrTruncated = errors.New("mc: state budget exhausted")

// TruncatedError reports an exploration that hit its state budget; the
// accompanying Result is a partial subset of the outcome set. The same
// partial Result is carried in Partial, so callers that only see the
// error (or that treat the (Result, error) pair uniformly) can still
// render what WAS explored — absence of an outcome proves nothing, but
// presence is as real as in a completed run.
type TruncatedError struct {
	MaxStates int // the budget
	// States is the states visited. Invariant: States == MaxStates,
	// even under parallel admission — the admission counter is a CAS
	// loop that never overshoots the budget, it is monotone, and
	// truncation is only declared by a worker that observed the
	// counter at the budget, so when any worker trips it the counter
	// is exactly MaxStates and stays there. Pinned by
	// TestTruncatedStatesEqualsBudget at small budgets × many workers.
	States  int
	Shape   string // the program's dimensions and Δ
	Partial Result // the partial result: a subset of the outcome set
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("mc: state space truncated at %d of max %d states (program: %s); outcomes are a partial subset",
		e.States, e.MaxStates, e.Shape)
}

// Is makes errors.Is(err, ErrTruncated) hold.
func (e *TruncatedError) Is(target error) bool { return target == ErrTruncated }

// ErrInterrupted is the sentinel matched by errors.Is when an
// exploration is cancelled through Options.Context.
var ErrInterrupted = errors.New("mc: exploration interrupted")

// InterruptedError reports an exploration cancelled through
// Options.Context before completing; it mirrors *TruncatedError.
// Partial (== the returned Result) is a genuine subset of the outcome
// set: every outcome present was reached by a real execution and the
// merge over the states that WERE visited is deterministic, but
// absence proves nothing. Unlike truncation there is no States
// invariant — cancellation lands wherever the frontier happened to be.
// When an exploration both exhausts its budget and is cancelled, the
// budget wins: *TruncatedError is returned, because truncation is the
// stronger statement (the exploration would have stopped there anyway).
type InterruptedError struct {
	States  int    // states visited before the cancellation drained
	Shape   string // the program's dimensions and Δ
	Partial Result // the partial result: a subset of the outcome set
	Cause   error  // the context's error (context.Canceled / DeadlineExceeded)
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("mc: exploration interrupted after %d states (program: %s): %v; outcomes are a partial subset",
		e.States, e.Shape, e.Cause)
}

// Is makes errors.Is(err, ErrInterrupted) hold.
func (e *InterruptedError) Is(target error) bool { return target == ErrInterrupted }

// Unwrap exposes the context cause, so errors.Is(err, context.Canceled)
// also holds.
func (e *InterruptedError) Unwrap() error { return e.Cause }

// engine is one parallel exploration: program, reduction gates, the
// sharded visited set, and the shared counters workers coordinate on.
type engine struct {
	p          Program
	delta      int
	ageCap     int
	maxStates  int64
	collapseOK bool
	porOK      bool
	groups     [][]int // identical-thread identity groups (or nil)

	readsAfter, writesAfter [][]uint64 // suffix access masks (porOK)

	vis     *visited
	workers []*worker

	pending     atomic.Int64 // states queued but not yet expanded
	states      atomic.Int64 // distinct canonical states admitted
	transitions atomic.Int64 // successors generated
	dedup       atomic.Int64 // successors already in the visited set
	porPrunes   atomic.Int64 // states expanded via a single invisible dequeue
	collapses   atomic.Int64 // terminal collapses (drain tails skipped)
	truncated   atomic.Bool
	interrupted atomic.Bool // Options.Context cancelled; workers drain without expanding

	start   time.Time
	metrics *engineMetrics
}

type engineMetrics struct {
	states, transitions, dedup, porPrunes, collapses *obs.Counter
	statesPerSec, frontier, workers                  *obs.Gauge
	pub                                              atomic.Bool
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	return &engineMetrics{
		states:       r.Counter("mc.states"),
		transitions:  r.Counter("mc.transitions"),
		dedup:        r.Counter("mc.dedup_hits"),
		porPrunes:    r.Counter("mc.por_prunes"),
		collapses:    r.Counter("mc.terminal_collapses"),
		statesPerSec: r.Gauge("mc.states_per_sec"),
		frontier:     r.Gauge("mc.frontier_depth"),
		workers:      r.Gauge("mc.workers"),
	}
}

// worker owns a LIFO stack of encoded frontier states plus all the
// scratch the hot path needs, so steady-state expansion performs one
// allocation per novel state (the visited set's interned key) and none
// per transition.
type worker struct {
	e  *engine
	id int

	mu    sync.Mutex // guards stack (owner pops, thieves steal)
	stack []string

	cur, next state
	enc       []byte
	stealBuf  []string
	symKeys   [][][]byte          // per identity group, per member: encoding scratch
	outcomes  map[string]struct{} // reg-encoding outcome set
	sinceTick int
}

// ExploreParallel explores p under TBTSO[Δ] with a work-stealing
// frontier of Options.Workers goroutines over the compact state
// encoding, applying the reductions of reduce.go. The outcome set is
// deterministic (identical to ExploreSequential's) regardless of
// worker count or schedule; States/Transitions are deterministic for a
// completed exploration. On budget exhaustion it returns the partial
// Result and a *TruncatedError; on Options.Context cancellation it
// returns the partial Result and a *InterruptedError (budget
// exhaustion wins when both apply).
func ExploreParallel(p Program, delta int, opts Options) (Result, error) {
	if len(p.Threads) == 0 {
		return Result{Outcomes: map[string]bool{"": true}, States: 1}, nil
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	nw := opts.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}

	e := &engine{
		p:          p,
		delta:      delta,
		ageCap:     delta + 1,
		maxStates:  int64(maxStates),
		collapseOK: !opts.NoReduction,
		vis:        newVisited(),
		start:      time.Now(),
	}
	if delta == 0 {
		e.ageCap = 0 // ages are irrelevant without a bound; keep them 0
	}
	if !opts.NoReduction && delta == 0 && p.Vars <= 64 && !hasWaits(p) {
		e.porOK = true
		e.readsAfter, e.writesAfter = accessMasks(p)
	}
	if !opts.NoSymmetry {
		e.groups = symGroups(p)
	}
	if opts.Metrics != nil {
		e.metrics = newEngineMetrics(opts.Metrics)
		e.metrics.workers.Set(int64(nw))
	}

	e.workers = make([]*worker, nw)
	for i := range e.workers {
		w := &worker{e: e, id: i, outcomes: make(map[string]struct{})}
		w.symKeys = make([][][]byte, len(e.groups))
		for gi, g := range e.groups {
			w.symKeys[gi] = make([][]byte, len(g))
		}
		e.workers[i] = w
	}

	// Seed the frontier with the canonical initial state.
	w0 := e.workers[0]
	init := newState(p)
	if e.groups != nil {
		w0.canonicalize(init)
	}
	w0.enc = init.appendState(w0.enc[:0])
	key, _ := e.vis.insert(w0.enc)
	e.states.Store(1)
	e.pending.Store(1)
	w0.stack = append(w0.stack, key)

	// The cancellation watcher: flip the interrupted flag when the
	// context dies, so workers stop expanding at their next state and
	// drain the remaining frontier as no-ops. watcherDone keeps the
	// goroutine from outliving the exploration.
	ctx := opts.Context
	var watcherDone chan struct{}
	if ctx != nil {
		if ctx.Err() != nil {
			// Already cancelled: set the flag synchronously so even an
			// exploration the workers could finish instantly reports
			// the interruption deterministically.
			e.interrupted.Store(true)
		}
		watcherDone = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				e.interrupted.Store(true)
			case <-watcherDone:
			}
		}()
	}

	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	wg.Wait()
	if watcherDone != nil {
		close(watcherDone)
	}

	res := Result{
		Outcomes:          e.mergeOutcomes(),
		States:            int(e.states.Load()),
		Transitions:       int(e.transitions.Load()),
		DedupHits:         int(e.dedup.Load()),
		PorPrunes:         int(e.porPrunes.Load()),
		TerminalCollapses: int(e.collapses.Load()),
	}
	e.publishFinal(res)
	if e.truncated.Load() {
		return res, &TruncatedError{MaxStates: maxStates, States: res.States, Shape: p.shape(delta), Partial: res}
	}
	if ctx != nil && ctx.Err() != nil && e.interrupted.Load() {
		return res, &InterruptedError{States: res.States, Shape: p.shape(delta), Partial: res, Cause: ctx.Err()}
	}
	return res, nil
}

// mergeOutcomes unions the workers' reg-encoded outcome sets, expands
// each through the symmetry group's orbit, and renders the canonical
// outcome strings.
func (e *engine) mergeOutcomes() map[string]bool {
	keys := make(map[string]struct{})
	for _, w := range e.workers {
		for k := range w.outcomes {
			keys[k] = struct{}{}
		}
	}
	out := make(map[string]bool, len(keys))
	for k := range keys {
		regs := decodeRegs(k, len(e.p.Threads), e.p.Regs)
		orbit(e.groups, regs, func(r [][]int) {
			out[outcomeString(r)] = true
		})
	}
	return out
}

func (e *engine) publishFinal(res Result) {
	m := e.metrics
	if m == nil {
		return
	}
	m.states.Add(uint64(res.States))
	m.transitions.Add(uint64(res.Transitions))
	m.dedup.Add(uint64(res.DedupHits))
	m.porPrunes.Add(uint64(e.porPrunes.Load()))
	m.collapses.Add(uint64(e.collapses.Load()))
	m.frontier.Set(0)
	if el := time.Since(e.start).Seconds(); el > 0 {
		m.statesPerSec.Set(int64(float64(res.States) / el))
	}
}

// publishTick refreshes the live gauges; workers call it every few
// thousand expansions and the flag keeps concurrent publishers from
// piling up on the stack locks.
func (e *engine) publishTick() {
	m := e.metrics
	if m == nil || !m.pub.CompareAndSwap(false, true) {
		return
	}
	var depth int64
	for _, w := range e.workers {
		w.mu.Lock()
		depth += int64(len(w.stack))
		w.mu.Unlock()
	}
	m.frontier.Set(depth)
	if el := time.Since(e.start).Seconds(); el > 0 {
		m.statesPerSec.Set(int64(float64(e.states.Load()) / el))
	}
	m.pub.Store(false)
}

func (w *worker) pop() (string, bool) {
	w.mu.Lock()
	n := len(w.stack)
	if n == 0 {
		w.mu.Unlock()
		return "", false
	}
	k := w.stack[n-1]
	w.stack[n-1] = ""
	w.stack = w.stack[:n-1]
	w.mu.Unlock()
	return k, true
}

// steal moves up to half of some victim's stack (oldest entries first,
// which spreads shallow, wide subtrees) onto w's own stack and returns
// one item to expand. Victim and own locks are never held together.
func (w *worker) steal() (string, bool) {
	ws := w.e.workers
	for off := 1; off < len(ws); off++ {
		v := ws[(w.id+off)%len(ws)]
		v.mu.Lock()
		n := len(v.stack)
		if n == 0 {
			v.mu.Unlock()
			continue
		}
		take := (n + 1) / 2
		w.stealBuf = append(w.stealBuf[:0], v.stack[:take]...)
		rest := copy(v.stack, v.stack[take:])
		for i := rest; i < n; i++ {
			v.stack[i] = ""
		}
		v.stack = v.stack[:rest]
		v.mu.Unlock()

		k := w.stealBuf[len(w.stealBuf)-1]
		w.mu.Lock()
		w.stack = append(w.stack, w.stealBuf[:len(w.stealBuf)-1]...)
		w.mu.Unlock()
		return k, true
	}
	return "", false
}

func (w *worker) run() {
	e := w.e
	for {
		k, ok := w.pop()
		if !ok {
			k, ok = w.steal()
		}
		if !ok {
			if e.pending.Load() == 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		w.expand(k)
		e.pending.Add(-1)
	}
}

// admit charges one state against the budget; false means the budget
// is gone and the exploration is truncated. The CAS loop keeps the
// counter exact (never above the budget), so truncated Results report
// States == MaxStates.
func (e *engine) admit() bool {
	for {
		n := e.states.Load()
		if n >= e.maxStates {
			e.truncated.Store(true)
			return false
		}
		if e.states.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// emit canonicalizes, encodes and deduplicates w.next, pushing it onto
// the local stack when novel.
func (w *worker) emit() {
	e := w.e
	e.transitions.Add(1)
	n := &w.next
	if e.groups != nil {
		w.canonicalize(n)
	}
	w.enc = n.appendState(w.enc[:0])
	key, novel := e.vis.insert(w.enc)
	if !novel {
		e.dedup.Add(1)
		return
	}
	if !e.admit() {
		return
	}
	e.pending.Add(1)
	w.mu.Lock()
	w.stack = append(w.stack, key)
	w.mu.Unlock()
}

// dequeue emits the successor where thread i's oldest entry commits.
func (w *worker) dequeue(s *state, i int) {
	s.copyInto(&w.next)
	n := &w.next
	en := n.bufs[i][0]
	// Shift down rather than reslice so the scratch slice keeps its
	// backing array (and capacity) across millions of reuses.
	copy(n.bufs[i], n.bufs[i][1:])
	n.bufs[i] = n.bufs[i][:len(n.bufs[i])-1]
	n.mem[en.addr] = en.val
	n.ageAll(w.e.ageCap)
	w.emit()
}

func (w *worker) recordOutcome(s *state) {
	w.enc = appendRegs(w.enc[:0], s.regs)
	if _, ok := w.outcomes[string(w.enc)]; !ok {
		w.outcomes[string(w.enc)] = struct{}{}
	}
}

// expand generates every admissible successor of the encoded state,
// mirroring the reference explorer's transition relation with the
// reductions of reduce.go layered on top.
func (w *worker) expand(key string) {
	e := w.e
	if e.truncated.Load() || e.interrupted.Load() {
		return
	}
	if w.sinceTick++; w.sinceTick >= 16384 {
		w.sinceTick = 0
		e.publishTick()
	}
	decodeState(&w.cur, e.p, key)
	s := &w.cur

	allDone := true
	for i := range e.p.Threads {
		if s.pc[i] < len(e.p.Threads[i]) {
			allDone = false
			break
		}
	}
	if allDone {
		if e.collapseOK {
			// Terminal collapse: only register-preserving dequeues
			// remain, so the outcome is already fixed.
			for i := range s.bufs {
				if len(s.bufs[i]) > 0 {
					e.collapses.Add(1)
					break
				}
			}
			w.recordOutcome(s)
			return
		}
		empty := true
		for i := range s.bufs {
			if len(s.bufs[i]) > 0 {
				empty = false
				break
			}
		}
		if empty {
			w.recordOutcome(s)
			return
		}
	}

	// Forced dequeues: under TBTSO[Δ] an entry at age ≥ Δ must leave
	// before anything else happens.
	if e.delta > 0 {
		forced := false
		for i := range s.bufs {
			if len(s.bufs[i]) > 0 && s.bufs[i][0].age >= e.delta {
				forced = true
				w.dequeue(s, i)
			}
		}
		if forced {
			return
		}
	}

	// Partial-order reduction: a provably invisible dequeue is the
	// only transition worth exploring from this state.
	if e.porOK {
		if i := e.invisibleDequeue(s); i >= 0 {
			e.porPrunes.Add(1)
			w.dequeue(s, i)
			return
		}
	}

	for i, ops := range e.p.Threads {
		// Voluntary dequeue.
		if len(s.bufs[i]) > 0 {
			w.dequeue(s, i)
		}
		if s.pc[i] >= len(ops) {
			continue
		}
		op := ops[s.pc[i]]
		switch op.Kind {
		case OpStore:
			s.copyInto(&w.next)
			n := &w.next
			n.bufs[i] = append(n.bufs[i], bufEntry{addr: op.Addr, val: op.Val})
			n.pc[i]++
			n.ageAll(e.ageCap)
			w.emit()
		case OpLoad:
			s.copyInto(&w.next)
			n := &w.next
			v := n.mem[op.Addr]
			for j := len(n.bufs[i]) - 1; j >= 0; j-- {
				if n.bufs[i][j].addr == op.Addr {
					v = n.bufs[i][j].val
					break
				}
			}
			n.regs[i][op.Reg] = v
			n.pc[i]++
			n.ageAll(e.ageCap)
			w.emit()
		case OpFence:
			if len(s.bufs[i]) == 0 {
				s.copyInto(&w.next)
				n := &w.next
				n.pc[i]++
				n.ageAll(e.ageCap)
				w.emit()
			}
		case OpRMW:
			if len(s.bufs[i]) == 0 {
				s.copyInto(&w.next)
				n := &w.next
				old := n.mem[op.Addr]
				n.regs[i][op.Reg] = old
				n.mem[op.Addr] = old + op.Val
				n.pc[i]++
				n.ageAll(e.ageCap)
				w.emit()
			}
		case OpWait:
			s.copyInto(&w.next)
			n := &w.next
			switch {
			case !n.armed[i] && op.Val > 0:
				// Arm the wait; it elapses as transitions occur.
				n.armed[i] = true
				n.wait[i] = op.Val
			case n.wait[i] == 0:
				// Elapsed (or zero-length): advance.
				n.armed[i] = false
				n.pc[i]++
			default:
				// Still pending: burn one transition.
			}
			n.ageAll(e.ageCap)
			w.emit()
		}
	}
}
