package mc

import (
	"fmt"
	"testing"
)

// Benchmark programs, smallest to largest. sb (mc_test.go) is the
// 2-thread store-buffering litmus; iriwProg is independent-reads-of-
// independent-writes with double stores; ringProg(n) is an n-thread
// store ring (each thread stores twice to its own variable, then reads
// its neighbours) whose state space grows combinatorially — ringProg(4)
// at Δ=0 is ~3.4e5 reference states, the ≥1e5 scale BENCH_mc.json
// tracks.
func iriwProg() Program {
	return Program{
		Threads: [][]Op{
			{St(0, 1), St(0, 2)},
			{St(1, 1), St(1, 2)},
			{Ld(0, 0), Ld(1, 1)},
			{Ld(1, 0), Ld(0, 1)},
		},
		Vars: 2, Regs: 2,
	}
}

func ringProg(n int) Program {
	var th [][]Op
	for i := 0; i < n; i++ {
		th = append(th, []Op{St(i, 1), St(i, 2), Ld((i+1)%n, 0), Ld((i+n-1)%n, 1)})
	}
	return Program{Threads: th, Vars: n, Regs: 2}
}

type benchCase struct {
	name string
	p    Program
}

func benchCases(includeBig bool) []benchCase {
	cs := []benchCase{
		{"SB", sb(false)},
		{"IRIW", iriwProg()},
		{"Ring3", ringProg(3)},
	}
	if includeBig {
		cs = append(cs, benchCase{"Ring4", ringProg(4)})
	}
	return cs
}

func benchExplore(b *testing.B, run func(p Program, delta int) Result) {
	for _, c := range benchCases(false) {
		for _, delta := range []int{0, 2, 4} {
			b.Run(fmt.Sprintf("%s/delta=%d", c.name, delta), func(b *testing.B) {
				b.ReportAllocs()
				var states int
				for i := 0; i < b.N; i++ {
					states = run(c.p, delta).States
				}
				b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
			})
		}
	}
}

// BenchmarkExploreSequential is the reference explorer — the perf
// baseline every optimization PR is measured against.
func BenchmarkExploreSequential(b *testing.B) {
	benchExplore(b, ExploreSequential)
}

// BenchmarkExploreParallel is the production engine with all
// reductions.
func BenchmarkExploreParallel(b *testing.B) {
	benchExplore(b, func(p Program, delta int) Result {
		res, err := ExploreParallel(p, delta, Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res
	})
}

// BenchmarkExploreParallelNoPOR isolates the encoding + frontier wins
// from the reduction wins.
func BenchmarkExploreParallelNoPOR(b *testing.B) {
	benchExplore(b, func(p Program, delta int) Result {
		res, err := ExploreParallel(p, delta, Options{NoReduction: true, NoSymmetry: true})
		if err != nil {
			b.Fatal(err)
		}
		return res
	})
}

// BenchmarkExploreParallelRing4 is the headline ≥1e5-state workload
// (sequential reference: ~3.4e5 states, seconds; parallel: sub-second).
// Kept out of the Δ-sweep so `make mc-bench`'s -benchtime=1x smoke run
// stays fast.
func BenchmarkExploreParallelRing4(b *testing.B) {
	p := ringProg(4)
	b.ReportAllocs()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := ExploreParallel(p, 0, Options{})
		if err != nil {
			b.Fatal(err)
		}
		states = res.States
	}
	b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
}
