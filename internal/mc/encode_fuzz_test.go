package mc

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzEncodeRoundTrip fuzzes the compact state encoding (encode.go)
// that doubles as the parallel engine's visited-set key: for a
// pseudo-random program and a pseudo-random (but shape-valid) state,
// encode → decode → re-encode must reproduce the exact bytes, and the
// decoded state must render the same outcome. A canonicalization bug
// here silently merges distinct states — the worst failure mode the
// checker has — so this target guards the property directly.
func FuzzEncodeRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed, seed*31+7)
	}
	f.Add(int64(-1), int64(1<<40))
	f.Fuzz(func(t *testing.T, progSeed, stateSeed int64) {
		p := genProgram(progSeed)
		rng := rand.New(rand.NewSource(stateSeed))
		s := newState(p)
		for i := range p.Threads {
			s.pc[i] = rng.Intn(len(p.Threads[i]) + 1)
			s.wait[i] = rng.Intn(5)
			s.armed[i] = rng.Intn(2) == 1
			for j, n := 0, rng.Intn(3); j < n; j++ {
				s.bufs[i] = append(s.bufs[i], bufEntry{
					addr: rng.Intn(p.Vars),
					val:  rng.Intn(7) - 3, // negatives exercise zigzag
					age:  rng.Intn(6),
				})
			}
			for r := range s.regs[i] {
				s.regs[i][r] = rng.Intn(9) - 4
			}
		}
		for a := range s.mem {
			s.mem[a] = rng.Intn(9) - 4
		}

		enc := s.appendState(nil)
		var back state
		decodeState(&back, p, string(enc))
		if got, want := back.outcome(), s.outcome(); got != want {
			t.Fatalf("outcome changed across round trip: %q vs %q", got, want)
		}
		re := back.appendState(nil)
		if !bytes.Equal(enc, re) {
			t.Fatalf("re-encoding differs:\n enc %x\n re  %x", enc, re)
		}

		// The register-file encoding used for compact outcome
		// accumulation must round-trip too.
		regsEnc := appendRegs(nil, s.regs)
		regsBack := decodeRegs(string(regsEnc), len(p.Threads), p.Regs)
		if got, want := outcomeString(regsBack), outcomeString(s.regs); got != want {
			t.Fatalf("regs round trip: %q vs %q", got, want)
		}
	})
}
