package mc

import (
	"fmt"
	"strings"
)

// This file is the ORIGINAL sequential explorer, kept verbatim in
// spirit as the reference oracle for the parallel engine in explore.go.
// It is deliberately naive — recursive DFS, full-state clone per
// transition, fmt-built string keys — so the two implementations share
// no hot-path code and differential tests (differential_test.go) pin
// them to each other. Do not "optimize" this file; speed lives in
// explore.go.

// key canonicalizes the state for the reference explorer's memo table.
func (s *state) key() string {
	var b strings.Builder
	for i := range s.pc {
		fmt.Fprintf(&b, "p%d.%d.%v;", s.pc[i], s.wait[i], s.armed[i])
		for _, e := range s.bufs[i] {
			fmt.Fprintf(&b, "%d=%d@%d,", e.addr, e.val, e.age)
		}
		b.WriteByte('|')
		for _, r := range s.regs[i] {
			fmt.Fprintf(&b, "%d,", r)
		}
		b.WriteByte(';')
	}
	for _, v := range s.mem {
		fmt.Fprintf(&b, "%d.", v)
	}
	return b.String()
}

// ExploreSequential is the reference explorer: single-threaded DFS with
// no reduction, enumerating every interleaving and drain schedule. It
// panics if the state space exceeds DefaultMaxStates. The parallel
// engine must produce exactly this outcome set (its States count is
// smaller when reductions collapse equivalent schedules).
func ExploreSequential(p Program, delta int) Result {
	res, err := ExploreSequentialBounded(p, delta, DefaultMaxStates)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// ExploreSequentialBounded is ExploreSequential with an explicit state
// budget; a non-nil error is a *TruncatedError and res holds the
// partial outcome set (absence proves nothing).
func ExploreSequentialBounded(p Program, delta, maxStates int) (res Result, err error) {
	if len(p.Threads) == 0 {
		return Result{Outcomes: map[string]bool{"": true}, States: 1}, nil
	}
	res = Result{Outcomes: map[string]bool{}}
	complete := true
	seen := map[string]bool{}
	ageCap := delta + 1
	if delta == 0 {
		ageCap = 0 // ages are irrelevant without a bound; keep them 0
	}

	var dfs func(s *state)
	dfs = func(s *state) {
		if res.States >= maxStates {
			complete = false
			return
		}
		k := s.key()
		if seen[k] {
			return
		}
		seen[k] = true
		res.States++

		// Forced dequeues: under TBTSO[Δ] an entry at age ≥ Δ must
		// leave before anything else happens.
		if delta > 0 {
			forced := false
			for i := range s.bufs {
				if len(s.bufs[i]) > 0 && s.bufs[i][0].age >= delta {
					forced = true
					n := s.clone()
					e := n.bufs[i][0]
					n.bufs[i] = n.bufs[i][1:]
					n.mem[e.addr] = e.val
					n.ageAll(ageCap)
					dfs(n)
				}
			}
			if forced {
				return // only forced transitions are admissible here
			}
		}

		progress := false
		for i, ops := range p.Threads {
			// Voluntary dequeue.
			if len(s.bufs[i]) > 0 {
				progress = true
				n := s.clone()
				e := n.bufs[i][0]
				n.bufs[i] = n.bufs[i][1:]
				n.mem[e.addr] = e.val
				n.ageAll(ageCap)
				dfs(n)
			}
			if s.pc[i] >= len(ops) {
				continue
			}
			op := ops[s.pc[i]]
			switch op.Kind {
			case OpStore:
				progress = true
				n := s.clone()
				n.bufs[i] = append(n.bufs[i], bufEntry{addr: op.Addr, val: op.Val})
				n.pc[i]++
				n.ageAll(ageCap)
				dfs(n)
			case OpLoad:
				progress = true
				n := s.clone()
				v := n.mem[op.Addr]
				for j := len(n.bufs[i]) - 1; j >= 0; j-- {
					if n.bufs[i][j].addr == op.Addr {
						v = n.bufs[i][j].val
						break
					}
				}
				n.regs[i][op.Reg] = v
				n.pc[i]++
				n.ageAll(ageCap)
				dfs(n)
			case OpFence:
				if len(s.bufs[i]) == 0 {
					progress = true
					n := s.clone()
					n.pc[i]++
					n.ageAll(ageCap)
					dfs(n)
				}
			case OpRMW:
				if len(s.bufs[i]) == 0 {
					progress = true
					n := s.clone()
					old := n.mem[op.Addr]
					n.regs[i][op.Reg] = old
					n.mem[op.Addr] = old + op.Val
					n.pc[i]++
					n.ageAll(ageCap)
					dfs(n)
				}
			case OpWait:
				progress = true
				n := s.clone()
				switch {
				case !n.armed[i] && op.Val > 0:
					// Arm the wait; it elapses as transitions occur.
					n.armed[i] = true
					n.wait[i] = op.Val
				case n.wait[i] == 0:
					// Elapsed (or zero-length): advance.
					n.armed[i] = false
					n.pc[i]++
				default:
					// Still pending: burn one transition.
				}
				n.ageAll(ageCap)
				dfs(n)
			}
		}
		if !progress {
			// Terminal: flush any remaining buffers already handled by
			// the dequeue transitions above; with empty buffers and all
			// pcs done, record the outcome.
			done := true
			for i := range p.Threads {
				if s.pc[i] < len(p.Threads[i]) || len(s.bufs[i]) > 0 {
					done = false
				}
			}
			if done {
				res.Outcomes[s.outcome()] = true
			}
		}
	}
	dfs(newState(p))
	if !complete {
		return res, &TruncatedError{MaxStates: maxStates, States: res.States, Shape: p.shape(delta), Partial: res}
	}
	return res, nil
}
