package mc_test

import (
	"fmt"

	"tbtso/internal/mc"
)

// Exhaustively enumerate the store-buffering litmus test under plain
// TSO and under TBTSO[Δ=1]: the bound provably removes the relaxed
// outcome.
func ExampleExplore() {
	sb := mc.Program{
		Threads: [][]mc.Op{
			{mc.St(0, 1), mc.Ld(1, 0)},
			{mc.St(1, 1), mc.Ld(0, 0)},
		},
		Vars: 2, Regs: 1,
	}
	tso := mc.Explore(sb, 0)
	tbtso := mc.Explore(sb, 1)
	fmt.Println("TSO admits 0/0:     ", tso.Has("T0:r0=0 T1:r0=0"))
	fmt.Println("TBTSO[1] admits 0/0:", tbtso.Has("T0:r0=0 T1:r0=0"))
	fmt.Println("TBTSO outcome count:", len(tbtso.Outcomes))
	// Output:
	// TSO admits 0/0:      true
	// TBTSO[1] admits 0/0: false
	// TBTSO outcome count: 3
}
