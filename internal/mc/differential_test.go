package mc

import (
	"math/rand"
	"reflect"
	"testing"
)

// genProgram builds a random straight-line program covering the whole
// op alphabet. Seeds 0..n are the differential corpus: some programs
// get identical threads (exercising symmetry canonicalization), some
// get waits and RMWs, thread counts vary from 1 to 3.
func genProgram(seed int64) Program {
	rng := rand.New(rand.NewSource(seed))
	vars := rng.Intn(2) + 2 // 2..3
	regs := 3
	nThreads := rng.Intn(3) + 1 // 1..3
	p := Program{Vars: vars, Regs: regs}
	genThread := func() []Op {
		n := rng.Intn(3) + 2 // 2..4 ops
		var ops []Op
		used := 0
		for k := 0; k < n; k++ {
			addr := rng.Intn(vars)
			switch rng.Intn(8) {
			case 0, 1, 2:
				ops = append(ops, St(addr, rng.Intn(3)+1))
			case 3, 4:
				if used < regs {
					ops = append(ops, Ld(addr, used))
					used++
				}
			case 5:
				ops = append(ops, Fence())
			case 6:
				if used < regs {
					ops = append(ops, RMW(addr, rng.Intn(2)+1, used))
					used++
				}
			default:
				ops = append(ops, Wait(rng.Intn(3)))
			}
		}
		return ops
	}
	first := genThread()
	p.Threads = append(p.Threads, first)
	for t := 1; t < nThreads; t++ {
		if rng.Intn(3) == 0 {
			// Clone an existing thread so identity groups are common.
			src := p.Threads[rng.Intn(len(p.Threads))]
			p.Threads = append(p.Threads, append([]Op(nil), src...))
		} else {
			p.Threads = append(p.Threads, genThread())
		}
	}
	return p
}

// TestDifferentialParallelMatchesSequential is the byte-identical
// oracle comparison the parallel engine's soundness rests on: over 220
// seeded random programs and several Δ, every engine configuration —
// reductions on, reductions off, symmetry off, single- and multi-worker
// — must produce exactly the reference explorer's outcome set.
func TestDifferentialParallelMatchesSequential(t *testing.T) {
	const seeds = 220
	deltas := []int{0, 1, 3}
	configs := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"workers=4", Options{Workers: 4}},
		{"no-reduction", Options{NoReduction: true}},
		{"no-symmetry", Options{NoSymmetry: true}},
		{"bare", Options{NoReduction: true, NoSymmetry: true, Workers: 2}},
	}
	for seed := int64(0); seed < seeds; seed++ {
		p := genProgram(seed)
		delta := deltas[seed%int64(len(deltas))]
		want := ExploreSequential(p, delta)
		for _, cfg := range configs {
			got, err := ExploreParallel(p, delta, cfg.opts)
			if err != nil {
				t.Fatalf("seed=%d Δ=%d %s: %v", seed, delta, cfg.name, err)
			}
			if !reflect.DeepEqual(got.List(), want.List()) {
				t.Fatalf("seed=%d Δ=%d %s: outcome sets diverge\n got: %v\nwant: %v",
					seed, delta, cfg.name, got.List(), want.List())
			}
		}
	}
}

// TestDifferentialStateCountsShrink sanity-checks that the reductions
// only ever REMOVE states relative to the unreduced parallel engine,
// and that with everything off the canonical state count equals the
// reference explorer's.
func TestDifferentialStateCountsShrink(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := genProgram(seed)
		delta := int(seed % 3)
		ref := ExploreSequential(p, delta)
		bare, err := ExploreParallel(p, delta, Options{NoReduction: true, NoSymmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		if bare.States != ref.States {
			t.Fatalf("seed=%d Δ=%d: bare parallel states %d != reference %d",
				seed, delta, bare.States, ref.States)
		}
		red, err := ExploreParallel(p, delta, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if red.States > bare.States {
			t.Fatalf("seed=%d Δ=%d: reduced states %d > unreduced %d",
				seed, delta, red.States, bare.States)
		}
	}
}
