package mc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// interruptProg is a program with a state space in the tens of
// thousands — big enough that budgets and cancellations land mid-way.
func interruptProg() Program {
	return Program{
		Threads: [][]Op{
			{St(0, 1), Ld(1, 0), St(2, 1), Ld(0, 1)},
			{St(1, 1), Ld(2, 0), St(0, 2), Ld(1, 1)},
			{St(2, 2), Ld(0, 0), St(1, 2), Ld(2, 1)},
		},
		Vars: 3, Regs: 2,
	}
}

// TestTruncatedStatesEqualsBudget pins the documented TruncatedError
// invariant States == MaxStates under parallel CAS admission, exactly
// where it would break if admission could overshoot or undershoot:
// tiny budgets with many workers racing on the counter.
func TestTruncatedStatesEqualsBudget(t *testing.T) {
	p := interruptProg()
	for _, budget := range []int{1, 2, 3, 5, 17, 64, 500} {
		for _, workers := range []int{1, 4, 16} {
			_, err := ExploreParallel(p, 1, Options{MaxStates: budget, Workers: workers})
			var te *TruncatedError
			if !errors.As(err, &te) {
				t.Fatalf("budget=%d workers=%d: want *TruncatedError, got %v", budget, workers, err)
			}
			if te.States != te.MaxStates || te.States != budget {
				t.Errorf("budget=%d workers=%d: States=%d MaxStates=%d, want both == budget",
					budget, workers, te.States, te.MaxStates)
			}
			if te.Partial.States != budget {
				t.Errorf("budget=%d workers=%d: Partial.States=%d, want %d",
					budget, workers, te.Partial.States, budget)
			}
			if !errors.Is(err, ErrTruncated) {
				t.Errorf("budget=%d workers=%d: errors.Is(err, ErrTruncated) = false", budget, workers)
			}
		}
	}
}

// TestExploreParallelInterrupted cancels an exploration and asserts
// the typed partial result: a *InterruptedError carrying a usable
// Result whose outcomes are a subset of the complete run's.
func TestExploreParallelInterrupted(t *testing.T) {
	p := interruptProg()
	full, err := ExploreParallel(p, 1, Options{})
	if err != nil {
		t.Fatalf("uncancelled exploration: %v", err)
	}

	// Pre-cancelled context: the exploration must return promptly with
	// the typed error, not hang or panic.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ExploreParallel(p, 1, Options{Context: ctx, Workers: 4})
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("pre-cancelled: want *InterruptedError, got %v", err)
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Error("errors.Is(err, ErrInterrupted) = false")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("errors.Is(err, context.Canceled) = false")
	}
	if ie.States != res.States || ie.Partial.States != res.States {
		t.Errorf("States mismatch: err=%d partial=%d result=%d", ie.States, ie.Partial.States, res.States)
	}
	for o := range res.Outcomes {
		if !full.Outcomes[o] {
			t.Errorf("interrupted run produced outcome %q the complete run does not admit", o)
		}
	}

	// Mid-flight cancellation: every observed outcome must still be
	// real (a subset of the complete set), whatever the timing.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel2()
	}()
	res2, err2 := ExploreParallel(p, 1, Options{Context: ctx2, Workers: 4})
	if err2 != nil {
		if !errors.As(err2, &ie) {
			t.Fatalf("mid-flight: want *InterruptedError or nil, got %v", err2)
		}
	}
	for o := range res2.Outcomes {
		if !full.Outcomes[o] {
			t.Errorf("mid-flight interrupted run produced outcome %q the complete run does not admit", o)
		}
	}

	// A nil-context exploration of the same program stays byte-stable:
	// the watcherless path is the default and must not regress.
	again, err := ExploreParallel(p, 1, Options{})
	if err != nil {
		t.Fatalf("second uncancelled exploration: %v", err)
	}
	if len(again.Outcomes) != len(full.Outcomes) || again.States != full.States {
		t.Errorf("uncancelled exploration not deterministic: %d/%d outcomes, %d/%d states",
			len(again.Outcomes), len(full.Outcomes), again.States, full.States)
	}

	// Budget exhaustion wins over cancellation: with both in play the
	// caller sees *TruncatedError and its States invariant.
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	_, err3 := ExploreParallel(p, 1, Options{Context: ctx3, MaxStates: 1, Workers: 4})
	switch {
	case errors.Is(err3, ErrTruncated):
		var te *TruncatedError
		if errors.As(err3, &te) && te.States != te.MaxStates {
			t.Errorf("truncated+interrupted: States=%d != MaxStates=%d", te.States, te.MaxStates)
		}
	case errors.Is(err3, ErrInterrupted):
		// Also legal: the cancellation drained the frontier before any
		// worker charged the budget.
	default:
		t.Fatalf("truncated+interrupted: want a typed partial error, got %v", err3)
	}
}
