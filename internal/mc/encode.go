package mc

import "encoding/binary"

// Compact binary state encoding. A state serializes to an append-only
// byte string: per thread (pc, wait, armed, buffer length, buffer
// entries, registers), then memory. Small non-negative fields use
// unsigned varints; values that may be negative (register/memory words,
// buffered values) use zigzag varints. The encoding is canonical —
// equal states encode to equal bytes — so it doubles as the visited-set
// key, and it is losslessly decodable so the frontier stores encoded
// states and workers rehydrate them into reusable scratch structs.
//
// A litmus-sized state fits in a few dozen bytes versus a few hundred
// for the reference explorer's fmt-built key, and encoding is a single
// append pass with no formatting or interface boxing.

// appendThread appends thread i's local state (everything except
// shared memory). Split out so symmetry canonicalization can compare
// thread-local encodings (reduce.go).
func (s *state) appendThread(dst []byte, i int) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.pc[i]))
	dst = binary.AppendUvarint(dst, uint64(s.wait[i]))
	if s.armed[i] {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.bufs[i])))
	for _, e := range s.bufs[i] {
		dst = binary.AppendUvarint(dst, uint64(e.addr))
		dst = binary.AppendVarint(dst, int64(e.val))
		dst = binary.AppendUvarint(dst, uint64(e.age))
	}
	for _, r := range s.regs[i] {
		dst = binary.AppendVarint(dst, int64(r))
	}
	return dst
}

// appendState appends the full canonical encoding of s.
func (s *state) appendState(dst []byte) []byte {
	for i := range s.pc {
		dst = s.appendThread(dst, i)
	}
	for _, v := range s.mem {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

// uvarintStr is binary.Uvarint over a string, so frontier entries (the
// visited set's interned key strings) decode without a []byte copy.
func uvarintStr(s string, i int) (uint64, int) {
	var x uint64
	var shift uint
	for ; i < len(s); i++ {
		b := s[i]
		if b < 0x80 {
			return x | uint64(b)<<shift, i + 1
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	panic("mc: truncated state encoding")
}

// varintStr is binary.Varint (zigzag) over a string.
func varintStr(s string, i int) (int64, int) {
	ux, n := uvarintStr(s, i)
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, n
}

// decodeState rehydrates src (produced by appendState for a state of
// program p) into dst, reusing dst's slice capacity.
func decodeState(dst *state, p Program, src string) {
	nt := len(p.Threads)
	dst.pc = grow(dst.pc, nt)
	dst.wait = grow(dst.wait, nt)
	if cap(dst.armed) < nt {
		dst.armed = make([]bool, nt)
	}
	dst.armed = dst.armed[:nt]
	if cap(dst.bufs) < nt {
		dst.bufs = make([][]bufEntry, nt)
	}
	dst.bufs = dst.bufs[:nt]
	if cap(dst.regs) < nt {
		dst.regs = make([][]int, nt)
	}
	dst.regs = dst.regs[:nt]
	dst.mem = grow(dst.mem, p.Vars)

	pos := 0
	var u uint64
	var v int64
	for i := 0; i < nt; i++ {
		u, pos = uvarintStr(src, pos)
		dst.pc[i] = int(u)
		u, pos = uvarintStr(src, pos)
		dst.wait[i] = int(u)
		dst.armed[i] = src[pos] != 0
		pos++
		u, pos = uvarintStr(src, pos)
		n := int(u)
		if cap(dst.bufs[i]) < n {
			dst.bufs[i] = make([]bufEntry, n)
		}
		dst.bufs[i] = dst.bufs[i][:n]
		for j := 0; j < n; j++ {
			u, pos = uvarintStr(src, pos)
			dst.bufs[i][j].addr = int(u)
			v, pos = varintStr(src, pos)
			dst.bufs[i][j].val = int(v)
			u, pos = uvarintStr(src, pos)
			dst.bufs[i][j].age = int(u)
		}
		dst.regs[i] = grow(dst.regs[i], p.Regs)
		for r := 0; r < p.Regs; r++ {
			v, pos = varintStr(src, pos)
			dst.regs[i][r] = int(v)
		}
	}
	for a := 0; a < p.Vars; a++ {
		v, pos = varintStr(src, pos)
		dst.mem[a] = int(v)
	}
	if pos != len(src) {
		panic("mc: trailing bytes in state encoding")
	}
}

func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// appendRegs encodes the per-thread register files alone — the compact
// form outcomes are accumulated in before orbit expansion and
// stringification (explore.go).
func appendRegs(dst []byte, regs [][]int) []byte {
	for _, rf := range regs {
		for _, r := range rf {
			dst = binary.AppendVarint(dst, int64(r))
		}
	}
	return dst
}

// decodeRegs is the inverse of appendRegs for a program with nt
// threads of nr registers each.
func decodeRegs(src string, nt, nr int) [][]int {
	out := make([][]int, nt)
	pos := 0
	var v int64
	for i := range out {
		out[i] = make([]int, nr)
		for r := 0; r < nr; r++ {
			v, pos = varintStr(src, pos)
			out[i][r] = int(v)
		}
	}
	return out
}
