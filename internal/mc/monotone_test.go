package mc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProgram builds a small two-thread straight-line program.
func randomProgram(seed int64) Program {
	rng := rand.New(rand.NewSource(seed))
	p := Program{Vars: 2, Regs: 3}
	for th := 0; th < 2; th++ {
		n := rng.Intn(3) + 2
		var ops []Op
		regs := 0
		for k := 0; k < n; k++ {
			addr := rng.Intn(2)
			switch rng.Intn(4) {
			case 0, 1:
				ops = append(ops, St(addr, rng.Intn(2)+1))
			case 2:
				if regs < 3 {
					ops = append(ops, Ld(addr, regs))
					regs++
				}
			default:
				ops = append(ops, Fence())
			}
		}
		p.Threads = append(p.Threads, ops)
	}
	return p
}

// TestQuickDeltaMonotonicity: tightening the bound can only REMOVE
// behaviours — outcomes(TBTSO[Δ1]) ⊆ outcomes(TBTSO[Δ2]) ⊆ outcomes(TSO)
// for Δ1 ≤ Δ2. This is the semantic core of "TBTSO strengthens TSO"
// (§2), checked exhaustively on random programs.
func TestQuickDeltaMonotonicity(t *testing.T) {
	subset := func(a, b Result) bool {
		for o := range a.Outcomes {
			if !b.Outcomes[o] {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		p := randomProgram(seed)
		tight := Explore(p, 2)
		loose := Explore(p, 8)
		unbounded := Explore(p, 0)
		return subset(tight, loose) && subset(loose, unbounded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSCOutcomeAlwaysPresent: the sequentially consistent
// executions (drain immediately after every store) are a subset of
// every model, so an interleaving where each store commits before the
// next action must be among the outcomes even at the tightest bound.
func TestQuickSCOutcomeAlwaysPresent(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProgram(seed)
		res := Explore(p, 1) // Δ=1: effectively SC w.r.t. store/load order
		// Compute one legal SC outcome: run the program thread 0 fully,
		// then thread 1, applying stores immediately.
		mem := make([]int, p.Vars)
		regs := make([][]int, len(p.Threads))
		for i, ops := range p.Threads {
			regs[i] = make([]int, p.Regs)
			for _, op := range ops {
				switch op.Kind {
				case OpStore:
					mem[op.Addr] = op.Val
				case OpLoad:
					regs[i][op.Reg] = mem[op.Addr]
				}
			}
		}
		key := (&state{regs: regs}).outcome()
		return res.Has(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
