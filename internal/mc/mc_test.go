package mc

import (
	"errors"
	"strings"
	"testing"
)

// sb builds the store-buffering litmus program, optionally fenced.
func sb(fenced bool) Program {
	t0 := []Op{St(0, 1)}
	t1 := []Op{St(1, 1)}
	if fenced {
		t0 = append(t0, Fence())
		t1 = append(t1, Fence())
	}
	t0 = append(t0, Ld(1, 0))
	t1 = append(t1, Ld(0, 0))
	return Program{Threads: [][]Op{t0, t1}, Vars: 2, Regs: 1}
}

func TestSBExhaustiveOutcomeSet(t *testing.T) {
	res := Explore(sb(false), 0)
	want := []string{
		"T0:r0=0 T1:r0=0", // the TSO relaxation
		"T0:r0=0 T1:r0=1",
		"T0:r0=1 T1:r0=0",
		"T0:r0=1 T1:r0=1",
	}
	got := res.List()
	if len(got) != len(want) {
		t.Fatalf("outcomes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outcomes = %v, want %v", got, want)
		}
	}
}

func TestSBFencedExcludesZeroZero(t *testing.T) {
	res := Explore(sb(true), 0)
	if res.Has("T0:r0=0 T1:r0=0") {
		t.Fatalf("fenced SB admits 0/0: %v", res.List())
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("fenced SB outcomes = %v, want exactly 3", res.List())
	}
}

func TestMPExhaustive(t *testing.T) {
	// Wd1; Wf1 || Rf; Rd — f=1 ∧ d=0 impossible under TSO.
	p := Program{
		Threads: [][]Op{
			{St(0, 1), St(1, 1)},
			{Ld(1, 0), Ld(0, 1)},
		},
		Vars: 2, Regs: 2,
	}
	res := Explore(p, 0)
	for o := range res.Outcomes {
		if strings.Contains(o, "T1:r0=1") && strings.Contains(o, "T1:r1=0") {
			t.Fatalf("MP forbidden outcome admitted: %v", res.List())
		}
	}
}

// TestFlagPrincipleExhaustive is the headline: the asymmetric flag
// principle verified EXHAUSTIVELY at a small bound. T0 raises flag0
// with no fence and looks; T1 raises flag1, fences, waits out the
// bound, and looks. 0/0 must be impossible under TBTSO[Δ] and possible
// under plain TSO.
func TestFlagPrincipleExhaustive(t *testing.T) {
	const delta = 3
	prog := func(wait int) Program {
		return Program{
			Threads: [][]Op{
				{St(0, 1), Ld(1, 0)},
				{St(1, 1), Fence(), Wait(wait), Ld(0, 0)},
			},
			Vars: 2, Regs: 1,
		}
	}
	// TBTSO[Δ] with an adequate wait: exhaustive proof of the principle
	// at this bound.
	res := Explore(prog(delta+1), delta)
	if res.Has("T0:r0=0 T1:r0=0") {
		t.Fatalf("TBTSO[%d]: 0/0 admitted despite the wait: %v", delta, res.List())
	}
	// Plain TSO, same program: 0/0 is admitted (the wait elapses but
	// nothing bounds the buffer).
	res = Explore(prog(delta+1), 0)
	if !res.Has("T0:r0=0 T1:r0=0") {
		t.Fatalf("plain TSO: 0/0 not admitted — model too strong: %v", res.List())
	}
	// TBTSO but with an inadequate wait: 0/0 must reappear. The bound
	// must exceed the slow side's own fence overhead (a handful of
	// transitions) for the window to exist at all, so use a larger Δ.
	res = Explore(prog(1), 10)
	if !res.Has("T0:r0=0 T1:r0=0") {
		t.Fatalf("TBTSO[10] with wait=1: 0/0 should be admitted: %v", res.List())
	}
	// And the same larger Δ with an adequate wait is safe again.
	res = Explore(prog(11), 10)
	if res.Has("T0:r0=0 T1:r0=0") {
		t.Fatalf("TBTSO[10] with wait=11: 0/0 admitted: %v", res.List())
	}
}

func TestDeltaOneApproachesSC(t *testing.T) {
	// Δ=1 forces every store out before the next transition completes —
	// 0/0 impossible even without fences.
	res := Explore(sb(false), 1)
	if res.Has("T0:r0=0 T1:r0=0") {
		t.Fatalf("TBTSO[1] still admits 0/0: %v", res.List())
	}
}

func TestRMWCounterExhaustive(t *testing.T) {
	// Two threads each RMW-add 1: final memory must be 2, and each
	// thread reads a distinct old value.
	p := Program{
		Threads: [][]Op{
			{RMW(0, 1, 0)},
			{RMW(0, 1, 0)},
		},
		Vars: 1, Regs: 1,
	}
	res := Explore(p, 0)
	want := map[string]bool{
		"T0:r0=0 T1:r0=1": true,
		"T0:r0=1 T1:r0=0": true,
	}
	for o := range res.Outcomes {
		if !want[o] {
			t.Fatalf("unexpected RMW outcome %q", o)
		}
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %v", res.List())
	}
}

func TestRMWDrainsBeforeExecuting(t *testing.T) {
	// A thread's own RMW cannot run ahead of its buffered store:
	// T0: St x 1; RMW y — then T1 reading y==1 must also see x==1.
	p := Program{
		Threads: [][]Op{
			{St(0, 1), RMW(1, 1, 0)},
			{Ld(1, 0), Ld(0, 1)},
		},
		Vars: 2, Regs: 2,
	}
	res := Explore(p, 0)
	for o := range res.Outcomes {
		if strings.Contains(o, "T1:r0=1") && strings.Contains(o, "T1:r1=0") {
			t.Fatalf("RMW did not act as a fence: %v", res.List())
		}
	}
}

func TestForwarding(t *testing.T) {
	// A thread reads its own buffered store.
	p := Program{
		Threads: [][]Op{{St(0, 7), Ld(0, 0)}},
		Vars:    1, Regs: 1,
	}
	res := Explore(p, 0)
	if len(res.Outcomes) != 1 || !res.Has("T0:r0=7") {
		t.Fatalf("forwarding broken: %v", res.List())
	}
}

func TestEmptyProgram(t *testing.T) {
	res := Explore(Program{}, 0)
	if res.States != 1 {
		t.Fatalf("states = %d", res.States)
	}
}

func TestStateCountsReported(t *testing.T) {
	res := Explore(sb(false), 2)
	if res.States < 10 {
		t.Fatalf("suspiciously few states: %d", res.States)
	}
}

func TestExploreBoundedTruncates(t *testing.T) {
	res, err := ExploreBounded(sb(false), 0, 5)
	if err == nil {
		t.Fatal("a 5-state budget cannot complete SB")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TruncatedError", err)
	}
	if te.MaxStates != 5 || te.States != 5 {
		t.Fatalf("TruncatedError = %+v, want budget and states of 5", te)
	}
	if !strings.Contains(te.Shape, "2 threads") {
		t.Fatalf("TruncatedError.Shape = %q, want the program shape", te.Shape)
	}
	if res.States != 5 {
		t.Fatalf("states = %d, want exactly the budget", res.States)
	}
	res, err = ExploreBounded(sb(false), 0, DefaultMaxStates)
	if err != nil || len(res.Outcomes) != 4 {
		t.Fatalf("full budget: err=%v outcomes=%d", err, len(res.Outcomes))
	}
}

func TestExplorePanicNamesShapeAndStates(t *testing.T) {
	// A large random-ish program truncated by a tiny budget via the
	// sequential path exercises the error text; Explore's panic carries
	// the same *TruncatedError message.
	_, err := ExploreSequentialBounded(sb(false), 0, 3)
	if err == nil {
		t.Fatal("want truncation")
	}
	msg := err.Error()
	for _, frag := range []string{"truncated at 3", "2 threads", "Δ=0"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("error %q missing %q", msg, frag)
		}
	}
}
