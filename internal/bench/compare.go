package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"tbtso/internal/report"
)

// FigureDoc is the tbtso-bench -json output document: a list of figure
// tables. It round-trips through report.Table's JSON codec, so a
// committed baseline (BENCH_mc.json) can be read back and diffed
// against a fresh run.
type FigureDoc struct {
	Figures []*report.Table `json:"figures"`
}

// ReadFigureDoc parses a -json figure document.
func ReadFigureDoc(r io.Reader) (*FigureDoc, error) {
	var doc FigureDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("bench: parsing figure document: %w", err)
	}
	if len(doc.Figures) == 0 {
		return nil, fmt.Errorf("bench: figure document has no figures")
	}
	return &doc, nil
}

// CompareOptions tunes the regression thresholds. Time is compared by
// ratio (wall-clock noise in CI makes exact comparison useless);
// states likewise but tighter, since state counts only move when the
// explorer itself changes behaviour.
type CompareOptions struct {
	// TimeRatio flags a row when new time > old time × TimeRatio
	// (default 2.0).
	TimeRatio float64
	// StatesRatio flags a row when new states > old states × StatesRatio
	// (default 1.5).
	StatesRatio float64
}

func (o CompareOptions) orDefault() CompareOptions {
	if o.TimeRatio == 0 {
		o.TimeRatio = 2.0
	}
	if o.StatesRatio == 0 {
		o.StatesRatio = 1.5
	}
	return o
}

// Regression is one flagged row difference between baseline and
// candidate figure documents.
type Regression struct {
	Figure string // figure title
	Row    string // the row's identity-column key
	Column string // offending column ("" for structural problems)
	Old    string
	New    string
	Detail string
}

func (r Regression) String() string {
	s := fmt.Sprintf("%s | %s", r.Figure, r.Row)
	if r.Column != "" {
		s += fmt.Sprintf(" | %s: %s -> %s", r.Column, r.Old, r.New)
	}
	if r.Detail != "" {
		s += " (" + r.Detail + ")"
	}
	return s
}

// metricColumns are the perf columns compared by threshold; identity
// columns (program, Δ, engine, ...) are everything else. "outcomes" is
// special: it is a correctness column and must match exactly.
var metricColumns = map[string]bool{
	"states":   true,
	"time":     true,
	"states/s": true,
	"speedup":  true,
	"ops/s":    true, // sim figure: machine actions per second
	"runs/s":   true, // sim figure: whole program executions per second
}

// Interrupted returns the titles of figures the document itself marks
// as cut short — via the machine-readable flag, or (for documents
// written before the flag existed) the INTERRUPTED footnote.
func (d *FigureDoc) Interrupted() []string {
	var out []string
	for _, t := range d.Figures {
		if t.Interrupted {
			out = append(out, t.Title)
			continue
		}
		for _, n := range t.Notes() {
			if strings.Contains(n, "INTERRUPTED") {
				out = append(out, t.Title)
				break
			}
		}
	}
	return out
}

// Compare diffs a candidate figure document against a baseline:
// figures are matched by title, rows by their identity columns, and
// each matched row's time/states cells are checked against the
// thresholds. Missing figures, missing rows, and changed outcome
// counts are always regressions; extra rows and figures in the
// candidate are not. A document compared against itself yields nil.
//
// Either document carrying an interrupted figure is an error, not a
// regression list: a partial document's missing rows would read as
// regressions (candidate) or silently shrink the comparison surface
// (baseline), so the comparison is refused outright.
func Compare(baseline, candidate *FigureDoc, opts CompareOptions) ([]Regression, error) {
	if figs := baseline.Interrupted(); len(figs) > 0 {
		return nil, fmt.Errorf("bench: baseline document is partial (interrupted figures: %s); refusing to compare against it", strings.Join(figs, ", "))
	}
	if figs := candidate.Interrupted(); len(figs) > 0 {
		return nil, fmt.Errorf("bench: candidate document is partial (interrupted figures: %s); rerun it to completion before comparing", strings.Join(figs, ", "))
	}
	opts = opts.orDefault()
	var out []Regression

	cand := make(map[string]*report.Table, len(candidate.Figures))
	for _, t := range candidate.Figures {
		cand[t.Title] = t
	}
	for _, oldT := range baseline.Figures {
		newT, ok := cand[oldT.Title]
		if !ok {
			out = append(out, Regression{Figure: oldT.Title, Row: "-", Detail: "figure missing from candidate"})
			continue
		}
		out = append(out, compareTable(oldT, newT, opts)...)
	}
	return out, nil
}

func compareTable(oldT, newT *report.Table, opts CompareOptions) []Regression {
	var out []Regression
	if strings.Join(oldT.Headers, ",") != strings.Join(newT.Headers, ",") {
		return []Regression{{
			Figure: oldT.Title, Row: "-",
			Detail: fmt.Sprintf("headers changed: %v -> %v", oldT.Headers, newT.Headers),
		}}
	}
	rowKey := func(row []string) string {
		var parts []string
		for i, h := range oldT.Headers {
			if i < len(row) && !metricColumns[h] && h != "outcomes" {
				parts = append(parts, row[i])
			}
		}
		return strings.Join(parts, " ")
	}
	newRows := make(map[string][]string, len(newT.Rows()))
	for _, r := range newT.Rows() {
		newRows[rowKey(r)] = r
	}
	for _, oldRow := range oldT.Rows() {
		key := rowKey(oldRow)
		newRow, ok := newRows[key]
		if !ok {
			out = append(out, Regression{Figure: oldT.Title, Row: key, Detail: "row missing from candidate"})
			continue
		}
		for i, h := range oldT.Headers {
			if i >= len(oldRow) || i >= len(newRow) {
				continue
			}
			oldC, newC := oldRow[i], newRow[i]
			reg := Regression{Figure: oldT.Title, Row: key, Column: h, Old: oldC, New: newC}
			switch {
			case h == "outcomes":
				if oldC != newC {
					reg.Detail = "outcome count changed — a correctness difference, not noise"
					out = append(out, reg)
				}
			case h == "states":
				if worseByRatio(oldC, newC, opts.StatesRatio, parseCount) {
					reg.Detail = fmt.Sprintf("states regressed beyond %.2fx", opts.StatesRatio)
					out = append(out, reg)
				}
			case h == "time":
				if worseByRatio(oldC, newC, opts.TimeRatio, parseTime) {
					reg.Detail = fmt.Sprintf("time regressed beyond %.2fx", opts.TimeRatio)
					out = append(out, reg)
				}
			}
		}
	}
	return out
}

// worseByRatio parses both cells with parse and reports whether the
// candidate exceeds baseline × ratio. Unparseable cells (annotations
// like "(truncated)") are never flagged — absence of evidence.
func worseByRatio(oldC, newC string, ratio float64, parse func(string) (float64, bool)) bool {
	o, ok1 := parse(oldC)
	n, ok2 := parse(newC)
	if !ok1 || !ok2 || o <= 0 {
		return false
	}
	return n > o*ratio
}

func parseCount(s string) (float64, bool) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	return v, err == nil
}

func parseTime(s string) (float64, bool) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, false
	}
	return float64(d), true
}
