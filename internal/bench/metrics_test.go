package bench

import (
	"testing"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/lock"
	"tbtso/internal/obs"
	"tbtso/internal/quiesce"
	"tbtso/internal/smr"
	"tbtso/internal/workload"
)

// counterValue finds a counter in the snapshot by name.
func counterValue(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return uint64(m.Value)
		}
	}
	t.Fatalf("metric %q not in registry", name)
	return 0
}

func TestRunTablePublishesSchemeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	res := runTable(tableConfig{
		kind: smr.KindFFHP, mix: workload.ReadWrite, chainLen: 4,
		threads: 4, buckets: 64,
		duration: 40 * time.Millisecond, deltaHW: 200 * time.Microsecond,
		metrics: reg,
	})
	if res.UpdaterRate == 0 {
		t.Skip("no updates ran; machine too loaded to assert on counters")
	}
	prefix := "smr." + res.Scheme + "."
	if counterValue(t, reg, prefix+"retires") == 0 {
		t.Errorf("updates ran but %sretires is zero", prefix)
	}
	if counterValue(t, reg, prefix+"scans") == 0 {
		t.Errorf("updates ran but %sscans is zero", prefix)
	}
}

func TestRunLockPatternPublishesLockMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	pat := workload.Patterns()[0]
	mkFFBL := func() lock.BiasedLock {
		return lock.NewFFBL(core.NewFixedDelta(200*time.Microsecond), true)
	}
	res := runLockPattern(mkFFBL, pat, 40*time.Millisecond, reg)
	if res.OtherRate == 0 {
		t.Skip("no non-owner acquisitions; nothing to assert")
	}
	if counterValue(t, reg, "lock."+res.Lock+".bias_transfers") == 0 {
		t.Error("non-owner acquisitions ran but bias_transfers is zero")
	}
}

func TestQuiesceModelPublishesHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	p := quiesce.DefaultParams()
	p.Metrics = reg
	quiesce.QuiescenceLatency(p, 4, 50)
	quiesce.StoreVisibilityCDF(p, quiesce.PlacementSameSocket, quiesce.LoadIdle, 10_000)
	tau := 10 * time.Microsecond
	quiesce.WithBailout(p, quiesce.PlacementCrossSocket, quiesce.LoadStream, 10_000, tau, 8, 8)

	want := map[string]uint64{
		"quiesce.wait_ns":             4 * 50,
		"quiesce.visibility_ns":       10_000,
		"quiesce.bailout_visibility_ns": 10_000,
	}
	got := map[string]uint64{}
	for _, m := range reg.Snapshot() {
		if m.Kind == "histogram" {
			got[m.Name] = m.Count
		}
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("%s: %d samples, want %d", name, got[name], n)
		}
	}
	// The bailouts counter exists (it may legitimately be zero when no
	// sample exceeded τ, but with a stream-load tail and τ=10 µs over
	// 10k samples some usually do; assert only presence).
	counterValue(t, reg, "quiesce.bailouts")
}
