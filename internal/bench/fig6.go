package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/hashtable"
	"tbtso/internal/list"
	"tbtso/internal/obs"
	"tbtso/internal/ostick"
	"tbtso/internal/report"
	"tbtso/internal/smr"
	"tbtso/internal/stats"
	"tbtso/internal/workload"
)

// harnessR is the paper's retirement threshold (§7.1: R = 32000,
// ≈2 MB). Figure 7 uses a smaller R scaled to its shorter runs so
// reclamation actually exercises (see fig7.go).
const harnessR = 32000

// TableRun is the outcome of one hash-table workload cell.
type TableRun struct {
	Scheme      string
	Mix         workload.Mix
	ChainLen    int
	Threads     int
	ReaderRate  float64 // lookups per second, all readers
	UpdaterRate float64 // updates per second, all updaters
	Violations  uint64
	PeakWaste   uint64 // peak retired-unreclaimed bytes (Figure 7)
}

// tableConfig parameterizes one run.
type tableConfig struct {
	kind     smr.Kind
	mix      workload.Mix
	chainLen int
	threads  int
	buckets  int
	duration time.Duration
	deltaHW  time.Duration
	board    *ostick.Board
	// stall, if nonzero, makes reader 0 stall this long inside one
	// lookup at mid-run (Figure 7).
	stall time.Duration
	// sampleWaste turns on the peak-memory sampler (Figure 7).
	sampleWaste bool
	// r overrides the retirement threshold (0 = harnessR).
	r int
	// metrics, if non-nil, receives the scheme's counters after the run.
	metrics *obs.Registry
}

// schemeMetrics is implemented by SMR schemes (and locks) that can
// publish their internal counters into a registry.
type schemeMetrics interface {
	Metrics(*obs.Registry)
}

// runTable executes one workload cell.
func runTable(cfg tableConfig) TableRun {
	universe := workload.UniverseForChain(cfg.chainLen, cfg.buckets)
	h := cfg.threads * list.NumSlots
	r := cfg.r
	if r == 0 {
		r = harnessR
	}
	if r <= h {
		r = h + 16
	}
	// Headroom beyond R·threads: grace-period schemes (RCU, EBR) bound
	// waste by reclamation latency rather than R, and Figure 7's whole
	// point is letting that waste grow during stalls.
	capacity := int(universe) + cfg.threads*(r+16) + 65536
	ar := arena.New(capacity, cfg.threads+1)
	scheme := smr.New(cfg.kind, smr.Config{
		Threads: cfg.threads,
		K:       list.NumSlots,
		R:       r,
		Arena:   ar,
		Delta:   cfg.deltaHW,
		Board:   cfg.board,
	})
	defer scheme.Close()
	table := hashtable.New(ar, scheme, cfg.buckets)

	// Prefill with ~U/2 keys (§7.1), split across workers.
	var pre sync.WaitGroup
	for tid := 0; tid < cfg.threads; tid++ {
		pre.Add(1)
		go func(tid int) {
			defer pre.Done()
			span := universe / uint64(cfg.threads)
			lo := span * uint64(tid)
			hi := lo + span
			if tid == cfg.threads-1 {
				hi = universe
			}
			coin := workload.NewKeyGen(2, int64(tid)*7+1) // fair coin
			for k := lo; k < hi; k++ {
				if coin.Next() == 0 {
					if _, err := table.Insert(tid, k); err != nil {
						return
					}
				}
			}
		}(tid)
	}
	pre.Wait()

	roles := make([]workload.Role, cfg.threads)
	updaters := 0
	for tid := range roles {
		roles[tid] = workload.RoleOf(cfg.mix, tid)
		if roles[tid] == workload.Updater {
			updaters++
		}
	}
	if cfg.mix == workload.ReadWrite && updaters == 0 {
		// Fewer than 4 workers: keep at least one updater so the mix
		// is actually read/write.
		roles[cfg.threads-1] = workload.Updater
		updaters = 1
	}

	readerOps := stats.NewCounters(cfg.threads)
	updaterOps := stats.NewCounters(cfg.threads)
	var stop atomic.Bool
	var peak atomic.Uint64

	var samplerWG sync.WaitGroup
	if cfg.sampleWaste {
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			for !stop.Load() {
				w := uint64(scheme.Unreclaimed()) * arena.NodeBytes
				for {
					old := peak.Load()
					if w <= old || peak.CompareAndSwap(old, w) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	var wg sync.WaitGroup
	upIdx := 0
	for tid := 0; tid < cfg.threads; tid++ {
		role := roles[tid]
		myUp := -1
		if role == workload.Updater {
			myUp = upIdx
			upIdx++
		}
		wg.Add(1)
		go func(tid, myUp int, role workload.Role) {
			defer wg.Done()
			defer func() {
				scheme.Flush(tid)
				if rcu, ok := scheme.(*smr.RCU); ok {
					rcu.Offline(tid)
				}
			}()
			g := workload.NewKeyGen(universe, int64(tid)+100)
			switch role {
			case workload.Reader:
				stalled := cfg.stall == 0 || tid != 0
				n := 0
				for !stop.Load() {
					for i := 0; i < 64; i++ {
						table.Lookup(tid, g.Next())
						n++
					}
					readerOps.Inc(tid)
					runtime.Gosched() // paper: every thread owns a core
					if !stalled && n > 256 {
						// The Figure 7 stall: sleep inside a lookup.
						table.LookupStalled(tid, g.Next(), func() {
							time.Sleep(cfg.stall)
						})
						stalled = true
					}
				}
			case workload.Updater:
				lo, hi := workload.Partition(universe, myUp, updaters)
				for !stop.Load() {
					// §7.1: alternate between inserting and removing
					// each item of the owned subset. On transient arena
					// exhaustion (a stalled reader pinning garbage),
					// back off like a real allocator under pressure.
					for k := lo; k < hi && !stop.Load(); k++ {
						if _, err := table.Insert(tid, k); err != nil {
							time.Sleep(200 * time.Microsecond)
							continue
						}
						updaterOps.Inc(tid)
						if k%64 == 63 {
							runtime.Gosched()
						}
					}
					for k := lo; k < hi && !stop.Load(); k++ {
						table.Remove(tid, k)
						updaterOps.Inc(tid)
						if k%64 == 63 {
							runtime.Gosched()
						}
					}
				}
			}
		}(tid, myUp, role)
	}

	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	samplerWG.Wait()

	if cfg.metrics != nil {
		if sm, ok := scheme.(schemeMetrics); ok {
			sm.Metrics(cfg.metrics)
		}
	}

	secs := cfg.duration.Seconds()
	return TableRun{
		Scheme:      scheme.Name(),
		Mix:         cfg.mix,
		ChainLen:    cfg.chainLen,
		Threads:     cfg.threads,
		ReaderRate:  float64(readerOps.Total()) * 64 / secs,
		UpdaterRate: float64(updaterOps.Total()) / secs,
		Violations:  ar.Violations(),
		PeakWaste:   peak.Load(),
	}
}

// TableCell is the public parameterization of one hash-table workload
// cell, used by the root benchmark suite.
type TableCell struct {
	Kind        smr.Kind
	Mix         workload.Mix
	ChainLen    int
	Threads     int
	Buckets     int
	Duration    time.Duration
	DeltaHW     time.Duration
	Board       *ostick.Board
	Stall       time.Duration
	SampleWaste bool
	R           int
	Metrics     *obs.Registry
}

// RunTableCell executes one hash-table workload cell.
func RunTableCell(c TableCell) TableRun {
	return runTable(tableConfig{
		kind: c.Kind, mix: c.Mix, chainLen: c.ChainLen,
		threads: c.Threads, buckets: c.Buckets,
		duration: c.Duration, deltaHW: c.DeltaHW, board: c.Board,
		stall: c.Stall, sampleWaste: c.SampleWaste, r: c.R,
		metrics: c.Metrics,
	})
}

// Figure6Schemes is the scheme lineup of Figure 6.
func Figure6Schemes() []smr.Kind {
	return []smr.Kind{smr.KindFFHP, smr.KindFFHPTicks, smr.KindHP, smr.KindRCU, smr.KindDTA, smr.KindStack, smr.KindEBR}
}

// Figure6Scaling sweeps worker counts for the read-only short-chain
// workload — the x-axis of the paper's Figure 6 plots — for the three
// schemes whose ordering the paper's headline compares.
func Figure6Scaling(o Options) *report.Table {
	o = o.Defaults()
	board := o.newBoard()
	defer board.Stop()
	counts := []int{1, 2, 4}
	if o.Threads > 4 {
		counts = append(counts, o.Threads)
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 6 (scaling) — read-only L=4 throughput vs workers (%v/cell × %d runs)", o.Duration, o.Runs),
		"workers", "scheme", "reader ops/s", "vs FFHP")
	for _, n := range counts {
		var ffhp float64
		for _, kind := range []smr.Kind{smr.KindFFHP, smr.KindHP, smr.KindRCU} {
			if o.interrupted() {
				break
			}
			rates := make([]float64, 0, o.Runs)
			for run := 0; run < o.Runs; run++ {
				res := runTable(tableConfig{
					kind: kind, mix: workload.ReadOnly, chainLen: 4,
					threads: n, buckets: o.Buckets,
					duration: o.Duration, deltaHW: o.DeltaHW, board: board,
					metrics: o.Metrics,
				})
				rates = append(rates, res.ReaderRate)
			}
			med := stats.Median(rates)
			if kind == smr.KindFFHP {
				ffhp = med
			}
			rel := "1.00"
			if ffhp > 0 {
				rel = fmt.Sprintf("%.2f", med/ffhp)
			}
			t.AddRow(n, string(kind), stats.FormatRate(med), rel)
		}
	}
	t.AddNote("goroutines beyond the host's cores add concurrency, not parallelism; the paper scales to 80 hardware threads")
	return o.markInterrupted(t)
}

// Figure6 regenerates the hash-table throughput comparison: read-only
// and read/write mixes over short (L=4) and long (L=256) chains, every
// SMR scheme, reader and updater throughput.
func Figure6(o Options) *report.Table {
	o = o.Defaults()
	chains := []int{4, 256}
	if o.Quick {
		chains = []int{4, 64}
	}
	board := o.newBoard()
	defer board.Stop()
	t := report.NewTable(
		fmt.Sprintf("Figure 6 — hash table throughput (%d threads, %d buckets, %v/cell × %d runs)",
			o.Threads, o.Buckets, o.Duration, o.Runs),
		"mix", "L", "scheme", "reader ops/s", "updater ops/s", "vs FFHP")
	for _, mix := range []workload.Mix{workload.ReadOnly, workload.ReadWrite} {
		for _, L := range chains {
			var ffhpRate float64
			for _, kind := range Figure6Schemes() {
				if o.interrupted() {
					break
				}
				rates := make([]float64, 0, o.Runs)
				upRates := make([]float64, 0, o.Runs)
				var viol uint64
				for run := 0; run < o.Runs; run++ {
					res := runTable(tableConfig{
						kind: kind, mix: mix, chainLen: L,
						threads: o.Threads, buckets: o.Buckets,
						duration: o.Duration, deltaHW: o.DeltaHW, board: board,
						metrics: o.Metrics,
					})
					rates = append(rates, res.ReaderRate)
					upRates = append(upRates, res.UpdaterRate)
					viol += res.Violations
				}
				med := stats.Median(rates)
				upMed := stats.Median(upRates)
				if kind == smr.KindFFHP {
					ffhpRate = med
				}
				rel := "1.00"
				if ffhpRate > 0 {
					rel = fmt.Sprintf("%.2f", med/ffhpRate)
				}
				row := []any{mix, L, string(kind), stats.FormatRate(med), stats.FormatRate(upMed), rel}
				if viol > 0 {
					row = append(row[:5], fmt.Sprintf("%s [%d VIOLATIONS]", rel, viol))
				}
				t.AddRow(row...)
			}
		}
	}
	t.AddNote("paper (Westmere-EX): FFHP ≈ RCU, 30%% over HP read-only; DTA −30%% on short ops; StackTrack splits on long ops; DTA updates >100× slower")
	return o.markInterrupted(t)
}
