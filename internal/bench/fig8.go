package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/lock"
	"tbtso/internal/obs"
	"tbtso/internal/report"
	"tbtso/internal/stats"
	"tbtso/internal/vclock"
	"tbtso/internal/workload"
)

// LockRates is one (pattern, lock) cell of Figure 8.
type LockRates struct {
	Lock      string
	Pattern   string
	OwnerRate float64 // acquisitions/s
	OtherRate float64
}

// runLockPattern measures owner and non-owner acquisition throughput
// for one lock under one access pattern (§7.2: two threads, random
// interarrival delays simulating application work). If reg is non-nil
// the lock's counters (bias revocations, transfers, echoes) are
// published into it after the run.
func runLockPattern(mk func() lock.BiasedLock, pat workload.LockPattern, dur time.Duration, reg *obs.Registry) LockRates {
	lk := mk()
	var ownerN, otherN stats.Counter
	var stop atomic.Bool
	var otherDone atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // owner
		defer wg.Done()
		ia := workload.NewInterarrival(pat.OwnerMean, 1)
		// Stall cadence runs on vclock ticks (the clock SpinWait spins
		// on) with the pattern's configurable threshold, not on
		// time.Now(): a wall-clock gap check re-measures scheduler
		// noise on a loaded CI box, skewing how many stalls a cell
		// injects from run to run.
		stallGap := pat.StallGapTicks()
		lastStall := vclock.Now()
		for !stop.Load() {
			workload.SpinWait(ia.Next())
			if pat.OwnerStall > 0 && vclock.Now()-lastStall > stallGap {
				// The owner gets "scheduled out": a long stall with no
				// cooperative points, between critical sections.
				time.Sleep(pat.OwnerStall)
				lastStall = vclock.Now()
			}
			lk.OwnerLock()
			lk.OwnerUnlock()
			ownerN.Inc()
		}
		// The safe-point lock needs the owner to keep reaching safe
		// points while non-owners drain.
		if sp, ok := lk.(*lock.SafePointBiased); ok {
			for !otherDone.Load() {
				sp.SafePoint()
				runtime.Gosched()
			}
		}
	}()

	wg.Add(1)
	go func() { // non-owner
		defer wg.Done()
		defer otherDone.Store(true)
		ia := workload.NewInterarrival(pat.OtherMean, 2)
		for !stop.Load() {
			workload.SpinWait(ia.Next())
			lk.OtherLock()
			lk.OtherUnlock()
			otherN.Inc()
		}
	}()

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if reg != nil {
		if lm, ok := lk.(schemeMetrics); ok {
			lm.Metrics(reg)
		}
	}
	secs := dur.Seconds()
	return LockRates{
		Lock:      lk.Name(),
		Pattern:   pat.Name,
		OwnerRate: float64(ownerN.Load()) / secs,
		OtherRate: float64(otherN.Load()) / secs,
	}
}

// RunLockCell executes one (lock, pattern) cell — the public wrapper
// used by the root benchmark suite.
func RunLockCell(mk func() lock.BiasedLock, pat workload.LockPattern, dur time.Duration) LockRates {
	return runLockPattern(mk, pat, dur, nil)
}

// Figure8Locks builds the lock lineup of Figure 8; the caller owns the
// returned cleanup.
func Figure8Locks(o Options) (locks []func() lock.BiasedLock, names []string, cleanup func()) {
	board := o.newBoard()
	hw := core.NewFixedDelta(o.DeltaHW)
	adapted := core.NewTickBoard(board)
	mk := func(f func() lock.BiasedLock) {
		locks = append(locks, f)
		names = append(names, f().Name())
	}
	mk(func() lock.BiasedLock { return lock.NewPthread() })
	mk(func() lock.BiasedLock { return lock.NewFFBL(hw, true) })
	mk(func() lock.BiasedLock { return lock.NewFFBL(hw, false) })
	mk(func() lock.BiasedLock { return lock.NewFFBL(adapted, true) })
	mk(func() lock.BiasedLock { return lock.NewFFBL(adapted, false) })
	mk(func() lock.BiasedLock { return lock.NewSafePointBiased() })
	mk(func() lock.BiasedLock { return lock.NewBaselineBiased() })
	return locks, names, board.Stop
}

// Figure8 regenerates the biased-lock throughput comparison across the
// four access patterns, normalized to the pthread baseline.
func Figure8(o Options) *report.Table {
	o = o.Defaults()
	dur := o.Duration
	locks, _, cleanup := Figure8Locks(o)
	defer cleanup()
	t := report.NewTable(
		fmt.Sprintf("Figure 8 — biased lock throughput normalized to pthread (%v/cell × %d runs)", dur, o.Runs),
		"pattern", "lock", "owner acq/s", "other acq/s", "owner ×pthread", "other ×pthread")
	for _, pat := range workload.Patterns() {
		var baseOwner, baseOther float64
		for _, mk := range locks {
			if o.interrupted() {
				break
			}
			owners := make([]float64, 0, o.Runs)
			others := make([]float64, 0, o.Runs)
			var name string
			for run := 0; run < o.Runs; run++ {
				res := runLockPattern(mk, pat, dur, o.Metrics)
				owners = append(owners, res.OwnerRate)
				others = append(others, res.OtherRate)
				name = res.Lock
			}
			ownerMed, otherMed := stats.Median(owners), stats.Median(others)
			if name == "pthread" {
				baseOwner, baseOther = ownerMed, otherMed
			}
			normO, normT := "-", "-"
			if baseOwner > 0 {
				normO = fmt.Sprintf("%.2f", ownerMed/baseOwner)
			}
			if baseOther > 0 {
				normT = fmt.Sprintf("%.2f", otherMed/baseOther)
			}
			t.AddRow(pat.Name, name, stats.FormatRate(ownerMed), stats.FormatRate(otherMed), normO, normT)
		}
	}
	t.AddNote("paper: biased owners beat pthread 5–10%% when non-owners are rare; no-echo FFBL collapses as non-owner frequency rises; under owner stalls FFBL beats the safe-point lock 7–50×")
	return o.markInterrupted(t)
}
