package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/report"
	"tbtso/internal/rwlock"
	"tbtso/internal/stats"
	"tbtso/internal/workload"
)

// rwLockIface abstracts the two read-side APIs.
type rwLockIface interface {
	rlock(slot int)
	runlock(slot int)
	wlock()
	wunlock()
	name() string
}

type prwAdapter struct {
	l *rwlock.PRWLock
	n string
}

func (a prwAdapter) rlock(s int)   { a.l.RLock(s) }
func (a prwAdapter) runlock(s int) { a.l.RUnlock(s) }
func (a prwAdapter) wlock()        { a.l.Lock() }
func (a prwAdapter) wunlock()      { a.l.Unlock() }
func (a prwAdapter) name() string  { return a.n }

type stdAdapter struct {
	l sync.RWMutex
}

func (a *stdAdapter) rlock(int)    { a.l.RLock() }
func (a *stdAdapter) runlock(int)  { a.l.RUnlock() }
func (a *stdAdapter) wlock()       { a.l.Lock() }
func (a *stdAdapter) wunlock()     { a.l.Unlock() }
func (a *stdAdapter) name() string { return "sync.RWMutex" }

// RWLockRates is one cell of the passive-RW-lock experiment.
type RWLockRates struct {
	Lock       string
	ReaderRate float64
	WriterRate float64
}

// runRWCell measures read and write throughput with `readers` reader
// goroutines and one writer arriving with mean interarrival writerMean.
func runRWCell(lk rwLockIface, readers int, writerMean, dur time.Duration) RWLockRates {
	var rOps, wOps stats.Counter
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				for i := 0; i < 32; i++ {
					lk.rlock(r)
					lk.runlock(r)
				}
				rOps.Add(32)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ia := workload.NewInterarrival(writerMean, 3)
		for !stop.Load() {
			workload.SpinWait(ia.Next())
			lk.wlock()
			lk.wunlock()
			wOps.Inc()
		}
	}()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	secs := dur.Seconds()
	return RWLockRates{Lock: lk.name(), ReaderRate: float64(rOps.Load()) / secs, WriterRate: float64(wOps.Load()) / secs}
}

// RWLock runs the passive-RW-lock extension experiment: read-side
// throughput of the TBTSO passive lock (fence-free read path, Δ-waiting
// writer) against sync.RWMutex, under rare and moderate writer rates.
func RWLock(o Options) *report.Table {
	o = o.Defaults()
	readers := o.Threads
	board := o.newBoard()
	defer board.Stop()
	mk := func() []rwLockIface {
		return []rwLockIface{
			prwAdapter{rwlock.New(readers, core.NewFixedDelta(o.DeltaHW)), "PRW[Δ=0.5ms]"},
			prwAdapter{rwlock.New(readers, core.NewTickBoard(board)), "PRW[A-board]"},
			&stdAdapter{},
		}
	}
	t := report.NewTable(
		fmt.Sprintf("Extension — passive RW lock read throughput (%d readers, %v/cell × %d runs)", readers, o.Duration, o.Runs),
		"writer rate", "lock", "reader ops/s", "writer ops/s")
	for _, writerMean := range []time.Duration{10 * time.Millisecond, 200 * time.Microsecond} {
		for i := range mk() {
			if o.interrupted() {
				break
			}
			var rRates, wRates []float64
			var name string
			for run := 0; run < o.Runs; run++ {
				res := runRWCell(mk()[i], readers, writerMean, o.Duration)
				rRates = append(rRates, res.ReaderRate)
				wRates = append(wRates, res.WriterRate)
				name = res.Lock
			}
			t.AddRow(fmt.Sprintf("1/%v", writerMean), name,
				stats.FormatRate(stats.Median(rRates)), stats.FormatRate(stats.Median(wRates)))
		}
	}
	t.AddNote("the writer pays the visibility bound per acquisition; readers pay no fence and no RMW — Liu et al. [23] with Δ in place of IPIs")
	return o.markInterrupted(t)
}
