package bench

import (
	"fmt"
	"testing"

	"tbtso/internal/fuzz"
	"tbtso/internal/tso"
)

// The testing.B forms of the sim figure's cells, for benchstat use:
//
//	go test -bench 'BenchmarkEngine' -count 10 ./internal/bench | benchstat -
//
// BenchmarkEngineDirect vs BenchmarkEngineGoroutine is the figure's
// speedup column; both run the same fuzz.Gen corpus under the same
// (Δ, policy, seed) cells, so ns/op is directly comparable.

func benchCorpus() []fuzz.MachineRun {
	runs := make([]fuzz.MachineRun, 0, 3)
	for i, c := range []struct {
		delta  uint64
		policy tso.DrainPolicy
	}{
		{0, tso.DrainEager},
		{4, tso.DrainRandom},
		{4, tso.DrainAdversarial},
	} {
		runs = append(runs, fuzz.MachineRun{Delta: c.delta, Policy: c.policy, Seed: int64(i + 1)})
	}
	return runs
}

func BenchmarkEngineDirect(b *testing.B) {
	corpus := simCorpus(24)
	s := fuzz.NewSampler()
	for _, run := range benchCorpus() {
		b.Run(fmt.Sprintf("delta=%d/policy=%v", run.Delta, run.Policy), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := corpus[i%len(corpus)]
				run.Seed = int64(i)
				if _, _, err := s.Sample(p, run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineGoroutine(b *testing.B) {
	corpus := simCorpus(24)
	for _, run := range benchCorpus() {
		b.Run(fmt.Sprintf("delta=%d/policy=%v", run.Delta, run.Policy), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := corpus[i%len(corpus)]
				run.Seed = int64(i)
				if _, _, err := fuzz.RunOnMachineGoroutine(p, run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignWorkers measures the parallel differential campaign
// (checker explorations + machine sampling) at fixed worker counts; on
// a multi-core machine runs/s should scale near-linearly until the
// core count. One iteration is a whole 8-program batch.
func BenchmarkCampaignWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := fuzz.Config{Workers: workers}
			for i := 0; i < b.N; i++ {
				rep := fuzz.Run(cfg, 8, int64(1+8*i))
				if len(rep.Mismatches) != 0 {
					b.Fatalf("campaign found mismatches: %v", rep.Mismatches)
				}
			}
		})
	}
}
