package bench

import (
	"context"
	"strings"
	"testing"
)

// TestFiguresInterruptible: a cancelled context stops every figure
// driver at a cell boundary — no rows from uncompleted cells, and the
// partial table is stamped so it cannot pass for a baseline.
func TestFiguresInterruptible(t *testing.T) {
	gone, cancel := context.WithCancel(context.Background())
	cancel()
	figures := map[string]func(Options) int{
		"figure4": func(o Options) int { return len(Figure4(o).Rows()) },
		"figure5": func(o Options) int { return len(Figure5(o).Rows()) },
		"machine": func(o Options) int { return len(MachineCost(o).Rows()) },
		"bailout": func(o Options) int { return len(Bailout(o).Rows()) },
		"mc":      func(o Options) int { return len(MCExplorer(o).Rows()) },
		"sim":     func(o Options) int { return len(Sim(o).Rows()) },
	}
	for name, run := range figures {
		if n := run(Options{Quick: true, Context: gone}); n != 0 {
			t.Errorf("%s: pre-cancelled driver still produced %d rows", name, n)
		}
	}

	tab := Figure4(Options{Quick: true, Context: gone})
	stamped := false
	for _, note := range tab.Notes() {
		if strings.Contains(note, "INTERRUPTED") {
			stamped = true
		}
	}
	if !stamped {
		t.Error("interrupted figure4 table lacks the INTERRUPTED note")
	}
	if !tab.Interrupted {
		t.Error("interrupted figure4 table lacks the machine-readable Interrupted flag")
	}

	// A live context must not change behaviour: same rows as nil.
	live := context.Background()
	base := MachineCost(Options{Quick: true})
	got := MachineCost(Options{Quick: true, Context: live})
	if len(got.Rows()) != len(base.Rows()) {
		t.Errorf("live context changed MachineCost: %d rows, want %d", len(got.Rows()), len(base.Rows()))
	}
	for _, note := range got.Notes() {
		if strings.Contains(note, "INTERRUPTED") {
			t.Error("uninterrupted table stamped INTERRUPTED")
		}
	}
	if got.Interrupted {
		t.Error("uninterrupted table carries the Interrupted flag")
	}
}
