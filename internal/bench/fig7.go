package bench

import (
	"fmt"
	"time"

	"tbtso/internal/report"
	"tbtso/internal/smr"
	"tbtso/internal/stats"
	"tbtso/internal/workload"
)

// Figure7Schemes is the lineup of the memory-consumption experiment.
func Figure7Schemes() []smr.Kind {
	return []smr.Kind{smr.KindFFHP, smr.KindHP, smr.KindRCU}
}

// Figure7 regenerates the retired-node memory-consumption experiment:
// the read/write workload with one reader stalling s milliseconds
// inside a lookup, measuring peak retired-but-unreclaimed bytes.
func Figure7(o Options) *report.Table {
	o = o.Defaults()
	stalls := []time.Duration{0, 10 * time.Millisecond, 40 * time.Millisecond, 150 * time.Millisecond}
	if o.Quick {
		stalls = []time.Duration{0, 30 * time.Millisecond}
	}
	// The run must comfortably contain the stall.
	dur := o.Duration
	if min := 2 * stalls[len(stalls)-1]; dur < min {
		dur = min
	}
	board := o.newBoard()
	defer board.Stop()
	t := report.NewTable(
		fmt.Sprintf("Figure 7 — peak retired-node memory vs reader stall (L=4, %d threads, %v/cell)", o.Threads, dur),
		"stall", "scheme", "peak waste", "vs FFHP")
	for _, stall := range stalls {
		var ffhp float64
		for _, kind := range Figure7Schemes() {
			if o.interrupted() {
				break
			}
			peaks := make([]float64, 0, o.Runs)
			for run := 0; run < o.Runs; run++ {
				res := runTable(tableConfig{
					kind: kind, mix: workload.ReadWrite, chainLen: 4,
					threads: o.Threads, buckets: o.Buckets,
					duration: dur, deltaHW: o.DeltaHW, board: board,
					stall: stall, sampleWaste: true,
					// R scaled with the run length (the paper's 32000
					// pairs with 10 s runs) so reclamation exercises.
					r:       2048,
					metrics: o.Metrics,
				})
				peaks = append(peaks, float64(res.PeakWaste))
			}
			med := stats.Median(peaks)
			if kind == smr.KindFFHP {
				ffhp = med
			}
			rel := "1.00"
			if ffhp > 0 {
				rel = fmt.Sprintf("%.2f", med/ffhp)
			}
			t.AddRow(stall, string(kind), stats.FormatBytes(uint64(med)), rel)
		}
	}
	t.AddNote("paper: FFHP ≤ +7%% over HP; RCU +40%% at zero stall, growing to 2–6× FFHP at max stall")
	return o.markInterrupted(t)
}
