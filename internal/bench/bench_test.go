package bench

import (
	"strings"
	"testing"
	"time"

	"tbtso/internal/quiesce"
	"tbtso/internal/report"
	"tbtso/internal/smr"
	"tbtso/internal/workload"
)

// tinyOptions keeps harness self-tests fast.
func tinyOptions() Options {
	return Options{
		Duration: 25 * time.Millisecond,
		Threads:  3,
		Buckets:  64,
		Runs:     1,
		Quick:    true,
	}.Defaults()
}

func render(t *testing.T, tbl interface {
	Rows() [][]string
}) [][]string {
	t.Helper()
	rows := tbl.Rows()
	if len(rows) == 0 {
		t.Fatal("empty table")
	}
	return rows
}

func TestFigure4Table(t *testing.T) {
	tbl := Figure4(tinyOptions())
	rows := render(t, tbl)
	if len(rows) != 9 {
		t.Fatalf("figure 4 has %d rows, want 9 thread counts", len(rows))
	}
}

func TestFigure5Table(t *testing.T) {
	tbl := Figure5(tinyOptions())
	rows := render(t, tbl)
	if len(rows) != 6 { // 3 placements × 2 loads
		t.Fatalf("figure 5 has %d rows, want 6", len(rows))
	}
}

func TestFigure5CDFExport(t *testing.T) {
	pts := Figure5CDF(quiesce.PlacementSameSocket, quiesce.LoadIdle, 50_000)
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
}

func TestRunTableCellCleanAndCounts(t *testing.T) {
	o := tinyOptions()
	board := o.newBoard()
	defer board.Stop()
	for _, kind := range []smr.Kind{smr.KindFFHP, smr.KindHP, smr.KindRCU} {
		res := runTable(tableConfig{
			kind: kind, mix: workload.ReadWrite, chainLen: 4,
			threads: o.Threads, buckets: o.Buckets,
			duration: o.Duration, deltaHW: o.DeltaHW, board: board,
			r: 512,
		})
		if res.Violations != 0 {
			t.Fatalf("%v: %d arena violations", kind, res.Violations)
		}
		if res.ReaderRate <= 0 {
			t.Fatalf("%v: no reader throughput", kind)
		}
		if res.UpdaterRate <= 0 {
			t.Fatalf("%v: no updater throughput (read-write mix must have an updater)", kind)
		}
	}
}

func TestFigure7ProducesWaste(t *testing.T) {
	o := tinyOptions()
	board := o.newBoard()
	defer board.Stop()
	res := runTable(tableConfig{
		kind: smr.KindRCU, mix: workload.ReadWrite, chainLen: 4,
		threads: o.Threads, buckets: o.Buckets,
		duration: 60 * time.Millisecond, deltaHW: o.DeltaHW, board: board,
		stall: 20 * time.Millisecond, sampleWaste: true, r: 256,
	})
	if res.PeakWaste == 0 {
		t.Fatal("stalled RCU run recorded zero peak waste")
	}
}

func TestRunLockPatternCounts(t *testing.T) {
	o := tinyOptions()
	locks, names, cleanup := Figure8Locks(o)
	defer cleanup()
	if len(locks) != 7 || len(names) != 7 {
		t.Fatalf("lineup has %d locks", len(locks))
	}
	pat := workload.LockPattern{Name: "t", OwnerMean: time.Microsecond, OtherMean: 50 * time.Microsecond}
	for i, mk := range locks {
		res := runLockPattern(mk, pat, 30*time.Millisecond, nil)
		if res.OwnerRate <= 0 || res.OtherRate <= 0 {
			t.Fatalf("%s: owner %v other %v", names[i], res.OwnerRate, res.OtherRate)
		}
	}
}

func TestBailoutTable(t *testing.T) {
	tbl := Bailout(tinyOptions())
	rows := render(t, tbl)
	if len(rows) != 6 {
		t.Fatalf("bailout table has %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r[len(r)-1] != "true" {
			t.Fatalf("a placement exceeded the Δ budget: %v", r)
		}
	}
}

func TestFigure6ScalingTable(t *testing.T) {
	o := tinyOptions()
	o.Duration = 10 * time.Millisecond
	tbl := Figure6Scaling(o)
	rows := render(t, tbl)
	if len(rows)%3 != 0 || len(rows) == 0 {
		t.Fatalf("scaling table has %d rows, want a multiple of 3 schemes", len(rows))
	}
}

func TestMachineCostTable(t *testing.T) {
	tbl := MachineCost(tinyOptions())
	rows := render(t, tbl)
	if len(rows) != 6 { // 2 chain lengths × 3 modes
		t.Fatalf("machine cost table has %d rows", len(rows))
	}
	// HP rows must report fences; the others must not.
	for _, r := range rows {
		isHP := r[1] == "HP"
		hasFences := r[3] != "0"
		if isHP != hasFences {
			t.Fatalf("fence attribution wrong in row %v", r)
		}
	}
}

func TestRWLockTable(t *testing.T) {
	o := tinyOptions()
	o.Duration = 10 * time.Millisecond
	tbl := RWLock(o)
	rows := render(t, tbl)
	if len(rows) != 6 { // 2 writer rates × 3 locks
		t.Fatalf("rwlock table has %d rows", len(rows))
	}
}

func TestSizingResultSane(t *testing.T) {
	// The tiny duration can elapse before the workers retire anything
	// when the scheduler is slow (race detector, loaded CI box); grow
	// the window instead of flaking.
	o := tinyOptions()
	var res SizingResult
	for try := 0; ; try++ {
		var tbl *report.Table
		tbl, res = Sizing(o)
		render(t, tbl)
		if res.RetireRatePerMsPerThread > 0 || try == 3 {
			break
		}
		o.Duration *= 4
	}
	if res.RetireRatePerMsPerThread <= 0 {
		t.Fatal("no retirement measured")
	}
	if res.SuggestedR <= 0 {
		t.Fatal("no suggested R")
	}
}

func TestFigure6TableShape(t *testing.T) {
	o := tinyOptions()
	o.Duration = 15 * time.Millisecond
	tbl := Figure6(o)
	rows := render(t, tbl)
	want := 2 * 2 * len(Figure6Schemes()) // mixes × chains × schemes
	if len(rows) != want {
		t.Fatalf("figure 6 has %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		for _, c := range r {
			if strings.Contains(c, "VIOLATIONS") {
				t.Fatalf("figure 6 row reports violations: %v", r)
			}
		}
	}
}
