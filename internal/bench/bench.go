// Package bench is the experiment harness: one entry point per figure
// of the paper's evaluation, shared by the tbtso-bench CLI and the
// testing.B benchmarks at the repository root. Each function runs the
// experiment and returns a report.Table whose rows mirror the series
// the paper plots. EXPERIMENTS.md records the paper-vs-measured
// comparison for every figure.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"tbtso/internal/machalg"
	"tbtso/internal/obs"
	"tbtso/internal/ostick"
	"tbtso/internal/quiesce"
	"tbtso/internal/report"
	"tbtso/internal/stats"
	"tbtso/internal/vclock"
)

// Options sizes the experiments. Zero values select defaults; Quick
// shrinks everything for CI-scale runs.
type Options struct {
	// Duration is the measurement time per cell (paper: 10 s runs).
	Duration time.Duration
	// Threads is the maximum worker count (paper: 80 hardware threads).
	Threads int
	// Buckets is the hash-table bucket count (paper: 1024).
	Buckets int
	// Runs is how many repetitions to take the median of (paper: 10).
	Runs int
	// DeltaHW is the TBTSO hardware bound (paper: 0.5 ms).
	DeltaHW time.Duration
	// TickPeriod is the adapted variant's timer period (paper: 4 ms).
	TickPeriod time.Duration
	// Quick selects CI-scale sizes.
	Quick bool
	// MCMaxStates bounds each model-checker exploration in the
	// `-figure mc` table (0 = mc.DefaultMaxStates). Deliberately low
	// budgets truncate rows instead of aborting the table: the typed
	// *mc.TruncatedError carries the partial result, which is rendered
	// with a "(truncated)" marker.
	MCMaxStates int
	// Metrics, if non-nil, receives each run's counters and
	// distributions: the quiescence model's histograms, SMR scheme
	// counters ("smr.<name>.*") and biased-lock counters
	// ("lock.<name>.*"). Totals accumulate across cells.
	Metrics *obs.Registry
	// Context, when non-nil, cancels the figure mid-flight: drivers
	// check it between cells and return the partial table (completed
	// rows only, marked with an INTERRUPTED note) instead of running
	// to completion. nil means run to completion.
	Context context.Context
}

// interrupted reports whether the figure's context has been cancelled.
// Drivers call it at cell boundaries — a cell in flight always
// finishes, so every emitted row is a real measurement.
func (o Options) interrupted() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// markInterrupted stamps a partially-built table when the figure was
// cut short, so a truncated document can never be mistaken for a
// complete baseline.
func (o Options) markInterrupted(t *report.Table) *report.Table {
	if o.interrupted() {
		t.Interrupted = true
		t.AddNote("INTERRUPTED — figure cancelled mid-flight; rows below the last completed cell are missing")
	}
	return t
}

// Defaults fills zero fields.
func (o Options) Defaults() Options {
	if o.Duration == 0 {
		o.Duration = 400 * time.Millisecond
		if o.Quick {
			o.Duration = 80 * time.Millisecond
		}
	}
	if o.Threads == 0 {
		// At least 4 workers so the ReadWrite mix has its ¾/¼ split
		// even on small machines; Go multiplexes them onto the
		// available cores.
		o.Threads = runtime.GOMAXPROCS(0)
		if o.Threads < 4 {
			o.Threads = 4
		}
	}
	if o.Buckets == 0 {
		o.Buckets = 1024
		if o.Quick {
			o.Buckets = 128
		}
	}
	if o.Runs == 0 {
		o.Runs = 3
		if o.Quick {
			o.Runs = 1
		}
	}
	if o.DeltaHW == 0 {
		o.DeltaHW = vclock.HardwareDelta
	}
	if o.TickPeriod == 0 {
		o.TickPeriod = vclock.AdaptedDelta
	}
	return o
}

// newBoard starts a §6.2 time board for the adapted variants.
func (o Options) newBoard() *ostick.Board {
	return ostick.NewBoard(o.Threads, o.TickPeriod)
}

// Figure4 regenerates the quiescence-latency experiment: average time
// for a thread to force system-wide quiescence as the number of
// concurrently quiescing threads grows, against the cost of a normal
// atomic operation.
func Figure4(o Options) *report.Table {
	o = o.Defaults()
	p := quiesce.DefaultParams()
	p.Metrics = o.Metrics
	t := report.NewTable(
		"Figure 4 — time to reach system-wide quiescence vs quiescing threads (timing model)",
		"threads", "quiesce avg", "quiesce max", "normal atomic", "slowdown")
	counts := []int{1, 2, 4, 8, 16, 32, 48, 64, 80}
	rounds := 400
	if o.Quick {
		rounds = 100
	}
	for _, n := range counts {
		if o.interrupted() {
			break
		}
		pt := quiesce.QuiescenceLatency(p, n, rounds)
		t.AddRow(n, pt.QuiesceAvg, pt.QuiesceMax, pt.NormalAvg, fmt.Sprintf("%.0f×", pt.SlowdownVsN))
	}
	t.AddNote("paper: ≈5 µs per quiescer, ≈600× a normal op, near-linear growth to ≈400 µs at 80 threads")
	return o.markInterrupted(t)
}

// Figure5 regenerates the store-buffering-time CDF by thread placement
// and background load.
func Figure5(o Options) *report.Table {
	o = o.Defaults()
	p := quiesce.DefaultParams()
	p.Metrics = o.Metrics
	samples := 2_000_000
	if o.Quick {
		samples = 200_000
	}
	t := report.NewTable(
		"Figure 5 — store-buffering time distribution by placement (timing model)",
		"placement", "load", "p50", "p99", "p99.9", "max")
	for _, pl := range []quiesce.Placement{quiesce.PlacementSMT, quiesce.PlacementSameSocket, quiesce.PlacementCrossSocket} {
		for _, load := range []quiesce.Load{quiesce.LoadIdle, quiesce.LoadStream} {
			if o.interrupted() {
				break
			}
			h := quiesce.StoreVisibilityCDF(p, pl, load, samples)
			t.AddRow(pl, load,
				time.Duration(h.Quantile(0.5)),
				time.Duration(h.Quantile(0.99)),
				time.Duration(h.Quantile(0.999)),
				time.Duration(h.Max()))
		}
	}
	t.AddNote("paper: 99.9%% of stores visible within 10 µs across all placements")
	t.AddNote("Δ estimate from model: %v for 80 hw threads; τ ≈ %v",
		quiesce.EstimateDelta(p, 80), quiesce.EstimateTimeout(p))
	return o.markInterrupted(t)
}

// Figure5CDF returns the raw CDF points for one placement/load pair
// (for CSV export / plotting).
func Figure5CDF(pl quiesce.Placement, load quiesce.Load, samples int) []stats.CDFPoint {
	return quiesce.StoreVisibilityCDF(quiesce.DefaultParams(), pl, load, samples).CDF()
}

// MachineCost reports the abstract-machine fast-path cost comparison:
// lookup ticks/op under no-protection (the RCU-like yardstick), FFHP,
// and fenced HP, over short and long chains. On the machine a
// hazard-pointer publication is a plain one-tick store, so this is the
// side of the "FFHP ≈ RCU" comparison Go's serializing atomics cannot
// measure (EXPERIMENTS.md, caveat C2).
func MachineCost(o Options) *report.Table {
	o = o.Defaults()
	lookups := 400
	if o.Quick {
		lookups = 120
	}
	t := report.NewTable(
		fmt.Sprintf("Machine cost model — list lookup ticks/op (unit-cost abstract machine, %d lookups)", lookups),
		"L", "mode", "ticks/op", "fences", "hp stores")
	for _, listLen := range []int{4, 32} {
		for _, mode := range []machalg.HPMode{machalg.HPNone, machalg.HPFenceFree, machalg.HPFenced} {
			if o.interrupted() {
				break
			}
			r := machalg.LookupCost(mode, listLen, lookups, 1)
			t.AddRow(listLen, mode, fmt.Sprintf("%.1f", r.TicksPerOp), r.Fences, r.Stores)
		}
	}
	t.AddNote("validation loads cost a full tick here but are near-free cache hits on hardware; the machine therefore UNDERSTATES FFHP's advantage, while native Go overstates publication cost — the two bracket the paper's result")
	return o.markInterrupted(t)
}

// Bailout validates the §6.1 hardware design end to end in the timing
// model: with the τ timeout and quiescence bail-out active, store
// visibility is bounded within the promised Δ while the timeout fires
// rarely. (Not a paper figure — it is the design §6.1 argues for,
// simulated.)
func Bailout(o Options) *report.Table {
	o = o.Defaults()
	p := quiesce.DefaultParams()
	p.Metrics = o.Metrics
	tau := quiesce.EstimateTimeout(p)
	samples := 2_000_000
	if o.Quick {
		samples = 300_000
	}
	t := report.NewTable(
		fmt.Sprintf("§6.1 design — store visibility with τ=%v bail-out (timing model, 80 hw threads)", tau),
		"placement", "load", "bailout rate", "p99.9", "max visible", "Δ budget", "within Δ")
	for _, pl := range []quiesce.Placement{quiesce.PlacementSMT, quiesce.PlacementSameSocket, quiesce.PlacementCrossSocket} {
		for _, load := range []quiesce.Load{quiesce.LoadIdle, quiesce.LoadStream} {
			if o.interrupted() {
				break
			}
			r := quiesce.WithBailout(p, pl, load, samples, tau, 80, 80)
			t.AddRow(pl, load, fmt.Sprintf("%.5f%%", r.BailoutRate*100),
				r.P999, r.MaxVisible, r.DeltaBudget, r.WithinBudget)
		}
	}
	t.AddNote("the unbounded tail of Figure 5 is clipped to τ + quiescence cost — the store buffering time bound TBTSO needs")
	return o.markInterrupted(t)
}
