package bench

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"tbtso/internal/machalg"
	"tbtso/internal/mc"
	"tbtso/internal/report"
)

// mcProgram is one explorer workload: a litmus-style program and the
// drain bounds it is explored at.
type mcProgram struct {
	name   string
	p      mc.Program
	deltas []int
}

func mcRing(n int) mc.Program {
	var th [][]mc.Op
	for i := 0; i < n; i++ {
		th = append(th, []mc.Op{mc.St(i, 1), mc.St(i, 2), mc.Ld((i+1)%n, 0), mc.Ld((i+n-1)%n, 1)})
	}
	return mc.Program{Threads: th, Vars: n, Regs: 2}
}

func mcPrograms(quick bool) []mcProgram {
	sb := mc.Program{
		Threads: [][]mc.Op{
			{mc.St(0, 1), mc.Ld(1, 0)},
			{mc.St(1, 1), mc.Ld(0, 0)},
		},
		Vars: 2, Regs: 1,
	}
	iriw := mc.Program{
		Threads: [][]mc.Op{
			{mc.St(0, 1), mc.St(0, 2)},
			{mc.St(1, 1), mc.St(1, 2)},
			{mc.Ld(0, 0), mc.Ld(1, 1)},
			{mc.Ld(1, 0), mc.Ld(0, 1)},
		},
		Vars: 2, Regs: 2,
	}
	ps := []mcProgram{
		{"SB", sb, []int{0, 2, 4}},
		{"IRIW", iriw, []int{0, 2, 4}},
		{"FFBL(2)", machalg.MCFFBL(2, 3), []int{2}},
	}
	if !quick {
		// The ≥1e5-state scale row the perf acceptance tracks: the
		// reference explorer needs seconds here.
		ps = append(ps, mcProgram{"Ring4", mcRing(4), []int{0, 2}})
	}
	return ps
}

// MCExplorer benchmarks the model checker's two engines — the
// sequential reference and the parallel work-stealing explorer (with
// and without reductions) — over litmus-scale and 1e5-state-scale
// programs. The speedup column is sequential time over engine time for
// the same (program, Δ) cell; `tbtso-bench -figure mc -json` emits the
// table as the BENCH_mc.json perf baseline.
func MCExplorer(o Options) *report.Table {
	o = o.Defaults()
	maxStates := o.MCMaxStates
	if maxStates <= 0 {
		maxStates = mc.DefaultMaxStates
	}
	t := report.NewTable("Model checker: explorer engines (states, time, speedup)",
		"program", "Δ", "engine", "states", "outcomes", "time", "states/s", "speedup")
	t.AddNote("workers=%d (GOMAXPROCS); sequential = pre-parallel reference explorer", runtime.GOMAXPROCS(0))
	t.AddNote("parallel = compact encoding + sharded visited set + POR + symmetry; nopor = reductions disabled")
	if maxStates != mc.DefaultMaxStates {
		t.AddNote("state budget %d per exploration; (truncated) rows show the partial result — outcome absence proves nothing there", maxStates)
	}

	run := func(name string, p mc.Program, delta int) {
		type cell struct {
			res mc.Result
			el  time.Duration
		}
		// A deliberately low MaxStates must not abort the table: every
		// engine returns its partial Result alongside the typed
		// *mc.TruncatedError, so a truncated cell still renders its
		// states/outcomes/time — only marked, and with no speedup claim
		// (a truncated exploration did less work than a complete one).
		seqStart := time.Now()
		seqRes, seqErr := mc.ExploreSequentialBounded(p, delta, maxStates)
		seq := cell{seqRes, time.Since(seqStart)}

		engines := []struct {
			label string
			opts  mc.Options
		}{
			{"parallel", mc.Options{MaxStates: maxStates}},
			{"parallel-nopor", mc.Options{MaxStates: maxStates, NoReduction: true, NoSymmetry: true}},
		}
		emitRow := func(label string, c cell, truncated bool, speedup string) {
			if truncated {
				label += "(truncated)"
				speedup = "-"
			}
			persec := float64(c.res.States) / c.el.Seconds()
			t.AddRow(name, delta, label, c.res.States, len(c.res.Outcomes),
				c.el.Round(time.Microsecond).String(), fmt.Sprintf("%.0f", persec), speedup)
		}
		emitRow("sequential", seq, seqErr != nil, "1.0x")
		for _, e := range engines {
			start := time.Now()
			res, err := mc.ExploreParallel(p, delta, e.opts)
			el := time.Since(start)
			if err != nil {
				// Recover the partial result from the typed error; the
				// row renders what was explored instead of a dash row.
				var te *mc.TruncatedError
				if !errors.As(err, &te) {
					t.AddRow(name, delta, e.label, "error", "-", el.Round(time.Microsecond).String(), "-", "-")
					continue
				}
				emitRow(e.label, cell{te.Partial, el}, true, "-")
				continue
			}
			speedup := "-" // no claim against a truncated (partial-work) baseline
			if seqErr == nil {
				speedup = fmt.Sprintf("%.1fx", float64(seq.el)/float64(el))
			}
			emitRow(e.label, cell{res, el}, false, speedup)
		}
	}

	for _, mp := range mcPrograms(o.Quick) {
		for _, d := range mp.deltas {
			if o.interrupted() {
				break
			}
			run(mp.name, mp.p, d)
		}
	}
	return o.markInterrupted(t)
}
