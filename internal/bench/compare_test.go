package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"tbtso/internal/report"
)

func compareFixture() *FigureDoc {
	t := report.NewTable("Model checker: explorer engines (states, time, speedup)",
		"program", "Δ", "engine", "states", "outcomes", "time", "states/s", "speedup")
	t.AddRow("SB", "0", "sequential", "34", "4", "270µs", "126036", "1.0x")
	t.AddRow("SB", "0", "parallel", "32", "4", "92µs", "349059", "2.9x")
	t.AddRow("MP", "2", "sequential", "64", "3", "373µs", "171569", "1.0x")
	return &FigureDoc{Figures: []*report.Table{t}}
}

// reparse round-trips a doc through JSON, mimicking the real read path
// (and proving report.Table.UnmarshalJSON works).
func reparse(t *testing.T, doc *FigureDoc) *FigureDoc {
	t.Helper()
	var buf bytes.Buffer
	for i, tb := range doc.Figures {
		if i == 0 {
			buf.WriteString(`{"figures":[`)
		} else {
			buf.WriteString(",")
		}
		b, err := tb.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	buf.WriteString("]}")
	out, err := ReadFigureDoc(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompareSelfIsClean(t *testing.T) {
	doc := reparse(t, compareFixture())
	regs, err := Compare(doc, doc, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-compare flagged: %v", regs)
	}
}

func TestCompareCommittedBaselineAgainstItself(t *testing.T) {
	f, err := os.Open("../../BENCH_mc.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	defer f.Close()
	doc, err := ReadFigureDoc(f)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := Compare(doc, doc, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("BENCH_mc.json vs itself flagged: %v", regs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := reparse(t, compareFixture())

	doctor := func(mutate func(*report.Table)) *FigureDoc {
		cand := reparse(t, compareFixture())
		mutate(cand.Figures[0])
		return reparse(t, cand)
	}
	setCell := func(tb *report.Table, row, col int, v string) {
		tb.Rows()[row][col] = v
	}

	cases := []struct {
		name   string
		cand   *FigureDoc
		column string
		detail string
	}{
		{"time blowup", doctor(func(tb *report.Table) { setCell(tb, 0, 5, "2ms") }), "time", "time regressed"},
		{"states blowup", doctor(func(tb *report.Table) { setCell(tb, 1, 3, "480") }), "states", "states regressed"},
		{"outcomes changed", doctor(func(tb *report.Table) { setCell(tb, 2, 4, "4") }), "outcomes", "correctness"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs, err := Compare(base, tc.cand, CompareOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(regs) != 1 {
				t.Fatalf("got %d regressions: %v", len(regs), regs)
			}
			if regs[0].Column != tc.column || !strings.Contains(regs[0].Detail, tc.detail) {
				t.Fatalf("wrong regression: %+v", regs[0])
			}
		})
	}

	// Within-threshold drift must NOT be flagged.
	okDrift := doctor(func(tb *report.Table) {
		setCell(tb, 0, 5, "400µs") // 1.48x < 2x
		setCell(tb, 1, 3, "40")    // 1.25x < 1.5x
	})
	if regs, err := Compare(base, okDrift, CompareOptions{}); err != nil || len(regs) != 0 {
		t.Fatalf("within-threshold drift flagged: %v (err %v)", regs, err)
	}

	// Missing row and missing figure are structural regressions.
	missingRow := &FigureDoc{Figures: []*report.Table{
		report.NewTable(base.Figures[0].Title, base.Figures[0].Headers...),
	}}
	if regs, err := Compare(base, reparse(t, missingRow), CompareOptions{}); err != nil || len(regs) != 3 {
		t.Fatalf("missing rows: got %v (err %v)", regs, err)
	}
	empty := &FigureDoc{Figures: []*report.Table{report.NewTable("other figure", "a")}}
	regs, err := Compare(base, reparse(t, empty), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0].Detail, "figure missing") {
		t.Fatalf("missing figure: got %v", regs)
	}
}

// TestCompareRefusesInterrupted: a document stamped interrupted — by
// the machine-readable flag or the legacy footnote — cannot be compared
// in either position; its missing rows would masquerade as regressions.
func TestCompareRefusesInterrupted(t *testing.T) {
	base := reparse(t, compareFixture())

	cut := compareFixture()
	cut.Figures[0].Interrupted = true
	cut.Figures[0].Rows()[2] = nil // simulate missing tail; irrelevant to the refusal
	cand := reparse(t, cut)
	if !cand.Figures[0].Interrupted {
		t.Fatal("interrupted flag lost in the JSON round trip")
	}
	if _, err := Compare(base, cand, CompareOptions{}); err == nil || !strings.Contains(err.Error(), "partial") {
		t.Fatalf("interrupted candidate accepted (err %v)", err)
	}
	if _, err := Compare(cand, base, CompareOptions{}); err == nil || !strings.Contains(err.Error(), "partial") {
		t.Fatalf("interrupted baseline accepted (err %v)", err)
	}

	// Legacy documents carry only the footnote, no flag.
	legacy := compareFixture()
	legacy.Figures[0].AddNote("INTERRUPTED — figure cancelled mid-flight")
	if _, err := Compare(base, reparse(t, legacy), CompareOptions{}); err == nil {
		t.Fatal("legacy INTERRUPTED-note candidate accepted")
	}
}

func TestCompareTruncatedCellsNotFlagged(t *testing.T) {
	base := reparse(t, compareFixture())
	cand := reparse(t, compareFixture())
	cand.Figures[0].Rows()[0][3] = "(truncated)"
	cand.Figures[0].Rows()[0][5] = "-"
	if regs, err := Compare(base, reparse(t, cand), CompareOptions{}); err != nil || len(regs) != 0 {
		t.Fatalf("unparseable cells flagged: %v (err %v)", regs, err)
	}
}
