package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tbtso/internal/arena"
	"tbtso/internal/list"
	"tbtso/internal/report"
	"tbtso/internal/smr"
	"tbtso/internal/workload"
)

// SizingResult captures the §4.2.1 measurements.
type SizingResult struct {
	RetireRatePerMsPerThread float64
	SuggestedR               int // rate × Δ × 2, the paper's sizing rule
	AvgFreedPerReclaim       float64
	ReclaimYieldBound        float64 // (1−1/c)·R − H with c = R/Δ-rate
}

// Sizing measures the retirement rate of an update-heavy list workload
// and derives the R the paper's rule suggests (§4.2.1: a maximal rate
// of 1300 nodes/ms/thread with Δ = 10 ms gives R = 26000), then
// verifies reclaim yield against the analytical bound.
func Sizing(o Options) (*report.Table, SizingResult) {
	o = o.Defaults()
	threads := o.Threads
	universe := uint64(512)
	h := threads * list.NumSlots
	r := harnessR
	capacity := int(universe) + threads*(r+16) + 1024
	ar := arena.New(capacity, threads+1)
	scheme := smr.NewFFHP(smr.Config{
		Threads: threads, K: list.NumSlots, R: r, Arena: ar, Delta: o.DeltaHW,
	})
	defer scheme.Close()
	l := list.New(ar, scheme, 0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer scheme.Flush(tid)
			lo, hi := workload.Partition(universe, tid, threads)
			for !stop.Load() {
				for k := lo; k < hi && !stop.Load(); k++ {
					scheme.OpBegin(tid, 0)
					if _, err := l.Insert(tid, k); err != nil {
						scheme.OpEnd(tid)
						return
					}
					scheme.OpEnd(tid)
				}
				for k := lo; k < hi && !stop.Load(); k++ {
					scheme.OpBegin(tid, 0)
					l.Delete(tid, k)
					scheme.OpEnd(tid)
				}
			}
		}(tid)
	}
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()

	retired := float64(ar.Frees()) + float64(scheme.Unreclaimed())
	ms := o.Duration.Seconds() * 1e3
	rate := retired / ms / float64(threads)

	var scans, frees uint64
	for tid := 0; tid < threads; tid++ {
		s, _, f := scheme.Scans(tid)
		scans += s
		frees += f
	}
	avgFreed := 0.0
	if scans > 0 {
		avgFreed = float64(frees) / float64(scans)
	}

	deltaMs := o.DeltaHW.Seconds() * 1e3
	suggested := int(rate*deltaMs*2 + 0.5)
	c := float64(r) / (rate*deltaMs + 1)
	bound := 0.0
	if c > 1 {
		bound = (1-1/c)*float64(r) - float64(h)
	}

	res := SizingResult{
		RetireRatePerMsPerThread: rate,
		SuggestedR:               suggested,
		AvgFreedPerReclaim:       avgFreed,
		ReclaimYieldBound:        bound,
	}
	t := report.NewTable(
		fmt.Sprintf("§4.2.1 sizing — update-heavy list churn (%d threads, Δ=%v, R=%d)", threads, o.DeltaHW, r),
		"metric", "value")
	t.AddRow("retire rate (nodes/ms/thread)", fmt.Sprintf("%.1f", rate))
	t.AddRow("suggested R = rate×Δ×2", suggested)
	t.AddRow("avg nodes freed per reclaim()", fmt.Sprintf("%.1f", avgFreed))
	t.AddRow("analytical yield bound (1−1/c)R−H", fmt.Sprintf("%.1f", bound))
	t.AddNote("paper: 1300 nodes/ms/thread on 80 hw threads; R = 1300×10×2 = 26000 (≈2 MB) guarantees reclaim frees ≥ R/2")
	return t, res
}
