package bench

import (
	"fmt"
	"time"

	"tbtso/internal/fuzz"
	"tbtso/internal/mc"
	"tbtso/internal/report"
	"tbtso/internal/tso"
)

// simCorpus is the workload the engine rows are measured on: a
// deterministic slice of the fuzz generator's program distribution
// (the same litmus-scale shapes campaigns sample), so the figure's
// throughput is the throughput campaigns actually see.
func simCorpus(n int) []mc.Program {
	ps := make([]mc.Program, n)
	for i := range ps {
		ps[i] = fuzz.Gen(fuzz.GenConfig{}, int64(i+1))
	}
	return ps
}

// simActions is the machine-action count of one run — loads, stores,
// RMWs, fences and clock reads actually granted — taken from the run's
// Stats, so ops/s measures scheduler grants, not source-program length
// (wait loops expand to many clock reads).
func simActions(s tso.Stats) uint64 {
	return s.Loads + s.Stores + s.RMWs + s.Fences + s.ClockReads
}

// Sim benchmarks the clocked machine's two execution engines — the
// direct-execution interpreter (tso.ExecProgram: no goroutines, no
// channels, zero steady-state allocation) and the goroutine engine
// (Thread handles over channels) — plus the parallel campaign driver's
// worker scaling. Engine rows are byte-identical in outcome by the
// engine-equivalence suite; here only the clock differs. The speedup
// column is goroutine-engine time over engine time for the same cell
// (campaign rows: workers=1 time over the row's time);
// `tbtso-bench -figure sim -json` emits the table as the BENCH_sim.json
// perf baseline.
func Sim(o Options) *report.Table {
	o = o.Defaults()
	corpusN, repeats, campaignN := 60, 60, 48
	if o.Quick {
		corpusN, repeats, campaignN = 24, 15, 12
	}

	t := report.NewTable("Simulator: machine execution engines (ops/s, runs/s, speedup)",
		"workload", "Δ", "policy", "engine", "runs", "ops/s", "runs/s", "time", "speedup")
	t.AddNote("corpus = %d fuzz.Gen programs × %d scheduler seeds per cell; ops = granted machine actions (loads+stores+RMWs+fences+clock reads)", corpusN, repeats)
	t.AddNote("direct = in-loop interpreter on one reused machine; goroutine = one OS-scheduled goroutine per thread, channel handshake per action")
	t.AddNote("campaign rows: full differential sweep (checker + machine) sharded across workers; report is worker-count independent")

	corpus := simCorpus(corpusN)
	workload := fmt.Sprintf("gen(%d)", corpusN)

	type cellKey struct {
		delta  uint64
		policy tso.DrainPolicy
	}
	cells := []cellKey{
		{0, tso.DrainEager},
		{4, tso.DrainRandom},
		{4, tso.DrainAdversarial},
	}
	for _, c := range cells {
		if o.interrupted() {
			break
		}
		// Goroutine engine first: it is the yardstick the direct rows'
		// speedup is measured against.
		var gOps, gRuns uint64
		gStart := time.Now()
		for r := 0; r < repeats; r++ {
			for pi, p := range corpus {
				run := fuzz.MachineRun{Delta: c.delta, Policy: c.policy, Seed: int64(r*1000 + pi)}
				_, res, err := fuzz.RunOnMachineGoroutine(p, run)
				if err != nil {
					t.AddRow(workload, c.delta, c.policy, "goroutine", "error", "-", "-", err.Error(), "-")
					continue
				}
				gOps += simActions(res.Stats)
				gRuns++
			}
		}
		gTime := time.Since(gStart)

		var iOps, iRuns uint64
		s := fuzz.NewSampler()
		iStart := time.Now()
		for r := 0; r < repeats; r++ {
			for pi, p := range corpus {
				run := fuzz.MachineRun{Delta: c.delta, Policy: c.policy, Seed: int64(r*1000 + pi)}
				_, res, err := s.Sample(p, run)
				if err != nil {
					t.AddRow(workload, c.delta, c.policy, "direct", "error", "-", "-", err.Error(), "-")
					continue
				}
				iOps += simActions(res.Stats)
				iRuns++
			}
		}
		iTime := time.Since(iStart)

		emit := func(engine string, ops, runs uint64, el time.Duration, speedup string) {
			t.AddRow(workload, c.delta, c.policy, engine, runs,
				fmt.Sprintf("%.0f", float64(ops)/el.Seconds()),
				fmt.Sprintf("%.0f", float64(runs)/el.Seconds()),
				el.Round(time.Microsecond).String(), speedup)
		}
		emit("goroutine", gOps, gRuns, gTime, "1.0x")
		emit("direct", iOps, iRuns, iTime, fmt.Sprintf("%.1fx", float64(gTime)/float64(iTime)))
	}

	// Campaign scaling: the same differential sweep fuzz campaigns run
	// (checker explorations + machine sampling), sharded across workers.
	// The worker list is fixed — not GOMAXPROCS-derived — so baseline
	// and candidate documents always have the same rows.
	var baseTime time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		if o.interrupted() {
			break
		}
		cfg := fuzz.Config{Workers: workers}
		start := time.Now()
		rep := fuzz.Run(cfg, campaignN, 1)
		el := time.Since(start)
		if workers == 1 {
			baseTime = el
		}
		t.AddRow("campaign", "0,1,3", "all", fmt.Sprintf("workers=%d", workers), rep.Runs,
			"-",
			fmt.Sprintf("%.0f", float64(rep.Runs)/el.Seconds()),
			el.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(baseTime)/float64(el)))
	}
	return o.markInterrupted(t)
}
