package fuzz

import (
	"testing"
)

// FuzzMachineVsChecker is the native-fuzzing entry to the differential
// driver: go's fuzzer mutates (seed, Δ-selector) pairs, each of which
// names a deterministic generated program and full sweep cell. Run via
// `make fuzz-smoke` (short budget) or
// `go test -fuzz=FuzzMachineVsChecker ./internal/fuzz` for a real
// campaign. Every crasher go keeps in testdata/fuzz is replayable by
// construction — the input IS the generator seed.
func FuzzMachineVsChecker(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed))
	}
	f.Add(int64(9137), uint8(0))
	f.Add(int64(-4), uint8(3))
	cfgFor := func(deltaSel uint8) Config {
		return Config{
			Gen:              GenConfig{MaxThreads: 3, MaxOps: 4, MaxTotalOps: 8},
			Deltas:           []int{int(deltaSel % 4)},
			MachSeeds:        2,
			MaxStates:        60_000,
			CrossCheckStates: 3_000,
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, deltaSel uint8) {
		cfg := cfgFor(deltaSel)
		p := Gen(cfg.Gen, seed)
		rep := CheckProgram(cfg, p, seed)
		for _, m := range rep.Mismatches {
			t.Errorf("%s\nprogram: %+v", m, m.Program)
		}
	})
}
