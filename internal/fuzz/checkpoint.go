package fuzz

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"tbtso/internal/obs"
	"tbtso/internal/obs/coverage"
)

// CheckpointKind is the artifact's "kind" field, following the
// self-identifying-JSON convention of the fuzz artifacts, the
// certificates, and the flight-recorder dumps.
const CheckpointKind = "fuzz-checkpoint"

// MismatchJSON is Mismatch in a stable wire form, so an interrupted
// campaign's not-yet-shrunk findings survive in the checkpoint's
// shrink queue.
type MismatchJSON struct {
	Kind     string      `json:"kind"`
	Seed     int64       `json:"seed"`
	Delta    int         `json:"delta"`
	Cover    int         `json:"cover,omitempty"`
	Policy   string      `json:"policy,omitempty"`
	MachSeed int64       `json:"mach_seed,omitempty"`
	Outcome  string      `json:"outcome,omitempty"`
	Detail   string      `json:"detail,omitempty"`
	Program  ProgramJSON `json:"program"`
}

// EncodeMismatch converts to the wire form. Engine-divergence
// mismatches carry no machine run; their Policy encodes as "".
func EncodeMismatch(m Mismatch) MismatchJSON {
	mj := MismatchJSON{
		Kind: m.Kind, Seed: m.Seed, Delta: m.Delta, Cover: m.Cover,
		MachSeed: m.MachSeed, Outcome: m.Outcome, Detail: m.Detail,
		Program: EncodeProgram(m.Program),
	}
	if m.Kind == KindSampledOutcome || m.Kind == KindMachineError {
		mj.Policy = m.Policy.String()
	}
	return mj
}

// DecodeMismatch converts back from the wire form.
func DecodeMismatch(mj MismatchJSON) (Mismatch, error) {
	p, err := DecodeProgram(mj.Program)
	if err != nil {
		return Mismatch{}, err
	}
	m := Mismatch{
		Kind: mj.Kind, Seed: mj.Seed, Delta: mj.Delta, Cover: mj.Cover,
		MachSeed: mj.MachSeed, Outcome: mj.Outcome, Detail: mj.Detail,
		Program: p,
	}
	if mj.Policy != "" {
		pol, err := ParsePolicy(mj.Policy)
		if err != nil {
			return Mismatch{}, err
		}
		m.Policy = pol
	}
	return m, nil
}

// Checkpoint is a resumable snapshot of a fuzz campaign. The contract:
// every seed in [FirstSeed, NextSeed) has been fully checked, its
// report folded into the totals, and its mismatches either shrunk (in
// the artifact/shrink-step totals) or queued verbatim in Pending.
// Nothing beyond NextSeed has contributed anything. Because program
// checks are deterministic per (config, seed) and reports merge in
// seed order, resuming from NextSeed reproduces the uninterrupted
// campaign's report byte-for-byte — provided the configuration matches,
// which ConfigHash guards.
type Checkpoint struct {
	Kind       string `json:"kind"`
	ConfigHash string `json:"config_hash"`
	N          int    `json:"n"`
	FirstSeed  int64  `json:"first_seed"`
	// NextSeed is the resume cursor: the first seed not yet folded in.
	NextSeed int64 `json:"next_seed"`

	// Folded totals for [FirstSeed, NextSeed).
	Programs    int      `json:"programs"`
	Runs        int      `json:"runs"`
	Truncated   int      `json:"truncated"`
	Mismatches  int      `json:"mismatches"`
	ShrinkSteps int      `json:"shrink_steps"`
	Artifacts   []string `json:"artifacts,omitempty"`

	// Coverage is the merged campaign coverage for [FirstSeed,
	// NextSeed). Because the snapshot is integer-only and merges in
	// seed order, a resumed campaign continues the counts
	// byte-identically to an uninterrupted run.
	Coverage *coverage.Snapshot `json:"coverage,omitempty"`

	// FlightEvents/FlightViolations are the sharded flight recorder's
	// running prefix totals (monitor.ShardedFlight.Totals), restored on
	// resume so the final campaign flight dump reports whole-campaign
	// totals. The retained event groups themselves are NOT persisted —
	// a resumed dump is byte-identical once the resumed segment spans
	// the retention window.
	FlightEvents     uint64 `json:"flight_events,omitempty"`
	FlightViolations uint64 `json:"flight_violations,omitempty"`

	// Pending is the shrink queue: mismatches from folded seeds whose
	// shrinking had not finished when the checkpoint was written, in
	// seed order. A resumed campaign drains it before generating new
	// programs.
	Pending []MismatchJSON `json:"pending,omitempty"`
}

// Done reports whether the campaign finished: every seed folded and
// the shrink queue drained.
func (ck *Checkpoint) Done() bool {
	return ck.NextSeed == ck.FirstSeed+int64(ck.N) && len(ck.Pending) == 0
}

// campaignKey is the canonical form hashed into ConfigHash: every
// parameter that influences the campaign report, and nothing else.
// Workers is deliberately absent (the report is worker-count
// invariant, so a campaign may resume with different parallelism), as
// are Metrics/Sinks (observers) and wall-clock budgets.
type campaignKey struct {
	Gen              GenConfig `json:"gen"`
	Deltas           []int     `json:"deltas"`
	Policies         []string  `json:"policies"`
	MachSeeds        int       `json:"mach_seeds"`
	MaxStates        int       `json:"max_states"`
	CrossCheckStates int       `json:"cross_check_states"`
	N                int       `json:"n"`
	FirstSeed        int64     `json:"first_seed"`
	ShrinkMax        int       `json:"shrink_max"`
}

// CampaignHash fingerprints everything that determines the campaign
// report: the defaulted generator and sweep configuration, the program
// budget and seed origin, and the shrink budget. Two invocations with
// equal hashes produce byte-identical reports; a resume is refused when
// the hashes differ.
func (c Config) CampaignHash(n int, firstSeed int64, shrinkMax int) string {
	c = c.orDefault()
	key := campaignKey{
		Gen:              c.Gen,
		Deltas:           c.Deltas,
		MachSeeds:        c.MachSeeds,
		MaxStates:        c.MaxStates,
		CrossCheckStates: c.CrossCheckStates,
		N:                n,
		FirstSeed:        firstSeed,
		ShrinkMax:        shrinkMax,
	}
	for _, p := range c.Policies {
		key.Policies = append(key.Policies, p.String())
	}
	blob, err := json.Marshal(key)
	if err != nil {
		// campaignKey is plain data; Marshal cannot fail on it.
		panic("fuzz: marshaling campaign key: " + err.Error())
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(blob))
}

// Validate checks a loaded checkpoint against the resuming campaign's
// configuration hash and internal consistency.
func (ck *Checkpoint) Validate(hash string) error {
	if ck.Kind != CheckpointKind {
		return fmt.Errorf("fuzz: checkpoint kind %q, want %q", ck.Kind, CheckpointKind)
	}
	if ck.ConfigHash != hash {
		return fmt.Errorf("fuzz: checkpoint was written by a different campaign configuration (checkpoint %s, resume %s); refusing to resume — the merged report would not match an uninterrupted run",
			ck.ConfigHash, hash)
	}
	if ck.NextSeed < ck.FirstSeed || ck.NextSeed > ck.FirstSeed+int64(ck.N) {
		return fmt.Errorf("fuzz: checkpoint cursor %d outside campaign seed range [%d, %d]",
			ck.NextSeed, ck.FirstSeed, ck.FirstSeed+int64(ck.N))
	}
	for i, mj := range ck.Pending {
		if _, err := DecodeMismatch(mj); err != nil {
			return fmt.Errorf("fuzz: checkpoint pending[%d]: %w", i, err)
		}
	}
	return nil
}

// WriteCheckpoint atomically persists the checkpoint (temp file +
// rename, so an interruption mid-write can never leave a torn
// checkpoint behind) and returns the byte size written.
func WriteCheckpoint(path string, ck *Checkpoint) (int, error) {
	blob, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return 0, err
	}
	blob = append(blob, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return len(blob), nil
}

// CheckpointWriteBuckets are the fuzz.campaign.checkpoint_write_ns
// histogram's bounds: ~1µs to ~4s, exponential.
func CheckpointWriteBuckets() []int64 { return obs.ExpBuckets(1024, 4, 12) }

// WriteCheckpointMetered is WriteCheckpoint plus write-amplification
// instrumentation into reg (nil skips it): counters
// fuzz.campaign.checkpoints_written and fuzz.campaign.checkpoint_bytes,
// and the fuzz.campaign.checkpoint_write_ns latency histogram — the
// data behind the ROADMAP "compact checkpoint encoding" decision.
func WriteCheckpointMetered(path string, ck *Checkpoint, reg *obs.Registry) (int, error) {
	start := time.Now()
	nb, err := WriteCheckpoint(path, ck)
	if err != nil || reg == nil {
		return nb, err
	}
	reg.Counter("fuzz.campaign.checkpoints_written").Add(1)
	reg.Counter("fuzz.campaign.checkpoint_bytes").Add(uint64(nb))
	reg.Histogram("fuzz.campaign.checkpoint_write_ns", CheckpointWriteBuckets()).Observe(time.Since(start).Nanoseconds())
	return nb, err
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint. It
// rejects documents of the wrong kind; configuration validation is the
// caller's job (Validate, with the resuming campaign's hash).
func ReadCheckpoint(path string) (*Checkpoint, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		return nil, fmt.Errorf("fuzz: parsing checkpoint %s: %w", path, err)
	}
	if ck.Kind != CheckpointKind {
		return nil, fmt.Errorf("fuzz: %s: artifact kind %q, want %q", path, ck.Kind, CheckpointKind)
	}
	return &ck, nil
}

// PendingMismatches decodes the checkpoint's shrink queue.
func (ck *Checkpoint) PendingMismatches() ([]Mismatch, error) {
	out := make([]Mismatch, 0, len(ck.Pending))
	for i, mj := range ck.Pending {
		m, err := DecodeMismatch(mj)
		if err != nil {
			return nil, fmt.Errorf("fuzz: checkpoint pending[%d]: %w", i, err)
		}
		out = append(out, m)
	}
	return out, nil
}
