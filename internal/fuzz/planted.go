package fuzz

import (
	"fmt"
	"strings"

	"tbtso/internal/machalg"
	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

// KindFlagViolation tags planted-control artifacts: the checker's
// exhaustive set admits a flag-principle violation witness (see
// FlagViolation). Unlike the differential kinds this is an ALGORITHM
// property failure — both models agree, and the program's
// synchronization is what's broken.
const KindFlagViolation = "flag-violation"

// Planted is a known-bad negative control: a program from the paper's
// algorithm suite configured so the flag-principle violation is REAL
// (plain TSO, or a wait shorter than the bound). The fuzzer's
// end-to-end validation is that it finds the violation and shrinks it
// to a litmus-sized witness.
type Planted struct {
	Name    string
	Program mc.Program
	Delta   int // sweep Δ the violation manifests at
}

// PlantedControls returns the negative controls, mirroring the
// violation cases machalg's own exhaustive tests assert:
//
//   - ffhp-tso: fence-free hazard pointers under PLAIN TSO (Δ=0) — the
//     unfenced protect store hides in the buffer past the reclaimer's
//     scan (machalg.MCFFHP, the §4 algorithm minus its precondition).
//   - ffbl-wait: biased-lock revocation whose wait (1) is inadequate
//     for the bound (Δ=10) — the revocation window reopens
//     (machalg.MCFFBL).
func PlantedControls() []Planted {
	return []Planted{
		{Name: "ffhp-tso", Program: machalg.MCFFHP(2, 2, 4), Delta: 0},
		{Name: "ffbl-wait", Program: machalg.MCFFBL(1, 1), Delta: 10},
	}
}

// FlagViolation reports whether outcome witnesses a flag-principle
// violation of p: some thread published a flag with an unfenced store
// and validated with a later load (seeing the initial value), while
// another thread raised the validated-against variable, fenced, and
// later scanned the first thread's flag without seeing it. Both planted
// controls — a hazard-pointer scan miss and a biased-lock revocation
// overlap — are instances of this store-buffering shape.
//
// Unlike machalg's MCFFHPMissed/MCFFBLOverlap, the roles are derived
// from the program text rather than fixed register positions, so the
// detector keeps working as the shrinker drops threads, ops, and
// registers. Outcomes that do not parse against p's shape return false
// (a witness needs evidence, never the benefit of the doubt).
func FlagViolation(p mc.Program, outcome string) bool {
	regs, ok := parseOutcomeInto(p, outcome)
	if !ok {
		return false
	}
	for i, pub := range p.Threads {
		// Publisher side: St(h,v) … Ld(u,a) with no fence/RMW between
		// (an intervening fence would make the publication visible) and
		// u ≠ h (same-address loads hit the thread's own buffer).
		for si, sop := range pub {
			if sop.Kind != mc.OpStore {
				continue
			}
			for li := si + 1; li < len(pub); li++ {
				if pub[li].Kind == mc.OpFence || pub[li].Kind == mc.OpRMW {
					break
				}
				if pub[li].Kind != mc.OpLoad || pub[li].Addr == sop.Addr {
					continue
				}
				if pub[li].Reg < 0 || pub[li].Reg >= p.Regs {
					continue
				}
				if regs[i][pub[li].Reg] != 0 {
					continue // saw the raise: publisher backed off
				}
				if scanMissed(p, regs, i, sop.Addr, sop.Val, pub[li].Addr) {
					return true
				}
			}
		}
	}
	return false
}

// scanMissed: some thread j≠i raised u (St(u,w), w≠0), fenced (OpFence
// or OpRMW — both drain), and later scanned h seeing a value below v.
func scanMissed(p mc.Program, regs [][]int, i, h, v, u int) bool {
	for j, scan := range p.Threads {
		if j == i {
			continue
		}
		for sj, sop := range scan {
			if sop.Kind != mc.OpStore || sop.Addr != u || sop.Val == 0 {
				continue
			}
			fenced := false
			for k := sj + 1; k < len(scan); k++ {
				switch scan[k].Kind {
				case mc.OpFence, mc.OpRMW:
					fenced = true
				case mc.OpLoad:
					if fenced && scan[k].Addr == h &&
						scan[k].Reg >= 0 && scan[k].Reg < p.Regs &&
						regs[j][scan[k].Reg] < v {
						return true
					}
				}
			}
		}
	}
	return false
}

// parseOutcomeInto decodes the checker's canonical outcome string into
// a register matrix sized by p, rejecting (rather than panicking on)
// malformed tokens or out-of-shape indices — shrunk programs change
// shape under the predicate constantly.
func parseOutcomeInto(p mc.Program, outcome string) ([][]int, bool) {
	regs := make([][]int, len(p.Threads))
	for i := range regs {
		regs[i] = make([]int, p.Regs)
	}
	for _, part := range strings.Fields(outcome) {
		var t, r, v int
		if _, err := fmt.Sscanf(part, "T%d:r%d=%d", &t, &r, &v); err != nil {
			return nil, false
		}
		if t < 0 || t >= len(regs) || r < 0 || r >= p.Regs {
			return nil, false
		}
		regs[t][r] = v
	}
	return regs, true
}

// FindViolation explores p at delta and returns the lexically first
// outcome witnessing a flag-principle violation, or "" if the
// exhaustive set admits none. The error reports truncation (absence
// under a truncated exploration proves nothing).
func FindViolation(p mc.Program, delta, maxStates int) (string, error) {
	if maxStates <= 0 {
		maxStates = mc.DefaultMaxStates
	}
	res, err := mc.ExploreParallel(p, delta, mc.Options{MaxStates: maxStates})
	if err != nil {
		return "", err
	}
	for _, o := range res.List() {
		if FlagViolation(p, o) {
			return o, nil
		}
	}
	return "", nil
}

// MachineWitness searches machine schedules for a run whose sampled
// outcome witnesses the violation, making the artifact's replay recipe
// concrete end to end (checker admits it AND the machine exhibits it).
// It tries the adversarial policy first — buffered stores living to the
// bound is exactly the violation's mechanism — then random schedules.
func MachineWitness(p mc.Program, delta int, seeds int) (MachineRun, string, bool) {
	if seeds <= 0 {
		seeds = 64
	}
	for _, pol := range []tso.DrainPolicy{tso.DrainAdversarial, tso.DrainRandom} {
		for s := 0; s < seeds; s++ {
			run := MachineRun{Delta: MachineDelta(delta), Policy: pol, Seed: int64(s)}
			outcome, err := RunOnMachine(p, run)
			if err != nil {
				continue
			}
			if FlagViolation(p, outcome) {
				return run, outcome, true
			}
		}
	}
	return MachineRun{}, "", false
}

// CheckPlanted runs one negative control end to end: find the
// violation in the exhaustive set, shrink it to a litmus-sized witness,
// search for a machine schedule exhibiting it, and package the
// replayable artifact. An error means the control did NOT trip — the
// fuzzer lost its ability to see this violation class, which is
// precisely what the negative control exists to catch.
func CheckPlanted(pl Planted, maxStates, maxAttempts int) (Artifact, error) {
	o, err := FindViolation(pl.Program, pl.Delta, maxStates)
	if err != nil {
		return Artifact{}, fmt.Errorf("planted %s: %w", pl.Name, err)
	}
	if o == "" {
		return Artifact{}, fmt.Errorf("planted %s: no flag-principle violation found at Δ=%d", pl.Name, pl.Delta)
	}
	sr := ShrinkViolation(Candidate{Program: pl.Program, Delta: pl.Delta}, maxStates, maxAttempts)
	shrunk := sr.Candidate
	wo, err := FindViolation(shrunk.Program, shrunk.Delta, maxStates)
	if err != nil || wo == "" {
		return Artifact{}, fmt.Errorf("planted %s: shrunk candidate lost the violation (%v)", pl.Name, err)
	}
	a := Artifact{
		Kind:           KindFlagViolation,
		Delta:          shrunk.Delta,
		Cover:          CoverDelta(shrunk.Program, MachineDelta(shrunk.Delta)),
		Outcome:        wo,
		Detail:         "planted control " + pl.Name,
		Program:        EncodeProgram(shrunk.Program),
		Original:       EncodeProgram(pl.Program),
		ShrinkSteps:    sr.Steps,
		ShrinkAttempts: sr.Attempts,
	}
	if run, _, found := MachineWitness(shrunk.Program, shrunk.Delta, 64); found {
		a.Policy = run.Policy.String()
		a.MachSeed = run.Seed
	}
	return a, nil
}

// ShrinkViolation minimizes a planted control: the failure predicate is
// "the exhaustive set at the candidate's Δ still admits a
// flag-principle witness". maxStates bounds each predicate exploration.
func ShrinkViolation(c Candidate, maxStates, maxAttempts int) ShrinkResult {
	fails := func(n Candidate) bool {
		o, err := FindViolation(n.Program, n.Delta, maxStates)
		return err == nil && o != ""
	}
	return Shrink(c, fails, maxAttempts)
}
