package fuzz

import (
	"reflect"
	"testing"

	"tbtso/internal/mc"
)

func TestGenDeterministic(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		a := Gen(GenConfig{}, seed)
		b := Gen(GenConfig{}, seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestGenShape(t *testing.T) {
	cfg := GenConfig{}.orDefault()
	for seed := int64(0); seed < 400; seed++ {
		p := Gen(GenConfig{}, seed)
		if len(p.Threads) < 1 || len(p.Threads) > cfg.MaxThreads {
			t.Fatalf("seed %d: %d threads", seed, len(p.Threads))
		}
		total := 0
		for ti, th := range p.Threads {
			if len(th) > cfg.MaxOps {
				t.Fatalf("seed %d thread %d: %d ops > MaxOps", seed, ti, len(th))
			}
			total += len(th)
			for _, op := range th {
				switch op.Kind {
				case mc.OpStore, mc.OpRMW:
					if op.Addr < 0 || op.Addr >= cfg.Vars || op.Val < 1 || op.Val > cfg.MaxVal {
						t.Fatalf("seed %d: bad store/rmw %+v", seed, op)
					}
				case mc.OpLoad:
					if op.Addr < 0 || op.Addr >= cfg.Vars || op.Reg < 0 || op.Reg >= cfg.Regs {
						t.Fatalf("seed %d: bad load %+v", seed, op)
					}
				case mc.OpWait:
					if op.Val < 0 || op.Val > cfg.MaxWait {
						t.Fatalf("seed %d: bad wait %+v", seed, op)
					}
				}
				if op.Kind == mc.OpRMW && op.Reg >= cfg.Regs {
					t.Fatalf("seed %d: rmw reg out of range %+v", seed, op)
				}
			}
		}
		if total > cfg.MaxTotalOps {
			t.Fatalf("seed %d: %d total ops > MaxTotalOps", seed, total)
		}
	}
}

// TestGenCoversVocabulary: across a modest seed range every op kind
// (and a cloned-thread program) must appear — the fuzzer is only as
// good as the behaviours its corpus reaches.
func TestGenCoversVocabulary(t *testing.T) {
	seen := map[mc.OpKind]bool{}
	clones, multiThread := false, false
	for seed := int64(0); seed < 300; seed++ {
		p := Gen(GenConfig{}, seed)
		if len(p.Threads) > 1 {
			multiThread = true
		}
		for i, th := range p.Threads {
			for _, op := range th {
				seen[op.Kind] = true
			}
			for j := 0; j < i; j++ {
				if len(th) > 0 && reflect.DeepEqual(th, p.Threads[j]) {
					clones = true
				}
			}
		}
	}
	for _, k := range []mc.OpKind{mc.OpStore, mc.OpLoad, mc.OpFence, mc.OpRMW, mc.OpWait} {
		if !seen[k] {
			t.Errorf("op kind %d never generated", k)
		}
	}
	if !clones {
		t.Error("no cloned threads generated (symmetry reduction never exercised)")
	}
	if !multiThread {
		t.Error("no multi-threaded programs generated")
	}
}
