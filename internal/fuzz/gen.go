// Package fuzz is the differential-fuzzing subsystem: a seeded random
// program generator over the model checker's full op vocabulary, a
// driver that runs each program on BOTH implementations of TBTSO[Δ] —
// the clocked abstract machine (internal/tso, sampled executions) and
// the exhaustive checker (internal/mc, every execution) — and a
// delta-debugging shrinker that minimizes any failure into a
// litmus-sized, replayable counterexample.
//
// The invariant under test is the containment that pins the two
// implementations of the memory model to each other: every outcome the
// machine samples must be admitted by the checker's exhaustive outcome
// set at a Δ that provably covers the machine's configuration (see
// CoverDelta). The checker's two engines are additionally pinned to
// each other at the raw sweep Δ. Any violation is a bug in one of the
// two models — exactly the class of bug a single hand-written litmus
// test would miss. See docs/FUZZ.md.
package fuzz

import (
	"math/rand"

	"tbtso/internal/mc"
	"tbtso/internal/workload"
)

// OpWeights is the generator's op-kind mix, in relative integer
// weights (the workload.Weighted distribution). The zero value selects
// DefaultOpWeights.
type OpWeights struct {
	Store, Load, Fence, RMW, Wait int
}

// DefaultOpWeights skews toward the store/load pairs that make memory-
// model bugs observable, with enough fences/RMWs/waits to reach the
// buffer-draining and wait-arming code paths in both implementations.
var DefaultOpWeights = OpWeights{Store: 8, Load: 8, Fence: 2, RMW: 2, Wait: 2}

func (w OpWeights) orDefault() OpWeights {
	if w == (OpWeights{}) {
		return DefaultOpWeights
	}
	return w
}

// GenConfig sizes the generator. Zero fields select defaults chosen so
// a program's full state space stays explorable in milliseconds while
// still covering 1..4 threads and every op kind.
type GenConfig struct {
	// MaxThreads bounds the thread count; programs draw 1..MaxThreads
	// skewed toward 2 (default 4).
	MaxThreads int
	// MaxOps bounds each thread's straight-line length (default 5).
	MaxOps int
	// MaxTotalOps bounds the whole program (default 10): the checker's
	// state space is exponential in total ops, and a 4×5 program would
	// blow the budget that a 2×5 program fits comfortably.
	MaxTotalOps int
	// Vars is the shared-variable count (default 3).
	Vars int
	// Regs is the per-thread register count; it also bounds how many
	// loads/RMWs a thread can hold results for (default 4).
	Regs int
	// MaxVal bounds stored values, drawn from 1..MaxVal (default 3).
	MaxVal int
	// MaxWait bounds Wait op durations, drawn from 0..MaxWait
	// transitions (default 4).
	MaxWait int
	// Weights is the op-kind mix (zero value: DefaultOpWeights).
	Weights OpWeights
}

func (c GenConfig) orDefault() GenConfig {
	if c.MaxThreads == 0 {
		c.MaxThreads = 4
	}
	if c.MaxOps == 0 {
		c.MaxOps = 5
	}
	if c.MaxTotalOps == 0 {
		c.MaxTotalOps = 10
	}
	if c.Vars == 0 {
		c.Vars = 3
	}
	if c.Regs == 0 {
		c.Regs = 4
	}
	if c.MaxVal == 0 {
		c.MaxVal = 3
	}
	if c.MaxWait == 0 {
		c.MaxWait = 4
	}
	c.Weights = c.Weights.orDefault()
	return c
}

// Gen builds the seed'th random program: deterministic per (config,
// seed), covering the checker's full op vocabulary. Thread counts skew
// toward 2 (where most memory-model bugs live), occasionally cloning a
// thread verbatim so the checker's symmetry reduction is exercised, and
// address selection reuses workload.KeyGen so the variable distribution
// matches the evaluation harness's key draws.
func Gen(cfg GenConfig, seed int64) mc.Program {
	cfg = cfg.orDefault()
	rng := rand.New(rand.NewSource(seed))
	kinds := workload.NewWeighted(rng,
		cfg.Weights.Store, cfg.Weights.Load, cfg.Weights.Fence, cfg.Weights.RMW, cfg.Weights.Wait)
	addrs := workload.NewKeyGen(uint64(cfg.Vars), seed^0x5bf03635)

	// 1..MaxThreads, weighted toward two threads.
	tw := make([]int, cfg.MaxThreads)
	for i := range tw {
		tw[i] = 1
	}
	if cfg.MaxThreads >= 2 {
		tw[1] = 4
	}
	if cfg.MaxThreads >= 3 {
		tw[2] = 2
	}
	nThreads := workload.NewWeighted(rng, tw...).Next() + 1

	p := mc.Program{Vars: cfg.Vars, Regs: cfg.Regs}
	total := 0
	genThread := func() []mc.Op {
		budget := cfg.MaxTotalOps - total
		if budget > cfg.MaxOps {
			budget = cfg.MaxOps
		}
		if budget < 1 {
			budget = 1
		}
		n := rng.Intn(budget) + 1
		ops := make([]mc.Op, 0, n)
		used := 0
		for k := 0; k < n; k++ {
			addr := int(addrs.Next())
			switch kinds.Next() {
			case 0:
				ops = append(ops, mc.St(addr, rng.Intn(cfg.MaxVal)+1))
			case 1:
				if used < cfg.Regs {
					ops = append(ops, mc.Ld(addr, used))
					used++
				}
			case 2:
				ops = append(ops, mc.Fence())
			case 3:
				if used < cfg.Regs {
					ops = append(ops, mc.RMW(addr, rng.Intn(cfg.MaxVal)+1, used))
					used++
				}
			case 4:
				ops = append(ops, mc.Wait(rng.Intn(cfg.MaxWait+1)))
			}
		}
		return ops
	}
	for t := 0; t < nThreads; t++ {
		if t > 0 && total >= cfg.MaxTotalOps {
			break
		}
		if t > 0 && rng.Intn(4) == 0 {
			// Clone an existing thread so identical-thread identity
			// groups (symmetry reduction) are routinely generated —
			// only when the clone fits the op budget.
			src := p.Threads[rng.Intn(len(p.Threads))]
			if total+len(src) <= cfg.MaxTotalOps {
				p.Threads = append(p.Threads, append([]mc.Op(nil), src...))
				total += len(src)
				continue
			}
		}
		ops := genThread()
		p.Threads = append(p.Threads, ops)
		total += len(ops)
	}
	return p
}
