package fuzz

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"tbtso/internal/mc"
	"tbtso/internal/obs"
	"tbtso/internal/tso"
)

// OpJSON is one instruction in the artifact's stable wire form.
type OpJSON struct {
	Kind string `json:"kind"`
	Addr int    `json:"addr,omitempty"`
	Val  int    `json:"val,omitempty"`
	Reg  int    `json:"reg,omitempty"`
}

// ProgramJSON is mc.Program in the artifact's stable wire form.
type ProgramJSON struct {
	Vars    int        `json:"vars"`
	Regs    int        `json:"regs"`
	Threads [][]OpJSON `json:"threads"`
}

var kindNames = map[mc.OpKind]string{
	mc.OpStore: "st", mc.OpLoad: "ld", mc.OpFence: "fence", mc.OpRMW: "rmw", mc.OpWait: "wait",
}

// EncodeProgram converts to the wire form.
func EncodeProgram(p mc.Program) ProgramJSON {
	pj := ProgramJSON{Vars: p.Vars, Regs: p.Regs}
	for _, th := range p.Threads {
		ops := make([]OpJSON, len(th))
		for i, op := range th {
			ops[i] = OpJSON{Kind: kindNames[op.Kind], Addr: op.Addr, Val: op.Val, Reg: op.Reg}
		}
		pj.Threads = append(pj.Threads, ops)
	}
	return pj
}

// DecodeProgram converts back from the wire form.
func DecodeProgram(pj ProgramJSON) (mc.Program, error) {
	p := mc.Program{Vars: pj.Vars, Regs: pj.Regs}
	for ti, th := range pj.Threads {
		ops := make([]mc.Op, len(th))
		for i, op := range th {
			kind := mc.OpKind(-1)
			for k, n := range kindNames {
				if n == op.Kind {
					kind = k
				}
			}
			if kind < 0 {
				return mc.Program{}, fmt.Errorf("fuzz: thread %d op %d: unknown kind %q", ti, i, op.Kind)
			}
			ops[i] = mc.Op{Kind: kind, Addr: op.Addr, Val: op.Val, Reg: op.Reg}
		}
		p.Threads = append(p.Threads, ops)
	}
	return p, nil
}

// Artifact is a reproducible counterexample: the shrunk mismatch plus
// everything needed to replay it — the original generator seed, the
// minimized program, and the exact machine run. MarshalJSON/ReadArtifact
// round-trip it; GoSource renders it as a litmus-test function.
type Artifact struct {
	Kind     string      `json:"kind"`
	Seed     int64       `json:"seed"`
	Delta    int         `json:"delta"`
	Cover    int         `json:"cover,omitempty"`
	Policy   string      `json:"policy,omitempty"`
	MachSeed int64       `json:"mach_seed,omitempty"`
	Outcome  string      `json:"outcome,omitempty"`
	Detail   string      `json:"detail,omitempty"`
	Program  ProgramJSON `json:"program"`
	// Original is the unshrunk program, kept so a suspect shrinker can
	// never hide the bug it started from.
	Original       ProgramJSON `json:"original,omitempty"`
	ShrinkSteps    int         `json:"shrink_steps"`
	ShrinkAttempts int         `json:"shrink_attempts"`
}

// NewArtifact packages a (possibly shrunk) mismatch.
func NewArtifact(m Mismatch, shrunk Candidate, sr ShrinkResult) Artifact {
	return Artifact{
		Kind:     m.Kind,
		Seed:     m.Seed,
		Delta:    shrunk.Delta,
		Cover:    CoverDelta(shrunk.Program, MachineDelta(shrunk.Delta)),
		Policy:   m.Policy.String(),
		MachSeed: m.MachSeed,
		Outcome:  m.Outcome,
		Detail:   m.Detail,
		Program:  EncodeProgram(shrunk.Program),
		Original: EncodeProgram(m.Program),

		ShrinkSteps:    sr.Steps,
		ShrinkAttempts: sr.Attempts,
	}
}

// WriteJSON emits the artifact as indented JSON.
func (a Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadArtifact parses an artifact written by WriteJSON.
func ReadArtifact(r io.Reader) (Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return Artifact{}, err
	}
	if _, err := DecodeProgram(a.Program); err != nil {
		return Artifact{}, err
	}
	return a, nil
}

// Replay re-runs the artifact's differential check on its shrunk
// program and reports whether the mismatch still reproduces. For
// sampled-outcome artifacts the exact (policy, machine seed) run is
// repeated; other kinds re-run the full sweep at the artifact's Δ.
func (a Artifact) Replay() (bool, error) {
	p, err := DecodeProgram(a.Program)
	if err != nil {
		return false, err
	}
	if a.Kind == KindFlagViolation {
		o, err := FindViolation(p, a.Delta, 0)
		return o != "", err
	}
	cfg := Config{Deltas: []int{a.Delta}}.orDefault()
	if a.Kind == KindSampledOutcome {
		pol, err := ParsePolicy(a.Policy)
		if err != nil {
			return false, err
		}
		cfg.Policies = []tso.DrainPolicy{pol}
	}
	rep := CheckProgram(cfg, p, a.Seed)
	return len(rep.Mismatches) > 0, nil
}

// ParsePolicy is the inverse of tso.DrainPolicy.String.
func ParsePolicy(s string) (tso.DrainPolicy, error) {
	for _, p := range []tso.DrainPolicy{tso.DrainRandom, tso.DrainEager, tso.DrainAdversarial} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("fuzz: unknown drain policy %q", s)
}

// GoSource renders the artifact's shrunk program as a self-contained Go
// litmus-test function over the mc package — paste-ready for a
// regression suite. name is the function suffix (TestFuzz<name>).
func (a Artifact) GoSource(name string) string {
	p, err := DecodeProgram(a.Program)
	if err != nil {
		return "// " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Shrunk by tbtso-fuzz: %s at Δ=%d (seed %d", a.Kind, a.Delta, a.Seed)
	if a.Kind == KindSampledOutcome {
		fmt.Fprintf(&b, ", policy %s, machine seed %d, outcome %q", a.Policy, a.MachSeed, a.Outcome)
	}
	fmt.Fprintf(&b, ").\nfunc TestFuzz%s(t *testing.T) {\n", name)
	fmt.Fprintf(&b, "\tp := mc.Program{\n\t\tThreads: [][]mc.Op{\n")
	for _, th := range p.Threads {
		b.WriteString("\t\t\t{")
		for i, op := range th {
			if i > 0 {
				b.WriteString(", ")
			}
			switch op.Kind {
			case mc.OpStore:
				fmt.Fprintf(&b, "mc.St(%d, %d)", op.Addr, op.Val)
			case mc.OpLoad:
				fmt.Fprintf(&b, "mc.Ld(%d, %d)", op.Addr, op.Reg)
			case mc.OpFence:
				b.WriteString("mc.Fence()")
			case mc.OpRMW:
				fmt.Fprintf(&b, "mc.RMW(%d, %d, %d)", op.Addr, op.Val, op.Reg)
			case mc.OpWait:
				fmt.Fprintf(&b, "mc.Wait(%d)", op.Val)
			}
		}
		b.WriteString("},\n")
	}
	fmt.Fprintf(&b, "\t\t},\n\t\tVars: %d, Regs: %d,\n\t}\n", p.Vars, p.Regs)
	switch a.Kind {
	case KindSampledOutcome:
		fmt.Fprintf(&b, "\tres := mc.Explore(p, %d)\n", a.Cover)
		fmt.Fprintf(&b, "\tif res.Has(%q) {\n\t\tt.Fatalf(\"outcome admitted; the machine/checker divergence is fixed on one side only\")\n\t}\n", a.Outcome)
	case KindFlagViolation:
		fmt.Fprintf(&b, "\tres := mc.Explore(p, %d)\n", a.Delta)
		fmt.Fprintf(&b, "\tif res.Has(%q) {\n\t\tt.Fatalf(\"flag-principle violation admitted: wait inadequate for Δ=%d\")\n\t}\n", a.Outcome, a.Delta)
	default:
		fmt.Fprintf(&b, "\tseq, _ := mc.ExploreSequentialBounded(p, %d, mc.DefaultMaxStates)\n", a.Delta)
		fmt.Fprintf(&b, "\tpar := mc.Explore(p, %d)\n", a.Delta)
		b.WriteString("\tif len(seq.Outcomes) != len(par.Outcomes) {\n\t\tt.Fatalf(\"engines diverge: %d vs %d outcomes\", len(seq.Outcomes), len(par.Outcomes))\n\t}\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// PerfettoTrace replays the artifact's machine run with an attached
// Perfetto exporter and writes the Chrome trace-event JSON, giving the
// counterexample a visual timeline (store→commit flows included). Only
// meaningful for sampled-outcome and machine-error artifacts, which
// name a concrete machine run.
func (a Artifact) PerfettoTrace(w io.Writer) error {
	p, err := DecodeProgram(a.Program)
	if err != nil {
		return err
	}
	pol, err := ParsePolicy(a.Policy)
	if err != nil {
		return err
	}
	pf := obs.NewPerfetto()
	names := make([]string, len(p.Threads))
	for i := range names {
		names[i] = fmt.Sprintf("T%d", i)
	}
	pf.BeginRun(names, MachineDelta(a.Delta))
	if _, err := RunOnMachine(p, MachineRun{
		Delta:  MachineDelta(a.Delta),
		Policy: pol,
		Seed:   a.MachSeed,
	}, pf); err != nil && a.Kind != KindMachineError {
		return err
	}
	return pf.WriteJSON(w)
}
