package fuzz

import (
	"reflect"
	"testing"

	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

// recSink records the full observable surface of a machine run: the
// BeginRun call and every emitted event, in order.
type recSink struct {
	names  []string
	delta  uint64
	events []tso.Event
}

func (r *recSink) BeginRun(names []string, delta uint64) {
	r.names = append([]string(nil), names...)
	r.delta = delta
}

func (r *recSink) Emit(e tso.Event) { r.events = append(r.events, e) }

// TestEngineEquivalence is the differential gate for the
// direct-execution engine: over a corpus of generated programs swept
// across Δ, drain policy and scheduler seed, the interpreter and the
// goroutine engine must produce byte-identical outcomes, identical
// Result Ticks and Stats (DrainStats included), and identical sink
// event streams. Both engines consume the seeded RNG in lockstep
// (docs/PERF.md documents the draw stream), so any divergence is a
// scheduler-visible bug, not noise.
func TestEngineEquivalence(t *testing.T) {
	const programs = 200
	deltas := []uint64{0, 1, 3}
	policies := []tso.DrainPolicy{tso.DrainEager, tso.DrainRandom, tso.DrainAdversarial}

	s := NewSampler() // one sampler for the whole corpus: also exercises Reset reuse
	cases, diverged := 0, 0
	for seed := int64(1); seed <= programs; seed++ {
		p := Gen(GenConfig{}, seed)
		for _, d := range deltas {
			for pi, pol := range policies {
				run := MachineRun{Delta: d, Policy: pol, Seed: seed*31 + int64(pi)}
				cases++

				var sinkI, sinkG recSink
				outI, resI, errI := s.Sample(p, run, &sinkI)
				outG, resG, errG := RunOnMachineGoroutine(p, run, &sinkG)
				if errI != nil || errG != nil {
					t.Fatalf("seed=%d Δ=%d policy=%v: interp err=%v goroutine err=%v", seed, d, pol, errI, errG)
				}
				ok := outI == outG &&
					resI.Ticks == resG.Ticks &&
					resI.Stats == resG.Stats &&
					sinkI.delta == sinkG.delta &&
					reflect.DeepEqual(sinkI.names, sinkG.names) &&
					reflect.DeepEqual(sinkI.events, sinkG.events)
				if !ok {
					diverged++
					if diverged <= 3 {
						t.Errorf("engines diverge at seed=%d Δ=%d policy=%v machSeed=%d:\n interp:    %q ticks=%d stats=%+v events=%d\n goroutine: %q ticks=%d stats=%+v events=%d",
							seed, d, pol, run.Seed,
							outI, resI.Ticks, resI.Stats, len(sinkI.events),
							outG, resG.Ticks, resG.Stats, len(sinkG.events))
					}
				}
			}
		}
	}
	if diverged > 0 {
		t.Fatalf("%d/%d cases diverged", diverged, cases)
	}
	t.Logf("%d cases byte-identical across engines", cases)
}

// TestEngineEquivalenceStall extends the lockstep claim to nonzero
// StallProb, where the scheduler draws a Float64 per grant attempt —
// the draw the skip-gate documentation says only fires when enabled.
func TestEngineEquivalenceStall(t *testing.T) {
	s := NewSampler()
	for seed := int64(1); seed <= 30; seed++ {
		p := Gen(GenConfig{}, seed)
		cfg := tso.Config{Delta: 4, DrainMargin: 1, Policy: tso.DrainRandom, Seed: seed, StallProb: 0.3}

		s.m.Reset(cfg)
		base := s.m.AllocWords(p.Vars)
		s.compile(p, base)
		s.sizeResults(p)
		resI := s.m.ExecProgram(s.prog, s.regs)
		if resI.Err != nil {
			t.Fatalf("seed=%d: interp err=%v", seed, resI.Err)
		}
		for th := range p.Threads {
			for r := 0; r < p.Regs; r++ {
				s.ints[th][r] = int(s.regs[th][r])
			}
		}
		outI := mc.FormatOutcome(s.ints[:len(p.Threads)])

		m := tso.New(cfg)
		gbase := m.AllocWords(p.Vars)
		results := make([][]int, len(p.Threads))
		for th := range p.Threads {
			ops := p.Threads[th]
			results[th] = make([]int, p.Regs)
			m.Spawn("T", func(tt *tso.Thread) {
				me := results[tt.ID()]
				for _, op := range ops {
					switch op.Kind {
					case mc.OpStore:
						tt.Store(gbase+tso.Addr(op.Addr), tso.Word(op.Val))
					case mc.OpLoad:
						me[op.Reg] = int(tt.Load(gbase + tso.Addr(op.Addr)))
					case mc.OpFence:
						tt.Fence()
					case mc.OpRMW:
						me[op.Reg] = int(tt.FetchAdd(gbase+tso.Addr(op.Addr), tso.Word(op.Val)))
					case mc.OpWait:
						tt.WaitUntil(tt.Clock() + uint64(op.Val))
					}
				}
			})
		}
		resG := m.Run()
		if resG.Err != nil {
			t.Fatalf("seed=%d: goroutine err=%v", seed, resG.Err)
		}
		outG := mc.FormatOutcome(results)

		if outI != outG || resI.Ticks != resG.Ticks || resI.Stats != resG.Stats {
			t.Fatalf("seed=%d: interp %q ticks=%d vs goroutine %q ticks=%d", seed, outI, resI.Ticks, outG, resG.Ticks)
		}
	}
}

// TestRunWorkerCountInvariance pins the parallel campaign driver's
// determinism claim: the merged Report is identical whatever the
// worker count, because program i's report depends only on
// (cfg, startSeed+i) and reports merge in seed order.
func TestRunWorkerCountInvariance(t *testing.T) {
	base := Config{MachSeeds: 2, MaxStates: 50_000, CrossCheckStates: -1}
	const n, startSeed = 24, 100

	serial := base
	serial.Workers = 1
	want := Run(serial, n, startSeed)

	for _, workers := range []int{2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		got := Run(cfg, n, startSeed)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Workers=%d report differs from serial:\n serial:   %+v\n parallel: %+v", workers, want, got)
		}
	}
}
