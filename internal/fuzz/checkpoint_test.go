package fuzz

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

func ckptProg() mc.Program {
	return mc.Program{
		Threads: [][]mc.Op{
			{mc.St(0, 1), mc.Ld(1, 0)},
			{mc.St(1, 1), mc.Ld(0, 0)},
		},
		Vars: 2, Regs: 1,
	}
}

// TestRunContextPrefixResume pins the resume property RunContext's doc
// comment promises: interrupt a campaign anywhere, rerun the remaining
// seeds, fold the two reports — the result equals the uninterrupted
// campaign exactly.
func TestRunContextPrefixResume(t *testing.T) {
	cfg := Config{
		Deltas:           []int{0, 1},
		MachSeeds:        1,
		MaxStates:        40_000,
		CrossCheckStates: -1,
	}
	const n = 60
	const startSeed = int64(7)
	baseline := Run(cfg, n, startSeed)

	for _, workers := range []int{1, 4} {
		wcfg := cfg
		wcfg.Workers = workers

		// Pre-cancelled context: nothing runs, everything resumes.
		gone, cancel := context.WithCancel(context.Background())
		cancel()
		rep, done, err := RunContext(gone, wcfg, n, startSeed)
		if err == nil {
			t.Fatalf("workers=%d: pre-cancelled RunContext returned nil error", workers)
		}
		if done != 0 || rep.Programs != 0 {
			t.Fatalf("workers=%d: pre-cancelled RunContext did work: done=%d programs=%d", workers, done, rep.Programs)
		}

		// Mid-flight cancellations at assorted points: whatever prefix
		// completed, prefix + resumed remainder must equal the baseline.
		for trial := 0; trial < 4; trial++ {
			ctx, cancel := context.WithCancel(context.Background())
			go func(d time.Duration) {
				time.Sleep(d)
				cancel()
			}(time.Duration(trial*3) * time.Millisecond)
			part, done, _ := RunContext(ctx, wcfg, n, startSeed)
			cancel()
			if done < 0 || done > n {
				t.Fatalf("workers=%d trial=%d: done=%d out of range", workers, trial, done)
			}
			if part.Programs != done {
				t.Fatalf("workers=%d trial=%d: partial report has %d programs, done=%d",
					workers, trial, part.Programs, done)
			}
			rest, rdone, rerr := RunContext(nil, wcfg, n-done, startSeed+int64(done))
			if rerr != nil || rdone != n-done {
				t.Fatalf("workers=%d trial=%d: resume incomplete: done=%d err=%v", workers, trial, rdone, rerr)
			}
			part.Add(rest)
			if !reflect.DeepEqual(part, baseline) {
				t.Errorf("workers=%d trial=%d (interrupted at %d): interrupted+resumed report differs from uninterrupted baseline",
					workers, trial, done)
			}
		}
	}
}

// TestRunContextComplete: with a live context the context-aware entry
// point matches plain Run exactly and reports a full prefix.
func TestRunContextComplete(t *testing.T) {
	cfg := Config{Deltas: []int{0, 1}, MachSeeds: 1, CrossCheckStates: -1, Workers: 4}
	baseline := Run(cfg, 30, 3)
	rep, done, err := RunContext(context.Background(), cfg, 30, 3)
	if err != nil || done != 30 {
		t.Fatalf("complete run: done=%d err=%v", done, err)
	}
	if !reflect.DeepEqual(rep, baseline) {
		t.Error("RunContext with live context differs from Run")
	}
}

func sampleMismatches() []Mismatch {
	return []Mismatch{
		{
			Kind: KindSampledOutcome, Seed: 42, Delta: 1, Cover: 9,
			Policy: tso.DrainAdversarial, MachSeed: 3,
			Outcome: "r0=1 r1=0", Detail: "outcome outside exhaustive set",
			Program: ckptProg(),
		},
		{
			Kind: KindEngineDivergence, Seed: 43, Delta: 0,
			Detail: "parallel/sequential outcome sets differ",
			Program: ckptProg(),
		},
		{
			Kind: KindMachineError, Seed: 44, Delta: 3, Cover: 15,
			Policy: tso.DrainEager, MachSeed: 1,
			Detail: "machine fault: deadlock",
			Program: ckptProg(),
		},
	}
}

func TestMismatchWireRoundTrip(t *testing.T) {
	for _, m := range sampleMismatches() {
		mj := EncodeMismatch(m)
		if m.Kind == KindEngineDivergence && mj.Policy != "" {
			t.Errorf("engine-divergence mismatch encoded policy %q, want empty", mj.Policy)
		}
		back, err := DecodeMismatch(mj)
		if err != nil {
			t.Fatalf("decode %s: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(back, m) {
			t.Errorf("%s: wire round trip mutated the mismatch:\n got %+v\nwant %+v", m.Kind, back, m)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Deltas: []int{0, 1}, MachSeeds: 1}
	hash := cfg.CampaignHash(500, 7, 400)
	ck := &Checkpoint{
		Kind: CheckpointKind, ConfigHash: hash,
		N: 500, FirstSeed: 7, NextSeed: 131,
		Programs: 124, Runs: 744, Truncated: 2, Mismatches: 3, ShrinkSteps: 11,
		Artifacts: []string{"fuzz-000.json"},
	}
	for _, m := range sampleMismatches() {
		ck.Pending = append(ck.Pending, EncodeMismatch(m))
	}

	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	nbytes, err := WriteCheckpoint(path, ck)
	if err != nil {
		t.Fatal(err)
	}
	if nbytes <= 0 {
		t.Fatalf("WriteCheckpoint reported %d bytes", nbytes)
	}
	back, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ck) {
		t.Errorf("checkpoint round trip mutated the document:\n got %+v\nwant %+v", back, ck)
	}
	if err := back.Validate(hash); err != nil {
		t.Errorf("Validate on a faithful checkpoint: %v", err)
	}
	pend, err := back.PendingMismatches()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pend, sampleMismatches()) {
		t.Error("pending shrink queue did not survive the round trip")
	}
	if back.Done() {
		t.Error("mid-campaign checkpoint reports Done")
	}
	fin := *back
	fin.NextSeed = fin.FirstSeed + int64(fin.N)
	fin.Pending = nil
	if !fin.Done() {
		t.Error("finished checkpoint does not report Done")
	}
}

func TestCheckpointValidateRejects(t *testing.T) {
	cfg := Config{Deltas: []int{0, 1}, MachSeeds: 1}
	hash := cfg.CampaignHash(100, 0, 400)
	good := Checkpoint{Kind: CheckpointKind, ConfigHash: hash, N: 100, FirstSeed: 0, NextSeed: 50}

	wrongHash := good
	other := Config{Deltas: []int{0, 5}, MachSeeds: 1}
	if err := wrongHash.Validate(other.CampaignHash(100, 0, 400)); err == nil {
		t.Error("Validate accepted a checkpoint from a different configuration")
	} else if !strings.Contains(err.Error(), "different campaign configuration") {
		t.Errorf("hash-mismatch error lacks the explanation: %v", err)
	}

	wrongKind := good
	wrongKind.Kind = "flight-dump"
	if err := wrongKind.Validate(hash); err == nil {
		t.Error("Validate accepted a wrong-kind document")
	}

	badCursor := good
	badCursor.NextSeed = 101
	if err := badCursor.Validate(hash); err == nil {
		t.Error("Validate accepted an out-of-range cursor")
	}

	badPending := good
	badPending.Pending = []MismatchJSON{{Kind: KindSampledOutcome, Policy: "no-such-policy", Program: EncodeProgram(ckptProg())}}
	if err := badPending.Validate(hash); err == nil {
		t.Error("Validate accepted an undecodable pending mismatch")
	}
}

// TestCampaignHashSensitivity: the hash moves with every
// report-affecting parameter and ignores the report-invariant ones.
func TestCampaignHashSensitivity(t *testing.T) {
	base := Config{Deltas: []int{0, 1}, MachSeeds: 2, MaxStates: 50_000, CrossCheckStates: -1}
	h := base.CampaignHash(100, 1, 400)
	if h != base.CampaignHash(100, 1, 400) {
		t.Fatal("CampaignHash is not deterministic")
	}

	// Workers is report-invariant — resuming with different parallelism
	// is explicitly supported.
	par := base
	par.Workers = 16
	if par.CampaignHash(100, 1, 400) != h {
		t.Error("Workers changed the campaign hash; resume across worker counts would be refused")
	}

	// Zero-valued fields hash like their defaults, so "flag omitted" and
	// "flag set to the default" resume interchangeably.
	expl := base
	expl.Policies = []tso.DrainPolicy{tso.DrainEager, tso.DrainRandom, tso.DrainAdversarial}
	if expl.CampaignHash(100, 1, 400) != h {
		t.Error("explicit default policies hash differently from the implied defaults")
	}

	mut := func(name string, c Config, n int, s int64, shrink int) {
		if c.CampaignHash(n, s, shrink) == h {
			t.Errorf("%s did not change the campaign hash", name)
		}
	}
	d := base
	d.Deltas = []int{0, 2}
	mut("Deltas", d, 100, 1, 400)
	ms := base
	ms.MachSeeds = 3
	mut("MachSeeds", ms, 100, 1, 400)
	st := base
	st.MaxStates = 60_000
	mut("MaxStates", st, 100, 1, 400)
	cc := base
	cc.CrossCheckStates = 1000
	mut("CrossCheckStates", cc, 100, 1, 400)
	g := base
	g.Gen.MaxThreads = 2
	mut("Gen", g, 100, 1, 400)
	pol := base
	pol.Policies = []tso.DrainPolicy{tso.DrainEager}
	mut("Policies", pol, 100, 1, 400)
	mut("N", base, 101, 1, 400)
	mut("FirstSeed", base, 100, 2, 400)
	mut("ShrinkMax", base, 100, 1, 500)
}
