package fuzz

import (
	"testing"

	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

var sb = mc.Program{
	Threads: [][]mc.Op{
		{mc.St(0, 1), mc.Ld(1, 0)},
		{mc.St(1, 1), mc.Ld(0, 0)},
	},
	Vars: 2, Regs: 1,
}

func TestRunOnMachineDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		run := MachineRun{Delta: 8, Policy: tso.DrainRandom, Seed: seed}
		a, err := RunOnMachine(sb, run)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOnMachine(sb, run)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("seed %d: %q vs %q", seed, a, b)
		}
	}
}

// TestRunOnMachineAdversarialSB: under plain TSO with the adversarial
// policy, store buffering must actually manifest — both SB threads read
// 0. If it doesn't, the machine side of the differential test is too
// weak to catch anything.
func TestRunOnMachineAdversarialSB(t *testing.T) {
	out, err := RunOnMachine(sb, MachineRun{Delta: 0, Policy: tso.DrainAdversarial, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := "T0:r0=0 T1:r0=0"; out != want {
		t.Fatalf("adversarial SB outcome %q, want %q", out, want)
	}
}

func TestCoverDelta(t *testing.T) {
	if got := CoverDelta(sb, 0); got != 0 {
		t.Fatalf("unbounded cover = %d, want 0", got)
	}
	if got := CoverDelta(sb, 3); got != (3+1)*2+2 {
		t.Fatalf("cover(Δ=3, 2 threads) = %d", got)
	}
}

// TestRunOnMachineRMWSemantics: the machine's FetchAdd must return the
// OLD value into the register, matching mc.OpRMW — a classic spot for
// the two models to drift apart silently.
func TestRunOnMachineRMWSemantics(t *testing.T) {
	p := mc.Program{
		Threads: [][]mc.Op{{mc.St(0, 5), mc.Fence(), mc.RMW(0, 2, 0), mc.Ld(0, 1)}},
		Vars:    1, Regs: 2,
	}
	out, err := RunOnMachine(p, MachineRun{Delta: 4, Policy: tso.DrainEager, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := "T0:r0=5 T0:r1=7"; out != want {
		t.Fatalf("RMW outcome %q, want %q", out, want)
	}
	res, err := mc.ExploreParallel(p, CoverDelta(p, 4), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Has(out) {
		t.Fatalf("checker does not admit the machine's RMW outcome %q: %v", out, res.List())
	}
}
