package fuzz

import (
	"bytes"
	"strings"
	"testing"
)

// TestPlantedControls is the fuzzer's end-to-end validation: both
// known-bad negative controls — fence-free hazard pointers under plain
// TSO and a biased lock whose wait is inadequate for the bound — must
// be detected, shrink to a litmus-sized witness (≤ 8 ops across ≤ 2
// threads), and replay from the serialized artifact.
func TestPlantedControls(t *testing.T) {
	for _, pl := range PlantedControls() {
		pl := pl
		t.Run(pl.Name, func(t *testing.T) {
			a, err := CheckPlanted(pl, 500_000, 3_000)
			if err != nil {
				t.Fatal(err)
			}
			p, err := DecodeProgram(a.Program)
			if err != nil {
				t.Fatal(err)
			}
			ops := 0
			for _, th := range p.Threads {
				ops += len(th)
			}
			if ops > 8 || len(p.Threads) > 2 {
				t.Fatalf("under-shrunk: %d ops across %d threads (%d shrink steps): %+v",
					ops, len(p.Threads), a.ShrinkSteps, p)
			}
			if a.ShrinkSteps == 0 {
				t.Fatal("shrinker accepted nothing on an 18-op control")
			}
			if a.Policy == "" {
				t.Fatal("no machine schedule exhibits the shrunk violation")
			}

			// The artifact must survive serialization and still reproduce.
			var buf bytes.Buffer
			if err := a.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := ReadArtifact(&buf)
			if err != nil {
				t.Fatal(err)
			}
			repro, err := back.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if !repro {
				t.Fatal("round-tripped artifact does not reproduce the violation")
			}

			src := back.GoSource(strings.ToUpper(pl.Name[:4]))
			for _, want := range []string{"func TestFuzz", "mc.Program{", a.Outcome} {
				if !strings.Contains(src, want) {
					t.Fatalf("GoSource missing %q:\n%s", want, src)
				}
			}

			var trace bytes.Buffer
			if err := back.PerfettoTrace(&trace); err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(trace.Bytes(), []byte("traceEvents")) {
				t.Fatalf("Perfetto trace missing traceEvents: %.120s", trace.String())
			}
		})
	}
}

// TestFlagViolationMatchesMachalgWitnesses pins the generic detector to
// machalg's hand-indexed ones on the original (unshrunk) programs: it
// must fire on the planted configurations and stay silent on the
// provably safe ones.
func TestFlagViolationMatchesMachalgWitnesses(t *testing.T) {
	for _, c := range []struct {
		name  string
		pl    Planted
		delta int
		want  bool
	}{
		{"ffhp-unsafe", PlantedControls()[0], 0, true},
		{"ffhp-safe", PlantedControls()[0], 3, false}, // wait 4 is adequate for Δ=3
		{"ffbl-unsafe", PlantedControls()[1], 10, true},
	} {
		o, err := FindViolation(c.pl.Program, c.delta, 500_000)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := o != ""; got != c.want {
			t.Errorf("%s: violation found=%v (outcome %q), want %v", c.name, got, o, c.want)
		}
	}
}
