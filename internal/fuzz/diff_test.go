package fuzz

import (
	"testing"

	"tbtso/internal/mc"
	"tbtso/internal/obs"
)

// TestDifferentialNoMismatch is the core soundness run at CI scale: a
// seeded batch of generated programs through the full sweep — both
// checker engines against each other at the raw Δ, and the machine's
// sampled outcomes against the exhaustive set at the covering Δ. Any
// mismatch is a real model bug; the failure message is the replay key.
func TestDifferentialNoMismatch(t *testing.T) {
	cfg := Config{
		Deltas:           []int{0, 1, 3},
		MachSeeds:        2,
		MaxStates:        80_000,
		CrossCheckStates: 4_000,
		Metrics:          obs.NewRegistry(),
	}
	const programs = 120
	rep := Run(cfg, programs, 1)
	for _, m := range rep.Mismatches {
		t.Errorf("%s", m)
	}
	if rep.Programs != programs {
		t.Fatalf("checked %d programs, want %d", rep.Programs, programs)
	}
	if rep.Runs == 0 {
		t.Fatal("no machine runs sampled")
	}
	if got := cfg.Metrics.Counter("fuzz.programs").Load(); got != programs {
		t.Fatalf("fuzz.programs counter = %d, want %d", got, programs)
	}
	if got := cfg.Metrics.Counter("fuzz.runs").Load(); got != uint64(rep.Runs) {
		t.Fatalf("fuzz.runs counter = %d, report says %d", got, rep.Runs)
	}
}

// TestCheckProgramFlagsImpossibleOutcome: a sampled-outcome mismatch
// must actually be raised when the machine produces something the
// checker doesn't admit. Simulated by checking a WRONG program against
// the machine's (the checker explores a program whose only store has a
// different value), proving the detection path end to end without
// planting a bug in either model.
func TestCheckProgramFlagsImpossibleOutcome(t *testing.T) {
	machine := mc.Program{
		Threads: [][]mc.Op{{mc.St(0, 2), mc.Ld(0, 0)}},
		Vars:    1, Regs: 1,
	}
	// The machine will sample T0:r0=2 (store-to-load forwarding); the
	// checker's set for this program is built from the same ops, so
	// lie to the containment check by altering the admitted set: check
	// against a program storing 1.
	checker := mc.Program{
		Threads: [][]mc.Op{{mc.St(0, 1), mc.Ld(0, 0)}},
		Vars:    1, Regs: 1,
	}
	admitted, err := mc.ExploreParallel(checker, 0, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := RunOnMachine(machine, MachineRun{Delta: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if admitted.Has(outcome) {
		t.Fatalf("test premise broken: %q admitted", outcome)
	}
	// The real driver wires exactly this Has() check; with matching
	// programs it must pass.
	rep := CheckProgram(Config{Deltas: []int{0}, MachSeeds: 2}, machine, 7)
	if len(rep.Mismatches) != 0 {
		t.Fatalf("self-check of a consistent program mismatched: %v", rep.Mismatches)
	}
}
