package fuzz

import (
	"testing"

	"tbtso/internal/mc"
)

// TestShrinkSyntheticPredicate drives the shrinker with a cheap
// structural predicate — "some thread still stores to variable 0 and
// Δ ≥ 1" — and checks it reaches the unique minimum: one thread, one
// op, value 1, one variable, one register, Δ = 1.
func TestShrinkSyntheticPredicate(t *testing.T) {
	c := Candidate{
		Program: mc.Program{
			Threads: [][]mc.Op{
				{mc.Ld(2, 0), mc.St(0, 3), mc.Wait(2), mc.Fence()},
				{mc.RMW(1, 2, 1), mc.St(2, 2)},
				{mc.St(0, 2), mc.Ld(0, 2)},
			},
			Vars: 3, Regs: 3,
		},
		Delta: 8,
	}
	fails := func(n Candidate) bool {
		if n.Delta < 1 {
			return false
		}
		for _, th := range n.Program.Threads {
			for _, op := range th {
				if op.Kind == mc.OpStore && op.Addr == 0 {
					return true
				}
			}
		}
		return false
	}
	res := Shrink(c, fails, 0)
	got := res.Candidate
	if got.ops() != 1 || len(got.Program.Threads) != 1 {
		t.Fatalf("not minimal: %d ops in %d threads: %+v", got.ops(), len(got.Program.Threads), got.Program)
	}
	op := got.Program.Threads[0][0]
	if op.Kind != mc.OpStore || op.Addr != 0 || op.Val != 1 {
		t.Fatalf("wrong surviving op: %+v", op)
	}
	if got.Delta != 1 || got.Program.Vars != 1 || got.Program.Regs != 1 {
		t.Fatalf("dimensions not minimal: Δ=%d Vars=%d Regs=%d", got.Delta, got.Program.Vars, got.Program.Regs)
	}
	if res.Steps == 0 || res.Attempts <= res.Steps {
		t.Fatalf("implausible accounting: steps=%d attempts=%d", res.Steps, res.Attempts)
	}
}

func TestShrinkRejectsPassingCandidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shrink accepted a passing candidate without panicking")
		}
	}()
	Shrink(Candidate{Program: mc.Program{Threads: [][]mc.Op{{mc.Fence()}}, Vars: 1, Regs: 1}},
		func(Candidate) bool { return false }, 10)
}

// TestShrinkRespectsAttemptBudget: an always-failing predicate would
// otherwise let value/delta passes spin; the budget must cut them off.
func TestShrinkRespectsAttemptBudget(t *testing.T) {
	c := Candidate{
		Program: mc.Program{Threads: [][]mc.Op{{mc.St(0, 3), mc.St(1, 3)}, {mc.Ld(0, 0)}}, Vars: 2, Regs: 1},
		Delta:   100,
	}
	calls := 0
	res := Shrink(c, func(Candidate) bool { calls++; return true }, 25)
	if res.Attempts > 25 || calls > 25 {
		t.Fatalf("budget exceeded: attempts=%d calls=%d", res.Attempts, calls)
	}
}
