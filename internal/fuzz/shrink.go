package fuzz

import (
	"tbtso/internal/mc"
)

// Candidate is the unit the shrinker minimizes: a program plus the
// sweep Δ the failure reproduced at.
type Candidate struct {
	Program mc.Program
	Delta   int
}

// ops returns the total op count, the shrinker's size measure.
func (c Candidate) ops() int {
	n := 0
	for _, th := range c.Program.Threads {
		n += len(th)
	}
	return n
}

// ShrinkResult reports what the shrinker did.
type ShrinkResult struct {
	Candidate Candidate
	// Steps is how many transformations were accepted (each one
	// re-validated by the failure predicate).
	Steps int
	// Attempts is how many candidate transformations were tried.
	Attempts int
}

// Shrink minimizes c while fails keeps returning true, delta-debugging
// style: each pass proposes a structural simplification, re-runs the
// failure predicate on the transformed candidate, and keeps the
// transformation only if the failure still reproduces. Because every
// acceptance is predicate-validated, the passes are free to be
// aggressive — dropping whole threads, halving op chunks, merging
// variables, renumbering registers, and cutting Δ — without any
// semantic-preservation argument. fails must be deterministic for the
// fixpoint loop to terminate; maxAttempts (≤0: 10_000) bounds predicate
// invocations so an expensive predicate cannot run away.
//
// The input candidate must itself fail; Shrink panics otherwise, since
// "minimize a non-failure" is always a harness bug.
func Shrink(c Candidate, fails func(Candidate) bool, maxAttempts int) ShrinkResult {
	if maxAttempts <= 0 {
		maxAttempts = 10_000
	}
	if !fails(c) {
		panic("fuzz: Shrink called with a passing candidate")
	}
	res := ShrinkResult{Candidate: c, Attempts: 1}

	// try replaces the current candidate if the transformed one still
	// fails; returns whether it was accepted.
	try := func(n Candidate) bool {
		if res.Attempts >= maxAttempts {
			return false
		}
		res.Attempts++
		if !fails(n) {
			return false
		}
		res.Candidate = n
		res.Steps++
		return true
	}

	for changed := true; changed && res.Attempts < maxAttempts; {
		changed = false
		changed = dropThreads(&res, try) || changed
		changed = dropOps(&res, try) || changed
		changed = shrinkValues(&res, try) || changed
		changed = mergeVars(&res, try) || changed
		changed = compactRegs(&res, try) || changed
		changed = shrinkDelta(&res, try) || changed
	}
	return res
}

// ShrinkMismatch minimizes a differential mismatch and packages the
// replayable artifact. The failure predicate re-runs the differential
// check on the candidate (same policies and machine-seed derivation, so
// it is deterministic) and demands a mismatch of the same kind. If the
// mismatch unexpectedly fails to reproduce under the narrowed config,
// the artifact wraps the original unshrunk program instead of lying.
func ShrinkMismatch(cfg Config, m Mismatch, maxAttempts int) Artifact {
	narrow := cfg.orDefault()
	narrow.Metrics = nil // predicate runs should not pollute campaign counters
	fails := func(c Candidate) bool {
		n := narrow
		n.Deltas = []int{c.Delta}
		for _, mm := range CheckProgram(n, c.Program, m.Seed).Mismatches {
			if mm.Kind == m.Kind {
				return true
			}
		}
		return false
	}
	start := Candidate{Program: m.Program, Delta: m.Delta}
	if !fails(start) {
		return NewArtifact(m, start, ShrinkResult{Candidate: start})
	}
	sr := Shrink(start, fails, maxAttempts)

	// Re-derive the concrete failing run on the shrunk program so the
	// artifact's policy/seed/outcome replay against it, not the original.
	final := m
	n := narrow
	n.Deltas = []int{sr.Candidate.Delta}
	for _, mm := range CheckProgram(n, sr.Candidate.Program, m.Seed).Mismatches {
		if mm.Kind == m.Kind {
			final = mm
			break
		}
	}
	a := NewArtifact(final, sr.Candidate, sr)
	a.Original = EncodeProgram(m.Program)
	return a
}

func cloneProgram(p mc.Program) mc.Program {
	q := p
	q.Threads = make([][]mc.Op, len(p.Threads))
	for i, th := range p.Threads {
		q.Threads[i] = append([]mc.Op(nil), th...)
	}
	return q
}

// dropThreads removes whole threads, largest-index first so outcome
// strings of surviving threads keep their thread numbers stable for as
// long as possible.
func dropThreads(res *ShrinkResult, try func(Candidate) bool) bool {
	changed := false
	for i := len(res.Candidate.Program.Threads) - 1; i >= 0; i-- {
		if len(res.Candidate.Program.Threads) <= 1 {
			break
		}
		if i >= len(res.Candidate.Program.Threads) {
			continue
		}
		n := res.Candidate
		n.Program = cloneProgram(n.Program)
		n.Program.Threads = append(n.Program.Threads[:i], n.Program.Threads[i+1:]...)
		if try(n) {
			changed = true
		}
	}
	return changed
}

// dropOps is ddmin over each thread's op list: first halves, then
// quarters, down to single ops.
func dropOps(res *ShrinkResult, try func(Candidate) bool) bool {
	changed := false
	for t := 0; t < len(res.Candidate.Program.Threads); t++ {
		for chunk := maxInt(1, len(res.Candidate.Program.Threads[t])/2); chunk >= 1; chunk /= 2 {
			for start := 0; start < len(res.Candidate.Program.Threads[t]); {
				ops := res.Candidate.Program.Threads[t]
				end := start + chunk
				if end > len(ops) {
					end = len(ops)
				}
				n := res.Candidate
				n.Program = cloneProgram(n.Program)
				n.Program.Threads[t] = append(n.Program.Threads[t][:start:start], n.Program.Threads[t][end:]...)
				if try(n) {
					changed = true
					// ops shifted left; retry the same start index.
					continue
				}
				start += chunk
			}
			if chunk == 1 {
				break
			}
		}
	}
	return changed
}

// shrinkValues lowers stored values, RMW addends, and Wait durations
// toward their minimum (1 for values, 0 for waits).
func shrinkValues(res *ShrinkResult, try func(Candidate) bool) bool {
	changed := false
	for t := 0; t < len(res.Candidate.Program.Threads); t++ {
		for i := 0; i < len(res.Candidate.Program.Threads[t]); i++ {
			op := res.Candidate.Program.Threads[t][i]
			var lower []int
			switch op.Kind {
			case mc.OpStore, mc.OpRMW:
				if op.Val > 1 {
					lower = []int{1, op.Val / 2}
				}
			case mc.OpWait:
				if op.Val > 0 {
					lower = []int{0, op.Val / 2}
				}
			}
			for _, v := range lower {
				if v == op.Val {
					continue
				}
				n := res.Candidate
				n.Program = cloneProgram(n.Program)
				n.Program.Threads[t][i].Val = v
				if try(n) {
					changed = true
					break
				}
			}
		}
	}
	return changed
}

// mergeVars redirects accesses of the highest variable onto lower ones
// and trims Vars, collapsing the program's address space.
func mergeVars(res *ShrinkResult, try func(Candidate) bool) bool {
	changed := false
	for res.Candidate.Program.Vars > 1 {
		hi := res.Candidate.Program.Vars - 1
		merged := false
		for lo := 0; lo < hi; lo++ {
			n := res.Candidate
			n.Program = cloneProgram(n.Program)
			for t := range n.Program.Threads {
				for i := range n.Program.Threads[t] {
					if n.Program.Threads[t][i].Addr == hi {
						n.Program.Threads[t][i].Addr = lo
					}
				}
			}
			n.Program.Vars = hi
			if try(n) {
				changed, merged = true, true
				break
			}
		}
		if !merged {
			break
		}
	}
	return changed
}

// compactRegs renumbers each thread's live registers densely from 0 and
// trims Regs to the maximum live count. This rewrites outcome strings,
// which is exactly why the shrinker re-validates via the predicate
// instead of preserving outcomes syntactically.
func compactRegs(res *ShrinkResult, try func(Candidate) bool) bool {
	p := res.Candidate.Program
	maxLive := 0
	n := res.Candidate
	n.Program = cloneProgram(p)
	dirty := false
	for t := range n.Program.Threads {
		remap := map[int]int{}
		for i := range n.Program.Threads[t] {
			op := &n.Program.Threads[t][i]
			if op.Kind != mc.OpLoad && op.Kind != mc.OpRMW {
				continue
			}
			to, ok := remap[op.Reg]
			if !ok {
				to = len(remap)
				remap[op.Reg] = to
			}
			if to != op.Reg {
				dirty = true
			}
			op.Reg = to
		}
		if len(remap) > maxLive {
			maxLive = len(remap)
		}
	}
	if maxLive == 0 {
		maxLive = 1
	}
	if maxLive != n.Program.Regs {
		dirty = true
	}
	n.Program.Regs = maxLive
	if !dirty {
		return false
	}
	return try(n)
}

// shrinkDelta tries smaller Δs: 0 (plain TSO) first — the strongest
// simplification — then halving, then decrement.
func shrinkDelta(res *ShrinkResult, try func(Candidate) bool) bool {
	changed := false
	for {
		d := res.Candidate.Delta
		if d <= 0 {
			return changed
		}
		accepted := false
		for _, nd := range []int{0, d / 2, d - 1} {
			if nd == d {
				continue
			}
			n := res.Candidate
			n.Delta = nd
			if try(n) {
				changed, accepted = true, true
				break
			}
		}
		if !accepted {
			return changed
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
