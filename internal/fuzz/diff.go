package fuzz

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tbtso/internal/mc"
	"tbtso/internal/obs"
	"tbtso/internal/obs/coverage"
	"tbtso/internal/obs/monitor"
	"tbtso/internal/tso"
)

// Config parameterizes the differential driver. Zero fields select
// defaults sized so one program's full sweep finishes in milliseconds.
type Config struct {
	// Gen sizes the program generator.
	Gen GenConfig
	// Deltas is the Δ sweep, in checker transitions; 0 means unbounded
	// (plain TSO). Default {0, 1, 3}.
	Deltas []int
	// Policies are the machine drain policies each program is sampled
	// under. Default: eager, random, adversarial.
	Policies []tso.DrainPolicy
	// MachSeeds is how many scheduler seeds the machine is run with per
	// (Δ, policy) cell (default 3).
	MachSeeds int
	// MaxStates bounds each checker exploration (default 200_000).
	// Explorations that hit it are counted as truncated and skipped —
	// outcome absence in a partial set proves nothing.
	MaxStates int
	// CrossCheckStates: when the parallel engine's exploration visited
	// at most this many states, the sequential reference explorer is
	// run on the same (program, Δ) and the outcome sets compared
	// (default 20_000; negative disables).
	CrossCheckStates int
	// Metrics, if non-nil, receives fuzz.* counters: programs, runs,
	// explorations, truncated, mismatches.
	Metrics *obs.Registry
	// Sinks are attached to every sampled machine run — e.g. the
	// obs/monitor online checkers, so a campaign's machine side runs
	// under continuous Δ-residency verification. Sinks are not safe for
	// concurrent use, so a parallel Run serializes the sampled machine
	// runs of all workers around them (the checker explorations still
	// parallelize; prefer Flight, which shards instead of serializing,
	// for monitored throughput campaigns).
	Sinks []tso.Sink
	// Flight, if non-nil, is the sharded campaign flight recorder:
	// worker w records every sampled run into Flight.Shard(w) — its own
	// lock-free shard, bracketed per program so interrupted checks
	// leave no trace — and the campaign driver compacts/dumps at report
	// boundaries. Unlike Sinks, Flight adds no serialization.
	Flight *monitor.ShardedFlight
	// Workers is the parallelism of Run: the (program, seed) space is
	// sharded across this many workers, each with its own machine.
	// 0 means GOMAXPROCS; 1 is fully serial. The merged Report is
	// identical for every worker count (programs are independent and
	// reports are merged in seed order).
	Workers int
}

func (c Config) orDefault() Config {
	c.Gen = c.Gen.orDefault()
	if c.Deltas == nil {
		c.Deltas = []int{0, 1, 3}
	}
	if c.Policies == nil {
		c.Policies = []tso.DrainPolicy{tso.DrainEager, tso.DrainRandom, tso.DrainAdversarial}
	}
	if c.MachSeeds == 0 {
		c.MachSeeds = 3
	}
	if c.MaxStates == 0 {
		c.MaxStates = 200_000
	}
	if c.CrossCheckStates == 0 {
		c.CrossCheckStates = 20_000
	}
	return c
}

func (c Config) count(name string, n uint64) {
	if c.Metrics != nil {
		c.Metrics.Counter(name).Add(n)
	}
}

// Mismatch kinds.
const (
	// KindSampledOutcome: the machine sampled an outcome the checker's
	// exhaustive set at the covering Δ does not admit — the core
	// containment violation.
	KindSampledOutcome = "sampled-outcome"
	// KindEngineDivergence: the parallel engine and the sequential
	// reference disagree on the outcome set at the same (program, Δ).
	KindEngineDivergence = "engine-divergence"
	// KindMachineError: the machine faulted running a generated program
	// (Δ violation, deadlock, tick budget) — always a harness or model
	// bug, generated programs cannot legitimately fault.
	KindMachineError = "machine-error"
)

// Mismatch is one differential failure, carrying everything needed to
// replay it: the program, the sweep Δ, and (for sampled-outcome and
// machine-error kinds) the exact machine run.
type Mismatch struct {
	Kind    string
	Seed    int64 // generator seed (0 if the program wasn't generated)
	Delta   int   // sweep Δ, checker transitions
	Cover   int   // covering Δ the containment was checked at
	Policy  tso.DrainPolicy
	MachSeed int64
	Outcome string // offending outcome (sampled-outcome kind)
	Detail  string
	Program mc.Program
}

func (m Mismatch) String() string {
	s := fmt.Sprintf("%s: seed=%d Δ=%d policy=%v machSeed=%d", m.Kind, m.Seed, m.Delta, m.Policy, m.MachSeed)
	if m.Outcome != "" {
		s += " outcome=" + m.Outcome
	}
	if m.Detail != "" {
		s += " (" + m.Detail + ")"
	}
	return s
}

// Report accumulates driver statistics across programs.
type Report struct {
	Programs   int
	Runs       int // machine executions sampled
	Truncated  int // explorations that hit MaxStates and were skipped
	Mismatches []Mismatch
	// Coverage is the campaign coverage accumulated over the report's
	// programs (op mix, shapes, swept cells, drain causes, mc
	// reduction hits). Like the totals above it merges in seed order,
	// and because every field is an integer accumulator the merged
	// snapshot is identical for every worker count.
	Coverage coverage.Snapshot
}

// Add folds r2 into r.
func (r *Report) Add(r2 Report) {
	r.Programs += r2.Programs
	r.Runs += r2.Runs
	r.Truncated += r2.Truncated
	r.Mismatches = append(r.Mismatches, r2.Mismatches...)
	r.Coverage.Merge(&r2.Coverage)
}

// explore runs the parallel engine, tolerating truncation: a truncated
// exploration returns ok=false and the check that needed it is skipped.
// A cancelled exploration (ctx) propagates its *mc.InterruptedError —
// the caller must treat the whole program check as incomplete, never
// as a finding.
func (c Config) explore(ctx context.Context, p mc.Program, delta int) (mc.Result, bool, error) {
	c.count("fuzz.explorations", 1)
	res, err := mc.ExploreParallel(p, delta, mc.Options{MaxStates: c.MaxStates, Context: ctx})
	if err != nil {
		var te *mc.TruncatedError
		if errors.As(err, &te) {
			c.count("fuzz.truncated", 1)
			return mc.Result{}, false, nil
		}
		return mc.Result{}, false, err
	}
	return res, true, nil
}

// cancelled reports whether ctx (nil = uncancellable) is done.
func cancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// diffOutcomes renders the symmetric difference of two outcome sets,
// capped for readability.
func diffOutcomes(a, b map[string]bool) string {
	var missing, extra []string
	for o := range a {
		if !b[o] {
			missing = append(missing, o)
		}
	}
	for o := range b {
		if !a[o] {
			extra = append(extra, o)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	cap3 := func(xs []string) []string {
		if len(xs) > 3 {
			return append(xs[:3:3], "...")
		}
		return xs
	}
	return fmt.Sprintf("parallel-only=%v sequential-only=%v", cap3(missing), cap3(extra))
}

// CheckProgram runs the full differential sweep on one program: for
// every Δ in the sweep, (1) the two checker engines are compared on the
// exact Δ, and (2) every (policy × machine seed) sample of the clocked
// machine at Δ ticks is asserted to be admitted by the checker's
// exhaustive outcome set at the covering Δ. seed tags mismatches for
// replay; pass the generator seed (or 0 for hand-built programs).
func CheckProgram(cfg Config, p mc.Program, seed int64) Report {
	rep, _ := checkProgram(nil, cfg.orDefault(), NewSampler(), nil, nil, p, seed)
	return rep
}

// opKindName maps checker op kinds to the coverage op-mix vocabulary.
func opKindName(k mc.OpKind) string {
	switch k {
	case mc.OpStore:
		return "store"
	case mc.OpLoad:
		return "load"
	case mc.OpFence:
		return "fence"
	case mc.OpRMW:
		return "rmw"
	case mc.OpWait:
		return "wait"
	default:
		return "unknown"
	}
}

// observeProgram records p's shape and op mix into the report's
// coverage and returns (threads, totalOps) for the later shape-keyed
// observations.
func observeProgram(rep *Report, p mc.Program) (threads, totalOps int) {
	ops := make(map[string]uint64, 5)
	for _, th := range p.Threads {
		totalOps += len(th)
		for _, op := range th {
			ops[opKindName(op.Kind)]++
		}
	}
	threads = len(p.Threads)
	rep.Coverage.ObserveProgram(threads, totalOps, ops)
	return threads, totalOps
}

// checkProgram is CheckProgram with an explicit execution context: the
// sampler is the worker-local machine the program's runs reuse, sinkMu
// (nil in serial drivers) serializes sampled runs around the shared
// cfg.Sinks in a parallel campaign, and shard (nil when cfg.Flight is
// off) is the worker's private flight shard — every sampled run streams
// into it lock-free, bracketed as one seed group. cfg must already be
// defaulted. ctx (nil = uncancellable) cancels mid-check; complete is
// false when the check was cut short, in which case the report is a
// partial that MUST NOT be merged into a campaign — the program has to
// be re-checked from scratch (it is deterministic per seed, so a re-run
// reproduces the full report exactly), and the shard group is discarded
// with it.
func checkProgram(ctx context.Context, cfg Config, s *Sampler, sinkMu *sync.Mutex, shard *monitor.FlightShard, p mc.Program, seed int64) (rep Report, complete bool) {
	rep = Report{Programs: 1}
	cfg.count("fuzz.programs", 1)
	threads, totalOps := observeProgram(&rep, p)

	sinks := cfg.Sinks
	if shard != nil {
		sinks = make([]tso.Sink, 0, len(cfg.Sinks)+1)
		sinks = append(sinks, cfg.Sinks...)
		sinks = append(sinks, shard)
		shard.BeginGroup(seed)
		defer func() { shard.EndGroup(complete) }()
	}

	for _, delta := range cfg.Deltas {
		if cancelled(ctx) {
			return rep, false
		}
		raw, ok, err := cfg.explore(ctx, p, delta)
		if err != nil {
			if errors.Is(err, mc.ErrInterrupted) {
				return rep, false
			}
			rep.Mismatches = append(rep.Mismatches, Mismatch{
				Kind: KindEngineDivergence, Seed: seed, Delta: delta,
				Detail: "parallel engine error: " + err.Error(), Program: p,
			})
			continue
		}
		if !ok {
			rep.Truncated++
			rep.Coverage.ObserveTruncated()
			continue
		}
		rep.Coverage.ObserveExploration(raw.States, raw.Transitions, raw.DedupHits, raw.PorPrunes, raw.TerminalCollapses)
		rep.Coverage.ObserveOutcomeSet(threads, totalOps, len(raw.Outcomes))

		// Engine cross-check at the RAW sweep Δ, so small Δs are pinned
		// engine-to-engine even though containment runs at the cover.
		if cfg.CrossCheckStates >= 0 && raw.States <= cfg.CrossCheckStates {
			seqRes, seqErr := mc.ExploreSequentialBounded(p, delta, cfg.MaxStates)
			if seqErr == nil && !sameOutcomes(raw.Outcomes, seqRes.Outcomes) {
				rep.Mismatches = append(rep.Mismatches, Mismatch{
					Kind: KindEngineDivergence, Seed: seed, Delta: delta,
					Detail: diffOutcomes(raw.Outcomes, seqRes.Outcomes), Program: p,
				})
			}
		}

		// Containment: machine samples at Δ ticks vs the exhaustive set
		// at the covering Δ (see CoverDelta for why this is sound).
		machDelta := MachineDelta(delta)
		cover := CoverDelta(p, machDelta)
		admitted := raw
		if cover != delta {
			var cok bool
			admitted, cok, err = cfg.explore(ctx, p, cover)
			if err != nil {
				if errors.Is(err, mc.ErrInterrupted) {
					return rep, false
				}
				rep.Mismatches = append(rep.Mismatches, Mismatch{
					Kind: KindEngineDivergence, Seed: seed, Delta: delta, Cover: cover,
					Detail: "cover exploration error: " + err.Error(), Program: p,
				})
				continue
			}
			if !cok {
				rep.Truncated++
				rep.Coverage.ObserveTruncated()
				continue
			}
			rep.Coverage.ObserveExploration(admitted.States, admitted.Transitions, admitted.DedupHits, admitted.PorPrunes, admitted.TerminalCollapses)
		}
		for pi, pol := range cfg.Policies {
			for i := 0; i < cfg.MachSeeds; i++ {
				machSeed := seed*1000003 + int64(pi)*101 + int64(i)
				rep.Runs++
				cfg.count("fuzz.runs", 1)
				rep.Coverage.ObserveRun(delta, pol.String(), i)
				if sinkMu != nil {
					sinkMu.Lock()
				}
				outcome, mres, err := s.Sample(p, MachineRun{Delta: machDelta, Policy: pol, Seed: machSeed}, sinks...)
				if sinkMu != nil {
					sinkMu.Unlock()
				}
				if shard != nil {
					shard.TagRun(coverage.CellKey(delta, pol.String(), i))
				}
				if err == nil {
					for c := 0; c < int(tso.NumDrainCauses); c++ {
						cause := tso.DrainCause(c)
						rep.Coverage.ObserveDrain(cause.String(), mres.Stats.Drains.ByCause(cause))
					}
				}
				if err != nil {
					rep.Mismatches = append(rep.Mismatches, Mismatch{
						Kind: KindMachineError, Seed: seed, Delta: delta, Cover: cover,
						Policy: pol, MachSeed: machSeed, Detail: err.Error(), Program: p,
					})
					continue
				}
				if !admitted.Has(outcome) {
					rep.Mismatches = append(rep.Mismatches, Mismatch{
						Kind: KindSampledOutcome, Seed: seed, Delta: delta, Cover: cover,
						Policy: pol, MachSeed: machSeed, Outcome: outcome, Program: p,
					})
				}
			}
		}
	}
	cfg.count("fuzz.mismatches", uint64(len(rep.Mismatches)))
	return rep, true
}

// Run generates and checks n programs starting at startSeed, sharding
// the seed space across cfg.Workers workers (GOMAXPROCS when 0), and
// returns the aggregate report. Deterministic per (cfg, n, startSeed)
// and independent of the worker count: program i's report depends only
// on (cfg, startSeed+i) — each worker runs its programs on a private
// machine — and the per-program reports are merged in seed order.
func Run(cfg Config, n int, startSeed int64) Report {
	rep, _, _ := RunContext(nil, cfg, n, startSeed)
	return rep
}

// RunContext is Run with cooperative cancellation, the primitive the
// campaign checkpoints are built on. On cancellation it stops handing
// out seeds, discards any program checks that were cut short or that
// lie beyond the first unfinished seed, and returns the merged report
// of the longest CONTIGUOUS prefix of completed seeds along with the
// prefix length: the report covers exactly the programs with seeds in
// [startSeed, startSeed+done), merged in seed order. Because each
// program's report is deterministic per (cfg, seed), resuming with
// RunContext(ctx, cfg, n-done, startSeed+done) and folding the two
// reports with Add yields a Report byte-identical to an uninterrupted
// Run(cfg, n, startSeed) — the property TestRunContextPrefixResume
// pins. err is the context's error when the run was cut short, nil
// when all n programs completed (even if ctx was cancelled after the
// last one finished).
func RunContext(ctx context.Context, cfg Config, n int, startSeed int64) (Report, int, error) {
	cfg = cfg.orDefault()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := NewSampler()
		var shard *monitor.FlightShard
		if cfg.Flight != nil {
			shard = cfg.Flight.Shard(0)
		}
		var rep Report
		for i := 0; i < n; i++ {
			if cancelled(ctx) {
				return rep, i, ctx.Err()
			}
			seed := startSeed + int64(i)
			r, ok := checkProgram(ctx, cfg, s, nil, shard, Gen(cfg.Gen, seed), seed)
			if !ok {
				return rep, i, ctx.Err()
			}
			rep.Add(r)
		}
		return rep, n, nil
	}

	var sinkMu *sync.Mutex
	if len(cfg.Sinks) > 0 {
		sinkMu = new(sync.Mutex)
	}
	reports := make([]Report, n)
	complete := make([]bool, n) // written pre-wg.Done, read post-wg.Wait
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSampler()
			var shard *monitor.FlightShard
			if cfg.Flight != nil {
				shard = cfg.Flight.Shard(w)
			}
			for {
				if cancelled(ctx) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				seed := startSeed + int64(i)
				reports[i], complete[i] = checkProgram(ctx, cfg, s, sinkMu, shard, Gen(cfg.Gen, seed), seed)
			}
		}(w)
	}
	wg.Wait()

	done := 0
	for done < n && complete[done] {
		done++
	}
	var rep Report
	for i := 0; i < done; i++ {
		rep.Add(reports[i])
	}
	if done < n {
		return rep, done, ctx.Err()
	}
	return rep, n, nil
}

func sameOutcomes(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for o := range a {
		if !b[o] {
			return false
		}
	}
	return true
}
