package fuzz

import (
	"flag"
	"fmt"
	"testing"

	"tbtso/internal/tso"
)

var pinGen = flag.Bool("pin.gen", false, "print the rngpin golden table instead of checking it")

// pinGolden is the pre-interpreter goroutine engine's ground truth,
// captured at the commit before the direct-execution engine landed.
type pinEntry struct {
	progSeed int64
	delta    uint64
	machSeed int64
	outcome  string
}

var pinGolden = []pinEntry{
	{18, 0, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=4 T1:r2=3 T1:r3=0 T2:r0=0 T2:r1=2 T2:r2=0 T2:r3=0"},
	{18, 0, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=4 T1:r2=3 T1:r3=0 T2:r0=0 T2:r1=2 T2:r2=0 T2:r3=0"},
	{18, 3, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=4 T1:r2=3 T1:r3=0 T2:r0=0 T2:r1=2 T2:r2=0 T2:r3=0"},
	{18, 3, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=4 T1:r2=3 T1:r3=0 T2:r0=0 T2:r1=2 T2:r2=0 T2:r3=0"},
	{22, 0, 1, "T0:r0=0 T0:r1=0 T0:r2=2 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0"},
	{22, 0, 7, "T0:r0=0 T0:r1=0 T0:r2=2 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0"},
	{22, 3, 1, "T0:r0=0 T0:r1=2 T0:r2=3 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0"},
	{22, 3, 7, "T0:r0=0 T0:r1=2 T0:r2=3 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0"},
	{23, 0, 1, "T0:r0=0 T0:r1=1 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{23, 0, 7, "T0:r0=0 T0:r1=1 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{23, 3, 1, "T0:r0=0 T0:r1=1 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{23, 3, 7, "T0:r0=0 T0:r1=1 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{26, 0, 1, "T0:r0=0 T0:r1=4 T0:r2=4 T0:r3=0 T1:r0=2 T1:r1=4 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{26, 0, 7, "T0:r0=0 T0:r1=4 T0:r2=4 T0:r3=0 T1:r0=2 T1:r1=4 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{26, 3, 1, "T0:r0=0 T0:r1=4 T0:r2=4 T0:r3=0 T1:r0=2 T1:r1=4 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{26, 3, 7, "T0:r0=3 T0:r1=4 T0:r2=4 T0:r3=0 T1:r0=2 T1:r1=4 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{27, 0, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=1 T1:r1=0 T1:r2=0 T1:r3=0"},
	{27, 0, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=1 T1:r1=0 T1:r2=0 T1:r3=0"},
	{27, 3, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=1 T1:r1=0 T1:r2=0 T1:r3=0"},
	{27, 3, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=1 T1:r1=0 T1:r2=0 T1:r3=0"},
	{30, 0, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=3 T2:r1=0 T2:r2=0 T2:r3=0"},
	{30, 0, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{30, 3, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=3 T2:r1=0 T2:r2=0 T2:r3=0"},
	{30, 3, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{35, 0, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0"},
	{35, 0, 7, "T0:r0=3 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0"},
	{35, 3, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0"},
	{35, 3, 7, "T0:r0=3 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0"},
	{43, 0, 1, "T0:r0=0 T0:r1=2 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=2 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{43, 0, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=2 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{43, 3, 1, "T0:r0=0 T0:r1=2 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=2 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{43, 3, 7, "T0:r0=0 T0:r1=2 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=2 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{51, 0, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=1 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{51, 0, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{51, 3, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=1 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{51, 3, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{54, 0, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=1 T3:r1=0 T3:r2=0 T3:r3=0"},
	{54, 0, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=1 T3:r1=0 T3:r2=0 T3:r3=0"},
	{54, 3, 1, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=1 T3:r1=0 T3:r2=0 T3:r3=0"},
	{54, 3, 7, "T0:r0=0 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=1 T3:r1=0 T3:r2=0 T3:r3=0"},
	{59, 0, 1, "T0:r0=0 T0:r1=1 T0:r2=2 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{59, 0, 7, "T0:r0=0 T0:r1=1 T0:r2=2 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=3 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=0 T3:r2=0 T3:r3=0"},
	{59, 3, 1, "T0:r0=0 T0:r1=1 T0:r2=2 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=1 T3:r2=0 T3:r3=0"},
	{59, 3, 7, "T0:r0=0 T0:r1=1 T0:r2=2 T0:r3=0 T1:r0=0 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=3 T2:r1=0 T2:r2=0 T2:r3=0 T3:r0=0 T3:r1=1 T3:r2=0 T3:r3=0"},
	{61, 0, 1, "T0:r0=4 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=3 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{61, 0, 7, "T0:r0=4 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=3 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{61, 3, 1, "T0:r0=4 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=3 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
	{61, 3, 7, "T0:r0=4 T0:r1=0 T0:r2=0 T0:r3=0 T1:r0=3 T1:r1=0 T1:r2=0 T1:r3=0 T2:r0=0 T2:r1=0 T2:r2=0 T2:r3=0"},
}

// pinRun executes one DrainRandom machine sample exactly the way the
// differential driver does, so the golden table below pins the seeded
// scheduler's RNG draw stream: any change to the order or number of
// draws the machine consumes under the random drain policy shows up
// here as a changed outcome.
func pinRun(t *testing.T, progSeed int64, delta uint64, machSeed int64) string {
	t.Helper()
	p := Gen(GenConfig{}, progSeed)
	out, err := RunOnMachine(p, MachineRun{Delta: delta, Policy: tso.DrainRandom, Seed: machSeed})
	if err != nil {
		t.Fatalf("seed %d Δ=%d machSeed %d: %v", progSeed, delta, machSeed, err)
	}
	return out
}

// TestRandomPolicySeedStreamPinned asserts that (seed → outcome) pairs
// for DrainRandom runs are exactly what they were before the
// direct-execution engine landed: the RNG draw stream documented in
// docs/PERF.md (per tick: one scheduling permutation, then a stall draw
// per candidate when StallProb > 0, with the per-buffer drain coin
// flips preceding the permutation) is consumed identically by the old
// and new schedulers whenever the random policy is in play. The golden
// outcomes were captured from the pre-interpreter goroutine engine.
func TestRandomPolicySeedStreamPinned(t *testing.T) {
	for _, g := range pinGolden {
		got := pinRun(t, g.progSeed, g.delta, g.machSeed)
		if got != g.outcome {
			t.Errorf("Gen seed %d Δ=%d machSeed %d: outcome %q, pinned %q",
				g.progSeed, g.delta, g.machSeed, got, g.outcome)
		}
	}
}

// TestPinGoldenGenerate regenerates the golden table source; run with
//
//	go test ./internal/fuzz -run TestPinGoldenGenerate -v -pin.gen
//
// and paste the output ONLY when an intended scheduler change is
// documented in docs/PERF.md.
func TestPinGoldenGenerate(t *testing.T) {
	if !*pinGen {
		t.Skip("pass -pin.gen to print the golden table")
	}
	for _, progSeed := range []int64{18, 22, 23, 26, 27, 30, 35, 43, 51, 54, 59, 61} {
		for _, delta := range []uint64{0, 3} {
			for _, machSeed := range []int64{1, 7} {
				out := pinRun(t, progSeed, delta, machSeed)
				fmt.Printf("\t{%d, %d, %d, %q},\n", progSeed, delta, machSeed, out)
			}
		}
	}
}
