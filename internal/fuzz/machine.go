package fuzz

import (
	"fmt"

	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

// MachineRun names one sampled execution of a program on the clocked
// abstract machine: the machine's Δ in ticks, the drain policy, and the
// scheduler seed. Together with the program it is the full replay
// recipe for a sampled outcome.
type MachineRun struct {
	Delta  uint64
	Policy tso.DrainPolicy
	Seed   int64
}

// MachineDelta maps a fuzz sweep Δ (checker transitions) to the
// machine's Δ (ticks): the identity, with 0 meaning unbounded on both
// sides. The two units differ — CoverDelta is what makes the
// containment check sound despite that.
func MachineDelta(delta int) uint64 { return uint64(delta) }

// CoverDelta returns a checker Δ (in transitions) that provably admits
// every behaviour of the clocked machine running p at machDelta ticks.
//
// The argument: the machine executes at most one action per thread per
// tick (ParallelDrains off), and every machine action that changes
// model-visible state — store, load, fence completion, RMW, dequeue,
// or a wait-loop clock read — maps to at most one checker transition.
// A store enqueued at tick t is committed by tick t+machDelta (the
// machine's commit-time check enforces this), so at most
// (machDelta+1)·threads transitions separate its enqueue from its
// commit; the checker's ageing starts the entry at age 1, so a bound of
// (machDelta+1)·threads + 2 slack can never force a dequeue the
// machine performed later. Larger checker Δ only ADDS admissible
// behaviours, so the machine's sample set is contained in the cover
// exploration's outcome set whenever both models are correct.
// machDelta = 0 (unbounded TSO) covers exactly at checker Δ = 0.
func CoverDelta(p mc.Program, machDelta uint64) int {
	if machDelta == 0 {
		return 0
	}
	return int(machDelta+1)*len(p.Threads) + 2
}

// machineConfig is the machine configuration every sampled run uses,
// on either engine — keeping the two construction sites identical is
// part of the engine-equivalence argument (docs/PERF.md).
func machineConfig(run MachineRun, sinks []tso.Sink) tso.Config {
	cfg := tso.Config{
		Delta:  run.Delta,
		Policy: run.Policy,
		Seed:   run.Seed,
		Sinks:  sinks,
	}
	if run.Delta > 0 {
		// Force dequeues as late as the bound allows (margin 1) so
		// small Δ actually exercises buffering; the default margin of
		// 16 would make Δ ≤ 16 behave like an eager write-through
		// machine. Forced drains ignore the memory lock, so a margin
		// of 1 cannot overrun the bound.
		cfg.DrainMargin = 1
	}
	return cfg
}

// Sampler is a reusable direct-execution context: one clocked machine
// plus compiled-program and register scratch, reused across every run
// of a campaign. A Sampler executes checker programs on the machine's
// direct-execution engine (tso.ExecProgram) — no goroutines, no
// channels, zero steady-state allocation — and is the hot path of
// fuzz campaigns and the sim benchmark figure. Not safe for concurrent
// use; the parallel campaign driver gives each worker its own.
type Sampler struct {
	m    *tso.Machine
	prog tso.Prog
	ops  []tso.ProgOp // backing storage for prog.Threads
	regs [][]tso.Word
	ints [][]int
	buf  []byte // outcome formatting scratch
}

// NewSampler returns an empty sampler; the first Run sizes it.
func NewSampler() *Sampler {
	return &Sampler{m: tso.New(tso.Config{})}
}

// compile translates p into the machine's program vocabulary with
// variable v at machine address base+v, reusing the sampler's op
// storage. The mapping mirrors RunOnMachineGoroutine's Thread calls
// op for op: St → Store, Ld → Load, Fence → Fence, RMW(a,v,r) →
// FetchAdd (old value into r), Wait(n) → an n-tick clock-polling wait.
func (s *Sampler) compile(p mc.Program, base tso.Addr) {
	total := 0
	for _, th := range p.Threads {
		total += len(th)
	}
	if cap(s.ops) >= total {
		s.ops = s.ops[:total]
	} else {
		s.ops = make([]tso.ProgOp, total)
	}
	if cap(s.prog.Threads) >= len(p.Threads) {
		s.prog.Threads = s.prog.Threads[:len(p.Threads)]
	} else {
		s.prog.Threads = make([][]tso.ProgOp, len(p.Threads))
	}
	next := 0
	for ti, th := range p.Threads {
		start := next
		for _, op := range th {
			po := tso.ProgOp{}
			switch op.Kind {
			case mc.OpStore:
				po = tso.ProgOp{Kind: tso.POpStore, Addr: base + tso.Addr(op.Addr), Val: tso.Word(op.Val)}
			case mc.OpLoad:
				po = tso.ProgOp{Kind: tso.POpLoad, Addr: base + tso.Addr(op.Addr), Reg: op.Reg}
			case mc.OpFence:
				po = tso.ProgOp{Kind: tso.POpFence}
			case mc.OpRMW:
				po = tso.ProgOp{Kind: tso.POpRMW, Addr: base + tso.Addr(op.Addr), Val: tso.Word(op.Val), Reg: op.Reg}
			case mc.OpWait:
				po = tso.ProgOp{Kind: tso.POpWait, Val: tso.Word(op.Val)}
			}
			s.ops[next] = po
			next++
		}
		s.prog.Threads[ti] = s.ops[start:next:next]
	}
}

// sizeResults (re)dimensions the register scratch for p.
func (s *Sampler) sizeResults(p mc.Program) {
	for len(s.regs) < len(p.Threads) {
		s.regs = append(s.regs, nil)
		s.ints = append(s.ints, nil)
	}
	for th := 0; th < len(p.Threads); th++ {
		if cap(s.regs[th]) >= p.Regs {
			s.regs[th] = s.regs[th][:p.Regs]
		} else {
			s.regs[th] = make([]tso.Word, p.Regs)
		}
		if cap(s.ints[th]) >= p.Regs {
			s.ints[th] = s.ints[th][:p.Regs]
		} else {
			s.ints[th] = make([]int, p.Regs)
		}
		for r := 0; r < p.Regs; r++ {
			s.regs[th][r] = 0
		}
	}
}

// Sample executes p once on the direct-execution engine and returns
// the outcome in the checker's canonical "T0:r0=1 T1:r0=0" form plus
// the machine's Result (Stats, ticks). Optional sinks stream the
// machine's events exactly as on the goroutine engine.
func (s *Sampler) Sample(p mc.Program, run MachineRun, sinks ...tso.Sink) (string, tso.Result, error) {
	s.m.Reset(machineConfig(run, sinks))
	base := s.m.AllocWords(p.Vars)
	s.compile(p, base)
	s.sizeResults(p)
	res := s.m.ExecProgram(s.prog, s.regs)
	if res.Err != nil {
		return "", res, res.Err
	}
	for th := 0; th < len(p.Threads); th++ {
		for r := 0; r < p.Regs; r++ {
			s.ints[th][r] = int(s.regs[th][r])
		}
	}
	s.buf = mc.AppendOutcome(s.buf[:0], s.ints[:len(p.Threads)])
	return string(s.buf), res, nil
}

// RunOnMachine executes p once on the clocked abstract machine under
// run's configuration and returns the outcome in the checker's
// canonical form. It uses the direct-execution engine; campaigns that
// sample many programs should hold a Sampler and call Sample to reuse
// the machine. Optional sinks stream the machine's events (e.g. an
// obs.Perfetto exporter building a failure trace).
func RunOnMachine(p mc.Program, run MachineRun, sinks ...tso.Sink) (string, error) {
	out, _, err := NewSampler().Sample(p, run, sinks...)
	return out, err
}

// RunOnMachineGoroutine executes p on the goroutine engine — each
// thread a Go closure issuing Thread-handle calls — and returns the
// outcome plus the machine Result. It is the oracle the
// direct-execution engine is differentially pinned against
// (TestEngineEquivalence): same (program, run), byte-identical
// outcome, Stats and event stream.
func RunOnMachineGoroutine(p mc.Program, run MachineRun, sinks ...tso.Sink) (string, tso.Result, error) {
	m := tso.New(machineConfig(run, sinks))
	base := m.AllocWords(p.Vars)

	results := make([][]int, len(p.Threads))
	for th := range p.Threads {
		ops := p.Threads[th]
		results[th] = make([]int, p.Regs)
		//tbtso:ignore escape results is the harness's per-thread outcome capture (indexed by th.ID(), one writer each), read only after Machine.Run returns — not algorithm memory
		m.Spawn(fmt.Sprintf("T%d", th), func(t *tso.Thread) {
			me := results[t.ID()]
			for _, op := range ops {
				switch op.Kind {
				case mc.OpStore:
					t.Store(base+tso.Addr(op.Addr), tso.Word(op.Val))
				case mc.OpLoad:
					me[op.Reg] = int(t.Load(base + tso.Addr(op.Addr)))
				case mc.OpFence:
					t.Fence()
				case mc.OpRMW:
					me[op.Reg] = int(t.FetchAdd(base+tso.Addr(op.Addr), tso.Word(op.Val)))
				case mc.OpWait:
					t.WaitUntil(t.Clock() + uint64(op.Val))
				}
			}
		})
	}
	res := m.Run()
	if res.Err != nil {
		return "", res, res.Err
	}
	return mc.FormatOutcome(results), res, nil
}
