package fuzz

import (
	"fmt"

	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

// MachineRun names one sampled execution of a program on the clocked
// abstract machine: the machine's Δ in ticks, the drain policy, and the
// scheduler seed. Together with the program it is the full replay
// recipe for a sampled outcome.
type MachineRun struct {
	Delta  uint64
	Policy tso.DrainPolicy
	Seed   int64
}

// MachineDelta maps a fuzz sweep Δ (checker transitions) to the
// machine's Δ (ticks): the identity, with 0 meaning unbounded on both
// sides. The two units differ — CoverDelta is what makes the
// containment check sound despite that.
func MachineDelta(delta int) uint64 { return uint64(delta) }

// CoverDelta returns a checker Δ (in transitions) that provably admits
// every behaviour of the clocked machine running p at machDelta ticks.
//
// The argument: the machine executes at most one action per thread per
// tick (ParallelDrains off), and every machine action that changes
// model-visible state — store, load, fence completion, RMW, dequeue,
// or a wait-loop clock read — maps to at most one checker transition.
// A store enqueued at tick t is committed by tick t+machDelta (the
// machine's commit-time check enforces this), so at most
// (machDelta+1)·threads transitions separate its enqueue from its
// commit; the checker's ageing starts the entry at age 1, so a bound of
// (machDelta+1)·threads + 2 slack can never force a dequeue the
// machine performed later. Larger checker Δ only ADDS admissible
// behaviours, so the machine's sample set is contained in the cover
// exploration's outcome set whenever both models are correct.
// machDelta = 0 (unbounded TSO) covers exactly at checker Δ = 0.
func CoverDelta(p mc.Program, machDelta uint64) int {
	if machDelta == 0 {
		return 0
	}
	return int(machDelta+1)*len(p.Threads) + 2
}

// RunOnMachine executes p once on the clocked abstract machine under
// run's configuration and returns the outcome in the checker's
// canonical "T0:r0=1 T1:r0=0" form. Optional sinks stream the machine's
// events (e.g. an obs.Perfetto exporter building a failure trace).
//
// Op mapping: St → Thread.Store, Ld → Thread.Load, Fence →
// Thread.Fence, RMW(a,v,r) → Thread.FetchAdd (old value into r, same
// add-and-return-old semantics as the checker), Wait(n) → an n-tick
// clock-polling wait (the §3 "wait Δ time units" of the flag
// principle, in machine ticks).
func RunOnMachine(p mc.Program, run MachineRun, sinks ...tso.Sink) (string, error) {
	cfg := tso.Config{
		Delta:  run.Delta,
		Policy: run.Policy,
		Seed:   run.Seed,
		Sinks:  sinks,
	}
	if run.Delta > 0 {
		// Force dequeues as late as the bound allows (margin 1) so
		// small Δ actually exercises buffering; the default margin of
		// 16 would make Δ ≤ 16 behave like an eager write-through
		// machine. Forced drains ignore the memory lock, so a margin
		// of 1 cannot overrun the bound.
		cfg.DrainMargin = 1
	}
	m := tso.New(cfg)
	base := m.AllocWords(p.Vars)

	results := make([][]int, len(p.Threads))
	for th := range p.Threads {
		ops := p.Threads[th]
		results[th] = make([]int, p.Regs)
		//tbtso:ignore escape results is the harness's per-thread outcome capture (indexed by th.ID(), one writer each), read only after Machine.Run returns — not algorithm memory
		m.Spawn(fmt.Sprintf("T%d", th), func(t *tso.Thread) {
			me := results[t.ID()]
			for _, op := range ops {
				switch op.Kind {
				case mc.OpStore:
					t.Store(base+tso.Addr(op.Addr), tso.Word(op.Val))
				case mc.OpLoad:
					me[op.Reg] = int(t.Load(base + tso.Addr(op.Addr)))
				case mc.OpFence:
					t.Fence()
				case mc.OpRMW:
					me[op.Reg] = int(t.FetchAdd(base+tso.Addr(op.Addr), tso.Word(op.Val)))
				case mc.OpWait:
					t.WaitUntil(t.Clock() + uint64(op.Val))
				}
			}
		})
	}
	if res := m.Run(); res.Err != nil {
		return "", res.Err
	}
	return mc.FormatOutcome(results), nil
}
