package fuzz

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"tbtso/internal/obs"
	"tbtso/internal/obs/monitor"
)

// TestWriteCheckpointMetered pins the write-amplification
// instrumentation: every metered write populates the byte counter AND
// the latency histogram, so the ROADMAP question "is checkpoint
// encoding worth compacting?" has its data.
func TestWriteCheckpointMetered(t *testing.T) {
	cfg := Config{Deltas: []int{0, 1}, MachSeeds: 1}
	ck := &Checkpoint{
		Kind: CheckpointKind, ConfigHash: cfg.CampaignHash(100, 0, 400),
		N: 100, FirstSeed: 0, NextSeed: 40,
		Programs: 40, Runs: 240,
	}
	path := filepath.Join(t.TempDir(), "c.ckpt")
	reg := obs.NewRegistry()
	const writes = 3
	for i := 0; i < writes; i++ {
		nb, err := WriteCheckpointMetered(path, ck, reg)
		if err != nil || nb <= 0 {
			t.Fatalf("write %d: nb=%d err=%v", i, nb, err)
		}
	}
	c, ok := reg.LookupCounter("fuzz.campaign.checkpoints_written")
	if !ok || c.Load() != writes {
		t.Errorf("checkpoints_written = %v, want %d", c, writes)
	}
	b, ok := reg.LookupCounter("fuzz.campaign.checkpoint_bytes")
	if !ok || b.Load() == 0 {
		t.Error("checkpoint_bytes not populated")
	}
	h, ok := reg.LookupHistogram("fuzz.campaign.checkpoint_write_ns")
	if !ok {
		t.Fatal("checkpoint_write_ns histogram missing")
	}
	if h.Count() != writes || h.Sum() <= 0 {
		t.Errorf("checkpoint_write_ns: count=%d sum=%d, want %d observations", h.Count(), h.Sum(), writes)
	}
	// nil registry skips metering but still writes.
	if _, err := WriteCheckpointMetered(path, ck, nil); err != nil {
		t.Fatalf("nil-registry write: %v", err)
	}
}

func obsTestConfig(workers int) Config {
	return Config{
		Deltas:           []int{0, 1},
		MachSeeds:        1,
		MaxStates:        40_000,
		CrossCheckStates: -1,
		Workers:          workers,
	}
}

// TestCoverageWorkerCountInvariant: the campaign coverage snapshot —
// down to its JSON bytes — must not depend on how the seed space was
// sharded, and an interrupted+resumed pair must merge to the same
// bytes. (TestRunContextPrefixResume covers the struct equality as part
// of the whole report; this pins the marshaled form the checkpoint and
// /coverage serve.)
func TestCoverageWorkerCountInvariant(t *testing.T) {
	const n = 40
	const start = int64(5)
	marshal := func(rep Report) []byte {
		blob, err := json.Marshal(&rep.Coverage)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	base := Run(obsTestConfig(1), n, start)
	baseJSON := marshal(base)
	if base.Coverage.Programs != n || base.Coverage.Runs == 0 {
		t.Fatalf("coverage not populated: %+v", base.Coverage)
	}
	if len(base.Coverage.Cells) == 0 || len(base.Coverage.OpMix) == 0 || len(base.Coverage.Shapes) == 0 {
		t.Fatalf("coverage dimensions empty: %s", baseJSON)
	}

	for _, workers := range []int{2, 4} {
		rep := Run(obsTestConfig(workers), n, start)
		if got := marshal(rep); !bytes.Equal(got, baseJSON) {
			t.Errorf("workers=%d coverage differs:\n got %s\nwant %s", workers, got, baseJSON)
		}
	}

	// Split at an arbitrary boundary and merge: identical bytes again.
	for _, split := range []int{1, 17, n - 1} {
		part := Run(obsTestConfig(3), split, start)
		rest := Run(obsTestConfig(2), n-split, start+int64(split))
		part.Add(rest)
		if got := marshal(part); !bytes.Equal(got, baseJSON) {
			t.Errorf("split=%d merged coverage differs from uninterrupted run", split)
		}
	}
}

// TestFlightDumpWorkerCountInvariant: the merged campaign flight dump
// depends only on which seeds completed — not on worker count, not on
// where a checkpoint/resume split fell (once the resumed segment spans
// the retention window).
func TestFlightDumpWorkerCountInvariant(t *testing.T) {
	const n = 30
	const start = int64(3)
	const retain = 8

	runSegment := func(f *monitor.ShardedFlight, workers, count int, first int64) {
		cfg := obsTestConfig(workers)
		cfg.Flight = f
		rep, done, err := RunContext(nil, cfg, count, first)
		if err != nil || done != count {
			t.Fatalf("segment done=%d err=%v", done, err)
		}
		if rep.Programs != count {
			t.Fatalf("segment programs=%d want %d", rep.Programs, count)
		}
		f.Compact(first + int64(done))
	}
	dump := func(f *monitor.ShardedFlight) string {
		var buf bytes.Buffer
		if err := f.Dump(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	flights := map[string]string{}
	for _, workers := range []int{1, 4} {
		f := monitor.NewShardedFlight(nil, retain)
		f.Begin(start)
		runSegment(f, workers, n, start)
		flights[string(rune('0'+workers))] = dump(f)
	}
	if flights["1"] != flights["4"] {
		t.Errorf("flight dump depends on worker count:\n%s\nvs\n%s", flights["1"], flights["4"])
	}

	doc, err := monitor.ReadCampaignFlightDump(bytes.NewBufferString(flights["1"]))
	if err != nil {
		t.Fatal(err)
	}
	if doc.FirstSeed != start || doc.NextSeed != start+n {
		t.Errorf("dump prefix [%d,%d), want [%d,%d)", doc.FirstSeed, doc.NextSeed, start, start+n)
	}
	if doc.RetainedSeeds != retain || doc.DroppedSeeds != n-retain {
		t.Errorf("retention: retained=%d dropped=%d", doc.RetainedSeeds, doc.DroppedSeeds)
	}
	if doc.TotalEvents == 0 {
		t.Error("campaign recorded no events")
	}
	for i, g := range doc.Groups {
		if g.Seed != start+n-int64(retain)+int64(i) {
			t.Fatalf("group %d has seed %d; dump is not the seed-ordered tail", i, g.Seed)
		}
		if len(g.Runs) == 0 || g.Events == 0 {
			t.Errorf("seed %d group is empty", g.Seed)
		}
		for _, r := range g.Runs {
			if r.Tag == "" {
				t.Errorf("seed %d has an untagged run", g.Seed)
			}
		}
	}

	// Checkpoint/resume split: restore totals, rerun the remainder. The
	// resumed segment (n-split >= retain) re-records the whole retained
	// window, so the final dump is byte-identical.
	const split = 12
	f1 := monitor.NewShardedFlight(nil, retain)
	f1.Begin(start)
	runSegment(f1, 2, split, start)
	ev, viol := f1.Totals()

	f2 := monitor.NewShardedFlight(nil, retain)
	f2.Restore(start, ev, viol)
	f2.Compact(start + split)
	runSegment(f2, 3, n-split, start+split)
	if got := dump(f2); got != flights["1"] {
		t.Errorf("resumed flight dump differs from uninterrupted dump:\n%s\nvs\n%s", got, flights["1"])
	}
}
