package machalg

import (
	"errors"
	"testing"

	"tbtso/internal/mc"
)

// noMiss asserts no outcome of res witnesses an FFHP hazard miss.
func noMiss(t *testing.T, res mc.Result, rounds, readers int, label string) {
	t.Helper()
	for o := range res.Outcomes {
		if MCFFHPMissed(o, rounds, readers) {
			t.Fatalf("%s: hazard miss admitted: %q", label, o)
		}
	}
}

// TestFFHPTwoRoundExhaustive checks two full FFHP Protect+Scan rounds
// — the §4 fence-free hazard pointers — exhaustively: under TBTSO[Δ]
// with an adequate wait the reclaimer's scan can NEVER miss a hazard a
// reader validated, in any round; under plain TSO the miss is real.
func TestFFHPTwoRoundExhaustive(t *testing.T) {
	const delta = 3
	// Two readers, two rounds: every interleaving and drain schedule.
	safe := mc.Explore(MCFFHP(2, 2, delta+1), delta)
	noMiss(t, safe, 2, 2, "TBTSO[3] 2x2")
	if got := len(safe.Outcomes); got != 196 {
		t.Fatalf("outcome set changed: %d outcomes, want 196", got)
	}

	// Plain TSO, same program: the unfenced protect store can hide in
	// the buffer past the scan — the miss witness must appear.
	unsafe := mc.Explore(MCFFHP(2, 2, delta+1), 0)
	miss := 0
	for o := range unsafe.Outcomes {
		if MCFFHPMissed(o, 2, 2) {
			miss++
		}
	}
	if miss == 0 {
		t.Fatalf("plain TSO admits no hazard miss — model too strong (%d outcomes)", len(unsafe.Outcomes))
	}
	if got := len(unsafe.Outcomes); got != 576 {
		t.Fatalf("TSO outcome set changed: %d outcomes, want 576", got)
	}
}

// TestFFHPThreeRoundExhaustiveScale is the scale headline: three
// Protect+Scan rounds between two readers and a reclaimer — 531,248
// canonical states, fully enumerated by the parallel engine in under a
// second, while the reference explorer cannot even cover a 400k-state
// budget in several seconds (see the truncation check below). This
// fragment was beyond exhaustive reach before the parallel engine.
func TestFFHPThreeRoundExhaustiveScale(t *testing.T) {
	const delta = 3
	p := MCFFHP(3, 2, delta+1)
	res, err := mc.ExploreParallel(p, delta, mc.Options{MaxStates: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	noMiss(t, res, 3, 2, "TBTSO[3] 3x2")
	if got := len(res.Outcomes); got != 5041 {
		t.Fatalf("outcome set changed: %d outcomes, want 5041", got)
	}
	if res.States < 500_000 {
		t.Fatalf("states = %d, want the full ≥5e5-state space", res.States)
	}

	if testing.Short() {
		return
	}
	// The reference explorer drowns: a 300k-state budget — well under
	// this fragment's canonical space, far under its unreduced one —
	// truncates.
	if _, err := mc.ExploreSequentialBounded(p, delta, 300_000); !errors.Is(err, mc.ErrTruncated) {
		t.Fatalf("reference explorer unexpectedly covered the space (err=%v)", err)
	}
}

// TestFFBLRevocationExhaustiveDeltaSweep proves the FFBL
// acquire/revoke/re-bias fragment's mutual exclusion at every
// Δ ∈ {1..4} with the matching adequate wait: the fence-free owner
// and a revoker can never both conclude they hold the lock.
func TestFFBLRevocationExhaustiveDeltaSweep(t *testing.T) {
	for delta := 1; delta <= 4; delta++ {
		res := mc.Explore(MCFFBL(2, delta+1), delta)
		for o := range res.Outcomes {
			if MCFFBLOverlap(o, 2) {
				t.Fatalf("TBTSO[%d]: mutual exclusion violated: %q", delta, o)
			}
		}
		if got := len(res.Outcomes); got != 20 {
			t.Fatalf("Δ=%d: outcome set changed: %d outcomes, want 20", delta, got)
		}
	}

	// Plain TSO: the overlap is admitted — the bound is load-bearing.
	res := mc.Explore(MCFFBL(2, 5), 0)
	overlap := 0
	for o := range res.Outcomes {
		if MCFFBLOverlap(o, 2) {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("plain TSO admits no owner/revoker overlap — model too strong")
	}

	// An inadequate wait under a large Δ re-opens the window.
	res = mc.Explore(MCFFBL(1, 1), 10)
	found := false
	for o := range res.Outcomes {
		if MCFFBLOverlap(o, 1) {
			found = true
		}
	}
	if !found {
		t.Fatal("TBTSO[10] with wait=1: overlap should be admitted")
	}
}

// TestFFBLRevocationExhaustiveScale: four identical revokers against
// the fence-free owner — ~248k canonical states (symmetry folds the
// revokers), fully enumerated in well under a second; the reference
// explorer truncates a 300k budget on the unreduced space. The second
// previously-out-of-reach fragment.
func TestFFBLRevocationExhaustiveScale(t *testing.T) {
	const delta = 2
	p := MCFFBL(4, delta+1)
	res, err := mc.ExploreParallel(p, delta, mc.Options{MaxStates: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for o := range res.Outcomes {
		if MCFFBLOverlap(o, 4) {
			t.Fatalf("TBTSO[%d]: mutual exclusion violated: %q", delta, o)
		}
	}
	if got := len(res.Outcomes); got != 816 {
		t.Fatalf("outcome set changed: %d outcomes, want 816", got)
	}
	if res.States < 200_000 {
		t.Fatalf("states = %d, want the full ≥2e5-state space", res.States)
	}
	// Re-bias visibility: some outcome has the owner observing the
	// transferred bias word.
	rebias := false
	for o := range res.Outcomes {
		if regs := parseOutcome(o); regs[0][1] == 2 {
			rebias = true
			break
		}
	}
	if !rebias {
		t.Fatal("no outcome shows the owner observing the re-bias")
	}

	if testing.Short() {
		return
	}
	if _, err := mc.ExploreSequentialBounded(p, delta, 300_000); !errors.Is(err, mc.ErrTruncated) {
		t.Fatalf("reference explorer unexpectedly covered the space (err=%v)", err)
	}
}
