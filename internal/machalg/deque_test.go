package machalg

import (
	"testing"

	"tbtso/internal/tso"
)

// dequeHarvest is a thin alias of the shared harvest harness in
// demo.go, kept so the tests read naturally.
func dequeHarvest(cfg tso.Config, waitDelta bool, nItems, thieves int) (map[tso.Word]int, tso.Result) {
	return dequeRun(cfg, waitDelta, nItems, thieves)
}

// checkExactOnce verifies values 1..n appear exactly once.
func checkExactOnce(t *testing.T, got map[tso.Word]int, n int) (dup, lost int) {
	t.Helper()
	for v := tso.Word(1); v <= tso.Word(n); v++ {
		switch got[v] {
		case 1:
		case 0:
			lost++
		default:
			dup++
		}
	}
	return dup, lost
}

func TestDequeSequentialLIFO(t *testing.T) {
	m := tso.New(tso.Config{Policy: tso.DrainRandom, Seed: 1})
	d := NewDeque(m, 8, 0, false)
	var order []tso.Word
	m.Spawn("owner", func(th *tso.Thread) {
		for v := tso.Word(1); v <= 5; v++ {
			if !d.Push(th, v) {
				t.Error("push failed")
			}
		}
		for i := 0; i < 5; i++ {
			v, ok := d.Take(th)
			if !ok {
				t.Error("take failed")
			}
			order = append(order, v)
		}
		if _, ok := d.Take(th); ok {
			t.Error("take from empty deque succeeded")
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	want := []tso.Word{5, 4, 3, 2, 1}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("LIFO order broken: %v", order)
		}
	}
}

func TestDequeFullness(t *testing.T) {
	m := tso.New(tso.Config{Policy: tso.DrainEager, Seed: 1})
	d := NewDeque(m, 4, 0, false)
	m.Spawn("owner", func(th *tso.Thread) {
		for v := tso.Word(1); v <= 4; v++ {
			if !d.Push(th, v) {
				t.Error("push to non-full deque failed")
			}
		}
		if d.Push(th, 99) {
			t.Error("push to full deque succeeded")
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
}

func TestDequeSoundOnTBTSO(t *testing.T) {
	// The TBTSO steal protocol: every item obtained exactly once, for
	// every seed, policy, and thief count — with the owner fast path
	// entirely fence-free.
	for _, policy := range []tso.DrainPolicy{tso.DrainAdversarial, tso.DrainRandom} {
		for _, thieves := range []int{1, 2} {
			for seed := int64(0); seed < 8; seed++ {
				cfg := tso.Config{Delta: 200, Policy: policy, Seed: seed, MaxTicks: 4_000_000}
				got, res := dequeHarvest(cfg, true, 40, thieves)
				if res.Err != nil {
					t.Fatalf("policy=%v thieves=%d seed=%d: %v", policy, thieves, seed, res.Err)
				}
				if dup, lost := checkExactOnce(t, got, 40); dup != 0 || lost != 0 {
					t.Fatalf("policy=%v thieves=%d seed=%d: %d duplicated, %d lost items",
						policy, thieves, seed, dup, lost)
				}
			}
		}
	}
}

func TestDequeUnsoundWithoutDeltaWait(t *testing.T) {
	// Remove the thief's Δ wait on an unbounded-TSO machine: the
	// owner's buffered bottom stores let a thief steal an item the
	// owner already took. Some seed must show a duplicate or lost item.
	// (The drain policy is random, not adversarial: with purely
	// adversarial drains the owner's pushes never commit at all and
	// thieves see an empty deque — no race window. The failure needs
	// an old, high bottom in memory while a newer decrement is still
	// buffered, which random draining produces.)
	for seed := int64(0); seed < 60; seed++ {
		cfg := tso.Config{Delta: 0, Policy: tso.DrainRandom, Seed: seed, MaxTicks: 4_000_000}
		got, res := dequeHarvest(cfg, false, 40, 2)
		if res.Err != nil {
			continue
		}
		if dup, lost := checkExactOnce(t, got, 40); dup != 0 || lost != 0 {
			return // reproduced the classic Chase-Lev TSO failure
		}
	}
	t.Fatal("fence-free take + waitless steal never misbehaved on plain TSO")
}

func TestDequeUnsoundUnderTSOS(t *testing.T) {
	// The §8 contrast made executable: a SPATIAL bound (TSO[S], buffer
	// capacity 2) does not fix the waitless protocol — an owner that
	// stops storing keeps its bottom update buffered indefinitely.
	for seed := int64(0); seed < 60; seed++ {
		cfg := tso.Config{Delta: 0, BufferCap: 2, Policy: tso.DrainAdversarial, Seed: seed, MaxTicks: 4_000_000}
		got, res := dequeHarvest(cfg, false, 40, 2)
		if res.Err != nil {
			continue
		}
		if dup, lost := checkExactOnce(t, got, 40); dup != 0 || lost != 0 {
			return // spatial bounding did not help
		}
	}
	t.Fatal("waitless steal never misbehaved under TSO[S]")
}

func TestDequeSoundOnTBTSOWithSmallBuffers(t *testing.T) {
	// Temporal and spatial bounds compose fine.
	cfg := tso.Config{Delta: 150, BufferCap: 2, Policy: tso.DrainAdversarial, Seed: 5, MaxTicks: 4_000_000}
	got, res := dequeHarvest(cfg, true, 30, 2)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if dup, lost := checkExactOnce(t, got, 30); dup != 0 || lost != 0 {
		t.Fatalf("%d duplicated, %d lost", dup, lost)
	}
}
