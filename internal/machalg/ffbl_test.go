package machalg

import (
	"sort"
	"sync"
	"testing"

	"tbtso/internal/tso"
)

// csRecorder collects critical-section intervals in machine ticks. The
// recording uses only clock reads, which do not drain store buffers, so
// the detector cannot mask an exclusion violation.
type csRecorder struct {
	mu        sync.Mutex
	intervals [][2]uint64
}

func (r *csRecorder) add(enter, exit uint64) {
	r.mu.Lock()
	r.intervals = append(r.intervals, [2]uint64{enter, exit})
	r.mu.Unlock()
}

// overlap returns a pair of overlapping intervals, if any.
func (r *csRecorder) overlap() ([2]uint64, [2]uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	iv := append([][2]uint64(nil), r.intervals...)
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	for i := 1; i < len(iv); i++ {
		if iv[i][0] < iv[i-1][1] {
			return iv[i-1], iv[i], true
		}
	}
	return [2]uint64{}, [2]uint64{}, false
}

// biasedLock abstracts the two machine biased locks for shared tests.
type biasedLock interface {
	OwnerLock(*tso.Thread)
	OwnerUnlock(*tso.Thread)
	OtherLock(*tso.Thread)
	OtherUnlock(*tso.Thread)
}

// runBiasedWorkload drives an owner and `others` non-owners through
// `ownerIters`/`otherIters` acquisitions each and returns the recorder
// and run result.
func runBiasedWorkload(cfg tso.Config, mk func(m *tso.Machine) biasedLock, others, ownerIters, otherIters, csWork int) (*csRecorder, tso.Result) {
	m := tso.New(cfg)
	lk := mk(m)
	rec := &csRecorder{}
	body := func(th *tso.Thread) {
		enter := th.Clock()
		for i := 0; i < csWork; i++ {
			th.Yield()
		}
		exit := th.Clock()
		rec.add(enter, exit)
	}
	m.Spawn("owner", func(th *tso.Thread) {
		for i := 0; i < ownerIters; i++ {
			lk.OwnerLock(th)
			body(th)
			lk.OwnerUnlock(th)
			th.Yield()
		}
		th.Fence() // flush trailing unlock so waiting non-owners proceed
	})
	for o := 0; o < others; o++ {
		m.Spawn("other", func(th *tso.Thread) {
			for i := 0; i < otherIters; i++ {
				lk.OtherLock(th)
				body(th)
				lk.OtherUnlock(th)
				th.Yield()
			}
			th.Fence()
		})
	}
	res := m.Run()
	return rec, res
}

func TestFFBLMutualExclusionOnTBTSO(t *testing.T) {
	// §5 claim: the fence-free biased lock provides mutual exclusion on
	// TBTSO[Δ], with and without echoing, under every drain policy.
	const delta = 300
	for _, echo := range []bool{true, false} {
		for _, policy := range []tso.DrainPolicy{tso.DrainAdversarial, tso.DrainRandom} {
			for seed := int64(0); seed < 5; seed++ {
				cfg := tso.Config{Delta: delta, Policy: policy, Seed: seed, MaxTicks: 6_000_000}
				rec, res := runBiasedWorkload(cfg, func(m *tso.Machine) biasedLock {
					return NewFFBL(m, delta, echo)
				}, 1, 40, 12, 10)
				if res.Err != nil {
					t.Fatalf("echo=%v policy=%v seed=%d: %v", echo, policy, seed, res.Err)
				}
				if a, b, bad := rec.overlap(); bad {
					t.Fatalf("echo=%v policy=%v seed=%d: overlapping critical sections %v and %v", echo, policy, seed, a, b)
				}
			}
		}
	}
}

func TestFFBLMutualExclusionMultipleNonOwners(t *testing.T) {
	const delta = 300
	cfg := tso.Config{Delta: delta, Policy: tso.DrainRandom, Seed: 9, MaxTicks: 8_000_000}
	rec, res := runBiasedWorkload(cfg, func(m *tso.Machine) biasedLock {
		return NewFFBL(m, delta, true)
	}, 3, 40, 8, 10)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if a, b, bad := rec.overlap(); bad {
		t.Fatalf("overlapping critical sections %v and %v", a, b)
	}
}

func TestFFBLUnsoundOnPlainTSO(t *testing.T) {
	// The same lock on an unbounded-TSO machine: with Δ = 0 the
	// non-owner's wait degenerates and the owner's buffered flag is
	// invisible, so both threads enter together. The adversarial policy
	// must expose overlapping critical sections within a few seeds.
	for seed := int64(0); seed < 20; seed++ {
		// Unbounded TSO also breaks the lock's liveness (a buffered
		// L.unlock can stay invisible forever), so runs may abort at
		// MaxTicks; the exclusion violation is recorded either way.
		cfg := tso.Config{Delta: 0, Policy: tso.DrainAdversarial, Seed: seed, MaxTicks: 200_000}
		rec, _ := runBiasedWorkload(cfg, func(m *tso.Machine) biasedLock {
			return NewFFBL(m, 0, false)
		}, 1, 40, 12, 10)
		if _, _, bad := rec.overlap(); bad {
			return // reproduced: fence-free biased locking needs the Δ bound
		}
	}
	t.Fatal("FFBL with Δ=0 on plain TSO never violated exclusion — demo miswired or machine too strong")
}

func TestBaselineBiasedSafeOnPlainTSO(t *testing.T) {
	// The fenced baseline (Figure 3 top) is safe even on unbounded TSO.
	for seed := int64(0); seed < 5; seed++ {
		cfg := tso.Config{Delta: 0, Policy: tso.DrainAdversarial, Seed: seed, MaxTicks: 6_000_000}
		rec, res := runBiasedWorkload(cfg, func(m *tso.Machine) biasedLock {
			return NewBaselineBiased(m)
		}, 1, 40, 12, 10)
		if res.Err != nil {
			t.Fatalf("seed=%d: %v", seed, res.Err)
		}
		if a, b, bad := rec.overlap(); bad {
			t.Fatalf("seed=%d: overlapping critical sections %v and %v", seed, a, b)
		}
	}
}

func TestEchoCutsNonOwnerWait(t *testing.T) {
	// §5.1/§7.2: with echoing, the non-owner stops waiting as soon as
	// the owner's echo lands, so the run finishes far sooner than the
	// no-echo variant, which always waits the full Δ per acquisition.
	const delta = 1500
	run := func(echo bool) uint64 {
		cfg := tso.Config{Delta: delta, Policy: tso.DrainRandom, Seed: 3, MaxTicks: 10_000_000}
		_, res := runBiasedWorkload(cfg, func(m *tso.Machine) biasedLock {
			return NewFFBL(m, delta, echo)
		}, 1, 400, 15, 2)
		if res.Err != nil {
			t.Fatalf("echo=%v: %v", echo, res.Err)
		}
		return res.Ticks
	}
	withEcho, withoutEcho := run(true), run(false)
	if withEcho*2 >= withoutEcho {
		t.Fatalf("echoing did not help: %d ticks with echo vs %d without", withEcho, withoutEcho)
	}
}

func TestNonOwnerProgressWhileOwnerStalled(t *testing.T) {
	// §5 claim: because the slow path is nonblocking (bounded Δ wait
	// rather than a safe point), a non-owner can acquire the lock even
	// when the owner is scheduled out. The owner here stalls without
	// ever reaching any cooperative point.
	const delta = 300
	const otherIters = 10
	cfg := tso.Config{Delta: delta, Policy: tso.DrainAdversarial, Seed: 4,
		// Generous but finite: if the non-owner blocked on the stalled
		// owner, the run would blow through this budget.
		MaxTicks: 40 * delta * otherIters}
	m := tso.New(cfg)
	lk := NewFFBL(m, delta, true)
	acquired := 0
	m.Spawn("owner", func(th *tso.Thread) {
		lk.OwnerLock(th)
		th.Yield()
		lk.OwnerUnlock(th)
		// Stall: the owner never synchronizes again.
		for i := 0; i < 20*delta; i++ {
			th.Yield()
		}
	})
	m.Spawn("other", func(th *tso.Thread) {
		for i := 0; i < otherIters; i++ {
			lk.OtherLock(th)
			acquired++
			lk.OtherUnlock(th)
		}
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if acquired != otherIters {
		t.Fatalf("non-owner acquired %d/%d times with a stalled owner", acquired, otherIters)
	}
}

func TestFlagPacking(t *testing.T) {
	for _, v := range []tso.Word{0, 1, 7, 1 << 40} {
		for _, f := range []tso.Word{0, 1} {
			gv, gf := unpackFlag(packFlag(v, f))
			if gv != v || gf != f {
				t.Fatalf("pack/unpack(%d,%d) = (%d,%d)", v, f, gv, gf)
			}
		}
	}
}
