package machalg

import (
	"sync"
	"sync/atomic"

	"tbtso/internal/tso"
)

// ReclaimRaceOutcome reports one run of the §4 directed reclamation
// race (see ReclaimRaceDemo).
type ReclaimRaceOutcome struct {
	UseAfterFree bool // the reader dereferenced freed memory
	FreedEarly   bool // the node was freed while still protected
	Err          error
}

// ReclaimRaceDemo runs the directed interleaving behind the paper's §4
// argument — a reader protects a node without a fence while a
// reclaimer unlinks, retires, and tries to reclaim it — on a machine
// with the given Δ (0 = plain TSO) and hazard-pointer mode. It is the
// demo twin of the machalg test suite's soundness matrix.
//
// The atomic.Bool handshakes (validated/released) deliberately live
// OUTSIDE the machine model: they direct the interleaving and must not
// themselves be subject to the store buffering they orchestrate.
//
// Any sinks are attached to the machine, so the run can be traced
// (tbtso-trace -demo reclaim).
//
//tbtso:ignore escape harness handshake flags and the captured outcome struct intentionally bypass the model to direct the schedule; they are not algorithm memory
func ReclaimRaceDemo(delta uint64, mode HPMode, sinks ...tso.Sink) ReclaimRaceOutcome {
	cfg := tso.Config{Delta: delta, Policy: tso.DrainAdversarial, Seed: 1, MaxTicks: 1_000_000, Sinks: sinks}
	m := tso.New(cfg)
	alloc := NewAllocator(m, 4, nodeWords)
	hp := NewHPDomain(m, alloc, mode, 2, 3, 7, delta)
	offerHazardRange(hp, sinks)
	l := NewList(m, hp, alloc)

	node := alloc.Alloc()
	m.SetWord(node+offKey, 1)
	m.SetWord(node+offNext, pack(0, 0))
	m.SetWord(l.head, pack(node, 0))

	var validated, released atomic.Bool
	out := ReclaimRaceOutcome{}

	m.Spawn("reader", func(th *tso.Thread) {
		curW := th.Load(l.head)
		cur, _ := unpack(curW)
		hp.Protect(th, 1, cur)
		if th.Load(l.head) != pack(cur, 0) {
			validated.Store(true)
			return
		}
		validated.Store(true)
		for !released.Load() {
			th.Yield()
		}
		_ = th.Load(cur + offKey) // the dereference at risk
		hp.Clear(th, 1)
	})
	m.Spawn("reclaimer", func(th *tso.Thread) {
		for !validated.Load() {
			th.Yield()
		}
		if !th.CAS(l.head, pack(node, 0), pack(0, 0)) {
			released.Store(true)
			return
		}
		hp.Retire(th, node)
		deadline := th.Clock() + delta + 200
		for {
			hp.Reclaim(th)
			if alloc.LiveObjects() == 0 {
				out.FreedEarly = true
				break
			}
			if th.Clock() > deadline {
				break
			}
		}
		released.Store(true)
	})
	res := m.Run()
	out.Err = res.Err
	for _, v := range alloc.Violations() {
		if v.Kind == "load" {
			out.UseAfterFree = true
		}
	}
	return out
}

// DequeOutcome reports one configuration of the §8 work-stealing demo.
type DequeOutcome struct {
	Duplicated int
	Lost       int
	SeedsTried int
}

// DequeDemo runs the fence-free work-stealing harvest across seeds on a
// machine with the given temporal bound Δ (0 = unbounded), spatial
// bound S (0 = unbounded buffers, the TSO[S] knob), and steal protocol
// (waitDelta). It stops at the first seed exhibiting a duplicate or
// lost item, or after `seeds` clean seeds.
func DequeDemo(delta uint64, bufferCap int, waitDelta bool, seeds int) DequeOutcome {
	out := DequeOutcome{}
	for seed := int64(0); seed < int64(seeds); seed++ {
		out.SeedsTried++
		policy := tso.DrainRandom
		if bufferCap > 0 {
			policy = tso.DrainAdversarial
		}
		cfg := tso.Config{Delta: delta, BufferCap: bufferCap, Policy: policy, Seed: seed, MaxTicks: 4_000_000}
		got, res := dequeRun(cfg, waitDelta, 40, 2)
		if res.Err != nil {
			continue
		}
		dup, lost := 0, 0
		for v := tso.Word(1); v <= 40; v++ {
			switch got[v] {
			case 1:
			case 0:
				lost++
			default:
				dup++
			}
		}
		if dup != 0 || lost != 0 {
			out.Duplicated, out.Lost = dup, lost
			return out
		}
	}
	return out
}

// DequeOnce runs a single seed of the work-stealing harvest with the
// given sinks attached (tbtso-trace -demo deque). The returned outcome
// reports duplicates/losses for that one seed.
func DequeOnce(delta uint64, bufferCap int, waitDelta bool, seed int64, sinks ...tso.Sink) DequeOutcome {
	out := DequeOutcome{SeedsTried: 1}
	policy := tso.DrainRandom
	if bufferCap > 0 {
		policy = tso.DrainAdversarial
	}
	cfg := tso.Config{Delta: delta, BufferCap: bufferCap, Policy: policy, Seed: seed, MaxTicks: 4_000_000, Sinks: sinks}
	got, res := dequeRun(cfg, waitDelta, 40, 2)
	if res.Err != nil {
		return out
	}
	for v := tso.Word(1); v <= 40; v++ {
		switch got[v] {
		case 1:
		case 0:
			out.Lost++
		default:
			out.Duplicated++
		}
	}
	return out
}

// dequeRun is the shared harvest harness (also used by the tests). The
// done flag and the mutex-protected harvest map are host-side harness
// state, deliberately outside the machine model.
//
//tbtso:ignore escape the done handshake and mutex-protected harvest map are harness bookkeeping, not algorithm memory; item flow itself goes through machine words
func dequeRun(cfg tso.Config, waitDelta bool, nItems, thieves int) (map[tso.Word]int, tso.Result) {
	m := tso.New(cfg)
	d := NewDeque(m, 64, cfg.Delta, waitDelta)
	var mu sync.Mutex
	got := map[tso.Word]int{}
	record := func(v tso.Word) {
		mu.Lock()
		got[v]++
		mu.Unlock()
	}
	var done atomic.Bool
	m.Spawn("owner", func(th *tso.Thread) {
		defer done.Store(true)
		next := tso.Word(1)
		for next <= tso.Word(nItems) {
			for i := 0; i < 3 && next <= tso.Word(nItems); i++ {
				if d.Push(th, next) {
					next++
				}
			}
			if v, ok := d.Take(th); ok {
				record(v)
			}
		}
		for i := 0; i < nItems+8; i++ {
			if v, ok := d.Take(th); ok {
				record(v)
			}
		}
	})
	for i := 0; i < thieves; i++ {
		m.Spawn("thief", func(th *tso.Thread) {
			for !done.Load() {
				if v, ok := d.Steal(th); ok {
					record(v)
				} else {
					th.Yield()
				}
			}
			for i := 0; i < 8; i++ {
				if v, ok := d.Steal(th); ok {
					record(v)
				}
			}
		})
	}
	res := m.Run()
	top := m.PeekWord(d.top)
	bottom := m.PeekWord(d.bottom)
	for i := top; i != bottom && i-top < 64; i++ {
		got[m.PeekWord(d.slot(i))]++
	}
	return got, res
}
