package machalg

import (
	"testing"

	"tbtso/internal/tso"
)

func TestAllocatorAllocFree(t *testing.T) {
	m := tso.New(tso.Config{Policy: tso.DrainEager, Seed: 1})
	a := NewAllocator(m, 4, nodeWords)
	o1 := a.Alloc()
	o2 := a.Alloc()
	if o1 == 0 || o2 == 0 || o1 == o2 {
		t.Fatalf("bad allocations: %d, %d", o1, o2)
	}
	if o2-o1 != nodeWords {
		t.Fatalf("objects not adjacent: %d, %d", o1, o2)
	}
	a.Free(o1)
	if a.LiveObjects() != 1 {
		t.Fatalf("LiveObjects = %d, want 1", a.LiveObjects())
	}
	o3 := a.Alloc()
	if o3 != o1 {
		t.Fatalf("LIFO freelist should reuse %d, got %d", o1, o3)
	}
	if v := a.Violations(); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	m := tso.New(tso.Config{Seed: 1})
	a := NewAllocator(m, 2, nodeWords)
	a.Alloc()
	a.Alloc()
	if got := a.Alloc(); got != 0 {
		t.Fatalf("exhausted pool returned %d, want 0", got)
	}
}

func TestAllocatorDoubleFreeDetected(t *testing.T) {
	m := tso.New(tso.Config{Seed: 1})
	a := NewAllocator(m, 2, nodeWords)
	o := a.Alloc()
	a.Free(o)
	a.Free(o)
	v := a.Violations()
	if len(v) != 1 || v[0].Kind != "free" {
		t.Fatalf("double free not detected: %v", v)
	}
}

func TestAllocatorDetectsUseAfterFree(t *testing.T) {
	a := runUAFProgram(t, func(th *tso.Thread, obj tso.Addr, a *Allocator) {
		a.Free(obj)
		_ = th.Load(obj) // load from freed object
	})
	v := a.Violations()
	if len(v) == 0 || v[0].Kind != "load" {
		t.Fatalf("UAF load not detected: %v", v)
	}
}

func TestAllocatorDetectsLateCommit(t *testing.T) {
	// A store buffered before the free that commits after it must be
	// flagged — this is the precise hazard the Δ bound prevents.
	a := runUAFProgram(t, func(th *tso.Thread, obj tso.Addr, a *Allocator) {
		th.Store(obj, 7) // buffered (adversarial policy: never drains early)
		a.Free(obj)
		th.Fence() // forces the buffered store to commit into freed memory
	})
	found := false
	for _, v := range a.Violations() {
		if v.Kind == "commit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("late commit into freed object not detected: %v", a.Violations())
	}
}

func TestAllocatorIgnoresBufferForwardedLoads(t *testing.T) {
	// A load forwarded from the thread's own store buffer does not
	// touch memory and must not be flagged.
	m := tso.New(tso.Config{Policy: tso.DrainAdversarial, Seed: 1})
	a := NewAllocator(m, 2, nodeWords)
	m.Spawn("t", func(th *tso.Thread) {
		obj := a.Alloc()
		th.Store(obj, 7)
		_ = th.Load(obj) // forwarded
		th.Fence()
		a.Free(obj)
	})
	m.Run()
	if v := a.Violations(); len(v) != 0 {
		t.Fatalf("false positive: %v", v)
	}
}

func runUAFProgram(t *testing.T, body func(*tso.Thread, tso.Addr, *Allocator)) *Allocator {
	t.Helper()
	m := tso.New(tso.Config{Policy: tso.DrainAdversarial, Seed: 1})
	a := NewAllocator(m, 2, nodeWords)
	m.Spawn("t", func(th *tso.Thread) {
		obj := a.Alloc()
		th.Fence()
		body(th, obj, a)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	return a
}
