package machalg

import "tbtso/internal/tso"

// Dekker is Dekker's two-thread mutual exclusion algorithm [12], the
// other classic flag-principle algorithm §1 cites. Like Peterson's, it
// needs a fence between raising the flag and reading the other's flag
// on TSO; the unfenced variant exists for the demonstration.
type Dekker struct {
	flags  tso.Addr // flags+0, flags+1
	turn   tso.Addr
	fenced bool
}

// NewDekker allocates the algorithm's shared words.
func NewDekker(m *tso.Machine, fenced bool) *Dekker {
	return &Dekker{flags: m.AllocWords(2), turn: m.AllocWords(1), fenced: fenced}
}

// Lock enters the critical section as thread me (0 or 1).
func (d *Dekker) Lock(th *tso.Thread, me int) {
	other := 1 - me
	th.Store(d.flags+tso.Addr(me), 1)
	if d.fenced {
		th.Fence()
	}
	for th.Load(d.flags+tso.Addr(other)) != 0 {
		if th.Load(d.turn) != tso.Word(me) {
			// Not our turn: back off until it is, then re-raise.
			th.Store(d.flags+tso.Addr(me), 0)
			for th.Load(d.turn) != tso.Word(me) {
				th.Yield()
			}
			th.Store(d.flags+tso.Addr(me), 1)
			if d.fenced {
				th.Fence()
			}
		}
	}
}

// Unlock leaves the critical section, passing the turn.
func (d *Dekker) Unlock(th *tso.Thread, me int) {
	th.Store(d.turn, tso.Word(1-me))
	th.Store(d.flags+tso.Addr(me), 0)
}
