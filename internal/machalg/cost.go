package machalg

import "tbtso/internal/tso"

// CostResult reports the machine-tick cost of list lookups under one
// protection mode.
type CostResult struct {
	Mode       HPMode
	Lookups    int
	TotalTicks uint64
	TicksPerOp float64
	Fences     uint64
	Stores     uint64
}

// LookupCost measures the machine-level fast-path cost of lookups: a
// single thread performs `lookups` random lookups over a prepopulated
// list of `listLen` nodes under the given protection mode, and the
// result reports average machine ticks per operation.
//
// The spawned reader records its result in the captured CostResult;
// that is thread-private host-side output read only after Run returns.
//
//tbtso:ignore escape single measurement thread writes its captured result struct, read only after Machine.Run returns
//
// This is the cost comparison the native benchmarks cannot make
// cleanly (Go's atomic store is itself serializing — caveat C2 in
// EXPERIMENTS.md): on the abstract machine a hazard-pointer publication
// is a plain one-tick store, so the measured gaps isolate exactly what
// the paper's Figure 6 argues — HP pays a fence per node, FFHP pays
// only the store and validation, and the no-protection (RCU-like)
// yardstick pays neither.
func LookupCost(mode HPMode, listLen, lookups int, seed int64) CostResult {
	m := tso.New(tso.Config{
		Delta:  1 << 20, // generous: no forced drains distort costs
		Policy: tso.DrainRandom,
		Seed:   seed,
		// Hardware drains store buffers in parallel with execution;
		// without this the cost model charges each buffered store a
		// thread slot and FFHP looks as expensive as fenced HP.
		ParallelDrains: true,
		MaxTicks:       400_000_000,
	})
	alloc := NewAllocator(m, listLen+4, nodeWords)
	hp := NewHPDomain(m, alloc, mode, 1, 3, listLen+8, 1<<20)
	l := NewList(m, hp, alloc)

	// Prepopulate directly in machine memory (keys 0..listLen-1).
	prev := l.head
	for k := 0; k < listLen; k++ {
		n := alloc.Alloc()
		m.SetWord(n+offKey, tso.Word(k))
		m.SetWord(n+offNext, pack(0, 0))
		m.SetWord(prev, pack(n, 0))
		prev = n + offNext
	}

	res := CostResult{Mode: mode, Lookups: lookups}
	m.Spawn("reader", func(th *tso.Thread) {
		key := tso.Word(12345)
		start := th.Clock()
		for i := 0; i < lookups; i++ {
			key = key*6364136223846793005 + 1442695040888963407
			l.Lookup(th, key%tso.Word(listLen))
		}
		res.TotalTicks = uint64(th.Clock() - start)
	})
	r := m.Run()
	if r.Err != nil {
		panic(r.Err) // misconfiguration; callers pass fixed sizes
	}
	res.TicksPerOp = float64(res.TotalTicks) / float64(lookups)
	res.Fences = r.Stats.Fences
	res.Stores = r.Stats.Stores
	return res
}
