package machalg

import (
	"fmt"
	"sync"

	"tbtso/internal/tso"
)

// HPMode selects the hazard-pointer protection discipline.
type HPMode int

const (
	// HPFenced is standard hazard pointers (Figure 2a): every fresh
	// hazard-pointer write is followed by a fence before validation.
	HPFenced HPMode = iota
	// HPFenceFree is the paper's FFHP (Figure 2b): no fence after the
	// hazard-pointer write; reclamation defers scanning an object until
	// Δ ticks after its retirement. Sound only on TBTSO[Δ].
	HPFenceFree
	// HPUnsafe omits both the fence and the Δ deferral. It is unsound
	// on TSO and exists to demonstrate the failure FFHP prevents.
	HPUnsafe
	// HPAdapted is the §6.2 x86 adaptation: no fence, and reclamation
	// establishes visibility from the OS time array A (the machine's
	// Config.TickBoard) instead of a Δ bound — sound on plain TSO as
	// long as the periodic timer interrupts run.
	HPAdapted
	// HPNone performs no protection at all: traversals are bare reads
	// with no publication and no validation. Safe only for workloads
	// that never reclaim; it exists as the RCU-like zero-overhead
	// yardstick for the machine-level cost comparison.
	HPNone
)

func (m HPMode) String() string {
	switch m {
	case HPFenced:
		return "HP"
	case HPFenceFree:
		return "FFHP"
	case HPUnsafe:
		return "HP-nofence-unsafe"
	case HPAdapted:
		return "FFHP-adapted"
	case HPNone:
		return "no-protection"
	default:
		return fmt.Sprintf("HPMode(%d)", int(m))
	}
}

// retiredObj is an rlist entry: Figure 2b line 32, an
// <object pointer, time> pair.
type retiredObj struct {
	obj tso.Addr
	t   uint64
}

// HPStats aggregates reclamation activity across threads.
type HPStats struct {
	Retired      int
	Freed        int
	Reclaims     int // reclaim() invocations
	EmptyScans   int // reclaim() calls that freed nothing
	ReclaimLoops int // iterations of the retire-side while loop
}

// HPDomain is a hazard-pointer domain on the abstract machine: H = N×K
// hazard-pointer slots living in machine memory, plus per-thread
// retirement lists kept on the Go side (they are thread-private in the
// paper too). One domain serves one machine run.
type HPDomain struct {
	mode    HPMode
	alloc   *Allocator
	hpBase  tso.Addr
	threads int
	k       int
	r       int
	delta   uint64

	rlists [][]retiredObj // per-thread
	rcount []int

	// board is the §6.2 time array A (HPAdapted mode only).
	board tso.Addr

	// scanDescending inverts the per-thread slot scan order — breaking
	// the §4.1 requirement that reclaimers scan hazard pointers in
	// ascending index order so fence-free COPIES (low slot → high slot)
	// are never missed. Exists to demonstrate the rule matters.
	scanDescending bool

	mu    sync.Mutex
	stats HPStats
}

// SetScanDescending inverts Reclaim's slot scan order (see the field
// comment). For the §4.1 ablation only — it makes the domain unsound in
// the presence of hazard-pointer copies.
func (d *HPDomain) SetScanDescending(on bool) { d.scanDescending = on }

// SetBoard installs the OS time array's base address for HPAdapted
// mode; the machine must be configured with the same TickBoard.
func (d *HPDomain) SetBoard(board tso.Addr) { d.board = board }

// NewHPDomain creates a domain for `threads` threads with k hazard
// pointers each and retirement threshold r. delta is the machine's Δ
// bound in ticks (used by HPFenceFree). The paper's wait-free progress
// argument requires r > threads*k; the constructor enforces it.
func NewHPDomain(m *tso.Machine, alloc *Allocator, mode HPMode, threads, k, r int, delta uint64) *HPDomain {
	if h := threads * k; r <= h {
		panic(fmt.Sprintf("machalg: R=%d must exceed H=%d for wait-free reclamation", r, h))
	}
	d := &HPDomain{
		mode:    mode,
		alloc:   alloc,
		hpBase:  m.AllocWords(threads * k),
		threads: threads,
		k:       k,
		r:       r,
		delta:   delta,
		rlists:  make([][]retiredObj, threads),
		rcount:  make([]int, threads),
	}
	return d
}

// slot returns the machine address of thread t's hazard pointer i.
func (d *HPDomain) slot(t, i int) tso.Addr {
	return d.hpBase + tso.Addr(t*d.k+i)
}

// SlotRange reports the machine address range holding the domain's
// hazard-pointer slots: base and slot count. External observers (the
// obs/monitor SMR visibility monitor) watch commits into this range to
// check hazard publications against the Δ bound.
func (d *HPDomain) SlotRange() (base tso.Addr, n int) {
	return d.hpBase, d.threads * d.k
}

// hazardRangeSetter is what a sink may implement (without this package
// importing it) to learn the domain's hazard slot range — the
// obs/monitor SMR visibility monitor does.
type hazardRangeSetter interface {
	SetHazardRange(base tso.Addr, n int)
}

// offerHazardRange forwards the domain's slot range to every sink
// that wants one (composite sinks like monitor.Set and the flight
// recorder forward it to their members).
func offerHazardRange(d *HPDomain, sinks []tso.Sink) {
	base, n := d.SlotRange()
	for _, s := range sinks {
		if rs, ok := s.(hazardRangeSetter); ok {
			rs.SetHazardRange(base, n)
		}
	}
}

// Protect points hazard pointer i of the calling thread at obj and, in
// HPFenced mode, issues the fence that orders the write before the
// caller's validation read. It reports whether the caller must validate
// its source pointer afterwards (false only in HPNone mode, which does
// not publish at all). The two disciplines are split into separately
// annotated helpers so tbtso-lint can verify each statically.
func (d *HPDomain) Protect(th *tso.Thread, i int, obj tso.Addr) bool {
	if d.mode == HPNone {
		return false
	}
	if d.mode == HPFenced {
		d.protectFenced(th, i, obj)
	} else {
		d.protectFenceFree(th, i, obj)
	}
	return true
}

// protectFenceFree is the FFHP publication (Figure 2b): a plain store,
// no fence — sound only under a visibility bound (TBTSO's Δ or the
// §6.2 time array).
//
//tbtso:fencefree
func (d *HPDomain) protectFenceFree(th *tso.Thread, i int, obj tso.Addr) {
	th.Store(d.slot(th.ID(), i), tso.Word(obj))
}

// protectFenced is the standard HP publication (Figure 2a): the fence
// orders the hazard-pointer write before the caller's validation read.
//
//tbtso:requires-fence
func (d *HPDomain) protectFenced(th *tso.Thread, i int, obj tso.Addr) {
	th.Store(d.slot(th.ID(), i), tso.Word(obj))
	th.Fence()
}

// Copy sets hazard pointer j to the value already protected by hazard
// pointer i (j > i). Per §4.1 no fence is needed in any mode, provided
// reclaimers scan slots in ascending index order.
//
//tbtso:fencefree
func (d *HPDomain) Copy(th *tso.Thread, j int, obj tso.Addr) {
	if d.mode == HPNone {
		return
	}
	th.Store(d.slot(th.ID(), j), tso.Word(obj))
}

// Clear resets hazard pointer i.
//
//tbtso:fencefree
func (d *HPDomain) Clear(th *tso.Thread, i int) {
	th.Store(d.slot(th.ID(), i), 0)
}

// Retire hands obj to the domain for deferred reclamation (Figure 2,
// retire()). The caller must have made the object's removal globally
// visible (the list's removal CAS does so). In HPFenceFree mode the
// retire loop runs reclaim() until rcount drops below R; the paper
// shows this loop is wait-free (at most Δ iterations) when R > H.
//
// No fence in any mode: retire-side ordering comes from the removal
// CAS, which is why Retire carries the fencefree contract.
//
//tbtso:fencefree
//tbtso:ignore escape rlists/rcount are per-thread (indexed by th.ID()), thread-private in the paper too (Figure 2 line 32); stats are mutex-protected Go-side bookkeeping outside the modeled memory
func (d *HPDomain) Retire(th *tso.Thread, obj tso.Addr) {
	id := th.ID()
	now := th.Clock()
	d.rlists[id] = append(d.rlists[id], retiredObj{obj: obj, t: now})
	d.rcount[id]++
	d.mu.Lock()
	d.stats.Retired++
	d.mu.Unlock()
	switch d.mode {
	case HPFenceFree, HPAdapted:
		for d.rcount[id] >= d.r {
			d.mu.Lock()
			d.stats.ReclaimLoops++
			d.mu.Unlock()
			d.Reclaim(th)
		}
	default:
		if d.rcount[id] >= d.r {
			d.Reclaim(th)
		}
	}
}

// Reclaim is Figure 2's reclaim(): scan every hazard pointer in the
// system (ascending index order), then free every sufficiently old
// retired object no scanned pointer protects.
//
//tbtso:fencefree
//tbtso:ignore escape rlists/rcount are per-thread (indexed by th.ID()), thread-private in the paper too; stats are mutex-protected Go-side bookkeeping outside the modeled memory
func (d *HPDomain) Reclaim(th *tso.Thread) {
	id := th.ID()
	var cutoff uint64
	hasCutoff := false
	switch d.mode {
	case HPFenceFree:
		now := th.Clock() // Figure 2b line 45
		if now < d.delta {
			cutoff, hasCutoff = 0, true // nothing can be old enough yet
		} else {
			cutoff, hasCutoff = now-d.delta, true
		}
	case HPAdapted:
		// §6.2: every store performed before min(A) is globally
		// visible; scanning A is the adapted slow path's extra work.
		minA := th.Load(d.board)
		for i := 1; i < d.threads; i++ {
			if v := th.Load(d.board + tso.Addr(i)); v < minA {
				minA = v
			}
		}
		cutoff, hasCutoff = uint64(minA), true
	}

	// plist: all non-null hazard pointers, ascending index order
	// (Figure 2 lines 43–49) — ascending is what makes copies safe; see
	// SetScanDescending. A map stands in for the paper's sorted array;
	// both give set-membership semantics.
	plist := make(map[tso.Addr]struct{}, d.threads*d.k)
	for t := 0; t < d.threads; t++ {
		for i := 0; i < d.k; i++ {
			idx := i
			if d.scanDescending {
				idx = d.k - 1 - i
			}
			if v := th.Load(d.slot(t, idx)); v != 0 {
				plist[tso.Addr(v)] = struct{}{}
			}
		}
	}

	// Free retired objects that are old enough and unprotected
	// (Figure 2b lines 50–56). rlist is scanned oldest-first; retire
	// appends, so the slice is already in retirement order.
	kept := d.rlists[id][:0]
	freed := 0
	for _, ro := range d.rlists[id] {
		eligible := !hasCutoff || ro.t < cutoff
		if !eligible {
			// Entries are time-ordered; everything later is younger.
			kept = append(kept, ro)
			continue
		}
		if _, protected := plist[ro.obj]; protected {
			kept = append(kept, ro)
			continue
		}
		d.alloc.Free(ro.obj)
		freed++
	}
	d.rlists[id] = kept
	d.rcount[id] = len(kept)

	d.mu.Lock()
	d.stats.Reclaims++
	d.stats.Freed += freed
	if freed == 0 {
		d.stats.EmptyScans++
	}
	d.mu.Unlock()
}

// Stats returns a snapshot of reclamation statistics.
func (d *HPDomain) Stats() HPStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Unreclaimed reports how many retired objects are still waiting in
// every thread's rlist. Only meaningful after the machine run ends.
func (d *HPDomain) Unreclaimed() int {
	n := 0
	for _, rl := range d.rlists {
		n += len(rl)
	}
	return n
}
