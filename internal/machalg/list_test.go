package machalg

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"tbtso/internal/tso"
)

// newListMachine wires up a machine, allocator, HP domain and list for
// `threads` worker threads.
func newListMachine(cfg tso.Config, mode HPMode, threads, capacity, r int) (*tso.Machine, *Allocator, *HPDomain, *List) {
	m := tso.New(cfg)
	alloc := NewAllocator(m, capacity, nodeWords)
	hp := NewHPDomain(m, alloc, mode, threads, 3, r, cfg.Delta)
	l := NewList(m, hp, alloc)
	return m, alloc, hp, l
}

func TestListSequentialSemantics(t *testing.T) {
	// Single machine thread performing random ops, checked against a
	// map model, across modes and seeds.
	for _, mode := range []HPMode{HPFenced, HPFenceFree} {
		for seed := int64(0); seed < 5; seed++ {
			m, alloc, _, l := newListMachine(
				tso.Config{Delta: 200, Policy: tso.DrainRandom, Seed: seed}, mode, 1, 64, 4)
			model := map[tso.Word]bool{}
			var mismatch string
			rng := rand.New(rand.NewSource(seed))
			ops := make([]int, 300)
			keys := make([]tso.Word, 300)
			for i := range ops {
				ops[i] = rng.Intn(3)
				keys[i] = tso.Word(rng.Intn(12))
			}
			m.Spawn("seq", func(th *tso.Thread) {
				for i := range ops {
					k := keys[i]
					switch ops[i] {
					case 0:
						got := l.Insert(th, k)
						want := !model[k]
						if got != want {
							mismatch = "insert"
							return
						}
						model[k] = true
					case 1:
						got := l.Delete(th, k)
						if got != model[k] {
							mismatch = "delete"
							return
						}
						delete(model, k)
					case 2:
						got := l.Lookup(th, k)
						if got != model[k] {
							mismatch = "lookup"
							return
						}
					}
				}
			})
			res := m.Run()
			if res.Err != nil {
				t.Fatalf("mode=%v seed=%d run: %v", mode, seed, res.Err)
			}
			if mismatch != "" {
				t.Fatalf("mode=%v seed=%d: %s disagreed with model", mode, seed, mismatch)
			}
			if v := alloc.Violations(); len(v) != 0 {
				t.Fatalf("mode=%v seed=%d: violations %v", mode, seed, v)
			}
			snap := l.Snapshot(m)
			if len(snap) != len(model) {
				t.Fatalf("mode=%v seed=%d: snapshot %v vs model size %d", mode, seed, snap, len(model))
			}
			for _, k := range snap {
				if !model[k] {
					t.Fatalf("mode=%v seed=%d: stray key %d", mode, seed, k)
				}
			}
		}
	}
}

func TestListSnapshotSortedUnique(t *testing.T) {
	m, _, _, l := newListMachine(tso.Config{Delta: 200, Seed: 3}, HPFenceFree, 1, 64, 4)
	m.Spawn("w", func(th *tso.Thread) {
		for _, k := range []tso.Word{5, 1, 9, 3, 7, 1, 5} {
			l.Insert(th, k)
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	snap := l.Snapshot(m)
	want := []tso.Word{1, 3, 5, 7, 9}
	if len(snap) != len(want) {
		t.Fatalf("snapshot %v, want %v", snap, want)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot %v, want %v", snap, want)
		}
	}
}

// runConcurrentList runs `threads` workers doing a random op mix and
// returns the allocator/domain for invariant checks.
func runConcurrentList(t *testing.T, cfg tso.Config, mode HPMode, threads, opsPerThread int, universe int) (*tso.Machine, *Allocator, *HPDomain, *List, tso.Result) {
	t.Helper()
	h := threads * 3
	r := h + 4
	capacity := universe + threads*r + 32
	m, alloc, hp, l := newListMachine(cfg, mode, threads, capacity, r)
	for i := 0; i < threads; i++ {
		seed := cfg.Seed*1000 + int64(i)
		m.Spawn("worker", func(th *tso.Thread) {
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < opsPerThread; k++ {
				key := tso.Word(rng.Intn(universe))
				switch rng.Intn(4) {
				case 0:
					l.Insert(th, key)
				case 1:
					l.Delete(th, key)
				default:
					l.Lookup(th, key)
				}
			}
			// Let retired nodes belonging to this thread be freed by
			// others: clear our hazard pointers on the way out.
			for i := 0; i < 3; i++ {
				hp.Clear(th, i)
			}
		})
	}
	res := m.Run()
	return m, alloc, hp, l, res
}

func TestFFHPSafeOnTBTSO(t *testing.T) {
	// The paper's §4 claim: fence-free hazard pointers on TBTSO[Δ]
	// never produce a use-after-free, even under the adversarial drain
	// policy and scheduler stalls.
	for _, policy := range []tso.DrainPolicy{tso.DrainAdversarial, tso.DrainRandom} {
		for seed := int64(0); seed < 6; seed++ {
			cfg := tso.Config{Delta: 400, Policy: policy, Seed: seed, StallProb: 0.1, MaxTicks: 8_000_000}
			m, alloc, hp, l, res := runConcurrentList(t, cfg, HPFenceFree, 3, 120, 16)
			if res.Err != nil {
				t.Fatalf("policy=%v seed=%d: %v", policy, seed, res.Err)
			}
			if v := alloc.Violations(); len(v) != 0 {
				t.Fatalf("policy=%v seed=%d: FFHP produced violations: %v", policy, seed, v[0])
			}
			if res.Stats.MaxCommitLatency > cfg.Delta {
				t.Fatalf("Δ bound violated: %d > %d", res.Stats.MaxCommitLatency, cfg.Delta)
			}
			snap := l.Snapshot(m)
			for i := 1; i < len(snap); i++ {
				if snap[i-1] >= snap[i] {
					t.Fatalf("snapshot not sorted/unique: %v", snap)
				}
			}
			st := hp.Stats()
			if st.Retired < st.Freed {
				t.Fatalf("freed %d > retired %d", st.Freed, st.Retired)
			}
			allocs, frees := alloc.Counts()
			if live := alloc.LiveObjects(); allocs-frees != live {
				t.Fatalf("allocator bookkeeping: allocs=%d frees=%d live=%d", allocs, frees, live)
			}
		}
	}
}

func TestHPFencedSafeOnPlainTSO(t *testing.T) {
	// Standard hazard pointers (with fences) are safe even on
	// unbounded TSO with adversarial drains.
	cfg := tso.Config{Delta: 0, Policy: tso.DrainAdversarial, Seed: 2, MaxTicks: 8_000_000}
	_, alloc, _, _, res := runConcurrentList(t, cfg, HPFenced, 3, 100, 12)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if v := alloc.Violations(); len(v) != 0 {
		t.Fatalf("fenced HP produced violations: %v", v[0])
	}
}

// directedReclaimRace runs the §4 interleaving the fence exists to
// prevent: a reader protects a node with a hazard pointer (fenced or
// not, per mode) and validates; then a reclaimer unlinks the node with
// a CAS, retires it, and repeatedly tries to reclaim; finally the
// reader dereferences the node. Under the adversarial drain policy the
// reader's hazard-pointer store stays buffered as long as the model
// allows, so whether the reclaim frees the node under the reader's feet
// depends exactly on the fence / Δ-deferral combination.
func directedReclaimRace(t *testing.T, delta uint64, mode HPMode) (*Allocator, bool) {
	t.Helper()
	cfg := tso.Config{Delta: delta, Policy: tso.DrainAdversarial, Seed: 1, MaxTicks: 1_000_000}
	m := tso.New(cfg)
	alloc := NewAllocator(m, 4, nodeWords)
	hp := NewHPDomain(m, alloc, mode, 2, 3, 7, delta)
	l := NewList(m, hp, alloc)

	// Pre-populate: head -> node(key=1) -> nil.
	node := alloc.Alloc()
	m.SetWord(node+offKey, 1)
	m.SetWord(node+offNext, pack(0, 0))
	m.SetWord(l.head, pack(node, 0))

	// Go-side orchestration flags (not machine memory): they order the
	// two programs without adding machine fences.
	var validated, released atomic.Bool
	validationOK := true
	freed := false

	m.Spawn("reader", func(th *tso.Thread) {
		curW := th.Load(l.head)
		cur, _ := unpack(curW)
		hp.Protect(th, 1, cur) // fence only in HPFenced mode
		if th.Load(l.head) != pack(cur, 0) {
			validationOK = false
			validated.Store(true)
			return
		}
		validated.Store(true)
		for !released.Load() {
			th.Yield()
		}
		_ = th.Load(cur + offKey) // the dereference at risk
		hp.Clear(th, 1)
	})
	m.Spawn("reclaimer", func(th *tso.Thread) {
		for !validated.Load() {
			th.Yield()
		}
		if !validationOK {
			released.Store(true)
			return
		}
		if !th.CAS(l.head, pack(node, 0), pack(0, 0)) {
			t.Error("unlink CAS failed")
			released.Store(true)
			return
		}
		hp.Retire(th, node)
		deadline := th.Clock() + delta + 200
		for {
			hp.Reclaim(th)
			if alloc.LiveObjects() == 0 {
				freed = true
				break
			}
			if th.Clock() > deadline {
				break
			}
		}
		released.Store(true)
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("delta=%d mode=%v run: %v", delta, mode, res.Err)
	}
	if !validationOK {
		t.Fatalf("delta=%d mode=%v: validation failed before the unlink — scenario miswired", delta, mode)
	}
	return alloc, freed
}

func TestReclaimRaceMatrix(t *testing.T) {
	// The full soundness matrix of §3–§4: fence-free protection is
	// unsound without BOTH the Δ bound (TBTSO) and the Δ-deferred
	// reclaim (FFHP); standard fenced HP is sound even on plain TSO.
	cases := []struct {
		name     string
		delta    uint64
		mode     HPMode
		wantUAF  bool
		wantFree bool
	}{
		{"fenced HP on plain TSO is safe", 0, HPFenced, false, false},
		{"fence-free+no-deferral on plain TSO frees under the reader", 0, HPUnsafe, true, true},
		{"fence-free+no-deferral on TBTSO still unsafe (deferral matters)", 400, HPUnsafe, true, true},
		{"FFHP on plain TSO unsafe (the Δ bound matters)", 0, HPFenceFree, true, true},
		{"FFHP on TBTSO[Δ] is safe", 400, HPFenceFree, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			alloc, freed := directedReclaimRace(t, tc.delta, tc.mode)
			gotUAF := false
			for _, v := range alloc.Violations() {
				if v.Kind == "load" {
					gotUAF = true
				}
			}
			if gotUAF != tc.wantUAF {
				t.Fatalf("use-after-free = %v, want %v (violations: %v)", gotUAF, tc.wantUAF, alloc.Violations())
			}
			if freed != tc.wantFree {
				t.Fatalf("node freed while protected = %v, want %v", freed, tc.wantFree)
			}
		})
	}
}

func TestFFHPReclaimDefersYoungObjects(t *testing.T) {
	// A reclaim() that runs immediately after a retirement must not
	// free the young object even if no hazard pointer protects it.
	const delta = 500
	m := tso.New(tso.Config{Delta: delta, Policy: tso.DrainEager, Seed: 1})
	alloc := NewAllocator(m, 4, nodeWords)
	hp := NewHPDomain(m, alloc, HPFenceFree, 1, 3, 100, delta)
	var freedEarly, freedLate bool
	m.Spawn("t", func(th *tso.Thread) {
		obj := alloc.Alloc()
		th.Fence()
		l := len(hp.rlists[0])
		_ = l
		hp.rlists[0] = append(hp.rlists[0], retiredObj{obj: obj, t: th.Clock()})
		hp.rcount[0]++
		hp.Reclaim(th)
		freedEarly = alloc.LiveObjects() == 0
		th.WaitUntil(th.Clock() + delta + 2)
		hp.Reclaim(th)
		freedLate = alloc.LiveObjects() == 0
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if freedEarly {
		t.Fatal("reclaim freed an object younger than Δ")
	}
	if !freedLate {
		t.Fatal("reclaim failed to free an unprotected object older than Δ")
	}
}

func TestHPDomainRequiresRGreaterThanH(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for R <= H")
		}
	}()
	m := tso.New(tso.Config{Seed: 1})
	alloc := NewAllocator(m, 4, nodeWords)
	NewHPDomain(m, alloc, HPFenceFree, 2, 3, 6, 100) // R == H
}

func TestRetireLoopIsBounded(t *testing.T) {
	// §4.2: once Δ passes, a reclaim() frees at least one object, so
	// the retire-side while loop terminates. Check the loop never
	// exceeds a small multiple of the op count.
	cfg := tso.Config{Delta: 300, Policy: tso.DrainAdversarial, Seed: 5, MaxTicks: 8_000_000}
	_, _, hp, _, res := runConcurrentList(t, cfg, HPFenceFree, 2, 150, 6)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	st := hp.Stats()
	if st.ReclaimLoops > 50*st.Retired+100 {
		t.Fatalf("retire loop iterated %d times for %d retirements — not wait-free-ish", st.ReclaimLoops, st.Retired)
	}
}
