package machalg

import "tbtso/internal/tso"

// Deque is a Chase-Lev-style work-stealing deque whose owner fast path
// (push/take) is fence-free, with correctness recovered by making the
// thief's steal — the slow path — wait out the Δ bound between reading
// top and reading bottom. This is the application §8 points at when
// contrasting TBTSO with the spatially bounded TSO[S] of [29]:
// "fence-free work stealing algorithms based on TSO[S] require either
// relaxed semantics or blocking. In contrast, TBTSO's temporal
// reordering bound facilitates nonblocking synchronization."
//
// Why the Δ wait restores the classic algorithm's fence: suppose a
// thief steals item x (its CAS moves top from x to x+1 at time T) and
// the owner also fast-takes x. The owner's fast path requires its top
// load — which follows its bottom:=x store at time S — to return a
// value < x. The thief read bottom at T_b ≥ T_t+Δ and saw bottom > x,
// so the owner's store was not yet visible: S+Δ > T_b, hence S > T_t.
// But at T_t top already equaled x, and top is monotone, so the owner's
// later load must return ≥ x — contradiction. At most one of them gets
// item x.
type Deque struct {
	top    tso.Addr
	bottom tso.Addr
	items  tso.Addr
	cap    tso.Word
	delta  uint64
	// waitDelta disabled reproduces the unsound variant (sound only
	// with a fence in take, which this deque deliberately omits).
	waitDelta bool
}

// NewDeque allocates a deque with the given capacity in machine memory.
// delta is the machine's Δ bound; waitDelta selects whether steals wait
// it out (the sound TBTSO protocol) or not (the unsound demonstration).
func NewDeque(m *tso.Machine, capacity int, delta uint64, waitDelta bool) *Deque {
	return &Deque{
		top:       m.AllocWords(1),
		bottom:    m.AllocWords(1),
		items:     m.AllocWords(capacity),
		cap:       tso.Word(capacity),
		delta:     delta,
		waitDelta: waitDelta,
	}
}

func (d *Deque) slot(i tso.Word) tso.Addr {
	return d.items + tso.Addr(i%d.cap)
}

// Push adds v at the bottom (owner only). It reports false when the
// deque is full. Plain stores only — no fence, no atomics.
//
//tbtso:fencefree
func (d *Deque) Push(th *tso.Thread, v tso.Word) bool {
	b := th.Load(d.bottom) // forwarded from own buffer if pending
	t := th.Load(d.top)
	if b-t >= d.cap {
		return false
	}
	th.Store(d.slot(b), v)
	th.Store(d.bottom, b+1)
	return true
}

// Take removes the most recently pushed item (owner only). The common
// case is two plain stores and two loads with no fence between the
// bottom store and the top load — the paper's fast path shape.
//
//tbtso:fencefree
func (d *Deque) Take(th *tso.Thread) (tso.Word, bool) {
	b := th.Load(d.bottom) - 1
	th.Store(d.bottom, b)
	t := th.Load(d.top)
	// no fence (the whole point)
	if b != t && b-t < d.cap { // b > t without wraparound headaches
		return th.Load(d.slot(b)), true
	}
	if b == t {
		// Last item: race the thieves for it.
		won := th.CAS(d.top, t, t+1)
		th.Store(d.bottom, t+1)
		if won {
			return th.Load(d.slot(b)), true
		}
		return 0, false
	}
	// Deque was already empty.
	th.Store(d.bottom, t)
	return 0, false
}

// Steal takes the oldest item (any thread). The sound protocol reads
// top, waits Δ ticks so every owner store older than the top read is
// visible, and only then reads bottom. Fence-free on both sides: the
// Δ wait replaces the fence the classic algorithm needs here.
//
//tbtso:fencefree
func (d *Deque) Steal(th *tso.Thread) (tso.Word, bool) {
	t := th.Load(d.top)
	if d.waitDelta {
		th.WaitUntil(th.Clock() + d.delta)
	}
	b := th.Load(d.bottom)
	if b-t == 0 || b-t >= 1<<62 { // empty (b <= t, allowing transient b = t-1)
		return 0, false
	}
	v := th.Load(d.slot(t))
	if th.CAS(d.top, t, t+1) {
		return v, true
	}
	return 0, false
}

// Size reports bottom-top as seen from memory. Quiescent use only.
func (d *Deque) Size(m *tso.Machine) int {
	return int(m.PeekWord(d.bottom)) - int(m.PeekWord(d.top))
}
