package machalg

import (
	"testing"

	"tbtso/internal/tso"
)

// runDekker drives both threads through iters acquisitions. delta
// matters for LIVENESS here, not just safety: Dekker's backoff store
// (flag[me] := 0) has no fence after it, so under unbounded adversarial
// drains it never commits and the other thread spins forever — the Δ
// bound is what guarantees it lands. (Fenced soundness tests therefore
// run on a TBTSO machine; the unfenced-failure demo runs on plain TSO,
// where the violation occurs before any livelock matters.)
func runDekker(seed int64, delta uint64, fenced bool, iters, csWork int) (*csRecorder, tso.Result) {
	m := tso.New(tso.Config{Delta: delta, Policy: tso.DrainAdversarial, Seed: seed, MaxTicks: 4_000_000})
	d := NewDekker(m, fenced)
	rec := &csRecorder{}
	for me := 0; me < 2; me++ {
		m.Spawn("d", func(th *tso.Thread) {
			for i := 0; i < iters; i++ {
				d.Lock(th, me)
				enter := th.Clock()
				for k := 0; k < csWork; k++ {
					th.Yield()
				}
				rec.add(enter, th.Clock())
				d.Unlock(th, me)
				th.Yield()
			}
			th.Fence()
		})
	}
	res := m.Run()
	return rec, res
}

func TestDekkerFencedSound(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rec, res := runDekker(seed, 1000, true, 20, 8)
		if res.Err != nil {
			t.Fatalf("seed=%d: %v", seed, res.Err)
		}
		if a, b, bad := rec.overlap(); bad {
			t.Fatalf("seed=%d: fenced Dekker overlapped: %v %v", seed, a, b)
		}
	}
}

func TestDekkerUnfencedFails(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rec, _ := runDekker(seed, 0, false, 20, 8)
		if _, _, bad := rec.overlap(); bad {
			return
		}
	}
	t.Fatal("unfenced Dekker never violated mutual exclusion on adversarial TSO")
}
