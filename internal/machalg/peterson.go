package machalg

import "tbtso/internal/tso"

// Peterson is Peterson's two-thread mutual exclusion algorithm [31],
// one of the flag-principle algorithms §1 cites as requiring fences on
// TSO. It exists here as the classic demonstration: with the fence it
// is correct on any TSO machine; without it, the store/load reordering
// lets both threads enter — the failure mode TBTSO's asymmetric
// constructions are designed to avoid paying for.
type Peterson struct {
	flags  tso.Addr // flags+0, flags+1
	victim tso.Addr
	fenced bool
}

// NewPeterson allocates the algorithm's three shared words. fenced
// selects whether Lock issues the fence the flag principle requires.
func NewPeterson(m *tso.Machine, fenced bool) *Peterson {
	return &Peterson{flags: m.AllocWords(2), victim: m.AllocWords(1), fenced: fenced}
}

// Lock enters the critical section as thread me (0 or 1).
func (p *Peterson) Lock(th *tso.Thread, me int) {
	other := 1 - me
	th.Store(p.flags+tso.Addr(me), 1)
	th.Store(p.victim, tso.Word(me))
	if p.fenced {
		th.Fence()
	}
	for {
		if th.Load(p.flags+tso.Addr(other)) == 0 {
			return
		}
		if th.Load(p.victim) != tso.Word(me) {
			return
		}
	}
}

// Unlock leaves the critical section.
func (p *Peterson) Unlock(th *tso.Thread, me int) {
	th.Store(p.flags+tso.Addr(me), 0)
}
