// Package machalg re-expresses the paper's algorithms as programs for
// the TBTSO abstract machine (internal/tso): hazard pointers with and
// without fences (Figure 2), Michael's nonblocking sorted linked list
// (Figure 1), and the fence-free biased lock (Figure 3). Running them on
// the machine turns the paper's correctness arguments into executable
// checks — including the demonstration that the fence-free variants are
// unsound on plain (unbounded) TSO and sound on TBTSO[Δ].
package machalg

import (
	"fmt"
	"sync"

	"tbtso/internal/tso"
)

// objState is the lifecycle of an allocator object.
type objState uint8

const (
	objFree objState = iota
	objLive
)

// Violation records a memory-safety violation detected by the
// allocator's machine monitor.
type Violation struct {
	Kind   string // "load", "store", "commit"
	Thread int
	Addr   tso.Addr
	Tick   uint64
}

func (v Violation) String() string {
	return fmt.Sprintf("use-after-free (%s) by T%d at addr %d, tick %d", v.Kind, v.Thread, v.Addr, v.Tick)
}

// Allocator is a fixed-pool object allocator for machine memory with
// use-after-free detection. It implements tso.Monitor: any load from,
// store to, or store-buffer commit into a freed object is recorded as a
// violation. This is the machine-level analogue of the poisoned arena
// the native code uses — it makes misreclamation observable.
//
// Alloc and Free are called from thread goroutines while the monitor
// callbacks run on the machine's scheduler goroutine, so all metadata
// is mutex-protected.
type Allocator struct {
	mu       sync.Mutex
	base     tso.Addr
	objWords int
	state    []objState
	free     []int // free object indices (LIFO)
	frees    int
	allocs   int
	viol     []Violation
}

// NewAllocator reserves capacity objects of objWords words each from
// the machine's memory and returns the allocator. It installs itself as
// the machine's Monitor so violations are detected automatically.
func NewAllocator(m *tso.Machine, capacity, objWords int) *Allocator {
	a := &Allocator{
		base:     m.AllocWords(capacity * objWords),
		objWords: objWords,
		state:    make([]objState, capacity),
		free:     make([]int, 0, capacity),
	}
	// LIFO freelist: push in reverse so Alloc hands out low indices
	// first, which keeps early traces readable.
	for i := capacity - 1; i >= 0; i-- {
		a.free = append(a.free, i)
	}
	m.SetMonitor(a)
	return a
}

// Alloc returns the base address of a fresh object, or 0 if the pool is
// exhausted. The object's words are NOT zeroed; callers initialize all
// fields before publishing (as the paper's algorithms do).
func (a *Allocator) Alloc() tso.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.free) == 0 {
		return 0
	}
	idx := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.state[idx] = objLive
	a.allocs++
	return a.base + tso.Addr(idx*a.objWords)
}

// Free returns an object to the pool. Freeing a non-live object (double
// free, wild free) is recorded as a violation with kind "free".
func (a *Allocator) Free(obj tso.Addr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, ok := a.index(obj)
	if !ok || a.state[idx] != objLive || a.base+tso.Addr(idx*a.objWords) != obj {
		a.viol = append(a.viol, Violation{Kind: "free", Addr: obj})
		return
	}
	a.state[idx] = objFree
	a.free = append(a.free, idx)
	a.frees++
}

// index maps an address to the object index containing it.
func (a *Allocator) index(addr tso.Addr) (int, bool) {
	if addr < a.base {
		return 0, false
	}
	idx := int(addr-a.base) / a.objWords
	if idx >= len(a.state) {
		return 0, false
	}
	return idx, true
}

func (a *Allocator) check(kind string, thread int, addr tso.Addr, tick uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, ok := a.index(addr)
	if !ok {
		return // not allocator-managed memory
	}
	if a.state[idx] == objFree {
		a.viol = append(a.viol, Violation{Kind: kind, Thread: thread, Addr: addr, Tick: tick})
	}
}

// StoreEnqueued implements tso.Monitor.
func (a *Allocator) StoreEnqueued(thread int, addr tso.Addr, _ tso.Word, tick uint64) {
	a.check("store", thread, addr, tick)
}

// StoreCommitted implements tso.Monitor. A commit into a freed object
// means a buffered store outlived the object — the precise hazard the
// Δ bound exists to prevent.
func (a *Allocator) StoreCommitted(thread int, addr tso.Addr, _ tso.Word, _ uint64, tick uint64) {
	a.check("commit", thread, addr, tick)
}

// LoadSatisfied implements tso.Monitor.
func (a *Allocator) LoadSatisfied(thread int, addr tso.Addr, _ tso.Word, fromBuffer bool, tick uint64) {
	if fromBuffer {
		return // forwarded from the thread's own buffer; no memory touch
	}
	a.check("load", thread, addr, tick)
}

// RMWExecuted implements tso.Monitor.
func (a *Allocator) RMWExecuted(thread int, addr tso.Addr, _, _ tso.Word, tick uint64) {
	a.check("rmw", thread, addr, tick)
}

// Violations returns the recorded memory-safety violations.
func (a *Allocator) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.viol))
	copy(out, a.viol)
	return out
}

// Counts reports allocations and frees performed.
func (a *Allocator) Counts() (allocs, frees int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs, a.frees
}

// LiveObjects reports the number of currently live objects.
func (a *Allocator) LiveObjects() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, s := range a.state {
		if s == objLive {
			n++
		}
	}
	return n
}
