package machalg

import "testing"

func TestLookupCostOrdering(t *testing.T) {
	// The machine-level fast-path cost ordering the paper's Figure 6
	// rests on: no-protection < FFHP < HP, with the HP−FFHP gap being
	// the per-node fence and the FFHP−none gap the store+validation.
	const (
		listLen = 16
		lookups = 200
	)
	none := LookupCost(HPNone, listLen, lookups, 1)
	ffhp := LookupCost(HPFenceFree, listLen, lookups, 1)
	hp := LookupCost(HPFenced, listLen, lookups, 1)

	if !(none.TicksPerOp < ffhp.TicksPerOp && ffhp.TicksPerOp < hp.TicksPerOp) {
		t.Fatalf("cost ordering violated: none=%.1f ffhp=%.1f hp=%.1f",
			none.TicksPerOp, ffhp.TicksPerOp, hp.TicksPerOp)
	}
	// HP issues ~2 fences per traversed node; FFHP issues none.
	if hp.Fences == 0 || ffhp.Fences != 0 || none.Fences != 0 {
		t.Fatalf("fences: hp=%d ffhp=%d none=%d", hp.Fences, ffhp.Fences, none.Fences)
	}
	// FFHP publishes per node; none never stores.
	if ffhp.Stores == 0 || none.Stores != 0 {
		t.Fatalf("stores: ffhp=%d none=%d", ffhp.Stores, none.Stores)
	}
	// FFHP must recover a meaningful share of the HP→none gap. The
	// abstract machine is UNIT-COST — a validation load costs the same
	// one tick as a fence — so it understates FFHP's advantage, just as
	// the native benchmarks overstate publication cost (Go's atomic
	// store is an XCHG). The two measurements bracket the paper's
	// "FFHP ≈ RCU" from opposite sides; see EXPERIMENTS.md.
	gapClosed := (hp.TicksPerOp - ffhp.TicksPerOp) / (hp.TicksPerOp - none.TicksPerOp)
	if gapClosed < 0.15 {
		t.Fatalf("FFHP closes only %.0f%% of the HP→none gap (hp=%.1f ffhp=%.1f none=%.1f)",
			gapClosed*100, hp.TicksPerOp, ffhp.TicksPerOp, none.TicksPerOp)
	}
}

func TestLookupCostScalesWithChainLength(t *testing.T) {
	short := LookupCost(HPFenceFree, 4, 100, 2)
	long := LookupCost(HPFenceFree, 32, 100, 2)
	if long.TicksPerOp < 3*short.TicksPerOp {
		t.Fatalf("long chains not proportionally costlier: %.1f vs %.1f",
			long.TicksPerOp, short.TicksPerOp)
	}
}
