package machalg

import "tbtso/internal/tso"

// Table is the §7.1 chaining hash table expressed at machine level:
// a fixed array of head MarkPtr words in machine memory, each chain a
// Michael list traversed with the domain's hazard-pointer protocol.
// It exists so the evaluation's actual data structure — not just a
// single list — runs under the machine's adversarial schedules and
// use-after-free detection.
type Table struct {
	heads   tso.Addr
	buckets tso.Word
	hp      *HPDomain
	alloc   *Allocator
}

// NewTable allocates a table with the given power-of-two bucket count.
func NewTable(m *tso.Machine, hp *HPDomain, alloc *Allocator, buckets int) *Table {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("machalg: bucket count must be a positive power of two")
	}
	return &Table{
		heads:   m.AllocWords(buckets),
		buckets: tso.Word(buckets),
		hp:      hp,
		alloc:   alloc,
	}
}

// tableHash is the same splitmix64 finalizer the native table uses.
func tableHash(k tso.Word) tso.Word {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// bucketList views one bucket as a List rooted at its head word.
func (t *Table) bucketList(key tso.Word) *List {
	b := tableHash(key) & (t.buckets - 1)
	return &List{head: t.heads + tso.Addr(b), hp: t.hp, alloc: t.alloc}
}

// Lookup reports whether key is present.
func (t *Table) Lookup(th *tso.Thread, key tso.Word) bool {
	return t.bucketList(key).Lookup(th, key)
}

// Insert adds key; false means it was already present.
func (t *Table) Insert(th *tso.Thread, key tso.Word) bool {
	return t.bucketList(key).Insert(th, key)
}

// Delete removes key; false means it was absent.
func (t *Table) Delete(th *tso.Thread, key tso.Word) bool {
	return t.bucketList(key).Delete(th, key)
}

// Len counts elements after the run (quiescent use only).
func (t *Table) Len(m *tso.Machine) int {
	n := 0
	for b := tso.Word(0); b < t.buckets; b++ {
		l := &List{head: t.heads + tso.Addr(b), hp: t.hp, alloc: t.alloc}
		n += len(l.Snapshot(m))
	}
	return n
}
