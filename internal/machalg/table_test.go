package machalg

import (
	"math/rand"
	"testing"

	"tbtso/internal/tso"
)

func TestMachineTableSequentialSemantics(t *testing.T) {
	m := tso.New(tso.Config{Delta: 200, Policy: tso.DrainRandom, Seed: 7})
	alloc := NewAllocator(m, 128, nodeWords)
	hp := NewHPDomain(m, alloc, HPFenceFree, 1, 3, 8, 200)
	tb := NewTable(m, hp, alloc, 8)
	model := map[tso.Word]bool{}
	var mismatch bool
	m.Spawn("seq", func(th *tso.Thread) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 400; i++ {
			k := tso.Word(rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				if tb.Insert(th, k) == model[k] {
					mismatch = true
					return
				}
				model[k] = true
			case 1:
				if tb.Delete(th, k) != model[k] {
					mismatch = true
					return
				}
				delete(model, k)
			default:
				if tb.Lookup(th, k) != model[k] {
					mismatch = true
					return
				}
			}
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if mismatch {
		t.Fatal("table disagreed with model")
	}
	if got := tb.Len(m); got != len(model) {
		t.Fatalf("Len = %d, model %d", got, len(model))
	}
	if v := alloc.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestMachineTableConcurrentFFHPSafe(t *testing.T) {
	// The §7.1 structure under the §4 scheme, adversarial drains.
	for seed := int64(0); seed < 3; seed++ {
		const threads = 3
		cfg := tso.Config{Delta: 400, Policy: tso.DrainAdversarial, Seed: seed, MaxTicks: 8_000_000}
		m := tso.New(cfg)
		alloc := NewAllocator(m, 512, nodeWords)
		h := threads * 3
		hp := NewHPDomain(m, alloc, HPFenceFree, threads, 3, h+4, cfg.Delta)
		tb := NewTable(m, hp, alloc, 8)
		for i := 0; i < threads; i++ {
			s := seed*31 + int64(i)
			m.Spawn("w", func(th *tso.Thread) {
				rng := rand.New(rand.NewSource(s))
				for k := 0; k < 120; k++ {
					key := tso.Word(rng.Intn(24))
					switch rng.Intn(4) {
					case 0:
						tb.Insert(th, key)
					case 1:
						tb.Delete(th, key)
					default:
						tb.Lookup(th, key)
					}
				}
				for i := 0; i < 3; i++ {
					hp.Clear(th, i)
				}
			})
		}
		res := m.Run()
		if res.Err != nil {
			t.Fatalf("seed=%d: %v", seed, res.Err)
		}
		if v := alloc.Violations(); len(v) != 0 {
			t.Fatalf("seed=%d: violations %v", seed, v[0])
		}
		if res.Stats.MaxCommitLatency > cfg.Delta {
			t.Fatalf("Δ exceeded: %d", res.Stats.MaxCommitLatency)
		}
	}
}

func TestMachineTableBucketValidation(t *testing.T) {
	m := tso.New(tso.Config{Seed: 1})
	alloc := NewAllocator(m, 8, nodeWords)
	hp := NewHPDomain(m, alloc, HPFenced, 1, 3, 4, 0)
	for _, bad := range []int{0, 3, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("buckets=%d did not panic", bad)
				}
			}()
			NewTable(m, hp, alloc, bad)
		}()
	}
}
