package machalg

import (
	"testing"

	"tbtso/internal/tso"
)

// runPRW drives `readers` reader threads and one writer through the
// passive RW lock, recording reader and writer critical-section
// intervals separately.
func runPRW(seed int64, delta uint64, readers, rIters, wIters int) (readerIv, writerIv *csRecorder, res tso.Result) {
	m := tso.New(tso.Config{Delta: delta, Policy: tso.DrainAdversarial, Seed: seed, MaxTicks: 8_000_000})
	l := NewPRWLock(m, readers, delta)
	readerIv, writerIv = &csRecorder{}, &csRecorder{}
	for r := 0; r < readers; r++ {
		m.Spawn("reader", func(th *tso.Thread) {
			slot := th.ID()
			for i := 0; i < rIters; i++ {
				l.RLock(th, slot)
				enter := th.Clock()
				for k := 0; k < 6; k++ {
					th.Yield()
				}
				readerIv.add(enter, th.Clock())
				l.RUnlock(th, slot)
				th.Yield()
			}
			th.Fence()
		})
	}
	m.Spawn("writer", func(th *tso.Thread) {
		for i := 0; i < wIters; i++ {
			l.Lock(th)
			enter := th.Clock()
			for k := 0; k < 6; k++ {
				th.Yield()
			}
			writerIv.add(enter, th.Clock())
			l.Unlock(th)
			for k := 0; k < 40; k++ {
				th.Yield() // writers are rare
			}
		}
		th.Fence()
	})
	res = m.Run()
	return
}

// crossOverlap reports whether any writer interval overlaps any reader
// interval (reader-reader overlap is legal).
func crossOverlap(readers, writers *csRecorder) bool {
	for _, w := range writers.intervals {
		for _, r := range readers.intervals {
			if w[0] < r[1] && r[0] < w[1] {
				return true
			}
		}
	}
	return false
}

func TestPRWLockExclusionOnTBTSO(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rIv, wIv, res := runPRW(seed, 300, 2, 25, 6)
		if res.Err != nil {
			t.Fatalf("seed=%d: %v", seed, res.Err)
		}
		if crossOverlap(rIv, wIv) {
			t.Fatalf("seed=%d: writer overlapped a reader", seed)
		}
		if len(wIv.intervals) != 6 {
			t.Fatalf("seed=%d: writer entered %d times", seed, len(wIv.intervals))
		}
	}
}

func TestPRWLockUnsoundOnPlainTSO(t *testing.T) {
	// Δ=0 degrades the writer's wait to nothing: a reader's buffered
	// flag is invisible at the writer's scan and the writer enters over
	// a live reader.
	for seed := int64(0); seed < 30; seed++ {
		rIv, wIv, _ := runPRW(seed, 0, 2, 25, 6)
		if crossOverlap(rIv, wIv) {
			return // reproduced: the Δ wait is what replaces the IPIs
		}
	}
	t.Fatal("passive RW lock never misbehaved on plain TSO")
}

func TestPRWLockWritersSerialized(t *testing.T) {
	// Two writers must serialize on the internal lock.
	m := tso.New(tso.Config{Delta: 200, Policy: tso.DrainRandom, Seed: 3, MaxTicks: 8_000_000})
	l := NewPRWLock(m, 1, 200)
	rec := &csRecorder{}
	for w := 0; w < 2; w++ {
		m.Spawn("writer", func(th *tso.Thread) {
			for i := 0; i < 8; i++ {
				l.Lock(th)
				enter := th.Clock()
				for k := 0; k < 6; k++ {
					th.Yield()
				}
				rec.add(enter, th.Clock())
				l.Unlock(th)
				th.Yield()
			}
			th.Fence()
		})
	}
	m.Spawn("reader", func(th *tso.Thread) {
		for i := 0; i < 10; i++ {
			l.RLock(th, 0)
			th.Yield()
			l.RUnlock(th, 0)
		}
		th.Fence()
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if a, b, bad := rec.overlap(); bad {
		t.Fatalf("writers overlapped: %v %v", a, b)
	}
}
