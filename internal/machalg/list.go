package machalg

import "tbtso/internal/tso"

// Machine-memory layout of a list node (Figure 1's struct Node):
//
//	word 0: key
//	word 1: nextPtr — a MarkPtr packing the successor address in the
//	        upper bits and the logical-deletion mark in bit 0
const (
	nodeWords  = 2
	offKey     = 0
	offNext    = 1
	maxListKey = 1 << 40 // keys must leave the packed pointer intact
)

func pack(addr tso.Addr, mark tso.Word) tso.Word {
	return tso.Word(addr)<<1 | (mark & 1)
}

func unpack(w tso.Word) (addr tso.Addr, mark tso.Word) {
	return tso.Addr(w >> 1), w & 1
}

// List is Michael's nonblocking sorted linked list (Figure 1) expressed
// as machine programs, with hazard-pointer protection supplied by an
// HPDomain. Nodes come from an Allocator so that misreclamation is
// detected by the machine monitor.
type List struct {
	head  tso.Addr // address of the head MarkPtr word (immutable sentinel)
	hp    *HPDomain
	alloc *Allocator
}

// NewList allocates the list head in machine memory.
func NewList(m *tso.Machine, hp *HPDomain, alloc *Allocator) *List {
	return &List{head: m.AllocWords(1), hp: hp, alloc: alloc}
}

// findResult carries find()'s three traversal pointers (Figure 1's
// prev, cur, next thread-locals).
type findResult struct {
	found bool
	prev  tso.Addr // address of the MarkPtr word pointing at cur
	cur   tso.Addr // node with key >= target (0 if none)
	next  tso.Addr // cur's successor at observation time
}

// find is Figure 1's find(): traverse from head, physically removing
// marked nodes along the way, protecting every node with a hazard
// pointer before dereferencing it. On return, cur (if nonzero) is
// protected by hp1 and prev's node (if any) by hp2.
func (l *List) find(th *tso.Thread, key tso.Word) findResult {
retry:
	prev := l.head
	curW := th.Load(prev)
	cur, _ := unpack(curW)
	// Box at Figure 1 line 33: protect cur with hp1, then validate that
	// prev still points at cur unmarked. Validation loads are skipped
	// when the domain does not publish (HPNone — the RCU-like yardstick).
	if l.hp.Protect(th, 1, cur) {
		if th.Load(prev) != pack(cur, 0) {
			goto retry
		}
	}
	for {
		if cur == 0 {
			return findResult{found: false, prev: prev}
		}
		nextW := th.Load(cur + offNext)
		next, mark := unpack(nextW)
		// Box at Figure 1 line 36: protect next with hp0 and validate.
		needsVal := l.hp.Protect(th, 0, next)
		if needsVal && th.Load(cur+offNext) != pack(next, mark) {
			goto retry
		}
		ckey := th.Load(cur + offKey)
		if needsVal && th.Load(prev) != pack(cur, 0) {
			goto retry
		}
		if mark == 0 {
			if ckey >= key {
				return findResult{found: ckey == key, prev: prev, cur: cur, next: next}
			}
			prev = cur + offNext
			l.hp.Copy(th, 2, cur) // hp2 := hp1, copy rule: no fence
		} else {
			// cur is logically deleted: physically unlink it.
			if th.CAS(prev, pack(cur, 0), pack(next, 0)) {
				l.hp.Retire(th, cur)
			} else {
				goto retry
			}
		}
		cur = next
		l.hp.Copy(th, 1, next) // hp1 := hp0, copy rule: no fence
	}
}

// Lookup reports whether key is in the list (Figure 1's lookup()).
func (l *List) Lookup(th *tso.Thread, key tso.Word) bool {
	if key >= maxListKey {
		panic("machalg: key too large")
	}
	return l.find(th, key).found
}

// Insert adds key to the list; it reports false if the key was already
// present. It panics if the allocator pool is exhausted (size pools to
// the workload; retirement bounds live objects).
func (l *List) Insert(th *tso.Thread, key tso.Word) bool {
	if key >= maxListKey {
		panic("machalg: key too large")
	}
	var node tso.Addr
	for {
		r := l.find(th, key)
		if r.found {
			if node != 0 {
				// The node was never published, so freeing it directly
				// is safe; the fence drains our buffered stores to it
				// so none commits into the object after the free.
				th.Fence()
				l.alloc.Free(node)
			}
			return false
		}
		if node == 0 {
			node = l.alloc.Alloc()
			if node == 0 {
				panic("machalg: allocator pool exhausted")
			}
			th.Store(node+offKey, key)
		}
		// Point the private node at cur; the publishing CAS below is an
		// atomic operation and therefore drains these buffered stores
		// before the node becomes reachable.
		th.Store(node+offNext, pack(r.cur, 0))
		if th.CAS(r.prev, pack(r.cur, 0), pack(node, 0)) {
			return true
		}
	}
}

// Delete removes key from the list (Figure 1's delete()): mark the node
// logically deleted, then unlink and retire it. It reports whether the
// key was present.
func (l *List) Delete(th *tso.Thread, key tso.Word) bool {
	if key >= maxListKey {
		panic("machalg: key too large")
	}
	for {
		r := l.find(th, key)
		if !r.found {
			return false
		}
		// Logical deletion (Figure 1 line 25).
		if !th.CAS(r.cur+offNext, pack(r.next, 0), pack(r.next, 1)) {
			continue
		}
		// Physical removal (Figure 1 line 26). The CAS makes the
		// removal globally visible, as retire() requires.
		if th.CAS(r.prev, pack(r.cur, 0), pack(r.next, 0)) {
			l.hp.Retire(th, r.cur)
		} else {
			// Another thread will unlink it during its traversal.
			l.find(th, key)
		}
		return true
	}
}

// Snapshot walks the list outside any run (after Machine.Run returns)
// and returns the unmarked keys in order. For verification only.
func (l *List) Snapshot(m *tso.Machine) []tso.Word {
	var keys []tso.Word
	w := m.PeekWord(l.head)
	addr, _ := unpack(w)
	for addr != 0 {
		nw := m.PeekWord(addr + offNext)
		next, mark := unpack(nw)
		if mark == 0 {
			keys = append(keys, m.PeekWord(addr+offKey))
		}
		addr = next
	}
	return keys
}
