package machalg

import "testing"

// The demo entry points power `tbtso-sim -demo ...`; pin their
// outcomes so the CLI's story stays true.

func TestReclaimRaceDemoMatrix(t *testing.T) {
	cases := []struct {
		delta   uint64
		mode    HPMode
		wantUAF bool
	}{
		{0, HPFenced, false},
		{0, HPUnsafe, true},
		{400, HPUnsafe, true},
		{0, HPFenceFree, true},
		{400, HPFenceFree, false},
	}
	for _, tc := range cases {
		out := ReclaimRaceDemo(tc.delta, tc.mode)
		if out.Err != nil {
			t.Fatalf("Δ=%d mode=%v: %v", tc.delta, tc.mode, out.Err)
		}
		if out.UseAfterFree != tc.wantUAF {
			t.Fatalf("Δ=%d mode=%v: UAF=%v want %v", tc.delta, tc.mode, out.UseAfterFree, tc.wantUAF)
		}
	}
}

func TestDequeDemoMatrix(t *testing.T) {
	if out := DequeDemo(0, 0, false, 60); out.Duplicated == 0 && out.Lost == 0 {
		t.Fatal("waitless steal on plain TSO reported clean")
	}
	if out := DequeDemo(0, 2, false, 60); out.Duplicated == 0 && out.Lost == 0 {
		t.Fatal("waitless steal under TSO[S] reported clean")
	}
	if out := DequeDemo(200, 0, true, 8); out.Duplicated != 0 || out.Lost != 0 {
		t.Fatalf("Δ-waiting steal on TBTSO reported %d dup / %d lost", out.Duplicated, out.Lost)
	}
}

func TestHPModeStrings(t *testing.T) {
	for _, m := range []HPMode{HPFenced, HPFenceFree, HPUnsafe, HPAdapted} {
		if m.String() == "" {
			t.Fatalf("mode %d has empty name", int(m))
		}
	}
	if HPMode(99).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}
