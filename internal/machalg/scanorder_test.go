package machalg

import (
	"sync/atomic"
	"testing"

	"tbtso/internal/tso"
)

// The §4.1 copy rule, isolated: a thread may copy a hazard pointer from
// a LOW slot to a HIGH slot without a fence only because reclaimers
// scan slots in ASCENDING order — if the scan observes the low slot's
// overwrite, TSO's store order guarantees the copy already committed
// and the ascending scan will see it in the high slot. A descending
// scan can read the high slot before the copy commits and the low slot
// after the overwrite commits, missing the object entirely.
//
// runCopyRace orchestrates exactly that window: the reader copies
// hp0→hp1 and overwrites hp0 (both buffered); the reclaimer reads the
// scan's FIRST slot; the reader then fences (committing both stores);
// the reclaimer finishes the scan and reclaims.
func runCopyRace(t *testing.T, descending bool) (uaf bool) {
	t.Helper()
	m := tso.New(tso.Config{Delta: 0, Policy: tso.DrainAdversarial, Seed: 1, MaxTicks: 1_000_000})
	alloc := NewAllocator(m, 4, nodeWords)
	// HPUnsafe: no Δ deferral, so reclamation acts immediately — the
	// scan order is the only thing under test. K=2 slots per thread.
	hp := NewHPDomain(m, alloc, HPUnsafe, 2, 2, 5, 0)
	hp.SetScanDescending(descending)

	v := alloc.Alloc()
	m.SetWord(v+offKey, 7)

	// Go-side phase orchestration (no machine fences implied).
	var phase atomic.Int32 // 0: setup, 1: copy buffered, 2: first slot read, 3: committed, 4: reclaimed
	m.Spawn("reader", func(th *tso.Thread) {
		hp.Protect(th, 0, v) // hp0 := v
		th.Fence()           // make the initial protection visible
		phase.Store(1)
		for phase.Load() < 2 {
			th.Yield()
		}
		// The §4.1 copy: hp1 := hp0 (no fence), then overwrite hp0.
		hp.Copy(th, 1, v)
		hp.Clear(th, 0)
		th.Fence() // both stores commit now, between the two scan reads
		phase.Store(3)
		for phase.Load() < 4 {
			th.Yield()
		}
		_ = th.Load(v + offKey) // the access the copy should protect
		hp.Clear(th, 1)
	})
	m.Spawn("reclaimer", func(th *tso.Thread) {
		for phase.Load() < 1 {
			th.Yield()
		}
		// Manually perform Reclaim's scan with a pause between slots.
		firstSlot, secondSlot := 0, 1
		if descending {
			firstSlot, secondSlot = 1, 0
		}
		first := th.Load(hp.slot(0, firstSlot))
		phase.Store(2)
		for phase.Load() < 3 {
			th.Yield()
		}
		second := th.Load(hp.slot(0, secondSlot))
		protected := tso.Addr(first) == v || tso.Addr(second) == v
		if !protected {
			alloc.Free(v)
		}
		phase.Store(4)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	for _, viol := range alloc.Violations() {
		if viol.Kind == "load" {
			return true
		}
	}
	return false
}

func TestAscendingScanMakesCopiesSafe(t *testing.T) {
	if runCopyRace(t, false) {
		t.Fatal("ascending scan missed a copied hazard pointer")
	}
}

func TestDescendingScanBreaksCopies(t *testing.T) {
	if !runCopyRace(t, true) {
		t.Fatal("descending scan did not exhibit the copy race — the §4.1 ordering rule looks vacuous")
	}
}

func TestDomainScanOrderFlagOnReclaim(t *testing.T) {
	// The flag must actually change Reclaim's behaviour (smoke).
	m := tso.New(tso.Config{Delta: 100, Policy: tso.DrainEager, Seed: 2})
	alloc := NewAllocator(m, 8, nodeWords)
	hp := NewHPDomain(m, alloc, HPFenced, 1, 3, 5, 100)
	hp.SetScanDescending(true)
	m.Spawn("t", func(th *tso.Thread) {
		h := alloc.Alloc()
		th.Fence()
		hp.Protect(th, 2, h)
		hp.Retire(th, alloc.Alloc())
		hp.Reclaim(th)
		_ = th.Load(h + offKey)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if len(alloc.Violations()) != 0 {
		t.Fatalf("violations in smoke: %v", alloc.Violations())
	}
}
