package machalg

import (
	"fmt"
	"strings"

	"tbtso/internal/mc"
)

// Model-checker program builders: straight-line mc.Program fragments of
// the paper's fence-free algorithms, sized so the parallel explorer
// (internal/mc explore.go) proves their key invariants EXHAUSTIVELY at
// a bound — territory the reference explorer cannot reach in practice.
// The fragments follow the litmus convention: run every interleaving,
// then forbid the register assignments that would witness a violation
// (a hazard scan miss, a mutual-exclusion overlap).

// MCFFHP builds `rounds` full FFHP Protect+Scan rounds between
// `readers` fence-free readers and one reclaimer (the §4 fence-free
// hazard pointers under the flag principle).
//
// Variables: 0..rounds-1 are per-round "node r unlinked" flags (memory
// starts zeroed = every node linked); rounds+k is reader k's hazard
// slot. Per round r, reader k publishes its hazard (St hp[k], r+1 — no
// fence!) and validates (Ld unlink[r]); the reclaimer unlinks
// (St unlink[r], 1), fences, waits out the bound, and scans every
// hazard slot.
//
// Reader k's registers: reg r = round-r validation (0 ⇒ node r seen
// still linked). Reclaimer registers: reg r*readers+k = round-r scan of
// reader k's slot. The hazard-miss witness for (round r, reader k) is
// "reader validated node r (reg r = 0) ∧ reclaimer's round-r scan of
// slot k saw neither r+1 nor a later round's hazard" — see
// MCFFHPMissed.
func MCFFHP(rounds, readers, wait int) mc.Program {
	hp := func(k int) int { return rounds + k }
	var threads [][]mc.Op
	for k := 0; k < readers; k++ {
		var ops []mc.Op
		for r := 0; r < rounds; r++ {
			ops = append(ops, mc.St(hp(k), r+1), mc.Ld(r, r))
		}
		threads = append(threads, ops)
	}
	var rec []mc.Op
	for r := 0; r < rounds; r++ {
		rec = append(rec, mc.St(r, 1), mc.Fence(), mc.Wait(wait))
		for k := 0; k < readers; k++ {
			rec = append(rec, mc.Ld(hp(k), r*readers+k))
		}
	}
	threads = append(threads, rec)
	regs := rounds * readers
	if rounds > regs {
		regs = rounds
	}
	return mc.Program{Threads: threads, Vars: rounds + readers, Regs: regs}
}

// MCFFHPMissed reports whether the outcome string witnesses a hazard
// miss in any round for any reader: the reader validated node r as
// still linked while the reclaimer's round-r scan of that reader's
// slot observed no hazard ≥ r+1 (an older value means the protect
// store never became visible to the scan — the reclaimer would free
// the node the reader is using).
func MCFFHPMissed(outcome string, rounds, readers int) bool {
	regs := parseOutcome(outcome)
	for r := 0; r < rounds; r++ {
		for k := 0; k < readers; k++ {
			validated := regs[k][r] == 0
			scanned := regs[readers][r*readers+k]
			if validated && scanned < r+1 {
				return true
			}
		}
	}
	return false
}

// MCFFBL builds the FFBL acquire/revoke/re-bias fragment (Figure 3e's
// core race as a litmus program): the biased owner takes the fast path
// with no fence and no atomic — announce (St A, 1) then check the
// revocation flag (Ld FLAG) — and holds the lock to the end of the
// fragment when the flag was clear. Each revoker serializes behind the
// internal lock L (RMW — the slow path's atomic), raises the flag,
// fences, waits out the bound, then reads the owner's announce; it
// enters only if the announce is invisible, then transfers the bias
// (St BIAS). The owner's trailing Ld BIAS observes the re-bias.
//
// Variables: 0 FLAG, 1 A (owner announce), 2 L (internal lock),
// 3 BIAS. Owner regs: 0 = flag check (0 ⇒ entered CS), 1 = observed
// bias word. Revoker i regs: 0 = RMW ticket (old L), 1 = announce
// check (0 ⇒ entered CS), so the mutual-exclusion witness is
// owner r0 = 0 ∧ any revoker r1 = 0 — see MCFFBLOverlap. With
// revokers ≥ 2 the revoker threads are identical, exercising the
// explorer's symmetry reduction; revoker–revoker exclusion is the
// internal lock's job and outside this fragment's scope (the RMW
// models the slow path's atomic, not a held lock).
func MCFFBL(revokers, wait int) mc.Program {
	owner := []mc.Op{mc.St(1, 1), mc.Ld(0, 0), mc.Ld(3, 1)}
	threads := [][]mc.Op{owner}
	for i := 0; i < revokers; i++ {
		threads = append(threads, []mc.Op{
			mc.RMW(2, 1, 0),
			mc.St(0, 1),
			mc.Fence(),
			mc.Wait(wait),
			mc.Ld(1, 1),
			mc.St(3, 2),
		})
	}
	return mc.Program{Threads: threads, Vars: 4, Regs: 2}
}

// MCFFBLOverlap reports whether the outcome string witnesses a
// mutual-exclusion violation: the owner entered the critical section
// on the fence-free fast path while some revoker concluded the owner
// was absent.
func MCFFBLOverlap(outcome string, revokers int) bool {
	regs := parseOutcome(outcome)
	if regs[0][0] != 0 {
		return false // owner saw the flag and backed off
	}
	for i := 1; i <= revokers; i++ {
		if regs[i][1] == 0 {
			return true
		}
	}
	return false
}

// parseOutcome decodes the checker's canonical "T0:r0=1 T1:r0=0 ..."
// outcome string into per-thread register values.
func parseOutcome(outcome string) [][]int {
	var regs [][]int
	for _, part := range strings.Fields(outcome) {
		var t, r, v int
		if _, err := fmt.Sscanf(part, "T%d:r%d=%d", &t, &r, &v); err != nil {
			panic("machalg: unparseable mc outcome " + outcome)
		}
		for len(regs) <= t {
			regs = append(regs, nil)
		}
		for len(regs[t]) <= r {
			regs[t] = append(regs[t], 0)
		}
		regs[t][r] = v
	}
	return regs
}
