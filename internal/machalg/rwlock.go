package machalg

import "tbtso/internal/tso"

// PRWLock is a passive reader-writer lock in the spirit of Liu, Zhang
// and Chen [23] (§8's related work), rebuilt on the TBTSO bound: the
// read-side fast path raises a per-reader flag with NO fence and checks
// for a writer; the writer — the slow path — publishes its intent,
// fences, waits out Δ so every reader flag raised before its
// publication is visible, and then waits for the raised flags to drop.
// Liu et al. used inter-processor interrupts to flush remote store
// buffers; TBTSO's temporal bound replaces the IPIs, which is precisely
// the §8 observation that motivated this reproduction's extension.
type PRWLock struct {
	readers tso.Addr // one flag word per reader thread
	n       int
	writer  tso.Addr // writer-present flag
	wl      *SpinLock
	delta   uint64
}

// NewPRWLock allocates the lock for n reader threads. delta is the
// machine's Δ bound in ticks.
func NewPRWLock(m *tso.Machine, n int, delta uint64) *PRWLock {
	return &PRWLock{
		readers: m.AllocWords(n),
		n:       n,
		writer:  m.AllocWords(1),
		wl:      NewSpinLock(m),
		delta:   delta,
	}
}

// RLock enters the read side for reader slot r. The fast path — no
// writer around — is one plain store and one load, fence-free.
//
//tbtso:fencefree
func (l *PRWLock) RLock(th *tso.Thread, r int) {
	slot := l.readers + tso.Addr(r)
	for {
		th.Store(slot, 1)
		// no fence — the writer's Δ wait covers our flag
		if th.Load(l.writer) == 0 {
			return
		}
		// A writer is active or pending: back off and wait it out.
		th.Store(slot, 0)
		for th.Load(l.writer) != 0 {
			th.Yield()
		}
	}
}

// RUnlock leaves the read side.
//
//tbtso:fencefree
func (l *PRWLock) RUnlock(th *tso.Thread, r int) {
	th.Store(l.readers+tso.Addr(r), 0)
}

// Lock acquires the write side: serialize writers, publish intent,
// fence, wait Δ (every reader flag raised before our publication is
// now visible), then wait for raised flags to drop.
//
//tbtso:requires-fence
func (l *PRWLock) Lock(th *tso.Thread) {
	l.wl.Lock(th)
	th.Store(l.writer, 1)
	th.Fence()
	deadline := th.Clock() + l.delta
	th.WaitUntil(deadline)
	for r := 0; r < l.n; r++ {
		for th.Load(l.readers+tso.Addr(r)) != 0 {
			th.Yield()
		}
	}
}

// Unlock releases the write side.
func (l *PRWLock) Unlock(th *tso.Thread) {
	th.Store(l.writer, 0)
	l.wl.Unlock(th)
}
