package machalg

import (
	"testing"

	"tbtso/internal/tso"
)

func runPeterson(seed int64, fenced bool, iters, csWork int) (*csRecorder, tso.Result) {
	m := tso.New(tso.Config{Policy: tso.DrainAdversarial, Seed: seed, MaxTicks: 2_000_000})
	p := NewPeterson(m, fenced)
	rec := &csRecorder{}
	for me := 0; me < 2; me++ {
		m.Spawn("p", func(th *tso.Thread) {
			for i := 0; i < iters; i++ {
				p.Lock(th, me)
				enter := th.Clock()
				for k := 0; k < csWork; k++ {
					th.Yield()
				}
				rec.add(enter, th.Clock())
				p.Unlock(th, me)
				th.Yield()
			}
			th.Fence()
		})
	}
	res := m.Run()
	return rec, res
}

func TestPetersonFencedIsSoundOnTSO(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rec, res := runPeterson(seed, true, 25, 8)
		if res.Err != nil {
			t.Fatalf("seed=%d: %v", seed, res.Err)
		}
		if a, b, bad := rec.overlap(); bad {
			t.Fatalf("seed=%d: fenced Peterson overlapped: %v %v", seed, a, b)
		}
	}
}

func TestPetersonUnfencedFailsOnTSO(t *testing.T) {
	// The §1 motivation, executable: drop the fence and TSO's
	// store/load reordering breaks mutual exclusion.
	for seed := int64(0); seed < 30; seed++ {
		rec, _ := runPeterson(seed, false, 25, 8)
		if _, _, bad := rec.overlap(); bad {
			return // reproduced
		}
	}
	t.Fatal("unfenced Peterson never violated mutual exclusion on adversarial TSO")
}
