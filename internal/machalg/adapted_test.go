package machalg

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"tbtso/internal/tso"
)

// §6.2 on the abstract machine: plain TSO (Δ = 0) plus periodic timer
// interrupts that drain store buffers and stamp the time array A. The
// adapted algorithms establish visibility from A — and are sound
// without any hardware Δ bound.

const adaptedPeriod = 60

// newAdaptedMachine wires a plain-TSO machine with OS ticks and a time
// array for `threads` threads.
func newAdaptedMachine(seed int64, threads int, maxTicks uint64) (*tso.Machine, tso.Addr) {
	m := tso.New(tso.Config{
		Delta:      0, // plain TSO: no hardware bound at all
		Policy:     tso.DrainAdversarial,
		TickPeriod: adaptedPeriod,
		Seed:       seed,
		MaxTicks:   maxTicks,
	})
	board := m.AllocWords(threads)
	m.SetTickBoard(board)
	return m, board
}

func TestAdaptedFFHPDirectedRaceSafe(t *testing.T) {
	// The directed reclamation race of TestReclaimRaceMatrix, §6.2
	// style: the reader's hazard-pointer store is drained by its timer
	// interrupt, and the reclaimer defers to min(A) — no UAF, and the
	// node IS freed once the reader moves on.
	m, board := newAdaptedMachine(1, 2, 1_000_000)
	alloc := NewAllocator(m, 4, nodeWords)
	hp := NewHPDomain(m, alloc, HPAdapted, 2, 3, 7, 0)
	hp.SetBoard(board)
	l := NewList(m, hp, alloc)

	node := alloc.Alloc()
	m.SetWord(node+offKey, 1)
	m.SetWord(node+offNext, pack(0, 0))
	m.SetWord(l.head, pack(node, 0))

	var validated, released atomic.Bool
	m.Spawn("reader", func(th *tso.Thread) {
		curW := th.Load(l.head)
		cur, _ := unpack(curW)
		hp.Protect(th, 1, cur) // no fence (HPAdapted)
		if th.Load(l.head) != pack(cur, 0) {
			validated.Store(true)
			return
		}
		validated.Store(true)
		for !released.Load() {
			th.Yield()
		}
		_ = th.Load(cur + offKey)
		hp.Clear(th, 1)
	})
	freedWhileProtected := false
	m.Spawn("reclaimer", func(th *tso.Thread) {
		for !validated.Load() {
			th.Yield()
		}
		if !th.CAS(l.head, pack(node, 0), pack(0, 0)) {
			released.Store(true)
			return
		}
		hp.Retire(th, node)
		deadline := th.Clock() + 6*adaptedPeriod
		for th.Clock() < deadline {
			hp.Reclaim(th)
			if alloc.LiveObjects() == 0 {
				freedWhileProtected = true
				break
			}
		}
		released.Store(true)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if v := alloc.Violations(); len(v) != 0 {
		t.Fatalf("adapted FFHP produced violations on plain TSO + ticks: %v", v[0])
	}
	if freedWhileProtected {
		t.Fatal("node freed while the reader's (drained) hazard pointer protected it")
	}
}

func TestAdaptedFFHPWithoutTicksMakesNoProgress(t *testing.T) {
	// Without the OS support, A never advances, so the adapted reclaim
	// can never establish visibility: safe, but nothing is ever freed —
	// the adaptation genuinely depends on the ticks.
	m := tso.New(tso.Config{Policy: tso.DrainAdversarial, Seed: 2, MaxTicks: 200_000})
	board := m.AllocWords(1)
	alloc := NewAllocator(m, 8, nodeWords)
	hp := NewHPDomain(m, alloc, HPAdapted, 1, 3, 4, 0)
	hp.SetBoard(board)
	m.Spawn("t", func(th *tso.Thread) {
		for i := 0; i < 3; i++ {
			obj := alloc.Alloc()
			th.Fence()
			hp.rlists[0] = append(hp.rlists[0], retiredObj{obj: obj, t: th.Clock()})
			hp.rcount[0]++
		}
		hp.Reclaim(th)
		hp.Reclaim(th)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if _, f := alloc.Counts(); f != 0 {
		t.Fatalf("freed %d objects with A frozen at 0", f)
	}
	if len(alloc.Violations()) != 0 {
		t.Fatal("violations without any frees?")
	}
}

func TestAdaptedFFHPConcurrentChurnSafe(t *testing.T) {
	// Random list churn, plain TSO + ticks, adapted reclamation: no
	// violations, reclamation progresses.
	for seed := int64(0); seed < 4; seed++ {
		const threads = 3
		m, board := newAdaptedMachine(seed, threads, 8_000_000)
		alloc := NewAllocator(m, 256, nodeWords)
		h := threads * 3
		hp := NewHPDomain(m, alloc, HPAdapted, threads, 3, h+4, 0)
		hp.SetBoard(board)
		l := NewList(m, hp, alloc)
		for i := 0; i < threads; i++ {
			s := seed*100 + int64(i)
			m.Spawn("w", func(th *tso.Thread) {
				rng := rand.New(rand.NewSource(s))
				for k := 0; k < 100; k++ {
					key := tso.Word(rng.Intn(12))
					switch rng.Intn(4) {
					case 0:
						l.Insert(th, key)
					case 1:
						l.Delete(th, key)
					default:
						l.Lookup(th, key)
					}
				}
				for i := 0; i < 3; i++ {
					hp.Clear(th, i)
				}
			})
		}
		res := m.Run()
		if res.Err != nil {
			t.Fatalf("seed=%d: %v", seed, res.Err)
		}
		if v := alloc.Violations(); len(v) != 0 {
			t.Fatalf("seed=%d: violations %v", seed, v[0])
		}
		st := hp.Stats()
		if st.Retired > 0 && st.Freed == 0 {
			t.Fatalf("seed=%d: adapted reclamation made no progress (%d retired)", seed, st.Retired)
		}
	}
}

func TestAdaptedFFBLMutualExclusion(t *testing.T) {
	// The §6.2 adapted biased lock: sound on plain TSO as long as the
	// timer interrupts run.
	for _, echo := range []bool{true, false} {
		for seed := int64(0); seed < 4; seed++ {
			m, board := newAdaptedMachine(seed, 2, 6_000_000)
			lk := NewFFBLAdapted(m, board, 2, echo)
			rec := &csRecorder{}
			body := func(th *tso.Thread) {
				enter := th.Clock()
				for i := 0; i < 10; i++ {
					th.Yield()
				}
				rec.add(enter, th.Clock())
			}
			m.Spawn("owner", func(th *tso.Thread) {
				for i := 0; i < 25; i++ {
					lk.OwnerLock(th)
					body(th)
					lk.OwnerUnlock(th)
					th.Yield()
				}
				th.Fence()
			})
			m.Spawn("other", func(th *tso.Thread) {
				for i := 0; i < 8; i++ {
					lk.OtherLock(th)
					body(th)
					lk.OtherUnlock(th)
					th.Yield()
				}
				th.Fence()
			})
			res := m.Run()
			if res.Err != nil {
				t.Fatalf("echo=%v seed=%d: %v", echo, seed, res.Err)
			}
			if a, b, bad := rec.overlap(); bad {
				t.Fatalf("echo=%v seed=%d: overlapping critical sections %v and %v", echo, seed, a, b)
			}
		}
	}
}
