package machalg

import "tbtso/internal/tso"

// SpinLock is a test-and-set lock in machine memory, used as the
// internal lock L of the biased locks (Figure 3's "standard lock").
type SpinLock struct {
	word tso.Addr
}

// NewSpinLock allocates the lock word.
func NewSpinLock(m *tso.Machine) *SpinLock {
	return &SpinLock{word: m.AllocWords(1)}
}

// TryLock attempts one acquisition.
func (s *SpinLock) TryLock(th *tso.Thread) bool {
	return th.CAS(s.word, 0, 1)
}

// Lock spins until acquired.
func (s *SpinLock) Lock(th *tso.Thread) {
	for !th.CAS(s.word, 0, 1) {
	}
}

// Unlock releases with a plain store, as x86 spinlocks do; the store
// becomes visible when it drains (within Δ on TBTSO).
func (s *SpinLock) Unlock(th *tso.Thread) {
	th.Store(s.word, 0)
}

// Flag packing for the FFBL (Figure 3e): 63-bit version v, flag bit f
// in bit 0.
func packFlag(v tso.Word, f tso.Word) tso.Word { return v<<1 | (f & 1) }

func unpackFlag(w tso.Word) (v, f tso.Word) { return w >> 1, w & 1 }

// The `ffbl-mach` verification pair is the machine-memory twin of
// lock's `ffbl` pair, with the reader replicated (copies=2) so the
// certificate also exercises mc's symmetry reduction: forbidden is any
// revoker entering while the owner's fast path validated flag1 down.
//
//tbtso:property pair=ffbl-mach forbid writer.flag1 == 0 && reader.flag0 == 0

// FFBL is the fence-free biased lock of Figure 3 (bottom row) expressed
// as machine programs. The owner's lock() issues no fence and no atomic
// operation on the fast path; the non-owner serializes behind the
// internal lock L, raises its versioned flag, fences, and waits either
// Δ ticks or for the owner's echo.
//
// With Echo disabled the non-owner always waits the full Δ, which is
// the ablation Figure 8 evaluates. On a machine with Delta == 0 (plain
// TSO) the Δ wait degenerates to nothing and the lock is unsound —
// tests use that to demonstrate why the bound matters.
type FFBL struct {
	flag0, flag1 tso.Addr
	l            *SpinLock
	delta        uint64
	echo         bool
	// §6.2 adapted variant: wait for every entry of the OS time array
	// A to pass the fence time instead of waiting Δ.
	board   tso.Addr
	threads int
}

// NewFFBL allocates the lock's shared variables. delta must be the
// machine's Δ bound (in ticks).
func NewFFBL(m *tso.Machine, delta uint64, echo bool) *FFBL {
	return &FFBL{
		flag0: m.AllocWords(1),
		flag1: m.AllocWords(1),
		l:     NewSpinLock(m),
		delta: delta,
		echo:  echo,
	}
}

// NewFFBLAdapted allocates the §6.2 adapted variant: the non-owner
// establishes visibility from the time array A at `board` (the
// machine's Config.TickBoard, threads entries) instead of a Δ bound.
// Sound on a plain-TSO machine with TickPeriod set.
func NewFFBLAdapted(m *tso.Machine, board tso.Addr, threads int, echo bool) *FFBL {
	return &FFBL{
		flag0:   m.AllocWords(1),
		flag1:   m.AllocWords(1),
		l:       NewSpinLock(m),
		echo:    echo,
		board:   board,
		threads: threads,
	}
}

// boundPassed reports whether every store performed at or before t0 is
// now globally visible, per the lock's configured bound.
func (b *FFBL) boundPassed(th *tso.Thread, t0 uint64) bool {
	if b.board != 0 {
		for i := 0; i < b.threads; i++ {
			if uint64(th.Load(b.board+tso.Addr(i))) <= t0 {
				return false
			}
		}
		return true
	}
	return th.Clock() > t0+b.delta
}

// ownerPublishAndCheck is the owner fast path's protocol kernel: raise
// flag0 with a plain machine store, then read flag1 with no fence in
// between. The machine-memory twin of lock.FFBL's helper of the same
// name; tbtso-verify extracts it as the writer side of the `ffbl-mach`
// pair (see docs/VERIFY.md).
//
//tbtso:verify pair=ffbl-mach role=writer
//tbtso:fencefree
func (b *FFBL) ownerPublishAndCheck(th *tso.Thread) tso.Word {
	th.Store(b.flag0, packFlag(0, 1)) //tbtso:model val=1
	// no fence (the whole point)
	return th.Load(b.flag1)
}

// OwnerLock is Figure 3f: raise flag0 with no fence; if flag1 is down,
// enter immediately (the common case). Otherwise lower flag0 — echoing
// flag1's version so the non-owner can cut its Δ wait short — and spin
// on trylock(L).
//
//tbtso:fencefree
func (b *FFBL) OwnerLock(th *tso.Thread) {
	if _, f := unpackFlag(b.ownerPublishAndCheck(th)); f == 0 {
		return // fast path: critical section entered with flag0.f = 1
	}
	for {
		v1, _ := unpackFlag(th.Load(b.flag1))
		if b.echo {
			th.Store(b.flag0, packFlag(v1, 0)) // lower + echo (Lines 59–63)
		} else {
			th.Store(b.flag0, packFlag(0, 0)) // lower only
		}
		// The trylock's atomic operation drains the buffered echo, so
		// echoes reach memory much faster than Δ (§6.1.2).
		if b.l.TryLock(th) {
			return // critical section entered holding L, flag0.f = 0
		}
	}
}

// OwnerUnlock is Figure 3g: branch on flag0.f (read through the store
// buffer, so the owner sees its own latest write).
//
//tbtso:fencefree
func (b *FFBL) OwnerUnlock(th *tso.Thread) {
	if _, f := unpackFlag(th.Load(b.flag0)); f == 1 {
		th.Store(b.flag0, packFlag(0, 0))
	} else {
		th.Store(b.flag0, packFlag(0, 0))
		b.l.Unlock(th)
	}
}

// otherAnnounce raises a fresh version of flag1 and fences (Figure 3h,
// lines 2–4), making the revocation announcement globally visible
// before the wait begins. Reader step 1 of the `ffbl-mach` pair.
//
//tbtso:verify pair=ffbl-mach role=reader step=1 copies=2
//tbtso:requires-fence
func (b *FFBL) otherAnnounce(th *tso.Thread) tso.Word {
	v1, _ := unpackFlag(th.Load(b.flag1))
	myV := v1 + 1
	th.Store(b.flag1, packFlag(myV, 1)) //tbtso:model val=1
	th.Fence()
	return myV
}

// otherWaitDelta spins out the Δ bound from t0: any store the owner
// buffered before our announcement committed has drained by the time
// this returns. Reader step 2 of the `ffbl-mach` pair; the clock spin
// is extracted as a Wait op.
//
//tbtso:verify pair=ffbl-mach role=reader step=2
func (b *FFBL) otherWaitDelta(th *tso.Thread, t0 uint64) {
	for th.Clock() <= t0+b.delta { //tbtso:model wait
	}
}

// otherProbeOwner reads the owner's flag once and reports whether the
// owner is out of the critical section. Reader step 3 of the
// `ffbl-mach` pair.
//
//tbtso:verify pair=ffbl-mach role=reader step=3
func (b *FFBL) otherProbeOwner(th *tso.Thread) bool {
	_, f := unpackFlag(th.Load(b.flag0))
	return f == 0
}

// OtherLock is Figure 3h: acquire L, raise a new version of flag1,
// fence, then wait until Δ ticks pass or the owner echoes our version;
// finally wait for flag0.f = 0.
//
//tbtso:requires-fence
func (b *FFBL) OtherLock(th *tso.Thread) {
	b.l.Lock(th)
	myV := b.otherAnnounce(th)
	now := th.Clock()
	if !b.echo && b.board == 0 {
		// No echo to watch for and a plain Δ bound: the wait is the
		// extracted protocol step verbatim. (With echo disabled the
		// owner only ever writes version 0 to flag0 and myV ≥ 1, so the
		// echo check below could never fire anyway.)
		b.otherWaitDelta(th, now)
	} else {
		for {
			if b.boundPassed(th, now) {
				break
			}
			v0, _ := unpackFlag(th.Load(b.flag0))
			if v0 == myV {
				break // owner echoed: it is waiting on L, not in the CS
			}
		}
	}
	for {
		if b.otherProbeOwner(th) {
			return
		}
	}
}

// OtherUnlock is Figure 3h's unlock: bump flag1's version with the flag
// down, then release L.
//
//tbtso:fencefree
func (b *FFBL) OtherUnlock(th *tso.Thread) {
	v1, _ := unpackFlag(th.Load(b.flag1))
	th.Store(b.flag1, packFlag(v1+1, 0))
	b.l.Unlock(th)
}

// BaselineBiased is the basic (not fence-free) biased lock of Figure 3
// (top row): the owner fences after raising its flag.
type BaselineBiased struct {
	flag0, flag1 tso.Addr
	l            *SpinLock
}

// NewBaselineBiased allocates the lock's shared variables.
func NewBaselineBiased(m *tso.Machine) *BaselineBiased {
	return &BaselineBiased{flag0: m.AllocWords(1), flag1: m.AllocWords(1), l: NewSpinLock(m)}
}

// OwnerLock is Figure 3b.
//
//tbtso:requires-fence
func (b *BaselineBiased) OwnerLock(th *tso.Thread) {
	th.Store(b.flag0, 1)
	th.Fence()
	if th.Load(b.flag1) != 0 {
		th.Store(b.flag0, 0)
		b.l.Lock(th)
	}
}

// OwnerUnlock is Figure 3c.
func (b *BaselineBiased) OwnerUnlock(th *tso.Thread) {
	if th.Load(b.flag0) != 0 {
		th.Store(b.flag0, 0)
	} else {
		b.l.Unlock(th)
	}
}

// OtherLock is Figure 3d.
//
//tbtso:requires-fence
func (b *BaselineBiased) OtherLock(th *tso.Thread) {
	b.l.Lock(th)
	th.Store(b.flag1, 1)
	th.Fence()
	for th.Load(b.flag0) != 0 {
	}
}

// OtherUnlock is Figure 3d's unlock.
func (b *BaselineBiased) OtherUnlock(th *tso.Thread) {
	th.Store(b.flag1, 0)
	b.l.Unlock(th)
}
