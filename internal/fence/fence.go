// Package fence provides an explicit memory-fence cost model for the
// native benchmarks.
//
// Go's sync/atomic operations are sequentially consistent, so a Go
// program cannot literally elide a hardware fence the way the paper's C
// code does. What the paper measures, though, is the *relative* cost of
// the fast path with and without a serializing instruction. This package
// makes that cost explicit: algorithms that the paper writes with a
// `fence` call Full() — a real serializing read-modify-write on a
// thread-private cache line, which is what an MFENCE costs in the
// uncontended case — and the fence-free variants simply do not call it.
// See DESIGN.md §1 for the substitution rationale.
package fence

import "sync/atomic"

// CacheLine is the assumed cache-line size in bytes, used for padding
// throughout the repository.
const CacheLine = 64

// Line is a thread-private cache line on which Full() serializes. Each
// worker should own one (via NewLines or by embedding) so that fences do
// not create cross-core traffic, mirroring MFENCE's core-local cost.
type Line struct {
	_ [CacheLine]byte
	v atomic.Uint64
	_ [CacheLine - 8]byte
}

// Full issues a full memory barrier: a locked read-modify-write on the
// private line. On amd64 this compiles to LOCK XADD, which drains the
// store buffer exactly as MFENCE does.
func (l *Line) Full() {
	l.v.Add(0)
}

// Lines is a set of per-thread fence lines.
type Lines struct {
	ls []Line
}

// NewLines returns n independent padded fence lines.
func NewLines(n int) *Lines {
	return &Lines{ls: make([]Line, n)}
}

// Full issues a full barrier on thread tid's private line.
func (f *Lines) Full(tid int) { f.ls[tid].Full() }
