package fence

import (
	"sync"
	"testing"
	"unsafe"
)

func TestLinePadding(t *testing.T) {
	// Two adjacent Lines must not share a cache line.
	if sz := unsafe.Sizeof(Line{}); sz < 2*CacheLine {
		t.Fatalf("Line size %d too small for padding", sz)
	}
}

func TestFullIsCallable(t *testing.T) {
	var l Line
	for i := 0; i < 1000; i++ {
		l.Full()
	}
}

func TestLinesConcurrent(t *testing.T) {
	f := NewLines(4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 10000; k++ {
				f.Full(i)
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkFenceFull(b *testing.B) {
	var l Line
	for i := 0; i < b.N; i++ {
		l.Full()
	}
}
