package obs

import (
	"testing"

	"tbtso/internal/tso"
)

// runMachine drives a small two-thread machine with the given sinks
// and returns its result.
func runMachine(t *testing.T, cfg tso.Config, sinks ...tso.Sink) tso.Result {
	t.Helper()
	cfg.Sinks = sinks
	m := tso.New(cfg)
	a := m.AllocWords(4)
	m.Spawn("writer", func(th *tso.Thread) {
		for i := 0; i < 30; i++ {
			th.Store(a+tso.Addr(i%4), tso.Word(i))
			if i%10 == 9 {
				th.Fence()
			}
		}
	})
	m.Spawn("reader", func(th *tso.Thread) {
		for i := 0; i < 20; i++ {
			_ = th.Load(a + tso.Addr(i%4))
			if i%7 == 6 {
				th.CAS(a, 0, tso.Word(i))
			}
		}
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("machine run: %v", res.Err)
	}
	return res
}

func TestRingSinkRetainsTail(t *testing.T) {
	ring := NewRingSink(16)
	full := &sliceSink{}
	runMachine(t, tso.Config{Delta: 25, Policy: tso.DrainRandom, Seed: 3}, ring, full)
	if ring.Total() != uint64(len(full.evs)) {
		t.Fatalf("ring saw %d events, full sink %d", ring.Total(), len(full.evs))
	}
	got := ring.Events()
	if len(got) != 16 {
		t.Fatalf("ring retained %d events, want 16", len(got))
	}
	want := full.evs[len(full.evs)-16:]
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ring event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if ring.Dropped() != ring.Total()-16 {
		t.Fatalf("dropped = %d, want %d", ring.Dropped(), ring.Total()-16)
	}
}

func TestRingSinkUnderCapacity(t *testing.T) {
	ring := NewRingSink(1 << 16)
	runMachine(t, tso.Config{Delta: 25, Policy: tso.DrainEager, Seed: 1}, ring)
	if ring.Dropped() != 0 {
		t.Fatalf("dropped %d events under capacity", ring.Dropped())
	}
	if uint64(len(ring.Events())) != ring.Total() {
		t.Fatalf("events %d != total %d", len(ring.Events()), ring.Total())
	}
}

func TestMachineMetricsMatchStats(t *testing.T) {
	reg := NewRegistry()
	mm := NewMachineMetrics(reg)
	res := runMachine(t, tso.Config{Delta: 30, Policy: tso.DrainRandom, Seed: 7}, mm)

	check := func(name string, want uint64) {
		t.Helper()
		if got := reg.Counter(name).Load(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check(MetricStores, res.Stats.Stores)
	check(MetricLoads, res.Stats.Loads)
	check(MetricRMWs, res.Stats.RMWs)
	check(MetricFences, res.Stats.Fences)
	check(MetricCommits, res.Stats.Commits)
	for c := 0; c < tso.NumDrainCauses; c++ {
		cause := tso.DrainCause(c)
		check("machine.drain."+cause.String(), res.Stats.Drains.ByCause(cause))
	}
	lat := reg.Histogram(MetricCommitLatency, CommitLatencyBuckets())
	if lat.Count() != res.Stats.Commits {
		t.Errorf("latency samples = %d, want %d", lat.Count(), res.Stats.Commits)
	}
	if uint64(lat.Max()) > res.Stats.MaxCommitLatency {
		t.Errorf("latency max %d exceeds stats max %d", lat.Max(), res.Stats.MaxCommitLatency)
	}
	occ := reg.Histogram(MetricBufOccupancy, OccupancyBuckets())
	if occ.Count() != res.Stats.Stores {
		t.Errorf("occupancy samples = %d, want one per store %d", occ.Count(), res.Stats.Stores)
	}
	if int(occ.Max()) > res.Stats.MaxBufOccupancy {
		t.Errorf("occupancy max %d exceeds stats max %d", occ.Max(), res.Stats.MaxBufOccupancy)
	}
}

// TestSinkEmitZeroAlloc asserts the hot-path sinks allocate nothing
// per event once attached.
func TestSinkEmitZeroAlloc(t *testing.T) {
	ring := NewRingSink(64)
	mm := NewMachineMetrics(NewRegistry())
	mm.BeginRun([]string{"a", "b"}, 10)
	ev := tso.Event{Tick: 5, Thread: 1, Kind: tso.EvStore, Addr: 2, Val: 3}
	commit := tso.Event{Tick: 9, Thread: 1, Kind: tso.EvCommit, Addr: 2, Val: 3, Enq: 5}
	allocs := testing.AllocsPerRun(1000, func() {
		ring.Emit(ev)
		mm.Emit(ev)
		mm.Emit(commit)
	})
	if allocs != 0 {
		t.Fatalf("sink emit allocates %.1f bytes/op, want 0", allocs)
	}
}

type sliceSink struct{ evs []tso.Event }

func (s *sliceSink) Emit(e tso.Event) { s.evs = append(s.evs, e) }
