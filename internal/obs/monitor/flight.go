package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tbtso/internal/obs"
	"tbtso/internal/tso"
)

// FlightRecorderKind is the artifact's "kind" field, following the
// fuzz/verify artifact convention (fuzz.Artifact.Kind and the certs/
// counterexamples are likewise self-identifying JSON documents).
const FlightRecorderKind = "flight-recorder"

// FlightRecorder is the crash-dump side of monitoring: a single sink
// that wraps a RingSink (the retained event tail), a monitor Set, and
// the metrics registry, and can dump all three as one replayable JSON
// artifact — the violation report, the metrics snapshot, and the tail
// of the trace as an embedded Perfetto document openable at
// ui.perfetto.dev. Attach the recorder to the machine instead of the
// individual pieces; it fans events out.
//
// Dump reads the ring without synchronization, so dump after the run
// (or from the serve endpoint while the machine is idle); a mid-run
// dump over a live machine yields a torn tail.
type FlightRecorder struct {
	ring  *obs.RingSink
	reg   *obs.Registry
	set   *Set
	names []string
	delta uint64
}

// NewFlightRecorder returns a recorder retaining the last ringCap
// events, checking with set (nil for an empty Set), publishing
// snapshots of reg (nil for a private registry).
func NewFlightRecorder(reg *obs.Registry, set *Set, ringCap int) *FlightRecorder {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if set == nil {
		set = NewSet()
	}
	return &FlightRecorder{ring: obs.NewRingSink(ringCap), reg: reg, set: set}
}

// Monitors returns the recorder's monitor set (to attach monitors or
// read violations).
func (f *FlightRecorder) Monitors() *Set { return f.set }

// Ring returns the underlying ring sink.
func (f *FlightRecorder) Ring() *obs.RingSink { return f.ring }

// BeginRun implements tso.RunObserver.
func (f *FlightRecorder) BeginRun(names []string, delta uint64) {
	f.names = append(f.names[:0], names...)
	f.delta = delta
	f.set.BeginRun(names, delta)
}

// Emit implements tso.Sink: one ring write plus the monitor fan-out.
//
//tbtso:fencefree
func (f *FlightRecorder) Emit(e tso.Event) {
	f.ring.Emit(e)
	f.set.Emit(e)
}

// SetHazardRange forwards a hazard slot range to the monitor set.
func (f *FlightRecorder) SetHazardRange(base tso.Addr, n int) {
	f.set.SetHazardRange(base, n)
}

// FlightDump is the artifact wire form: the violation report, the
// metrics snapshot, event counts, and the retained trace tail as an
// embedded Perfetto document.
type FlightDump struct {
	Kind           string          `json:"kind"`
	Delta          uint64          `json:"delta"`
	Threads        []string        `json:"threads,omitempty"`
	TotalEvents    uint64          `json:"total_events"`
	RetainedEvents int             `json:"retained_events"`
	DroppedEvents  uint64          `json:"dropped_events"`
	Violations     []Violation     `json:"violations"`
	Metrics        []obs.Metric    `json:"metrics"`
	Trace          json.RawMessage `json:"trace"`
}

// Dump writes the flight artifact: violation report, metrics snapshot,
// and the retained event tail as an embedded Perfetto trace document.
func (f *FlightRecorder) Dump(w io.Writer) error {
	events := f.ring.Events()
	var trace bytes.Buffer
	if err := obs.PerfettoFromEvents(events, f.names, f.delta).WriteJSON(&trace); err != nil {
		return fmt.Errorf("monitor: rendering flight trace: %w", err)
	}
	violations := f.set.Violations()
	if violations == nil {
		violations = []Violation{}
	}
	doc := FlightDump{
		Kind:           FlightRecorderKind,
		Delta:          f.delta,
		Threads:        f.names,
		TotalEvents:    f.ring.Total(),
		RetainedEvents: len(events),
		DroppedEvents:  f.ring.Dropped(),
		Violations:     violations,
		Metrics:        f.reg.Snapshot(),
		Trace:          json.RawMessage(bytes.TrimSpace(trace.Bytes())),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DumpOnViolation writes the artifact to dir/<name>.flight.json if any
// monitor has tripped, creating dir as needed. It returns the written
// path, or "" when there was nothing to report.
func (f *FlightRecorder) DumpOnViolation(dir, name string) (string, error) {
	if f.set.Ok() {
		return "", nil
	}
	return f.DumpToFile(dir, name)
}

// DumpToFile unconditionally writes the artifact to
// dir/<name>.flight.json, creating dir as needed, and returns the
// written path. Interruption handling uses this: a cancelled run dumps
// its tail for post-mortem even when no monitor tripped.
func (f *FlightRecorder) DumpToFile(dir, name string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".flight.json")
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := f.Dump(file); err != nil {
		file.Close()
		return "", err
	}
	return path, file.Close()
}

// ReadFlightDump parses a flight artifact (the embedded trace stays
// raw). It rejects documents of the wrong kind.
func ReadFlightDump(r io.Reader) (*FlightDump, error) {
	var doc FlightDump
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	if doc.Kind != FlightRecorderKind {
		return nil, fmt.Errorf("monitor: artifact kind %q, want %q", doc.Kind, FlightRecorderKind)
	}
	return &doc, nil
}
