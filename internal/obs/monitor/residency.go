package monitor

import (
	"fmt"

	"tbtso/internal/obs"
	"tbtso/internal/tso"
)

// Registry names the residency monitor publishes under.
const (
	// MetricResidency is the commit-latency histogram (ticks a store
	// stayed buffered), as observed by the monitor.
	MetricResidency = "monitor.residency_ticks"
	// MetricResidencyViolations counts commits whose residency
	// exceeded the monitored bound.
	MetricResidencyViolations = "monitor.residency.violations"
	// MetricResidencyMaxPrefix + "T<i>" is thread i's max-residency
	// gauge, reset at every BeginRun.
	MetricResidencyMaxPrefix = "monitor.residency.max_ticks."
)

// Residency is the Δ-residency monitor: it checks, on every commit
// event, that the store's residency (commit tick − enqueue tick) is
// within the expected bound — the paper's central temporal invariant,
// verified continuously on the live stream instead of only offline.
//
// The expected bound is the configured one, or, when configured as 0,
// the run's own Δ announced via BeginRun. If both are 0 the machine is
// plain TSO with no expectation and the monitor only records gauges
// and the histogram — unbounded TSO cannot violate a bound it never
// promised. Configuring a nonzero bound against a plain-TSO machine is
// exactly how the planted negative controls are caught: the machine
// makes no Δ promise, the algorithm under test assumes one, and the
// monitor reports every commit that betrays the assumption.
type Residency struct {
	rec       recorder
	bound     uint64 // configured; 0 = inherit the run's Δ
	effective uint64
	hist      *obs.Histogram
	viol      *obs.Counter
	reg       *obs.Registry
	maxRes    []*obs.Gauge
	maxVal    []uint64
}

// NewResidency returns a residency monitor publishing into reg (nil
// for a private registry). bound is the expected Δ in ticks; 0 means
// inherit each run's configured Δ.
func NewResidency(reg *obs.Registry, bound uint64) *Residency {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Residency{
		rec:   recorder{name: "residency"},
		bound: bound,
		reg:   reg,
		hist:  reg.Histogram(MetricResidency, obs.CommitLatencyBuckets()),
		viol:  reg.Counter(MetricResidencyViolations),
	}
}

// Name implements Monitor.
func (m *Residency) Name() string { return m.rec.name }

// Bound reports the bound in force for the current run (0 until the
// first BeginRun when configured to inherit).
func (m *Residency) Bound() uint64 { return m.effective }

// BeginRun implements tso.RunObserver: it resolves the effective bound
// and resets the per-thread max-residency gauges. Violations and the
// histogram accumulate across runs — a monitored suite reports once at
// the end.
func (m *Residency) BeginRun(names []string, delta uint64) {
	m.effective = m.bound
	if m.effective == 0 {
		m.effective = delta
	}
	for len(m.maxRes) < len(names) {
		i := len(m.maxRes)
		m.maxRes = append(m.maxRes, m.reg.Gauge(fmt.Sprintf("%sT%d", MetricResidencyMaxPrefix, i)))
		m.maxVal = append(m.maxVal, 0)
	}
	for i := range m.maxVal {
		m.maxVal[i] = 0
		m.maxRes[i].Set(0)
	}
}

// Emit implements tso.Sink. Commit events carry their enqueue tick, so
// the check is one subtraction and one compare — allocation-free.
//
//tbtso:fencefree
func (m *Residency) Emit(e tso.Event) {
	if e.Kind != tso.EvCommit {
		return
	}
	lat := e.Tick - e.Enq
	m.hist.Observe(int64(lat))
	if e.Thread >= 0 && e.Thread < len(m.maxVal) && lat > m.maxVal[e.Thread] {
		m.maxVal[e.Thread] = lat
		m.maxRes[e.Thread].Set(int64(lat))
	}
	if m.effective != 0 && lat > m.effective {
		m.viol.Inc()
		m.rec.record(Violation{
			Thread: e.Thread, Enq: e.Enq, Tick: e.Tick,
			Detail: fmt.Sprintf("store [%d]=%d stayed buffered %d ticks, bound %d",
				e.Addr, e.Val, lat, m.effective),
			Event: e.String(),
		})
	}
}

// Violations implements Monitor.
func (m *Residency) Violations() []Violation { return m.rec.violations() }
