package monitor

import (
	"fmt"
	"time"

	"tbtso/internal/obs"
	"tbtso/internal/tso"
)

// QuiesceCover is the quiescence monitor: it checks that a derived
// visibility bound covers the waits actually observed by the §6.1
// quiescence timing model. internal/quiesce publishes its per-episode
// wait and visibility times as registry histograms; EstimateDelta
// derives the Δ the hardware design would promise from the same
// parameters. If any observed sample exceeds the derived bound, that
// bound was too tight — the fence-free algorithms sized against it
// would be unsound — and the monitor reports it.
//
// QuiesceCover is registry-fed, not event-fed: the quiescence model
// runs in nanoseconds on real goroutines, not on the tick machine, so
// there is no event stream to watch. Emit is a no-op; call Check after
// the episodes of interest have been published (quiesce.VerifyCover
// wires this up with the derived bound).
type QuiesceCover struct {
	rec   recorder
	reg   *obs.Registry
	bound int64 // ns
	names []string
}

// QuiesceCoverHistograms are the registry histograms the monitor
// checks by default, all in nanoseconds (published by internal/quiesce):
// the per-operation quiescence wait and the bail-out-bounded store
// visibility, both of which the §6.1 design promises stay within the
// derived Δ. The raw "quiesce.visibility_ns" distribution is
// deliberately NOT covered — without the bail-out it has an unbounded
// tail; bounding it is exactly what the mechanism adds.
var QuiesceCoverHistograms = []string{
	"quiesce.wait_ns",
	"quiesce.bailout_visibility_ns",
}

// NewQuiesceCover returns a quiescence monitor checking the given
// derived bound against reg's quiesce histograms.
func NewQuiesceCover(reg *obs.Registry, bound time.Duration) *QuiesceCover {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &QuiesceCover{
		rec:   recorder{name: "quiesce-cover"},
		reg:   reg,
		bound: bound.Nanoseconds(),
		names: QuiesceCoverHistograms,
	}
}

// Name implements Monitor.
func (m *QuiesceCover) Name() string { return m.rec.name }

// Emit implements tso.Sink as a no-op: the quiescence model emits no
// machine events.
func (m *QuiesceCover) Emit(tso.Event) {}

// Check compares each published quiesce histogram's maximum against
// the derived bound and records a violation per uncovered histogram.
// Histograms not yet published (or empty) are skipped. Each Check call
// re-examines the histograms from scratch, so call it once, after the
// episodes of interest have run.
func (m *QuiesceCover) Check() []Violation {
	var out []Violation
	for _, name := range m.names {
		h, ok := m.reg.LookupHistogram(name)
		if !ok || h.Count() == 0 {
			continue
		}
		if max := h.Max(); max > m.bound {
			v := Violation{
				Thread: -1,
				Detail: fmt.Sprintf("%s max %v exceeds derived bound %v — the bound does not cover the observed waits",
					name, time.Duration(max), time.Duration(m.bound)),
			}
			m.rec.record(v)
			v.Monitor = m.rec.name
			out = append(out, v)
		}
	}
	return out
}

// Violations implements Monitor.
func (m *QuiesceCover) Violations() []Violation { return m.rec.violations() }
