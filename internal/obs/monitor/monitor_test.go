package monitor_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"tbtso/internal/fuzz"
	"tbtso/internal/litmus"
	"tbtso/internal/machalg"
	"tbtso/internal/obs"
	"tbtso/internal/obs/monitor"
	"tbtso/internal/tso"
)

// plantedControl runs one of the machalg planted programs (fence-free
// algorithms that ASSUME a Δ bound) on a plain-TSO machine (Δ=0: the
// machine promises nothing) under the adversarial drain policy, with a
// flight recorder whose residency monitor expects the given bound.
// This is the paper's negative control: the algorithm's assumption is
// betrayed and the monitor must say so.
func plantedControl(t *testing.T, name string, bound uint64) *monitor.FlightRecorder {
	t.Helper()
	reg := obs.NewRegistry()
	rec := monitor.NewFlightRecorder(reg, monitor.NewSet(
		monitor.NewResidency(reg, bound),
		monitor.NewDrainAccounting(),
	), 1024)

	var p = machalg.MCFFHP(2, 2, int(bound)/2)
	if name == "ffbl" {
		p = machalg.MCFFBL(2, int(bound)/2)
	}
	run := fuzz.MachineRun{Delta: 0, Policy: tso.DrainAdversarial, Seed: 42}
	if _, err := fuzz.RunOnMachine(p, run, rec); err != nil {
		t.Fatalf("planted %s run: %v", name, err)
	}
	return rec
}

// TestPlantedControlsTripResidency is the headline negative control of
// the observability layer: the plain-TSO plantings of FFHP and FFBL
// must trip the Δ-residency monitor, with violations carrying a
// coherent enqueue-to-commit window.
func TestPlantedControlsTripResidency(t *testing.T) {
	for _, name := range []string{"ffhp", "ffbl"} {
		t.Run(name, func(t *testing.T) {
			rec := plantedControl(t, name, 8)
			set := rec.Monitors()
			if set.Ok() {
				t.Fatalf("planted %s on plain TSO produced no violations — the residency monitor is blind", name)
			}
			vs := set.Violations()
			sawResidency := false
			for _, v := range vs {
				if v.Monitor != "residency" {
					continue
				}
				sawResidency = true
				if v.Tick <= v.Enq {
					t.Errorf("violation window inverted: enq=%d tick=%d", v.Enq, v.Tick)
				}
				if v.Tick-v.Enq <= 8 {
					t.Errorf("violation reported for residency %d within bound 8", v.Tick-v.Enq)
				}
				if v.Detail == "" || v.Event == "" {
					t.Errorf("violation missing detail/event: %+v", v)
				}
			}
			if !sawResidency {
				t.Fatalf("no residency violation among %d violations", len(vs))
			}
		})
	}
}

// TestFlightDumpReplayable checks the flight-recorder artifact round
// trip: a tripped run dumps a document that parses back, identifies
// itself, and carries the violation report, metrics, and a non-empty
// Perfetto trace tail.
func TestFlightDumpReplayable(t *testing.T) {
	rec := plantedControl(t, "ffhp", 8)
	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	doc, err := monitor.ReadFlightDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read dump: %v", err)
	}
	if doc.Kind != monitor.FlightRecorderKind {
		t.Fatalf("kind = %q", doc.Kind)
	}
	if len(doc.Violations) == 0 {
		t.Fatal("dump carries no violations")
	}
	if doc.TotalEvents == 0 || doc.RetainedEvents == 0 {
		t.Fatalf("dump retained no events: total=%d retained=%d", doc.TotalEvents, doc.RetainedEvents)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("dump carries no metrics snapshot")
	}
	if len(bytes.TrimSpace(doc.Trace)) == 0 {
		t.Fatal("dump carries no trace")
	}

	// DumpOnViolation: writes for a tripped set, skips for a clean one.
	dir := t.TempDir()
	path, err := rec.DumpOnViolation(dir, "planted")
	if err != nil {
		t.Fatal(err)
	}
	if path != filepath.Join(dir, "planted.flight.json") {
		t.Fatalf("artifact path = %q", path)
	}
	clean := monitor.NewFlightRecorder(nil, nil, 16)
	if p, err := clean.DumpOnViolation(dir, "clean"); err != nil || p != "" {
		t.Fatalf("clean recorder wrote %q, err %v", p, err)
	}
}

// TestBoundedMachineRunsClean is the positive control twin: the same
// planted programs on a machine that actually enforces Δ=10 (the
// monitor inheriting that Δ via BeginRun) must produce zero violations.
func TestBoundedMachineRunsClean(t *testing.T) {
	reg := obs.NewRegistry()
	res := monitor.NewResidency(reg, 0) // inherit the run's Δ
	set := monitor.NewSet(res, monitor.NewDrainAccounting())
	for _, run := range []fuzz.MachineRun{
		{Delta: 10, Policy: tso.DrainAdversarial, Seed: 1},
		{Delta: 10, Policy: tso.DrainRandom, Seed: 2},
		{Delta: 10, Policy: tso.DrainEager, Seed: 3},
	} {
		if _, err := fuzz.RunOnMachine(machalg.MCFFHP(2, 2, 5), run, set); err != nil {
			t.Fatalf("bounded run: %v", err)
		}
		if _, err := fuzz.RunOnMachine(machalg.MCFFBL(2, 5), run, set); err != nil {
			t.Fatalf("bounded run: %v", err)
		}
	}
	if !set.Ok() {
		t.Fatalf("Δ-enforcing machine tripped monitors: %v", set.Violations())
	}
	if res.Bound() != 10 {
		t.Fatalf("monitor did not inherit run Δ: bound = %d", res.Bound())
	}
}

// TestLitmusSuiteMonitoredClean runs a full litmus sweep with the
// monitor set attached through RunConfig.Sinks: correct algorithms on a
// correct machine must be violation-free.
func TestLitmusSuiteMonitoredClean(t *testing.T) {
	set := monitor.NewSet(monitor.NewResidency(nil, 0), monitor.NewDrainAccounting())
	for _, test := range []litmus.Test{
		litmus.StoreBuffering(true),
		litmus.StoreBuffering(false),
		litmus.MessagePassing(),
	} {
		rep := litmus.Run(test, litmus.RunConfig{
			Seeds: 5, Delta: 6, Sinks: []tso.Sink{set},
		})
		if len(rep.Errs) > 0 {
			t.Fatalf("%s: %v", rep.Test, rep.Errs)
		}
	}
	if !set.Ok() {
		t.Fatalf("monitored litmus sweep tripped: %v", set.Violations())
	}
}

// TestFuzzSmokeMonitoredClean threads the monitor set through the
// differential fuzzer's Config.Sinks: a short campaign's machine side
// runs entirely under residency verification and must stay clean.
func TestFuzzSmokeMonitoredClean(t *testing.T) {
	set := monitor.NewSet(monitor.NewResidency(nil, 0), monitor.NewDrainAccounting())
	rep := fuzz.Run(fuzz.Config{Sinks: []tso.Sink{set}, Deltas: []int{0, 2}}, 4, 1)
	if len(rep.Mismatches) > 0 {
		t.Fatalf("fuzz mismatches: %v", rep.Mismatches)
	}
	if !set.Ok() {
		t.Fatalf("monitored fuzz campaign tripped: %v", set.Violations())
	}
}

// TestDrainAccountingVerifyStats cross-checks the event-derived drain
// tallies against the machine's own Stats on a real run.
func TestDrainAccountingVerifyStats(t *testing.T) {
	da := monitor.NewDrainAccounting()
	cfg := tso.Config{Delta: 12, Policy: tso.DrainRandom, Seed: 9, Sinks: []tso.Sink{da}}
	m := tso.New(cfg)
	a := m.AllocWords(4)
	m.Spawn("w", func(th *tso.Thread) {
		for i := 0; i < 40; i++ {
			th.Store(a+tso.Addr(i%4), tso.Word(i))
			if i%13 == 12 {
				th.Fence()
			}
		}
	})
	m.Spawn("r", func(th *tso.Thread) {
		for i := 0; i < 25; i++ {
			_ = th.Load(a + tso.Addr(i%4))
			if i%9 == 8 {
				th.CAS(a, 0, tso.Word(i))
			}
		}
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if vs := da.VerifyStats(res.Stats); len(vs) > 0 {
		t.Fatalf("drain accounting mismatch: %v", vs)
	}
	if len(da.Violations()) > 0 {
		t.Fatalf("online violations on a clean run: %v", da.Violations())
	}
	// A doctored Stats must be caught.
	bad := res.Stats
	bad.Commits++
	if vs := da.VerifyStats(bad); len(vs) == 0 {
		t.Fatal("doctored stats (Commits+1) not flagged")
	}
}

// TestSMRVisibilitySynthetic drives the hazard-slot watcher with a
// hand-built commit stream: timely publications pass, a late one
// violates, and the occupancy bookkeeping tracks publish/clear.
func TestSMRVisibilitySynthetic(t *testing.T) {
	reg := obs.NewRegistry()
	sv := monitor.NewSMRVisibility(reg, 5)
	sv.SetHazardRange(100, 4)
	sv.BeginRun([]string{"r0", "r1"}, 0)

	commit := func(addr tso.Addr, val tso.Word, enq, tick uint64) {
		sv.Emit(tso.Event{Kind: tso.EvCommit, Thread: 0, Addr: addr, Val: val, Enq: enq, Tick: tick})
	}
	commit(100, 7, 10, 13) // publish, lat 3: fine
	commit(100, 0, 20, 22) // clear
	commit(99, 9, 0, 50)   // out of range: ignored
	commit(104, 9, 0, 50)  // out of range: ignored
	if n := len(sv.Violations()); n != 0 {
		t.Fatalf("clean stream produced %d violations", n)
	}
	commit(101, 3, 30, 44) // publish, lat 14 > 5: the §4 missed-scan window
	vs := sv.Violations()
	if len(vs) != 1 {
		t.Fatalf("late publication not caught: %v", vs)
	}
	if vs[0].Monitor != "smr-visibility" || vs[0].Enq != 30 || vs[0].Tick != 44 {
		t.Fatalf("violation wrong: %+v", vs[0])
	}
	if got := reg.Counter(monitor.MetricSMRPublishes).Load(); got != 2 {
		t.Fatalf("publishes = %d, want 2", got)
	}
	if got := reg.Counter(monitor.MetricSMRClears).Load(); got != 1 {
		t.Fatalf("clears = %d, want 1", got)
	}
	if got := reg.Gauge(monitor.MetricSMRPublished).Load(); got != 1 {
		t.Fatalf("published gauge = %d, want 1", got)
	}
}

// TestSMRVisibilityOnReclaimDemo wires the monitor into the real §4
// demo through the sink-side SetHazardRange handshake: the fence-free
// scheme on a Δ-bounded machine must be clean.
func TestSMRVisibilityOnReclaimDemo(t *testing.T) {
	reg := obs.NewRegistry()
	rec := monitor.NewFlightRecorder(reg, monitor.NewSet(
		monitor.NewSMRVisibility(reg, 0),
		monitor.NewResidency(reg, 0),
	), 512)
	out := machalg.ReclaimRaceDemo(8, machalg.HPFenceFree, rec)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.UseAfterFree || out.FreedEarly {
		t.Fatalf("FFHP on TBTSO[8] unsound: %+v", out)
	}
	if !rec.Monitors().Ok() {
		t.Fatalf("monitored demo tripped: %v", rec.Monitors().Violations())
	}
	if got := reg.Counter(monitor.MetricSMRPublishes).Load(); got == 0 {
		t.Fatal("SetHazardRange handshake failed: no hazard publications observed")
	}
}

// TestCheckSMRAccounting exercises the registry-fed reclaim invariant.
func TestCheckSMRAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	if vs := monitor.CheckSMRAccounting(reg, "X"); vs != nil {
		t.Fatalf("empty registry flagged: %v", vs)
	}
	reg.Counter("smr.X.retires").Add(10)
	reg.Counter("smr.X.frees").Add(7)
	reg.Gauge("smr.X.unreclaimed").Set(3)
	if vs := monitor.CheckSMRAccounting(reg, "X"); vs != nil {
		t.Fatalf("balanced books flagged: %v", vs)
	}
	reg.Gauge("smr.X.unreclaimed").Set(2) // lost a node
	vs := monitor.CheckSMRAccounting(reg, "X")
	if len(vs) != 1 || vs[0].Monitor != "smr-accounting" {
		t.Fatalf("lost node not flagged: %v", vs)
	}
}

// TestQuiesceCoverCheck exercises the registry-fed quiescence bound
// check directly.
func TestQuiesceCoverCheck(t *testing.T) {
	reg := obs.NewRegistry()
	qc := monitor.NewQuiesceCover(reg, 1000)
	if vs := qc.Check(); len(vs) != 0 {
		t.Fatalf("empty registry flagged: %v", vs)
	}
	h := reg.Histogram("quiesce.wait_ns", obs.ExpBuckets(1, 4, 16))
	h.Observe(400)
	h.Observe(990)
	if vs := qc.Check(); len(vs) != 0 {
		t.Fatalf("covered waits flagged: %v", vs)
	}
	h.Observe(1500)
	vs := monitor.NewQuiesceCover(reg, 1000).Check()
	if len(vs) != 1 || vs[0].Monitor != "quiesce-cover" {
		t.Fatalf("uncovered wait not flagged: %v", vs)
	}
}

// TestViolationOverflowMarker checks the retention cap: a monitor
// flooded with violations keeps a bounded report plus an overflow
// marker carrying the count of what was dropped.
func TestViolationOverflowMarker(t *testing.T) {
	m := monitor.NewResidency(nil, 1)
	m.BeginRun([]string{"w"}, 0)
	const flood = 100
	for i := 0; i < flood; i++ {
		m.Emit(tso.Event{Kind: tso.EvCommit, Thread: 0, Addr: 1, Val: 1,
			Enq: uint64(i), Tick: uint64(i + 10)})
	}
	vs := m.Violations()
	if len(vs) != 33 { // maxKept 32 + marker
		t.Fatalf("retained %d violations, want 33", len(vs))
	}
	last := vs[len(vs)-1]
	if want := fmt.Sprintf("%d further violations", flood-32); !bytes.Contains([]byte(last.Detail), []byte(want)) {
		t.Fatalf("overflow marker wrong: %q", last.Detail)
	}
}

// TestSetAttachDuringEmit races monitor attachment against a live
// event stream — the copy-on-write list must keep both sides safe
// (run under -race; the concurrent-attachment satellite).
func TestSetAttachDuringEmit(t *testing.T) {
	set := monitor.NewSet(monitor.NewDrainAccounting())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		e := tso.Event{Kind: tso.EvCommit, Thread: 0, Addr: 1, Val: 1, Enq: 1, Tick: 2}
		for {
			select {
			case <-stop:
				return
			default:
				set.Emit(e)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		set.Attach(monitor.NewResidency(nil, 100))
	}
	close(stop)
	wg.Wait()
	if got := len(set.Monitors()); got != 51 {
		t.Fatalf("attached %d monitors, want 51", got)
	}
	set.Violations() // must not race either
}
