package monitor

import (
	"fmt"

	"tbtso/internal/obs"
	"tbtso/internal/tso"
)

// Registry names the SMR visibility monitor publishes under.
const (
	// MetricSMRPublishes counts committed hazard publications.
	MetricSMRPublishes = "monitor.smr.publishes"
	// MetricSMRClears counts committed hazard clears.
	MetricSMRClears = "monitor.smr.clears"
	// MetricSMRPublished gauges currently-published hazard slots.
	MetricSMRPublished = "monitor.smr.published"
)

// SMRVisibility watches a machine address range holding hazard-pointer
// slots and checks the §4 visibility condition FFHP's safety rests on:
// a hazard publication must become globally visible (commit) within
// the expected bound of its issue, because the reclaimer's scan only
// waits that long before trusting what it read. A publication that
// outstays the bound is exactly the window in which a scan can miss
// the hazard and free a node the reader is dereferencing.
//
// The monitor is configured with the hazard slot range after the
// domain that owns the slots is built: callers pass it through
// SetHazardRange (machalg.HPDomain exposes SlotRange for this, and its
// demos forward the range to any attached sink implementing the
// SetHazardRange method — see machalg.ReclaimRaceDemo).
//
// The bound follows the Residency rule: the configured value, or the
// run's Δ when configured as 0; no expectation when both are 0.
type SMRVisibility struct {
	rec       recorder
	bound     uint64
	effective uint64
	base      tso.Addr
	n         int
	vals      []tso.Word // last committed value per slot
	pubs      *obs.Counter
	clears    *obs.Counter
	published *obs.Gauge
}

// NewSMRVisibility returns an SMR visibility monitor publishing into
// reg (nil for a private registry). bound is the expected visibility
// bound in ticks; 0 means inherit each run's Δ. The monitor is inert
// until SetHazardRange tells it which addresses are hazard slots.
func NewSMRVisibility(reg *obs.Registry, bound uint64) *SMRVisibility {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &SMRVisibility{
		rec:       recorder{name: "smr-visibility"},
		bound:     bound,
		pubs:      reg.Counter(MetricSMRPublishes),
		clears:    reg.Counter(MetricSMRClears),
		published: reg.Gauge(MetricSMRPublished),
	}
}

// Name implements Monitor.
func (m *SMRVisibility) Name() string { return m.rec.name }

// SetHazardRange declares [base, base+n) as the hazard slot addresses
// to watch. Call before (or at the start of) the run.
func (m *SMRVisibility) SetHazardRange(base tso.Addr, n int) {
	m.base, m.n = base, n
	m.vals = make([]tso.Word, n)
}

// BeginRun implements tso.RunObserver.
func (m *SMRVisibility) BeginRun(names []string, delta uint64) {
	m.effective = m.bound
	if m.effective == 0 {
		m.effective = delta
	}
	for i := range m.vals {
		m.vals[i] = 0
	}
	m.published.Set(0)
}

// Emit implements tso.Sink: it reacts to commits landing in the
// hazard range, tracking slot occupancy and checking publication
// residency against the bound.
//
//tbtso:fencefree
func (m *SMRVisibility) Emit(e tso.Event) {
	if e.Kind != tso.EvCommit || e.Addr < m.base || e.Addr >= m.base+tso.Addr(m.n) {
		return
	}
	slot := int(e.Addr - m.base)
	was, now := m.vals[slot], e.Val
	m.vals[slot] = now
	switch {
	case was == 0 && now != 0:
		m.pubs.Inc()
		m.published.Add(1)
	case was != 0 && now == 0:
		m.clears.Inc()
		m.published.Add(-1)
	case was != 0 && now != 0:
		m.pubs.Inc() // re-publication over a live slot
	}
	if now != 0 && m.effective != 0 {
		if lat := e.Tick - e.Enq; lat > m.effective {
			m.rec.record(Violation{
				Thread: e.Thread, Enq: e.Enq, Tick: e.Tick,
				Detail: fmt.Sprintf("hazard publication slot[%d]=%d visible only after %d ticks, bound %d — a reclaim scan could have missed it",
					slot, now, lat, m.effective),
				Event: e.String(),
			})
		}
	}
}

// Violations implements Monitor.
func (m *SMRVisibility) Violations() []Violation { return m.rec.violations() }

// CheckSMRAccounting is the registry-fed half of SMR monitoring: for a
// scheme publishing under "smr.<scheme>." (smr.HazardPointers.Metrics),
// frees + unreclaimed must equal retires — no node may be lost or
// double-counted by reclamation. Returns nil when the scheme has
// published nothing into reg. The returned violations carry monitor
// name "smr-accounting".
func CheckSMRAccounting(reg *obs.Registry, scheme string) []Violation {
	prefix := "smr." + scheme + "."
	retires, ok1 := reg.LookupCounter(prefix + "retires")
	frees, ok2 := reg.LookupCounter(prefix + "frees")
	unreclaimed, ok3 := reg.LookupGauge(prefix + "unreclaimed")
	if !ok1 || !ok2 || !ok3 {
		return nil
	}
	r, f, u := retires.Load(), frees.Load(), unreclaimed.Load()
	if u < 0 || f+uint64(u) != r {
		return []Violation{{
			Monitor: "smr-accounting", Thread: -1,
			Detail: fmt.Sprintf("scheme %s: frees %d + unreclaimed %d != retires %d",
				scheme, f, u, r),
		}}
	}
	return nil
}
