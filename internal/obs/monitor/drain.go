package monitor

import (
	"fmt"

	"tbtso/internal/tso"
)

// DrainAccounting checks the machine's drain bookkeeping live: every
// commit must name a valid drain cause, no thread may commit more
// stores than it enqueued, and — cross-checked against the machine's
// own Stats at end of run via VerifyStats — the per-cause drain
// breakdown must sum to exactly the commit count (the DrainStats
// invariant PR 2 introduced, now watched instead of trusted).
//
// Per-run counters reset at BeginRun; violations accumulate.
type DrainAccounting struct {
	rec     recorder
	causes  [tso.NumDrainCauses]uint64
	stores  uint64
	commits uint64
	perTh   []struct{ stores, commits uint64 }
}

// NewDrainAccounting returns a drain-accounting monitor.
func NewDrainAccounting() *DrainAccounting {
	return &DrainAccounting{rec: recorder{name: "drain-accounting"}}
}

// Name implements Monitor.
func (m *DrainAccounting) Name() string { return m.rec.name }

// BeginRun implements tso.RunObserver: it resets the per-run event
// tallies so VerifyStats compares against exactly one run.
func (m *DrainAccounting) BeginRun(names []string, delta uint64) {
	m.causes = [tso.NumDrainCauses]uint64{}
	m.stores, m.commits = 0, 0
	if cap(m.perTh) < len(names) {
		m.perTh = make([]struct{ stores, commits uint64 }, len(names))
	}
	m.perTh = m.perTh[:len(names)]
	for i := range m.perTh {
		m.perTh[i].stores, m.perTh[i].commits = 0, 0
	}
}

// Emit implements tso.Sink.
//
//tbtso:fencefree
func (m *DrainAccounting) Emit(e tso.Event) {
	switch e.Kind {
	case tso.EvStore:
		m.stores++
		if e.Thread >= 0 && e.Thread < len(m.perTh) {
			m.perTh[e.Thread].stores++
		}
	case tso.EvCommit:
		m.commits++
		if int(e.Cause) < 0 || int(e.Cause) >= tso.NumDrainCauses {
			m.rec.record(Violation{
				Thread: e.Thread, Enq: e.Enq, Tick: e.Tick,
				Detail: fmt.Sprintf("commit with invalid drain cause %d", int(e.Cause)),
				Event:  e.String(),
			})
			return
		}
		m.causes[e.Cause]++
		if e.Thread >= 0 && e.Thread < len(m.perTh) {
			t := &m.perTh[e.Thread]
			t.commits++
			if t.commits > t.stores {
				m.rec.record(Violation{
					Thread: e.Thread, Enq: e.Enq, Tick: e.Tick,
					Detail: fmt.Sprintf("thread committed %d stores but enqueued only %d",
						t.commits, t.stores),
					Event: e.String(),
				})
			}
		}
	}
}

// VerifyStats cross-checks the event-derived tallies of the current
// run against the machine's own Stats: stores, commits, the per-cause
// breakdown, and the DrainStats-sums-to-Commits invariant. It records
// (and returns) any discrepancies. Call it after Run with the run's
// Result.Stats.
func (m *DrainAccounting) VerifyStats(stats tso.Stats) []Violation {
	var out []Violation
	report := func(format string, args ...any) {
		v := Violation{Thread: -1, Detail: fmt.Sprintf(format, args...)}
		m.rec.record(v)
		v.Monitor = m.rec.name
		out = append(out, v)
	}
	if m.stores != stats.Stores {
		report("event stream saw %d stores, machine stats say %d", m.stores, stats.Stores)
	}
	if m.commits != stats.Commits {
		report("event stream saw %d commits, machine stats say %d", m.commits, stats.Commits)
	}
	var sum uint64
	for c := 0; c < tso.NumDrainCauses; c++ {
		cause := tso.DrainCause(c)
		sum += stats.Drains.ByCause(cause)
		if m.causes[c] != stats.Drains.ByCause(cause) {
			report("drain cause %s: event stream saw %d, machine stats say %d",
				cause, m.causes[c], stats.Drains.ByCause(cause))
		}
	}
	if sum != stats.Commits {
		report("DrainStats sum %d != Commits %d", sum, stats.Commits)
	}
	return out
}

// Violations implements Monitor.
func (m *DrainAccounting) Violations() []Violation { return m.rec.violations() }
