// Package monitor provides online runtime verification for the TBTSO
// abstract machine: composable tso.Sink implementations that check the
// paper's temporal invariants on the live event stream — the Δ
// residency bound on every commit, drain accounting, SMR hazard
// visibility — plus registry-fed checks (quiescence-bound coverage,
// SMR reclaim accounting) and a FlightRecorder that captures the
// retained event tail and dumps a replayable artifact when a monitor
// trips. Monitors never panic on a violation; they record typed
// Violations and keep streaming, so a monitored run always finishes
// and always reports. See docs/OBSERVABILITY.md.
package monitor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tbtso/internal/tso"
)

// Violation is one observed invariant breach: which monitor tripped,
// the offending tick window, the thread, and a human-readable detail.
// The first offending event is carried in rendered form so reports
// stay meaningful after the ring buffer has overwritten the raw event.
type Violation struct {
	// Monitor is the reporting monitor's Name().
	Monitor string `json:"monitor"`
	// Thread is the offending model thread id (-1 when the violation
	// is not attributable to one thread).
	Thread int `json:"thread"`
	// Enq..Tick is the offending tick window: for a residency breach,
	// the store's enqueue and commit ticks. Both are zero for
	// registry-fed checks that have no tick coordinates.
	Enq  uint64 `json:"enq,omitempty"`
	Tick uint64 `json:"tick,omitempty"`
	// Detail states the breached invariant with the observed values.
	Detail string `json:"detail"`
	// Event is the first offending event, rendered (empty for
	// registry-fed checks).
	Event string `json:"event,omitempty"`
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s: %s", v.Monitor, v.Detail)
	if v.Event != "" {
		s += " [" + v.Event + "]"
	}
	return s
}

// maxKept bounds how many Violations each monitor retains verbatim;
// beyond it only the count grows, so a hopelessly broken run cannot
// make its own monitoring OOM.
const maxKept = 32

// recorder is the shared violation store embedded in every monitor.
// Recording takes a mutex — violations are off the hot path by
// definition — while the total stays readable without one.
type recorder struct {
	name  string
	mu    sync.Mutex
	kept  []Violation
	total atomic.Uint64
}

func (r *recorder) record(v Violation) {
	v.Monitor = r.name
	r.total.Add(1)
	r.mu.Lock()
	if len(r.kept) < maxKept {
		r.kept = append(r.kept, v)
	}
	r.mu.Unlock()
}

func (r *recorder) violations() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Violation(nil), r.kept...)
	if extra := r.total.Load() - uint64(len(out)); extra > 0 && len(out) > 0 {
		v := Violation{Monitor: r.name, Thread: -1,
			Detail: fmt.Sprintf("... and %d further violations not retained", extra)}
		out = append(out, v)
	}
	return out
}

// Monitor is an online checker: a tso.Sink that accumulates typed
// Violations instead of panicking. Monitors may also implement
// tso.RunObserver to learn the run's thread names and Δ.
type Monitor interface {
	tso.Sink
	// Name identifies the monitor in Violation reports.
	Name() string
	// Violations returns everything recorded so far (capped per
	// monitor at maxKept entries plus an overflow marker).
	Violations() []Violation
}

// Set is a composite of monitors that fans the event stream out to all
// of them and aggregates their violations. It implements tso.Sink and
// tso.RunObserver, so one Set attaches to a machine as a single sink.
// Attach is safe to call concurrently with Emit: the monitor list is
// copy-on-write, so the hot path reads one atomic pointer.
type Set struct {
	mu   sync.Mutex
	mons atomic.Pointer[[]Monitor]
}

// NewSet returns a set over the given monitors.
func NewSet(mons ...Monitor) *Set {
	s := &Set{}
	list := append([]Monitor(nil), mons...)
	s.mons.Store(&list)
	return s
}

// Attach adds a monitor. Events already streamed are not replayed to
// it; attach before Run for full coverage.
func (s *Set) Attach(m Monitor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.mons.Load()
	list := make([]Monitor, len(old)+1)
	copy(list, old)
	list[len(old)] = m
	s.mons.Store(&list)
}

// Monitors returns the current monitor list.
func (s *Set) Monitors() []Monitor {
	return append([]Monitor(nil), *s.mons.Load()...)
}

// BeginRun implements tso.RunObserver by forwarding to every monitor
// that observes runs.
func (s *Set) BeginRun(names []string, delta uint64) {
	for _, m := range *s.mons.Load() {
		if ro, ok := m.(tso.RunObserver); ok {
			ro.BeginRun(names, delta)
		}
	}
}

// Emit implements tso.Sink by forwarding to every monitor.
//
//tbtso:fencefree
func (s *Set) Emit(e tso.Event) {
	for _, m := range *s.mons.Load() {
		m.Emit(e)
	}
}

// SetHazardRange forwards a hazard slot range to every member monitor
// that accepts one (the SMR visibility monitor), so a Set can be
// handed to machalg demos as a single opaque sink.
func (s *Set) SetHazardRange(base tso.Addr, n int) {
	for _, m := range *s.mons.Load() {
		if rs, ok := m.(interface {
			SetHazardRange(base tso.Addr, n int)
		}); ok {
			rs.SetHazardRange(base, n)
		}
	}
}

// Violations aggregates every monitor's report, in attachment order.
func (s *Set) Violations() []Violation {
	var out []Violation
	for _, m := range *s.mons.Load() {
		out = append(out, m.Violations()...)
	}
	return out
}

// Ok reports whether no monitor has tripped.
func (s *Set) Ok() bool {
	for _, m := range *s.mons.Load() {
		if len(m.Violations()) > 0 {
			return false
		}
	}
	return true
}
