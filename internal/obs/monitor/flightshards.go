package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"tbtso/internal/tso"
)

// CampaignFlightKind is the "kind" field of the merged campaign flight
// artifact written by ShardedFlight.Dump.
const CampaignFlightKind = "campaign-flight"

// groupEventCap bounds the retained rendered events per seed group so a
// pathological program cannot balloon the dump; beyond it only the
// event count grows.
const groupEventCap = 1024

// RunRecord is one sampled machine run inside a seed group: the run
// shape, an optional driver tag (Δ/policy/seed of the sample), and the
// rendered event stream.
type RunRecord struct {
	Threads []string `json:"threads,omitempty"`
	Delta   uint64   `json:"delta"`
	// Tag identifies the sample within the sweep (set via TagRun).
	Tag string `json:"tag,omitempty"`
	// Events is the rendered event stream (capped per group).
	Events []string `json:"events,omitempty"`
}

// SeedGroup is everything recorded while checking one generator seed's
// program: its machine runs and any monitor violations they tripped.
// Violations are attributed exactly: each group gets a fresh monitor
// set, so a violating seed cannot contaminate its neighbours' reports.
type SeedGroup struct {
	Seed       int64       `json:"seed"`
	Runs       []RunRecord `json:"runs,omitempty"`
	Events     uint64      `json:"events"`
	Dropped    uint64      `json:"dropped_events,omitempty"`
	Violations []Violation `json:"violations,omitempty"`
}

// FlightShard is one worker's private recorder: a tso.Sink plus
// RunObserver the campaign driver brackets with BeginGroup/EndGroup
// around each program check. Not safe for concurrent use — exactly one
// worker goroutine owns a shard, which is the point: no lock is ever
// taken on the event hot path.
type FlightShard struct {
	parent *ShardedFlight
	set    *Set // fresh per group (nil when no monitor factory)
	groups map[int64]*SeedGroup
	cur    *SeedGroup
	curRun *RunRecord
}

// BeginGroup starts recording a seed's program check. Any unfinished
// group is discarded (it was cut short and must not be reported).
func (sh *FlightShard) BeginGroup(seed int64) {
	sh.cur = &SeedGroup{Seed: seed}
	sh.curRun = nil
	if sh.parent.factory != nil {
		sh.set = sh.parent.factory()
	}
}

// EndGroup finishes the current group. keep=false discards it — the
// check was interrupted, so a resumed campaign will re-record the seed
// from scratch and the merged dump stays byte-identical.
func (sh *FlightShard) EndGroup(keep bool) {
	g := sh.cur
	sh.cur, sh.curRun = nil, nil
	if g == nil || !keep {
		sh.set = nil
		return
	}
	if sh.set != nil {
		g.Violations = sh.set.Violations()
		sh.set = nil
	}
	if sh.groups == nil {
		sh.groups = make(map[int64]*SeedGroup)
	}
	sh.groups[g.Seed] = g
}

// BeginRun implements tso.RunObserver: a new machine run starts within
// the current group.
func (sh *FlightShard) BeginRun(names []string, delta uint64) {
	if sh.set != nil {
		sh.set.BeginRun(names, delta)
	}
	if sh.cur == nil {
		return
	}
	sh.cur.Runs = append(sh.cur.Runs, RunRecord{Threads: append([]string(nil), names...), Delta: delta})
	sh.curRun = &sh.cur.Runs[len(sh.cur.Runs)-1]
}

// TagRun labels the current run with the sweep sample that produced it
// (e.g. "delta=1 policy=random seed=2").
func (sh *FlightShard) TagRun(tag string) {
	if sh.curRun != nil {
		sh.curRun.Tag = tag
	}
}

// Emit implements tso.Sink: render into the current run, bounded per
// group, and fan out to the group's monitors.
//
//tbtso:fencefree
func (sh *FlightShard) Emit(e tso.Event) {
	if sh.set != nil {
		sh.set.Emit(e)
	}
	if sh.cur == nil {
		return
	}
	sh.cur.Events++
	if sh.curRun == nil {
		return
	}
	if sh.cur.Events > groupEventCap {
		sh.cur.Dropped++
		return
	}
	sh.curRun.Events = append(sh.curRun.Events, e.String())
}

// ShardedFlight is the parallel-campaign flight recorder: per-worker
// FlightShard sinks record seed-tagged groups without any shared state,
// and Compact — called only at report boundaries, when no worker is
// emitting — folds the shards' groups for seeds below the campaign's
// contiguous completed prefix into one merged, seed-ordered store.
// The merged dump depends only on which seeds completed, never on how
// they were sharded, so it is byte-identical across worker counts and
// across a checkpoint/resume split (provided the resumed segment spans
// at least the retention window — events themselves are not persisted
// in checkpoints, only the running totals are).
//
// Dump/Violations/Totals read the merged store under a mutex and are
// safe to call concurrently with workers emitting into shards (the live
// /flightrecorder endpoint does); Compact must not run concurrently
// with shard emission.
type ShardedFlight struct {
	factory  func() *Set // per-group monitor sets (nil = capture only)
	maxSeeds int

	mu          sync.Mutex
	shards      []*FlightShard
	merged      map[int64]*SeedGroup
	firstSeed   int64
	cutoff      int64 // merged covers exactly [firstSeed, cutoff)
	totalEvents uint64
	totalViol   uint64
}

// DefaultFlightSeeds is the default merged retention: the dump keeps
// the last this-many completed seed groups.
const DefaultFlightSeeds = 32

// NewShardedFlight returns a sharded recorder. factory builds one
// fresh monitor set per seed group (nil records events only);
// maxSeeds is the merged retention window (<= 0 selects
// DefaultFlightSeeds).
func NewShardedFlight(factory func() *Set, maxSeeds int) *ShardedFlight {
	if maxSeeds <= 0 {
		maxSeeds = DefaultFlightSeeds
	}
	return &ShardedFlight{factory: factory, maxSeeds: maxSeeds, merged: make(map[int64]*SeedGroup)}
}

// Begin sets the campaign's first seed — the left edge of the prefix
// the dump reports. Call once before the first batch.
func (f *ShardedFlight) Begin(firstSeed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.firstSeed, f.cutoff = firstSeed, firstSeed
}

// Restore seeds the running totals from a checkpoint, so a resumed
// campaign's final dump reports the whole campaign's totals, not just
// the resumed segment's. firstSeed is the campaign's (not the
// segment's) first seed.
func (f *ShardedFlight) Restore(firstSeed int64, totalEvents, totalViolations uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.firstSeed, f.cutoff = firstSeed, firstSeed
	f.totalEvents, f.totalViol = totalEvents, totalViolations
}

// Shard returns worker i's private shard, creating it on first use.
// The shard is stable across batches; only worker i may use it.
func (f *ShardedFlight) Shard(i int) *FlightShard {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.shards) <= i {
		f.shards = append(f.shards, &FlightShard{parent: f})
	}
	return f.shards[i]
}

// Compact folds every shard group with seed < cutoff into the merged
// store and evicts the lowest seeds beyond the retention window. Call
// only at report boundaries (no worker emitting): cutoff must be the
// campaign's contiguous completed prefix, so the merged store only ever
// holds prefix seeds — which makes eviction of the LOWEST seeds safe,
// because the final dump retains exactly the highest maxSeeds prefix
// seeds regardless of when compactions happened.
func (f *ShardedFlight) Compact(cutoff int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cutoff > f.cutoff {
		f.cutoff = cutoff
	}
	for _, sh := range f.shards {
		for seed, g := range sh.groups {
			if seed >= f.cutoff {
				continue
			}
			delete(sh.groups, seed)
			f.merged[seed] = g
			f.totalEvents += g.Events
			f.totalViol += uint64(len(g.Violations))
		}
	}
	if len(f.merged) > f.maxSeeds {
		seeds := make([]int64, 0, len(f.merged))
		for s := range f.merged {
			seeds = append(seeds, s)
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		for _, s := range seeds[:len(seeds)-f.maxSeeds] {
			delete(f.merged, s)
		}
	}
}

// Totals returns the running totals over every compacted prefix seed
// (including evicted ones) — what a campaign persists in its
// checkpoint for Restore.
func (f *ShardedFlight) Totals() (events, violations uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.totalEvents, f.totalViol
}

// Violations returns the violations of every retained merged group, in
// seed order. Violations from groups beyond the compacted prefix are
// not visible until the next Compact.
func (f *ShardedFlight) Violations() []Violation {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Violation
	for _, g := range f.sortedGroupsLocked() {
		out = append(out, g.Violations...)
	}
	return out
}

func (f *ShardedFlight) sortedGroupsLocked() []*SeedGroup {
	groups := make([]*SeedGroup, 0, len(f.merged))
	for _, g := range f.merged {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Seed < groups[j].Seed })
	return groups
}

// CampaignFlightDump is the merged artifact wire form. It carries no
// wall-clock or worker-count fields: two campaigns over the same seed
// prefix dump byte-identical documents whatever their parallelism.
type CampaignFlightDump struct {
	Kind string `json:"kind"`
	// FirstSeed..NextSeed is the covered prefix: every seed in
	// [FirstSeed, NextSeed) completed and contributed to the totals.
	FirstSeed int64 `json:"first_seed"`
	NextSeed  int64 `json:"next_seed"`
	// RetainedSeeds is how many groups the dump carries (the highest
	// seeds of the prefix, up to the retention window); DroppedSeeds is
	// the rest of the prefix.
	RetainedSeeds   int         `json:"retained_seeds"`
	DroppedSeeds    int64       `json:"dropped_seeds"`
	TotalEvents     uint64      `json:"total_events"`
	TotalViolations uint64      `json:"total_violations"`
	Groups          []SeedGroup `json:"groups"`
}

// Dump writes the merged campaign flight artifact: seed-ordered
// retained groups plus prefix-wide totals.
func (f *ShardedFlight) Dump(w io.Writer) error {
	f.mu.Lock()
	groups := f.sortedGroupsLocked()
	doc := CampaignFlightDump{
		Kind:            CampaignFlightKind,
		FirstSeed:       f.firstSeed,
		NextSeed:        f.cutoff,
		RetainedSeeds:   len(groups),
		DroppedSeeds:    (f.cutoff - f.firstSeed) - int64(len(groups)),
		TotalEvents:     f.totalEvents,
		TotalViolations: f.totalViol,
	}
	doc.Groups = make([]SeedGroup, 0, len(groups))
	for _, g := range groups {
		doc.Groups = append(doc.Groups, *g)
	}
	f.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DumpToFile writes the artifact to dir/<name>.flight.json, creating
// dir as needed, and returns the written path.
func (f *ShardedFlight) DumpToFile(dir, name string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".flight.json")
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := f.Dump(file); err != nil {
		file.Close()
		return "", err
	}
	return path, file.Close()
}

// ReadCampaignFlightDump parses a merged campaign flight artifact,
// rejecting documents of the wrong kind.
func ReadCampaignFlightDump(r io.Reader) (*CampaignFlightDump, error) {
	var doc CampaignFlightDump
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	if doc.Kind != CampaignFlightKind {
		return nil, fmt.Errorf("monitor: artifact kind %q, want %q", doc.Kind, CampaignFlightKind)
	}
	return &doc, nil
}
