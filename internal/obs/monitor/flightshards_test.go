package monitor

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"tbtso/internal/tso"
)

// emitGroup records one synthetic seed group on sh: a single run with
// a couple of events.
func emitGroup(sh *FlightShard, seed int64) {
	sh.BeginGroup(seed)
	sh.BeginRun([]string{"T0"}, 4)
	sh.TagRun(fmt.Sprintf("delta=4 policy=eager seed=%d", seed))
	sh.Emit(tso.Event{Tick: uint64(seed), Thread: 0, Kind: tso.EvStore, Addr: 1, Val: tso.Word(seed)})
	sh.Emit(tso.Event{Tick: uint64(seed) + 1, Thread: 0, Kind: tso.EvCommit, Addr: 1, Val: tso.Word(seed), Cause: tso.CauseFinal, Enq: uint64(seed)})
	sh.EndGroup(true)
}

// dumpString compacts to cutoff and renders the dump.
func dumpString(t *testing.T, f *ShardedFlight, cutoff int64) string {
	t.Helper()
	f.Compact(cutoff)
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestShardingInvariance pins the tentpole property at the monitor
// level: the merged dump depends only on which seeds completed, not on
// how they were spread across shards or when compactions ran.
func TestShardingInvariance(t *testing.T) {
	const n = 50

	// One shard, one final compact.
	a := NewShardedFlight(nil, 8)
	a.Begin(0)
	for s := int64(0); s < n; s++ {
		emitGroup(a.Shard(0), s)
	}
	da := dumpString(t, a, n)

	// Three shards, round-robin, periodic compactions.
	b := NewShardedFlight(nil, 8)
	b.Begin(0)
	for s := int64(0); s < n; s++ {
		emitGroup(b.Shard(int(s)%3), s)
		if s%7 == 0 {
			b.Compact(s) // prefix-only: everything below s is complete
		}
	}
	db := dumpString(t, b, n)

	if da != db {
		t.Errorf("dump depends on sharding/compaction schedule:\n--- one shard:\n%s\n--- three shards:\n%s", da, db)
	}

	// A resume split: totals restored from the "checkpoint", the
	// remaining segment re-recorded. The segment is longer than the
	// retention window, so the dump is byte-identical.
	c := NewShardedFlight(nil, 8)
	c.Begin(0)
	for s := int64(0); s < 20; s++ {
		emitGroup(c.Shard(0), s)
	}
	c.Compact(20)
	ev, viol := c.Totals()

	d := NewShardedFlight(nil, 8)
	d.Restore(0, ev, viol)
	for s := int64(20); s < n; s++ {
		emitGroup(d.Shard(1), s)
	}
	dd := dumpString(t, d, n)
	if da != dd {
		t.Errorf("resumed dump differs from uninterrupted dump:\n--- uninterrupted:\n%s\n--- resumed:\n%s", da, dd)
	}
}

func TestCompactKeepsOnlyPrefix(t *testing.T) {
	f := NewShardedFlight(nil, 32)
	f.Begin(0)
	sh := f.Shard(0)
	emitGroup(sh, 0)
	emitGroup(sh, 5) // beyond the prefix: seeds 1..4 incomplete
	f.Compact(1)
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadCampaignFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.RetainedSeeds != 1 || doc.NextSeed != 1 {
		t.Errorf("dump covers %d..%d with %d groups, want prefix [0,1) with 1 group",
			doc.FirstSeed, doc.NextSeed, doc.RetainedSeeds)
	}
	// The later compact picks seed 5 up once the prefix reaches it.
	f.Compact(6)
	buf.Reset()
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err = ReadCampaignFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.RetainedSeeds != 2 || doc.DroppedSeeds != 4 {
		t.Errorf("retained=%d dropped=%d, want 2 retained, 4 dropped (seeds 1..4 never completed... they count as dropped prefix)", doc.RetainedSeeds, doc.DroppedSeeds)
	}
}

func TestDiscardedGroupLeavesNoTrace(t *testing.T) {
	f := NewShardedFlight(nil, 32)
	f.Begin(0)
	sh := f.Shard(0)
	emitGroup(sh, 0)
	sh.BeginGroup(1)
	sh.BeginRun([]string{"T0"}, 4)
	sh.Emit(tso.Event{Tick: 9, Thread: 0, Kind: tso.EvStore, Addr: 1, Val: 1})
	sh.EndGroup(false) // interrupted check
	s := dumpString(t, f, 1)
	if strings.Contains(s, "t=9") {
		t.Errorf("discarded group's events leaked into the dump:\n%s", s)
	}
	ev, _ := f.Totals()
	if ev != 2 {
		t.Errorf("totals include the discarded group: events=%d, want 2", ev)
	}
}

// TestPerGroupMonitors pins that each group gets a fresh monitor set
// and violations are attributed to their seed.
func TestPerGroupMonitors(t *testing.T) {
	f := NewShardedFlight(func() *Set {
		return NewSet(NewResidency(nil, 1)) // Δ=1: any latency > 1 trips
	}, 32)
	f.Begin(0)
	sh := f.Shard(0)

	// Seed 0: commit latency 0 — clean.
	sh.BeginGroup(0)
	sh.BeginRun([]string{"T0"}, 1)
	sh.Emit(tso.Event{Tick: 2, Thread: 0, Kind: tso.EvCommit, Addr: 1, Val: 1, Cause: tso.CauseDelta, Enq: 2})
	sh.EndGroup(true)

	// Seed 1: commit latency 5 > Δ=1 — violation.
	sh.BeginGroup(1)
	sh.BeginRun([]string{"T0"}, 1)
	sh.Emit(tso.Event{Tick: 7, Thread: 0, Kind: tso.EvCommit, Addr: 1, Val: 1, Cause: tso.CauseDelta, Enq: 2})
	sh.EndGroup(true)

	f.Compact(2)
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadCampaignFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.TotalViolations != 1 {
		t.Fatalf("TotalViolations = %d, want 1", doc.TotalViolations)
	}
	if len(doc.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(doc.Groups))
	}
	if len(doc.Groups[0].Violations) != 0 {
		t.Errorf("clean seed 0 carries violations: %v", doc.Groups[0].Violations)
	}
	if len(doc.Groups[1].Violations) != 1 {
		t.Errorf("violating seed 1 carries %d violations, want 1", len(doc.Groups[1].Violations))
	}
	if got := f.Violations(); len(got) != 1 {
		t.Errorf("Violations() = %d entries, want 1", len(got))
	}
}
