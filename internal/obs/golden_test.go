package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry is a deterministic fixture covering every renderer
// branch: a counter, a negative gauge, an empty histogram, and a
// populated histogram whose samples land in distinct buckets so the
// p50/p90/p99 summary columns all differ.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("machine.stores").Add(1234)
	r.Gauge("smr.HP.unreclaimed").Set(-2)
	r.Histogram("machine.commit_latency_ticks", LinearBuckets(1, 1, 10))
	h := r.Histogram("monitor.residency_ticks", LinearBuckets(10, 10, 10)) // 10..100
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	h.Observe(2500) // overflow bucket — exercises p99.9/max divergence
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenWriteText(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WriteText(&buf)
	out := buf.String()
	// The quantile columns are the satellite under test: all three must
	// be present and, for this fixture, strictly ordered.
	for _, want := range []string{"p50=60", "p90=100", "p99.9=2500"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "metrics.txt", buf.Bytes())
}

func TestGoldenWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())
}
