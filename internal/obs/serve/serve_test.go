package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tbtso/internal/obs"
	"tbtso/internal/obs/monitor"
	"tbtso/internal/tso"
)

func testRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("machine.stores").Add(42)
	reg.Gauge("smr.HP.unreclaimed").Set(3)
	h := reg.Histogram("machine.commit_latency_ticks", obs.LinearBuckets(1, 1, 4))
	h.Observe(2)
	h.Observe(3)
	h.Observe(100) // overflow bucket
	return reg
}

func TestWritePrometheusExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testRegistry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE tbtso_machine_stores_total counter",
		"tbtso_machine_stores_total 42",
		"# TYPE tbtso_smr_HP_unreclaimed gauge",
		"tbtso_smr_HP_unreclaimed 3",
		"# TYPE tbtso_machine_commit_latency_ticks histogram",
		`tbtso_machine_commit_latency_ticks_bucket{le="+Inf"} 3`,
		"tbtso_machine_commit_latency_ticks_sum 105",
		"tbtso_machine_commit_latency_ticks_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: le="3" counts the samples at 2 and 3.
	if !strings.Contains(out, `tbtso_machine_commit_latency_ticks_bucket{le="3"} 2`) {
		t.Errorf("bucket counts not cumulative:\n%s", out)
	}
}

func TestHandlers(t *testing.T) {
	reg := testRegistry()
	set := monitor.NewSet(monitor.NewResidency(reg, 5))
	rec := monitor.NewFlightRecorder(reg, set, 64)
	srv := New(reg)
	srv.SetMonitors(set)
	srv.SetFlightRecorder(rec)

	get := func(path string) (*http.Response, string) {
		t.Helper()
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		resp := w.Result()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "tbtso_machine_stores_total 42") {
		t.Errorf("/metrics body:\n%s", body)
	}

	_, body = get("/metrics.json")
	var metrics []obs.Metric
	if err := json.Unmarshal([]byte(body), &metrics); err != nil || len(metrics) == 0 {
		t.Errorf("/metrics.json not a metric list (%v):\n%s", err, body)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz clean = %d %q", resp.StatusCode, body)
	}

	// Trip the residency monitor, then health must flip to 503.
	set.BeginRun([]string{"w"}, 0)
	set.Emit(tso.Event{Kind: tso.EvCommit, Thread: 0, Addr: 1, Val: 1, Enq: 0, Tick: 50})
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, `"status":"violations"`) {
		t.Errorf("/healthz tripped = %d %q", resp.StatusCode, body)
	}

	_, body = get("/violations")
	var vr struct {
		Violations []monitor.Violation `json:"violations"`
	}
	if err := json.Unmarshal([]byte(body), &vr); err != nil || len(vr.Violations) != 1 {
		t.Errorf("/violations (%v):\n%s", err, body)
	}

	_, body = get("/flightrecorder")
	doc, err := monitor.ReadFlightDump(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/flightrecorder not a flight dump: %v", err)
	}
	if len(doc.Violations) != 1 {
		t.Errorf("flight dump violations = %d, want 1", len(doc.Violations))
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", resp.StatusCode)
	}
}

func TestFlightRecorderHandlerWithoutRecorder(t *testing.T) {
	srv := New(obs.NewRegistry())
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/flightrecorder", nil))
	if w.Result().StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Result().StatusCode)
	}
}

func TestParseMonitors(t *testing.T) {
	reg := obs.NewRegistry()
	set, err := ParseMonitors("residency=40, drain,smr", reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(set.Monitors()); got != 3 {
		t.Fatalf("parsed %d monitors, want 3", got)
	}
	if set2, err := ParseMonitors("all", reg); err != nil || len(set2.Monitors()) != 3 {
		t.Fatalf("all: %v, %d monitors", err, len(set2.Monitors()))
	}
	for _, bad := range []string{"bogus", "residency=x", "all=3"} {
		if _, err := ParseMonitors(bad, obs.NewRegistry()); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestOptionsStartRoundTrip runs the full session lifecycle over a real
// listener: flags → session → monitored machine run → live scrape →
// Finish with a flight artifact.
func TestOptionsStartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Listen: "127.0.0.1:0", Monitors: "residency=5,drain", FlightDir: dir, Ring: 128}
	sess, err := opts.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Addr == "" || sess.Recorder == nil || len(sess.Sinks()) != 1 {
		t.Fatalf("session incomplete: addr=%q rec=%v sinks=%d", sess.Addr, sess.Recorder, len(sess.Sinks()))
	}

	// Feed a violating commit through the session's sink.
	sink := sess.Sinks()[0]
	sess.Recorder.BeginRun([]string{"w"}, 0)
	sink.Emit(tso.Event{Kind: tso.EvStore, Thread: 0, Addr: 1, Val: 1, Tick: 1})
	sink.Emit(tso.Event{Kind: tso.EvCommit, Thread: 0, Addr: 1, Val: 1, Enq: 1, Tick: 40})

	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + sess.Addr + "/metrics")
	if err != nil {
		t.Fatalf("live scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "tbtso_monitor_residency_violations_total 1") {
		t.Errorf("scrape missing violation counter:\n%s", body)
	}

	var report bytes.Buffer
	n := sess.Finish(&report, "roundtrip")
	if n != 1 {
		t.Fatalf("Finish reported %d violations, want 1", n)
	}
	if !strings.Contains(report.String(), "flight-recorder artifact:") {
		t.Fatalf("Finish did not write the artifact:\n%s", report.String())
	}
	// Endpoint must be down after Finish.
	if _, err := client.Get("http://" + sess.Addr + "/healthz"); err == nil {
		t.Error("endpoint still serving after Finish")
	}
}

// TestInertSession: zero Options must yield a no-op session so every
// CLI can call Start/Finish unconditionally.
func TestInertSession(t *testing.T) {
	sess, err := Options{}.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Sinks() != nil || sess.Addr != "" {
		t.Fatalf("inert session not inert: %+v", sess)
	}
	var buf bytes.Buffer
	if n := sess.Finish(&buf, "x"); n != 0 || buf.Len() != 0 {
		t.Fatalf("inert Finish: n=%d out=%q", n, buf.String())
	}
}

// TestFinishContextCancellableLinger: a signal arriving during the
// linger window must cut it short and still stop the server — the
// window used to be an uninterruptible time.Sleep.
func TestFinishContextCancellableLinger(t *testing.T) {
	sess, err := Options{Listen: "127.0.0.1:0", Linger: time.Hour}.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	finished := make(chan int, 1)
	var report bytes.Buffer
	go func() { finished <- sess.FinishContext(ctx, &report, "linger") }()

	select {
	case <-finished:
		t.Fatal("FinishContext returned before the linger was cancelled")
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled linger did not unblock FinishContext")
	}
	if !strings.Contains(report.String(), "linger interrupted") {
		t.Errorf("no linger-interrupted note:\n%s", report.String())
	}
	client := http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + sess.Addr + "/healthz"); err == nil {
		t.Error("endpoint still serving after interrupted linger")
	}
}

// TestFinishContextInterruptDump: an interrupted session with a flight
// dir must leave a post-mortem artifact even when no monitor tripped,
// and must skip the linger entirely.
func TestFinishContextInterruptDump(t *testing.T) {
	dir := t.TempDir()
	sess, err := Options{Monitors: "residency=1000", FlightDir: dir, Ring: 64, Linger: time.Hour}.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Recorder.BeginRun([]string{"w"}, 0)
	sess.Sinks()[0].Emit(tso.Event{Kind: tso.EvStore, Thread: 0, Addr: 1, Val: 1, Tick: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var report bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- sess.FinishContext(ctx, &report, "campaign") }()
	var n int
	select {
	case n = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("FinishContext lingered despite a cancelled context")
	}
	if n != 0 {
		t.Fatalf("FinishContext reported %d violations, want 0", n)
	}
	// No violation → no regular artifact; interruption → post-mortem one.
	if _, err := os.Stat(filepath.Join(dir, "campaign.flight.json")); !os.IsNotExist(err) {
		t.Errorf("violation artifact written without a violation: %v", err)
	}
	path := filepath.Join(dir, "campaign.interrupt.flight.json")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("no interrupt post-mortem artifact: %v", err)
	}
	defer f.Close()
	dump, err := monitor.ReadFlightDump(f)
	if err != nil {
		t.Fatalf("interrupt artifact unreadable: %v", err)
	}
	if dump.RetainedEvents != 1 || len(dump.Violations) != 0 {
		t.Errorf("interrupt artifact: retained=%d violations=%d, want 1/0",
			dump.RetainedEvents, len(dump.Violations))
	}
}
