package serve

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tbtso/internal/obs"
)

// WritePrometheus renders the registry's snapshot in the Prometheus
// text exposition format (version 0.0.4):
//
//   - metric names are prefixed "tbtso_" and sanitized (every
//     character outside [a-zA-Z0-9_] becomes "_"), so
//     "machine.drain.delta" scrapes as "tbtso_machine_drain_delta";
//   - counters gain the conventional "_total" suffix;
//   - gauges export as-is;
//   - histograms export cumulative "_bucket{le=...}" series, an
//     "le=+Inf" bucket, "_sum" and "_count" — the native Prometheus
//     histogram type, so rate() and histogram_quantile() work.
func WritePrometheus(w io.Writer, reg *obs.Registry) error {
	for _, m := range reg.Snapshot() {
		name := promName(m.Name)
		switch m.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, m.Value); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.Value); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum uint64
			for _, b := range m.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.Bound != math.MaxInt64 {
					le = fmt.Sprintf("%d", b.Bound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, m.Sum, name, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName sanitizes a registry metric name into a legal Prometheus
// metric name under the tbtso_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("tbtso_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
