package serve

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"tbtso/internal/obs"
	"tbtso/internal/obs/monitor"
	"tbtso/internal/tso"
)

// Options is the shared -obs.* flag block every tbtso CLI registers,
// so monitoring and the ops endpoint work identically across
// tbtso-sim, tbtso-bench, tbtso-fuzz, tbtso-trace and tbtso-verify.
type Options struct {
	// Listen is the ops endpoint address ("" = no endpoint).
	Listen string
	// Monitors selects online monitors attached to machine runs:
	// comma list of residency[=Δ], drain, smr[=Δ], or "all"
	// ("" = none). A monitor's =Δ overrides the bound it checks;
	// without it the run's own Δ is used.
	Monitors string
	// Linger keeps the ops endpoint serving this long after the
	// command's work finishes, so external scrapers can collect the
	// final state.
	Linger time.Duration
	// FlightDir, when non-empty, receives a flight-recorder artifact
	// (<command>.flight.json) if any monitor tripped.
	FlightDir string
	// Ring is the flight recorder's event capacity.
	Ring int
}

// Register installs the -obs.* flags on fs (pass flag.CommandLine).
func (o *Options) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Listen, "obs.listen", "", "serve the ops endpoint (/metrics, /metrics.json, /healthz, /violations, /flightrecorder, /coverage, /debug/pprof) on this address; :0 picks a port")
	fs.StringVar(&o.Monitors, "obs.monitor", "", "attach online monitors to machine runs: comma list of residency[=Δ], drain, smr[=Δ], or all")
	fs.DurationVar(&o.Linger, "obs.linger", 0, "keep the ops endpoint serving this long after the run finishes")
	fs.StringVar(&o.FlightDir, "obs.flightdir", "", "write a flight-recorder artifact here when a monitor reports a violation")
	fs.IntVar(&o.Ring, "obs.ring", 4096, "flight-recorder ring capacity in events")
}

// Session is a started observability session: the registry, the
// monitor set and flight recorder (nil unless monitors were
// requested), and the running ops server (nil unless -obs.listen).
type Session struct {
	Registry *obs.Registry
	Monitors *monitor.Set
	Recorder *monitor.FlightRecorder
	// Addr is the ops endpoint's bound address ("" when not serving).
	Addr string

	srv       *Server
	linger    time.Duration
	flightDir string
}

// Start builds the session from the parsed flags: it parses the
// monitor spec, wires the flight recorder, and starts the ops
// endpoint. reg may be nil (a fresh registry is created). A zero
// Options yields an inert session whose Sinks() is empty.
func (o Options) Start(reg *obs.Registry) (*Session, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Session{Registry: reg, linger: o.Linger, flightDir: o.FlightDir}

	if o.Monitors != "" {
		set, err := ParseMonitors(o.Monitors, reg)
		if err != nil {
			return nil, err
		}
		ring := o.Ring
		if ring <= 0 {
			ring = 4096
		}
		s.Monitors = set
		s.Recorder = monitor.NewFlightRecorder(reg, set, ring)
	}

	if o.Listen != "" {
		srv := New(reg)
		if s.Monitors != nil {
			srv.SetMonitors(s.Monitors)
		}
		if s.Recorder != nil {
			srv.SetFlightRecorder(s.Recorder)
		}
		addr, err := srv.Start(o.Listen)
		if err != nil {
			return nil, err
		}
		s.srv, s.Addr = srv, addr
	}
	return s, nil
}

// ParseMonitors builds a monitor set from a -obs.monitor spec:
// "residency", "residency=40,drain", "all", ... publishing into reg.
func ParseMonitors(spec string, reg *obs.Registry) (*monitor.Set, error) {
	set := monitor.NewSet()
	add := func(name string, bound uint64) error {
		switch name {
		case "residency":
			set.Attach(monitor.NewResidency(reg, bound))
		case "drain":
			set.Attach(monitor.NewDrainAccounting())
		case "smr":
			set.Attach(monitor.NewSMRVisibility(reg, bound))
		default:
			return fmt.Errorf("serve: unknown monitor %q (valid: residency[=Δ], drain, smr[=Δ], all)", name)
		}
		return nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, boundStr, hasBound := strings.Cut(field, "=")
		var bound uint64
		if hasBound {
			v, err := strconv.ParseUint(boundStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: monitor %q: bad bound %q", name, boundStr)
			}
			bound = v
		}
		if name == "all" {
			if hasBound {
				return nil, fmt.Errorf("serve: monitor \"all\" takes no =Δ bound")
			}
			for _, n := range []string{"residency", "drain", "smr"} {
				if err := add(n, 0); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := add(name, bound); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Server returns the running ops server (nil unless -obs.listen), so
// commands can attach command-specific sources — a campaign's coverage
// provider, a sharded flight dumper — after Start.
func (s *Session) Server() *Server { return s.srv }

// Sinks returns what to attach to each machine run: the flight
// recorder (which fans out to the monitors) when monitoring is on,
// nothing otherwise. Callers that also want machine.* metrics attach
// obs.NewMachineMetrics(session.Registry) alongside.
func (s *Session) Sinks() []tso.Sink {
	if s.Recorder == nil {
		return nil
	}
	return []tso.Sink{s.Recorder}
}

// Finish ends the session: it reports violations to w, dumps the
// flight artifact into FlightDir if any monitor tripped, honors the
// linger window, and stops the server. name labels the artifact file.
// It returns the number of violations (callers fold it into their
// exit code).
func (s *Session) Finish(w io.Writer, name string) int {
	return s.FinishContext(context.Background(), w, name)
}

// FinishContext is Finish with interruption semantics. The linger
// window is cancellable: a signal arriving while the endpoint lingers
// cuts the window short instead of pinning the process in an
// unkillable sleep, and the server still stops. When ctx is already
// cancelled — the run was interrupted — the recorder additionally
// dumps an unconditional <name>.interrupt.flight.json post-mortem
// artifact, violations or not.
func (s *Session) FinishContext(ctx context.Context, w io.Writer, name string) int {
	var violations []monitor.Violation
	if s.Monitors != nil {
		violations = s.Monitors.Violations()
	}
	for _, v := range violations {
		fmt.Fprintf(w, "obs: VIOLATION %s\n", v)
	}
	if s.Recorder != nil && s.flightDir != "" {
		if path, err := s.Recorder.DumpOnViolation(s.flightDir, name); err != nil {
			fmt.Fprintf(w, "obs: flight dump: %v\n", err)
		} else if path != "" {
			fmt.Fprintf(w, "obs: flight-recorder artifact: %s\n", path)
		}
		if ctx.Err() != nil {
			if path, err := s.Recorder.DumpToFile(s.flightDir, name+".interrupt"); err != nil {
				fmt.Fprintf(w, "obs: interrupt flight dump: %v\n", err)
			} else {
				fmt.Fprintf(w, "obs: interrupt flight-recorder artifact: %s\n", path)
			}
		}
	}
	if s.srv != nil {
		if s.linger > 0 && ctx.Err() == nil {
			fmt.Fprintf(w, "obs: endpoint http://%s lingering %v\n", s.Addr, s.linger)
			select {
			case <-time.After(s.linger):
			case <-ctx.Done():
				fmt.Fprintf(w, "obs: linger interrupted\n")
			}
		}
		s.srv.Stop() //nolint:errcheck
	}
	return len(violations)
}
