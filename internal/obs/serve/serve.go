// Package serve embeds a live ops endpoint into the tbtso CLIs: the
// metrics registry in Prometheus text exposition format and as JSON,
// the monitor violation report, a flight-recorder dump, health, and
// net/http/pprof — so a long fuzz campaign or bench run is scrapeable
// and debuggable while it executes. All five commands wire it through
// the shared flag helper in flags.go (-obs.listen, -obs.monitor).
// See docs/OBSERVABILITY.md for curl examples.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"tbtso/internal/obs"
	"tbtso/internal/obs/monitor"
)

// Server is the embedded ops endpoint. Zero-value fields degrade
// gracefully: without a monitor set /violations reports an empty
// list, without a recorder /flightrecorder is 404.
type Server struct {
	reg *obs.Registry
	set *monitor.Set
	rec *monitor.FlightRecorder
	mux *http.ServeMux

	ln   net.Listener
	http *http.Server
}

// New returns a server exposing reg. Attach monitors and a flight
// recorder with SetMonitors/SetFlightRecorder before Start.
func New(reg *obs.Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/violations", s.handleViolations)
	s.mux.HandleFunc("/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// SetMonitors attaches the monitor set behind /violations and the
// health check.
func (s *Server) SetMonitors(set *monitor.Set) { s.set = set }

// SetFlightRecorder attaches the recorder behind /flightrecorder.
func (s *Server) SetFlightRecorder(rec *monitor.FlightRecorder) { s.rec = rec }

// Handler returns the ops mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("host:port"; ":0" picks a free port) and
// serves in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux}
	go s.http.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Stop
	return ln.Addr().String(), nil
}

// Stop closes the listener and any in-flight connections.
func (s *Server) Stop() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.reg); err != nil {
		// Too late for a status code; the scrape will be truncated.
		return
	}
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w) //nolint:errcheck
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	n := 0
	if s.set != nil {
		n = len(s.set.Violations())
	}
	w.Header().Set("Content-Type", "application/json")
	if n > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "violations", "violations": n})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"status": "ok", "violations": 0})
}

func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	violations := []monitor.Violation{}
	if s.set != nil {
		violations = append(violations, s.set.Violations()...)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"violations": violations}) //nolint:errcheck
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "no flight recorder attached (run with -obs.monitor)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.rec.Dump(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
