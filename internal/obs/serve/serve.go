// Package serve embeds a live ops endpoint into the tbtso CLIs: the
// metrics registry in Prometheus text exposition format and as JSON,
// the monitor violation report, a flight-recorder dump, health, and
// net/http/pprof — so a long fuzz campaign or bench run is scrapeable
// and debuggable while it executes. All five commands wire it through
// the shared flag helper in flags.go (-obs.listen, -obs.monitor).
// See docs/OBSERVABILITY.md for curl examples.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"tbtso/internal/obs"
	"tbtso/internal/obs/coverage"
	"tbtso/internal/obs/monitor"
)

// FlightDumper is anything that can dump a flight artifact:
// *monitor.FlightRecorder (single-machine runs) or
// *monitor.ShardedFlight (parallel campaigns).
type FlightDumper interface {
	Dump(w io.Writer) error
}

// Server is the embedded ops endpoint. Zero-value fields degrade
// gracefully: without a monitor set /violations reports an empty
// list, without a recorder /flightrecorder is 404, without a coverage
// source /coverage is 404.
type Server struct {
	reg *obs.Registry
	rec FlightDumper
	mux *http.ServeMux

	mu         sync.Mutex
	set        *monitor.Set
	violSrcs   []func() []monitor.Violation
	coverageFn func() *coverage.Snapshot

	ln   net.Listener
	http *http.Server
}

// New returns a server exposing reg. Attach monitors, a flight
// recorder and a coverage source with SetMonitors/SetFlightRecorder/
// SetCoverage before Start.
func New(reg *obs.Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/violations", s.handleViolations)
	s.mux.HandleFunc("/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("/coverage", s.handleCoverage)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// SetMonitors attaches the monitor set behind /violations and the
// health check.
func (s *Server) SetMonitors(set *monitor.Set) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.set = set
}

// SetFlightRecorder attaches the dumper behind /flightrecorder — the
// classic FlightRecorder or a campaign's ShardedFlight.
func (s *Server) SetFlightRecorder(rec FlightDumper) { s.rec = rec }

// AddViolations registers an extra violation source folded into
// /violations and /healthz alongside the monitor set — e.g. a sharded
// campaign recorder's per-seed violations.
func (s *Server) AddViolations(src func() []monitor.Violation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.violSrcs = append(s.violSrcs, src)
}

// SetCoverage attaches the /coverage source: a function returning the
// latest published campaign coverage snapshot (it must be safe for
// concurrent calls; returning nil means "nothing yet"). The snapshot
// is also rendered into the Prometheus scrape as tbtso_coverage_*.
func (s *Server) SetCoverage(fn func() *coverage.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.coverageFn = fn
}

func (s *Server) coverageSnapshot() *coverage.Snapshot {
	s.mu.Lock()
	fn := s.coverageFn
	s.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

func (s *Server) allViolations() []monitor.Violation {
	s.mu.Lock()
	set := s.set
	srcs := append([]func() []monitor.Violation(nil), s.violSrcs...)
	s.mu.Unlock()
	violations := []monitor.Violation{}
	if set != nil {
		violations = append(violations, set.Violations()...)
	}
	for _, src := range srcs {
		violations = append(violations, src()...)
	}
	return violations
}

// Handler returns the ops mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("host:port"; ":0" picks a free port) and
// serves in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux}
	go s.http.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Stop
	return ln.Addr().String(), nil
}

// Stop closes the listener and any in-flight connections.
func (s *Server) Stop() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.reg); err != nil {
		// Too late for a status code; the scrape will be truncated.
		return
	}
	if snap := s.coverageSnapshot(); snap != nil {
		WritePrometheusCoverage(w, snap) //nolint:errcheck // same scrape
	}
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w) //nolint:errcheck
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	n := len(s.allViolations())
	w.Header().Set("Content-Type", "application/json")
	if n > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "violations", "violations": n})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"status": "ok", "violations": 0})
}

func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"violations": s.allViolations()}) //nolint:errcheck
}

func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	snap := s.coverageSnapshot()
	if snap == nil {
		http.Error(w, "no coverage source attached (campaign not started?)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "no flight recorder attached (run with -obs.monitor)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.rec.Dump(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
