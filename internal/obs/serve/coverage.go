package serve

import (
	"fmt"
	"io"
	"strings"

	"tbtso/internal/obs/coverage"
)

// WritePrometheusCoverage renders a coverage snapshot as
// tbtso_coverage_* series in the Prometheus text exposition format,
// appended to the /metrics scrape. Map-backed series carry labels
// (op, shape, cause, or the cell's delta/policy/seed) and are emitted
// in sorted key order, so two scrapes of equal snapshots are
// byte-identical.
func WritePrometheusCoverage(w io.Writer, s *coverage.Snapshot) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE tbtso_coverage_programs_total counter\ntbtso_coverage_programs_total %d\n", s.Programs)
	p("# TYPE tbtso_coverage_runs_total counter\ntbtso_coverage_runs_total %d\n", s.Runs)
	p("# TYPE tbtso_coverage_cells gauge\ntbtso_coverage_cells %d\n", len(s.Cells))

	if len(s.OpMix) > 0 {
		p("# TYPE tbtso_coverage_ops_total counter\n")
		for _, k := range coverage.SortedKeys(s.OpMix) {
			p("tbtso_coverage_ops_total{op=%q} %d\n", k, s.OpMix[k])
		}
	}
	if len(s.Cells) > 0 {
		p("# TYPE tbtso_coverage_cell_runs_total counter\n")
		for _, k := range coverage.SortedKeys(s.Cells) {
			p("tbtso_coverage_cell_runs_total{%s} %d\n", cellLabels(k), s.Cells[k])
		}
	}
	if len(s.DrainMix) > 0 {
		p("# TYPE tbtso_coverage_drains_total counter\n")
		for _, k := range coverage.SortedKeys(s.DrainMix) {
			p("tbtso_coverage_drains_total{cause=%q} %d\n", k, s.DrainMix[k])
		}
	}
	if len(s.Shapes) > 0 {
		p("# TYPE tbtso_coverage_shape_programs_total counter\n")
		for _, k := range coverage.SortedKeys(s.Shapes) {
			p("tbtso_coverage_shape_programs_total{shape=%q} %d\n", k, s.Shapes[k].Programs)
		}
		p("# TYPE tbtso_coverage_shape_outcome_entropy_bits gauge\n")
		for _, k := range coverage.SortedKeys(s.Shapes) {
			p("tbtso_coverage_shape_outcome_entropy_bits{shape=%q} %g\n", k, s.Shapes[k].CardEntropy())
		}
	}
	p("# TYPE tbtso_coverage_mc_explorations_total counter\ntbtso_coverage_mc_explorations_total %d\n", s.MC.Explorations)
	p("# TYPE tbtso_coverage_mc_truncated_total counter\ntbtso_coverage_mc_truncated_total %d\n", s.MC.Truncated)
	p("# TYPE tbtso_coverage_mc_states_total counter\ntbtso_coverage_mc_states_total %d\n", s.MC.States)
	p("# TYPE tbtso_coverage_mc_transitions_total counter\ntbtso_coverage_mc_transitions_total %d\n", s.MC.Transitions)
	p("# TYPE tbtso_coverage_mc_dedup_hits_total counter\ntbtso_coverage_mc_dedup_hits_total %d\n", s.MC.DedupHits)
	p("# TYPE tbtso_coverage_mc_por_prunes_total counter\ntbtso_coverage_mc_por_prunes_total %d\n", s.MC.PorPrunes)
	p("# TYPE tbtso_coverage_mc_terminal_collapses_total counter\ntbtso_coverage_mc_terminal_collapses_total %d\n", s.MC.TerminalCollapses)
	return err
}

// cellLabels converts a coverage cell key ("delta=1 policy=eager
// seed=0") into Prometheus labels (delta="1",policy="eager",seed="0").
func cellLabels(key string) string {
	parts := strings.Fields(key)
	labels := make([]string, 0, len(parts))
	for _, part := range parts {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		labels = append(labels, fmt.Sprintf("%s=%q", k, v))
	}
	return strings.Join(labels, ",")
}
