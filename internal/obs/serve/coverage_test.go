package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tbtso/internal/fuzz"
	"tbtso/internal/obs"
	"tbtso/internal/obs/coverage"
	"tbtso/internal/obs/monitor"
)

func coverageFixture() *coverage.Snapshot {
	var s coverage.Snapshot
	s.ObserveProgram(2, 4, map[string]uint64{"store": 2, "load": 1})
	s.ObserveProgram(2, 4, map[string]uint64{"store": 2, "load": 1})
	s.ObserveRun(1, "eager", 0)
	s.ObserveRun(1, "eager", 0)
	s.ObserveRun(3, "random", 1)
	s.ObserveOutcomeSet(2, 4, 3)
	s.ObserveDrain("fence", 2)
	s.ObserveExploration(120, 340, 11, 5, 2)
	return &s
}

func TestWritePrometheusCoverage(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheusCoverage(&buf, coverageFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{
		"tbtso_coverage_programs_total 2",
		"tbtso_coverage_runs_total 3",
		"tbtso_coverage_cells 2",
		`tbtso_coverage_ops_total{op="load"} 2`,
		`tbtso_coverage_ops_total{op="store"} 4`,
		`tbtso_coverage_cell_runs_total{delta="1",policy="eager",seed="0"} 2`,
		`tbtso_coverage_drains_total{cause="fence"} 2`,
		`tbtso_coverage_shape_programs_total{shape="2x4"} 2`,
		"tbtso_coverage_mc_states_total 120",
		"tbtso_coverage_mc_por_prunes_total 5",
		"tbtso_coverage_mc_terminal_collapses_total 2",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("scrape lacks %q:\n%s", w, out)
		}
	}
	// Two scrapes of the same snapshot are byte-identical.
	var again bytes.Buffer
	WritePrometheusCoverage(&again, coverageFixture())
	if out != again.String() {
		t.Error("coverage scrape is not deterministic")
	}
}

func TestCoverageHandler(t *testing.T) {
	srv := New(obs.NewRegistry())
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/coverage", nil))
	if w.Code != 404 {
		t.Fatalf("/coverage without a source: %d, want 404", w.Code)
	}

	snap := coverageFixture()
	srv.SetCoverage(func() *coverage.Snapshot { return snap })
	w = httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/coverage", nil))
	if w.Code != 200 {
		t.Fatalf("/coverage: %d", w.Code)
	}
	var got coverage.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatalf("/coverage does not parse: %v", err)
	}
	if got.Runs != snap.Runs || got.MC.States != snap.MC.States {
		t.Errorf("round trip lost counts: %+v", got)
	}

	// The Prometheus scrape appends the coverage series.
	w = httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(w.Body.String(), "tbtso_coverage_programs_total") {
		t.Error("/metrics lacks the coverage series")
	}
}

// TestConcurrentScrapesDuringCampaign drives a real multi-worker fuzz
// campaign — sharded flight recording, per-batch coverage publication —
// while hammering every ops endpoint from parallel scrapers. Run under
// -race (make race) this pins the tentpole's synchronization story: the
// scrape path never touches a worker's shard, only the published clone
// and the mutex-guarded merged store.
func TestConcurrentScrapesDuringCampaign(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(reg)
	var published atomic.Pointer[coverage.Snapshot]
	srv.SetCoverage(published.Load)
	flight := monitor.NewShardedFlight(func() *monitor.Set {
		return monitor.NewSet(monitor.NewDrainAccounting())
	}, monitor.DefaultFlightSeeds)
	srv.SetFlightRecorder(flight)
	srv.AddViolations(flight.Violations)
	srv.SetMonitors(monitor.NewSet())

	cfg := fuzz.Config{
		Deltas:           []int{0, 1},
		MachSeeds:        1,
		MaxStates:        40_000,
		CrossCheckStates: -1,
		Workers:          4,
		Metrics:          reg,
		Flight:           flight,
	}

	flight.Begin(0)
	done := make(chan struct{})
	var cov coverage.Snapshot
	go func() {
		defer close(done)
		seed := int64(0)
		for batch := 0; batch < 5; batch++ {
			rep, d, err := fuzz.RunContext(nil, cfg, 8, seed)
			if err != nil {
				t.Errorf("batch %d: %v", batch, err)
				return
			}
			seed += int64(d)
			cov.Merge(&rep.Coverage)
			flight.Compact(seed)
			published.Store(cov.Clone())
		}
	}()

	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/coverage", "/flightrecorder", "/violations", "/healthz"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				w := httptest.NewRecorder()
				srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", p, nil))
				if p == "/flightrecorder" && w.Code != 200 {
					t.Errorf("%s mid-campaign: %d", p, w.Code)
					return
				}
			}
		}(path)
	}
	<-done
	wg.Wait()

	// After the campaign, /coverage serves exactly the merged snapshot.
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/coverage", nil))
	wantJSON, err := json.Marshal(&cov)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(w.Body.String()) == "" {
		t.Fatal("/coverage empty after campaign")
	}
	var got coverage.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(&got)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("/coverage diverged from the campaign's merged snapshot:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if got.Programs != 40 {
		t.Errorf("campaign covered %d programs, want 40", got.Programs)
	}
	// The final flight dump covers the full prefix.
	var buf bytes.Buffer
	if err := flight.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := monitor.ReadCampaignFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.NextSeed != 40 || doc.TotalEvents == 0 {
		t.Errorf("flight dump incomplete: next_seed=%d events=%d", doc.NextSeed, doc.TotalEvents)
	}
}
