package obs

import (
	"reflect"
	"testing"
)

func TestMergeMetricsKinds(t *testing.T) {
	a := NewRegistry()
	a.Counter("work.done").Add(3)
	a.Gauge("pool.size").Set(5)
	h := a.Histogram("lat.ns", []int64{10, 100})
	h.Observe(7)
	h.Observe(50)

	b := NewRegistry()
	b.Counter("work.done").Add(4)
	b.Gauge("pool.size").Set(2)
	hb := b.Histogram("lat.ns", []int64{10, 100})
	hb.Observe(400)
	b.Counter("only.b").Add(1)

	got := MergeMetrics(a.Snapshot(), b.Snapshot())
	byName := map[string]Metric{}
	for _, m := range got {
		byName[m.Name] = m
	}
	if m := byName["work.done"]; m.Kind != "counter" || m.Value != 7 {
		t.Errorf("counter merge: %+v", m)
	}
	if m := byName["pool.size"]; m.Kind != "gauge" || m.Value != 5 {
		t.Errorf("gauge merge (want max): %+v", m)
	}
	if m := byName["only.b"]; m.Value != 1 {
		t.Errorf("unilateral metric lost: %+v", m)
	}
	m := byName["lat.ns"]
	if m.Count != 3 || m.Sum != 457 || m.Min != 7 || m.Max != 400 {
		t.Errorf("histogram merge: %+v", m)
	}
	if m.Mean != float64(457)/3 {
		t.Errorf("histogram mean not recomputed: %v", m.Mean)
	}
	if m.P50 != 0 || m.P999 != 0 {
		t.Errorf("quantiles fabricated across runs: %+v", m)
	}
	var bucketTotal uint64
	for _, bc := range m.Buckets {
		bucketTotal += bc.Count
	}
	if len(m.Buckets) != 3 || bucketTotal != 3 {
		t.Errorf("buckets not summed: %+v", m.Buckets)
	}

	// Sorted by name, and merging is order-insensitive for these inputs.
	for i := 1; i < len(got); i++ {
		if got[i-1].Name >= got[i].Name {
			t.Fatalf("output not sorted: %q >= %q", got[i-1].Name, got[i].Name)
		}
	}
	rev := MergeMetrics(b.Snapshot(), a.Snapshot())
	for i := range rev {
		if rev[i].Name != got[i].Name || rev[i].Value != got[i].Value || rev[i].Count != got[i].Count || rev[i].Sum != got[i].Sum {
			t.Fatalf("merge order changed totals: %+v vs %+v", rev[i], got[i])
		}
	}
}

func TestMergeMetricsMismatchedBuckets(t *testing.T) {
	a := NewRegistry()
	a.Histogram("lat.ns", []int64{10, 100}).Observe(5)
	b := NewRegistry()
	b.Histogram("lat.ns", []int64{16, 256}).Observe(20)
	got := MergeMetrics(a.Snapshot(), b.Snapshot())
	if len(got) != 1 {
		t.Fatalf("got %d metrics", len(got))
	}
	m := got[0]
	if m.Count != 2 || m.Sum != 25 {
		t.Errorf("summary totals lost: %+v", m)
	}
	if m.Buckets != nil {
		t.Errorf("incompatible buckets should be dropped, got %+v", m.Buckets)
	}
}

func TestMergeMetricsSingleInputIsStable(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(2)
	a.Gauge("g").Set(-3)
	one := MergeMetrics(a.Snapshot())
	again := MergeMetrics(one)
	// Quantile-free metrics are a fixed point of merging with nothing.
	if !reflect.DeepEqual(one, again) {
		t.Fatalf("re-merge changed the snapshot:\n%+v\n%+v", one, again)
	}
}
