package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"tbtso/internal/tso"
)

// rawTraceEvent mirrors the trace-event JSON for validation.
type rawTraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	ID   uint64         `json:"id"`
	Args map[string]any `json:"args"`
}

type rawDoc struct {
	TraceEvents     []rawTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// ValidatePerfettoJSON checks the shape the trace viewers require:
// a traceEvents array whose entries all carry ph/pid/tid, balanced
// store→commit flow pairs, and drain causes on commit slices. Shared
// with the CLI smoke test via the exported helper below.
func ValidatePerfettoJSON(data []byte) (doc rawDoc, err error) {
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, err
	}
	return doc, nil
}

func exportSmallRun(t *testing.T) []byte {
	t.Helper()
	perf := NewPerfetto()
	runMachine(t, tso.Config{Delta: 25, Policy: tso.DrainRandom, Seed: 5}, perf)
	var buf bytes.Buffer
	if err := perf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPerfettoShape(t *testing.T) {
	data := exportSmallRun(t)
	doc, err := ValidatePerfettoJSON(data)
	if err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	var starts, finishes, commits, stores, meta int
	threadNames := map[int]string{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing ph/pid/tid: %+v", i, ev)
		}
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[*ev.Tid] = ev.Args["name"].(string)
			}
		case "s":
			starts++
		case "f":
			finishes++
		case "X":
			if ev.Dur <= 0 {
				t.Fatalf("complete event %d with nonpositive dur: %+v", i, ev)
			}
			switch ev.Cat {
			case "commit":
				commits++
				cause, ok := ev.Args["cause"].(string)
				if !ok || cause == "" {
					t.Fatalf("commit slice %d missing drain cause: %+v", i, ev)
				}
				if _, ok := ev.Args["latency_ticks"]; !ok {
					t.Fatalf("commit slice %d missing latency: %+v", i, ev)
				}
			case "store":
				stores++
			}
		case "C":
			if _, ok := ev.Args["stores"]; !ok {
				t.Fatalf("counter event %d missing value: %+v", i, ev)
			}
		}
	}
	if meta < 3 { // process_name + 2 thread_name
		t.Fatalf("expected process+thread metadata, got %d events", meta)
	}
	if threadNames[0] != "T0 writer" || threadNames[1] != "T1 reader" {
		t.Fatalf("thread names wrong: %v", threadNames)
	}
	if stores == 0 || commits == 0 {
		t.Fatalf("trace has %d stores, %d commits", stores, commits)
	}
	if stores != commits {
		t.Fatalf("%d store slices but %d commit slices", stores, commits)
	}
	// Every store's flow must terminate: the run flushes all buffers.
	if starts == 0 || starts != finishes {
		t.Fatalf("flow arrows unbalanced: %d starts, %d finishes", starts, finishes)
	}
	if starts != stores {
		t.Fatalf("%d flow starts for %d stores", starts, stores)
	}
}

func TestPerfettoFlowLatencyMatchesTicks(t *testing.T) {
	// A directed run: adversarial drains, one buffered store forced out
	// by the Δ bound. The flow arrow must span the commit latency.
	perf := NewPerfetto()
	m := tso.New(tso.Config{Delta: 20, Policy: tso.DrainAdversarial, Seed: 1, Sinks: []tso.Sink{perf}})
	a := m.AllocWords(1)
	m.Spawn("w", func(th *tso.Thread) {
		th.Store(a, 7)
		for i := 0; i < 30; i++ {
			th.Yield()
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatal(res.Err)
	}
	var buf bytes.Buffer
	if err := perf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ValidatePerfettoJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var sTs, fTs float64 = -1, -1
	var lat float64 = -1
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			sTs = ev.Ts
		case "f":
			fTs = ev.Ts
		case "X":
			if ev.Cat == "commit" {
				lat = ev.Args["latency_ticks"].(float64)
			}
		}
	}
	if sTs < 0 || fTs < 0 || lat < 0 {
		t.Fatalf("missing flow or commit (s=%v f=%v lat=%v)", sTs, fTs, lat)
	}
	if fTs-sTs != lat {
		t.Fatalf("flow spans %v ticks but commit latency is %v", fTs-sTs, lat)
	}
}

func TestPerfettoFromEvents(t *testing.T) {
	cfg := tso.Config{Delta: 25, Policy: tso.DrainRandom, Seed: 2, Trace: true}
	m := tso.New(cfg)
	a := m.AllocWords(1)
	m.Spawn("solo", func(th *tso.Thread) {
		th.Store(a, 1)
		th.Fence()
	})
	if res := m.Run(); res.Err != nil {
		t.Fatal(res.Err)
	}
	p := PerfettoFromEvents(m.Trace(), []string{"solo"}, 25)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ValidatePerfettoJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) < 4 {
		t.Fatalf("too few events: %d", len(doc.TraceEvents))
	}
}
