package obs

import "tbtso/internal/tso"

// RingSink keeps the most recent events of a run in a fixed-capacity
// ring buffer: the tail of a long execution at O(1) memory, with an
// allocation-free Emit. Attach it for runs whose full trace would not
// fit in memory.
type RingSink struct {
	buf  []tso.Event
	next uint64 // total events seen; next%cap is the write slot
}

// NewRingSink returns a ring holding the last n events.
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		panic("obs: ring sink capacity must be positive")
	}
	return &RingSink{buf: make([]tso.Event, n)}
}

// Emit implements tso.Sink. It sits on the model's fast path: one
// slot write, no allocation, no fence.
//
//tbtso:fencefree
func (r *RingSink) Emit(e tso.Event) {
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
}

// Total reports how many events were emitted over the run, including
// those the ring has since overwritten.
func (r *RingSink) Total() uint64 { return r.next }

// Dropped reports how many events were overwritten.
func (r *RingSink) Dropped() uint64 {
	if r.next <= uint64(len(r.buf)) {
		return 0
	}
	return r.next - uint64(len(r.buf))
}

// Events returns the retained events in emission order.
func (r *RingSink) Events() []tso.Event {
	n := r.next
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	out := make([]tso.Event, 0, n)
	start := r.next - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(start+i)%uint64(len(r.buf))])
	}
	return out
}

// Machine metric names (with the drain-cause counters named
// "machine.drain.<cause>" per tso.DrainCause.String).
const (
	MetricStores        = "machine.stores"
	MetricLoads         = "machine.loads"
	MetricRMWs          = "machine.rmws"
	MetricFences        = "machine.fences"
	MetricCommits       = "machine.commits"
	MetricCommitLatency = "machine.commit_latency_ticks"
	MetricBufOccupancy  = "machine.buf_occupancy"
)

// CommitLatencyBuckets are the default tick buckets for the
// commit-latency histogram: exponential, covering sub-tick commits up
// to Δ values in the hundreds of thousands.
func CommitLatencyBuckets() []int64 { return ExpBuckets(1, 2, 20) }

// OccupancyBuckets are the default buckets for store-buffer depth.
func OccupancyBuckets() []int64 { return LinearBuckets(1, 1, 32) }

// MachineMetrics is a tso.Sink that folds the machine's event stream
// into a Registry: operation counters, the drain-cause breakdown, a
// commit-latency histogram and a store-buffer occupancy histogram
// (sampled at every enqueue). All metric handles are resolved once at
// construction, so Emit itself takes no locks and allocates nothing.
type MachineMetrics struct {
	stores, loads, rmws, fences, commits *Counter
	drains                               [tso.NumDrainCauses]*Counter
	latency                              *Histogram
	occupancy                            *Histogram
	depth                                []int // per-thread buffer depth
}

// NewMachineMetrics returns a sink publishing into reg under the
// "machine." metric names.
func NewMachineMetrics(reg *Registry) *MachineMetrics {
	m := &MachineMetrics{
		stores:    reg.Counter(MetricStores),
		loads:     reg.Counter(MetricLoads),
		rmws:      reg.Counter(MetricRMWs),
		fences:    reg.Counter(MetricFences),
		commits:   reg.Counter(MetricCommits),
		latency:   reg.Histogram(MetricCommitLatency, CommitLatencyBuckets()),
		occupancy: reg.Histogram(MetricBufOccupancy, OccupancyBuckets()),
	}
	for c := 0; c < tso.NumDrainCauses; c++ {
		m.drains[c] = reg.Counter("machine.drain." + tso.DrainCause(c).String())
	}
	return m
}

// BeginRun implements tso.RunObserver: it sizes the per-thread depth
// table so Emit never allocates.
func (m *MachineMetrics) BeginRun(names []string, delta uint64) {
	m.depth = make([]int, len(names))
}

// Emit implements tso.Sink on the model's fast path: counter bumps and
// two histogram observations, allocation-free.
//
//tbtso:fencefree
func (m *MachineMetrics) Emit(e tso.Event) {
	switch e.Kind {
	case tso.EvStore:
		m.stores.Inc()
		if e.Thread < len(m.depth) {
			m.depth[e.Thread]++
			m.occupancy.Observe(int64(m.depth[e.Thread]))
		}
	case tso.EvCommit:
		m.commits.Inc()
		m.drains[e.Cause].Inc()
		m.latency.Observe(int64(e.Tick - e.Enq))
		if e.Thread < len(m.depth) && m.depth[e.Thread] > 0 {
			m.depth[e.Thread]--
		}
	case tso.EvLoad:
		m.loads.Inc()
	case tso.EvRMW:
		m.rmws.Inc()
	case tso.EvFence:
		m.fences.Inc()
	}
}
