package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryTypeClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge under a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10,20,...,100
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	h.Observe(1000) // overflow bucket
	if got := h.Count(); got != 101 {
		t.Fatalf("count = %d, want 101", got)
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 60 {
		t.Fatalf("p50 = %d, want 60 (bucket upper edge)", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000", q)
	}
	bs := h.Buckets()
	if len(bs) != 11 {
		t.Fatalf("bucket count = %d, want 11", len(bs))
	}
	if bs[0].Count != 10 { // 1..10
		t.Fatalf("first bucket = %d, want 10", bs[0].Count)
	}
	if bs[10].Bound != math.MaxInt64 || bs[10].Count != 1 {
		t.Fatalf("overflow bucket = %+v", bs[10])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 12))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i % 500))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestExpBucketsAscending(t *testing.T) {
	bs := ExpBuckets(1, 1.3, 30)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, bs)
		}
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 16))
	c := &Counter{}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(37)
		c.Inc()
	})
	if allocs != 0 {
		t.Fatalf("Observe+Inc allocate %.1f bytes/op, want 0", allocs)
	}
}

func TestSnapshotAndWriters(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Gauge("a.gauge").Set(-2)
	h := r.Histogram("c.hist", LinearBuckets(1, 1, 4))
	h.Observe(2)
	h.Observe(3)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	// Sorted by name.
	if snap[0].Name != "a.gauge" || snap[1].Name != "b.count" || snap[2].Name != "c.hist" {
		t.Fatalf("snapshot order wrong: %v", []string{snap[0].Name, snap[1].Name, snap[2].Name})
	}
	if snap[2].Count != 2 || snap[2].Mean != 2.5 {
		t.Fatalf("histogram summary wrong: %+v", snap[2])
	}

	var text bytes.Buffer
	r.WriteText(&text)
	for _, want := range []string{"a.gauge", "-2", "b.count", "c.hist", "n=2"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var parsed []Metric
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatalf("WriteJSON output not parseable: %v", err)
	}
	if len(parsed) != 3 {
		t.Fatalf("parsed %d metrics, want 3", len(parsed))
	}
}

func TestPublisherDeltaSemantics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pub")

	// Two publishers (two source instances) accumulate into one counter.
	var a, b Publisher
	a.Publish(c, 10)
	b.Publish(c, 5)
	if got := c.Load(); got != 15 {
		t.Fatalf("two sources: counter = %d, want 15", got)
	}
	// Re-publishing an unchanged source is idempotent.
	a.Publish(c, 10)
	if got := c.Load(); got != 15 {
		t.Fatalf("idempotent republish: counter = %d, want 15", got)
	}
	// A grown source adds only its delta.
	a.Publish(c, 13)
	if got := c.Load(); got != 18 {
		t.Fatalf("grown source: counter = %d, want 18", got)
	}
}
