package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"tbtso/internal/tso"
)

// Perfetto is a tso.Sink that renders the machine's execution as a
// Chrome trace-event JSON document, loadable in ui.perfetto.dev or
// chrome://tracing:
//
//   - each model thread is a track (pid 1) carrying one slice per
//     action — store enqueue, load, fence, RMW — plus the commit
//     slices the memory subsystem performs on the thread's behalf;
//   - every store→commit pair is connected by a flow arrow whose
//     length IS the store's commit latency, the quantity the Δ bound
//     constrains;
//   - per-thread counter tracks plot store-buffer occupancy over time;
//   - commit slices carry the drain cause (delta / policy / fence /
//     rmw / capacity / interrupt / final) in their args.
//
// One model tick is rendered as one microsecond. Emit accumulates;
// call WriteJSON after the run.
type Perfetto struct {
	names []string
	delta uint64
	evs   []traceEvent
	// pending[t] holds flow ids of thread t's buffered stores (FIFO,
	// mirroring the store buffer); nextID numbers flows.
	pending [][]uint64
	nextID  uint64
}

// NewPerfetto returns an empty exporter.
func NewPerfetto() *Perfetto {
	return &Perfetto{}
}

// PerfettoFromEvents converts an already-recorded trace (e.g. from
// Machine.Trace or a RingSink) into an exporter. names may be nil, in
// which case threads are labeled T0, T1, ...
func PerfettoFromEvents(events []tso.Event, names []string, delta uint64) *Perfetto {
	p := NewPerfetto()
	p.BeginRun(names, delta)
	for _, e := range events {
		p.Emit(e)
	}
	return p
}

// traceEvent is one entry of the Chrome trace-event JSON format.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const perfettoPid = 1

// BeginRun implements tso.RunObserver: it records thread names and Δ
// and emits the process/thread metadata events.
func (p *Perfetto) BeginRun(names []string, delta uint64) {
	p.names = names
	p.delta = delta
	p.pending = make([][]uint64, len(names))
	p.evs = append(p.evs, traceEvent{
		Ph: "M", Name: "process_name", Pid: perfettoPid, Tid: 0,
		Args: map[string]any{"name": "tbtso machine"},
	})
	for i, n := range names {
		p.evs = append(p.evs, traceEvent{
			Ph: "M", Name: "thread_name", Pid: perfettoPid, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("T%d %s", i, n)},
		})
	}
}

func (p *Perfetto) threadName(i int) string {
	if i < len(p.names) {
		return p.names[i]
	}
	return fmt.Sprintf("T%d", i)
}

// ensureThread grows the pending table for traces without BeginRun
// (post-hoc conversion of a bare event slice).
func (p *Perfetto) ensureThread(i int) {
	for len(p.pending) <= i {
		p.pending = append(p.pending, nil)
	}
}

// Emit implements tso.Sink by appending the event's trace-viewer
// rendering. It runs on the machine's scheduling goroutine; the slice
// appends amortize but this sink is for attached-trace runs, not the
// no-sink fast path.
//
//tbtso:fencefree
func (p *Perfetto) Emit(e tso.Event) {
	ts := float64(e.Tick)
	p.ensureThread(e.Thread)
	switch e.Kind {
	case tso.EvStore:
		p.nextID++
		id := p.nextID
		p.pending[e.Thread] = append(p.pending[e.Thread], id)
		p.evs = append(p.evs,
			traceEvent{
				Ph: "X", Name: fmt.Sprintf("store [%d]=%d", e.Addr, e.Val), Cat: "store",
				Pid: perfettoPid, Tid: e.Thread, Ts: ts, Dur: 1,
				Args: map[string]any{"addr": uint64(e.Addr), "val": uint64(e.Val)},
			},
			// Flow start: the arrow leaves the store slice...
			traceEvent{
				Ph: "s", Name: "buffered", Cat: "sb", ID: id,
				Pid: perfettoPid, Tid: e.Thread, Ts: ts,
			},
			traceEvent{
				Ph: "C", Name: fmt.Sprintf("T%d buffer depth", e.Thread),
				Pid: perfettoPid, Tid: e.Thread, Ts: ts,
				Args: map[string]any{"stores": len(p.pending[e.Thread])},
			},
		)
	case tso.EvCommit:
		lat := e.Tick - e.Enq
		args := map[string]any{
			"addr": uint64(e.Addr), "val": uint64(e.Val),
			"cause": e.Cause.String(), "latency_ticks": lat,
		}
		p.evs = append(p.evs, traceEvent{
			Ph: "X", Name: fmt.Sprintf("commit [%d]=%d", e.Addr, e.Val), Cat: "commit",
			Pid: perfettoPid, Tid: e.Thread, Ts: ts, Dur: 1, Args: args,
		})
		// ...and lands on the commit slice (FIFO pairing mirrors the
		// store buffer; a ring-truncated trace may lack the store).
		if q := p.pending[e.Thread]; len(q) > 0 {
			id := q[0]
			p.pending[e.Thread] = q[1:]
			p.evs = append(p.evs,
				traceEvent{
					Ph: "f", BP: "e", Name: "buffered", Cat: "sb", ID: id,
					Pid: perfettoPid, Tid: e.Thread, Ts: ts,
				},
				traceEvent{
					Ph: "C", Name: fmt.Sprintf("T%d buffer depth", e.Thread),
					Pid: perfettoPid, Tid: e.Thread, Ts: ts,
					Args: map[string]any{"stores": len(p.pending[e.Thread])},
				},
			)
		}
	case tso.EvLoad:
		p.evs = append(p.evs, traceEvent{
			Ph: "X", Name: fmt.Sprintf("load [%d]=%d", e.Addr, e.Val), Cat: "load",
			Pid: perfettoPid, Tid: e.Thread, Ts: ts, Dur: 1,
			Args: map[string]any{"addr": uint64(e.Addr), "val": uint64(e.Val)},
		})
	case tso.EvRMW:
		p.evs = append(p.evs, traceEvent{
			Ph: "X", Name: fmt.Sprintf("rmw [%d]=%d", e.Addr, e.Val), Cat: "rmw",
			Pid: perfettoPid, Tid: e.Thread, Ts: ts, Dur: 1,
			Args: map[string]any{"addr": uint64(e.Addr), "val": uint64(e.Val)},
		})
	case tso.EvFence:
		p.evs = append(p.evs, traceEvent{
			Ph: "X", Name: "fence", Cat: "fence",
			Pid: perfettoPid, Tid: e.Thread, Ts: ts, Dur: 1,
		})
	}
}

// perfettoDoc is the top-level Chrome trace JSON object.
type perfettoDoc struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteJSON renders the accumulated trace. One model tick is one
// microsecond of trace time.
func (p *Perfetto) WriteJSON(w io.Writer) error {
	doc := perfettoDoc{
		TraceEvents:     p.evs,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"model":          "TBTSO",
			"delta_ticks":    p.delta,
			"tick_time_unit": "1 tick rendered as 1us",
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// EventCount reports how many trace-viewer events have accumulated
// (metadata included).
func (p *Perfetto) EventCount() int { return len(p.evs) }
