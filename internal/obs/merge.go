package obs

import "sort"

// MergeMetrics folds metric snapshots from several runs (or several
// scrapes of the same run family) into one combined list, sorted by
// name — the aggregation behind tbtso-obs. Per kind:
//
//   - counters sum: each run's count is independent work.
//   - gauges take the max: a gauge is a level, not a flow, and across
//     runs "the highest level any run reached" is the only merge that
//     does not invent a value no run ever held.
//   - histograms sum Count/Sum and matching buckets, widen Min/Max, and
//     recompute Mean; quantiles are NOT mergeable from summaries and
//     are dropped (zeroed) rather than fabricated. Runs whose bucket
//     bounds disagree keep Count/Sum/Min/Max but drop the buckets too.
//
// A metric appearing under different kinds in different inputs keeps
// the first kind seen and ignores later conflicting entries (counted
// nowhere — the caller can diff input names against output names).
func MergeMetrics(snapshots ...[]Metric) []Metric {
	byName := make(map[string]*Metric)
	var order []string
	for _, snap := range snapshots {
		for _, m := range snap {
			acc, ok := byName[m.Name]
			if !ok {
				cp := m
				if cp.Kind == "histogram" {
					cp.P50, cp.P90, cp.P99, cp.P999 = 0, 0, 0, 0
					cp.Buckets = append([]BucketCount(nil), m.Buckets...)
				}
				byName[m.Name] = &cp
				order = append(order, m.Name)
				continue
			}
			if acc.Kind != m.Kind {
				continue
			}
			switch m.Kind {
			case "counter":
				acc.Value += m.Value
			case "gauge":
				if m.Value > acc.Value {
					acc.Value = m.Value
				}
			case "histogram":
				mergeHistogram(acc, m)
			}
		}
	}
	sort.Strings(order)
	out := make([]Metric, 0, len(order))
	for _, name := range order {
		m := *byName[name]
		if m.Kind == "histogram" && m.Count > 0 {
			m.Mean = float64(m.Sum) / float64(m.Count)
		}
		out = append(out, m)
	}
	return out
}

func mergeHistogram(acc *Metric, m Metric) {
	if m.Count == 0 {
		return
	}
	if acc.Count == 0 {
		acc.Min, acc.Max = m.Min, m.Max
	} else {
		if m.Min < acc.Min {
			acc.Min = m.Min
		}
		if m.Max > acc.Max {
			acc.Max = m.Max
		}
	}
	acc.Count += m.Count
	acc.Sum += m.Sum
	if !sameBounds(acc.Buckets, m.Buckets) {
		acc.Buckets = nil
		return
	}
	for i := range acc.Buckets {
		acc.Buckets[i].Count += m.Buckets[i].Count
	}
}

func sameBounds(a, b []BucketCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Bound != b[i].Bound {
			return false
		}
	}
	return true
}
