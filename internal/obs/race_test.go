package obs

import (
	"sync"
	"testing"

	"tbtso/internal/tso"
)

// TestRegistryConcurrentStress hammers one registry from many
// goroutines doing get-or-create, Inc/Add/Set/Observe, and concurrent
// Snapshot/WriteText readers. It asserts the final counts (nothing
// lost) and, under -race, that the whole surface is data-race free —
// the live ops endpoint snapshots the registry while machine sinks are
// still writing into it, so this interleaving is the production one.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Get-or-create raced across goroutines on shared names.
				r.Counter("stress.count").Inc()
				r.Counter("stress.count").Add(1)
				r.Gauge("stress.gauge").Add(1)
				r.Histogram("stress.hist", ExpBuckets(1, 2, 10)).Observe(int64(i % 100))
				if i%64 == 0 {
					r.Gauge("stress.gauge").Set(int64(i))
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots and lookups while writes are in flight.
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, m := range r.Snapshot() {
					_ = m.Name
				}
				r.LookupCounter("stress.count")
				r.LookupHistogram("stress.hist")
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("stress.count").Load(); got != writers*iters*2 {
		t.Fatalf("counter = %d, want %d", got, writers*iters*2)
	}
	if got := r.Histogram("stress.hist", nil).Count(); got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
}

// TestRingSinkWraparoundProperty is the wraparound property test: for
// a grid of (capacity, total) pairs straddling the next%cap boundary,
// Events() must return exactly the last min(total, cap) emitted events
// in emission order, and Total/Dropped must account for the rest.
func TestRingSinkWraparoundProperty(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 7, 16, 64} {
		for _, total := range []int{0, 1, capacity - 1, capacity, capacity + 1, 2 * capacity, 3*capacity + capacity/2 + 1} {
			if total < 0 {
				continue
			}
			ring := NewRingSink(capacity)
			all := make([]tso.Event, 0, total)
			for i := 0; i < total; i++ {
				e := tso.Event{
					Tick:   uint64(i),
					Thread: i % 3,
					Kind:   tso.EvStore,
					Addr:   tso.Addr(i % 8),
					Val:    tso.Word(i * 7),
				}
				ring.Emit(e)
				all = append(all, e)
			}
			if got := ring.Total(); got != uint64(total) {
				t.Fatalf("cap=%d total=%d: Total() = %d", capacity, total, got)
			}
			retain := total
			if retain > capacity {
				retain = capacity
			}
			if got := ring.Dropped(); got != uint64(total-retain) {
				t.Fatalf("cap=%d total=%d: Dropped() = %d, want %d", capacity, total, got, total-retain)
			}
			got := ring.Events()
			if len(got) != retain {
				t.Fatalf("cap=%d total=%d: Events() len = %d, want %d", capacity, total, len(got), retain)
			}
			want := all[total-retain:]
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cap=%d total=%d: Events()[%d] = %+v, want %+v (ordering broken across wrap boundary)",
						capacity, total, i, got[i], want[i])
				}
			}
		}
	}
}
