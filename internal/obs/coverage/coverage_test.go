package coverage

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// sample builds a snapshot from a deterministic observation script so
// tests can replay the same observations in different groupings.
func sample(seeds []int) *Snapshot {
	var s Snapshot
	for _, i := range seeds {
		s.ObserveProgram(2, 4+i%3, map[string]uint64{"store": uint64(2 + i%2), "load": 2})
		s.ObserveOutcomeSet(2, 4+i%3, 1+i%5)
		s.ObserveExploration(100+i, 250+i, 10, 3, 1)
		if i%4 == 0 {
			s.ObserveTruncated()
		}
		for _, pol := range []string{"eager", "random"} {
			for idx := 0; idx < 2; idx++ {
				s.ObserveRun(i%2, pol, idx)
			}
		}
		s.ObserveDrain("delta", uint64(5+i))
		s.ObserveDrain("final", 2)
	}
	return &s
}

func TestMergeOrderIndependent(t *testing.T) {
	all := sample([]int{0, 1, 2, 3, 4, 5, 6, 7})

	// The same observations split into per-"worker" snapshots and
	// merged in a different grouping must produce an identical document.
	var merged Snapshot
	merged.Merge(sample([]int{0, 1, 2}))
	merged.Merge(sample([]int{3}))
	merged.Merge(sample([]int{4, 5, 6, 7}))

	if !reflect.DeepEqual(all, &merged) {
		t.Errorf("merged snapshot differs from the all-at-once snapshot:\n got %+v\nwant %+v", &merged, all)
	}

	aj, err := json.Marshal(all)
	if err != nil {
		t.Fatal(err)
	}
	mj, err := json.Marshal(&merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, mj) {
		t.Errorf("merged JSON differs:\n got %s\nwant %s", mj, aj)
	}
}

func TestJSONRoundTripByteIdentical(t *testing.T) {
	s := sample([]int{2, 9, 11})
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.MarshalIndent(&back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Errorf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", blob, blob2)
	}
}

func TestDerivedStats(t *testing.T) {
	var s Snapshot
	// Four outcome sets for shape 2x4: cardinalities 1, 1, 2, 8.
	s.ObserveProgram(2, 4, nil)
	for _, c := range []int{1, 1, 2, 8} {
		s.ObserveOutcomeSet(2, 4, c)
	}
	sh := s.Shapes[ShapeKey(2, 4)]
	if sh.OutcomeSets != 4 || sh.CardMin != 1 || sh.CardMax != 8 || sh.CardSum != 12 {
		t.Fatalf("shape stats: %+v", sh)
	}
	if got := sh.MeanCard(); got != 3 {
		t.Errorf("MeanCard = %v, want 3", got)
	}
	// Buckets hit: <=1 twice, <=2 once, <=8 once → p = {1/2, 1/4, 1/4},
	// H = 1.5 bits.
	if got := sh.CardEntropy(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("CardEntropy = %v, want 1.5", got)
	}

	// The wire form carries the derived fields.
	blob, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	shapes := doc["shapes"].(map[string]any)
	view := shapes["2x4"].(map[string]any)
	if view["entropy_bits"].(float64) != 1.5 || view["mean_card"].(float64) != 3 {
		t.Errorf("wire shape view lacks derived stats: %v", view)
	}
}

func TestCellAndDrainAccumulation(t *testing.T) {
	var s Snapshot
	s.ObserveRun(1, "eager", 0)
	s.ObserveRun(1, "eager", 0)
	s.ObserveRun(0, "random", 2)
	if s.Runs != 3 {
		t.Errorf("Runs = %d, want 3", s.Runs)
	}
	if got := s.Cells[CellKey(1, "eager", 0)]; got != 2 {
		t.Errorf("cell count = %d, want 2", got)
	}
	if len(s.Cells) != 2 {
		t.Errorf("distinct cells = %d, want 2", len(s.Cells))
	}
	s.ObserveDrain("delta", 0) // zero counts must not create keys
	if _, ok := s.DrainMix["delta"]; ok {
		t.Error("zero drain observation created a DrainMix key")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := sample([]int{1})
	c := s.Clone()
	s.ObserveRun(7, "adversarial", 0)
	s.ObserveProgram(3, 9, map[string]uint64{"fence": 1})
	if c.Runs == s.Runs || c.Programs == s.Programs {
		t.Error("clone shares counters with the original")
	}
	if _, ok := c.Cells[CellKey(7, "adversarial", 0)]; ok {
		t.Error("clone shares the cell map")
	}
}

func TestEmpty(t *testing.T) {
	var s Snapshot
	if !s.Empty() {
		t.Error("zero snapshot not Empty")
	}
	s.ObserveTruncated()
	if s.Empty() {
		t.Error("snapshot with a truncated exploration reports Empty")
	}
	var nilSnap *Snapshot
	if !nilSnap.Empty() {
		t.Error("nil snapshot not Empty")
	}
}
