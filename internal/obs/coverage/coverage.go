// Package coverage measures how much of the Δ-bounded behavior space a
// fuzz/mc campaign actually exercised. A Snapshot is a cheap, integer-
// only accumulator a single goroutine fills per program (Observe*
// methods are plain counter bumps — no locks, no atomics), and
// snapshots merge deterministically: every field is a sum, min, max, or
// set union, so folding per-program snapshots in seed order yields the
// same document for every worker count and across a checkpoint/resume
// split. Derived statistics (means, entropy) are computed at render
// time from the merged integers, never stored, so merging stays exact.
//
// The taxonomy (see docs/OBSERVABILITY.md, "Coverage"):
//
//   - OpMix: generated-op counts by kind — is the generator actually
//     exercising the vocabulary?
//   - Shapes: programs by "threads x total-ops" shape, with the
//     outcome-set cardinality distribution per shape (cardinality
//     entropy says whether a shape's explorations are degenerate).
//   - Cells: machine runs by (sweep Δ, drain policy, machine-seed
//     index) — the swept grid. A truncated exploration contributes no
//     cells, so cells measure *checked* coverage, not attempted.
//   - DrainMix: machine commits by drain cause, from the sampled runs'
//     tso.Stats — which drain mechanisms the campaign actually hit.
//   - MC: checker exploration totals, including how often each
//     reduction (POR, terminal collapse, dedup) fired.
package coverage

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Kind is the artifact "kind" field of a standalone coverage document,
// following the repo's self-identifying-JSON convention.
const Kind = "coverage"

// cardBuckets are the upper bounds of the outcome-set cardinality
// histogram per program shape: bucket i counts outcome sets with
// cardinality <= cardBuckets[i] (and > cardBuckets[i-1]); one overflow
// bucket counts the rest. Fixed so merged histograms are comparable
// across runs.
var cardBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128}

// NumCardBuckets is the length of ShapeStats.CardHist (the fixed
// cardinality buckets plus overflow).
const NumCardBuckets = 9

// ShapeStats is the per-program-shape coverage: how many programs had
// this shape and the distribution of checker outcome-set cardinalities
// observed at the sweep Δs. All fields are mergeable integers.
type ShapeStats struct {
	// Programs is how many generated programs had this shape.
	Programs uint64 `json:"programs"`
	// OutcomeSets is how many completed explorations contributed a
	// cardinality observation (one per (program, sweep Δ) that was
	// neither truncated nor errored).
	OutcomeSets uint64 `json:"outcome_sets"`
	// CardSum is the sum of observed cardinalities (mean = CardSum /
	// OutcomeSets, computed at render time).
	CardSum uint64 `json:"card_sum"`
	// CardMin/CardMax bound the observed cardinalities (0 = none yet;
	// a real cardinality is always >= 1).
	CardMin uint64 `json:"card_min"`
	CardMax uint64 `json:"card_max"`
	// CardHist is the cardinality histogram over the fixed buckets
	// {<=1, <=2, <=4, ... <=128, overflow}.
	CardHist [NumCardBuckets]uint64 `json:"card_hist"`
}

func (s *ShapeStats) observe(card uint64) {
	s.OutcomeSets++
	s.CardSum += card
	if s.CardMin == 0 || card < s.CardMin {
		s.CardMin = card
	}
	if card > s.CardMax {
		s.CardMax = card
	}
	i := 0
	for i < len(cardBuckets) && card > cardBuckets[i] {
		i++
	}
	s.CardHist[i]++
}

func (s *ShapeStats) merge(o *ShapeStats) {
	s.Programs += o.Programs
	s.OutcomeSets += o.OutcomeSets
	s.CardSum += o.CardSum
	if o.CardMin != 0 && (s.CardMin == 0 || o.CardMin < s.CardMin) {
		s.CardMin = o.CardMin
	}
	if o.CardMax > s.CardMax {
		s.CardMax = o.CardMax
	}
	for i := range s.CardHist {
		s.CardHist[i] += o.CardHist[i]
	}
}

// MeanCard returns the mean outcome-set cardinality (0 when empty).
func (s *ShapeStats) MeanCard() float64 {
	if s.OutcomeSets == 0 {
		return 0
	}
	return float64(s.CardSum) / float64(s.OutcomeSets)
}

// CardEntropy returns the Shannon entropy in bits of the cardinality
// bucket distribution — 0 means every exploration of this shape landed
// in one bucket (degenerate coverage), log2(9) ≈ 3.17 is the maximum.
// Derived from the merged integers, never stored.
func (s *ShapeStats) CardEntropy() float64 {
	if s.OutcomeSets == 0 {
		return 0
	}
	var h float64
	for _, c := range s.CardHist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(s.OutcomeSets)
		h -= p * math.Log2(p)
	}
	return h
}

// MCStats is the checker-side coverage: exploration totals and how
// often each reduction fired.
type MCStats struct {
	// Explorations that completed within the state budget.
	Explorations uint64 `json:"explorations"`
	// Truncated explorations (hit MaxStates; contributed nothing else).
	Truncated uint64 `json:"truncated"`
	// Totals across completed explorations.
	States            uint64 `json:"states"`
	Transitions       uint64 `json:"transitions"`
	DedupHits         uint64 `json:"dedup_hits"`
	PorPrunes         uint64 `json:"por_prunes"`
	TerminalCollapses uint64 `json:"terminal_collapses"`
}

func (m *MCStats) merge(o MCStats) {
	m.Explorations += o.Explorations
	m.Truncated += o.Truncated
	m.States += o.States
	m.Transitions += o.Transitions
	m.DedupHits += o.DedupHits
	m.PorPrunes += o.PorPrunes
	m.TerminalCollapses += o.TerminalCollapses
}

// Snapshot is the mergeable coverage document. The zero value is ready
// to use; maps allocate on first observation. Not safe for concurrent
// use — one goroutine observes, and campaigns publish merged copies at
// report boundaries (Clone).
type Snapshot struct {
	// Programs and Runs mirror the fuzz report totals this snapshot
	// covers (programs checked, machine runs sampled).
	Programs uint64 `json:"programs"`
	Runs     uint64 `json:"runs"`
	// OpMix counts generated ops by kind ("store", "load", ...).
	OpMix map[string]uint64 `json:"op_mix,omitempty"`
	// Shapes maps "THREADSxOPS" (e.g. "2x5") to per-shape stats.
	Shapes map[string]*ShapeStats `json:"shapes,omitempty"`
	// Cells counts machine runs per swept (Δ, policy, machine-seed
	// index) cell, keyed "delta=D policy=P seed=I".
	Cells map[string]uint64 `json:"cells,omitempty"`
	// DrainMix counts machine commits by drain cause name.
	DrainMix map[string]uint64 `json:"drain_mix,omitempty"`
	// MC is the checker exploration coverage.
	MC MCStats `json:"mc"`
}

// CellKey renders the canonical Cells key for a swept cell. seedIdx is
// the machine-seed index within the sweep (0..MachSeeds-1), not the
// derived absolute seed, so cells are comparable across programs.
func CellKey(delta int, policy string, seedIdx int) string {
	return fmt.Sprintf("delta=%d policy=%s seed=%d", delta, policy, seedIdx)
}

// ShapeKey renders the canonical Shapes key.
func ShapeKey(threads, totalOps int) string {
	return fmt.Sprintf("%dx%d", threads, totalOps)
}

// ObserveProgram records one checked program: its shape and op mix.
// ops maps op-kind names to counts within the program.
func (s *Snapshot) ObserveProgram(threads, totalOps int, ops map[string]uint64) {
	s.Programs++
	for k, n := range ops {
		if n == 0 {
			continue
		}
		if s.OpMix == nil {
			s.OpMix = make(map[string]uint64)
		}
		s.OpMix[k] += n
	}
	s.shape(threads, totalOps).Programs++
}

func (s *Snapshot) shape(threads, totalOps int) *ShapeStats {
	if s.Shapes == nil {
		s.Shapes = make(map[string]*ShapeStats)
	}
	key := ShapeKey(threads, totalOps)
	sh := s.Shapes[key]
	if sh == nil {
		sh = &ShapeStats{}
		s.Shapes[key] = sh
	}
	return sh
}

// ObserveOutcomeSet records the cardinality of one completed
// exploration's outcome set for a program of the given shape.
func (s *Snapshot) ObserveOutcomeSet(threads, totalOps int, cardinality int) {
	s.shape(threads, totalOps).observe(uint64(cardinality))
}

// ObserveRun records one sampled machine run in its swept cell.
func (s *Snapshot) ObserveRun(delta int, policy string, seedIdx int) {
	s.Runs++
	if s.Cells == nil {
		s.Cells = make(map[string]uint64)
	}
	s.Cells[CellKey(delta, policy, seedIdx)]++
}

// ObserveDrain records n machine commits under the named drain cause.
func (s *Snapshot) ObserveDrain(cause string, n uint64) {
	if n == 0 {
		return
	}
	if s.DrainMix == nil {
		s.DrainMix = make(map[string]uint64)
	}
	s.DrainMix[cause] += n
}

// ObserveExploration records one completed checker exploration's
// totals.
func (s *Snapshot) ObserveExploration(states, transitions, dedupHits, porPrunes, terminalCollapses int) {
	s.MC.Explorations++
	s.MC.States += uint64(states)
	s.MC.Transitions += uint64(transitions)
	s.MC.DedupHits += uint64(dedupHits)
	s.MC.PorPrunes += uint64(porPrunes)
	s.MC.TerminalCollapses += uint64(terminalCollapses)
}

// ObserveTruncated records one exploration that hit the state budget.
func (s *Snapshot) ObserveTruncated() { s.MC.Truncated++ }

// Merge folds o into s. Merging is commutative and associative on the
// stored integers, so any fold order over the same per-program
// snapshots produces an identical document.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	s.Programs += o.Programs
	s.Runs += o.Runs
	for k, n := range o.OpMix {
		if s.OpMix == nil {
			s.OpMix = make(map[string]uint64)
		}
		s.OpMix[k] += n
	}
	for k, sh := range o.Shapes {
		if s.Shapes == nil {
			s.Shapes = make(map[string]*ShapeStats)
		}
		if mine := s.Shapes[k]; mine != nil {
			mine.merge(sh)
		} else {
			cp := *sh
			s.Shapes[k] = &cp
		}
	}
	for k, n := range o.Cells {
		if s.Cells == nil {
			s.Cells = make(map[string]uint64)
		}
		s.Cells[k] += n
	}
	for k, n := range o.DrainMix {
		if s.DrainMix == nil {
			s.DrainMix = make(map[string]uint64)
		}
		s.DrainMix[k] += n
	}
	s.MC.merge(o.MC)
}

// Clone returns a deep copy (for publishing a stable view while the
// original keeps accumulating).
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	var out Snapshot
	out.Merge(s)
	return &out
}

// Empty reports whether nothing has been observed.
func (s *Snapshot) Empty() bool {
	return s == nil || (s.Programs == 0 && s.Runs == 0 && s.MC.Explorations == 0 && s.MC.Truncated == 0)
}

// shapeView is ShapeStats plus the render-time derived statistics; the
// wire form of a shape inside MarshalJSON output.
type shapeView struct {
	ShapeStats
	MeanCard    float64 `json:"mean_card"`
	EntropyBits float64 `json:"entropy_bits"`
}

// snapshotJSON is the wire form: Snapshot with derived per-shape stats
// and a distinct-cell count. Encoding/json marshals string-keyed maps
// in sorted key order, so the rendering is deterministic and two equal
// snapshots marshal byte-identically.
type snapshotJSON struct {
	Kind          string               `json:"kind"`
	Programs      uint64               `json:"programs"`
	Runs          uint64               `json:"runs"`
	DistinctCells int                  `json:"distinct_cells"`
	OpMix         map[string]uint64    `json:"op_mix,omitempty"`
	Shapes        map[string]shapeView `json:"shapes,omitempty"`
	Cells         map[string]uint64    `json:"cells,omitempty"`
	DrainMix      map[string]uint64    `json:"drain_mix,omitempty"`
	MC            MCStats              `json:"mc"`
}

// MarshalJSON renders the snapshot with the derived statistics
// (distinct cells, per-shape mean cardinality and entropy) computed
// from the merged integers.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	doc := snapshotJSON{
		Kind:          Kind,
		Programs:      s.Programs,
		Runs:          s.Runs,
		DistinctCells: len(s.Cells),
		OpMix:         s.OpMix,
		Cells:         s.Cells,
		DrainMix:      s.DrainMix,
		MC:            s.MC,
	}
	if len(s.Shapes) > 0 {
		doc.Shapes = make(map[string]shapeView, len(s.Shapes))
		for k, sh := range s.Shapes {
			doc.Shapes[k] = shapeView{ShapeStats: *sh, MeanCard: sh.MeanCard(), EntropyBits: sh.CardEntropy()}
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON reads the counts back; the derived fields are ignored
// and recomputed on the next marshal, so a decode/encode round trip of
// a merged snapshot is byte-identical.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var doc snapshotJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	*s = Snapshot{
		Programs: doc.Programs,
		Runs:     doc.Runs,
		OpMix:    doc.OpMix,
		Cells:    doc.Cells,
		DrainMix: doc.DrainMix,
		MC:       doc.MC,
	}
	if len(doc.Shapes) > 0 {
		s.Shapes = make(map[string]*ShapeStats, len(doc.Shapes))
		for k, sv := range doc.Shapes {
			sh := sv.ShapeStats
			s.Shapes[k] = &sh
		}
	}
	return nil
}

// SortedKeys returns m's keys sorted — the iteration order every
// deterministic renderer of a coverage map must use.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
