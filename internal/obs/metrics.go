// Package obs is the observability layer: a lightweight metrics
// registry (counters, gauges, fixed-bucket histograms — stdlib only)
// and streaming event sinks for the TBTSO abstract machine, including
// a ring buffer for long runs, a registry-feeding metrics sink, and a
// Chrome trace-event / Perfetto JSON exporter.
//
// The registry is the measurement substrate the paper's claims hang
// on: Δ-bounded commit latency, drain-cause breakdowns, HP reclaim
// counts, FFBL revocation costs and quiescence waits all land here as
// named metrics, render as text or JSON, and feed the bench harness's
// machine-readable figure series. See docs/OBSERVABILITY.md.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//tbtso:fencefree
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//tbtso:fencefree
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Publisher tracks the high-water mark of a monotonically growing
// source value so repeated publishes into a shared Counter add only
// the delta since the previous publish. Distinct source instances
// (each with its own Publisher) therefore accumulate into one
// registry counter, while re-publishing the same source is idempotent.
// Not safe for concurrent use; publish from one goroutine.
type Publisher struct {
	last uint64
}

// Publish raises c by the growth of total since the last call.
func (p *Publisher) Publish(c *Counter, total uint64) {
	if total > p.last {
		c.Add(total - p.last)
		p.last = total
	}
}

// Gauge is an instantaneous atomic value that can go up and down.
// Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//tbtso:fencefree
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (which may be negative).
//
//tbtso:fencefree
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of int64 samples. Bucket i
// counts samples v with v <= bounds[i] (and bounds[i-1] < v); one
// overflow bucket counts everything above the last bound. All methods
// are safe for concurrent use; Observe is lock- and allocation-free.
type Histogram struct {
	bounds []int64 // ascending upper bounds, fixed at creation
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds (see LinearBuckets, ExpBuckets). It panics on an empty
// or unsorted bounds slice.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one sample.
//
//tbtso:fencefree
func (h *Histogram) Observe(v int64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// upper edge of the bucket containing it, or Max for the overflow
// bucket.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.Max()
		}
	}
	return h.Max()
}

// Buckets returns (bound, count) pairs including the overflow bucket,
// whose bound is reported as math.MaxInt64.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.counts))
	for i := range h.counts {
		bound := int64(math.MaxInt64)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out = append(out, BucketCount{Bound: bound, Count: h.counts[i].Load()})
	}
	return out
}

// BucketCount is one histogram bucket: samples <= Bound (cumulative
// from the previous bound).
type BucketCount struct {
	Bound int64  `json:"bound"`
	Count uint64 `json:"count"`
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width int64, n int) []int64 {
	if n <= 0 || width <= 0 {
		panic("obs: LinearBuckets needs n > 0 and width > 0")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending bounds start, start*factor, ... —
// rounded to integers, deduplicated upward so they stay strictly
// ascending.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n > 0, start > 0, factor > 1")
	}
	out := make([]int64, n)
	v := float64(start)
	prev := int64(0)
	for i := range out {
		b := int64(math.Round(v))
		if b <= prev {
			b = prev + 1
		}
		out[i] = b
		prev = b
		v *= factor
	}
	return out
}

// Registry is a named collection of metrics. Metric accessors
// get-or-create: the first caller fixes the metric's type (and a
// histogram's buckets); subsequent calls return the same instance.
// Mixing types under one name panics — it is a programming error.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func (r *Registry) checkName(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: metric %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: metric %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram", name))
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds if needed; an existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// LookupCounter returns the named counter without creating it. Readers
// that must not perturb the registry (monitors cross-checking what an
// instrumented component published) use these instead of the
// get-or-create accessors.
func (r *Registry) LookupCounter(name string) (*Counter, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	return c, ok
}

// LookupGauge returns the named gauge without creating it.
func (r *Registry) LookupGauge(name string) (*Gauge, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	return g, ok
}

// LookupHistogram returns the named histogram without creating it.
func (r *Registry) LookupHistogram(name string) (*Histogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	return h, ok
}

// Metric is one snapshotted registry entry.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge" or "histogram"

	// Value is the counter or gauge value.
	Value int64 `json:"value,omitempty"`

	// Histogram summary (Kind == "histogram" only).
	Count   uint64        `json:"count,omitempty"`
	Sum     int64         `json:"sum,omitempty"`
	Mean    float64       `json:"mean,omitempty"`
	Min     int64         `json:"min,omitempty"`
	Max     int64         `json:"max,omitempty"`
	P50     int64         `json:"p50,omitempty"`
	P90     int64         `json:"p90,omitempty"`
	P99     int64         `json:"p99,omitempty"`
	P999    int64         `json:"p999,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns every metric, sorted by name.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: int64(c.Load())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Load()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{
			Name: name, Kind: "histogram",
			Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99), P999: h.Quantile(0.999),
			Buckets: h.Buckets(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders a human-readable metrics summary, one line per
// metric, sorted by name.
func (r *Registry) WriteText(w io.Writer) {
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "histogram":
			fmt.Fprintf(w, "%-44s n=%d mean=%.1f min=%d p50=%d p90=%d p99=%d p99.9=%d max=%d\n",
				m.Name, m.Count, m.Mean, m.Min, m.P50, m.P90, m.P99, m.P999, m.Max)
		default:
			fmt.Fprintf(w, "%-44s %d\n", m.Name, m.Value)
		}
	}
}

// WriteJSON renders the snapshot as a JSON array of metrics.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
