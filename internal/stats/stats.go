// Package stats provides the measurement utilities the benchmark
// harness uses: log-bucketed latency histograms with CDF/percentile
// extraction, padded throughput counters, and small helpers for
// aggregating repeated runs the way the paper does (medians of N runs).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// Histogram is a log2-bucketed histogram of non-negative int64 samples
// (typically nanoseconds). Buckets double: [0,1), [1,2), [2,4), ...
// It is not safe for concurrent use; give each worker its own and Merge.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     int64
	max     int64
	min     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	b := bucketOf(v)
	if b > 63 {
		b = 63
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if other.count > 0 && other.min < h.min {
		h.min = other.min
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1),
// using each bucket's upper edge.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			if i == 0 {
				return 1
			}
			return int64(1) << uint(i) // upper edge of bucket i
		}
	}
	return h.max
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    int64   // bucket upper edge
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the nonempty cumulative distribution points.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var out []CDFPoint
	var seen uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		seen += c
		edge := int64(1)
		if i > 0 {
			edge = int64(1) << uint(i)
		}
		out = append(out, CDFPoint{Value: edge, Fraction: float64(seen) / float64(h.count)})
	}
	return out
}

// String renders count/mean/p50/p99/p999/max on one line.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p99=%d p99.9=%d max=%d",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.max)
}

// Counter is a cache-line padded atomic counter for per-worker
// throughput counting without false sharing.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Counters is a per-worker counter bank.
type Counters struct {
	cs []Counter
}

// NewCounters returns n padded counters.
func NewCounters(n int) *Counters { return &Counters{cs: make([]Counter, n)} }

// Inc increments worker i's counter.
func (c *Counters) Inc(i int) { c.cs[i].Inc() }

// Total sums all counters.
func (c *Counters) Total() uint64 {
	var t uint64
	for i := range c.cs {
		t += c.cs[i].v.Load()
	}
	return t
}

// Median returns the median of xs (0 if empty). It does not modify xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// FormatRate renders ops/sec human-readably (e.g. "12.3M ops/s").
func FormatRate(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e9:
		return fmt.Sprintf("%.2fG ops/s", opsPerSec/1e9)
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.2fM ops/s", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.2fK ops/s", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.1f ops/s", opsPerSec)
	}
}

// FormatBytes renders a byte count human-readably.
func FormatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Sparkline renders values as a tiny ASCII chart (for harness output).
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	max := vals[0]
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(vals))
	}
	var b strings.Builder
	for _, v := range vals {
		i := int(v / max * float64(len(glyphs)-1))
		if i < 0 {
			i = 0
		}
		b.WriteRune(glyphs[i])
	}
	return b.String()
}
