package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 4, 8, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 || h.Min() != 1 {
		t.Fatalf("max=%d min=%d", h.Max(), h.Min())
	}
	if got := h.Mean(); math.Abs(got-1115.0/6) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int64(v))
		}
		prev := int64(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileBoundsSamples(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	p50 := h.Quantile(0.5)
	if p50 < 500 || p50 > 1024 {
		t.Fatalf("p50 = %d, want within (500,1024]", p50)
	}
}

func TestCDFMonotone(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 500; i++ {
		h.Add(i * 7 % 300)
	}
	pts := h.CDF()
	if len(pts) == 0 {
		t.Fatal("empty CDF")
	}
	prevF := 0.0
	prevV := int64(-1)
	for _, p := range pts {
		if p.Fraction < prevF || p.Value <= prevV {
			t.Fatalf("CDF not monotone: %+v", pts)
		}
		prevF, prevV = p.Fraction, p.Value
	}
	if last := pts[len(pts)-1].Fraction; math.Abs(last-1) > 1e-9 {
		t.Fatalf("CDF does not reach 1: %v", last)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(5)
	a.Add(10)
	b.Add(100)
	a.Merge(b)
	if a.Count() != 3 || a.Max() != 100 || a.Min() != 5 {
		t.Fatalf("merge wrong: %s", a)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters(4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 10000; k++ {
				c.Inc(i)
			}
		}(i)
	}
	wg.Wait()
	if c.Total() != 40000 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median = %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("median(nil) = %v", m)
	}
	// Median must not mutate its input.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestFormatters(t *testing.T) {
	if s := FormatRate(2.5e6); !strings.Contains(s, "M") {
		t.Fatalf("rate = %q", s)
	}
	if s := FormatBytes(3 << 20); !strings.Contains(s, "MiB") {
		t.Fatalf("bytes = %q", s)
	}
	if s := Sparkline([]float64{0, 1, 2, 3}); len([]rune(s)) != 4 {
		t.Fatalf("sparkline = %q", s)
	}
}

func TestEmptyHistogramEdges(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.CDF() != nil {
		t.Fatal("empty histogram must have nil CDF")
	}
	h.Add(-5) // negative samples land in bucket 0
	if h.Count() != 1 || h.Quantile(0.99) != 1 {
		t.Fatalf("negative sample handling: %s", h)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Add(100)
	s := h.String()
	for _, want := range []string{"n=1", "p50=", "max=100"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestCounterAddLoad(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 6 {
		t.Fatalf("counter = %d", c.Load())
	}
}

func TestFormatRateRanges(t *testing.T) {
	cases := map[float64]string{
		5:   "ops/s",
		5e3: "K ops/s",
		5e6: "M ops/s",
		5e9: "G ops/s",
	}
	for v, want := range cases {
		if got := FormatRate(v); !strings.Contains(got, want) {
			t.Fatalf("FormatRate(%g) = %q", v, got)
		}
	}
}

func TestFormatBytesRanges(t *testing.T) {
	cases := map[uint64]string{
		5:       "B",
		5 << 10: "KiB",
		5 << 20: "MiB",
		5 << 30: "GiB",
	}
	for v, want := range cases {
		if got := FormatBytes(v); !strings.Contains(got, want) {
			t.Fatalf("FormatBytes(%d) = %q", v, got)
		}
	}
}

func TestSparklineEdges(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("nil sparkline")
	}
	if s := Sparkline([]float64{0, 0}); len([]rune(s)) != 2 {
		t.Fatalf("all-zero sparkline: %q", s)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	b.Add(3)
	a.Merge(b) // min must come across even though a was empty
	if a.Min() != 3 || a.Count() != 1 {
		t.Fatalf("merge into empty: min=%d n=%d", a.Min(), a.Count())
	}
}
