// Package lock implements the biased locks of §5 natively, plus the
// baselines the evaluation compares against (§7.2): the standard
// "pthread" lock (Go's sync.Mutex playing that role), a TTAS spinlock
// used as the internal lock L, the basic fenced biased lock (Figure 3
// top), the fence-free biased lock FFBL (Figure 3 bottom) with and
// without echoing, and a safe-point-based biased lock in the style of
// Russell and Detlefs [33].
//
// A BiasedLock distinguishes the designated owner thread (OwnerLock /
// OwnerUnlock) from all other threads (OtherLock / OtherUnlock);
// non-owners serialize on the internal lock L, so any number of them
// may call the Other methods concurrently.
package lock

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tbtso/internal/fence"
)

// BiasedLock is a lock biased toward one designated owner thread.
type BiasedLock interface {
	Name() string
	OwnerLock()
	OwnerUnlock()
	OtherLock()
	OtherUnlock()
}

// Pthread adapts sync.Mutex to the BiasedLock interface: both paths are
// the same standard lock, the evaluation's normalization baseline.
type Pthread struct {
	mu sync.Mutex
}

// NewPthread returns the standard-lock baseline.
func NewPthread() *Pthread { return &Pthread{} }

// Name implements BiasedLock.
func (p *Pthread) Name() string { return "pthread" }

// OwnerLock implements BiasedLock.
func (p *Pthread) OwnerLock() { p.mu.Lock() }

// OwnerUnlock implements BiasedLock.
func (p *Pthread) OwnerUnlock() { p.mu.Unlock() }

// OtherLock implements BiasedLock.
func (p *Pthread) OtherLock() { p.mu.Lock() }

// OtherUnlock implements BiasedLock.
func (p *Pthread) OtherUnlock() { p.mu.Unlock() }

// TTAS is a test-and-test-and-set spinlock with Gosched backoff, used
// as the internal lock L of the biased locks.
type TTAS struct {
	v atomic.Uint32
	_ [fence.CacheLine - 4]byte
}

// TryLock attempts one acquisition.
func (t *TTAS) TryLock() bool {
	return t.v.Load() == 0 && t.v.CompareAndSwap(0, 1)
}

// Lock spins until acquired.
func (t *TTAS) Lock() {
	for spins := 0; ; spins++ {
		if t.TryLock() {
			return
		}
		if spins%16 == 15 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the lock.
func (t *TTAS) Unlock() {
	t.v.Store(0)
}

// paddedU64 is an atomic word on its own cache line (the flags of the
// biased locks live on separate lines, as the paper's C code arranges).
type paddedU64 struct {
	v atomic.Uint64
	_ [fence.CacheLine - 8]byte
}

// Flag packing for the FFBL (Figure 3e): 63-bit version, flag in bit 0.
func packFlag(v, f uint64) uint64 { return v<<1 | f&1 }

func unpackFlag(w uint64) (v, f uint64) { return w >> 1, w & 1 }

// BaselineBiased is the basic (fenced) biased lock of Figure 3 top: the
// owner's acquisition is a store, an explicit full fence, and a load —
// no atomic read-modify-write — while non-owners serialize on L.
type BaselineBiased struct {
	flag0 paddedU64
	flag1 paddedU64
	l     TTAS
	fen   fence.Line
	fen1  fence.Line
}

// NewBaselineBiased returns the fenced baseline.
func NewBaselineBiased() *BaselineBiased { return &BaselineBiased{} }

// Name implements BiasedLock.
func (b *BaselineBiased) Name() string { return "biased-fenced" }

// OwnerLock implements BiasedLock (Figure 3b).
//
//tbtso:requires-fence
func (b *BaselineBiased) OwnerLock() {
	b.flag0.v.Store(1)
	b.fen.Full()
	if b.flag1.v.Load() != 0 {
		b.flag0.v.Store(0)
		b.l.Lock()
	}
}

// OwnerUnlock implements BiasedLock (Figure 3c).
func (b *BaselineBiased) OwnerUnlock() {
	if b.flag0.v.Load() != 0 {
		b.flag0.v.Store(0)
	} else {
		b.l.Unlock()
	}
}

// OtherLock implements BiasedLock (Figure 3d).
//
//tbtso:requires-fence
func (b *BaselineBiased) OtherLock() {
	b.l.Lock()
	b.flag1.v.Store(1)
	b.fen1.Full()
	for spins := 0; b.flag0.v.Load() != 0; spins++ {
		if spins%16 == 15 {
			runtime.Gosched()
		}
	}
}

// OtherUnlock implements BiasedLock (Figure 3d).
func (b *BaselineBiased) OtherUnlock() {
	b.flag1.v.Store(0)
	b.l.Unlock()
}
