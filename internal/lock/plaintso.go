package lock

// This file is tbtso-verify's planted negative control: the FFBL
// protocol with the visibility wait deleted, i.e. the Figure 3e race
// run on plain TSO. The owner raises flag0 and validates flag1 with no
// fence (as in the real fast path), but the revoker probes flag0
// immediately after its fenced announcement instead of waiting out Δ.
// Under unbounded TSO the owner's raise can hide in its store buffer
// across the revoker's entire announce–probe window, so both sides
// observe the other's flag down and both enter the critical section.
//
// The pair is annotated expect=fail: tbtso-verify must REFUTE it at
// Δ=0 and emit a concrete counterexample (machine witness, Perfetto
// trace, replayable artifact). If the tool ever certifies this pair,
// the extraction or the checker has lost the violation class — exactly
// what a negative control exists to catch. TestPlantedPlainTSO keeps
// the code exercised so it cannot rot.
//
//tbtso:property pair=ffbl-tso expect=fail forbid writer.flag1.v == 0 && reader.flag0.v == 0

// plainTSOOwnerEnter is the owner fast path of the broken variant —
// identical in shape to ownerPublishAndCheck: raise flag0, validate
// flag1, no fence. Returns the raw flag1 word; 0 means "enter".
//
//tbtso:verify pair=ffbl-tso role=writer
//tbtso:fencefree
func (b *FFBL) plainTSOOwnerEnter() uint64 {
	b.flag0.v.Store(packFlag(0, 1)) //tbtso:model val=1
	// no fence — and, fatally, no Δ bound on the other side either.
	return b.flag1.v.Load()
}

// plainTSORevokerProbe is the broken revocation: announce and fence as
// the real slow path does, then probe the owner's flag IMMEDIATELY —
// the otherWaitBound step is missing. Returns the raw flag0 word; 0
// means "revoked, enter".
//
//tbtso:verify pair=ffbl-tso role=reader
//tbtso:requires-fence
func (b *FFBL) plainTSORevokerProbe() uint64 {
	b.flag1.v.Store(packFlag(1, 1)) //tbtso:model val=1
	b.fen1.Full()
	return b.flag0.v.Load()
}
