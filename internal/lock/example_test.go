package lock_test

import (
	"fmt"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/lock"
)

// The fence-free biased lock: the owner's acquisition is a store and a
// load — no fence, no atomic read-modify-write. A non-owner serializes
// on the internal lock and waits out the visibility bound (or the
// owner's echo).
func ExampleNewFFBL() {
	lk := lock.NewFFBL(core.NewFixedDelta(500*time.Microsecond), true)

	// Owner fast path.
	lk.OwnerLock()
	fmt.Println("owner in critical section")
	lk.OwnerUnlock()

	// A non-owner: waits at most ~Δ even if the owner never runs again.
	start := time.Now()
	lk.OtherLock()
	fmt.Println("non-owner acquired, bounded wait:", time.Since(start) < 100*time.Millisecond)
	lk.OtherUnlock()
	// Output:
	// owner in critical section
	// non-owner acquired, bounded wait: true
}
