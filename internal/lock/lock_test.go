package lock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/ostick"
	"tbtso/internal/vclock"
)

// allLocks returns one instance of every lock (cleanup via the returned
// func).
func allLocks(t *testing.T) ([]BiasedLock, func()) {
	t.Helper()
	board := ostick.NewBoard(4, time.Millisecond)
	locks := []BiasedLock{
		NewPthread(),
		NewBaselineBiased(),
		NewFFBL(core.NewFixedDelta(500*time.Microsecond), true),
		NewFFBL(core.NewFixedDelta(500*time.Microsecond), false),
		NewFFBL(core.NewTickBoard(board), true),
		NewSafePointBiased(),
	}
	return locks, board.Stop
}

// exerciseMutualExclusion runs one owner and `others` non-owners, each
// performing iters acquisitions, and fails on any overlap.
func exerciseMutualExclusion(t *testing.T, lk BiasedLock, others, iters int) {
	t.Helper()
	var inCS atomic.Int32
	var violations atomic.Int32
	var shared int // plain; the race detector doubles as a checker
	body := func() {
		if inCS.Add(1) != 1 {
			violations.Add(1)
		}
		shared++
		inCS.Add(-1)
	}
	var wg sync.WaitGroup
	var othersDone atomic.Int32
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			lk.OwnerLock()
			body()
			lk.OwnerUnlock()
		}
		// The safe-point lock needs a cooperative owner for as long as
		// non-owners keep arriving (that is its documented contract);
		// keep servicing safe points until they finish.
		if sp, ok := lk.(*SafePointBiased); ok {
			for othersDone.Load() < int32(others) {
				sp.SafePoint()
				runtime.Gosched()
			}
		}
	}()
	for o := 0; o < others; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer othersDone.Add(1)
			for i := 0; i < iters; i++ {
				lk.OtherLock()
				body()
				lk.OtherUnlock()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%s: %d mutual-exclusion violations", lk.Name(), v)
	}
	if want := (others + 1) * iters; shared != want {
		t.Fatalf("%s: shared = %d, want %d (lost updates)", lk.Name(), shared, want)
	}
}

func TestMutualExclusionAllLocks(t *testing.T) {
	locks, cleanup := allLocks(t)
	defer cleanup()
	for _, lk := range locks {
		lk := lk
		t.Run(lk.Name(), func(t *testing.T) {
			exerciseMutualExclusion(t, lk, 2, 300)
		})
	}
}

func TestMutualExclusionManyNonOwners(t *testing.T) {
	lk := NewFFBL(core.NewFixedDelta(200*time.Microsecond), true)
	exerciseMutualExclusion(t, lk, 6, 200)
}

func TestOwnerOnlyFastPath(t *testing.T) {
	locks, cleanup := allLocks(t)
	defer cleanup()
	for _, lk := range locks {
		for i := 0; i < 10000; i++ {
			lk.OwnerLock()
			lk.OwnerUnlock()
		}
	}
}

func TestFFBLNonOwnerBoundedWaitWithStalledOwner(t *testing.T) {
	// §5: the FFBL non-owner waits at most ~Δ even when the owner is
	// stalled and never cooperates.
	const delta = time.Millisecond
	lk := NewFFBL(core.NewFixedDelta(delta), true)
	lk.OwnerLock()
	lk.OwnerUnlock()
	// Owner now stalls forever (never touches the lock again).
	start := time.Now()
	const acqs = 5
	for i := 0; i < acqs; i++ {
		lk.OtherLock()
		lk.OtherUnlock()
	}
	elapsed := time.Since(start)
	if elapsed > 40*acqs*delta {
		t.Fatalf("non-owner took %v for %d acquisitions with Δ=%v", elapsed, acqs, delta)
	}
}

func TestSafePointBlocksUntilOwnerSafePoint(t *testing.T) {
	// The contrast case: the safe-point lock's non-owner must wait for
	// the stalled owner.
	const stall = 150 * time.Millisecond
	lk := NewSafePointBiased()
	lk.OwnerLock()
	lk.OwnerUnlock()
	ownerWoke := make(chan struct{})
	go func() {
		time.Sleep(stall)
		lk.SafePoint() // owner finally reaches a safe point
		close(ownerWoke)
	}()
	start := time.Now()
	lk.OtherLock()
	elapsed := time.Since(start)
	lk.OtherUnlock()
	<-ownerWoke
	if elapsed < stall/2 {
		t.Fatalf("non-owner acquired in %v — did not wait for the owner's safe point", elapsed)
	}
}

func TestFFBLEchoCutsWait(t *testing.T) {
	// With a large Δ and an actively cycling owner, echoing lets the
	// non-owner in quickly; without echoing it waits the full Δ.
	const delta = 120 * time.Millisecond
	measure := func(echo bool) time.Duration {
		lk := NewFFBL(core.NewFixedDelta(delta), echo)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lk.OwnerLock()
				lk.OwnerUnlock()
			}
		}()
		time.Sleep(2 * time.Millisecond) // let the owner spin up
		start := time.Now()
		lk.OtherLock()
		elapsed := time.Since(start)
		lk.OtherUnlock()
		close(stop)
		wg.Wait()
		return elapsed
	}
	withEcho := measure(true)
	withoutEcho := measure(false)
	if withEcho > delta/2 {
		t.Fatalf("echoing did not cut the wait: %v (Δ=%v)", withEcho, delta)
	}
	if withoutEcho < delta/2 {
		t.Fatalf("no-echo variant waited only %v (Δ=%v)", withoutEcho, delta)
	}
}

func TestTTAS(t *testing.T) {
	var l TTAS
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	var ctr int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5000; k++ {
				l.Lock()
				ctr++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if ctr != 20000 {
		t.Fatalf("ctr = %d", ctr)
	}
}

func TestFlagPackingRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 99, 1 << 40} {
		for _, f := range []uint64{0, 1} {
			gv, gf := unpackFlag(packFlag(v, f))
			if gv != v || gf != f {
				t.Fatalf("pack(%d,%d) round-trips to (%d,%d)", v, f, gv, gf)
			}
		}
	}
	for _, mode := range []uint64{spBiased, spRevoking, spUnbiased} {
		for _, c := range []uint64{0, 1, 1000} {
			gm, gc := spUnpack(spPack(mode, c))
			if gm != mode || gc != c {
				t.Fatalf("spPack(%d,%d) round-trips to (%d,%d)", mode, c, gm, gc)
			}
		}
	}
}

func TestBoundsAreUsable(t *testing.T) {
	// Sanity on the core bounds the locks rely on.
	fd := core.NewFixedDelta(time.Millisecond)
	t0 := vclock.Now()
	if fd.Eligible(t0) {
		t.Fatal("store visible instantly under FixedDelta")
	}
	fd.Wait(t0)
	if !fd.Eligible(t0) {
		t.Fatal("not eligible after Wait")
	}
}

// TestPlantedPlainTSO exercises the planted plain-TSO negative control
// so the functions tbtso-verify certifies-to-fail stay compiled and
// behaviorally pinned. Go atomics are sequentially consistent, so run
// SEQUENTIALLY the broken protocol looks fine — each side sees the
// other's raised flag; the store-buffering overlap only exists under
// TSO, which is exactly what cmd/tbtso-verify's model-checking of the
// extracted pair (certs/ffbl-tso.json) demonstrates.
func TestPlantedPlainTSO(t *testing.T) {
	lk := NewFFBL(core.NewFixedDelta(time.Millisecond), false)
	if w := lk.plainTSOOwnerEnter(); w != 0 {
		t.Fatalf("owner on a fresh lock sees flag1 = %#x, want 0", w)
	}
	if _, f := unpackFlag(lk.flag0.v.Load()); f != 1 {
		t.Fatal("owner enter did not raise flag0")
	}
	if w := lk.plainTSORevokerProbe(); w != packFlag(0, 1) {
		t.Fatalf("revoker probing after the owner entered sees flag0 = %#x, want raised (%#x)", w, packFlag(0, 1))
	}
	if _, f := unpackFlag(lk.flag1.v.Load()); f != 1 {
		t.Fatal("revoker probe did not raise flag1")
	}
}
