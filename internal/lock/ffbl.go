package lock

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"tbtso/internal/core"
	"tbtso/internal/fence"
	"tbtso/internal/obs"
	"tbtso/internal/obs/monitor"
	"tbtso/internal/vclock"
)

// The `ffbl` verification pair (docs/VERIFY.md): mutual exclusion of
// the owner fast path against a revoking non-owner is the flag
// principle — forbidden is the overlap where the owner validated flag1
// down (entered fast) while the revoker probed flag0 down (entered
// after its announce+fence+wait). tbtso-verify extracts the annotated
// helpers below into an mc program and certifies this across a Δ sweep.
//
//tbtso:property pair=ffbl forbid writer.flag1.v == 0 && reader.flag0.v == 0

// FFBL is the fence-free biased lock of Figure 3 (bottom): the owner's
// fast path is one store and one load with no fence and no atomic
// read-modify-write; the non-owner serializes on L, raises a versioned
// flag, fences, and waits out the visibility bound — or, with echoing
// enabled, stops waiting as soon as the owner echoes its version.
//
// The bound is pluggable (core.Bound): a FixedDelta of 0.5 ms gives the
// paper's TBTSO hardware variant, a TickBoard gives the §6.2 adapted
// [4 ms] variant, and the comparison between them is Figure 8's
// FFBL[0.5ms] vs FFBL[4ms].
type FFBL struct {
	flag0 paddedU64 // owner's <version,flag>
	flag1 paddedU64 // non-owners' <version,flag>
	l     TTAS
	fen1  fence.Line
	bound core.Bound
	echo  bool
	name  string

	// Observability counters, updated on the SLOW paths only — the
	// owner's fenceless fast path never touches them. revocations
	// counts owner acquisitions that fell back to the internal lock
	// (the bias was revoked by a concurrent non-owner); transfers
	// counts non-owner acquisitions (each is one bias transfer through
	// L); echoes counts non-owner waits cut short by the owner's echo;
	// fullWaits counts non-owner acquisitions that waited out the
	// whole visibility bound (every transfer is one or the other —
	// the invariant VerifyAccounting checks).
	revocations atomic.Uint64
	transfers   atomic.Uint64
	echoes      atomic.Uint64
	fullWaits   atomic.Uint64

	pub struct{ revocations, transfers, echoes, fullWaits obs.Publisher }
}

// NewFFBL creates a fence-free biased lock over the given bound.
func NewFFBL(bound core.Bound, echo bool) *FFBL {
	name := "FFBL[" + bound.Name() + "]"
	if !echo {
		name += "-noecho"
	}
	return &FFBL{bound: bound, echo: echo, name: name}
}

// Name implements BiasedLock.
func (b *FFBL) Name() string { return b.name }

// ownerPublishAndCheck is the FFBL protocol kernel of the owner's fast
// path (Figure 3f, first two lines): raise flag0 with a plain store,
// then — with no fence in between — read flag1 to validate that no
// non-owner is revoking. This is the store→load pair whose soundness
// rests entirely on the Δ bound; tbtso-verify extracts it as the writer
// side of the `ffbl` pair and certifies the overlap property under
// mc's TBTSO[Δ] sweep (see docs/VERIFY.md).
//
//tbtso:verify pair=ffbl role=writer
//tbtso:fencefree
func (b *FFBL) ownerPublishAndCheck() uint64 {
	b.flag0.v.Store(packFlag(0, 1)) //tbtso:model val=1
	// no fence
	return b.flag1.v.Load()
}

// OwnerLock implements BiasedLock (Figure 3f). The fast path — the
// whole point of the algorithm — is the first two lines: raise flag0,
// look at flag1, and enter. No fence separates them; on TBTSO the Δ
// bound (embodied in the non-owner's wait) makes that safe.
//
//tbtso:fencefree
func (b *FFBL) OwnerLock() {
	if _, f := unpackFlag(b.ownerPublishAndCheck()); f == 0 {
		return // fast path: in the critical section with flag0.f = 1
	}
	b.revocations.Add(1)
	for spins := 0; ; spins++ {
		v1, _ := unpackFlag(b.flag1.v.Load())
		if b.echo {
			b.flag0.v.Store(packFlag(v1, 0)) // lower + echo (lines 59–63)
		} else {
			b.flag0.v.Store(packFlag(0, 0))
		}
		if b.l.TryLock() {
			return // in the critical section holding L, flag0.f = 0
		}
		if spins%8 == 7 {
			runtime.Gosched()
		}
	}
}

// OwnerUnlock implements BiasedLock (Figure 3g).
//
//tbtso:fencefree
func (b *FFBL) OwnerUnlock() {
	if _, f := unpackFlag(b.flag0.v.Load()); f == 1 {
		b.flag0.v.Store(packFlag(0, 0))
	} else {
		b.flag0.v.Store(packFlag(0, 0))
		b.l.Unlock()
	}
}

// otherAnnounce is the revocation announcement (Figure 3h, lines 2–4):
// bump flag1 to a fresh raised version and fence, so the announcement
// is globally visible before the wait begins. Reader step 1 of the
// `ffbl` pair.
//
//tbtso:verify pair=ffbl role=reader step=1
//tbtso:requires-fence
func (b *FFBL) otherAnnounce() uint64 {
	v1, _ := unpackFlag(b.flag1.v.Load())
	myV := v1 + 1
	b.flag1.v.Store(packFlag(myV, 1)) //tbtso:model val=1
	b.fen1.Full()
	return myV
}

// otherWaitBound waits out the visibility bound for time t0: after it
// returns, every store the owner issued before our announcement became
// visible has itself drained — the §3 "wait Δ time units". Reader
// step 2 of the `ffbl` pair; the spin is extracted as a Wait op.
//
//tbtso:verify pair=ffbl role=reader step=2
func (b *FFBL) otherWaitBound(t0 int64) {
	for spins := 0; !b.bound.Eligible(t0); spins++ {
		if spins%16 == 15 {
			runtime.Gosched()
		}
	}
}

// otherProbeOwner reads the owner's flag once and reports whether the
// owner is out of the critical section (flag0.f == 0). Reader step 3
// of the `ffbl` pair: by the time this load runs, the Δ bound
// guarantees the owner's unfenced raise is visible if it happened
// before our announcement landed.
//
//tbtso:verify pair=ffbl role=reader step=3
func (b *FFBL) otherProbeOwner() bool {
	_, f := unpackFlag(b.flag0.v.Load())
	return f == 0
}

// OtherLock implements BiasedLock (Figure 3h).
//
//tbtso:requires-fence
func (b *FFBL) OtherLock() {
	b.l.Lock()
	b.transfers.Add(1)
	myV := b.otherAnnounce()
	t0 := vclock.Now()
	if b.echo {
		echoed := false
		for spins := 0; !b.bound.Eligible(t0); spins++ {
			if v0, _ := unpackFlag(b.flag0.v.Load()); v0 == myV {
				b.echoes.Add(1)
				echoed = true
				break // owner echoed: it is spinning on L, not in the CS
			}
			if spins%16 == 15 {
				runtime.Gosched()
			}
		}
		if !echoed {
			b.fullWaits.Add(1)
		}
	} else {
		b.otherWaitBound(t0)
		b.fullWaits.Add(1)
	}
	for spins := 0; ; spins++ {
		if b.otherProbeOwner() {
			return
		}
		if spins%16 == 15 {
			runtime.Gosched()
		}
	}
}

// OtherUnlock implements BiasedLock (Figure 3h's unlock).
//
//tbtso:fencefree
func (b *FFBL) OtherUnlock() {
	v1, _ := unpackFlag(b.flag1.v.Load())
	b.flag1.v.Store(packFlag(v1+1, 0))
	b.l.Unlock()
}

// Revocations reports owner acquisitions that lost the bias and took
// the internal lock; Transfers reports non-owner acquisitions.
func (b *FFBL) Revocations() uint64 { return b.revocations.Load() }

// Transfers reports non-owner (bias-transfer) acquisitions.
func (b *FFBL) Transfers() uint64 { return b.transfers.Load() }

// Echoes reports non-owner waits the owner's echo cut short.
func (b *FFBL) Echoes() uint64 { return b.echoes.Load() }

// FullWaits reports non-owner acquisitions that waited out the whole
// visibility bound (no echo arrived, or echoing is off).
func (b *FFBL) FullWaits() uint64 { return b.fullWaits.Load() }

// VerifyAccounting checks the revocation-wait bookkeeping: every bias
// transfer either was echoed out of its wait or waited the bound in
// full, so echoes + fullWaits must equal transfers. Call it at
// quiescence (no acquisition in flight); mid-acquisition the counters
// are transiently inconsistent by design. Returns nil when the books
// balance, one monitor violation otherwise.
func (b *FFBL) VerifyAccounting() []monitor.Violation {
	t, e, f := b.transfers.Load(), b.echoes.Load(), b.fullWaits.Load()
	if e+f != t {
		return []monitor.Violation{{
			Monitor: "lock-accounting", Thread: -1,
			Detail: fmt.Sprintf("%s: echoes %d + full waits %d != bias transfers %d",
				b.name, e, f, t),
		}}
	}
	return nil
}

// Metrics publishes the lock's counters into reg under
// "lock.<name>." names. Successive calls add only the growth since
// the previous call, so several lock instances accumulate into one
// registry.
func (b *FFBL) Metrics(reg *obs.Registry) {
	prefix := "lock." + b.name + "."
	b.pub.revocations.Publish(reg.Counter(prefix+"revocations"), b.revocations.Load())
	b.pub.transfers.Publish(reg.Counter(prefix+"bias_transfers"), b.transfers.Load())
	b.pub.echoes.Publish(reg.Counter(prefix+"echoes"), b.echoes.Load())
	b.pub.fullWaits.Publish(reg.Counter(prefix+"full_waits"), b.fullWaits.Load())
}
