package lock

import (
	"runtime"

	"tbtso/internal/fence"
)

// Bias states of the safe-point lock, packed with the waiter count into
// a single word: mode in bits [0,2), waiter count in bits [2,64).
const (
	spBiased   uint64 = iota // owner may use the fast path
	spRevoking               // a non-owner requested revocation
	spUnbiased               // owner acknowledged; everyone uses L
)

func spPack(mode, count uint64) uint64 { return count<<2 | mode }

func spUnpack(w uint64) (mode, count uint64) { return w & 3, w >> 2 }

// SafePointBiased is a biased lock in the style of Russell and Detlefs
// [33]: the owner's fast path uses plain stores and loads with no
// atomic read-modify-write; a non-owner acquires by *revoking* the
// bias — it requests revocation and blocks until the owner reaches a
// safe point outside its critical section and acknowledges. While the
// bias is suspended both sides use the internal lock L; the last
// non-owner to release re-biases the lock to the owner. Mode and
// waiter count live in one word so the re-bias decision is atomic with
// respect to arriving non-owners.
//
// The defining weakness the paper exploits (Figure 8's last pattern):
// if the owner is scheduled out or computing for a long time, it
// reaches no safe point, so the non-owner blocks for the whole stall —
// whereas FFBL's non-owner waits at most the visibility bound.
//
// The evaluation assumes the owner reaches a safe point immediately on
// exiting the critical section (§7.2); accordingly OwnerUnlock doubles
// as a safe point, and workloads may call SafePoint at additional
// cooperative points.
type SafePointBiased struct {
	state paddedU64 // packed (mode, waiter count)
	inCS  paddedU64 // owner's fast-path flag; plain store/load
	l     TTAS
	fen   fence.Line
}

// NewSafePointBiased returns a safe-point biased lock.
func NewSafePointBiased() *SafePointBiased { return &SafePointBiased{} }

// Name implements BiasedLock.
func (s *SafePointBiased) Name() string { return "safepoint" }

// OwnerLock implements BiasedLock: with the bias intact it is a plain
// store and load; otherwise the owner acknowledges any pending
// revocation and falls back to L.
func (s *SafePointBiased) OwnerLock() {
	if mode, _ := spUnpack(s.state.v.Load()); mode == spBiased {
		s.inCS.v.Store(1)
		// no fence — the revoker waits for a safe point instead.
		if mode, _ := spUnpack(s.state.v.Load()); mode == spBiased {
			return // fast path
		}
		// A revocation raced in: back out and acknowledge.
		s.inCS.v.Store(0)
	}
	s.SafePoint()
	s.l.Lock()
}

// OwnerUnlock implements BiasedLock and is itself a safe point.
func (s *SafePointBiased) OwnerUnlock() {
	if s.inCS.v.Load() != 0 {
		s.inCS.v.Store(0)
		s.SafePoint()
		return
	}
	s.l.Unlock()
	s.SafePoint()
}

// SafePoint is a cooperative point at which the owner (and only the
// owner) services pending revocations. The owner must be outside any
// critical section.
func (s *SafePointBiased) SafePoint() {
	for {
		w := s.state.v.Load()
		mode, count := spUnpack(w)
		if mode != spRevoking {
			return
		}
		if s.state.v.CompareAndSwap(w, spPack(spUnbiased, count)) {
			s.fen.Full()
			return
		}
	}
}

// OtherLock implements BiasedLock: register as a waiter (requesting
// revocation if the bias is intact), wait for the owner's safe point,
// then take L.
func (s *SafePointBiased) OtherLock() {
	for {
		w := s.state.v.Load()
		mode, count := spUnpack(w)
		next := mode
		if mode == spBiased {
			next = spRevoking
		}
		if s.state.v.CompareAndSwap(w, spPack(next, count+1)) {
			break
		}
	}
	// Block until the owner parks the bias. If the owner never runs,
	// this waits for the whole stall — the cost Figure 8 shows for
	// safe-point locks.
	for spins := 0; ; spins++ {
		if mode, _ := spUnpack(s.state.v.Load()); mode == spUnbiased {
			break
		}
		if spins%16 == 15 {
			runtime.Gosched()
		}
	}
	s.l.Lock()
}

// OtherUnlock implements BiasedLock: if this was the last waiting
// non-owner, atomically re-bias to the owner; then release L.
func (s *SafePointBiased) OtherUnlock() {
	for {
		w := s.state.v.Load()
		mode, count := spUnpack(w)
		var next uint64
		if count == 1 && mode == spUnbiased {
			next = spPack(spBiased, 0)
		} else {
			next = spPack(mode, count-1)
		}
		if s.state.v.CompareAndSwap(w, next) {
			break
		}
	}
	s.l.Unlock()
}
