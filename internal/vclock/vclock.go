// Package vclock provides the global clocks TBTSO algorithms read.
//
// The paper's algorithms assume an invariant timestamp counter readable
// cheaply by every thread (§6). Natively we use Go's monotonic clock;
// on the abstract machine the global tick counter plays the same role.
package vclock

import (
	"sync/atomic"
	"time"
)

// base anchors the monotonic clock so Now() values are small and
// strictly relative, like a TSC read.
var base = time.Now()

// Now returns monotonic nanoseconds since process start. It is the
// native stand-in for the invariant TSC the paper relies on.
func Now() int64 {
	return int64(time.Since(base))
}

// Delta values used throughout the evaluation (§7): the estimated
// hardware-TBTSO bound and the OS-adapted (timer interrupt) bound.
const (
	// HardwareDelta is the paper's extrapolated hardware bound (0.5 ms).
	HardwareDelta = 500 * time.Microsecond
	// AdaptedDelta is the paper's OS-timer-adapted bound (4 ms).
	AdaptedDelta = 4 * time.Millisecond
)

// Coarse is a shared coarse clock updated by a background goroutine,
// for callers that want loads cheaper than a time.Since call. Reads are
// a single atomic load; resolution is the update period.
type Coarse struct {
	now    atomic.Int64
	period time.Duration
	stop   chan struct{}
	done   chan struct{}
}

// NewCoarse starts a coarse clock with the given update period.
func NewCoarse(period time.Duration) *Coarse {
	c := &Coarse{period: period, stop: make(chan struct{}), done: make(chan struct{})}
	c.now.Store(Now())
	go c.run()
	return c
}

func (c *Coarse) run() {
	defer close(c.done)
	t := time.NewTicker(c.period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.now.Store(Now())
		case <-c.stop:
			return
		}
	}
}

// Now returns the last published time.
func (c *Coarse) Now() int64 { return c.now.Load() }

// Stop shuts the updater down.
func (c *Coarse) Stop() {
	close(c.stop)
	<-c.done
}
