package vclock

import (
	"testing"
	"time"
)

func TestNowMonotone(t *testing.T) {
	prev := Now()
	for i := 0; i < 1000; i++ {
		cur := Now()
		if cur < prev {
			t.Fatalf("clock went backwards: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestNowAdvances(t *testing.T) {
	a := Now()
	time.Sleep(2 * time.Millisecond)
	b := Now()
	if b-a < int64(time.Millisecond) {
		t.Fatalf("clock barely advanced: %d ns", b-a)
	}
}

func TestCoarse(t *testing.T) {
	c := NewCoarse(time.Millisecond)
	defer c.Stop()
	a := c.Now()
	deadline := time.Now().Add(2 * time.Second)
	for c.Now() == a {
		if time.Now().After(deadline) {
			t.Fatal("coarse clock never advanced")
		}
		time.Sleep(time.Millisecond)
	}
}
