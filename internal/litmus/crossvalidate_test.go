package litmus

import (
	"fmt"
	"testing"

	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

// TestSampledOutcomesWithinExhaustiveSet cross-validates the two
// machines: every outcome the clocked abstract machine (internal/tso)
// samples for the SB litmus test must be in the outcome set the
// explicit-state model checker (internal/mc) proves admissible — for
// plain TSO and for a bounded machine.
func TestSampledOutcomesWithinExhaustiveSet(t *testing.T) {
	sbProg := mc.Program{
		Threads: [][]mc.Op{
			{mc.St(0, 1), mc.Ld(1, 0)},
			{mc.St(1, 1), mc.Ld(0, 0)},
		},
		Vars: 2, Regs: 1,
	}

	cases := []struct {
		name    string
		machDel uint64 // clocked machine Δ in ticks
		mcDel   int    // model checker Δ in transitions
	}{
		{"plain TSO", 0, 0},
		// A generous clocked Δ maps onto an unconstrained-enough
		// transition bound; both admit the full TSO outcome set.
		{"bounded", 400, 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exhaustive := mc.Explore(sbProg, tc.mcDel)
			rep := Run(StoreBuffering(false), RunConfig{Seeds: 120, Delta: tc.machDel})
			if len(rep.Errs) > 0 {
				t.Fatalf("sampled run errors: %v", rep.Errs[0])
			}
			for outcome := range rep.Counts {
				// Translate "T0:r=X T1:r=Y" to the checker's naming.
				var x, y int
				if _, err := fmt.Sscanf(outcome, "T0:r=%d T1:r=%d", &x, &y); err != nil {
					t.Fatalf("unparseable outcome %q", outcome)
				}
				key := fmt.Sprintf("T0:r0=%d T1:r0=%d", x, y)
				if !exhaustive.Has(key) {
					t.Fatalf("sampled machine produced %q, which the exhaustive model forbids (set: %v)",
						key, exhaustive.List())
				}
			}
		})
	}
}

// TestEnginesAgreeOnLitmusPrograms pins the two explorer engines to
// each other on the canonical litmus programs at several bounds: the
// parallel work-stealing engine (with all reductions) and the
// sequential reference must produce identical outcome sets, so the
// sampled-⊆-exhaustive checks above hold for whichever engine a test
// reaches for.
func TestEnginesAgreeOnLitmusPrograms(t *testing.T) {
	progs := map[string]mc.Program{
		"SB": {
			Threads: [][]mc.Op{
				{mc.St(0, 1), mc.Ld(1, 0)},
				{mc.St(1, 1), mc.Ld(0, 0)},
			},
			Vars: 2, Regs: 1,
		},
		"MP": {
			Threads: [][]mc.Op{
				{mc.St(0, 1), mc.St(1, 1)},
				{mc.Ld(1, 0), mc.Ld(0, 1)},
			},
			Vars: 2, Regs: 2,
		},
		"flag": {
			Threads: [][]mc.Op{
				{mc.St(0, 1), mc.Ld(1, 0)},
				{mc.St(1, 1), mc.Fence(), mc.Wait(4), mc.Ld(0, 0)},
			},
			Vars: 2, Regs: 1,
		},
		"RMW": {
			Threads: [][]mc.Op{
				{mc.RMW(0, 1, 0), mc.Ld(1, 1)},
				{mc.RMW(0, 1, 0), mc.St(1, 1)},
			},
			Vars: 2, Regs: 2,
		},
	}
	for name, p := range progs {
		for _, delta := range []int{0, 1, 3, 8} {
			want := mc.ExploreSequential(p, delta)
			got, err := mc.ExploreParallel(p, delta, mc.Options{})
			if err != nil {
				t.Fatalf("%s Δ=%d: %v", name, delta, err)
			}
			g, w := got.List(), want.List()
			if len(g) != len(w) {
				t.Fatalf("%s Δ=%d: engines disagree: parallel %v, sequential %v", name, delta, g, w)
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("%s Δ=%d: engines disagree: parallel %v, sequential %v", name, delta, g, w)
				}
			}
		}
	}
}

// TestExhaustiveMatchesSampledForbidden checks agreement in the other
// direction on the asymmetric flag principle: both machines must forbid
// 0/0 under their bounds, and both must admit it unbounded.
func TestExhaustiveMatchesSampledForbidden(t *testing.T) {
	flagProg := func(wait int) mc.Program {
		return mc.Program{
			Threads: [][]mc.Op{
				{mc.St(0, 1), mc.Ld(1, 0)},
				{mc.St(1, 1), mc.Fence(), mc.Wait(wait), mc.Ld(0, 0)},
			},
			Vars: 2, Regs: 1,
		}
	}
	const zz = "T0:r0=0 T1:r0=0"

	if mc.Explore(flagProg(13), 12).Has(zz) {
		t.Fatal("model checker admits 0/0 under TBTSO with adequate wait")
	}
	rep := Run(TBTSOFlagPrinciple(), RunConfig{Seeds: 100, Delta: 150})
	if rep.ForbiddenSeen() {
		t.Fatal("sampled machine observed 0/0 under TBTSO")
	}

	if !mc.Explore(flagProg(13), 0).Has(zz) {
		t.Fatal("model checker misses 0/0 on plain TSO")
	}
	unb := TBTSOFlagPrinciple()
	unb.Forbidden = nil
	unb.Relaxed = func(o Outcome) bool { return o["T0:saw1"] == 0 && o["T1:saw0"] == 0 }
	repU := Run(unb, RunConfig{Seeds: 100, Delta: 0, Policies: []tso.DrainPolicy{tso.DrainAdversarial}})
	if repU.RelaxedN == 0 {
		t.Fatal("sampled machine misses 0/0 on plain TSO")
	}
}
