package litmus

import "testing"

func TestLoadBufferingForbidden(t *testing.T) {
	for _, delta := range []uint64{0, 150} {
		rep := Run(LoadBuffering(), RunConfig{Seeds: 150, Delta: delta})
		if len(rep.Errs) > 0 {
			t.Fatalf("errors: %v", rep.Errs[0])
		}
		if rep.ForbiddenSeen() {
			t.Fatalf("Δ=%d: LB 1/1 observed — machine reorders loads with later stores:\n%s", delta, rep)
		}
	}
}

func TestIRIWForbidden(t *testing.T) {
	rep := Run(IRIW(), RunConfig{Seeds: 200, Delta: 0})
	if len(rep.Errs) > 0 {
		t.Fatalf("errors: %v", rep.Errs[0])
	}
	if rep.ForbiddenSeen() {
		t.Fatalf("IRIW opposite-order outcome observed — machine is not multi-copy atomic:\n%s", rep)
	}
}

func TestWRCForbidden(t *testing.T) {
	rep := Run(WRC(), RunConfig{Seeds: 200, Delta: 0})
	if rep.ForbiddenSeen() {
		t.Fatalf("WRC causality violated:\n%s", rep)
	}
}

func TestSBOneFenceStillRelaxed(t *testing.T) {
	// One-sided fencing is not enough — the reason the asymmetric flag
	// principle needs the Δ wait on the fenced side.
	rep := Run(SBOneFence(), RunConfig{Seeds: 150, Delta: 0})
	if rep.RelaxedN == 0 {
		t.Fatal("SB with a single fence never showed 0/0 — one-sided fences should not restore SC")
	}
}

func TestSB3RingObservesAllZero(t *testing.T) {
	rep := Run(SB3(), RunConfig{Seeds: 100, Delta: 0})
	if len(rep.Errs) > 0 {
		t.Fatalf("errors: %v", rep.Errs[0])
	}
	if rep.RelaxedN == 0 {
		t.Fatal("three-thread SB ring never showed 0/0/0")
	}
}

func TestTwoPlusTwoWForbidden(t *testing.T) {
	for _, delta := range []uint64{0, 200} {
		rep := Run(TwoPlusTwoW(), RunConfig{Seeds: 120, Delta: delta})
		if len(rep.Errs) > 0 {
			t.Fatalf("Δ=%d errors: %v", delta, rep.Errs[0])
		}
		if rep.ForbiddenSeen() {
			t.Fatalf("Δ=%d: 2+2W forbidden final state observed:\n%s", delta, rep)
		}
	}
}

func TestRMWActsAsFence(t *testing.T) {
	rep := Run(RMWFlushes(), RunConfig{Seeds: 150, Delta: 0})
	if len(rep.Errs) > 0 {
		t.Fatalf("errors: %v", rep.Errs[0])
	}
	if rep.ForbiddenSeen() {
		t.Fatalf("SB with RMWs observed 0/0 — atomics must drain the store buffer:\n%s", rep)
	}
}
