package litmus

import "tbtso/internal/tso"

// Additional litmus tests characterizing the machine's TSO-ness.

// LoadBuffering is the LB test: Rx;Wy || Ry;Wx. The outcome
// r0=1 ∧ r1=1 requires loads to be satisfied after program-order-later
// stores, which TSO (and TBTSO) forbids.
func LoadBuffering() Test {
	return Test{
		Name: "LB",
		Doc:  "load buffering: Rx;Wy1 || Ry;Wx1 — 1/1 forbidden on TSO",
		Vars: []string{"x", "y"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				e.Set(0, "r", th.Load(e.Var("x")))
				th.Store(e.Var("y"), 1)
			},
			func(th *tso.Thread, e *Env) {
				e.Set(1, "r", th.Load(e.Var("y")))
				th.Store(e.Var("x"), 1)
			},
		},
		Forbidden: func(o Outcome) bool { return o["T0:r"] == 1 && o["T1:r"] == 1 },
	}
}

// IRIW is independent-reads-of-independent-writes: two writers to
// different variables, two readers observing them in opposite orders.
// TSO is multi-copy atomic (a store becomes visible to all other
// threads at once — when it leaves the buffer), so the opposite-order
// outcome is forbidden.
func IRIW() Test {
	return Test{
		Name: "IRIW",
		Doc:  "independent reads of independent writes — opposite orders forbidden on TSO",
		Vars: []string{"x", "y"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) { th.Store(e.Var("x"), 1) },
			func(th *tso.Thread, e *Env) { th.Store(e.Var("y"), 1) },
			func(th *tso.Thread, e *Env) {
				a := th.Load(e.Var("x"))
				b := th.Load(e.Var("y"))
				e.Set(2, "a", a)
				e.Set(2, "b", b)
			},
			func(th *tso.Thread, e *Env) {
				c := th.Load(e.Var("y"))
				d := th.Load(e.Var("x"))
				e.Set(3, "c", c)
				e.Set(3, "d", d)
			},
		},
		Forbidden: func(o Outcome) bool {
			return o["T2:a"] == 1 && o["T2:b"] == 0 && o["T3:c"] == 1 && o["T3:d"] == 0
		},
	}
}

// SBOneFence is store buffering with a fence on ONLY one side: the
// relaxed 0/0 outcome remains observable, which is why the asymmetric
// flag principle needs the Δ wait and not merely one thread fencing.
func SBOneFence() Test {
	return Test{
		Name: "SB+onefence",
		Doc:  "SB with a fence only on T1 — 0/0 still observable",
		Vars: []string{"x", "y"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("x"), 1)
				e.Set(0, "r", th.Load(e.Var("y")))
			},
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("y"), 1)
				th.Fence()
				e.Set(1, "r", th.Load(e.Var("x")))
			},
		},
		Relaxed: func(o Outcome) bool { return o["T0:r"] == 0 && o["T1:r"] == 0 },
	}
}

// RMWFlushes checks that an atomic read-modify-write acts as a fence:
// SB where each thread's "fence" is a CAS to a private scratch word.
func RMWFlushes() Test {
	return Test{
		Name: "SB+rmw",
		Doc:  "SB with atomic RMWs in place of fences — 0/0 forbidden",
		Vars: []string{"x", "y", "s0", "s1"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("x"), 1)
				th.CAS(e.Var("s0"), 0, 1)
				e.Set(0, "r", th.Load(e.Var("y")))
			},
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("y"), 1)
				th.CAS(e.Var("s1"), 0, 1)
				e.Set(1, "r", th.Load(e.Var("x")))
			},
		},
		Forbidden: func(o Outcome) bool { return o["T0:r"] == 0 && o["T1:r"] == 0 },
	}
}

// WRC is write-read causality: T0 writes x; T1 reads x then writes y;
// T2 reads y then x. Seeing y=1 but x=0 would break causality, which
// TSO forbids.
func WRC() Test {
	return Test{
		Name: "WRC",
		Doc:  "write-read causality: y=1 ∧ x=0 at T2 forbidden on TSO",
		Vars: []string{"x", "y"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) { th.Store(e.Var("x"), 1) },
			func(th *tso.Thread, e *Env) {
				if th.Load(e.Var("x")) == 1 {
					th.Store(e.Var("y"), 1)
				}
			},
			func(th *tso.Thread, e *Env) {
				a := th.Load(e.Var("y"))
				b := th.Load(e.Var("x"))
				e.Set(2, "y", a)
				e.Set(2, "x", b)
			},
		},
		Forbidden: func(o Outcome) bool { return o["T2:y"] == 1 && o["T2:x"] == 0 },
	}
}

// SB3 is a three-thread store-buffering variant: each thread stores to
// its own variable and reads its neighbor's. All-zero requires every
// store to be buffered past every read — legal on TSO, gone under a
// tight bound.
func SB3() Test {
	mk := func(me int) ThreadFn {
		return func(th *tso.Thread, e *Env) {
			vars := []string{"x", "y", "z"}
			th.Store(e.Var(vars[me]), 1)
			e.Set(me, "r", th.Load(e.Var(vars[(me+1)%3])))
		}
	}
	return Test{
		Name:    "SB3",
		Doc:     "three-thread store buffering ring — 0/0/0 observable on TSO",
		Vars:    []string{"x", "y", "z"},
		Threads: []ThreadFn{mk(0), mk(1), mk(2)},
		Relaxed: func(o Outcome) bool {
			return o["T0:r"] == 0 && o["T1:r"] == 0 && o["T2:r"] == 0
		},
	}
}

// TwoPlusTwoW is the 2+2W litmus test: two threads write both
// variables in opposite orders. The final state x=1 ∧ y=1 needs each
// thread's FIRST write to land last at its address, which with FIFO
// buffers forms a cycle (y2<y1<x2<x1<y2) — forbidden on TSO. An
// observer thread reads the final state after both writers fence.
func TwoPlusTwoW() Test {
	return Test{
		Name: "2+2W",
		Doc:  "2+2W: Wx1;Wy2 || Wy1;Wx2 — final x=1,y=1 forbidden on TSO",
		Vars: []string{"x", "y"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("x"), 1)
				th.Store(e.Var("y"), 2)
				th.Fence()
			},
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("y"), 1)
				th.Store(e.Var("x"), 2)
				th.Fence()
			},
			func(th *tso.Thread, e *Env) {
				// Observe the final state after both writers fence.
				for th.Load(e.Var("x")) == 0 || th.Load(e.Var("y")) == 0 {
				}
				for i := 0; i < 200; i++ {
					th.Yield() // let the writers finish completely
				}
				e.Set(2, "x", th.Load(e.Var("x")))
				e.Set(2, "y", th.Load(e.Var("y")))
			},
		},
		Forbidden: func(o Outcome) bool { return o["T2:x"] == 1 && o["T2:y"] == 1 },
	}
}
