package litmus

import "tbtso/internal/tso"

// StoreBuffering is the classic SB litmus test: each thread stores 1 to
// its own flag and loads the other's. Under sequential consistency and
// under the (symmetric, fenced) flag principle, r0=0 ∧ r1=0 is
// impossible; under TSO it is observable.
func StoreBuffering(fenced bool) Test {
	name := "SB"
	if fenced {
		name = "SB+fences"
	}
	t := Test{
		Name: name,
		Doc:  "store buffering: Wx1;Ry || Wy1;Rx",
		Vars: []string{"x", "y"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("x"), 1)
				if fenced {
					th.Fence()
				}
				e.Set(0, "r", th.Load(e.Var("y")))
			},
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("y"), 1)
				if fenced {
					th.Fence()
				}
				e.Set(1, "r", th.Load(e.Var("x")))
			},
		},
		Relaxed: func(o Outcome) bool { return o["T0:r"] == 0 && o["T1:r"] == 0 },
	}
	if fenced {
		t.Forbidden = func(o Outcome) bool { return o["T0:r"] == 0 && o["T1:r"] == 0 }
	}
	return t
}

// MessagePassing is the MP litmus test. TSO does not reorder stores
// with stores or loads with loads, so r=1 ∧ d=0 is forbidden even
// without fences — on TSO and TBTSO alike.
func MessagePassing() Test {
	return Test{
		Name: "MP",
		Doc:  "message passing: Wd1;Wf1 || Rf;Rd — f=1,d=0 forbidden on TSO",
		Vars: []string{"data", "flag"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("data"), 1)
				th.Store(e.Var("flag"), 1)
			},
			func(th *tso.Thread, e *Env) {
				f := th.Load(e.Var("flag"))
				d := th.Load(e.Var("data"))
				e.Set(1, "f", f)
				e.Set(1, "d", d)
			},
		},
		Forbidden: func(o Outcome) bool { return o["T1:f"] == 1 && o["T1:d"] == 0 },
	}
}

// Coherence checks per-location SC: two stores to the same variable by
// one thread must be observed in order by another thread polling it.
func Coherence() Test {
	return Test{
		Name: "CoRR",
		Doc:  "coherence: Wx1;Wx2 || Rx;Rx — 2 then 1 forbidden",
		Vars: []string{"x"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("x"), 1)
				th.Store(e.Var("x"), 2)
			},
			func(th *tso.Thread, e *Env) {
				a := th.Load(e.Var("x"))
				b := th.Load(e.Var("x"))
				e.Set(1, "a", a)
				e.Set(1, "b", b)
			},
		},
		Forbidden: func(o Outcome) bool { return o["T1:a"] == 2 && o["T1:b"] == 1 },
	}
}

// TBTSOFlagPrinciple is the paper's §3 asymmetric flag principle: T0
// raises its flag with no fence; T1 raises its flag, fences, waits Δ
// ticks, then reads T0's flag. The forbidden outcome is both threads
// reading 0 ("neither saw the other"). It requires a machine with
// Delta > 0; on a plain-TSO machine the forbidden outcome is observable
// (see FlagPrincipleNoWait for the demonstration).
func TBTSOFlagPrinciple() Test {
	return Test{
		Name: "TBTSO-flag",
		Doc:  "asymmetric flag principle (§3): fence-free T0, Δ-waiting T1",
		Vars: []string{"flag0", "flag1"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("flag0"), 1)
				// no fence
				e.Set(0, "saw1", th.Load(e.Var("flag1")))
			},
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("flag1"), 1)
				th.Fence()
				deadline := th.Clock() + e.Delta()
				th.WaitUntil(deadline)
				e.Set(1, "saw0", th.Load(e.Var("flag0")))
			},
		},
		Forbidden: func(o Outcome) bool { return o["T0:saw1"] == 0 && o["T1:saw0"] == 0 },
	}
}

// FlagPrincipleNoWait removes T1's Δ wait from the asymmetric flag
// principle. The 0/0 outcome is then observable (the reason standard
// hazard pointers need a fence), so the test is used with Relaxed to
// demonstrate the failure rather than with Forbidden.
func FlagPrincipleNoWait() Test {
	return Test{
		Name: "flag-no-wait",
		Doc:  "asymmetric flag principle without the Δ wait — 0/0 observable",
		Vars: []string{"flag0", "flag1"},
		Threads: []ThreadFn{
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("flag0"), 1)
				e.Set(0, "saw1", th.Load(e.Var("flag1")))
			},
			func(th *tso.Thread, e *Env) {
				th.Store(e.Var("flag1"), 1)
				th.Fence()
				e.Set(1, "saw0", th.Load(e.Var("flag0")))
			},
		},
		Relaxed: func(o Outcome) bool { return o["T0:saw1"] == 0 && o["T1:saw0"] == 0 },
	}
}

// SymmetricFlagPrinciple is the original (fenced) flag principle from
// §3, identical to SB+fences but named for the paper's presentation.
func SymmetricFlagPrinciple() Test {
	t := StoreBuffering(true)
	t.Name = "flag-principle"
	t.Doc = "symmetric flag principle: both threads fence before looking"
	return t
}

// All returns every litmus test in the package, for the explorer CLI.
// The bool reports whether the test needs a TBTSO (Delta > 0) machine
// for its Forbidden predicate to be sound.
func All() []struct {
	Test       Test
	NeedsDelta bool
} {
	return []struct {
		Test       Test
		NeedsDelta bool
	}{
		{StoreBuffering(false), false},
		{StoreBuffering(true), false},
		{SB3(), false},
		{SBOneFence(), false},
		{RMWFlushes(), false},
		{TwoPlusTwoW(), false},
		{MessagePassing(), false},
		{LoadBuffering(), false},
		{Coherence(), false},
		{IRIW(), false},
		{WRC(), false},
		{SymmetricFlagPrinciple(), false},
		{TBTSOFlagPrinciple(), true},
		{FlagPrincipleNoWait(), false},
	}
}
