// Package litmus runs litmus tests against the TBTSO abstract machine:
// small multi-threaded programs whose sets of observable outcomes
// characterize a memory model. The package ships the classic x86-TSO
// litmus tests (store buffering, message passing, coherence) and the
// paper's flag-principle variants (§3), and a runner that explores
// outcomes across scheduler seeds and drain policies.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"tbtso/internal/tso"
)

// Env gives a litmus thread access to its named shared variables and
// per-thread result registers.
type Env struct {
	vars    map[string]tso.Addr
	regs    []map[string]tso.Word
	machine *tso.Machine
}

// Var returns the machine address of a named shared variable.
func (e *Env) Var(name string) tso.Addr {
	a, ok := e.vars[name]
	if !ok {
		panic(fmt.Sprintf("litmus: unknown variable %q", name))
	}
	return a
}

// Set records a register value for thread tid. Each thread must only
// set its own registers (the per-thread map is what makes this safe).
func (e *Env) Set(tid int, reg string, v tso.Word) {
	e.regs[tid][reg] = v
}

// Delta reports the machine's Δ bound in ticks (0 = unbounded).
func (e *Env) Delta() uint64 { return e.machine.Delta() }

// ThreadFn is one thread of a litmus test.
type ThreadFn func(th *tso.Thread, e *Env)

// Test is a litmus test: named shared variables (initialized to zero),
// one function per thread, and a predicate describing the outcome the
// model under test forbids.
type Test struct {
	Name string
	Doc  string
	// Vars lists shared variable names, all initialized to 0.
	Vars []string
	// Threads are the test's programs, spawn order = thread id.
	Threads []ThreadFn
	// Forbidden reports whether an outcome must never be observed under
	// the model configuration the test targets.
	Forbidden func(Outcome) bool
	// Relaxed, if non-nil, reports whether an outcome demonstrates the
	// relaxed behaviour the test looks for (e.g. store/load reordering).
	Relaxed func(Outcome) bool
}

// Outcome maps "T<i>:<reg>" register names to observed values.
type Outcome map[string]tso.Word

// Key renders an outcome canonically for histogram bucketing.
func (o Outcome) Key() string {
	keys := make([]string, 0, len(o))
	for k := range o {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, o[k])
	}
	return strings.Join(parts, " ")
}

// RunConfig controls outcome exploration.
type RunConfig struct {
	// Seeds is how many scheduler seeds to try per policy.
	Seeds int
	// Policies lists the drain policies to explore; nil means all three.
	Policies []tso.DrainPolicy
	// Delta is the machine's TBTSO bound (0 = plain TSO).
	Delta uint64
	// StallProb is passed to the machine scheduler.
	StallProb float64
	// MaxTicks caps each execution (0 = machine default).
	MaxTicks uint64
	// Sinks are attached to every machine the runner creates — e.g.
	// the obs/monitor online checkers, so a whole litmus sweep runs
	// under continuous Δ-residency verification.
	Sinks []tso.Sink
}

// Report aggregates the outcomes of an exploration.
type Report struct {
	Test      string
	Total     int
	Counts    map[string]int
	Forbidden []string // outcome keys that matched Test.Forbidden
	RelaxedN  int      // executions matching Test.Relaxed
	Errs      []error
}

// ForbiddenSeen reports whether any forbidden outcome was observed.
func (r Report) ForbiddenSeen() bool { return len(r.Forbidden) > 0 }

// String renders the report as a small table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d executions\n", r.Test, r.Total)
	keys := make([]string, 0, len(r.Counts))
	for k := range r.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-40s %6d\n", k, r.Counts[k])
	}
	if r.ForbiddenSeen() {
		fmt.Fprintf(&b, "  FORBIDDEN OUTCOMES SEEN: %v\n", r.Forbidden)
	}
	return b.String()
}

// Once executes a single run of the test and returns its outcome.
func Once(t Test, cfg tso.Config) (Outcome, error) {
	out, _, err := OnceTraced(t, cfg)
	return out, err
}

// OnceTraced executes a single run and also returns the machine's
// execution trace (empty unless cfg.Trace is set).
func OnceTraced(t Test, cfg tso.Config) (Outcome, []tso.Event, error) {
	m := tso.New(cfg)
	env := &Env{
		vars:    make(map[string]tso.Addr, len(t.Vars)),
		regs:    make([]map[string]tso.Word, len(t.Threads)),
		machine: m,
	}
	for _, v := range t.Vars {
		env.vars[v] = m.AllocWords(1)
	}
	for i, fn := range t.Threads {
		env.regs[i] = make(map[string]tso.Word)
		f := fn
		m.Spawn(fmt.Sprintf("T%d", i), func(th *tso.Thread) { f(th, env) })
	}
	res := m.Run()
	if res.Err != nil {
		return nil, m.Trace(), res.Err
	}
	out := make(Outcome)
	for i, regs := range env.regs {
		for r, v := range regs {
			out[fmt.Sprintf("T%d:%s", i, r)] = v
		}
	}
	return out, m.Trace(), nil
}

// Run explores the test across seeds and policies and aggregates the
// observed outcomes.
func Run(t Test, cfg RunConfig) Report {
	policies := cfg.Policies
	if policies == nil {
		policies = []tso.DrainPolicy{tso.DrainEager, tso.DrainRandom, tso.DrainAdversarial}
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 50
	}
	rep := Report{Test: t.Name, Counts: make(map[string]int)}
	seenForbidden := make(map[string]bool)
	for _, p := range policies {
		for s := 0; s < cfg.Seeds; s++ {
			out, err := Once(t, tso.Config{
				Delta:     cfg.Delta,
				Policy:    p,
				Seed:      int64(s),
				StallProb: cfg.StallProb,
				MaxTicks:  cfg.MaxTicks,
				Sinks:     cfg.Sinks,
			})
			if err != nil {
				rep.Errs = append(rep.Errs, fmt.Errorf("policy=%v seed=%d: %w", p, s, err))
				continue
			}
			rep.Total++
			rep.Counts[out.Key()]++
			if t.Forbidden != nil && t.Forbidden(out) && !seenForbidden[out.Key()] {
				seenForbidden[out.Key()] = true
				rep.Forbidden = append(rep.Forbidden, out.Key())
			}
			if t.Relaxed != nil && t.Relaxed(out) {
				rep.RelaxedN++
			}
		}
	}
	return rep
}
