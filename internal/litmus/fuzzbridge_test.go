package litmus

import (
	"errors"
	"testing"

	"tbtso/internal/fuzz"
	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

// TestFuzzSampledSubsetOfExhaustive pins the two implementations of the
// memory model to each other: every outcome the clocked abstract
// machine samples must be admitted by the exhaustive model checker.
// Rebased on internal/fuzz's generator, it now covers the FULL op
// vocabulary — stores, loads, fences, RMWs, waits — across 1..3
// threads, with the machine run at Δ ticks and the checker at the
// covering Δ (fuzz.CoverDelta's containment argument). The fuzz
// package's own tests sweep wider; this bridge test keeps the
// cross-package property visible where the litmus suite lives.
func TestFuzzSampledSubsetOfExhaustive(t *testing.T) {
	gen := fuzz.GenConfig{MaxThreads: 3, MaxOps: 4, MaxTotalOps: 8, Vars: 2, Regs: 3}
	policies := []tso.DrainPolicy{tso.DrainEager, tso.DrainRandom, tso.DrainAdversarial}
	for seed := int64(0); seed < 40; seed++ {
		p := fuzz.Gen(gen, seed)
		for _, delta := range []int{0, 1, 3} {
			machDelta := fuzz.MachineDelta(delta)
			cover := fuzz.CoverDelta(p, machDelta)
			exhaustive, err := mc.ExploreParallel(p, cover, mc.Options{MaxStates: 400_000})
			if err != nil {
				var te *mc.TruncatedError
				if errors.As(err, &te) {
					continue // partial sets admit no containment claim
				}
				t.Fatalf("seed=%d Δ=%d cover=%d: explore: %v", seed, delta, cover, err)
			}
			for _, policy := range policies {
				for machSeed := int64(0); machSeed < 4; machSeed++ {
					run := fuzz.MachineRun{Delta: machDelta, Policy: policy, Seed: machSeed}
					outcome, err := fuzz.RunOnMachine(p, run)
					if err != nil {
						t.Fatalf("seed=%d Δ=%d policy=%v machSeed=%d: machine run: %v",
							seed, delta, policy, machSeed, err)
					}
					if !exhaustive.Has(outcome) {
						t.Errorf("seed=%d Δ=%d (cover %d) policy=%v machSeed=%d: sampled outcome %q not in exhaustive set (%d outcomes)",
							seed, delta, cover, policy, machSeed, outcome, len(exhaustive.Outcomes))
					}
				}
			}
		}
	}
}
