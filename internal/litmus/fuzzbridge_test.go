package litmus

import (
	"fmt"
	"math/rand"
	"testing"

	"tbtso/internal/mc"
	"tbtso/internal/tso"
)

// TestFuzzSampledSubsetOfExhaustive generates random two-thread
// straight-line programs and checks, for each, that every outcome the
// clocked abstract machine samples is admitted by the exhaustive model
// checker — under plain TSO and under a bound. This pins the two
// implementations of the memory model to each other.
func TestFuzzSampledSubsetOfExhaustive(t *testing.T) {
	const (
		programs = 25
		vars     = 2
		maxOps   = 4
	)
	for pi := 0; pi < programs; pi++ {
		rng := rand.New(rand.NewSource(int64(pi)))
		// Generate the program in mc form.
		prog := mc.Program{Vars: vars, Regs: maxOps}
		type opDesc struct {
			isStore  bool
			addr     int
			val, reg int
		}
		descs := make([][]opDesc, 2)
		for th := 0; th < 2; th++ {
			n := rng.Intn(maxOps) + 1
			var ops []mc.Op
			regs := 0
			for k := 0; k < n; k++ {
				addr := rng.Intn(vars)
				if rng.Intn(2) == 0 {
					val := rng.Intn(2) + 1
					ops = append(ops, mc.St(addr, val))
					descs[th] = append(descs[th], opDesc{isStore: true, addr: addr, val: val})
				} else {
					ops = append(ops, mc.Ld(addr, regs))
					descs[th] = append(descs[th], opDesc{addr: addr, reg: regs})
					regs++
				}
			}
			prog.Threads = append(prog.Threads, ops)
		}

		for _, cfg := range []struct {
			machDelta uint64
			mcDelta   int
		}{
			{0, 0},
			{300, 40},
		} {
			exhaustive := mc.Explore(prog, cfg.mcDelta)

			// Run the same program on the clocked machine over seeds
			// and policies, collecting register outcomes.
			for _, policy := range []tso.DrainPolicy{tso.DrainEager, tso.DrainRandom, tso.DrainAdversarial} {
				for seed := int64(0); seed < 12; seed++ {
					m := tso.New(tso.Config{Delta: cfg.machDelta, Policy: policy, Seed: seed})
					base := m.AllocWords(vars)
					results := make([][]int, 2)
					for th := 0; th < 2; th++ {
						ds := descs[th]
						results[th] = make([]int, maxOps)
						m.Spawn("t", func(thd *tso.Thread) {
							for _, d := range ds {
								if d.isStore {
									thd.Store(base+tso.Addr(d.addr), tso.Word(d.val))
								} else {
									results[thd.ID()][d.reg] = int(thd.Load(base + tso.Addr(d.addr)))
								}
							}
						})
					}
					if res := m.Run(); res.Err != nil {
						t.Fatalf("prog=%d: machine run: %v", pi, res.Err)
					}
					// Canonicalize to the checker's outcome naming.
					var parts []string
					for th := 0; th < 2; th++ {
						for r := 0; r < maxOps; r++ {
							parts = append(parts, fmt.Sprintf("T%d:r%d=%d", th, r, results[th][r]))
						}
					}
					key := joinSpace(parts)
					if !exhaustive.Has(key) {
						t.Fatalf("prog=%d policy=%v seed=%d machΔ=%d: sampled outcome %q not in exhaustive set (%d outcomes)",
							pi, policy, seed, cfg.machDelta, key, len(exhaustive.Outcomes))
					}
				}
			}
		}
	}
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
