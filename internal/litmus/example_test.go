package litmus_test

import (
	"fmt"

	"tbtso/internal/litmus"
	"tbtso/internal/tso"
)

// Explore a litmus test across scheduler seeds and drain policies, then
// check whether the model's forbidden outcome ever appeared.
func ExampleRun() {
	rep := litmus.Run(litmus.StoreBuffering(true), litmus.RunConfig{
		Seeds: 50,
		Delta: 0, // plain TSO; the fences make 0/0 forbidden anyway
	})
	fmt.Println("executions:", rep.Total)
	fmt.Println("forbidden outcome seen:", rep.ForbiddenSeen())
	// Output:
	// executions: 150
	// forbidden outcome seen: false
}

// A single traced execution shows the buffered stores committing.
func ExampleOnceTraced() {
	out, trace, err := litmus.OnceTraced(litmus.StoreBuffering(false), tso.Config{
		Policy: tso.DrainAdversarial,
		Seed:   0,
		Trace:  true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("outcome:", out.Key())
	fmt.Println("events recorded:", len(trace) > 0)
	// Output:
	// outcome: T0:r=0 T1:r=0
	// events recorded: true
}
