package litmus

import (
	"testing"

	"tbtso/internal/tso"
)

func TestSBUnfencedShowsReordering(t *testing.T) {
	rep := Run(StoreBuffering(false), RunConfig{Seeds: 100, Delta: 0})
	if len(rep.Errs) > 0 {
		t.Fatalf("errors: %v", rep.Errs[0])
	}
	if rep.RelaxedN == 0 {
		t.Fatal("unfenced SB never showed the 0/0 reordering — machine is too strong")
	}
}

func TestSBFencedNeverBothZero(t *testing.T) {
	rep := Run(StoreBuffering(true), RunConfig{Seeds: 150, Delta: 0})
	if len(rep.Errs) > 0 {
		t.Fatalf("errors: %v", rep.Errs[0])
	}
	if rep.ForbiddenSeen() {
		t.Fatalf("fenced SB produced a forbidden outcome:\n%s", rep)
	}
}

func TestMPForbiddenOnTSO(t *testing.T) {
	for _, delta := range []uint64{0, 200} {
		rep := Run(MessagePassing(), RunConfig{Seeds: 150, Delta: delta})
		if len(rep.Errs) > 0 {
			t.Fatalf("errors: %v", rep.Errs[0])
		}
		if rep.ForbiddenSeen() {
			t.Fatalf("Δ=%d: MP forbidden outcome observed — store/store order broken:\n%s", delta, rep)
		}
	}
}

func TestCoherence(t *testing.T) {
	rep := Run(Coherence(), RunConfig{Seeds: 150, Delta: 0})
	if rep.ForbiddenSeen() {
		t.Fatalf("coherence violated:\n%s", rep)
	}
}

func TestTBTSOFlagPrincipleHolds(t *testing.T) {
	// The paper's §3 claim: with Δ-bounded buffering, the fence-free
	// asymmetric flag principle never lets both threads miss each
	// other — across all drain policies, seeds, and stall probabilities.
	for _, stall := range []float64{0, 0.3} {
		rep := Run(TBTSOFlagPrinciple(), RunConfig{Seeds: 150, Delta: 100, StallProb: stall})
		if len(rep.Errs) > 0 {
			t.Fatalf("errors: %v", rep.Errs[0])
		}
		if rep.ForbiddenSeen() {
			t.Fatalf("stall=%v: TBTSO flag principle violated:\n%s", stall, rep)
		}
	}
}

func TestTBTSOFlagPrincipleNeedsDelta(t *testing.T) {
	// Same program on a plain-TSO machine: the adversarial policy must
	// exhibit the 0/0 outcome, showing the Δ bound is what makes the
	// fence-free principle sound. (T1's wait loop still terminates
	// because Delta()==0 makes the deadline immediate.)
	test := TBTSOFlagPrinciple()
	test.Forbidden = nil
	test.Relaxed = func(o Outcome) bool { return o["T0:saw1"] == 0 && o["T1:saw0"] == 0 }
	rep := Run(test, RunConfig{
		Seeds:    100,
		Delta:    0,
		Policies: []tso.DrainPolicy{tso.DrainAdversarial},
	})
	if len(rep.Errs) > 0 {
		t.Fatalf("errors: %v", rep.Errs[0])
	}
	if rep.RelaxedN == 0 {
		t.Fatal("0/0 never observed on plain TSO — the Δ bound is not what makes this sound?")
	}
}

func TestFlagNoWaitFails(t *testing.T) {
	// Removing the Δ wait from T1 re-breaks the principle even on a
	// TBTSO machine, provided Δ is large enough for T1's read to race
	// ahead of T0's drain.
	rep := Run(FlagPrincipleNoWait(), RunConfig{
		Seeds:    100,
		Delta:    500,
		Policies: []tso.DrainPolicy{tso.DrainAdversarial},
	})
	if len(rep.Errs) > 0 {
		t.Fatalf("errors: %v", rep.Errs[0])
	}
	if rep.RelaxedN == 0 {
		t.Fatal("expected 0/0 without the Δ wait")
	}
}

func TestOnceReportsOutcome(t *testing.T) {
	out, err := Once(StoreBuffering(true), tso.Config{Policy: tso.DrainEager, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("outcome has %d registers, want 2: %v", len(out), out)
	}
	if out.Key() == "" {
		t.Fatal("empty outcome key")
	}
}

func TestAllListsEveryTest(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("All() returned %d tests, want 14", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Test.Name == "" || seen[e.Test.Name] {
			t.Fatalf("duplicate or empty test name %q", e.Test.Name)
		}
		seen[e.Test.Name] = true
	}
}
