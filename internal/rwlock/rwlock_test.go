package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbtso/internal/core"
)

func TestReadersDoNotExcludeEachOther(t *testing.T) {
	l := New(2, core.NewFixedDelta(time.Millisecond))
	l.RLock(0)
	done := make(chan struct{})
	go func() {
		l.RLock(1)
		l.RUnlock(1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second reader blocked by first")
	}
	l.RUnlock(0)
}

func TestWriterExcludesReaders(t *testing.T) {
	const (
		readers = 3
		iters   = 3000
	)
	l := New(readers, core.NewFixedDelta(100*time.Microsecond))
	var inCS atomic.Int32       // readers currently inside
	var writerIn atomic.Bool    // writer inside
	var violations atomic.Int32 // writer and reader together
	var shared int              // plain int: race detector assists
	var wg sync.WaitGroup
	var stop atomic.Bool

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters && !stop.Load(); i++ {
				l.RLock(r)
				inCS.Add(1)
				if writerIn.Load() {
					violations.Add(1)
				}
				_ = shared // readers read; the writer writes
				inCS.Add(-1)
				l.RUnlock(r)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			l.Lock()
			writerIn.Store(true)
			if inCS.Load() != 0 {
				violations.Add(1)
			}
			shared++
			writerIn.Store(false)
			l.Unlock()
			time.Sleep(100 * time.Microsecond)
		}
		stop.Store(true)
	}()
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reader/writer overlaps", v)
	}
	if shared != 150 {
		t.Fatalf("writer lost updates: %d", shared)
	}
}

func TestWritersSerialized(t *testing.T) {
	l := New(1, core.Immediate{})
	var ctr int
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				ctr++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if ctr != 8000 {
		t.Fatalf("ctr = %d", ctr)
	}
}

func TestWriterWaitBounded(t *testing.T) {
	// With no readers around, the writer's acquisition cost is the
	// bound wait plus the flag scan — bounded, unlike an IPI broadcast
	// to stalled cores.
	const delta = 2 * time.Millisecond
	l := New(8, core.NewFixedDelta(delta))
	start := time.Now()
	l.Lock()
	elapsed := time.Since(start)
	l.Unlock()
	if elapsed < delta/2 {
		t.Fatalf("writer did not wait out the bound: %v", elapsed)
	}
	if elapsed > 50*delta {
		t.Fatalf("writer wait unbounded: %v", elapsed)
	}
}

func BenchmarkReadSide(b *testing.B) {
	l := New(1, core.NewFixedDelta(500*time.Microsecond))
	for i := 0; i < b.N; i++ {
		l.RLock(0)
		l.RUnlock(0)
	}
}

func BenchmarkReadSideSyncRWMutex(b *testing.B) {
	var l sync.RWMutex
	for i := 0; i < b.N; i++ {
		l.RLock()
		l.RUnlock()
	}
}
