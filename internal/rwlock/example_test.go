package rwlock_test

import (
	"fmt"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/rwlock"
)

// The passive reader-writer lock: readers pay one store and one load —
// no fence, no read-modify-write — and the writer's acquisition waits
// out the visibility bound instead of broadcasting IPIs.
func ExampleNew() {
	l := rwlock.New(2, core.NewFixedDelta(200*time.Microsecond))

	l.RLock(0) // reader slot 0, fence-free
	fmt.Println("reader 0 in")
	l.RLock(1) // readers do not exclude each other
	fmt.Println("reader 1 in")
	l.RUnlock(0)
	l.RUnlock(1)

	start := time.Now()
	l.Lock() // waits out the bound, then for reader flags to drop
	fmt.Println("writer in, waited at least the bound:", time.Since(start) >= 100*time.Microsecond)
	l.Unlock()
	// Output:
	// reader 0 in
	// reader 1 in
	// writer in, waited at least the bound: true
}
