// Package rwlock implements a passive reader-writer lock on the TBTSO
// principle — the design space of Liu, Zhang and Chen's passive
// reader-writer locks [23], which the paper's §8 discusses: their
// read-side fast path is fence-free and the writer uses
// inter-processor interrupts to flush remote store buffers. On TBTSO
// the writer instead waits out the visibility bound, so no OS
// machinery is needed and the writer's wait is bounded.
//
// Read side (fast path): raise the per-reader flag — no fence, no
// atomic read-modify-write — and check for a writer. Write side (slow
// path): publish intent, fence, wait out the bound (now every earlier
// reader flag is visible), then wait for raised flags to drop.
//
// The machine-checked version (internal/machalg/rwlock.go) demonstrates
// that the Δ wait is exactly what makes this sound: on a plain-TSO
// machine the writer enters over a live reader whose flag is still
// buffered.
package rwlock

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tbtso/internal/core"
	"tbtso/internal/fence"
	"tbtso/internal/vclock"
)

// PRWLock is a passive reader-writer lock for a fixed set of reader
// slots. Reader methods take the caller's slot (0..n-1); each slot may
// be used by one goroutine at a time. Any goroutine may write-lock.
type PRWLock struct {
	readers []readerSlot
	writer  atomic.Uint32
	_       [fence.CacheLine - 4]byte
	wmu     sync.Mutex
	wfence  fence.Line
	bound   core.Bound
}

type readerSlot struct {
	flag atomic.Uint32
	_    [fence.CacheLine - 4]byte
}

// New creates a lock with n reader slots over the given bound.
func New(n int, bound core.Bound) *PRWLock {
	return &PRWLock{readers: make([]readerSlot, n), bound: bound}
}

// RLock enters the read side on slot r: one store and one load on the
// fast path, no fence, no read-modify-write.
//
//tbtso:fencefree
func (l *PRWLock) RLock(r int) {
	s := &l.readers[r]
	for {
		s.flag.Store(1)
		// no fence — the writer's bound wait covers this store
		if l.writer.Load() == 0 {
			return
		}
		// Writer active or pending: stand down and wait.
		s.flag.Store(0)
		for spins := 0; l.writer.Load() != 0; spins++ {
			if spins%32 == 31 {
				runtime.Gosched()
			}
		}
	}
}

// RUnlock leaves the read side on slot r.
//tbtso:fencefree
func (l *PRWLock) RUnlock(r int) {
	l.readers[r].flag.Store(0)
}

// Lock acquires the write side.
//tbtso:requires-fence
func (l *PRWLock) Lock() {
	l.wmu.Lock()
	l.writer.Store(1)
	l.wfence.Full()
	// Every reader flag raised before our publication became visible is
	// itself visible once the bound passes — the IPI replacement.
	l.bound.Wait(vclock.Now())
	for i := range l.readers {
		for spins := 0; l.readers[i].flag.Load() != 0; spins++ {
			if spins%32 == 31 {
				runtime.Gosched()
			}
		}
	}
}

// Unlock releases the write side.
func (l *PRWLock) Unlock() {
	l.writer.Store(0)
	l.wmu.Unlock()
}

// Slots reports the number of reader slots.
func (l *PRWLock) Slots() int { return len(l.readers) }
