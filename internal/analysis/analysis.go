// Package analysis implements tbtso-lint: a static analyzer that
// enforces the repository's fence discipline and modeled-memory
// discipline at compile time.
//
// The paper's contribution is an argument about WHERE fences may be
// elided: the fence-free fast paths (FFHP protect, FFBL owner lock)
// omit them, while every baseline and every slow path keeps them. The
// repository checks that discipline dynamically — on the TBTSO abstract
// machine, in litmus tests and in stress tests — but fence placement is
// a property of the program text, so it can also be checked statically,
// in the spirit of property-driven fence insertion (Joshi & Kroening)
// and TSO reduction/abstraction reasoning (Bouajjani et al.). This
// package does that with four checks, driven by magic comments:
//
//	//tbtso:fencefree       the function (and everything it calls inside
//	                        this module) must not issue a fence
//	//tbtso:requires-fence  the function must issue at least one fence,
//	                        on every path (per-block approximation)
//	//tbtso:ignore <check> <justification>
//	                        suppress one check here, with a reason
//
// The four checks (see docs/ANALYSIS.md for the full grammar and the
// mapping to the paper's §4–§5 arguments):
//
//	fencefree       an annotated function must not call fence.Line.Full,
//	                fence.Lines.Full or tso.Thread.Fence, directly or
//	                transitively through same-module callees.
//	requires-fence  an annotated function must contain a fence call on
//	                every path; bodies with no fence at all are flagged
//	                outright, bodies that fence only on some paths get a
//	                weaker "not on every path" diagnostic.
//	escape          inside machine code (any function taking a
//	                *tso.Thread), reads/writes of shared Go variables
//	                that bypass the Thread Load/Store/CAS/FetchAdd API
//	                are flagged: such accesses are silently exempt from
//	                the Δ-bound model the code claims to run under.
//	mixed           a struct field or package variable accessed both via
//	                sync/atomic and via plain loads/stores anywhere in
//	                the module — the latent-race pattern the dynamic
//	                race detector only catches when the schedule
//	                cooperates.
//
// Everything here is stdlib-only (go/parser, go/ast, go/types,
// go/importer); there is no dependency on golang.org/x/tools.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Check names, used in diagnostics and in //tbtso:ignore comments.
const (
	CheckFenceFree     = "fencefree"
	CheckRequiresFence = "requires-fence"
	CheckEscape        = "escape"
	CheckMixed         = "mixed"
	// CheckAnnotation reports misuse of the annotation grammar itself
	// (unknown check names, ignores without a justification). It cannot
	// be suppressed.
	CheckAnnotation = "annotation"
)

// AllChecks lists the suppressible checks in reporting order.
var AllChecks = []string{CheckFenceFree, CheckRequiresFence, CheckEscape, CheckMixed}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Analyzer runs the checks over a set of loaded packages. The zero
// value with Packages set is ready to use.
type Analyzer struct {
	// Packages are the packages under analysis. They must all come from
	// one Loader so that type identities agree across packages.
	Packages []*Package
	// Checks, if non-empty, restricts the run to the named checks
	// (annotation-grammar errors are always reported).
	Checks []string

	facts *factTable
}

// Run executes the configured checks and returns the surviving
// diagnostics sorted by position. Suppressed diagnostics (covered by a
// justified //tbtso:ignore) are dropped; unjustified or malformed
// ignores are themselves reported under the "annotation" check.
func (a *Analyzer) Run() []Diagnostic {
	a.facts = collectFacts(a.Packages)

	var diags []Diagnostic
	if a.enabled(CheckFenceFree) || a.enabled(CheckRequiresFence) {
		diags = append(diags, checkFenceDiscipline(a.Packages, a.facts)...)
	}
	if a.enabled(CheckEscape) {
		diags = append(diags, checkEscape(a.Packages, a.facts)...)
	}
	if a.enabled(CheckMixed) {
		diags = append(diags, checkMixed(a.Packages, a.facts)...)
	}
	diags = append(diags, a.facts.annotationErrors...)

	kept := diags[:0]
	for _, d := range diags {
		if d.Check != CheckAnnotation && a.facts.suppressed(d.Check, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if kept[i].Check != kept[j].Check {
			return kept[i].Check < kept[j].Check
		}
		// Full tiebreak on the message text so the order is a pure
		// function of the diagnostic set, independent of map iteration
		// anywhere upstream.
		return kept[i].Message < kept[j].Message
	})
	return kept
}

func (a *Analyzer) enabled(check string) bool {
	if len(a.Checks) == 0 {
		return true
	}
	for _, c := range a.Checks {
		if c == check {
			return true
		}
	}
	return false
}

// ValidCheck reports whether name is a known suppressible check name
// (or the "all" wildcard accepted by //tbtso:ignore).
func ValidCheck(name string) bool {
	if name == "all" {
		return true
	}
	for _, c := range AllChecks {
		if c == name {
			return true
		}
	}
	return false
}

// ParseCheckList parses a comma-separated -check flag value.
func ParseCheckList(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !ValidCheck(part) || part == "all" {
			if part == "all" {
				return nil, nil // all checks
			}
			return nil, fmt.Errorf("unknown check %q (valid: %s)", part, strings.Join(AllChecks, ", "))
		}
		out = append(out, part)
	}
	return out, nil
}
