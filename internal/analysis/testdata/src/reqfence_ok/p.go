// Package reqfence_ok holds requires-fence functions the check must
// accept: a straight-line fence, a fence on both branches of an if, and
// a call into another //tbtso:requires-fence contract.
package reqfence_ok

import "tbtso/internal/fence"

type S struct {
	f *fence.Lines
	x int
}

// straight fences unconditionally.
//
//tbtso:requires-fence
func (s *S) straight() {
	s.x = 1
	s.f.Full(0)
}

// bothBranches fences on every path through the if.
//
//tbtso:requires-fence
func (s *S) bothBranches(c bool) {
	if c {
		s.f.Full(0)
	} else {
		s.f.Full(1)
	}
}

// viaContract delegates to a function whose annotation guarantees the
// fence, which the check accepts as a sure fence.
//
//tbtso:requires-fence
func (s *S) viaContract() {
	s.straight()
}

// viaHelper delegates to an unannotated helper whose body provably
// fences on every path (computed transitively).
//
//tbtso:requires-fence
func (s *S) viaHelper() {
	s.helper()
}

func (s *S) helper() {
	s.f.Full(0)
}
