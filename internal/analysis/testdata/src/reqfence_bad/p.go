// Package reqfence_bad violates //tbtso:requires-fence both ways: a
// body with no fence at all (the hard failure) and a body that fences
// on only one branch (the per-block path failure).
package reqfence_bad

import "tbtso/internal/fence"

type S struct {
	f *fence.Lines
	x int
}

// noFence promises a fence and never issues one.
//
//tbtso:requires-fence
func (s *S) noFence() { // want requires-fence "contains no fence call at all"
	s.x = 1
}

// oneBranch fences only when c holds, so the fall-through path breaks
// the contract.
//
//tbtso:requires-fence
func (s *S) oneBranch(c bool) { // want requires-fence "reaches the end without a fence"
	if c {
		s.f.Full(0)
	}
}

// loopOnly fences inside a loop; loops may run zero times, so the
// per-block approximation rejects it.
//
//tbtso:requires-fence
func (s *S) loopOnly(n int) { // want requires-fence "reaches the end without a fence"
	for i := 0; i < n; i++ {
		s.f.Full(0)
	}
}
