// Package mixed_ok accesses shared words consistently: either always
// through sync/atomic package functions, or through atomic wrapper
// types that make mixing impossible by construction.
package mixed_ok

import "sync/atomic"

var n uint64

func bump() {
	atomic.AddUint64(&n, 1)
}

func read() uint64 {
	return atomic.LoadUint64(&n)
}

type stats struct {
	wrapped atomic.Uint64
	local   uint64 // plainly accessed only, never atomic
}

func (s *stats) bump() {
	s.wrapped.Add(1)
	s.local++
}

func (s *stats) read() uint64 {
	return s.wrapped.Load() + s.local
}
