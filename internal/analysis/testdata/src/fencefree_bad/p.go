// Package fencefree_bad violates //tbtso:fencefree in the three ways
// the check can catch: a direct fence call, a transitive one through a
// same-module helper, and a call into a //tbtso:requires-fence
// contract.
package fencefree_bad

import "tbtso/internal/fence"

type T struct {
	f *fence.Line
	x int
}

// bad calls the fence primitive directly.
//
//tbtso:fencefree
func (t *T) bad() {
	t.f.Full() // want fencefree "calls the fence primitive"
}

// badTransitive reaches the fence through a helper.
//
//tbtso:fencefree
func (t *T) badTransitive() {
	t.helper() // want fencefree "which calls the fence primitive"
}

func (t *T) helper() {
	t.x++
	t.f.Full()
}

// slow carries the opposite contract.
//
//tbtso:requires-fence
func (t *T) slow() {
	t.f.Full()
}

// badContract calls a function whose annotation promises a fence.
//
//tbtso:fencefree
func (t *T) badContract() {
	t.slow() // want fencefree "is annotated //tbtso:requires-fence"
}
