// Package mixed_bad mixes sync/atomic and plain access to the same
// field and the same package-level variable — the latent data race the
// mixed check exists for.
package mixed_bad

import "sync/atomic"

type counter struct {
	n uint64
}

var c counter

func bumpField() {
	atomic.AddUint64(&c.n, 1)
}

func readFieldPlainly() uint64 {
	return c.n // want mixed "field n is accessed atomically"
}

var hits uint64

func bumpHits() {
	atomic.AddUint64(&hits, 1)
}

func readHitsPlainly() uint64 {
	return hits // want mixed "package-level variable hits is accessed atomically"
}
