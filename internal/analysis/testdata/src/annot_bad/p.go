// Package annot_bad misuses the annotation grammar itself; every
// mistake must surface as an unsuppressible "annotation" diagnostic.
package annot_bad

var x int

func f() {
	// want+1 annotation "has no justification"
	//tbtso:ignore escape
	x = 1
}

func g() {
	// want+1 annotation "needs a known check name"
	//tbtso:ignore bogus because reasons
	x = 2
}

//tbtso:frobnicate
func h() { // want-1 annotation "unknown directive"
	x = 3
}

//tbtso:fencefree
//tbtso:requires-fence
func clash() { // want annotation "annotated both" requires-fence "contains no fence call at all"
	x = 4
}
