// Package fencefree_ok holds fence-free functions the check must
// accept: plain stores, calls into helpers that never fence, and a call
// through a function value (statically unresolvable, skipped by
// design).
package fencefree_ok

import "tbtso/internal/fence"

type T struct {
	f  *fence.Line
	x  int
	cb func()
}

// fast is the paper's fast-path shape: a plain store, nothing else.
//
//tbtso:fencefree
func (t *T) fast() {
	t.x = 1
}

// fastCalls may call helpers as long as no fence is reachable.
//
//tbtso:fencefree
func (t *T) fastCalls() {
	t.bump()
}

func (t *T) bump() {
	t.x++
}

// fastIndirect calls through a function value; such calls are not
// statically resolvable and the check documents that it skips them.
//
//tbtso:fencefree
func (t *T) fastIndirect() {
	t.cb()
}

// fenced uses the fence but carries no fencefree annotation, so the
// check has nothing to say about it.
func (t *T) fenced() {
	t.f.Full()
}
