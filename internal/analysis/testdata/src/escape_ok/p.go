// Package escape_ok holds machine code the escape check must accept:
// all shared-memory traffic through the *tso.Thread API, reads of
// immutable configuration through parameters, pure locals, and one
// deliberate Go-side counter behind a justified ignore.
package escape_ok

import "tbtso/internal/tso"

type shared struct {
	base tso.Addr
}

// bump reads configuration through its parameter (allowed) and touches
// shared memory only through the Thread API.
func bump(th *tso.Thread, s *shared) {
	v := th.Load(s.base)
	scratch := v + 1
	th.Store(s.base, scratch)
}

var traces int

// instrumented keeps a Go-side counter next to machine code; the
// justified ignore is the sanctioned escape hatch and must suppress the
// diagnostic for the whole function.
//
//tbtso:ignore escape traces is host-side instrumentation read only after the run ends
func instrumented(th *tso.Thread) {
	traces++
	th.Yield()
}
