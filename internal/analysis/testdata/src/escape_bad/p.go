// Package escape_bad commits every machine-escape the check catches:
// writing and reading package-level state, writing a captured variable,
// writing through a pointer parameter, and using sync/atomic — all from
// inside machine code (functions taking a *tso.Thread).
package escape_bad

import (
	"sync/atomic"

	"tbtso/internal/tso"
)

var gcount uint64

func writeGlobal(th *tso.Thread) {
	gcount++ // want escape "writes package-level variable gcount"
	th.Yield()
}

func readGlobal(th *tso.Thread) tso.Word {
	th.Yield()
	return tso.Word(gcount) // want escape "reads package-level variable gcount"
}

func captured(m *tso.Machine) {
	sum := 0
	m.Spawn("w", func(th *tso.Thread) {
		sum++ // want escape "captured from an enclosing function"
		th.Yield()
	})
	_ = sum
}

func derefParam(th *tso.Thread, out *int) {
	th.Yield()
	*out = 1 // want escape "reached through parameter out"
}

func atomicInMachine(th *tso.Thread) {
	var n uint64
	th.Yield()
	atomic.AddUint64(&n, 1) // want escape "uses sync/atomic"
}
