package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path, e.g. "tbtso/internal/smr"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of the enclosing Go module
// from source, resolving module-internal imports itself (lazily, with
// cycle detection) and delegating everything else to the toolchain's
// export-data importer, with the slower source importer as a fallback.
// All packages share one FileSet and one type-identity universe, which
// is what lets the checks compare types.Object values across packages.
type Loader struct {
	ModuleRoot string // directory containing go.mod
	ModulePath string // module path declared in go.mod

	fset    *token.FileSet
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
	gc      types.Importer      // export-data importer for non-module packages
	src     types.Importer      // source importer fallback
}

// NewLoader locates the module containing dir (walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		gc:         importer.Default(),
		src:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// Fset returns the shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module-internal paths load from
// source; everything else goes to the export-data importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	tp, err := l.gc.Import(path)
	if err != nil {
		tp, err = l.src.Import(path)
	}
	return tp, err
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// load parses and type-checks one module package directory (test files
// excluded — the discipline under analysis lives in the shipped code).
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tp, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tp, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Load resolves the given patterns to packages. Supported patterns:
// "./..." (every package under the module root), a relative directory
// ("./internal/smr" or "internal/smr"), or a full import path inside
// the module. Directories named testdata, vendor, or starting with "."
// or "_" are skipped by the wildcard, matching go tooling conventions.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []*Package
	add := func(path, dir string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		p, err := l.load(path, dir)
		if err != nil {
			return err
		}
		out = append(out, p)
		return nil
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.packageDirs()
			if err != nil {
				return nil, err
			}
			for _, dir := range dirs {
				rel, _ := filepath.Rel(l.ModuleRoot, dir)
				path := l.ModulePath
				if rel != "." {
					path = l.ModulePath + "/" + filepath.ToSlash(rel)
				}
				if err := add(path, dir); err != nil {
					return nil, err
				}
			}
		default:
			dir := pat
			if dirAbs, ok := l.dirFor(pat); ok {
				dir = dirAbs
			} else if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			}
			rel, err := filepath.Rel(l.ModuleRoot, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("analysis: %s is outside module %s", pat, l.ModulePath)
			}
			path := l.ModulePath
			if rel != "." {
				path = l.ModulePath + "/" + filepath.ToSlash(rel)
			}
			if err := add(path, dir); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadModule locates the module containing dir and loads the packages
// matching patterns in one shared type-checking pass, returning the
// packages and the module root. It is the single entry point the CLIs
// (tbtso-lint, tbtso-verify) share: one invocation pays for exactly one
// importer/type-check setup, and every check or extraction that follows
// runs over the same []*Package, so type identities agree everywhere.
func LoadModule(dir string, patterns ...string) ([]*Package, string, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, "", err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, "", err
	}
	return pkgs, l.ModuleRoot, nil
}

// packageDirs walks the module tree collecting directories that contain
// at least one non-test Go file.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleRoot &&
				(name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}
