package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// checkMixed flags struct fields and package-level variables that are
// accessed both through sync/atomic functions (atomic.LoadUint64(&x.f),
// atomic.AddInt64(&v, 1), ...) and through plain loads/stores. Mixing
// the two is the classic latent data race: the plain access is free to
// be torn, cached or reordered, and the Go race detector only reports
// it when the schedule happens to exhibit the race. The checks runs
// over the whole module; the fix is to make every access atomic (or,
// for genuinely pre-publication initialization, to suppress the plain
// site with a justified //tbtso:ignore mixed comment).
//
// Fields wrapped in atomic.Uint64-style types are immune by
// construction and never flagged — this check exists for the old-style
// sync/atomic call pattern.
func checkMixed(pkgs []*Package, ft *factTable) []Diagnostic {
	_ = ft
	type access struct {
		pos token.Position
	}
	atomicUses := make(map[*types.Var][]access) // first atomic site(s)
	plainUses := make(map[*types.Var][]access)

	for _, p := range pkgs {
		// Operands of &x passed to sync/atomic calls, by position of
		// the inner expression, so the general walk can skip them.
		atomicOperand := make(map[token.Pos]bool)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(p, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					target := ast.Unparen(un.X)
					var v *types.Var
					switch t := target.(type) {
					case *ast.SelectorExpr:
						v = fieldVar(p, t)
					case *ast.Ident:
						v = globalVar(p, t)
					}
					if v != nil {
						atomicOperand[target.Pos()] = true
						atomicUses[v] = append(atomicUses[v], access{p.Fset.Position(target.Pos())})
					}
				}
				return true
			})
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var v *types.Var
				switch e := n.(type) {
				case *ast.SelectorExpr:
					if atomicOperand[e.Pos()] {
						return true // the atomic site itself
					}
					v = fieldVar(p, e)
				case *ast.Ident:
					if atomicOperand[e.Pos()] {
						return true
					}
					v = globalVar(p, e)
				default:
					return true
				}
				if v != nil && isMixableType(v.Type()) {
					plainUses[v] = append(plainUses[v], access{p.Fset.Position(n.Pos())})
				}
				return true
			})
		}
	}

	var diags []Diagnostic
	for v, plains := range plainUses {
		atomics, ok := atomicUses[v]
		if !ok {
			continue
		}
		kind := "package-level variable"
		if v.IsField() {
			kind = "field"
		}
		for _, pl := range plains {
			diags = append(diags, Diagnostic{
				Pos:   pl.pos,
				Check: CheckMixed,
				Message: fmt.Sprintf("%s %s is accessed atomically via sync/atomic (e.g. at %s) but plainly here; mixed atomic/plain access is a latent data race",
					kind, v.Name(), atomics[0].pos),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return diags
}

// isAtomicCall reports whether call is a sync/atomic package function.
func isAtomicCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	// Package functions only: methods of atomic.Uint64 etc. take no
	// address argument and cannot be mixed with plain access.
	sig, _ := fn.Type().(*types.Signature)
	return fn.Pkg().Path() == "sync/atomic" && (sig == nil || sig.Recv() == nil)
}

// fieldVar resolves a selector to the struct field it denotes, if any.
func fieldVar(p *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// Qualified package-level variable (pkg.Var).
	if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && !v.IsField() && isGlobal(v) {
		return v
	}
	return nil
}

// globalVar resolves a bare identifier to a package-level variable.
func globalVar(p *Package, id *ast.Ident) *types.Var {
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() || !isGlobal(v) {
		return nil
	}
	return v
}

func isGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isMixableType restricts the check to types sync/atomic operates on.
func isMixableType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsUnsigned) != 0
	case *types.Pointer:
		return true
	}
	return false
}
