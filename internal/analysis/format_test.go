package analysis

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDiagnosticsJSONGolden locks down the -format=json wire form: the
// mixed_bad and annot_bad golden packages are analyzed together and the
// encoded diagnostics must match testdata/diags.golden.json byte for
// byte (run with -update to regenerate). Paths are module-relative, so
// the golden file is stable across checkouts; the order is
// Analyzer.Run's fully deterministic (file, line, col, check, message)
// order.
func TestDiagnosticsJSONGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(
		filepath.Join("internal", "analysis", "testdata", "src", "mixed_bad"),
		filepath.Join("internal", "analysis", "testdata", "src", "annot_bad"),
	)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyzer{Packages: pkgs}
	diags := a.Run()
	if len(diags) == 0 {
		t.Fatal("golden packages produced no diagnostics; the fixture is broken")
	}

	var buf bytes.Buffer
	if err := WriteDiagnosticsJSON(&buf, diags, loader.ModuleRoot); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "diags.golden.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/analysis -run JSONGolden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON diagnostics drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestDiagnosticsJSONEmpty pins the no-findings encoding: an empty
// array, never null — CI consumers parse the output unconditionally.
func TestDiagnosticsJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDiagnosticsJSON(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty diagnostics encode as %q, want %q", got, "[]\n")
	}
}
