package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden packages under testdata/src each exercise one check, one
// positive (violations present) and one negative (clean) per check,
// plus annot_bad for the annotation grammar itself. Expectations are
// written in the sources as want comments:
//
//	// want <check> "substring"
//	// want+1 <check> "substring"      (diagnostic expected one line below)
//	// want-1 <check> "substring"      (one line above)
//
// Several <check> "substring" pairs may follow one want marker when a
// single line produces several diagnostics. A diagnostic matches a want
// iff file, line and check are equal and the message contains the
// substring; the test demands a perfect bijection between the two sets.
var goldenPackages = []string{
	"fencefree_bad",
	"fencefree_ok",
	"reqfence_bad",
	"reqfence_ok",
	"escape_bad",
	"escape_ok",
	"mixed_bad",
	"mixed_ok",
	"annot_bad",
}

var (
	wantRe = regexp.MustCompile(`//\s*want([+-]\d+)?\s+(.+)$`)
	pairRe = regexp.MustCompile(`([a-z-]+)\s+"([^"]*)"`)
)

type want struct {
	file    string // base name
	line    int
	check   string
	substr  string
	matched bool
}

// parseWants extracts want expectations from one loaded package.
func parseWants(t *testing.T, p *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off := 0
					for _, r := range m[1][1:] {
						off = off*10 + int(r-'0')
					}
					if m[1][0] == '-' {
						off = -off
					}
					line += off
				}
				pairs := pairRe.FindAllStringSubmatch(m[2], -1)
				if len(pairs) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, pr := range pairs {
					wants = append(wants, &want{
						file:   filepath.Base(pos.Filename),
						line:   line,
						check:  pr[1],
						substr: pr[2],
					})
				}
			}
		}
	}
	return wants
}

func TestGolden(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, name := range goldenPackages {
		t.Run(name, func(t *testing.T) {
			pkgs, err := l.Load("internal/analysis/testdata/src/" + name)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			p := pkgs[0]
			wants := parseWants(t, p)
			if strings.HasSuffix(name, "_bad") && len(wants) == 0 {
				t.Fatalf("positive package %s declares no wants", name)
			}
			a := &Analyzer{Packages: pkgs}
			diags := a.Run()
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if w.matched || w.file != filepath.Base(d.Pos.Filename) ||
						w.line != d.Pos.Line || w.check != d.Check ||
						!strings.Contains(d.Message, w.substr) {
						continue
					}
					w.matched = true
					matched = true
					break
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing diagnostic: %s:%d [%s] containing %q",
						w.file, w.line, w.check, w.substr)
				}
			}
		})
	}
}
