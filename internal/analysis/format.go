package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// DiagnosticJSON is the stable wire form of one diagnostic, emitted by
// tbtso-lint -format=json for machine consumption in CI.
type DiagnosticJSON struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// EncodeDiagnostics converts diagnostics to the wire form. When root is
// non-empty, filenames under it are made root-relative (with forward
// slashes), so the output is stable across checkouts.
func EncodeDiagnostics(diags []Diagnostic, root string) []DiagnosticJSON {
	recs := make([]DiagnosticJSON, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		msg := d.Message
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) &&
				rel != ".." && !hasDotDotPrefix(rel) {
				file = filepath.ToSlash(rel)
			}
			// Messages sometimes cite other positions (the mixed check's
			// "e.g. at <pos>"); strip the root there too so the records
			// are checkout-independent.
			msg = strings.ReplaceAll(msg, root+string(filepath.Separator), "")
		}
		recs = append(recs, DiagnosticJSON{
			File:    file,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: msg,
		})
	}
	return recs
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// WriteDiagnosticsJSON writes the diagnostics as an indented JSON array
// (an empty array, never null, when there are none). The order is the
// caller's — Analyzer.Run already returns a fully deterministic order.
func WriteDiagnosticsJSON(w io.Writer, diags []Diagnostic, root string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(EncodeDiagnostics(diags, root))
}
