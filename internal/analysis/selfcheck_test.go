package analysis

import "testing"

// TestRepoIsLintClean runs the full analyzer over the whole module —
// the same run `make lint` performs — so a fence-discipline or
// modeled-memory regression fails `go test ./...`, not just CI's lint
// step. Suppressions must be justified //tbtso:ignore comments in the
// source, never exclusions here.
func TestRepoIsLintClean(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	a := &Analyzer{Packages: pkgs}
	for _, d := range a.Run() {
		t.Errorf("%s", d)
	}
}
