// Package pairs holds small, self-contained verification pairs for the
// extract package's tests: the store-buffering square in several
// disciplines (atomics, //tbtso:shared plain variables, a planted
// too-short wait, and a plain-TSO negative control). Each pair is the
// minimal shape of the paper's flag principle — a fence-free
// store→load writer against an announcing, fencing, waiting reader.
package pairs

import (
	"sync/atomic"

	"tbtso/internal/core"
	"tbtso/internal/fence"
)

// The adequate-wait pair: reader announces, fences, waits out the
// bound. Must certify at every Δ and be violated on plain TSO.
//
//tbtso:property pair=sb forbid writer.y == 0 && reader.x == 0

var x, y atomic.Uint64

//tbtso:verify pair=sb role=writer
//tbtso:fencefree
func SBWriter() uint64 {
	x.Store(1)
	return y.Load()
}

//tbtso:verify pair=sb role=reader
//tbtso:requires-fence
func SBReader(f *fence.Line, b core.Bound, t0 int64) uint64 {
	y.Store(1)
	f.Full()
	b.Wait(t0)
	return x.Load()
}

// The same square over plain (non-atomic) package variables designated
// //tbtso:shared — exercising the designation path of the extractor.
//
//tbtso:property pair=sb-shared forbid writer.sy == 0 && reader.sx == 0

//tbtso:shared
var sx uint64

//tbtso:shared
var sy uint64

//tbtso:verify pair=sb-shared role=writer
func SharedWriter() uint64 {
	sx = 1
	return sy
}

//tbtso:verify pair=sb-shared role=reader
func SharedReader(f *fence.Line, b core.Bound, t0 int64) uint64 {
	sy = 1
	f.Full()
	b.Wait(t0)
	return sx
}

// The planted inadequate wait: the reader only waits one transition
// regardless of Δ, so large bounds admit the violation — the pair
// decertifies once the sweep climbs past the program length.
//
//tbtso:property pair=sb-shortwait forbid writer.wy == 0 && reader.wx == 0

var wx, wy atomic.Uint64

//tbtso:verify pair=sb-shortwait role=writer
func ShortWaitWriter() uint64 {
	wx.Store(1)
	return wy.Load()
}

//tbtso:verify pair=sb-shortwait role=reader
func ShortWaitReader(f *fence.Line, b core.Bound, t0 int64) uint64 {
	wy.Store(1)
	f.Full()
	b.Wait(t0) //tbtso:model wait=1
	return wx.Load()
}

// The plain-TSO negative control: no wait at all. Refuted at Δ=0; the
// fence-suggestion search should recover the writer-side fence.
//
//tbtso:property pair=sb-tso expect=fail forbid writer.ty == 0 && reader.tx == 0

var tx, ty atomic.Uint64

//tbtso:verify pair=sb-tso role=writer
func TSOWriter() uint64 {
	tx.Store(1)
	return ty.Load()
}

//tbtso:verify pair=sb-tso role=reader
func TSOReader(f *fence.Line) uint64 {
	ty.Store(1)
	f.Full()
	return tx.Load()
}
