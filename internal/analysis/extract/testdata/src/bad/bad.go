// Package bad holds deliberately unmodelable annotated functions: the
// extract tests assert that each is conservatively REJECTED with a
// diagnostic naming the construct, never silently mistranslated.
package bad

import "sync/atomic"

//tbtso:property pair=bad forbid writer.v == 0 && reader.v == 0

var v atomic.Uint64

// Conditional control flow over a shared access: the abstract programs
// are straight-line, so this must be rejected.
//
//tbtso:verify pair=bad role=writer
func CondWriter() uint64 {
	if v.Load() == 0 {
		v.Store(1)
	}
	return v.Load()
}

// A channel send carrying a shared load: unmodelable statement kind.
//
//tbtso:verify pair=bad role=reader
func ChannelReader(ch chan uint64) uint64 {
	ch <- v.Load()
	return v.Load()
}

//tbtso:property pair=bad-nonconst forbid writer.v == 1

// A store of a non-constant value with no //tbtso:model val directive.
//
//tbtso:verify pair=bad-nonconst role=writer
func NonConstWriter(n uint64) uint64 {
	v.Store(n)
	return v.Load()
}

//tbtso:verify pair=bad-nonconst role=reader
func OKReader() uint64 {
	return v.Load()
}
