package extract

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"

	"tbtso/internal/fuzz"
)

// SweepProgressKind is the progress artifact's "kind" field.
const SweepProgressKind = "verify-progress"

// SweepProgress records, per pair, the (pair, Δ) sweep cells an
// interrupted certification run completed, so a resumed run
// re-certifies only the unfinished cells. It is keyed twice: the
// document-level OptionsHash binds the sweep shape and state budget,
// and each pair's Fingerprint binds the extracted program and property
// — progress for a pair whose source (and hence program) changed since
// the interruption is silently discarded rather than trusted.
type SweepProgress struct {
	Kind        string                  `json:"kind"`
	OptionsHash string                  `json:"options_hash"`
	Pairs       map[string]PairProgress `json:"pairs"`
}

// PairProgress is one pair's completed prefix of the sweep: Points[i]
// is the cell at Δ=i (index 0 is the plain-TSO leg).
type PairProgress struct {
	Fingerprint string       `json:"fingerprint"`
	Points      []SweepPoint `json:"points"`
}

// NewSweepProgress returns an empty progress document for opt.
func NewSweepProgress(opt Options) *SweepProgress {
	return &SweepProgress{
		Kind:        SweepProgressKind,
		OptionsHash: opt.ProgressHash(),
		Pairs:       map[string]PairProgress{},
	}
}

// ProgressHash fingerprints the options that determine sweep-point
// content: the sweep shape and the exploration budget. Workers and
// Metrics are excluded (worker-count invariance), as is MachSeeds (it
// only drives the post-sweep machine-witness search, which never
// resumes partially).
func (o Options) ProgressHash() string {
	o = o.withDefaults()
	blob, err := json.Marshal(struct {
		MaxDelta  int `json:"max_delta"`
		MaxStates int `json:"max_states"`
	}{o.MaxDelta, o.MaxStates})
	if err != nil {
		panic("extract: marshaling progress key: " + err.Error())
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(blob))
}

// Fingerprint identifies the pair content a sweep ran against: the
// property and the instantiated program (wait=1 instantiation; the
// other waits are derived from it and Δ).
func Fingerprint(p *Pair) string {
	doc := struct {
		Property []string         `json:"property"`
		Program  fuzz.ProgramJSON `json:"program"`
		Expect   bool             `json:"expect_fail"`
	}{p.PropertyStrings(), fuzz.EncodeProgram(p.Instantiate(1)), p.ExpectFail}
	blob, err := json.Marshal(doc)
	if err != nil {
		panic("extract: marshaling pair fingerprint: " + err.Error())
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(blob))
}

// Record stores a pair's completed sweep prefix.
func (sp *SweepProgress) Record(p *Pair, points []SweepPoint) {
	if len(points) == 0 {
		return
	}
	sp.Pairs[p.Name] = PairProgress{Fingerprint: Fingerprint(p), Points: points}
}

// Lookup returns the completed sweep prefix recorded for the pair, or
// nil when none was recorded or the pair's content has changed since.
func (sp *SweepProgress) Lookup(p *Pair) []SweepPoint {
	pp, ok := sp.Pairs[p.Name]
	if !ok || pp.Fingerprint != Fingerprint(p) {
		return nil
	}
	return pp.Points
}

// WriteSweepProgress atomically persists the document (temp + rename).
func WriteSweepProgress(path string, sp *SweepProgress) error {
	blob, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadSweepProgress loads a progress document for a resume under opt.
// A document written under different sweep options is refused — its
// cells would not match the resumed sweep's.
func ReadSweepProgress(path string, opt Options) (*SweepProgress, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sp SweepProgress
	if err := json.Unmarshal(blob, &sp); err != nil {
		return nil, fmt.Errorf("extract: parsing sweep progress %s: %w", path, err)
	}
	if sp.Kind != SweepProgressKind {
		return nil, fmt.Errorf("extract: %s: artifact kind %q, want %q", path, sp.Kind, SweepProgressKind)
	}
	if want := opt.ProgressHash(); sp.OptionsHash != want {
		return nil, fmt.Errorf("extract: sweep progress %s was written under different options (progress %s, resume %s); refusing to reuse its cells",
			path, sp.OptionsHash, want)
	}
	if sp.Pairs == nil {
		sp.Pairs = map[string]PairProgress{}
	}
	return &sp, nil
}
