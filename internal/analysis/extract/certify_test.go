package extract

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCertifyRealPairs runs the full certification of the real
// protocol pairs — the same verdicts tbtso-verify checks against the
// committed certificates in certs/.
func TestCertifyRealPairs(t *testing.T) {
	ex := Extract(load(t, "internal/smr", "internal/lock", "internal/machalg"))
	want := map[string]string{
		"ffhp":      StatusCertified,
		"ffbl":      StatusCertified,
		"ffbl-mach": StatusCertified,
		"ffbl-tso":  StatusRefuted,
	}
	for name, status := range want {
		p := pairByName(t, ex, name)
		rep, err := Certify(p, Options{MachSeeds: 8})
		if err != nil {
			t.Errorf("certify %s: %v", name, err)
			continue
		}
		c := rep.Cert
		if c.Status != status {
			t.Errorf("pair %s: status %s, want %s", name, c.Status, status)
		}
		if !rep.Ok() {
			t.Errorf("pair %s: verdict does not match expectation", name)
		}
		if status == StatusCertified {
			if c.CertifiedDelta != 1 {
				t.Errorf("pair %s: certified at Δ=%d, want 1 (TBTSO[1] is nearly SC)", name, c.CertifiedDelta)
			}
			if c.TSO.Holds {
				t.Errorf("pair %s: property holds on plain TSO; certificate would be vacuous", name)
			}
			for _, pt := range c.Sweep {
				if !pt.Holds {
					t.Errorf("pair %s: violated at swept Δ=%d", name, pt.Delta)
				}
				if pt.Wait != pt.Delta+1 {
					t.Errorf("pair %s: Δ=%d instantiated wait=%d, want Δ+1", name, pt.Delta, pt.Wait)
				}
			}
		}
		if status == StatusRefuted {
			if rep.Cex == nil {
				t.Fatalf("pair %s: refuted without a counterexample", name)
			}
			if rep.Cex.Outcome == "" || !p.Forbidden(rep.Cex.Outcome) {
				t.Errorf("pair %s: counterexample outcome %q is not forbidden", name, rep.Cex.Outcome)
			}
			if err := rep.Cex.Replay(p, Options{}); err != nil {
				t.Errorf("pair %s: counterexample does not replay: %v", name, err)
			}
		}
	}
}

// TestCertifySymmetry asserts that the replicated-reader pair really
// explores more than one reader thread and reports the symmetry
// reduction.
func TestCertifySymmetry(t *testing.T) {
	ex := Extract(load(t, "internal/machalg"))
	p := pairByName(t, ex, "ffbl-mach")
	if p.Copies != 2 || p.Threads() != 3 {
		t.Fatalf("ffbl-mach: copies=%d threads=%d, want 2/3", p.Copies, p.Threads())
	}
	rep, err := Certify(p, Options{MachSeeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rep.Cert.Reductions {
		if r == "symmetry" {
			found = true
		}
	}
	if !found {
		t.Errorf("reductions %v missing symmetry", rep.Cert.Reductions)
	}
}

// TestCertifyTestdataPairs checks the full verdict spectrum on the
// self-contained testdata pairs: adequate wait certifies, the
// //tbtso:shared variant certifies, the planted short wait decertifies
// once the sweep climbs past the program length, and the no-wait
// negative control is refuted at Δ=0.
func TestCertifyTestdataPairs(t *testing.T) {
	ex := Extract(load(t, "internal/analysis/extract/testdata/src/pairs"))

	for _, name := range []string{"sb", "sb-shared"} {
		rep, err := Certify(pairByName(t, ex, name), Options{MachSeeds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cert.Status != StatusCertified {
			t.Errorf("pair %s: status %s, want certified", name, rep.Cert.Status)
		}
	}

	short := pairByName(t, ex, "sb-shortwait")
	rep, err := Certify(short, Options{MaxDelta: 10, MachSeeds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert.Status != StatusDecertified {
		t.Fatalf("sb-shortwait: status %s, want decertified (fixed wait=1 must fail at large Δ)", rep.Cert.Status)
	}
	if rep.Cex == nil {
		t.Fatal("sb-shortwait: decertified without a counterexample")
	}
	if rep.Cex.Delta <= 1 {
		t.Errorf("sb-shortwait: counterexample at Δ=%d; the planted wait=1 should survive small bounds", rep.Cex.Delta)
	}
	if err := rep.Cex.Replay(short, Options{}); err != nil {
		t.Errorf("sb-shortwait: counterexample does not replay: %v", err)
	}
	// Small bounds must still hold: the short wait is adequate there.
	if !rep.Cert.Sweep[0].Holds {
		t.Errorf("sb-shortwait: violated already at Δ=1; expected only large Δ to fail")
	}

	tso := pairByName(t, ex, "sb-tso")
	rep, err = Certify(tso, Options{MachSeeds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert.Status != StatusRefuted {
		t.Errorf("sb-tso: status %s, want refuted", rep.Cert.Status)
	}
}

// TestCounterexampleRoundTrip pins the JSON round-trip and the
// Perfetto trace emission for a machine-witnessed counterexample.
func TestCounterexampleRoundTrip(t *testing.T) {
	ex := Extract(load(t, "internal/analysis/extract/testdata/src/pairs"))
	p := pairByName(t, ex, "sb-tso")
	rep, err := Certify(p, Options{MachSeeds: 32})
	if err != nil {
		t.Fatal(err)
	}
	cex := rep.Cex
	if cex == nil {
		t.Fatal("no counterexample")
	}
	data, err := json.Marshal(cex)
	if err != nil {
		t.Fatal(err)
	}
	var back Counterexample
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Replay(p, Options{}); err != nil {
		t.Errorf("round-tripped counterexample does not replay: %v", err)
	}
	if cex.Policy == "" {
		t.Skip("no machine witness found; trace not applicable")
	}
	var buf bytes.Buffer
	if err := cex.PerfettoTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace map[string]any
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(buf.Bytes()) == 0 {
		t.Error("empty trace")
	}
}

// TestSuggestFences asserts the search recovers exactly the fence the
// fence-free algorithms deleted: on the no-wait SB square, the minimal
// single insertion is the writer-side fence between its store and its
// validating load.
func TestSuggestFences(t *testing.T) {
	ex := Extract(load(t, "internal/analysis/extract/testdata/src/pairs"))
	p := pairByName(t, ex, "sb-tso")
	sugs, err := SuggestFences(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions; expected the writer-side fence")
	}
	for _, s := range sugs {
		if len(s.Fences) != 1 {
			t.Errorf("suggestion %+v is not minimal (single insertion expected)", s)
		}
	}
	found := false
	for _, s := range sugs {
		f := s.Fences[0]
		if f.Role == RoleWriter && f.Index == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("suggestions %+v do not include the writer fence before its validating load", sugs)
	}

	// The certified pair is also violated on plain TSO (that is its
	// non-vacuity), so the search applies there too and recovers the
	// same deleted writer-side fence.
	sugs, err = SuggestFences(pairByName(t, ex, "sb"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, s := range sugs {
		if len(s.Fences) == 1 && s.Fences[0].Role == RoleWriter && s.Fences[0].Index == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("suggestions %+v for sb do not include the writer fence", sugs)
	}
}
