package extract

import (
	"context"
	"fmt"
	"io"

	"tbtso/internal/fuzz"
	"tbtso/internal/mc"
	"tbtso/internal/obs"
	"tbtso/internal/tso"
)

// Certification semantics. "Holds" at a bound Δ means the exhaustive
// exploration of the pair's program — scaled waits instantiated as
// Wait(Δ+1), the adequate wait of the flag principle — admits NO
// outcome satisfying the forbidden property.
//
// A normal pair CERTIFIES when it holds at every swept Δ ∈ 1..MaxDelta
// AND is violated at Δ=0 (plain, unbounded TSO). The second leg is a
// non-vacuity check: the paper's fence-free algorithms are exactly the
// ones that are WRONG on plain TSO and saved by the temporal bound, so
// a pair whose property cannot be violated even with unbounded buffers
// was not worth a certificate — the annotation is probably misdrawn
// (e.g. a fence crept into the fast path), and the tool says so rather
// than printing a vacuous "certified".
//
// An expect=fail pair (a planted negative control) must be VIOLATED at
// Δ=0; the violation is packaged as a concrete counterexample — checker
// witness outcome, a replaying machine run, and a Perfetto trace — so
// the pipeline's ability to catch a real bug stays demonstrated.

// Expectation strings in certificates.
const (
	ExpectCertify = "certify"
	ExpectFail    = "fail"
)

// Certificate statuses.
const (
	// StatusCertified: holds at every swept Δ ≥ 1, violated at Δ=0.
	StatusCertified = "certified"
	// StatusRefuted: an expect=fail pair violated at Δ=0, as planted.
	StatusRefuted = "refuted"
	// StatusDecertified: violated at some swept Δ ≥ 1 — the wait is
	// inadequate (or a fence is missing); a counterexample names it.
	StatusDecertified = "decertified"
	// StatusVacuous: holds even at Δ=0; the property does not depend on
	// the temporal bound, so the certificate would be meaningless.
	StatusVacuous = "vacuous"
	// StatusUnrefuted: an expect=fail pair that holds at Δ=0 — the
	// planted bug has disappeared.
	StatusUnrefuted = "unrefuted"
)

// SweepPoint is one explored bound.
type SweepPoint struct {
	Delta       int    `json:"delta"`
	Wait        int    `json:"wait"`
	Holds       bool   `json:"holds"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Outcomes    int    `json:"outcomes"`
	// Witness is the lexically first forbidden outcome when !Holds.
	Witness string `json:"witness,omitempty"`
}

// Certificate is the machine-readable verdict for one pair. It embeds
// everything needed to audit it: the property, the abstract program
// with its source provenance, the variable/register naming, the sweep
// results and the reductions in effect.
type Certificate struct {
	Pair       string   `json:"pair"`
	Expect     string   `json:"expect"`
	Status     string   `json:"status"`
	Property   []string `json:"property"`
	Threads    int      `json:"threads"`
	Copies     int      `json:"copies"`
	Vars       []string `json:"vars"`
	WriterRegs []string `json:"writer_regs"`
	ReaderRegs []string `json:"reader_regs"`
	// WriterOps/ReaderOps render the abstract ops with their source
	// functions, e.g. "St flag0.v = 1 [lock.(*FFBL).ownerPublishAndCheck]".
	WriterOps []string `json:"writer_ops"`
	ReaderOps []string `json:"reader_ops"`
	// CertifiedDelta is the smallest swept Δ at which the property
	// holds (normally 1); 0 for expect=fail pairs.
	CertifiedDelta int `json:"certified_delta"`
	MaxDelta       int `json:"max_delta"`
	// Reductions lists the explorer reductions in effect somewhere in
	// the sweep (terminal-collapse, partial-order, symmetry).
	Reductions []string `json:"reductions"`
	// TSO is the Δ=0 (plain TSO) point; Sweep covers Δ=1..MaxDelta.
	TSO   SweepPoint   `json:"tso"`
	Sweep []SweepPoint `json:"sweep"`
	// Program is the instantiation the status rests on: at
	// CertifiedDelta for certified pairs, at Δ=0 for refuted ones.
	Program fuzz.ProgramJSON `json:"program"`
}

// Counterexample is a concrete violation: the checker witness plus (when
// the sampler finds one) an exactly replayable machine run.
type Counterexample struct {
	Pair     string   `json:"pair"`
	Kind     string   `json:"kind"` // "planted-tso" or "decertified"
	Delta    int      `json:"delta"`
	Wait     int      `json:"wait"`
	Property []string `json:"property"`
	// Outcome is the forbidden outcome the exhaustive checker admits.
	Outcome string `json:"outcome"`
	// Policy/MachSeed/MachOutcome name a concrete machine run exhibiting
	// a forbidden outcome (empty if none of the sampled runs hit one —
	// the checker witness alone still proves admissibility).
	Policy      string `json:"policy,omitempty"`
	MachSeed    int64  `json:"mach_seed,omitempty"`
	MachOutcome string `json:"mach_outcome,omitempty"`

	Threads    int              `json:"threads"`
	WriterRegs []string         `json:"writer_regs"`
	ReaderRegs []string         `json:"reader_regs"`
	Program    fuzz.ProgramJSON `json:"program"`
}

// Options configures certification.
type Options struct {
	// MaxDelta is the top of the sweep (default 4): Δ runs 1..MaxDelta.
	MaxDelta int
	// MaxStates bounds each exploration (default mc.DefaultMaxStates).
	// A truncated exploration aborts certification — no certificate is
	// issued on a partial state space.
	MaxStates int
	// Workers is the explorer's worker count (0 = GOMAXPROCS).
	Workers int
	// MachSeeds is how many scheduler seeds per drain policy the
	// machine-witness search samples (default 64).
	MachSeeds int
	// Metrics, if non-nil, receives explorer counters.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxDelta <= 0 {
		o.MaxDelta = 4
	}
	if o.MaxStates <= 0 {
		o.MaxStates = mc.DefaultMaxStates
	}
	if o.MachSeeds <= 0 {
		o.MachSeeds = 64
	}
	return o
}

// Report is the outcome of certifying one pair.
type Report struct {
	Cert Certificate
	// Cex is non-nil whenever a violation was found: for refuted
	// expect=fail pairs (the planted bug, as expected) and for
	// decertified pairs (a real finding).
	Cex *Counterexample
}

// Ok reports whether the verdict matches the pair's expectation.
func (r *Report) Ok() bool {
	return r.Cert.Status == StatusCertified || r.Cert.Status == StatusRefuted
}

// Certify explores the pair across the Δ sweep and issues its verdict.
// It fails (no certificate) only on exploration errors — a state-budget
// truncation or an unassembled pair.
func Certify(p *Pair, opt Options) (*Report, error) {
	rep, _, err := CertifyCtx(nil, p, opt, nil)
	return rep, err
}

// CertifyCtx is Certify with interruption and resume semantics. The
// sweep runs in a fixed order — Δ=0, then 1..MaxDelta — and each
// completed cell is appended to the returned progress slice (index i
// holds Δ=i). prior is progress from an earlier, interrupted run of the
// SAME pair under the SAME options (see SweepProgress, which guards
// both): those cells are reused instead of re-explored, so a resumed
// sweep re-certifies only the unfinished (pair, Δ) cells. On
// cancellation the partial progress comes back with a nil Report and an
// error satisfying errors.Is(err, mc.ErrInterrupted).
func CertifyCtx(ctx context.Context, p *Pair, opt Options, prior []SweepPoint) (*Report, []SweepPoint, error) {
	if p.Failed {
		return nil, nil, fmt.Errorf("pair %s failed extraction; see diagnostics", p.Name)
	}
	opt = opt.withDefaults()
	if len(prior) > opt.MaxDelta+1 {
		prior = prior[:opt.MaxDelta+1]
	}

	cert := Certificate{
		Pair:       p.Name,
		Expect:     ExpectCertify,
		Property:   p.PropertyStrings(),
		Threads:    p.Threads(),
		Copies:     p.Copies,
		Vars:       p.Vars,
		WriterRegs: p.WriterRegs,
		ReaderRegs: p.ReaderRegs,
		WriterOps:  renderOps(p.WriterOps),
		ReaderOps:  renderOps(p.ReaderOps),
		MaxDelta:   opt.MaxDelta,
		Reductions: reductions(p),
	}
	if p.ExpectFail {
		cert.Expect = ExpectFail
	}

	// explore computes the cell at delta, reusing a prior run's point
	// when one was recorded. Reused cells are validated against the
	// sweep order — a prior slice from a different options shape never
	// silently shifts a Δ.
	explore := func(delta int) (SweepPoint, error) {
		if delta < len(prior) {
			if prior[delta].Delta != delta {
				return SweepPoint{}, fmt.Errorf("pair %s: sweep progress[%d] holds Δ=%d; progress document corrupt", p.Name, delta, prior[delta].Delta)
			}
			return prior[delta], nil
		}
		if ctx != nil && ctx.Err() != nil {
			return SweepPoint{}, fmt.Errorf("pair %s at Δ=%d: %w", p.Name, delta, &mc.InterruptedError{Shape: "sweep", Cause: ctx.Err()})
		}
		wait := delta + 1
		if delta == 0 {
			// Under unbounded TSO no finite wait helps; a token wait
			// keeps the state space small without weakening the check.
			wait = 1
		}
		prog := p.Instantiate(wait)
		res, err := mc.ExploreParallel(prog, delta, mc.Options{
			MaxStates: opt.MaxStates, Workers: opt.Workers, Metrics: opt.Metrics, Context: ctx,
		})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("pair %s at Δ=%d: %w", p.Name, delta, err)
		}
		pt := SweepPoint{
			Delta: delta, Wait: wait, Holds: true,
			States: res.States, Transitions: res.Transitions, Outcomes: len(res.Outcomes),
		}
		for _, o := range res.List() {
			if p.Forbidden(o) {
				pt.Holds = false
				pt.Witness = o
				break
			}
		}
		return pt, nil
	}

	var done []SweepPoint
	var err error
	if cert.TSO, err = explore(0); err != nil {
		return nil, done, err
	}
	done = append(done, cert.TSO)
	firstFail := 0
	for d := 1; d <= opt.MaxDelta; d++ {
		pt, err := explore(d)
		if err != nil {
			return nil, done, err
		}
		done = append(done, pt)
		cert.Sweep = append(cert.Sweep, pt)
		if pt.Holds && cert.CertifiedDelta == 0 {
			cert.CertifiedDelta = d
		}
		if !pt.Holds && firstFail == 0 {
			firstFail = d
		}
	}

	// The sweep is complete; the cheap verdict assembly below (plus the
	// machine-witness search for violated pairs) runs to completion even
	// under a late cancellation, so a fully-explored pair always yields
	// its certificate.
	rep := &Report{}
	switch {
	case p.ExpectFail:
		cert.CertifiedDelta = 0
		if cert.TSO.Holds {
			cert.Status = StatusUnrefuted
		} else {
			cert.Status = StatusRefuted
			rep.Cex = buildCex(p, "planted-tso", cert.TSO, opt)
		}
		cert.Program = fuzz.EncodeProgram(p.Instantiate(cert.TSO.Wait))
	case firstFail != 0:
		cert.Status = StatusDecertified
		pt := cert.Sweep[firstFail-1]
		rep.Cex = buildCex(p, "decertified", pt, opt)
		cert.Program = fuzz.EncodeProgram(p.Instantiate(pt.Wait))
	case cert.TSO.Holds:
		cert.Status = StatusVacuous
		cert.Program = fuzz.EncodeProgram(p.Instantiate(cert.TSO.Wait))
	default:
		cert.Status = StatusCertified
		cert.Program = fuzz.EncodeProgram(p.Instantiate(cert.CertifiedDelta + 1))
	}
	rep.Cert = cert
	return rep, done, nil
}

func renderOps(ops []AbsOp) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = fmt.Sprintf("%s [%s]", op.String(), op.Fn)
	}
	return out
}

// reductions lists the explorer reductions that apply to this pair
// somewhere in the sweep (mirrors mc's engine gating: terminal collapse
// always, partial order only at Δ=0 on wait-free small programs,
// symmetry only with identical threads).
func reductions(p *Pair) []string {
	out := []string{"terminal-collapse"}
	hasWait := false
	for _, op := range p.ReaderOps {
		if op.Kind == mc.OpWait {
			hasWait = true
		}
	}
	for _, op := range p.WriterOps {
		if op.Kind == mc.OpWait {
			hasWait = true
		}
	}
	if !hasWait && len(p.Vars) <= 64 {
		out = append(out, "partial-order")
	}
	if p.Copies >= 2 {
		out = append(out, "symmetry")
	}
	return out
}

// buildCex packages a violated sweep point as a counterexample,
// searching the clocked machine for a concrete run that exhibits a
// forbidden outcome (adversarial drains first, then random, MachSeeds
// seeds each).
func buildCex(p *Pair, kind string, pt SweepPoint, opt Options) *Counterexample {
	prog := p.Instantiate(pt.Wait)
	cex := &Counterexample{
		Pair:       p.Name,
		Kind:       kind,
		Delta:      pt.Delta,
		Wait:       pt.Wait,
		Property:   p.PropertyStrings(),
		Outcome:    pt.Witness,
		Threads:    p.Threads(),
		WriterRegs: p.WriterRegs,
		ReaderRegs: p.ReaderRegs,
		Program:    fuzz.EncodeProgram(prog),
	}
	for _, pol := range []tso.DrainPolicy{tso.DrainAdversarial, tso.DrainRandom} {
		for s := 0; s < opt.MachSeeds; s++ {
			run := fuzz.MachineRun{Delta: fuzz.MachineDelta(pt.Delta), Policy: pol, Seed: int64(s)}
			outcome, err := fuzz.RunOnMachine(prog, run)
			if err != nil {
				continue
			}
			if p.Forbidden(outcome) {
				cex.Policy = pol.String()
				cex.MachSeed = run.Seed
				cex.MachOutcome = outcome
				return cex
			}
		}
	}
	return cex
}

// PerfettoTrace replays the counterexample's machine run with a
// Perfetto exporter attached and writes the Chrome trace-event JSON.
// Requires a machine witness (Policy set).
func (c *Counterexample) PerfettoTrace(w io.Writer) error {
	if c.Policy == "" {
		return fmt.Errorf("extract: counterexample for %s has no machine witness to trace", c.Pair)
	}
	prog, err := fuzz.DecodeProgram(c.Program)
	if err != nil {
		return err
	}
	pol, err := fuzz.ParsePolicy(c.Policy)
	if err != nil {
		return err
	}
	pf := obs.NewPerfetto()
	names := make([]string, len(prog.Threads))
	for i := range names {
		names[i] = fmt.Sprintf("T%d", i)
	}
	pf.BeginRun(names, fuzz.MachineDelta(c.Delta))
	if _, err := fuzz.RunOnMachine(prog, fuzz.MachineRun{
		Delta: fuzz.MachineDelta(c.Delta), Policy: pol, Seed: c.MachSeed,
	}, pf); err != nil {
		return err
	}
	return pf.WriteJSON(w)
}

// Replay re-validates a counterexample: the checker must still admit
// its outcome and the outcome must still be forbidden; if a machine
// run is named, that exact run must still produce a forbidden outcome.
func (c *Counterexample) Replay(p *Pair, opt Options) error {
	opt = opt.withDefaults()
	if p.Failed {
		return fmt.Errorf("pair %s failed extraction", p.Name)
	}
	prog, err := fuzz.DecodeProgram(c.Program)
	if err != nil {
		return err
	}
	if !p.Forbidden(c.Outcome) {
		return fmt.Errorf("outcome %q is no longer forbidden by %s's property", c.Outcome, c.Pair)
	}
	res, err := mc.ExploreParallel(prog, c.Delta, mc.Options{MaxStates: opt.MaxStates, Workers: opt.Workers})
	if err != nil {
		return err
	}
	if !res.Has(c.Outcome) {
		return fmt.Errorf("checker no longer admits outcome %q at Δ=%d", c.Outcome, c.Delta)
	}
	if c.Policy != "" {
		pol, err := fuzz.ParsePolicy(c.Policy)
		if err != nil {
			return err
		}
		outcome, err := fuzz.RunOnMachine(prog, fuzz.MachineRun{
			Delta: fuzz.MachineDelta(c.Delta), Policy: pol, Seed: c.MachSeed,
		})
		if err != nil {
			return err
		}
		if !p.Forbidden(outcome) {
			return fmt.Errorf("machine run (%s, seed %d) no longer exhibits a forbidden outcome (got %q)",
				c.Policy, c.MachSeed, outcome)
		}
	}
	return nil
}
