package extract

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"tbtso/internal/analysis"
	"tbtso/internal/mc"
)

// WaitScaled is the Val of an extracted Wait op whose duration scales
// with the sweep: at bound Δ it is instantiated as Wait(Δ+1), the
// adequate wait of the flag principle (§3). A non-negative Val is a
// fixed wait (//tbtso:model wait=<n>), kept constant across the sweep —
// that is how a planted inadequate wait is expressed.
const WaitScaled = -1

// AbsOp is one extracted abstract operation. Loc is the symbolic
// location name for St/Ld/RMW (resolved to a variable index at pair
// assembly); Val is the stored/added value, or the wait duration
// (WaitScaled = Δ+1 at instantiation). Fn names the source function for
// dumps and certificates.
type AbsOp struct {
	Kind mc.OpKind
	Loc  string
	Val  int
	Fn   string
	Pos  token.Position
}

func (o AbsOp) String() string {
	switch o.Kind {
	case mc.OpStore:
		return fmt.Sprintf("St %s = %d", o.Loc, o.Val)
	case mc.OpLoad:
		return fmt.Sprintf("Ld %s", o.Loc)
	case mc.OpFence:
		return "Fence"
	case mc.OpRMW:
		return fmt.Sprintf("RMW %s += %d", o.Loc, o.Val)
	case mc.OpWait:
		if o.Val == WaitScaled {
			return "Wait Δ+1"
		}
		return fmt.Sprintf("Wait %d", o.Val)
	}
	return fmt.Sprintf("op(%d)", o.Kind)
}

// Step is one annotated function's extracted operation sequence.
type Step struct {
	Pair   string
	Role   string
	Order  int // step=<k>; 0 when unspecified (sole step of its role)
	Copies int // copies=<n> on reader steps; 0 when unspecified
	Fn     string
	Pos    token.Position
	Ops    []AbsOp
	Failed bool // extraction rejected; diagnostics explain why
}

// Extraction is the result of extracting every annotated pair from a
// set of loaded packages.
type Extraction struct {
	Pairs []*Pair
	Diags []analysis.Diagnostic
}

// Extract finds every //tbtso:verify-annotated function in pkgs,
// translates it to abstract ops, and assembles the pairs. Rejections
// and grammar errors come back as diagnostics (check "verify"); a pair
// with any failed ingredient has Pair.Failed set and is not checkable.
func Extract(pkgs []*analysis.Package) *Extraction {
	dirs := collectDirectives(pkgs)
	idx := indexFuncs(pkgs)
	ex := &Extraction{}
	var diags []analysis.Diagnostic
	diags = append(diags, dirs.diags...)

	var steps []*Step
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					dir, rest, ok := splitDirective(c.Text)
					if !ok || dir != "verify" {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					va, err := parseVerify(rest)
					if err != nil {
						diags = append(diags, analysis.Diagnostic{Pos: pos, Check: Check, Message: err.Error()})
						continue
					}
					st, ds := extractFunc(p, fd, va, dirs, idx)
					steps = append(steps, st)
					diags = append(diags, ds...)
				}
			}
		}
	}

	pairs, ds := assemblePairs(steps, dirs.properties)
	diags = append(diags, ds...)
	sortDiags(diags)
	ex.Pairs = pairs
	ex.Diags = diags
	return ex
}

// funcIndex maps module function objects to their declarations, for
// transitive-purity checks of helper calls.
type funcIndex struct {
	decls  map[*types.Func]*funcDecl
	purity map[*types.Func]bool
}

type funcDecl struct {
	fd  *ast.FuncDecl
	pkg *analysis.Package
}

func indexFuncs(pkgs []*analysis.Package) *funcIndex {
	idx := &funcIndex{
		decls:  make(map[*types.Func]*funcDecl),
		purity: make(map[*types.Func]bool),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx.decls[obj] = &funcDecl{fd: fd, pkg: p}
				}
			}
		}
	}
	return idx
}

// Call classification: what an extracted function may call, and what
// each call means in the abstract program.
type callClass int

const (
	ccPure          callClass = iota // no shared-memory effect
	ccAtomic                         // sync/atomic method
	ccThread                         // tso.Thread memory/fence/wait method
	ccFence                          // fence.Line/Lines Full
	ccBoundWait                      // core.Bound.Wait
	ccBoundEligible                  // core.Bound.Eligible (spin conditions only)
	ccClock                          // tso.Thread.Clock (pure; marks spin conditions)
	ccUnknown                        // unmodelable
)

type callInfo struct {
	class  callClass
	method string
	callee *types.Func // for ccUnknown module funcs, to name in diagnostics
}

// pkgSuffix tests a package path against a module-internal package,
// robust to the module path itself ("tbtso/internal/tso" etc.).
func pkgSuffix(pkg *types.Package, suffix string) bool {
	return pkg != nil && (pkg.Path() == suffix || strings.HasSuffix(pkg.Path(), "/"+suffix))
}

// extractor walks one annotated function body.
type extractor struct {
	pkg    *analysis.Package
	dirs   *directives
	idx    *funcIndex
	fnName string
	recv   types.Object
	params map[types.Object]bool
	step   *Step
	diags  []analysis.Diagnostic
}

func extractFunc(p *analysis.Package, fd *ast.FuncDecl, va verifyArgs, dirs *directives, idx *funcIndex) (*Step, []analysis.Diagnostic) {
	x := &extractor{
		pkg:    p,
		dirs:   dirs,
		idx:    idx,
		fnName: funcDisplayName(p, fd),
		params: make(map[types.Object]bool),
	}
	x.step = &Step{
		Pair:   va.pair,
		Role:   va.role,
		Order:  va.step,
		Copies: va.copies,
		Fn:     x.fnName,
		Pos:    p.Fset.Position(fd.Pos()),
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		x.recv = p.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				x.params[obj] = true
			}
		}
	}
	if fd.Body == nil {
		x.rejectf(fd.Pos(), "annotated function %s has no body", x.fnName)
	} else {
		for _, s := range fd.Body.List {
			x.stmt(s)
		}
	}
	return x.step, x.diags
}

func funcDisplayName(p *analysis.Package, fd *ast.FuncDecl) string {
	base := p.Types.Name()
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return fmt.Sprintf("%s.(*%s).%s", base, id.Name, fd.Name.Name)
		}
	}
	return base + "." + fd.Name.Name
}

func (x *extractor) position(p token.Pos) token.Position { return x.pkg.Fset.Position(p) }

func (x *extractor) rejectf(p token.Pos, format string, args ...any) {
	x.step.Failed = true
	x.diags = append(x.diags, analysis.Diagnostic{
		Pos: x.position(p), Check: Check,
		Message: fmt.Sprintf("%s: ", x.fnName) + fmt.Sprintf(format, args...),
	})
}

func (x *extractor) emit(p token.Pos, op AbsOp) {
	op.Fn = x.fnName
	op.Pos = x.position(p)
	x.step.Ops = append(x.step.Ops, op)
}

// stmt processes one statement. Statements free of shared operations
// are skipped wholesale — local computation is invisible to the memory
// model; statements that do touch shared state are translated per kind,
// and any kind we cannot translate soundly is rejected.
func (x *extractor) stmt(s ast.Stmt) {
	if fs, ok := s.(*ast.ForStmt); ok {
		x.forStmt(fs)
		return
	}
	if !x.hasShared(s) {
		return
	}
	switch st := s.(type) {
	case *ast.ExprStmt:
		x.expr(st.X)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			x.expr(r)
		}
	case *ast.AssignStmt:
		x.assign(st)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			x.rejectf(s.Pos(), "cannot model this declaration over shared state")
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					x.expr(v)
				}
			}
		}
	case *ast.BlockStmt:
		for _, inner := range st.List {
			x.stmt(inner)
		}
	case *ast.IfStmt:
		x.rejectf(s.Pos(), "conditional control flow over shared operations is not modelable; "+
			"restructure the protocol kernel into straight-line steps (branch in the caller)")
	default:
		x.rejectf(s.Pos(), "cannot model %s containing shared operations; "+
			"restructure into straight-line stores/loads/fences or a marked spin loop", stmtKind(s))
	}
}

func stmtKind(s ast.Stmt) string {
	switch s.(type) {
	case *ast.RangeStmt:
		return "a range loop"
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return "a switch"
	case *ast.SelectStmt:
		return "a select"
	case *ast.GoStmt:
		return "a go statement"
	case *ast.DeferStmt:
		return "a defer"
	case *ast.SendStmt:
		return "a channel send"
	default:
		return fmt.Sprintf("a %T", s)
	}
}

// forStmt applies the spin-loop rules: a loop is a Wait if it is marked
// //tbtso:model wait (optionally =n), or if its condition spins on
// core.Bound.Eligible or tso.Thread.Clock. The loop body must be free
// of shared operations — it only burns time.
func (x *extractor) forStmt(st *ast.ForStmt) {
	pos := x.position(st.Pos())
	md, ok := x.dirs.modelAt(pos)
	waitMarked := ok && md.isWait
	condSpin := st.Cond != nil && x.condIsBoundSpin(st.Cond)
	if !waitMarked && !condSpin {
		if x.hasShared(st) {
			x.rejectf(st.Pos(), "loop containing shared operations is not modelable; "+
				"a pure time-burning spin can be marked //tbtso:model wait")
		}
		return
	}
	for _, part := range []ast.Node{st.Init, st.Body, st.Post} {
		if part != nil && x.hasShared(part) {
			x.rejectf(st.Pos(), "spin loop modeled as Wait must not touch shared state in its body")
			return
		}
	}
	val := WaitScaled
	if waitMarked && md.n > 0 {
		val = md.n
	}
	x.emit(st.Pos(), AbsOp{Kind: mc.OpWait, Val: val})
}

// condIsBoundSpin reports whether a loop condition consults the
// visibility bound (core.Bound.Eligible) or the machine clock
// (tso.Thread.Clock) — the two idioms for "wait out Δ".
func (x *extractor) condIsBoundSpin(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch x.classify(call).class {
			case ccBoundEligible, ccClock:
				found = true
			}
		}
		return !found
	})
	return found
}

// assign handles assignments: right-hand sides are walked for loads,
// left-hand sides must be locals (invisible), blanks, or designated
// //tbtso:shared locations (a plain store).
func (x *extractor) assign(st *ast.AssignStmt) {
	for _, r := range st.Rhs {
		x.expr(r)
	}
	for i, l := range st.Lhs {
		switch lhs := l.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := x.pkg.Info.Defs[lhs]
			if obj == nil {
				obj = x.pkg.Info.Uses[lhs]
			}
			if obj == nil {
				continue
			}
			if x.sharedObj(obj) {
				x.plainStore(st, i, lhs.Name)
				continue
			}
			if isPackageLevel(obj) {
				x.rejectf(l.Pos(), "assignment to package-level %s is not modeled; "+
					"mark it //tbtso:shared or use an atomic", lhs.Name)
			}
			// Local (including parameters): invisible to the model.
		case *ast.SelectorExpr:
			if obj := x.fieldObj(lhs); obj != nil && x.sharedObj(obj) {
				if loc, ok := x.resolveLoc(l); ok {
					x.plainStore(st, i, loc)
				}
				continue
			}
			x.rejectf(l.Pos(), "assignment to unmodeled location; "+
				"designate the field //tbtso:shared or use an atomic")
		default:
			x.rejectf(l.Pos(), "cannot model assignment to this expression")
		}
	}
}

// plainStore emits the St for a //tbtso:shared plain write.
func (x *extractor) plainStore(st *ast.AssignStmt, i int, loc string) {
	if len(st.Rhs) != len(st.Lhs) {
		x.rejectf(st.Pos(), "multi-value assignment into shared location %s is not modelable", loc)
		return
	}
	val, ok := x.opValue(st.Rhs[i], st.Pos(), "stored")
	if !ok {
		return
	}
	x.emit(st.Pos(), AbsOp{Kind: mc.OpStore, Loc: loc, Val: val})
}

// expr walks an expression in evaluation order, emitting abstract ops
// for the shared accesses it contains.
func (x *extractor) expr(e ast.Expr) {
	switch v := e.(type) {
	case nil:
	case *ast.CallExpr:
		x.call(v)
	case *ast.Ident:
		if obj := x.pkg.Info.Uses[v]; obj != nil && x.sharedObj(obj) {
			x.emit(v.Pos(), AbsOp{Kind: mc.OpLoad, Loc: v.Name})
		}
	case *ast.SelectorExpr:
		if obj := x.fieldObj(v); obj != nil && x.sharedObj(obj) {
			if loc, ok := x.resolveLoc(v); ok {
				x.emit(v.Pos(), AbsOp{Kind: mc.OpLoad, Loc: loc})
			}
			return
		}
		x.expr(v.X)
	case *ast.BinaryExpr:
		x.expr(v.X)
		x.expr(v.Y)
	case *ast.UnaryExpr:
		x.expr(v.X)
	case *ast.ParenExpr:
		x.expr(v.X)
	case *ast.StarExpr:
		x.expr(v.X)
	case *ast.IndexExpr:
		x.expr(v.X)
		x.expr(v.Index)
	case *ast.CompositeLit, *ast.FuncLit:
		if x.hasShared(e) {
			x.rejectf(e.Pos(), "shared operations inside a literal are not modelable")
		}
	}
}

// call translates one call expression.
func (x *extractor) call(call *ast.CallExpr) {
	ci := x.classify(call)
	switch ci.class {
	case ccPure, ccClock:
		// Walk arguments: a pure helper may be fed a shared load.
		for _, a := range call.Args {
			x.expr(a)
		}
	case ccFence:
		for _, a := range call.Args {
			x.expr(a)
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpFence})
	case ccBoundWait:
		val := WaitScaled
		if md, ok := x.dirs.modelAt(x.position(call.Pos())); ok && md.isWait && md.n > 0 {
			val = md.n
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpWait, Val: val})
	case ccBoundEligible:
		x.rejectf(call.Pos(), "Bound.Eligible outside a spin-loop condition is not modelable")
	case ccAtomic:
		x.atomicCall(call, ci.method)
	case ccThread:
		x.threadCall(call, ci.method)
	case ccUnknown:
		name := "this function"
		if ci.callee != nil {
			name = ci.callee.Name()
			if ci.callee.Pkg() != nil {
				name = ci.callee.Pkg().Name() + "." + name
			}
		}
		x.rejectf(call.Pos(), "call to %s cannot be modeled; "+
			"keep protocol kernels to atomics, tso.Thread ops, fences, bound waits and pure helpers", name)
	}
}

// atomicCall translates a sync/atomic method call. The location is the
// method receiver.
func (x *extractor) atomicCall(call *ast.CallExpr, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		x.rejectf(call.Pos(), "atomic method value is not modelable; call it directly")
		return
	}
	loc, ok := x.resolveLoc(sel.X)
	if !ok {
		return
	}
	switch method {
	case "Load":
		x.emit(call.Pos(), AbsOp{Kind: mc.OpLoad, Loc: loc})
	case "Store":
		x.expr(call.Args[0])
		val, ok := x.opValue(call.Args[0], call.Pos(), "stored")
		if !ok {
			return
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpStore, Loc: loc, Val: val})
	case "CompareAndSwap":
		x.expr(call.Args[0])
		x.expr(call.Args[1])
		val, ok := x.casValue(call.Args[0], call.Args[1], call.Pos())
		if !ok {
			return
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpRMW, Loc: loc, Val: val})
	case "Add":
		x.expr(call.Args[0])
		val, ok := x.opValue(call.Args[0], call.Pos(), "added")
		if !ok {
			return
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpRMW, Loc: loc, Val: val})
	default:
		x.rejectf(call.Pos(), "atomic %s is not modelable (mc has no exchange op); "+
			"use Load/Store/CompareAndSwap/Add in protocol kernels", method)
	}
}

// threadCall translates a tso.Thread method call. The location is the
// first argument (the machine address).
func (x *extractor) threadCall(call *ast.CallExpr, method string) {
	loc := ""
	resolved := true
	if len(call.Args) > 0 && methodAddressed(method) {
		loc, resolved = x.resolveLoc(call.Args[0])
		if !resolved {
			return
		}
	}
	switch method {
	case "Load":
		x.emit(call.Pos(), AbsOp{Kind: mc.OpLoad, Loc: loc})
	case "Store":
		x.expr(call.Args[1])
		val, ok := x.opValue(call.Args[1], call.Pos(), "stored")
		if !ok {
			return
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpStore, Loc: loc, Val: val})
	case "CAS":
		x.expr(call.Args[1])
		x.expr(call.Args[2])
		val, ok := x.casValue(call.Args[1], call.Args[2], call.Pos())
		if !ok {
			return
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpRMW, Loc: loc, Val: val})
	case "FetchAdd":
		x.expr(call.Args[1])
		val, ok := x.opValue(call.Args[1], call.Pos(), "added")
		if !ok {
			return
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpRMW, Loc: loc, Val: val})
	case "Fence":
		x.emit(call.Pos(), AbsOp{Kind: mc.OpFence})
	case "WaitUntil":
		md, ok := x.dirs.modelAt(x.position(call.Pos()))
		if !ok || !md.isWait {
			x.rejectf(call.Pos(), "WaitUntil needs a //tbtso:model wait (or wait=<n>) directive on its line")
			return
		}
		val := WaitScaled
		if md.n > 0 {
			val = md.n
		}
		x.emit(call.Pos(), AbsOp{Kind: mc.OpWait, Val: val})
	default:
		x.rejectf(call.Pos(), "tso.Thread.%s is not modelable in a protocol kernel", method)
	}
}

// methodAddressed reports whether a Thread method's first argument is a
// machine address.
func methodAddressed(method string) bool {
	switch method {
	case "Load", "Store", "CAS", "FetchAdd":
		return true
	}
	return false
}

// classify determines what a call means. It resolves method selections
// through go/types, so embedding and interface calls classify by the
// declaring package, not the call site's spelling.
func (x *extractor) classify(call *ast.CallExpr) callInfo {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		obj := x.pkg.Info.Uses[f]
		switch o := obj.(type) {
		case *types.Builtin, *types.TypeName:
			return callInfo{class: ccPure}
		case *types.Func:
			return x.classifyFunc(o)
		case nil:
			return callInfo{class: ccUnknown}
		default:
			// A variable of function type, a conversion to a named
			// type, etc.
			if tv, ok := x.pkg.Info.Types[fun]; ok && tv.IsType() {
				return callInfo{class: ccPure}
			}
			return callInfo{class: ccUnknown}
		}
	case *ast.SelectorExpr:
		if selInfo, ok := x.pkg.Info.Selections[f]; ok {
			// Method call.
			m, ok := selInfo.Obj().(*types.Func)
			if !ok {
				return callInfo{class: ccUnknown}
			}
			return x.classifyMethod(m)
		}
		// Qualified identifier pkg.Func or a conversion to pkg.Type.
		if obj, ok := x.pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return x.classifyFunc(obj)
		}
		if _, ok := x.pkg.Info.Uses[f.Sel].(*types.TypeName); ok {
			return callInfo{class: ccPure}
		}
		return callInfo{class: ccUnknown}
	default:
		if tv, ok := x.pkg.Info.Types[fun]; ok && tv.IsType() {
			return callInfo{class: ccPure}
		}
		return callInfo{class: ccUnknown}
	}
}

// classifyMethod classifies a resolved method by its declaring package.
func (x *extractor) classifyMethod(m *types.Func) callInfo {
	pkg := m.Pkg()
	name := m.Name()
	switch {
	case pkg != nil && pkg.Path() == "sync/atomic":
		return callInfo{class: ccAtomic, method: name}
	case pkgSuffix(pkg, "internal/tso"):
		if recvNamed(m) == "Thread" {
			switch name {
			case "Clock":
				return callInfo{class: ccClock}
			case "ID", "Name", "Yield", "Machine":
				return callInfo{class: ccPure}
			default:
				return callInfo{class: ccThread, method: name}
			}
		}
		return x.classifyFunc(m)
	case pkgSuffix(pkg, "internal/fence"):
		if name == "Full" {
			return callInfo{class: ccFence}
		}
		return x.classifyFunc(m)
	case pkgSuffix(pkg, "internal/core"):
		switch name {
		case "Wait":
			return callInfo{class: ccBoundWait}
		case "Eligible":
			return callInfo{class: ccBoundEligible}
		case "Cutoff", "Name":
			// Time readings: no modeled-memory effect.
			return callInfo{class: ccPure}
		}
		return x.classifyFunc(m)
	default:
		return x.classifyFunc(m)
	}
}

// recvNamed returns the name of a method's receiver's named type
// (pointer stripped), or "".
func recvNamed(m *types.Func) string {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// classifyFunc classifies a package-level function (or a method not
// covered by the special tables): module functions are pure iff their
// bodies are transitively free of shared operations; a short whitelist
// covers the external calls protocol kernels legitimately make.
func (x *extractor) classifyFunc(f *types.Func) callInfo {
	pkg := f.Pkg()
	if pkg == nil {
		return callInfo{class: ccPure} // error.Error and friends
	}
	switch pkg.Path() {
	case "runtime":
		if f.Name() == "Gosched" {
			return callInfo{class: ccPure}
		}
	}
	if pkgSuffix(pkg, "internal/vclock") && f.Name() == "Now" {
		return callInfo{class: ccPure}
	}
	if d, ok := x.idx.decls[f]; ok {
		if x.funcIsPure(f, d) {
			return callInfo{class: ccPure}
		}
		return callInfo{class: ccUnknown, callee: f}
	}
	return callInfo{class: ccUnknown, callee: f}
}

// funcIsPure reports whether a module function's body is transitively
// free of shared operations (memoized; cycles resolve optimistically —
// any impure op on the cycle still marks every participant impure
// through its own body).
func (x *extractor) funcIsPure(f *types.Func, d *funcDecl) bool {
	if pure, ok := x.idx.purity[f]; ok {
		return pure
	}
	x.idx.purity[f] = true // break recursion optimistically
	pure := d.fd.Body != nil && !x.inPkg(d.pkg, func() bool { return x.hasShared(d.fd.Body) })
	x.idx.purity[f] = pure
	return pure
}

// inPkg runs fn with the extractor's package temporarily switched, so
// purity checks of helpers in other packages resolve against the right
// type info.
func (x *extractor) inPkg(p *analysis.Package, fn func() bool) bool {
	old := x.pkg
	x.pkg = p
	defer func() { x.pkg = old }()
	return fn()
}

// hasShared reports whether a subtree contains any shared operation:
// an atomic/thread/fence/bound call, an impure or unknown call, or an
// access to a //tbtso:shared-designated location. Statements without
// any are skipped by the extractor; pure helpers must have none.
func (x *extractor) hasShared(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			switch x.classify(v).class {
			case ccPure, ccClock:
			default:
				found = true
			}
		case *ast.Ident:
			if obj := x.pkg.Info.Uses[v]; obj != nil && x.sharedObj(obj) {
				found = true
			}
		case *ast.SelectorExpr:
			if obj := x.fieldObj(v); obj != nil && x.sharedObj(obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// sharedObj reports whether an object's declaration carries a
// //tbtso:shared designation.
func (x *extractor) sharedObj(obj types.Object) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return x.dirs.sharedAt(x.pkg.Fset.Position(obj.Pos()))
}

// fieldObj resolves a selector to the field object it denotes, or nil
// for package selectors and methods.
func (x *extractor) fieldObj(sel *ast.SelectorExpr) types.Object {
	if s, ok := x.pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// resolveLoc names the shared location an expression denotes. Naming
// rules: a parameter-rooted chain is the parameter name plus any field
// path (so the same parameter name unifies a location across the two
// roles of a pair); a receiver-rooted chain is the field path with the
// receiver dropped; a package-variable chain is the variable name plus
// path. Index expressions collapse — all elements of an array model as
// one cell, which is sound for the pairs here because the property only
// ever asks about one element.
func (x *extractor) resolveLoc(e ast.Expr) (string, bool) {
	var parts []string
	for {
		e = ast.Unparen(e)
		switch v := e.(type) {
		case *ast.Ident:
			obj := x.pkg.Info.Uses[v]
			if obj == nil {
				obj = x.pkg.Info.Defs[v]
			}
			switch {
			case obj == nil:
				x.rejectf(v.Pos(), "cannot resolve shared location %q", v.Name)
				return "", false
			case obj == x.recv:
				if len(parts) == 0 {
					x.rejectf(v.Pos(), "bare receiver is not a location")
					return "", false
				}
				return strings.Join(parts, "."), true
			case x.params[obj] || isPackageLevel(obj):
				return strings.Join(append([]string{v.Name}, parts...), "."), true
			default:
				x.rejectf(v.Pos(), "shared location rooted at local %q is not nameable; "+
					"take it as a parameter or a receiver field", v.Name)
				return "", false
			}
		case *ast.SelectorExpr:
			if _, isPkg := x.pkg.Info.Uses[identOf(v.X)].(*types.PkgName); isPkg {
				return strings.Join(append([]string{v.Sel.Name}, parts...), "."), true
			}
			parts = append([]string{v.Sel.Name}, parts...)
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				x.rejectf(v.Pos(), "cannot name this location expression")
				return "", false
			}
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			x.rejectf(e.Pos(), "cannot name this location expression; "+
				"shared locations must be fields, parameters or package variables")
			return "", false
		}
	}
}

func identOf(e ast.Expr) *ast.Ident {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{}
}

func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}

// opValue determines the abstract value written by a store or added by
// an RMW: a //tbtso:model val directive on the line wins, then exact
// constant folding; anything else is rejected.
func (x *extractor) opValue(e ast.Expr, at token.Pos, what string) (int, bool) {
	if md, ok := x.dirs.modelAt(x.position(at)); ok && md.isVal {
		return md.n, true
	}
	if v, ok := x.constInt(e); ok {
		return v, true
	}
	x.rejectf(at, "non-constant %s value; add //tbtso:model val=<n> giving the abstract value", what)
	return 0, false
}

// casValue determines the RMW delta modeling a successful CAS: the
// model directive, or new-old when both fold to constants.
func (x *extractor) casValue(oldE, newE ast.Expr, at token.Pos) (int, bool) {
	if md, ok := x.dirs.modelAt(x.position(at)); ok && md.isVal {
		return md.n, true
	}
	oldV, ok1 := x.constInt(oldE)
	newV, ok2 := x.constInt(newE)
	if ok1 && ok2 {
		return newV - oldV, true
	}
	x.rejectf(at, "non-constant CAS operands; add //tbtso:model val=<n> giving the abstract delta of a successful CAS")
	return 0, false
}

func (x *extractor) constInt(e ast.Expr) (int, bool) {
	tv, ok := x.pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	iv := constant.ToInt(tv.Value)
	if iv.Kind() != constant.Int {
		return 0, false
	}
	n, exact := constant.Int64Val(iv)
	if !exact {
		return 0, false
	}
	return int(n), true
}
