package extract

import (
	"fmt"

	"tbtso/internal/mc"
)

// Fence suggestion: for a pair whose property is violated, search the
// smallest set of Fence insertions that makes the property hold on
// PLAIN TSO (Δ=0). Plain TSO admits a superset of every TBTSO[Δ]'s
// behaviours for the same program, so a fence set that closes the Δ=0
// violation closes every swept bound too — one exploration per
// candidate decides the whole sweep. This is the classic trade the
// paper quantifies from the other side: the suggested fences are
// exactly what the fence-free algorithms deleted in exchange for the
// slow path's Δ wait.

// FencePoint is one suggested insertion: a Fence before the role's
// abstract op at Index (Before renders that op for humans).
type FencePoint struct {
	Role   string `json:"role"`
	Index  int    `json:"index"`
	Before string `json:"before"`
}

// Suggestion is one minimal fence set restoring plain-TSO soundness.
type Suggestion struct {
	Fences []FencePoint `json:"fences"`
}

// SuggestFences searches single insertions, then pairs of insertions,
// and returns every minimal set found (empty if even two fences cannot
// close the violation). Reader insertions apply to every reader copy.
func SuggestFences(p *Pair, opt Options) ([]Suggestion, error) {
	if p.Failed {
		return nil, fmt.Errorf("pair %s failed extraction; see diagnostics", p.Name)
	}
	opt = opt.withDefaults()

	holds := func(wIns, rIns []int) (bool, error) {
		prog := instantiateWithFences(p, wIns, rIns, 1)
		res, err := mc.ExploreParallel(prog, 0, mc.Options{MaxStates: opt.MaxStates, Workers: opt.Workers})
		if err != nil {
			return false, fmt.Errorf("pair %s: %w", p.Name, err)
		}
		for _, o := range res.List() {
			if p.Forbidden(o) {
				return false, nil
			}
		}
		return true, nil
	}

	ok, err := holds(nil, nil)
	if err != nil {
		return nil, err
	}
	if ok {
		return nil, fmt.Errorf("pair %s already holds on plain TSO; nothing to suggest", p.Name)
	}

	type cand struct {
		role string
		idx  int
		ops  []AbsOp
	}
	var cands []cand
	for _, rc := range []struct {
		role string
		ops  []AbsOp
	}{{RoleWriter, p.WriterOps}, {RoleReader, p.ReaderOps}} {
		// Useful slots sit strictly between two ops, not adjacent to an
		// existing fence: a fence before the first op or after the last
		// cannot order anything, and doubling a fence never helps.
		for i := 1; i < len(rc.ops); i++ {
			if rc.ops[i-1].Kind == mc.OpFence || rc.ops[i].Kind == mc.OpFence {
				continue
			}
			cands = append(cands, cand{role: rc.role, idx: i, ops: rc.ops})
		}
	}

	point := func(c cand) FencePoint {
		return FencePoint{Role: c.role, Index: c.idx, Before: c.ops[c.idx].String()}
	}
	split := func(cs ...cand) (w, r []int) {
		for _, c := range cs {
			if c.role == RoleWriter {
				w = append(w, c.idx)
			} else {
				r = append(r, c.idx)
			}
		}
		return
	}

	var out []Suggestion
	for _, c := range cands {
		w, r := split(c)
		ok, err := holds(w, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, Suggestion{Fences: []FencePoint{point(c)}})
		}
	}
	if len(out) > 0 {
		return out, nil
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			w, r := split(cands[i], cands[j])
			ok, err := holds(w, r)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, Suggestion{Fences: []FencePoint{point(cands[i]), point(cands[j])}})
			}
		}
	}
	return out, nil
}

// instantiateWithFences lowers the pair like Pair.Instantiate with
// extra Fence ops inserted before the named abstract-op indices.
func instantiateWithFences(p *Pair, wIns, rIns []int, wait int) mc.Program {
	insert := func(ops []AbsOp, at []int) []AbsOp {
		if len(at) == 0 {
			return ops
		}
		mark := make(map[int]bool, len(at))
		for _, i := range at {
			mark[i] = true
		}
		out := make([]AbsOp, 0, len(ops)+len(at))
		for i, op := range ops {
			if mark[i] {
				out = append(out, AbsOp{Kind: mc.OpFence})
			}
			out = append(out, op)
		}
		return out
	}
	mod := &Pair{
		Name:       p.Name,
		Copies:     p.Copies,
		Vars:       p.Vars,
		WriterOps:  insert(p.WriterOps, wIns),
		ReaderOps:  insert(p.ReaderOps, rIns),
		WriterRegs: p.WriterRegs,
		ReaderRegs: p.ReaderRegs,
	}
	return mod.Instantiate(wait)
}
