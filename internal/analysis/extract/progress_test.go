package extract

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"tbtso/internal/mc"
)

// TestCertifyCtxResume: interrupt a sweep, persist the completed cells,
// resume from them — the resumed run must reuse every recorded cell and
// produce the same certificate as an uninterrupted run.
func TestCertifyCtxResume(t *testing.T) {
	ex := Extract(load(t, "internal/smr"))
	p := pairByName(t, ex, "ffhp")
	opt := Options{MachSeeds: 4}

	full, fullDone, err := CertifyCtx(nil, p, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullDone) != opt.withDefaults().MaxDelta+1 {
		t.Fatalf("complete sweep recorded %d cells, want %d", len(fullDone), opt.withDefaults().MaxDelta+1)
	}

	// Pre-cancelled: no cells run, partial progress is empty, error is
	// typed.
	gone, cancel := context.WithCancel(context.Background())
	cancel()
	rep, done, err := CertifyCtx(gone, p, opt, nil)
	if rep != nil || len(done) != 0 {
		t.Fatalf("pre-cancelled CertifyCtx did work: rep=%v cells=%d", rep, len(done))
	}
	if !errors.Is(err, mc.ErrInterrupted) {
		t.Fatalf("pre-cancelled CertifyCtx: err=%v, want ErrInterrupted", err)
	}

	// Prior cells short-circuit exploration: with the full sweep as
	// prior, even a cancelled context certifies (nothing left to run),
	// and the certificate matches the uninterrupted one.
	rep2, done2, err := CertifyCtx(gone, p, opt, fullDone)
	if err != nil {
		t.Fatalf("resume with complete prior: %v", err)
	}
	if !reflect.DeepEqual(done2, fullDone) {
		t.Error("resume mutated the recorded cells")
	}
	if !reflect.DeepEqual(rep2.Cert, full.Cert) {
		t.Errorf("resumed certificate differs from uninterrupted:\n got %+v\nwant %+v", rep2.Cert, full.Cert)
	}

	// Partial prior: the missing suffix is recomputed and the verdict
	// still matches.
	rep3, done3, err := CertifyCtx(nil, p, opt, fullDone[:2])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(done3, fullDone) || !reflect.DeepEqual(rep3.Cert, full.Cert) {
		t.Error("partial-prior resume diverged from the uninterrupted run")
	}

	// A corrupt prior (cells shifted) is detected, not trusted.
	bad := []SweepPoint{fullDone[1]}
	if _, _, err := CertifyCtx(nil, p, opt, bad); err == nil {
		t.Error("CertifyCtx accepted a Δ-shifted prior")
	}
}

// TestSweepProgressRoundTrip: the progress document survives disk,
// refuses foreign options, and drops stale pair fingerprints.
func TestSweepProgressRoundTrip(t *testing.T) {
	ex := Extract(load(t, "internal/smr"))
	p := pairByName(t, ex, "ffhp")
	opt := Options{MachSeeds: 4}

	_, done, err := CertifyCtx(nil, p, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSweepProgress(opt)
	sp.Record(p, done[:2])
	path := filepath.Join(t.TempDir(), "verify.progress")
	if err := WriteSweepProgress(path, sp); err != nil {
		t.Fatal(err)
	}

	back, err := ReadSweepProgress(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Lookup(p); !reflect.DeepEqual(got, done[:2]) {
		t.Errorf("Lookup after round trip: %+v, want the recorded prefix", got)
	}

	// Different sweep options must refuse the document outright.
	if _, err := ReadSweepProgress(path, Options{MaxDelta: 2}); err == nil {
		t.Error("ReadSweepProgress accepted a document from different options")
	}

	// A changed pair (different fingerprint) must miss, not match.
	other := pairByName(t, ex, "ffhp")
	alias := *other
	alias.ExpectFail = !alias.ExpectFail
	if back.Lookup(&alias) != nil {
		t.Error("Lookup returned cells for a pair whose content changed")
	}
}
