package extract

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"tbtso/internal/analysis"
	"tbtso/internal/mc"
)

// Pair is one named writer/reader protocol pair assembled from its
// annotated steps, ready to instantiate as an mc.Program.
type Pair struct {
	Name string
	// ExpectFail marks a planted negative control: the property must be
	// REFUTED at Δ=0 (plain TSO). Normal pairs must hold at every swept
	// Δ ≥ 1 and be refuted at Δ=0 (the non-vacuity check).
	ExpectFail bool
	Writer     []*Step
	Reader     []*Step
	// Copies is how many identical reader threads run (1–3); the
	// program has 1+Copies threads.
	Copies int
	Props  []propertyDecl

	// Failed marks a pair that cannot be checked; the extraction's
	// diagnostics explain why.
	Failed bool

	// Assembly results (valid when !Failed):
	Vars       []string // variable index -> location name
	WriterOps  []AbsOp
	ReaderOps  []AbsOp
	WriterRegs []string // register index -> name, writer thread
	ReaderRegs []string // register index -> name, each reader thread
}

// Threads is the instantiated thread count.
func (p *Pair) Threads() int { return 1 + p.Copies }

// assemblePairs groups steps and properties by pair name and assembles
// each pair's abstract program skeleton.
func assemblePairs(steps []*Step, props []propertyDecl) ([]*Pair, []analysis.Diagnostic) {
	var diags []analysis.Diagnostic
	errorf := func(pos token.Position, format string, args ...any) {
		diags = append(diags, analysis.Diagnostic{Pos: pos, Check: Check, Message: fmt.Sprintf(format, args...)})
	}

	byName := make(map[string]*Pair)
	order := []string{}
	get := func(name string) *Pair {
		p := byName[name]
		if p == nil {
			p = &Pair{Name: name, Copies: 1}
			byName[name] = p
			order = append(order, name)
		}
		return p
	}

	for _, st := range steps {
		p := get(st.Pair)
		if st.Failed {
			p.Failed = true
		}
		switch st.Role {
		case RoleWriter:
			p.Writer = append(p.Writer, st)
		case RoleReader:
			p.Reader = append(p.Reader, st)
		}
		if st.Copies > 0 {
			if p.Copies != 1 && p.Copies != st.Copies {
				errorf(st.Pos, "pair %s: conflicting copies= values (%d and %d)", st.Pair, p.Copies, st.Copies)
				p.Failed = true
			}
			p.Copies = st.Copies
		}
	}
	for _, pd := range props {
		p, ok := byName[pd.pair]
		if !ok {
			errorf(pd.pos, "//tbtso:property names pair %q, which has no //tbtso:verify steps", pd.pair)
			continue
		}
		p.Props = append(p.Props, pd)
		if pd.expectFail {
			p.ExpectFail = true
		}
	}

	sort.Strings(order)
	var pairs []*Pair
	for _, name := range order {
		p := byName[name]
		pairs = append(pairs, p)
		assembleOne(p, errorf)
	}
	return pairs, diags
}

// assembleOne validates one pair's shape and computes its variable and
// register numbering.
func assembleOne(p *Pair, errorf func(token.Position, string, ...any)) {
	at := func() token.Position {
		if len(p.Writer) > 0 {
			return p.Writer[0].Pos
		}
		if len(p.Reader) > 0 {
			return p.Reader[0].Pos
		}
		if len(p.Props) > 0 {
			return p.Props[0].pos
		}
		return token.Position{}
	}
	fail := func(format string, args ...any) {
		errorf(at(), "pair "+p.Name+": "+format, args...)
		p.Failed = true
	}

	if len(p.Writer) == 0 {
		fail("no writer steps (annotate the fence-free fast path //tbtso:verify role=writer)")
	}
	if len(p.Reader) == 0 {
		fail("no reader steps (annotate the fencing slow path //tbtso:verify role=reader)")
	}
	if len(p.Props) == 0 {
		fail("no //tbtso:property declares what to forbid")
	}
	for _, pd := range p.Props {
		if pd.expectFail != p.ExpectFail {
			fail("mixed expect= values across property lines")
			break
		}
	}
	sortSteps := func(ss []*Step, role string) {
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].Order < ss[j].Order })
		seen := map[int]string{}
		for _, s := range ss {
			if prev, dup := seen[s.Order]; dup {
				fail("%s steps %s and %s share step=%d; give each a distinct order", role, prev, s.Fn, s.Order)
			}
			seen[s.Order] = s.Fn
		}
	}
	sortSteps(p.Writer, RoleWriter)
	sortSteps(p.Reader, RoleReader)
	if p.Failed {
		return
	}

	flatten := func(ss []*Step) []AbsOp {
		var ops []AbsOp
		for _, s := range ss {
			ops = append(ops, s.Ops...)
		}
		return ops
	}
	p.WriterOps = flatten(p.Writer)
	p.ReaderOps = flatten(p.Reader)
	if len(p.WriterOps) == 0 || len(p.ReaderOps) == 0 {
		fail("a role extracted zero operations; nothing to check")
		return
	}

	// Variables: numbered by first occurrence, writer then reader.
	varIdx := map[string]int{}
	for _, op := range append(append([]AbsOp{}, p.WriterOps...), p.ReaderOps...) {
		if op.Loc == "" {
			continue
		}
		if _, ok := varIdx[op.Loc]; !ok {
			varIdx[op.Loc] = len(p.Vars)
			p.Vars = append(p.Vars, op.Loc)
		}
	}

	// Registers: per role, named after the loaded location, deduplicated
	// with #2, #3... when one role loads the same location repeatedly.
	assignRegs := func(ops []AbsOp) []string {
		var regs []string
		used := map[string]int{}
		for _, op := range ops {
			if op.Kind != mc.OpLoad && op.Kind != mc.OpRMW {
				continue
			}
			used[op.Loc]++
			name := op.Loc
			if n := used[op.Loc]; n > 1 {
				name = fmt.Sprintf("%s#%d", op.Loc, n)
			}
			regs = append(regs, name)
		}
		return regs
	}
	p.WriterRegs = assignRegs(p.WriterOps)
	p.ReaderRegs = assignRegs(p.ReaderOps)

	// Every property atom must name a register of its role.
	regSet := func(regs []string) map[string]bool {
		m := map[string]bool{}
		for _, r := range regs {
			m[r] = true
		}
		return m
	}
	wregs, rregs := regSet(p.WriterRegs), regSet(p.ReaderRegs)
	for _, pd := range p.Props {
		for _, a := range pd.forbid.atoms {
			regs, role := wregs, "writer"
			if a.role == RoleReader {
				regs, role = rregs, "reader"
			}
			if !regs[a.reg] {
				errorf(pd.pos, "pair %s: property names %s.%s, but the %s loads only %s",
					p.Name, a.role, a.reg, role, strings.Join(sortedKeys(regs), ", "))
				p.Failed = true
			}
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Instantiate renders the pair as an mc.Program with scaled waits set
// to wait transitions. The writer is thread 0; Copies identical reader
// threads follow.
func (p *Pair) Instantiate(wait int) mc.Program {
	varIdx := map[string]int{}
	for i, v := range p.Vars {
		varIdx[v] = i
	}
	lower := func(ops []AbsOp) []mc.Op {
		out := make([]mc.Op, 0, len(ops))
		reg := 0
		for _, op := range ops {
			switch op.Kind {
			case mc.OpStore:
				out = append(out, mc.St(varIdx[op.Loc], op.Val))
			case mc.OpLoad:
				out = append(out, mc.Ld(varIdx[op.Loc], reg))
				reg++
			case mc.OpRMW:
				out = append(out, mc.RMW(varIdx[op.Loc], op.Val, reg))
				reg++
			case mc.OpFence:
				out = append(out, mc.Fence())
			case mc.OpWait:
				n := op.Val
				if n == WaitScaled {
					n = wait
				}
				out = append(out, mc.Wait(n))
			}
		}
		return out
	}
	prog := mc.Program{Vars: len(p.Vars)}
	prog.Threads = append(prog.Threads, lower(p.WriterOps))
	rt := lower(p.ReaderOps)
	for i := 0; i < p.Copies; i++ {
		prog.Threads = append(prog.Threads, append([]mc.Op(nil), rt...))
	}
	prog.Regs = len(p.WriterRegs)
	if len(p.ReaderRegs) > prog.Regs {
		prog.Regs = len(p.ReaderRegs)
	}
	return prog
}

// Forbidden reports whether an outcome string (mc's canonical
// "T0:r0=1 T1:r0=0" form) satisfies any property line: all writer atoms
// hold on thread 0 and there is a single reader thread on which all
// reader atoms hold.
func (p *Pair) Forbidden(outcome string) bool {
	regs, ok := parseOutcome(outcome, p.Threads())
	if !ok {
		return false
	}
	widx := regIndex(p.WriterRegs)
	ridx := regIndex(p.ReaderRegs)
	for _, pd := range p.Props {
		if p.lineHolds(pd, regs, widx, ridx) {
			return true
		}
	}
	return false
}

func (p *Pair) lineHolds(pd propertyDecl, regs [][]int, widx, ridx map[string]int) bool {
	for _, a := range pd.forbid.atoms {
		if a.role == RoleWriter {
			i, ok := widx[a.reg]
			if !ok || i >= len(regs[0]) || !a.eval(regs[0][i]) {
				return false
			}
		}
	}
	// Reader atoms: exists one reader thread satisfying all of them.
	hasReaderAtom := false
	for _, a := range pd.forbid.atoms {
		if a.role == RoleReader {
			hasReaderAtom = true
		}
	}
	if !hasReaderAtom {
		return true
	}
reader:
	for t := 1; t < len(regs); t++ {
		for _, a := range pd.forbid.atoms {
			if a.role != RoleReader {
				continue
			}
			i, ok := ridx[a.reg]
			if !ok || i >= len(regs[t]) || !a.eval(regs[t][i]) {
				continue reader
			}
		}
		return true
	}
	return false
}

func regIndex(regs []string) map[string]int {
	m := make(map[string]int, len(regs))
	for i, r := range regs {
		m[r] = i
	}
	return m
}

// parseOutcome inverts mc.FormatOutcome for a known thread count.
func parseOutcome(outcome string, threads int) ([][]int, bool) {
	regs := make([][]int, threads)
	for _, f := range strings.Fields(outcome) {
		var t, r, v int
		if _, err := fmt.Sscanf(f, "T%d:r%d=%d", &t, &r, &v); err != nil {
			return nil, false
		}
		if t < 0 || t >= threads {
			return nil, false
		}
		for len(regs[t]) <= r {
			regs[t] = append(regs[t], 0)
		}
		regs[t][r] = v
	}
	return regs, true
}

// PropertyStrings returns the normalized property lines for reports.
func (p *Pair) PropertyStrings() []string {
	var out []string
	for _, pd := range p.Props {
		out = append(out, pd.forbid.text)
	}
	return out
}

// Dump renders the assembled pair as a stable, human-diffable text —
// the golden-file format of the extraction tests. Positions are
// omitted on purpose: the dump must not churn when unrelated lines
// move.
func (p *Pair) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pair %s", p.Name)
	if p.ExpectFail {
		b.WriteString(" expect=fail")
	}
	fmt.Fprintf(&b, " threads=%d\n", p.Threads())
	if p.Failed {
		b.WriteString("  FAILED (see diagnostics)\n")
		return b.String()
	}
	for i, v := range p.Vars {
		fmt.Fprintf(&b, "  var %d = %s\n", i, v)
	}
	dumpRole := func(role string, ops []AbsOp, regs []string) {
		fmt.Fprintf(&b, "  %s:\n", role)
		reg := 0
		for i, op := range ops {
			note := ""
			if op.Kind == mc.OpLoad || op.Kind == mc.OpRMW {
				note = fmt.Sprintf("  -> r%d (%s)", reg, regs[reg])
				reg++
			}
			fmt.Fprintf(&b, "    %2d: %-18s%s  [%s]\n", i, op.String(), note, op.Fn)
		}
	}
	dumpRole("writer (T0)", p.WriterOps, p.WriterRegs)
	roleName := "reader (T1)"
	if p.Copies > 1 {
		roleName = fmt.Sprintf("reader (T1..T%d)", p.Copies)
	}
	dumpRole(roleName, p.ReaderOps, p.ReaderRegs)
	for _, pd := range p.Props {
		fmt.Fprintf(&b, "  forbid %s\n", pd.forbid.text)
	}
	return b.String()
}
