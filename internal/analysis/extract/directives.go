// Package extract lifts annotated Go functions into the mc package's
// abstract TSO op vocabulary and model-checks the result: the back end
// of cmd/tbtso-verify. Where tbtso-lint (package analysis) enforces the
// SYNTACTIC fence discipline — fast paths don't fence, slow paths do —
// this package checks that the annotated code is actually CORRECT under
// TBTSO[Δ]: the protocol-kernel helpers of the real FFHP and FFBL fast
// paths are translated into St/Ld/Fence/RMW/Wait programs, assembled
// into writer/reader pairs, and exhaustively explored across a Δ sweep,
// producing machine-readable certificates or concrete counterexamples.
//
// The annotation grammar (full reference in docs/VERIFY.md):
//
//	//tbtso:verify pair=<name> role=<writer|reader> [step=<k>] [copies=<n>]
//	    on a function doc comment: the function is one protocol step of
//	    the named pair. The writer is the fence-free fast path (thread
//	    T0); the reader is the fencing slow path (threads T1..Tn, with
//	    copies replicating it). A role's steps concatenate in step order.
//	//tbtso:property pair=<name> [expect=fail] forbid <atom> && <atom>...
//	    anywhere in a comment: declares the safety property. An atom is
//	    <role>.<reg> <op> <int> with op one of == != < <= > >=; several
//	    property lines for one pair OR together. expect=fail marks a
//	    planted negative control: the pair must be REFUTED at Δ=0.
//	//tbtso:model val=<n>
//	    trailing comment on a store/RMW whose written value is not a
//	    compile-time constant: the abstract value to use.
//	//tbtso:model wait | //tbtso:model wait=<n>
//	    trailing comment on a spin loop: model it as a Wait op. Without
//	    =n the wait scales with the sweep (Δ+1, the adequate wait of the
//	    flag principle); with =n it is fixed (for planted inadequate
//	    waits). Loops spinning on core.Bound.Eligible or Thread.Clock
//	    are recognized without the marker.
//	//tbtso:shared
//	    on a struct field or package var declaration: plain (non-atomic)
//	    accesses of it are modeled as St/Ld instead of being treated as
//	    unmodelable.
//
// Everything the extractor cannot soundly model is rejected with a
// diagnostic naming the construct — never silently dropped.
package extract

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"tbtso/internal/analysis"
)

// Check is the diagnostic check name for everything this package
// reports (extraction rejections, pair-assembly problems, and
// certification failures).
const Check = "verify"

// Roles.
const (
	RoleWriter = "writer"
	RoleReader = "reader"
)

const annotationPrefix = "//tbtso:"

// verifyArgs is a parsed //tbtso:verify directive.
type verifyArgs struct {
	pair   string
	role   string
	step   int
	copies int
}

// modelDir is a parsed //tbtso:model line directive.
type modelDir struct {
	isVal  bool
	isWait bool
	n      int // value for val=, fixed ticks for wait=; -1 for bare wait
}

// propertyDecl is a parsed //tbtso:property line.
type propertyDecl struct {
	pair       string
	expectFail bool
	forbid     *forbidExpr
	pos        token.Position
}

// directives aggregates every extraction directive found in the loaded
// packages.
type directives struct {
	// models maps filename -> line -> directive.
	models map[string]map[int]modelDir
	// shared maps filename -> line numbers carrying a //tbtso:shared
	// designation (the field/var declared on that line or the next).
	shared map[string]map[int]bool
	// properties in file/position order.
	properties []propertyDecl

	diags []analysis.Diagnostic
}

func splitDirective(text string) (dir, rest string, ok bool) {
	body, found := strings.CutPrefix(text, annotationPrefix)
	if !found {
		return "", "", false
	}
	fields := strings.SplitN(body, " ", 2)
	dir = strings.TrimSpace(fields[0])
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	return dir, rest, true
}

// collectDirectives scans all comments of all packages.
func collectDirectives(pkgs []*analysis.Package) *directives {
	d := &directives{
		models: make(map[string]map[int]modelDir),
		shared: make(map[string]map[int]bool),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d.collect(p, c)
				}
			}
		}
	}
	return d
}

func (d *directives) errorf(pos token.Position, format string, args ...any) {
	d.diags = append(d.diags, analysis.Diagnostic{
		Pos: pos, Check: Check, Message: fmt.Sprintf(format, args...),
	})
}

func (d *directives) collect(p *analysis.Package, c *ast.Comment) {
	dir, rest, ok := splitDirective(c.Text)
	if !ok {
		return
	}
	pos := p.Fset.Position(c.Pos())
	switch dir {
	case "model":
		md, err := parseModel(rest)
		if err != nil {
			d.errorf(pos, "%v", err)
			return
		}
		m := d.models[pos.Filename]
		if m == nil {
			m = make(map[int]modelDir)
			d.models[pos.Filename] = m
		}
		if _, dup := m[pos.Line]; dup {
			d.errorf(pos, "duplicate //tbtso:model directive on this line")
			return
		}
		m[pos.Line] = md
	case "shared":
		m := d.shared[pos.Filename]
		if m == nil {
			m = make(map[int]bool)
			d.shared[pos.Filename] = m
		}
		m[pos.Line] = true
	case "property":
		pd, err := parseProperty(rest)
		if err != nil {
			d.errorf(pos, "%v", err)
			return
		}
		pd.pos = pos
		d.properties = append(d.properties, pd)
	}
}

// parseModel parses "val=<n>", "wait" or "wait=<n>".
func parseModel(rest string) (modelDir, error) {
	switch {
	case rest == "wait":
		return modelDir{isWait: true, n: -1}, nil
	case strings.HasPrefix(rest, "wait="):
		n, err := strconv.Atoi(strings.TrimPrefix(rest, "wait="))
		if err != nil || n < 1 {
			return modelDir{}, fmt.Errorf("//tbtso:model wait=<n> needs a positive integer, got %q", rest)
		}
		return modelDir{isWait: true, n: n}, nil
	case strings.HasPrefix(rest, "val="):
		n, err := strconv.Atoi(strings.TrimPrefix(rest, "val="))
		if err != nil {
			return modelDir{}, fmt.Errorf("//tbtso:model val=<n> needs an integer, got %q", rest)
		}
		return modelDir{isVal: true, n: n}, nil
	}
	return modelDir{}, fmt.Errorf("unknown //tbtso:model form %q (valid: val=<n>, wait, wait=<n>)", rest)
}

// parseVerify parses the key=value arguments of a //tbtso:verify
// directive.
func parseVerify(rest string) (verifyArgs, error) {
	va := verifyArgs{}
	for _, f := range strings.Fields(rest) {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return va, fmt.Errorf("//tbtso:verify arguments are key=value, got %q", f)
		}
		switch key {
		case "pair":
			va.pair = val
		case "role":
			if val != RoleWriter && val != RoleReader {
				return va, fmt.Errorf("//tbtso:verify role must be writer or reader, got %q", val)
			}
			va.role = val
		case "step":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return va, fmt.Errorf("//tbtso:verify step=<k> needs a positive integer, got %q", val)
			}
			va.step = n
		case "copies":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > 3 {
				return va, fmt.Errorf("//tbtso:verify copies=<n> needs an integer in 1..3 (programs are 2-4 threads), got %q", val)
			}
			va.copies = n
		default:
			return va, fmt.Errorf("unknown //tbtso:verify argument %q", key)
		}
	}
	if va.pair == "" || va.role == "" {
		return va, fmt.Errorf("//tbtso:verify needs pair=<name> and role=<writer|reader>")
	}
	return va, nil
}

// forbidExpr is the conjunction of atoms after "forbid".
type forbidExpr struct {
	atoms []propAtom
	text  string // normalized source form
}

type propAtom struct {
	role string // writer | reader
	reg  string // register (location) name
	op   string // == != < <= > >=
	val  int
}

var atomOps = []string{"==", "!=", "<=", ">=", "<", ">"}

// parseProperty parses "pair=<name> [expect=fail] forbid <atoms>".
func parseProperty(rest string) (propertyDecl, error) {
	pd := propertyDecl{}
	fields := strings.Fields(rest)
	i := 0
	sawForbid := false
	for ; i < len(fields); i++ {
		if fields[i] == "forbid" {
			i++
			sawForbid = true
			break
		}
		key, val, ok := strings.Cut(fields[i], "=")
		if !ok {
			return pd, fmt.Errorf("//tbtso:property arguments before forbid are key=value, got %q", fields[i])
		}
		switch key {
		case "pair":
			pd.pair = val
		case "expect":
			if val != "fail" {
				return pd, fmt.Errorf("//tbtso:property expect only accepts fail, got %q", val)
			}
			pd.expectFail = true
		default:
			return pd, fmt.Errorf("unknown //tbtso:property argument %q", key)
		}
	}
	if pd.pair == "" {
		return pd, fmt.Errorf("//tbtso:property needs pair=<name>")
	}
	if !sawForbid {
		return pd, fmt.Errorf("//tbtso:property needs a forbid clause")
	}
	expr, err := parseForbid(strings.Join(fields[i:], " "))
	if err != nil {
		return pd, err
	}
	if len(expr.atoms) == 0 {
		return pd, fmt.Errorf("//tbtso:property forbid clause is empty")
	}
	pd.forbid = expr
	return pd, nil
}

// parseForbid parses "<role>.<reg> <op> <int> && ...".
func parseForbid(s string) (*forbidExpr, error) {
	expr := &forbidExpr{}
	var norm []string
	for _, part := range strings.Split(s, "&&") {
		part = strings.TrimSpace(part)
		var a propAtom
		found := false
		for _, op := range atomOps {
			if lhs, rhs, ok := strings.Cut(part, op); ok {
				a.op = op
				lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)
				role, reg, ok := strings.Cut(lhs, ".")
				if !ok || (role != RoleWriter && role != RoleReader) || reg == "" {
					return nil, fmt.Errorf("forbid atom %q: left side must be writer.<reg> or reader.<reg>", part)
				}
				n, err := strconv.Atoi(rhs)
				if err != nil {
					return nil, fmt.Errorf("forbid atom %q: right side must be an integer", part)
				}
				a.role, a.reg, a.val = role, reg, n
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("forbid atom %q: no comparison operator (%s)", part, strings.Join(atomOps, " "))
		}
		expr.atoms = append(expr.atoms, a)
		norm = append(norm, fmt.Sprintf("%s.%s %s %d", a.role, a.reg, a.op, a.val))
	}
	expr.text = strings.Join(norm, " && ")
	return expr, nil
}

// eval applies one atom to a register value.
func (a propAtom) eval(v int) bool {
	switch a.op {
	case "==":
		return v == a.val
	case "!=":
		return v != a.val
	case "<":
		return v < a.val
	case "<=":
		return v <= a.val
	case ">":
		return v > a.val
	case ">=":
		return v >= a.val
	}
	return false
}

// modelAt returns the model directive attached to the given position's
// line, if any.
func (d *directives) modelAt(pos token.Position) (modelDir, bool) {
	m, ok := d.models[pos.Filename]
	if !ok {
		return modelDir{}, false
	}
	md, ok := m[pos.Line]
	return md, ok
}

// sharedAt reports whether a declaration at pos carries a
// //tbtso:shared designation (trailing comment on the same line, or a
// comment on the line above).
func (d *directives) sharedAt(pos token.Position) bool {
	m, ok := d.shared[pos.Filename]
	if !ok {
		return false
	}
	return m[pos.Line] || m[pos.Line-1]
}

// sortDiags orders diagnostics the same way Analyzer.Run does.
func sortDiags(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
