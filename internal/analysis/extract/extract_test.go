package extract

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tbtso/internal/analysis"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// load type-checks the given module-relative package dirs through one
// shared loader, exactly as tbtso-verify does.
func load(t *testing.T, patterns ...string) []*analysis.Package {
	t.Helper()
	pkgs, _, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func pairByName(t *testing.T, ex *Extraction, name string) *Pair {
	t.Helper()
	for _, p := range ex.Pairs {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("pair %s not extracted (have %d pairs)", name, len(ex.Pairs))
	return nil
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("dump drifted from %s (rerun with -update if intended):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestExtractRealPairs locks down the abstract programs extracted from
// the REAL protocol kernels — the annotated FFHP and FFBL paths in
// internal/smr, internal/lock and internal/machalg — as golden dumps.
// A refactor that changes what tbtso-verify certifies must show up
// here as a reviewed diff.
func TestExtractRealPairs(t *testing.T) {
	ex := Extract(load(t, "internal/smr", "internal/lock", "internal/machalg"))
	for _, d := range ex.Diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	want := []string{"ffbl", "ffbl-mach", "ffbl-tso", "ffhp"}
	if len(ex.Pairs) != len(want) {
		t.Fatalf("extracted %d pairs, want %d", len(ex.Pairs), len(want))
	}
	for _, name := range want {
		p := pairByName(t, ex, name)
		if p.Failed {
			t.Errorf("pair %s failed extraction", name)
			continue
		}
		checkGolden(t, "dump_"+name+".golden", p.Dump())
	}
}

// TestExtractTestdataPairs pins the extraction of the self-contained
// testdata pairs, including the //tbtso:shared plain-variable path and
// the fixed //tbtso:model wait=1.
func TestExtractTestdataPairs(t *testing.T) {
	ex := Extract(load(t, "internal/analysis/extract/testdata/src/pairs"))
	for _, d := range ex.Diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	var dumps []string
	for _, name := range []string{"sb", "sb-shared", "sb-shortwait", "sb-tso"} {
		p := pairByName(t, ex, name)
		if p.Failed {
			t.Errorf("pair %s failed extraction", name)
			continue
		}
		dumps = append(dumps, p.Dump())
	}
	checkGolden(t, "dump_testdata.golden", strings.Join(dumps, "\n"))
}

// TestUnmodelableRejected asserts that deliberately unmodelable
// constructs are conservatively rejected with diagnostics naming the
// construct, and that their pairs come back unusable.
func TestUnmodelableRejected(t *testing.T) {
	ex := Extract(load(t, "internal/analysis/extract/testdata/src/bad"))
	for _, name := range []string{"bad", "bad-nonconst"} {
		if p := pairByName(t, ex, name); !p.Failed {
			t.Errorf("pair %s should have failed extraction", name)
		}
	}
	wantFragments := []string{
		"conditional control flow",
		"a channel send",
		"non-constant stored value",
	}
	for _, frag := range wantFragments {
		found := false
		for _, d := range ex.Diags {
			if strings.Contains(d.Message, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic mentions %q; got:\n%s", frag, diagLines(ex.Diags))
		}
	}
	for _, d := range ex.Diags {
		if d.Check != Check {
			t.Errorf("diagnostic under check %q, want %q: %s", d.Check, Check, d)
		}
	}
}

func diagLines(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// TestDirectiveErrors covers the grammar diagnostics for malformed
// directives.
func TestDirectiveErrors(t *testing.T) {
	cases := []struct {
		give string
		want string
	}{
		{"role=writer", "needs pair="},
		{"pair=p role=judge", "role must be writer or reader"},
		{"pair=p role=writer step=0", "step=<k> needs a positive integer"},
		{"pair=p role=reader copies=9", "copies=<n> needs an integer in 1..3"},
		{"pair=p role=writer bogus=1", "unknown //tbtso:verify argument"},
	}
	for _, c := range cases {
		if _, err := parseVerify(c.give); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseVerify(%q) = %v, want error containing %q", c.give, err, c.want)
		}
	}
	propCases := []struct {
		give string
		want string
	}{
		{"forbid writer.r == 0", "needs pair="},
		{"pair=p", "needs a forbid clause"},
		{"pair=p expect=maybe forbid writer.r == 0", "expect only accepts fail"},
		{"pair=p forbid writer.r ~ 0", "no comparison operator"},
		{"pair=p forbid judge.r == 0", "must be writer.<reg> or reader.<reg>"},
		{"pair=p forbid writer.r == zero", "must be an integer"},
	}
	for _, c := range propCases {
		if _, err := parseProperty(c.give); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseProperty(%q) = %v, want error containing %q", c.give, err, c.want)
		}
	}
}
