package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// annotationPrefix introduces every analyzer directive.
const annotationPrefix = "//tbtso:"

// funcFacts records the directives attached to one function declaration.
type funcFacts struct {
	decl          *ast.FuncDecl
	pkg           *Package
	fenceFree     bool
	requiresFence bool
	// ignores maps check name -> justified for function-scoped
	// //tbtso:ignore directives in the doc comment.
	ignores map[string]bool
}

// lineIgnore is a //tbtso:ignore directive tied to a source line; it
// suppresses matching diagnostics on its own line and the line below
// (so both trailing comments and comment-above styles work).
type lineIgnore struct {
	checks    map[string]bool
	justified bool
}

// funcRange is the source extent of a function with doc-level ignores.
type funcRange struct {
	file       string
	start, end int // line numbers, inclusive
	ignores    map[string]bool
}

// factTable aggregates annotation facts across all packages.
type factTable struct {
	// byFunc maps the types object of each annotated or declared
	// module function to its facts (every module FuncDecl gets an
	// entry; most have no directives).
	byFunc map[*types.Func]*funcFacts
	// bodies maps module function objects to their declarations, for
	// transitive traversal.
	bodies map[*types.Func]*ast.FuncDecl
	// declPkg maps module function objects to their package (for Info
	// lookups while traversing bodies).
	declPkg map[*types.Func]*Package
	// lineIgnores maps filename -> line -> directive.
	lineIgnores map[string]map[int]*lineIgnore
	funcRanges  []funcRange
	// modulePath scopes "same module" decisions.
	modulePath string

	annotationErrors []Diagnostic
}

// collectFacts scans every package for directives and function bodies.
func collectFacts(pkgs []*Package) *factTable {
	ft := &factTable{
		byFunc:      make(map[*types.Func]*funcFacts),
		bodies:      make(map[*types.Func]*ast.FuncDecl),
		declPkg:     make(map[*types.Func]*Package),
		lineIgnores: make(map[string]map[int]*lineIgnore),
	}
	if len(pkgs) > 0 {
		ft.modulePath = moduleOf(pkgs[0].Path)
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ft.collectFile(p, f)
		}
	}
	return ft
}

// moduleOf extracts the module path prefix from an import path loaded
// by our Loader ("tbtso/internal/smr" -> "tbtso").
func moduleOf(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i]
	}
	return path
}

func (ft *factTable) collectFile(p *Package, f *ast.File) {
	// Line-scoped ignore directives can appear in any comment group.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			ft.collectComment(p, c)
		}
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		obj, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		facts := &funcFacts{decl: fd, pkg: p, ignores: make(map[string]bool)}
		ft.byFunc[obj] = facts
		if fd.Body != nil {
			ft.bodies[obj] = fd
			ft.declPkg[obj] = p
		}
		if fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			ft.applyFuncDirective(p, facts, fd, c)
		}
		if facts.fenceFree && facts.requiresFence {
			ft.annotationErrors = append(ft.annotationErrors, Diagnostic{
				Pos:     p.Fset.Position(fd.Name.Pos()),
				Check:   CheckAnnotation,
				Message: "function is annotated both //tbtso:fencefree and //tbtso:requires-fence",
			})
		}
	}
}

// applyFuncDirective interprets one doc-comment line of a function.
func (ft *factTable) applyFuncDirective(p *Package, facts *funcFacts, fd *ast.FuncDecl, c *ast.Comment) {
	dir, rest, ok := splitDirective(c.Text)
	if !ok {
		return
	}
	switch dir {
	case "fencefree":
		facts.fenceFree = true
	case "requires-fence":
		facts.requiresFence = true
	case "verify", "property", "model", "shared":
		// Extraction directives consumed by internal/analysis/extract
		// (tbtso-verify). Their grammar is validated there; the lint
		// checks only need to not mistake them for typos.
	case "ignore":
		// Doc comments are also visited by collectComment (they appear
		// in File.Comments), which validates and reports problems; here
		// we only widen a valid ignore to the whole function body.
		check, justified := parseIgnoreArgs(rest)
		if check == "" || !ValidCheck(check) || !justified {
			return
		}
		facts.ignores[check] = true
		pos := p.Fset.Position(fd.Pos())
		end := p.Fset.Position(fd.End())
		ft.funcRanges = append(ft.funcRanges, funcRange{
			file:    pos.Filename,
			start:   pos.Line,
			end:     end.Line,
			ignores: map[string]bool{check: true},
		})
	default:
		ft.annotationErrors = append(ft.annotationErrors, Diagnostic{
			Pos:     p.Fset.Position(c.Pos()),
			Check:   CheckAnnotation,
			Message: "unknown directive //tbtso:" + dir,
		})
	}
}

// collectComment handles line-scoped //tbtso:ignore directives. Other
// //tbtso: directives outside function doc comments are diagnosed when
// they are ignores with problems; fencefree/requires-fence directives
// attached to functions are handled by applyFuncDirective (doc comments
// are also part of f.Comments, so this must not double-report them).
func (ft *factTable) collectComment(p *Package, c *ast.Comment) {
	dir, rest, ok := splitDirective(c.Text)
	if !ok || dir != "ignore" {
		return
	}
	check, justified := parseIgnoreArgs(rest)
	if !ft.validateIgnore(p, c.Pos(), check, justified) {
		return
	}
	pos := p.Fset.Position(c.Pos())
	m := ft.lineIgnores[pos.Filename]
	if m == nil {
		m = make(map[int]*lineIgnore)
		ft.lineIgnores[pos.Filename] = m
	}
	li := m[pos.Line]
	if li == nil {
		li = &lineIgnore{checks: make(map[string]bool)}
		m[pos.Line] = li
	}
	li.checks[check] = true
	li.justified = justified
}

// validateIgnore reports grammar problems with an ignore directive; it
// returns false when the directive must not take effect.
func (ft *factTable) validateIgnore(p *Package, pos token.Pos, check string, justified bool) bool {
	if check == "" || !ValidCheck(check) {
		ft.annotationErrors = append(ft.annotationErrors, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Check:   CheckAnnotation,
			Message: "//tbtso:ignore needs a known check name (" + strings.Join(AllChecks, ", ") + " or all), got " + strings.TrimSpace("\""+check+"\""),
		})
		return false
	}
	if !justified {
		ft.annotationErrors = append(ft.annotationErrors, Diagnostic{
			Pos:     p.Fset.Position(pos),
			Check:   CheckAnnotation,
			Message: "//tbtso:ignore " + check + " has no justification; write //tbtso:ignore " + check + " <why this is safe>",
		})
		return false
	}
	return true
}

// splitDirective parses "//tbtso:<dir> rest..." comment text.
func splitDirective(text string) (dir, rest string, ok bool) {
	body, found := strings.CutPrefix(text, annotationPrefix)
	if !found {
		return "", "", false
	}
	fields := strings.SplitN(body, " ", 2)
	dir = strings.TrimSpace(fields[0])
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	return dir, rest, true
}

// parseIgnoreArgs splits "check justification..." after an ignore.
func parseIgnoreArgs(rest string) (check string, justified bool) {
	fields := strings.SplitN(rest, " ", 2)
	check = strings.TrimSpace(fields[0])
	justified = len(fields) == 2 && strings.TrimSpace(fields[1]) != ""
	return check, justified
}

// suppressed reports whether a diagnostic of the given check at pos is
// covered by a justified ignore (same line, the line above, or an
// enclosing function-scoped ignore).
func (ft *factTable) suppressed(check string, pos token.Position) bool {
	if m := ft.lineIgnores[pos.Filename]; m != nil {
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			if li := m[line]; li != nil && li.justified && (li.checks[check] || li.checks["all"]) {
				return true
			}
		}
	}
	for _, fr := range ft.funcRanges {
		if fr.file == pos.Filename && pos.Line >= fr.start && pos.Line <= fr.end &&
			(fr.ignores[check] || fr.ignores["all"]) {
			return true
		}
	}
	return false
}

// isModuleFunc reports whether fn is declared inside the module under
// analysis (as opposed to stdlib or elsewhere).
func (ft *factTable) isModuleFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && (fn.Pkg().Path() == ft.modulePath ||
		strings.HasPrefix(fn.Pkg().Path(), ft.modulePath+"/"))
}
