package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkEscape flags Go-side shared-memory accesses inside machine code.
//
// A "machine function" is any function or function literal that takes a
// *tso.Thread parameter: its memory actions are supposed to go through
// the Thread Load/Store/CAS/FetchAdd/Swap API so that the TBTSO[Δ]
// machine mediates (and bounds) them. A plain Go write to shared state
// from inside such a function bypasses the model entirely — the store
// is invisible to the machine's store buffers, Δ bound, monitors and
// use-after-free detection.
//
// Flagged inside machine functions:
//
//   - writes (assignment, ++/--) whose target is a package-level
//     variable, a variable captured from an enclosing function, or
//     memory reached through a pointer/slice/map rooted at a parameter
//     or captured variable;
//   - reads of package-level variables;
//   - any use of sync/atomic (atomic Go-side memory is still Go-side
//     memory).
//
// Deliberately not flagged: reads through parameters (immutable
// algorithm configuration — addresses, sizes, mode flags — is the
// normal pattern), writes to pure locals, and calls into non-machine
// helper functions (per-thread bookkeeping such as retirement lists
// lives behind those; the paper keeps rlists thread-private too). Where
// a machine function legitimately keeps Go-side state — thread-private
// result recording, mutex-protected statistics — suppress with a
// justified //tbtso:ignore escape comment.
func checkEscape(pkgs []*Package, ft *factTable) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		// The machine implementation itself is below the model: the
		// tso package's own goroutine plumbing is what DEFINES the
		// Thread API, so it is exempt.
		if strings.HasSuffix(p.Path, "internal/tso") {
			continue
		}
		for _, f := range p.Files {
			diags = append(diags, escapeInFile(p, f)...)
		}
	}
	_ = ft
	return diags
}

// isThreadPtr reports whether t is *tso.Thread.
func isThreadPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Thread" && strings.HasSuffix(n.Obj().Pkg().Path(), "internal/tso")
}

// hasThreadParam reports whether the signature takes a *tso.Thread.
func hasThreadParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isThreadPtr(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func escapeInFile(p *Package, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	// Find machine functions: declarations and literals with a
	// *tso.Thread parameter.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return true
			}
			if fn, ok := p.Info.Defs[n.Name].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && hasThreadParam(sig) {
					ec := &escapeChecker{p: p, scope: n.Body, fnScope: p.Info.Scopes[n.Type], fname: n.Name.Name}
					diags = append(diags, ec.check()...)
				}
			}
		case *ast.FuncLit:
			if tv, ok := p.Info.Types[n]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok && hasThreadParam(sig) {
					ec := &escapeChecker{p: p, scope: n.Body, fnScope: p.Info.Scopes[n.Type], fname: "machine thread function"}
					diags = append(diags, ec.check()...)
				}
			}
		}
		return true
	})
	return diags
}

type escapeChecker struct {
	p        *Package
	scope    *ast.BlockStmt
	fnScope  *types.Scope // function scope: receiver + params + results
	fname    string
	diags    []Diagnostic
	reported map[token.Pos]bool // idents already reported as writes
}

func (ec *escapeChecker) check() []Diagnostic {
	ec.reported = make(map[token.Pos]bool)
	ast.Inspect(ec.scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested machine literal is checked on its own; a nested
			// non-machine literal still executes in machine context, so
			// keep descending into it.
			if tv, ok := ec.p.Info.Types[n]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok && hasThreadParam(sig) {
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ec.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			ec.checkWrite(n.X)
		case *ast.UnaryExpr:
			// Taking the address of shared state inside machine code is
			// treated as a write-capable access.
			if n.Op == token.AND {
				ec.checkWrite(n.X)
			}
		case *ast.Ident:
			ec.checkGlobalRead(n)
		case *ast.CallExpr:
			ec.checkAtomicCall(n)
		}
		return true
	})
	return ec.diags
}

// report appends a diagnostic anchored at n.
func (ec *escapeChecker) report(n ast.Node, format string, args ...any) {
	ec.diags = append(ec.diags, Diagnostic{
		Pos:     ec.p.Fset.Position(n.Pos()),
		Check:   CheckEscape,
		Message: fmt.Sprintf(format, args...),
	})
}

// checkWrite classifies the lvalue and flags writes that reach memory
// outside the machine model.
func (ec *escapeChecker) checkWrite(lhs ast.Expr) {
	root, deref := ec.lvalueRoot(lhs)
	if root == nil {
		// Writing through an arbitrary expression (call result, etc.).
		if deref {
			ec.report(lhs, "%s writes Go memory through an expression the machine model cannot see; use the *tso.Thread API or add //tbtso:ignore escape <why>", ec.fname)
		}
		return
	}
	obj, ok := ec.p.Info.Uses[root].(*types.Var)
	if !ok {
		if def, okd := ec.p.Info.Defs[root].(*types.Var); okd {
			obj = def
			ok = true
		}
	}
	if !ok || obj.IsField() {
		return
	}
	switch {
	case ec.isPackageLevel(obj):
		ec.reported[root.Pos()] = true
		ec.report(root, "%s writes package-level variable %s, bypassing the *tso.Thread memory API", ec.fname, obj.Name())
	case !ec.declaredInScope(obj):
		ec.report(root, "%s writes %s, which is captured from an enclosing function and so is shared Go memory outside the machine model", ec.fname, obj.Name())
	case deref && ec.isParam(obj):
		ec.report(lhs, "%s writes shared Go memory reached through parameter %s, bypassing the *tso.Thread memory API", ec.fname, obj.Name())
	}
}

// checkGlobalRead flags reads of package-level variables.
func (ec *escapeChecker) checkGlobalRead(id *ast.Ident) {
	if ec.reported[id.Pos()] {
		return
	}
	obj, ok := ec.p.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() || !ec.isPackageLevel(obj) {
		return
	}
	ec.report(id, "%s reads package-level variable %s, bypassing the *tso.Thread memory API", ec.fname, obj.Name())
}

// checkAtomicCall flags sync/atomic use inside machine code.
func (ec *escapeChecker) checkAtomicCall(call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	fn, ok := ec.p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "sync/atomic" {
		ec.report(call, "%s uses sync/atomic (%s) inside machine code; Go-side atomics bypass the TBTSO model — use th.CAS/th.FetchAdd/th.Swap", ec.fname, fn.Name())
	}
}

// lvalueRoot walks an lvalue to its root identifier, reporting whether
// the path passes through a pointer, slice or map (i.e. may reach
// memory not owned by the root variable itself).
func (ec *escapeChecker) lvalueRoot(e ast.Expr) (*ast.Ident, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e, false
	case *ast.ParenExpr:
		return ec.lvalueRoot(e.X)
	case *ast.StarExpr:
		root, _ := ec.lvalueRoot(e.X)
		return root, true
	case *ast.SelectorExpr:
		root, deref := ec.lvalueRoot(e.X)
		if tv, ok := ec.p.Info.Types[e.X]; ok {
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				deref = true
			}
		}
		return root, deref
	case *ast.IndexExpr:
		root, deref := ec.lvalueRoot(e.X)
		if tv, ok := ec.p.Info.Types[e.X]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				deref = true
			}
		}
		return root, deref
	}
	return nil, true
}

func (ec *escapeChecker) isPackageLevel(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// declaredInScope reports whether v is declared inside the machine
// function being checked (parameters included).
func (ec *escapeChecker) declaredInScope(v *types.Var) bool {
	return v.Pos() >= ec.scope.Pos() && v.Pos() <= ec.scope.End() || ec.isParam(v)
}

// isParam reports whether v is a parameter or receiver of the machine
// function. go/types places receiver, parameters AND the body's
// top-level locals in the scope keyed by the FuncType, so the position
// test distinguishes the two: only receiver/params precede the body.
func (ec *escapeChecker) isParam(v *types.Var) bool {
	return ec.fnScope != nil && v.Pos() < ec.scope.Pos() && ec.fnScope.Lookup(v.Name()) == v
}
