package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// fenceFuncs identifies the repository's fence primitives: calling any
// of these drains the store buffer (§2's fence action). The analyzer
// matches by package suffix + receiver + name so it keeps working if
// the module is ever renamed.
var fenceFuncs = []struct {
	pkgSuffix string // import-path suffix
	recv      string // receiver type name ("" = package function)
	name      string
}{
	{"internal/fence", "Line", "Full"},
	{"internal/fence", "Lines", "Full"},
	{"internal/tso", "Thread", "Fence"},
}

// isFencePrimitive reports whether fn is one of the fence primitives.
func isFencePrimitive(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	recv := receiverTypeName(fn)
	for _, ff := range fenceFuncs {
		if strings.HasSuffix(path, ff.pkgSuffix) && fn.Name() == ff.name && recv == ff.recv {
			return true
		}
	}
	return false
}

// receiverTypeName returns the name of fn's receiver type ("" for
// package functions), with any pointer indirection stripped.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkFenceDiscipline runs the fencefree and requires-fence checks.
func checkFenceDiscipline(pkgs []*Package, ft *factTable) []Diagnostic {
	fc := &fenceChecker{ft: ft, always: make(map[*types.Func]int8)}
	var diags []Diagnostic
	for _, p := range pkgs {
		for fn, facts := range ft.byFunc {
			if facts.pkg != p { // report in deterministic package order
				continue
			}
			if facts.fenceFree {
				diags = append(diags, fc.checkFenceFree(p, fn, facts)...)
			}
			if facts.requiresFence {
				diags = append(diags, fc.checkRequiresFence(p, fn, facts)...)
			}
		}
	}
	return diags
}

type fenceChecker struct {
	ft *factTable
	// always memoizes whether a module function fences on every path:
	// 0 unknown, 1 yes, -1 no/in-progress (cycles resolve to no).
	always map[*types.Func]int8
}

// callSite is one resolved static call inside a function body.
type callSite struct {
	fn   *types.Func
	call *ast.CallExpr
}

// callsIn returns the statically resolvable calls in a body. Calls
// through interfaces or function values are not resolvable and are
// skipped (a documented soundness gap: route fences through concrete
// calls, as the repository does). Function literals are traversed —
// they may run on any path, so for the fencefree check their calls
// count; the requires-fence path analysis never treats them as sure.
func callsIn(p *Package, body ast.Node) []callSite {
	var out []callSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := p.Info.Uses[id].(*types.Func); ok {
			out = append(out, callSite{fn: fn, call: call})
		}
		return true
	})
	return out
}

// checkFenceFree verifies that fn never reaches a fence primitive
// through same-module calls.
func (fc *fenceChecker) checkFenceFree(p *Package, fn *types.Func, facts *funcFacts) []Diagnostic {
	if facts.decl.Body == nil {
		return nil
	}
	var diags []Diagnostic
	for _, cs := range callsIn(p, facts.decl.Body) {
		if chain := fc.fenceChain(cs.fn, map[*types.Func]bool{fn: true}); chain != "" {
			msg := fmt.Sprintf("%s is annotated //tbtso:fencefree but %s", fn.Name(), chain)
			diags = append(diags, Diagnostic{
				Pos:     p.Fset.Position(cs.call.Pos()),
				Check:   CheckFenceFree,
				Message: msg,
			})
		}
	}
	return diags
}

// fenceChain reports how callee leads to a fence ("calls a.Full" or
// "calls x, which calls y, which calls a.Full"); "" if it provably
// does not through statically resolvable module calls.
func (fc *fenceChecker) fenceChain(callee *types.Func, visiting map[*types.Func]bool) string {
	if isFencePrimitive(callee) {
		return "calls the fence primitive " + callee.FullName()
	}
	if !fc.ft.isModuleFunc(callee) || visiting[callee] {
		return ""
	}
	if facts, ok := fc.ft.byFunc[callee]; ok && facts.requiresFence {
		return "calls " + callee.FullName() + ", which is annotated //tbtso:requires-fence"
	}
	decl, ok := fc.ft.bodies[callee]
	if !ok || decl.Body == nil {
		return ""
	}
	visiting[callee] = true
	defer delete(visiting, callee)
	p := fc.ft.declPkg[callee]
	for _, cs := range callsIn(p, decl.Body) {
		if chain := fc.fenceChain(cs.fn, visiting); chain != "" {
			return "calls " + callee.FullName() + ", which " + chain
		}
	}
	return ""
}

// checkRequiresFence verifies that fn contains a fence on every path
// (per-block approximation). A body with no fence call at all is the
// hard failure; a body that fences only on some paths gets the weaker
// diagnostic.
func (fc *fenceChecker) checkRequiresFence(p *Package, fn *types.Func, facts *funcFacts) []Diagnostic {
	if facts.decl.Body == nil {
		return nil
	}
	hasAny := false
	for _, cs := range callsIn(p, facts.decl.Body) {
		if fc.surelyFences(cs.fn) || isFencePrimitive(cs.fn) {
			hasAny = true
			break
		}
	}
	if !hasAny {
		return []Diagnostic{{
			Pos:   p.Fset.Position(facts.decl.Name.Pos()),
			Check: CheckRequiresFence,
			Message: fmt.Sprintf("%s is annotated //tbtso:requires-fence but its body contains no fence call at all",
				fn.Name()),
		}}
	}
	if !fc.blockAlwaysFences(p, facts.decl.Body.List) {
		return []Diagnostic{{
			Pos:   p.Fset.Position(facts.decl.Name.Pos()),
			Check: CheckRequiresFence,
			Message: fmt.Sprintf("%s is annotated //tbtso:requires-fence but a path through its body reaches the end without a fence (per-block approximation)",
				fn.Name()),
		}}
	}
	return nil
}

// surelyFences reports whether calling fn is guaranteed to issue a
// fence: fence primitives, //tbtso:requires-fence contracts, and module
// functions whose bodies fence on every path (computed transitively).
func (fc *fenceChecker) surelyFences(fn *types.Func) bool {
	if isFencePrimitive(fn) {
		return true
	}
	if !fc.ft.isModuleFunc(fn) {
		return false
	}
	if facts, ok := fc.ft.byFunc[fn]; ok && facts.requiresFence {
		return true
	}
	switch fc.always[fn] {
	case 1:
		return true
	case -1:
		return false
	}
	fc.always[fn] = -1 // cycle / in-progress resolves to "not sure"
	decl, ok := fc.ft.bodies[fn]
	if !ok || decl.Body == nil {
		return false
	}
	p := fc.ft.declPkg[fn]
	if fc.blockAlwaysFences(p, decl.Body.List) {
		fc.always[fn] = 1
		return true
	}
	return false
}

// blockAlwaysFences reports whether every execution that falls through
// the statement list performs a fence. The approximation is per-block:
// loops may run zero times, so they never count; an if counts only when
// both branches do; short-circuit operands are treated as evaluated.
func (fc *fenceChecker) blockAlwaysFences(p *Package, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if fc.stmtAlwaysFences(p, s) {
			return true
		}
	}
	return false
}

func (fc *fenceChecker) stmtAlwaysFences(p *Package, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return fc.exprSurelyFences(p, s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			if fc.exprSurelyFences(p, e) {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			if fc.exprSurelyFences(p, e) {
				return true
			}
		}
	case *ast.IfStmt:
		if s.Init != nil && fc.stmtAlwaysFences(p, s.Init) {
			return true
		}
		if fc.exprSurelyFences(p, s.Cond) {
			return true
		}
		if s.Else == nil {
			return false
		}
		thenFences := fc.blockAlwaysFences(p, s.Body.List)
		elseFences := fc.stmtAlwaysFences(p, s.Else)
		return thenFences && elseFences
	case *ast.BlockStmt:
		return fc.blockAlwaysFences(p, s.List)
	case *ast.LabeledStmt:
		return fc.stmtAlwaysFences(p, s.Stmt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Conservatively not sure (a missing default skips all bodies).
		return false
	case *ast.DeferStmt:
		// A deferred fence runs on every exit; it does not order the
		// body's own accesses, so it does not count as a sure fence.
		return false
	}
	return false
}

// exprSurelyFences reports whether evaluating e performs a fence via a
// statically resolvable call. Function literals are not descended into:
// defining a closure fences nothing.
func (fc *fenceChecker) exprSurelyFences(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := p.Info.Uses[id].(*types.Func); ok && fc.surelyFences(fn) {
			found = true
			return false
		}
		return true
	})
	return found
}
