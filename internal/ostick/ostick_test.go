package ostick

import (
	"testing"
	"time"

	"tbtso/internal/vclock"
)

func TestBoardAdvances(t *testing.T) {
	b := NewBoard(4, 2*time.Millisecond)
	defer b.Stop()
	t0 := vclock.Now()
	deadline := time.Now().Add(2 * time.Second)
	for !b.AllPast(t0) {
		if time.Now().After(deadline) {
			t.Fatal("board never advanced past t0")
		}
		time.Sleep(time.Millisecond)
	}
	if b.MinTime() <= t0 {
		t.Fatalf("MinTime %d <= t0 %d after AllPast", b.MinTime(), t0)
	}
}

func TestBoardAdvancesWithoutWorkerCooperation(t *testing.T) {
	// The defining property vs. quiescence schemes: the "interrupts"
	// fire regardless of what worker threads do.
	b := NewBoard(2, time.Millisecond)
	defer b.Stop()
	time.Sleep(20 * time.Millisecond)
	if b.Ticks() == 0 {
		t.Fatal("no interrupt rounds fired")
	}
}

func TestWaitAllPast(t *testing.T) {
	b := NewBoard(3, time.Millisecond)
	defer b.Stop()
	t0 := vclock.Now()
	done := make(chan struct{})
	go func() {
		b.WaitAllPast(t0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitAllPast hung")
	}
}

func TestMinTimeIsMin(t *testing.T) {
	b := NewBoard(4, time.Hour) // never ticks during the test
	defer b.Stop()
	b.slots[2].t.Store(-100)
	if got := b.MinTime(); got != -100 {
		t.Fatalf("MinTime = %d, want -100", got)
	}
	if b.AllPast(-100) {
		t.Fatal("AllPast(-100) should be false with an entry == -100")
	}
}
