// Package ostick emulates the OS support of §6.2: an array A in which
// each core's timer-interrupt handler writes the current time, mapped
// read-only into every process. A core's entry being newer than t0
// implies that core's store buffer was flushed after t0 (user/kernel
// transitions drain the store buffer on x86).
//
// The emulation runs one background goroutine that stamps every slot on
// a jittered period, mirroring per-core timer interrupts that fire
// regardless of which user thread is running — so the board keeps
// advancing even when a worker is stalled, exactly as the paper's OS
// mechanism does. The paper itself emulated the mechanism in user space
// with POSIX timers (§7); this is the same idea in Go.
package ostick

import (
	"math/rand"
	"sync/atomic"
	"time"

	"tbtso/internal/fence"
	"tbtso/internal/vclock"
)

// slot is one padded entry of the time array A.
type slot struct {
	t atomic.Int64
	_ [fence.CacheLine - 8]byte
}

// Board is the time array A plus its interrupt emulation.
type Board struct {
	slots  []slot
	period time.Duration
	stop   chan struct{}
	done   chan struct{}
	ticks  atomic.Uint64
}

// NewBoard creates a board with one slot per emulated core and starts
// the timer-interrupt emulation with the given period (the paper uses
// 1–10 ms; its evaluation uses 4 ms).
func NewBoard(cores int, period time.Duration) *Board {
	b := &Board{
		slots:  make([]slot, cores),
		period: period,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	now := vclock.Now()
	for i := range b.slots {
		b.slots[i].t.Store(now)
	}
	go b.run()
	return b
}

func (b *Board) run() {
	defer close(b.done)
	rng := rand.New(rand.NewSource(1))
	// Stamp cores at staggered offsets within each period: real per-core
	// timers are not phase-aligned.
	for {
		select {
		case <-b.stop:
			return
		case <-time.After(b.period):
		}
		for i := range b.slots {
			// Jitter each core's stamp by up to 10% of the period.
			j := time.Duration(rng.Int63n(int64(b.period)/10 + 1))
			b.slots[i].t.Store(vclock.Now() - int64(j))
		}
		b.ticks.Add(1)
	}
}

// Stop halts the interrupt emulation.
func (b *Board) Stop() {
	close(b.stop)
	<-b.done
}

// Cores returns the number of slots.
func (b *Board) Cores() int { return len(b.slots) }

// Ticks reports how many interrupt rounds have fired (for tests).
func (b *Board) Ticks() uint64 { return b.ticks.Load() }

// MinTime returns the minimum entry of A: every store retired before
// this time is globally visible. This is the scan the adapted slow
// paths perform instead of waiting Δ.
func (b *Board) MinTime() int64 {
	min := b.slots[0].t.Load()
	for i := 1; i < len(b.slots); i++ {
		if t := b.slots[i].t.Load(); t < min {
			min = t
		}
	}
	return min
}

// AllPast reports whether every entry of A indicates a time > t0 —
// the §6.2 condition for "every store retired by t0 is visible".
func (b *Board) AllPast(t0 int64) bool {
	for i := range b.slots {
		if b.slots[i].t.Load() <= t0 {
			return false
		}
	}
	return true
}

// WaitAllPast blocks (sleeping in period-sized steps) until AllPast(t0)
// holds. Used only on slow paths.
func (b *Board) WaitAllPast(t0 int64) {
	for !b.AllPast(t0) {
		time.Sleep(b.period / 4)
	}
}
