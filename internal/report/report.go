// Package report renders the benchmark harness's output: aligned ASCII
// tables (one per paper figure), CSV series for external plotting, and
// JSON series for machine consumption (tbtso-bench -json).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	// Interrupted marks a table cut short mid-flight (rows below the
	// last completed cell are missing). It rides the JSON wire form, so
	// machine consumers — tbtso-bench -compare, tbtso-obs — can refuse
	// partial documents without scraping footnote text.
	Interrupted bool
	rows        [][]string
	notes       []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", max(total, len(t.Title))))
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as CSV (headers + rows, comma-separated, fields
// quoted only when needed).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
}

// Rows returns the accumulated rows (for tests).
func (t *Table) Rows() [][]string { return t.rows }

// Notes returns the accumulated footnotes.
func (t *Table) Notes() []string { return t.notes }

// tableJSON is the wire form of a table: the same title/headers/rows
// the text renderers use, as data.
type tableJSON struct {
	Title       string     `json:"title"`
	Headers     []string   `json:"headers"`
	Interrupted bool       `json:"interrupted,omitempty"`
	Rows        [][]string `json:"rows"`
	Notes       []string   `json:"notes,omitempty"`
}

// MarshalJSON implements json.Marshaler: {title, headers, rows, notes}
// with rows as arrays of the already-formatted cell strings, so the
// JSON series matches the CSV column for column.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{
		Title:       t.Title,
		Headers:     t.Headers,
		Interrupted: t.Interrupted,
		Rows:        rows,
		Notes:       t.notes,
	})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of
// MarshalJSON — it lets consumers (tbtso-bench -compare) read a figure
// document back into Tables and diff them cell for cell.
func (t *Table) UnmarshalJSON(data []byte) error {
	var doc tableJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	t.Title, t.Headers, t.rows, t.notes = doc.Title, doc.Headers, doc.Rows, doc.Notes
	t.Interrupted = doc.Interrupted
	return nil
}

// JSON writes the table as indented JSON followed by a newline.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
