package report

import (
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	tb := NewTable("T", "alpha", "b")
	tb.AddRow("x", 12)
	tb.AddRow("longer-cell", 3.14159)
	tb.AddNote("a note %d", 7)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"T\n", "alpha", "longer-cell", "3.14", "note: a note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header and separator must align.
	var header, sep string
	for i, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			header, sep = l, lines[i+1]
			break
		}
	}
	if header == "" || !strings.HasPrefix(sep, "-----") {
		t.Fatalf("missing header/separator:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`comma,value`, `quote"v`)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"comma,value"`) {
		t.Fatalf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"quote""v"`) {
		t.Fatalf("quote not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("missing header: %s", out)
	}
}

func TestRowsAccessor(t *testing.T) {
	tb := NewTable("t", "x")
	tb.AddRow(1)
	tb.AddRow(2)
	if got := len(tb.Rows()); got != 2 {
		t.Fatalf("rows = %d", got)
	}
}
