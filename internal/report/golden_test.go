package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTable exercises the writers' edge cases in one fixture:
// quoting-sensitive cells (commas, quotes, newlines), a cell wider
// than its header, an empty cell, float formatting, and notes.
func goldenTable() *Table {
	tb := NewTable("Golden fixture — writer edge cases", "scheme", "rate", "note")
	tb.AddRow("FFHP[0.5ms]", 1234567.0, "plain")
	tb.AddRow("a,comma", 3.14159, `has "quotes"`)
	tb.AddRow("multi\nline", 0.000123, "")
	tb.AddRow("x", 42, "cell much wider than its header")
	tb.AddNote("100%% reproducible")
	tb.AddNote("second note with a , comma")
	return tb
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenRender(t *testing.T) {
	var buf bytes.Buffer
	goldenTable().Render(&buf)
	checkGolden(t, "golden_render.txt", buf.Bytes())
}

func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	goldenTable().CSV(&buf)
	checkGolden(t, "golden.csv", buf.Bytes())
}

func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTable().JSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.json", buf.Bytes())
}

func TestJSONEmptyTable(t *testing.T) {
	tb := NewTable("empty", "h1", "h2")
	var buf bytes.Buffer
	if err := tb.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	// rows must serialize as [] rather than null for downstream parsers.
	if !bytes.Contains(buf.Bytes(), []byte(`"rows": []`)) {
		t.Fatalf("empty table rows not []: %s", buf.Bytes())
	}
}
