package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbtso/internal/core"
)

func TestSequentialLIFO(t *testing.T) {
	d := New(8, core.Immediate{})
	for v := uint64(1); v <= 5; v++ {
		if !d.Push(v) {
			t.Fatalf("push %d failed", v)
		}
	}
	if d.Size() != 5 {
		t.Fatalf("size = %d", d.Size())
	}
	for want := uint64(5); want >= 1; want-- {
		v, ok := d.Take()
		if !ok || v != want {
			t.Fatalf("take = %d,%v; want %d", v, ok, want)
		}
	}
	if _, ok := d.Take(); ok {
		t.Fatal("take from empty succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal from empty succeeded")
	}
}

func TestFullness(t *testing.T) {
	d := New(4, core.Immediate{})
	for v := uint64(1); v <= 4; v++ {
		if !d.Push(v) {
			t.Fatal("push failed early")
		}
	}
	if d.Push(99) {
		t.Fatal("push to full deque succeeded")
	}
	d.Take()
	if !d.Push(99) {
		t.Fatal("push after take failed")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New(8, core.Immediate{})
	for v := uint64(1); v <= 4; v++ {
		d.Push(v)
	}
	for want := uint64(1); want <= 4; want++ {
		v, ok := d.Steal()
		if !ok || v != want {
			t.Fatalf("steal = %d,%v; want %d", v, ok, want)
		}
	}
}

func TestCapacityValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("capacity %d did not panic", bad)
				}
			}()
			New(bad, core.Immediate{})
		}()
	}
}

// TestConcurrentExactOnce is the native analogue of the machine-level
// soundness test: one owner churning push/take, several thieves
// stealing, every value obtained exactly once.
func TestConcurrentExactOnce(t *testing.T) {
	const (
		items   = 30000
		thieves = 3
	)
	// A small real Δ keeps the test fast while exercising the wait.
	d := New(1024, core.NewFixedDelta(20*time.Microsecond))
	var got sync.Map // value -> *int32 count
	record := func(v uint64) {
		c, _ := got.LoadOrStore(v, new(int32))
		atomic.AddInt32(c.(*int32), 1)
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // owner
		defer wg.Done()
		defer done.Store(true)
		next := uint64(1)
		for next <= items {
			for i := 0; i < 4 && next <= items; i++ {
				if d.Push(next) {
					next++
				}
			}
			if v, ok := d.Take(); ok {
				record(v)
			}
		}
		for {
			v, ok := d.Take()
			if !ok {
				if d.Size() == 0 {
					return
				}
				continue
			}
			record(v)
		}
	}()
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if v, ok := d.Steal(); ok {
					record(v)
				}
			}
			for { // final sweep
				v, ok := d.Steal()
				if !ok {
					return
				}
				record(v)
			}
		}()
	}
	wg.Wait()
	// Anything left in the deque (owner and thieves may both have
	// given up on the same transient) is drained now.
	for {
		v, ok := d.Take()
		if !ok {
			break
		}
		record(v)
	}
	dup, lost := 0, 0
	for v := uint64(1); v <= items; v++ {
		c, ok := got.Load(v)
		switch {
		case !ok:
			lost++
		case atomic.LoadInt32(c.(*int32)) != 1:
			dup++
		}
	}
	if dup != 0 || lost != 0 {
		t.Fatalf("%d duplicated, %d lost of %d items", dup, lost, items)
	}
}

func BenchmarkOwnerPushTake(b *testing.B) {
	d := New(1024, core.NewFixedDelta(500*time.Microsecond))
	for i := 0; i < b.N; i++ {
		d.Push(uint64(i))
		d.Take()
	}
}

func BenchmarkStealUncontended(b *testing.B) {
	d := New(1<<20, core.Immediate{})
	for i := 0; i < b.N; i++ {
		d.Push(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}
