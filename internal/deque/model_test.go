package deque

import (
	"testing"
	"testing/quick"

	"tbtso/internal/core"
)

// TestQuickAgainstSliceModel drives random single-threaded op sequences
// against a plain-slice model of a double-ended queue.
func TestQuickAgainstSliceModel(t *testing.T) {
	f := func(ops []uint8) bool {
		d := New(64, core.Immediate{})
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			switch op % 3 {
			case 0: // push (bottom)
				ok := d.Push(next)
				wantOK := len(model) < 64
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // take (bottom)
				v, ok := d.Take()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if v != want {
						return false
					}
				}
			case 2: // steal (top)
				v, ok := d.Steal()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[0]
					model = model[1:]
					if v != want {
						return false
					}
				}
			}
			if d.Size() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWraparound(t *testing.T) {
	// Push/take far past the capacity to exercise index wrapping.
	d := New(8, core.Immediate{})
	for round := 0; round < 100; round++ {
		for i := uint64(0); i < 8; i++ {
			if !d.Push(round0(round, i)) {
				t.Fatalf("round %d: push failed", round)
			}
		}
		for i := 0; i < 4; i++ {
			if _, ok := d.Take(); !ok {
				t.Fatalf("round %d: take failed", round)
			}
		}
		for i := 0; i < 4; i++ {
			if _, ok := d.Steal(); !ok {
				t.Fatalf("round %d: steal failed", round)
			}
		}
	}
	if d.Size() != 0 {
		t.Fatalf("size = %d after balanced rounds", d.Size())
	}
}

func round0(r int, i uint64) uint64 { return uint64(r)*8 + i }
