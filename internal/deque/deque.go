// Package deque implements a fence-free work-stealing deque on the
// TBTSO principle — the application §8 of the paper points at when
// contrasting TBTSO with the spatially bounded TSO[S]: "fence-free work
// stealing algorithms based on TSO[S] require either relaxed semantics
// or blocking. In contrast, TBTSO's temporal reordering bound
// facilitates nonblocking synchronization."
//
// The owner's Push/Take are the Chase-Lev fast paths with the take-side
// fence removed; the thief's Steal — the infrequent slow path — reads
// top, waits out the visibility bound, and only then reads bottom. The
// machine-checked soundness argument lives in internal/machalg
// (deque.go / deque_test.go): without the wait the classic TSO
// double-take reappears; with it, at most one of {owner, thief} obtains
// each item. In native Go the atomics are sequentially consistent, so
// the wait is belt-and-braces; the type exists to exercise the protocol
// and its costs end to end.
package deque

import (
	"sync/atomic"

	"tbtso/internal/core"
	"tbtso/internal/fence"
	"tbtso/internal/vclock"
)

// Deque is a single-owner, multi-thief bounded work-stealing deque of
// uint64 values. Owner methods (Push, Take) must be called from one
// goroutine; Steal may be called from any.
type Deque struct {
	top    atomic.Uint64
	_      [fence.CacheLine - 8]byte
	bottom atomic.Uint64
	_      [fence.CacheLine - 8]byte
	items  []atomic.Uint64
	mask   uint64
	bound  core.Bound
}

// New creates a deque with the given power-of-two capacity and
// visibility bound for steals.
func New(capacity int, bound core.Bound) *Deque {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("deque: capacity must be a positive power of two")
	}
	return &Deque{
		items: make([]atomic.Uint64, capacity),
		mask:  uint64(capacity - 1),
		bound: bound,
	}
}

// Push adds v at the bottom; it reports false when full. Owner only;
// no fence, no atomic read-modify-write.
func (d *Deque) Push(v uint64) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= uint64(len(d.items)) {
		return false
	}
	d.items[b&d.mask].Store(v)
	d.bottom.Store(b + 1)
	return true
}

// Take removes the most recently pushed value. Owner only; the common
// case is fence-free (no read-modify-write, no explicit barrier).
func (d *Deque) Take() (uint64, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	// no fence between the store above and the load — the TBTSO fast path
	if b != t && b-t < uint64(len(d.items)) {
		return d.items[b&d.mask].Load(), true
	}
	if b == t {
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if won {
			return d.items[b&d.mask].Load(), true
		}
		return 0, false
	}
	d.bottom.Store(t)
	return 0, false
}

// Steal removes the oldest value (any goroutine). The slow path: read
// top, wait out the visibility bound so every owner store older than
// the top read is globally visible, then read bottom and race the CAS.
func (d *Deque) Steal() (uint64, bool) {
	t := d.top.Load()
	d.bound.Wait(vclock.Now())
	b := d.bottom.Load()
	if b-t == 0 || b-t >= 1<<62 {
		return 0, false
	}
	v := d.items[t&d.mask].Load()
	if d.top.CompareAndSwap(t, t+1) {
		return v, true
	}
	return 0, false
}

// Size is an instantaneous (racy) estimate of the number of items.
func (d *Deque) Size() int {
	b, t := d.bottom.Load(), d.top.Load()
	if b-t >= 1<<62 {
		return 0
	}
	return int(b - t)
}
