package deque_test

import (
	"fmt"
	"time"

	"tbtso/internal/core"
	"tbtso/internal/deque"
)

// A work-stealing deque with a fence-free owner: Push/Take issue no
// fences and no atomic read-modify-writes on the common path; a thief's
// Steal waits out the visibility bound before trusting bottom.
func ExampleNew() {
	d := deque.New(8, core.NewFixedDelta(100*time.Microsecond))

	d.Push(10)
	d.Push(20)
	d.Push(30)

	v, _ := d.Take() // owner takes LIFO
	fmt.Println("owner took:", v)

	s, _ := d.Steal() // thief steals FIFO, after the Δ wait
	fmt.Println("thief stole:", s)

	fmt.Println("left:", d.Size())
	// Output:
	// owner took: 30
	// thief stole: 10
	// left: 1
}
