package tso

// Thread is a handle through which a thread program issues actions to
// the machine. Each action blocks the calling goroutine until the
// scheduler grants it; the gap between two actions counts as local
// computation and is free in machine time.
type Thread struct {
	m   *Machine
	id  int
	ts  *threadState
	req request // reused for every action: the scheduler holds at most one request per thread
}

// ID returns the thread's index (spawn order, starting at 0).
func (t *Thread) ID() int { return t.id }

// Name returns the name given at Spawn.
func (t *Thread) Name() string { return t.ts.name }

// Machine returns the machine this thread runs on.
func (t *Thread) Machine() *Machine { return t.m }

// do submits one action and blocks until the scheduler replies. The
// request struct and the reply channel are per-thread and reused, so a
// completed action allocates nothing: the scheduler owns t.req from the
// send until the reply, and never has two outstanding replies for one
// thread (the reply channel's single buffer slot therefore never
// blocks the scheduler).
func (t *Thread) do(kind opKind, addr Addr, val, old Word) response {
	t.req = request{kind: kind, addr: addr, val: val, old: old}
	select {
	case t.ts.req <- &t.req:
	case <-t.m.halted:
		panic(errHalted)
	}
	select {
	case resp := <-t.ts.reply:
		return resp
	case <-t.m.halted:
		panic(errHalted)
	}
}

// Store buffers a write of v to address a (model action #6). The write
// becomes globally visible when the memory subsystem dequeues it —
// within Δ ticks on a TBTSO[Δ] machine.
func (t *Thread) Store(a Addr, v Word) {
	t.do(opStore, a, v, 0)
}

// Load reads address a (model action #2): the newest matching entry in
// the thread's own store buffer if one exists, otherwise memory.
func (t *Thread) Load(a Addr) Word {
	return t.do(opLoad, a, 0, 0).val
}

// CAS atomically compares memory at a with old and, if equal, writes
// new. It reports whether the swap happened. Like all atomic
// read-modify-writes it acquires the memory subsystem lock and drains
// the thread's store buffer, so it doubles as a fence.
func (t *Thread) CAS(a Addr, old, new Word) bool {
	return t.do(opCAS, a, new, old).ok
}

// FetchAdd atomically adds delta to memory at a and returns the
// previous value.
func (t *Thread) FetchAdd(a Addr, delta Word) Word {
	return t.do(opFetchAdd, a, delta, 0).val
}

// Swap atomically exchanges memory at a with v and returns the previous
// value.
func (t *Thread) Swap(a Addr, v Word) Word {
	return t.do(opSwap, a, v, 0).val
}

// Fence completes only after the thread's store buffer is empty (model
// action #5); the memory subsystem dequeues one entry per tick on the
// thread's behalf, so a fence costs one tick per buffered store.
func (t *Thread) Fence() {
	t.do(opFence, 0, 0, 0)
}

// Clock reads the global clock (model action #7). The paper assumes an
// invariant timestamp counter readable by every thread.
func (t *Thread) Clock() uint64 {
	return uint64(t.do(opClock, 0, 0, 0).val)
}

// Yield consumes one scheduling slot without touching memory. It is a
// convenience for wait loops; it is implemented as a clock read.
func (t *Thread) Yield() { t.Clock() }

// WaitUntil spins reading the clock until it passes deadline.
func (t *Thread) WaitUntil(deadline uint64) {
	for t.Clock() < deadline {
	}
}
