package tso

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestReadOwnWriteForwarding(t *testing.T) {
	// Under the adversarial policy with plain TSO the store never
	// reaches memory while the thread runs, yet the thread must read
	// its own buffered value (TSO read rule).
	m := New(Config{Policy: DrainAdversarial, Seed: 1})
	a := m.AllocWords(1)
	var got Word
	m.Spawn("w", func(th *Thread) {
		th.Store(a, 42)
		got = th.Load(a)
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if got != 42 {
		t.Fatalf("read own write: got %d, want 42", got)
	}
	if res.Stats.BufferHits != 1 {
		t.Fatalf("BufferHits = %d, want 1", res.Stats.BufferHits)
	}
}

func TestNewestBufferedValueWins(t *testing.T) {
	m := New(Config{Policy: DrainAdversarial, Seed: 1})
	a := m.AllocWords(1)
	var got Word
	m.Spawn("w", func(th *Thread) {
		th.Store(a, 1)
		th.Store(a, 2)
		th.Store(a, 3)
		got = th.Load(a)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if got != 3 {
		t.Fatalf("got %d, want newest buffered value 3", got)
	}
	if m.PeekWord(a) != 3 {
		t.Fatalf("final memory %d, want 3 (FIFO drain order)", m.PeekWord(a))
	}
}

func TestUnboundedTSOHidesStore(t *testing.T) {
	// Plain TSO + adversarial drains: a store with no later fence stays
	// invisible for the whole (bounded) polling window.
	m := New(Config{Delta: 0, Policy: DrainAdversarial, Seed: 7})
	a := m.AllocWords(1)
	sawNonzero := false
	m.Spawn("writer", func(th *Thread) {
		th.Store(a, 1)
		for i := 0; i < 500; i++ {
			th.Yield()
		}
	})
	m.Spawn("reader", func(th *Thread) {
		for i := 0; i < 400; i++ {
			if th.Load(a) != 0 {
				sawNonzero = true
				return
			}
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if sawNonzero {
		t.Fatal("store became visible under adversarial unbounded TSO without a fence")
	}
	if m.PeekWord(a) != 1 {
		t.Fatal("final flush should have committed the store")
	}
}

func TestDeltaBoundForcesVisibility(t *testing.T) {
	// TBTSO[Δ]: the same adversarial schedule must make the store
	// visible within Δ ticks.
	const delta = 100
	m := New(Config{Delta: delta, Policy: DrainAdversarial, Seed: 7})
	a := m.AllocWords(1)
	var visibleAt uint64
	var storedAt uint64
	m.Spawn("writer", func(th *Thread) {
		storedAt = th.Clock()
		th.Store(a, 1)
		for i := 0; i < 4*delta; i++ {
			th.Yield()
		}
	})
	m.Spawn("reader", func(th *Thread) {
		for {
			if th.Load(a) != 0 {
				visibleAt = th.Clock()
				return
			}
		}
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if visibleAt == 0 {
		t.Fatal("store never became visible under TBTSO")
	}
	if visibleAt > storedAt+delta+2 {
		t.Fatalf("visible at %d, stored at %d: exceeds Δ=%d", visibleAt, storedAt, delta)
	}
	if res.Stats.MaxCommitLatency > delta {
		t.Fatalf("MaxCommitLatency %d > Δ %d", res.Stats.MaxCommitLatency, delta)
	}
	if res.Stats.Drains.Delta == 0 {
		t.Fatal("expected at least one Δ-forced drain")
	}
}

func TestFenceDrainsBuffer(t *testing.T) {
	m := New(Config{Policy: DrainAdversarial, Seed: 3})
	a := m.AllocWords(1)
	b := m.AllocWords(1)
	var observed Word
	m.Spawn("writer", func(th *Thread) {
		th.Store(a, 99)
		th.Fence()
		th.Store(b, 1) // release-style publish of the fence completion
		th.Fence()
	})
	m.Spawn("reader", func(th *Thread) {
		for th.Load(b) == 0 {
		}
		observed = th.Load(a)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if observed != 99 {
		t.Fatalf("after fence, reader saw %d, want 99", observed)
	}
}

func TestRMWDrainsBufferAndIsAtomic(t *testing.T) {
	m := New(Config{Policy: DrainAdversarial, Seed: 3})
	a := m.AllocWords(1)
	flag := m.AllocWords(1)
	var observed Word
	m.Spawn("writer", func(th *Thread) {
		th.Store(a, 7)
		// The CAS must flush the buffered store before executing.
		if !th.CAS(flag, 0, 1) {
			t.Error("CAS on fresh word failed")
		}
	})
	m.Spawn("reader", func(th *Thread) {
		for th.Load(flag) == 0 {
		}
		observed = th.Load(a)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if observed != 7 {
		t.Fatalf("RMW did not flush store buffer: saw %d, want 7", observed)
	}
}

func TestFetchAddCounter(t *testing.T) {
	const (
		threads = 4
		incs    = 50
	)
	m := New(Config{Policy: DrainRandom, Seed: 11})
	ctr := m.AllocWords(1)
	for i := 0; i < threads; i++ {
		m.Spawn("inc", func(th *Thread) {
			for k := 0; k < incs; k++ {
				th.FetchAdd(ctr, 1)
			}
		})
	}
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if got := m.PeekWord(ctr); got != threads*incs {
		t.Fatalf("counter = %d, want %d", got, threads*incs)
	}
}

func TestCASSwapSemantics(t *testing.T) {
	m := New(Config{Policy: DrainEager, Seed: 2})
	a := m.AllocWords(1)
	m.SetWord(a, 5)
	var r1, r2 bool
	var old Word
	m.Spawn("t", func(th *Thread) {
		r1 = th.CAS(a, 5, 6)
		r2 = th.CAS(a, 5, 7) // must fail, value is 6
		old = th.Swap(a, 9)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if !r1 || r2 {
		t.Fatalf("CAS results = %v,%v; want true,false", r1, r2)
	}
	if old != 6 || m.PeekWord(a) != 9 {
		t.Fatalf("swap old=%d mem=%d; want 6, 9", old, m.PeekWord(a))
	}
}

func TestClockMonotonic(t *testing.T) {
	m := New(Config{Policy: DrainRandom, Seed: 4})
	var ok = true
	m.Spawn("t", func(th *Thread) {
		prev := th.Clock()
		for i := 0; i < 100; i++ {
			c := th.Clock()
			if c < prev {
				ok = false
			}
			prev = c
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if !ok {
		t.Fatal("clock went backwards")
	}
}

func TestMaxTicksAborts(t *testing.T) {
	m := New(Config{Policy: DrainRandom, Seed: 4, MaxTicks: 200})
	a := m.AllocWords(1)
	m.Spawn("spin", func(th *Thread) {
		for th.Load(a) == 0 { // never satisfied
		}
	})
	res := m.Run()
	if !errors.Is(res.Err, ErrMaxTicks) {
		t.Fatalf("err = %v, want ErrMaxTicks", res.Err)
	}
}

func TestThreadPanicPropagates(t *testing.T) {
	m := New(Config{Policy: DrainRandom, Seed: 4})
	m.Spawn("boom", func(th *Thread) {
		th.Yield()
		panic("kaboom")
	})
	m.Spawn("spin", func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Yield()
		}
	})
	res := m.Run()
	if res.Err == nil {
		t.Fatal("expected error from panicking thread")
	}
}

func TestDeterministicTraces(t *testing.T) {
	run := func() []Event {
		m := New(Config{Policy: DrainRandom, Seed: 99, Trace: true})
		a := m.AllocWords(2)
		m.Spawn("w0", func(th *Thread) {
			th.Store(a, 1)
			th.Fence()
			_ = th.Load(a + 1)
		})
		m.Spawn("w1", func(th *Thread) {
			th.Store(a+1, 1)
			th.Fence()
			_ = th.Load(a)
		})
		res := m.Run()
		if res.Err != nil {
			t.Fatalf("run: %v", res.Err)
		}
		return m.Trace()
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}

// sbOutcome runs the classic store-buffering litmus test and reports
// what each thread read.
func sbOutcome(seed int64, policy DrainPolicy, delta uint64, fenced bool) (r0, r1 Word) {
	m := New(Config{Delta: delta, Policy: policy, Seed: seed})
	x := m.AllocWords(1)
	y := m.AllocWords(1)
	m.Spawn("T0", func(th *Thread) {
		th.Store(x, 1)
		if fenced {
			th.Fence()
		}
		r0 = th.Load(y)
	})
	m.Spawn("T1", func(th *Thread) {
		th.Store(y, 1)
		if fenced {
			th.Fence()
		}
		r1 = th.Load(x)
	})
	m.Run()
	return
}

func TestSBLitmusFencedNeverBothZero(t *testing.T) {
	// The flag principle: with fences, at least one thread must see the
	// other's store — for every seed and policy.
	for _, p := range []DrainPolicy{DrainEager, DrainRandom, DrainAdversarial} {
		for seed := int64(0); seed < 200; seed++ {
			r0, r1 := sbOutcome(seed, p, 0, true)
			if r0 == 0 && r1 == 0 {
				t.Fatalf("policy=%v seed=%d: fenced SB observed 0/0", p, seed)
			}
		}
	}
}

func TestSBLitmusUnfencedObservesReordering(t *testing.T) {
	// Without fences under the adversarial policy, 0/0 — the TSO
	// store/load reordering — must be observable.
	r0, r1 := sbOutcome(0, DrainAdversarial, 0, false)
	if r0 != 0 || r1 != 0 {
		t.Fatalf("adversarial unfenced SB: got %d/%d, want 0/0", r0, r1)
	}
}

func TestQuickFetchAddAlwaysSumsExactly(t *testing.T) {
	f := func(seed int64, policyRaw uint8, deltaRaw uint16) bool {
		policy := DrainPolicy(int(policyRaw) % 3)
		delta := uint64(deltaRaw)%500 + 64
		m := New(Config{Delta: delta, Policy: policy, Seed: seed})
		ctr := m.AllocWords(1)
		const threads, incs = 3, 10
		for i := 0; i < threads; i++ {
			m.Spawn("inc", func(th *Thread) {
				for k := 0; k < incs; k++ {
					th.FetchAdd(ctr, 1)
				}
			})
		}
		res := m.Run()
		return res.Err == nil && m.PeekWord(ctr) == threads*incs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCommitLatencyRespectsDelta(t *testing.T) {
	f := func(seed int64, deltaRaw uint16) bool {
		delta := uint64(deltaRaw)%1000 + 64
		m := New(Config{Delta: delta, Policy: DrainAdversarial, Seed: seed})
		a := m.AllocWords(8)
		for i := 0; i < 3; i++ {
			base := a + Addr(i)
			m.Spawn("w", func(th *Thread) {
				for k := 0; k < 20; k++ {
					th.Store(base, Word(k))
					th.Yield()
					th.Yield()
				}
			})
		}
		res := m.Run()
		return res.Err == nil && res.Stats.MaxCommitLatency <= delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
