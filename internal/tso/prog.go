package tso

import "fmt"

// This file is the direct-execution engine: an interpreter that runs
// straight-line Prog threads inline in the scheduler loop — no
// goroutines, no channel handshakes, zero allocations per operation.
// It exists because every empirical campaign (fuzzing, planted-control
// detection, figure benchmarks) bottoms out in executing litmus-scale
// programs on this machine, and the goroutine engine pays two channel
// operations and a context switch per memory action.
//
// The engine shares the entire scheduler core with Run — tick, the
// drain phases, exec, commitOldest — and produces its per-thread
// requests through the same request struct the goroutine engine's
// Thread handles fill in. The seeded RNG is therefore consumed
// identically: a given (program, Config) yields byte-identical
// outcomes, Stats, DrainStats and sink event streams on both engines
// (pinned by the engine-equivalence suite in internal/fuzz). The
// goroutine engine remains the oracle — and the only engine able to
// run arbitrary Go-closure workloads (smr/lock/litmus demos).

// ProgOpKind enumerates the direct-execution engine's op alphabet. It
// deliberately mirrors the model checker's vocabulary (internal/mc)
// so checker programs compile 1:1.
type ProgOpKind uint8

// The operations.
const (
	// POpStore buffers Val into Addr (Thread.Store).
	POpStore ProgOpKind = iota
	// POpLoad reads Addr into register Reg (Thread.Load).
	POpLoad
	// POpFence completes only with an empty buffer (Thread.Fence).
	POpFence
	// POpRMW atomically adds Val to Addr, old value into Reg
	// (Thread.FetchAdd).
	POpRMW
	// POpWait is a clock-polling wait of Val ticks: one clock read to
	// arm, then clock reads until the deadline passes — exactly
	// Thread.WaitUntil(Thread.Clock()+Val), the §3 "wait Δ time units"
	// of the flag principle.
	POpWait
)

// ProgOp is one instruction of a Prog thread.
type ProgOp struct {
	Kind ProgOpKind
	Addr Addr
	Val  Word
	Reg  int
}

// Prog is a straight-line program for the direct-execution engine: one
// op sequence per thread. Addresses are absolute machine addresses
// (allocate them with AllocWords before ExecProgram).
type Prog struct {
	Threads [][]ProgOp
}

// progThread is the interpreter's per-thread state: a program counter
// plus the wait-loop sub-state, and the reusable request the scheduler
// sees — the same struct a goroutine-engine Thread would fill in.
type progThread struct {
	ops      []ProgOp
	regs     []Word
	pc       int
	inWait   bool   // current op is a POpWait whose clock loop is running
	armed    bool   // the wait's first (deadline-arming) clock read completed
	deadline uint64 // absolute tick the wait spins until
	done     bool
	req      request
}

// ExecProgram runs p on the direct-execution engine and returns the
// same Result a goroutine-engine run of the equivalent Thread-handle
// program would. Loads and RMWs write into regs[thread][Reg] when regs
// is non-nil (the caller sizes it; a nil regs discards results).
//
// The machine must be in the pre-run state (fresh from New or Reset)
// with no spawned threads; afterwards it supports the same post-run
// inspection as Run, and Reset returns it to a reusable state. Calling
// Reset+ExecProgram in a loop executes an entire campaign on one
// machine with zero steady-state heap allocation
// (TestInterpSteadyStateZeroAlloc).
func (m *Machine) ExecProgram(p Prog, regs [][]Word) Result {
	if m.started {
		panic("tso: Run called twice")
	}
	if len(m.threads) > 0 {
		panic("tso: ExecProgram on a machine with spawned threads; use Run")
	}
	m.started = true
	m.interp = true
	defer func() { m.interp = false }()
	n := len(p.Threads)
	m.sizeRun(n)
	if cap(m.itr) >= n {
		m.itr = m.itr[:n]
	} else {
		m.itr = append(m.itr[:cap(m.itr)], make([]progThread, n-cap(m.itr))...)
	}
	for i := range m.itr {
		t := &m.itr[i]
		t.ops = p.Threads[i]
		t.regs = nil
		if regs != nil {
			t.regs = regs[i]
		}
		t.pc = 0
		t.inWait = false
		t.armed = false
		t.done = false
	}

	if len(m.sinks) > 0 {
		names := m.progNames(n)
		for _, s := range m.sinks {
			if ro, ok := s.(RunObserver); ok {
				ro.BeginRun(names, m.cfg.Delta)
			}
		}
	}

	alive := n
	for alive > 0 {
		// Gather: the lockstep round structure of Run, minus the
		// channels — each live thread with no pending request produces
		// its next one inline.
		for i := range m.itr {
			t := &m.itr[i]
			if t.done || m.pending[i] != nil {
				continue
			}
			if !t.next() {
				t.done = true
				alive--
				continue
			}
			m.pending[i] = &t.req
		}
		if alive == 0 {
			break
		}
		if m.clock >= m.cfg.MaxTicks {
			m.fail(ErrMaxTicks)
			return m.finish()
		}
		m.clock++
		m.tick()
		if err := m.failure(); err != nil {
			return m.finish()
		}
	}
	m.finalFlush()
	return m.finish()
}

// next fills t.req with the thread's next request; it reports false
// when the thread has finished its program.
func (t *progThread) next() bool {
	if t.inWait {
		t.req = request{kind: opClock}
		return true
	}
	if t.pc >= len(t.ops) {
		return false
	}
	op := t.ops[t.pc]
	switch op.Kind {
	case POpStore:
		t.req = request{kind: opStore, addr: op.Addr, val: op.Val}
	case POpLoad:
		t.req = request{kind: opLoad, addr: op.Addr}
	case POpFence:
		t.req = request{kind: opFence}
	case POpRMW:
		t.req = request{kind: opFetchAdd, addr: op.Addr, val: op.Val}
	case POpWait:
		// First clock read arms the deadline; see progDeliver.
		t.inWait = true
		t.armed = false
		t.req = request{kind: opClock}
	default:
		panic(fmt.Sprintf("tso: unknown ProgOpKind %d", op.Kind))
	}
	return true
}

// progDeliver consumes a completed request's response for thread i —
// the interpreter's counterpart of the goroutine engine's reply-channel
// send — and advances the thread's program counter or wait state.
func (m *Machine) progDeliver(i int, resp response) {
	t := &m.itr[i]
	if t.inWait {
		// Mirrors WaitUntil(Clock()+n): the arming read sets the
		// deadline, then the loop issues clock reads until one lands at
		// or past it. Each read is a granted action on its own tick,
		// exactly as the goroutine engine's spin costs.
		now := uint64(resp.val)
		if !t.armed {
			t.deadline = now + uint64(t.ops[t.pc].Val)
			t.armed = true
			return
		}
		if now < t.deadline {
			return
		}
		t.inWait = false
		t.pc++
		return
	}
	op := t.ops[t.pc]
	if (op.Kind == POpLoad || op.Kind == POpRMW) && t.regs != nil {
		t.regs[op.Reg] = resp.val
	}
	t.pc++
}

// progNames returns the cached "T0", "T1", ... thread names the
// direct-execution engine reports to RunObserver sinks — the same
// names the fuzz harness spawns goroutine-engine threads under, so the
// two engines' BeginRun calls match byte-for-byte.
func (m *Machine) progNames(n int) []string {
	for len(m.names) < n {
		m.names = append(m.names, fmt.Sprintf("T%d", len(m.names)))
	}
	return m.names[:n]
}
