package tso

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProgram spawns `threads` threads that perform a random mix of
// machine actions over a small address range, then checks the recorded
// trace with the independent oracle.
func runRandomProgram(t *testing.T, seed int64, policy DrainPolicy, delta uint64, threads int) {
	t.Helper()
	m := New(Config{Delta: delta, Policy: policy, Seed: seed, Trace: true, MaxTicks: 500_000})
	base := m.AllocWords(8)
	for i := 0; i < threads; i++ {
		progSeed := seed*977 + int64(i)
		m.Spawn("w", func(th *Thread) {
			rng := rand.New(rand.NewSource(progSeed))
			for k := 0; k < 60; k++ {
				a := base + Addr(rng.Intn(8))
				switch rng.Intn(10) {
				case 0, 1, 2:
					th.Store(a, Word(rng.Intn(100)))
				case 3, 4, 5, 6:
					th.Load(a)
				case 7:
					th.CAS(a, Word(rng.Intn(4)), Word(rng.Intn(100)))
				case 8:
					th.FetchAdd(a, 1)
				default:
					th.Fence()
				}
			}
		})
	}
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("seed=%d policy=%v Δ=%d: run: %v", seed, policy, delta, res.Err)
	}
	if err := CheckTrace(m.Trace(), threads, delta); err != nil {
		t.Fatalf("seed=%d policy=%v Δ=%d: oracle rejected trace: %v", seed, policy, delta, err)
	}
}

func TestRandomProgramsSatisfyOracle(t *testing.T) {
	for _, policy := range []DrainPolicy{DrainEager, DrainRandom, DrainAdversarial} {
		for _, delta := range []uint64{0, 120} {
			for seed := int64(0); seed < 8; seed++ {
				runRandomProgram(t, seed, policy, delta, 3)
			}
		}
	}
}

func TestQuickRandomProgramsSatisfyOracle(t *testing.T) {
	f := func(seed int64, policyRaw, threadsRaw uint8) bool {
		policy := DrainPolicy(int(policyRaw) % 3)
		threads := int(threadsRaw)%3 + 1
		m := New(Config{Delta: 90, Policy: policy, Seed: seed, Trace: true, MaxTicks: 500_000})
		base := m.AllocWords(4)
		for i := 0; i < threads; i++ {
			progSeed := seed ^ int64(i)<<32
			m.Spawn("w", func(th *Thread) {
				rng := rand.New(rand.NewSource(progSeed))
				for k := 0; k < 30; k++ {
					a := base + Addr(rng.Intn(4))
					switch rng.Intn(8) {
					case 0, 1, 2:
						th.Store(a, Word(k))
					case 3, 4, 5:
						th.Load(a)
					default:
						th.Swap(a, Word(k))
					}
				}
			})
		}
		if res := m.Run(); res.Err != nil {
			return false
		}
		return CheckTrace(m.Trace(), threads, 90) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"commit without store", []Event{
			{Tick: 1, Thread: 0, Kind: EvCommit, Addr: 1, Val: 5},
		}},
		{"FIFO violation", []Event{
			{Tick: 1, Thread: 0, Kind: EvStore, Addr: 1, Val: 5},
			{Tick: 2, Thread: 0, Kind: EvStore, Addr: 2, Val: 6},
			{Tick: 3, Thread: 0, Kind: EvCommit, Addr: 2, Val: 6},
		}},
		{"load from thin air", []Event{
			{Tick: 1, Thread: 0, Kind: EvLoad, Addr: 1, Val: 99},
		}},
		{"stale load ignoring forwarding", []Event{
			{Tick: 1, Thread: 0, Kind: EvStore, Addr: 1, Val: 5},
			{Tick: 2, Thread: 0, Kind: EvLoad, Addr: 1, Val: 0},
		}},
		{"fence with pending stores", []Event{
			{Tick: 1, Thread: 0, Kind: EvStore, Addr: 1, Val: 5},
			{Tick: 2, Thread: 0, Kind: EvFence},
		}},
		{"rmw with pending stores", []Event{
			{Tick: 1, Thread: 0, Kind: EvStore, Addr: 1, Val: 5},
			{Tick: 2, Thread: 0, Kind: EvRMW, Addr: 2, Val: 1},
		}},
	}
	for _, tc := range cases {
		if err := CheckTrace(tc.events, 1, 0); err == nil {
			t.Fatalf("%s: oracle accepted a bad trace", tc.name)
		}
	}
}

func TestOracleDeltaCheck(t *testing.T) {
	events := []Event{
		{Tick: 1, Thread: 0, Kind: EvStore, Addr: 1, Val: 5},
		{Tick: 500, Thread: 0, Kind: EvCommit, Addr: 1, Val: 5},
	}
	if err := CheckTrace(events, 1, 100); err == nil {
		t.Fatal("oracle accepted a commit past Δ")
	}
	if err := CheckTrace(events, 1, 0); err != nil {
		t.Fatalf("unbounded TSO should accept late commits: %v", err)
	}
}
