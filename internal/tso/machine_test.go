package tso

import (
	"sync"
	"testing"
)

// recordingMonitor captures monitor callbacks for verification.
type recordingMonitor struct {
	mu        sync.Mutex
	enqueued  int
	committed int
	loads     int
	rmws      int
	lastEnq   uint64
}

func (r *recordingMonitor) StoreEnqueued(_ int, _ Addr, _ Word, tick uint64) {
	r.mu.Lock()
	r.enqueued++
	r.lastEnq = tick
	r.mu.Unlock()
}
func (r *recordingMonitor) StoreCommitted(_ int, _ Addr, _ Word, enq, tick uint64) {
	r.mu.Lock()
	r.committed++
	if tick < enq {
		panic("commit before enqueue")
	}
	r.mu.Unlock()
}
func (r *recordingMonitor) LoadSatisfied(_ int, _ Addr, _ Word, _ bool, _ uint64) {
	r.mu.Lock()
	r.loads++
	r.mu.Unlock()
}
func (r *recordingMonitor) RMWExecuted(_ int, _ Addr, _, _ Word, _ uint64) {
	r.mu.Lock()
	r.rmws++
	r.mu.Unlock()
}

func TestMonitorSeesAllTraffic(t *testing.T) {
	mon := &recordingMonitor{}
	m := New(Config{Policy: DrainEager, Seed: 1})
	m.SetMonitor(mon)
	a := m.AllocWords(2)
	m.Spawn("w", func(th *Thread) {
		th.Store(a, 1)
		th.Store(a+1, 2)
		_ = th.Load(a)
		th.CAS(a, 1, 5)
		th.FetchAdd(a+1, 1)
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if mon.enqueued != 2 || mon.committed != 2 {
		t.Fatalf("stores: enq=%d commit=%d, want 2/2", mon.enqueued, mon.committed)
	}
	if mon.loads != 1 || mon.rmws != 2 {
		t.Fatalf("loads=%d rmws=%d, want 1/2", mon.loads, mon.rmws)
	}
}

func TestStallProbSlowsButCompletes(t *testing.T) {
	run := func(stall float64) uint64 {
		m := New(Config{Policy: DrainEager, Seed: 5, StallProb: stall})
		a := m.AllocWords(1)
		m.Spawn("w", func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.Store(a, Word(i))
				_ = th.Load(a)
			}
		})
		res := m.Run()
		if res.Err != nil {
			t.Fatalf("stall=%v: %v", stall, res.Err)
		}
		return res.Ticks
	}
	fast, slow := run(0), run(0.6)
	if slow <= fast {
		t.Fatalf("stalls did not slow execution: %d vs %d ticks", fast, slow)
	}
}

func TestSettersPanicAfterRun(t *testing.T) {
	m := New(Config{Seed: 1})
	m.Spawn("noop", func(th *Thread) { th.Yield() })
	m.Run()
	for name, fn := range map[string]func(){
		"AllocWords":   func() { m.AllocWords(1) },
		"SetWord":      func() { m.SetWord(1, 1) },
		"SetMonitor":   func() { m.SetMonitor(nil) },
		"SetTickBoard": func() { m.SetTickBoard(1) },
		"Spawn":        func() { m.Spawn("x", func(*Thread) {}) },
		"Run":          func() { m.Run() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after Run did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStatsAccounting(t *testing.T) {
	m := New(Config{Policy: DrainRandom, Seed: 9})
	a := m.AllocWords(1)
	m.Spawn("w", func(th *Thread) {
		th.Store(a, 1)
		th.Store(a, 2)
		th.Fence()
		_ = th.Load(a)
		_ = th.Clock()
		th.Swap(a, 9)
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	s := res.Stats
	if s.Stores != 2 || s.Commits != 2 {
		t.Fatalf("stores=%d commits=%d", s.Stores, s.Commits)
	}
	if s.Fences != 1 || s.RMWs != 1 || s.Loads != 1 || s.ClockReads < 1 {
		t.Fatalf("fences=%d rmws=%d loads=%d clocks=%d", s.Fences, s.RMWs, s.Loads, s.ClockReads)
	}
	if s.MaxBufOccupancy != 2 {
		t.Fatalf("MaxBufOccupancy=%d, want 2", s.MaxBufOccupancy)
	}
}

func TestThreadIdentity(t *testing.T) {
	m := New(Config{Seed: 1})
	var id int
	var name string
	m.Spawn("zero", func(th *Thread) { th.Yield() })
	m.Spawn("alice", func(th *Thread) {
		id = th.ID()
		name = th.Name()
		if th.Machine() != m {
			t.Error("Machine() mismatch")
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if id != 1 || name != "alice" {
		t.Fatalf("id=%d name=%q", id, name)
	}
}

func TestLockContentionBetweenRMWs(t *testing.T) {
	// Many threads CASing the same word: the memory lock serializes
	// them; all succeed exactly once with distinct old values.
	const threads = 5
	m := New(Config{Policy: DrainRandom, Seed: 11})
	a := m.AllocWords(1)
	olds := make([]Word, threads)
	for i := 0; i < threads; i++ {
		m.Spawn("inc", func(th *Thread) {
			olds[th.ID()] = th.FetchAdd(a, 1)
		})
	}
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	seen := map[Word]bool{}
	for _, o := range olds {
		if seen[o] {
			t.Fatalf("duplicate old value %d — RMWs not serialized", o)
		}
		seen[o] = true
	}
	if m.PeekWord(a) != threads {
		t.Fatalf("final = %d", m.PeekWord(a))
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []DrainPolicy{DrainEager, DrainRandom, DrainAdversarial, DrainPolicy(9)} {
		if p.String() == "" {
			t.Fatalf("empty name for policy %d", int(p))
		}
	}
	for _, k := range []EventKind{EvStore, EvCommit, EvLoad, EvRMW, EvFence, EventKind(9)} {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", int(k))
		}
	}
	e := Event{Tick: 3, Thread: 1, Kind: EvStore, Addr: 5, Val: 7}
	if e.String() == "" || (Event{Kind: EvFence}).String() == "" {
		t.Fatal("event rendering broken")
	}
}
