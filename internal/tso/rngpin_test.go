package tso

import (
	"flag"
	"fmt"
	"testing"
)

var stallPinGen = flag.Bool("stallpin.gen", false, "print the stall-pin golden tuples instead of checking them")

// stallPinProgram is a small schedule-sensitive workload: two threads
// race stores and loads over three words while a third fences in the
// middle, under StallProb > 0 so the scheduler's stall draws are in the
// RNG stream alongside the permutation and drain-coin draws.
func stallPinProgram(seed int64) (Result, [4]Word) {
	m := New(Config{Delta: 4, DrainMargin: 1, Policy: DrainRandom, Seed: seed, StallProb: 0.3})
	base := m.AllocWords(3)
	var got [4]Word
	m.Spawn("w", func(t *Thread) {
		t.Store(base, 1)
		t.Store(base+1, 2)
		got[0] = t.Load(base + 2)
		t.Store(base+2, 3)
		got[1] = t.Load(base)
	})
	m.Spawn("r", func(t *Thread) {
		t.Store(base+2, 9)
		got[2] = t.Load(base + 1)
		t.Fence()
		got[3] = t.Load(base + 2)
		t.FetchAdd(base, 10)
	})
	res := m.Run()
	return res, got
}

// TestStallSeedStreamPinned pins the (seed → schedule) mapping for runs
// that consume stall draws: the golden tuples were captured from the
// pre-interpreter scheduler. StallProb > 0 keeps every per-candidate
// Float64 draw in the stream (see docs/PERF.md), so a refactor that
// adds, drops, or reorders draws in that configuration fails here.
func TestStallSeedStreamPinned(t *testing.T) {
	golden := []struct {
		seed  int64
		ticks uint64
		regs  [4]Word
	}{
		{1, 15, [4]Word{9, 11, 0, 9}},
		{2, 9, [4]Word{9, 11, 0, 9}},
		{3, 10, [4]Word{9, 11, 0, 9}},
		{4, 10, [4]Word{9, 11, 0, 9}},
		{5, 11, [4]Word{9, 1, 0, 9}},
	}
	for _, g := range golden {
		res, got := stallPinProgram(g.seed)
		if res.Err != nil {
			t.Fatalf("seed %d: %v", g.seed, res.Err)
		}
		if res.Ticks != g.ticks || got != g.regs {
			t.Errorf("seed %d: ticks=%d regs=%v, pinned ticks=%d regs=%v",
				g.seed, res.Ticks, got, g.ticks, g.regs)
		}
	}
}

// TestStallPinGenerate prints the golden tuples; see rngpin_test.go in
// internal/fuzz for when regenerating is legitimate.
func TestStallPinGenerate(t *testing.T) {
	if !*stallPinGen {
		t.Skip("pass -stallpin.gen to print the golden tuples")
	}
	for seed := int64(1); seed <= 5; seed++ {
		res, got := stallPinProgram(seed)
		fmt.Printf("{%d, %d, [4]Word{%d, %d, %d, %d}},\n", seed, res.Ticks, got[0], got[1], got[2], got[3])
	}
}
