package tso

import "fmt"

// EventKind classifies trace events.
type EventKind int

const (
	// EvStore records a store enqueued to a store buffer.
	EvStore EventKind = iota
	// EvCommit records a buffered store reaching memory.
	EvCommit
	// EvLoad records a completed load.
	EvLoad
	// EvRMW records a completed atomic read-modify-write.
	EvRMW
	// EvFence records a completed fence.
	EvFence
)

func (k EventKind) String() string {
	switch k {
	case EvStore:
		return "store"
	case EvCommit:
		return "commit"
	case EvLoad:
		return "load"
	case EvRMW:
		return "rmw"
	case EvFence:
		return "fence"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// DrainCause explains WHY a buffered store was dequeued to memory. It
// is carried by every EvCommit event and mirrored in Stats.Drains; the
// breakdown is the observable face of the model's drain rules — a
// Δ-forced dequeue is the temporal bound doing its job, a fence or RMW
// drain is synchronization paying for visibility, and a policy drain
// is the memory subsystem volunteering.
type DrainCause int

const (
	// CauseDelta is a dequeue forced by the Δ bound (the store's
	// deadline was within DrainMargin ticks).
	CauseDelta DrainCause = iota
	// CausePolicy is a voluntary dequeue per the configured DrainPolicy.
	CausePolicy
	// CauseFence is a dequeue performed to complete a Fence.
	CauseFence
	// CauseRMW is a dequeue performed under the memory-subsystem lock
	// ahead of an atomic read-modify-write.
	CauseRMW
	// CauseCapacity is a dequeue forced by a full TSO[S] buffer making
	// room for an incoming store.
	CauseCapacity
	// CauseInterrupt is a dequeue performed by a §6.2 timer interrupt
	// (Config.TickPeriod), which drains the whole buffer.
	CauseInterrupt
	// CauseFinal is the end-of-run flush after every thread finished.
	CauseFinal

	// NumDrainCauses is the number of distinct causes (for sizing
	// per-cause tables).
	NumDrainCauses = int(CauseFinal) + 1
)

func (c DrainCause) String() string {
	switch c {
	case CauseDelta:
		return "delta"
	case CausePolicy:
		return "policy"
	case CauseFence:
		return "fence"
	case CauseRMW:
		return "rmw"
	case CauseCapacity:
		return "capacity"
	case CauseInterrupt:
		return "interrupt"
	case CauseFinal:
		return "final"
	default:
		return fmt.Sprintf("DrainCause(%d)", int(c))
	}
}

// Event is one entry of an execution trace.
type Event struct {
	Tick   uint64
	Thread int
	Kind   EventKind
	Addr   Addr
	Val    Word
	// Cause is meaningful for EvCommit events only: why the store was
	// dequeued.
	Cause DrainCause
	// Enq is meaningful for EvCommit events only: the tick at which the
	// committing store was enqueued, so Tick-Enq is the store's commit
	// latency.
	Enq uint64
}

func (e Event) String() string {
	switch e.Kind {
	case EvFence:
		return fmt.Sprintf("t=%d T%d %s", e.Tick, e.Thread, e.Kind)
	case EvCommit:
		return fmt.Sprintf("t=%d T%d %s [%d]=%d (%s, lat=%d)", e.Tick, e.Thread, e.Kind, e.Addr, e.Val, e.Cause, e.Tick-e.Enq)
	default:
		return fmt.Sprintf("t=%d T%d %s [%d]=%d", e.Tick, e.Thread, e.Kind, e.Addr, e.Val)
	}
}

// Sink consumes the machine's event stream. Sinks are invoked
// synchronously from the machine's scheduling goroutine — never
// concurrently — in attachment order. A sink must not call back into
// the machine.
//
// Implementations that sit on the model's hot path should be
// allocation-free per event (see internal/obs for ring-buffer,
// metrics and Perfetto sinks).
type Sink interface {
	Emit(Event)
}

// RunObserver is an optional extension a Sink may implement to learn
// the run's shape before the first event: thread names (index = thread
// id) and the configured Δ. The machine calls it once at the start of
// Run.
type RunObserver interface {
	BeginRun(threadNames []string, delta uint64)
}

// traceSink is the in-memory sink backing the Config.Trace /
// Machine.Trace API: it simply appends every event.
type traceSink struct {
	events []Event
}

// Emit implements Sink.
//
//tbtso:fencefree
func (s *traceSink) Emit(e Event) { s.events = append(s.events, e) }

// AttachSink registers an additional event sink. It may only be called
// before Run.
func (m *Machine) AttachSink(s Sink) {
	if m.started {
		panic("tso: AttachSink after Run")
	}
	m.sinks = append(m.sinks, s)
}

// emit streams one event to every attached sink. Call sites guard with
// len(m.sinks) so that constructing the Event is the only cost — and
// with no sink attached the event path performs no work and no
// allocation at all (asserted by TestNoSinkZeroAlloc).
func (m *Machine) emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// Trace returns the recorded execution trace (empty unless Config.Trace
// was set). It is only meaningful after Run returns.
func (m *Machine) Trace() []Event {
	if m.tsink == nil {
		return nil
	}
	return m.tsink.events
}
