package tso

import "fmt"

// EventKind classifies trace events.
type EventKind int

const (
	// EvStore records a store enqueued to a store buffer.
	EvStore EventKind = iota
	// EvCommit records a buffered store reaching memory.
	EvCommit
	// EvLoad records a completed load.
	EvLoad
	// EvRMW records a completed atomic read-modify-write.
	EvRMW
	// EvFence records a completed fence.
	EvFence
)

func (k EventKind) String() string {
	switch k {
	case EvStore:
		return "store"
	case EvCommit:
		return "commit"
	case EvLoad:
		return "load"
	case EvRMW:
		return "rmw"
	case EvFence:
		return "fence"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of an execution trace.
type Event struct {
	Tick   uint64
	Thread int
	Kind   EventKind
	Addr   Addr
	Val    Word
}

func (e Event) String() string {
	switch e.Kind {
	case EvFence:
		return fmt.Sprintf("t=%d T%d %s", e.Tick, e.Thread, e.Kind)
	default:
		return fmt.Sprintf("t=%d T%d %s [%d]=%d", e.Tick, e.Thread, e.Kind, e.Addr, e.Val)
	}
}

func (m *Machine) record(e Event) {
	if m.cfg.Trace {
		m.trace = append(m.trace, e)
	}
}

// Trace returns the recorded execution trace (empty unless Config.Trace
// was set). It is only meaningful after Run returns.
func (m *Machine) Trace() []Event { return m.trace }
