package tso

import (
	"math/rand"
	"testing"
)

// TestFastSourceMatchesStdlib pins fastSource's whole contract: for a
// spread of seeds (including the stdlib's 0 → 89482311 special case
// and negative wrap-around), its raw stream and the derived
// rand.Rand draws the scheduler actually uses (Intn coins, Perm
// permutations, Float64 stalls) are bit-identical to
// math/rand.NewSource. Every committed seed-keyed artifact — certs/,
// golden pins, planted-control shrink results — depends on this.
func TestFastSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, 2, 7, 42, 1<<31 - 1, 1 << 31, 1 << 40, -1, -12345, 89482311}
	for s := int64(100); s < 200; s += 7 {
		seeds = append(seeds, s*1000003+11)
	}
	for _, seed := range seeds {
		var fs fastSource
		fs.Seed(seed)
		std := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 2000; i++ {
			if got, want := fs.Uint64(), std.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: fastSource %d != stdlib %d", seed, i, got, want)
			}
		}

		fr := rand.New(&fastSource{})
		fr.Seed(seed)
		sr := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			if got, want := fr.Intn(2), sr.Intn(2); got != want {
				t.Fatalf("seed %d: Intn(2) diverges at draw %d", seed, i)
			}
			if got, want := fr.Float64(), sr.Float64(); got != want {
				t.Fatalf("seed %d: Float64 diverges at draw %d", seed, i)
			}
		}
		fp, sp := fr.Perm(7), sr.Perm(7)
		for i := range fp {
			if fp[i] != sp[i] {
				t.Fatalf("seed %d: Perm diverges: %v vs %v", seed, fp, sp)
			}
		}
	}
}

// TestFastSourceReseed checks Seed fully rewrites the register: a
// reused source re-seeded to s is indistinguishable from a fresh one.
func TestFastSourceReseed(t *testing.T) {
	var a, b fastSource
	a.Seed(3)
	for i := 0; i < 999; i++ {
		a.Uint64()
	}
	a.Seed(17)
	b.Seed(17)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("re-seeded source diverges from fresh source at draw %d", i)
		}
	}
}

func BenchmarkSeedStdlib(b *testing.B) {
	src := rand.NewSource(1)
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
	}
}

func BenchmarkSeedFast(b *testing.B) {
	var src fastSource
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i))
	}
}
