// Package tso implements the TBTSO[Δ] abstract machine of Morrison and
// Afek, "Temporally Bounding TSO for Fence-Free Asymmetric
// Synchronization" (ASPLOS 2015), §2.
//
// The machine extends Sewell et al.'s x86-TSO abstract machine with a
// global clock and a bound Δ on the number of ticks a store may remain
// buffered in a thread's FIFO store buffer before the memory subsystem
// writes it to memory. Setting Δ = 0 disables the bound and yields plain
// (unbounded) TSO, which is the model under which fence-free algorithms
// are unsound; that mode exists so tests can demonstrate the unsoundness.
//
// Threads are ordinary Go functions that receive a *Thread handle and
// issue memory actions through it (Load, Store, CAS, FetchAdd, Swap,
// Fence, Clock). The machine runs threads in deterministic lockstep
// rounds driven by a seeded scheduler: each round the clock advances by
// one tick and, per the model, at most one action is executed for each
// thread — either an instruction the thread issued or a store-buffer
// dequeue performed on its behalf by the memory subsystem.
//
// Atomic read-modify-write operations are modeled with the global memory
// subsystem lock: the thread acquires the lock, the memory subsystem
// drains the thread's store buffer one entry per tick, and then the
// read-modify-write executes against memory and releases the lock. While
// the lock is held, other threads' reads and dequeues are blocked, which
// models the serialization cost of atomic operations. The final
// read+write+unlock is collapsed into a single tick; this is harmless
// because no other thread can observe memory while the lock is held.
package tso

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Addr is a word address in machine memory.
type Addr uint64

// Word is the unit of storage; all machine memory operations act on
// whole words.
type Word uint64

// DrainPolicy selects how eagerly the memory subsystem voluntarily
// dequeues buffered stores (beyond the dequeues forced by the Δ bound,
// fences and atomic operations).
type DrainPolicy int

const (
	// DrainRandom dequeues each thread's oldest buffered store with
	// probability 1/2 per tick. This is the default; it explores a broad
	// range of admissible TSO behaviours.
	DrainRandom DrainPolicy = iota
	// DrainEager dequeues whenever a buffer is nonempty. Store/load
	// reordering windows are minimal, approximating a write-through
	// machine.
	DrainEager
	// DrainAdversarial never dequeues voluntarily: stores stay buffered
	// until the Δ bound forces them out or a fence/atomic drains them.
	// Under Δ = 0 (plain TSO) this policy exhibits unbounded buffering,
	// the behaviour that makes fence-free synchronization unsound.
	DrainAdversarial
)

func (p DrainPolicy) String() string {
	switch p {
	case DrainRandom:
		return "random"
	case DrainEager:
		return "eager"
	case DrainAdversarial:
		return "adversarial"
	default:
		return fmt.Sprintf("DrainPolicy(%d)", int(p))
	}
}

// Config parameterizes a Machine.
type Config struct {
	// Delta is the TBTSO bound in ticks: a store enqueued at tick t0 is
	// guaranteed to be in memory by tick t0+Delta. Zero means unbounded
	// (plain TSO).
	Delta uint64
	// BufferCap, if nonzero, bounds each store buffer to S entries —
	// the TSO[S] model of Morrison and Afek's earlier work [29], which
	// §8 contrasts with TBTSO: a store must drain before an S+1'th
	// store can enqueue, but a store can still stay buffered for an
	// unbounded TIME if the thread issues no further stores. Combine
	// with Delta=0 and the adversarial policy to reproduce exactly the
	// behaviour that makes TSO[S] unsuitable for nonblocking fence-free
	// algorithms.
	BufferCap int
	// TickPeriod, if nonzero, models the §6.2 OS support: every
	// TickPeriod ticks each thread receives a "timer interrupt" — a
	// user/kernel transition that drains its entire store buffer (x86
	// semantics, Intel SDM §11.10). Interrupts are phase-staggered
	// across threads as real per-core timers are.
	TickPeriod uint64
	// TickBoard, if nonzero (with TickPeriod set), is the base address
	// of the §6.2 time array A: when thread i's timer interrupt fires,
	// the OS writes the current clock directly to TickBoard+i. Adapted
	// algorithms read A to establish store visibility. Allocate the
	// array with AllocWords(#threads) before Run.
	TickBoard Addr
	// Policy selects the voluntary drain behaviour.
	Policy DrainPolicy
	// Seed drives the deterministic scheduler.
	Seed int64
	// MaxTicks aborts the run if the clock passes it. Zero selects a
	// large default (DefaultMaxTicks).
	MaxTicks uint64
	// StallProb is the per-thread per-tick probability that the
	// scheduler refuses to grant the thread's pending instruction,
	// modeling asynchronous delays (e.g. the thread being scheduled
	// out). Drains forced by Δ still happen. Zero disables stalls.
	StallProb float64
	// DrainMargin is how many ticks before the Δ deadline the machine
	// begins forcing a dequeue, so that short memory-lock hold times
	// cannot push a commit past the deadline. Zero selects
	// DefaultDrainMargin. Ignored when Delta is zero.
	DrainMargin uint64
	// ParallelDrains, if true, lets voluntary and forced dequeues
	// proceed WITHOUT consuming the thread's one action for the tick.
	// The paper's abstract machine charges the dequeue as the thread's
	// action (a modeling simplification); real store buffers drain in
	// parallel with execution, so cost-model experiments
	// (machalg.LookupCost) set this to keep buffered stores from being
	// artificially as expensive as fenced ones. Semantically it only
	// ADDS admissible interleavings of the same actions.
	ParallelDrains bool
	// Monitor, if non-nil, observes memory traffic (used for
	// use-after-free detection by higher layers).
	Monitor Monitor
	// Trace, if true, records an execution trace retrievable via
	// Machine.Trace.
	Trace bool
	// Sinks are event sinks attached before the run starts; each
	// machine event (store/commit/load/rmw/fence) is streamed to every
	// sink in order. Equivalent to calling AttachSink for each.
	Sinks []Sink
}

// DefaultMaxTicks is used when Config.MaxTicks is zero.
const DefaultMaxTicks = 2_000_000

// DefaultDrainMargin is used when Config.DrainMargin is zero.
const DefaultDrainMargin = 16

// Monitor observes the memory traffic of a running machine. All methods
// are invoked from the machine's scheduling goroutine, never
// concurrently.
type Monitor interface {
	// StoreEnqueued is called when a thread buffers a store.
	StoreEnqueued(thread int, a Addr, v Word, tick uint64)
	// StoreCommitted is called when a buffered store reaches memory.
	StoreCommitted(thread int, a Addr, v Word, enqueued, tick uint64)
	// LoadSatisfied is called when a load completes. fromBuffer reports
	// whether the value was forwarded from the thread's own store
	// buffer.
	LoadSatisfied(thread int, a Addr, v Word, fromBuffer bool, tick uint64)
	// RMWExecuted is called when an atomic read-modify-write completes
	// against memory.
	RMWExecuted(thread int, a Addr, old, new Word, tick uint64)
}

// DrainStats breaks the run's commits down by drain cause. Every
// commit has exactly one cause, so the fields sum to Stats.Commits
// (asserted by TestDrainCausesSumToCommits).
type DrainStats struct {
	Delta     uint64 // dequeues forced by the Δ bound
	Policy    uint64 // voluntary dequeues per the drain policy
	Fence     uint64 // dequeues draining the buffer for a fence
	RMW       uint64 // dequeues under the memory lock before an RMW
	Capacity  uint64 // dequeues making room in a full TSO[S] buffer
	Interrupt uint64 // dequeues by §6.2 timer interrupts
	Final     uint64 // end-of-run flush after all threads finished
}

// ByCause returns the count for one cause.
func (d DrainStats) ByCause(c DrainCause) uint64 {
	switch c {
	case CauseDelta:
		return d.Delta
	case CausePolicy:
		return d.Policy
	case CauseFence:
		return d.Fence
	case CauseRMW:
		return d.RMW
	case CauseCapacity:
		return d.Capacity
	case CauseInterrupt:
		return d.Interrupt
	case CauseFinal:
		return d.Final
	default:
		return 0
	}
}

// Total sums all causes; it equals Stats.Commits for a completed run.
func (d DrainStats) Total() uint64 {
	return d.Delta + d.Policy + d.Fence + d.RMW + d.Capacity + d.Interrupt + d.Final
}

func (d *DrainStats) add(c DrainCause) {
	switch c {
	case CauseDelta:
		d.Delta++
	case CausePolicy:
		d.Policy++
	case CauseFence:
		d.Fence++
	case CauseRMW:
		d.RMW++
	case CauseCapacity:
		d.Capacity++
	case CauseInterrupt:
		d.Interrupt++
	case CauseFinal:
		d.Final++
	}
}

// Stats aggregates counters for a completed run.
type Stats struct {
	Loads            uint64     // loads satisfied
	BufferHits       uint64     // loads forwarded from the store buffer
	Stores           uint64     // stores enqueued
	Commits          uint64     // stores written to memory
	RMWs             uint64     // atomic read-modify-writes executed
	Fences           uint64     // fences completed
	ClockReads       uint64     // global clock reads
	Drains           DrainStats // commits broken down by drain cause
	MaxBufOccupancy  int        // maximum store-buffer length observed
	MaxCommitLatency uint64     // maximum ticks any store stayed buffered
}

// Result describes a completed run.
type Result struct {
	Ticks uint64
	Stats Stats
	Err   error
}

// Machine errors.
var (
	// ErrMaxTicks reports that the run was aborted at Config.MaxTicks.
	ErrMaxTicks = errors.New("tso: clock passed MaxTicks before all threads finished")
	// ErrDeltaViolated reports that a store stayed buffered for more
	// than Δ ticks, which means DrainMargin was too small for the
	// program's memory-lock hold times.
	ErrDeltaViolated = errors.New("tso: store commit exceeded the Δ bound (increase DrainMargin)")
)

// errHalted is the sentinel panic value used to unwind thread goroutines
// when the machine halts early.
var errHalted = errors.New("tso: machine halted")

type sbEntry struct {
	addr Addr
	val  Word
	enq  uint64 // tick at which the store was enqueued
}

// storeBuf is a thread's FIFO store buffer: a slice plus a head index,
// so dequeues do not lose the backing array's capacity the way
// re-slicing from the front would. The array resets to index 0 every
// time the buffer empties, which it does constantly under any draining
// policy — steady-state enqueue/dequeue cycles allocate nothing.
type storeBuf struct {
	q    []sbEntry
	head int
}

func (b *storeBuf) size() int         { return len(b.q) - b.head }
func (b *storeBuf) oldest() *sbEntry  { return &b.q[b.head] }
func (b *storeBuf) push(e sbEntry)    { b.q = append(b.q, e) }
func (b *storeBuf) pending() []sbEntry { return b.q[b.head:] }

func (b *storeBuf) pop() sbEntry {
	e := b.q[b.head]
	b.head++
	if b.head == len(b.q) {
		b.q = b.q[:0]
		b.head = 0
	}
	return e
}

func (b *storeBuf) reset() {
	b.q = b.q[:0]
	b.head = 0
}

type opKind int

const (
	opStore opKind = iota
	opLoad
	opCAS
	opFetchAdd
	opSwap
	opFence
	opClock
)

type request struct {
	kind opKind
	addr Addr
	val  Word // store value / CAS new / add delta / swap value
	old  Word // CAS expected
	// locked marks an RMW that has already acquired the memory
	// subsystem lock and is waiting for its buffer to drain.
	locked bool
}

type response struct {
	val Word
	ok  bool
}

type threadState struct {
	name  string
	fn    func(*Thread)
	req   chan *request
	reply chan response // cap 1; the scheduler never has two outstanding replies for one thread
	done  bool
}

// Machine is a TBTSO[Δ] abstract machine. Configure it, Spawn threads
// (or compile a Prog), then Run (or ExecProgram). After a run finishes
// the machine supports inspection (PeekWord, Trace, Result) and can be
// returned to a fresh pre-run state with Reset, reusing its memory,
// store buffers and scheduler scratch across an entire campaign.
type Machine struct {
	cfg    Config
	mem    []Word        // dense machine memory, grown by AllocWords
	memOv  map[Addr]Word // fallback for addresses never covered by AllocWords
	sb     []storeBuf
	holder int // memory subsystem lock holder; -1 if free
	clock  uint64
	rng    *rand.Rand
	src    fastSource // rng's source: stdlib-identical stream, fast re-seeding
	n      int // thread count of the current run (either engine)
	threads []*threadState
	itr     []progThread // direct-execution engine thread states
	interp  bool         // current run uses the direct-execution engine
	pending []*request
	drained []bool  // whether thread's action this tick was a dequeue
	perm    []int   // reusable scheduler permutation (same draws as rand.Perm)
	names   []string // cached "T0","T1",... for ExecProgram's RunObservers
	next    Addr    // bump allocator for AllocWords
	stats   Stats
	sinks    []Sink
	tsink    *traceSink // backs Config.Trace / Machine.Trace
	halted   chan struct{}
	haltErr  error
	haltMu   sync.Mutex
	started  bool
	finished bool
}

// New returns a machine with the given configuration.
func New(cfg Config) *Machine {
	m := &Machine{}
	m.rng = rand.New(&m.src)
	m.Reset(cfg)
	return m
}

// Reset returns the machine to the pre-run state New leaves it in,
// under a new configuration, reusing every internal buffer it can —
// memory, store-buffer arrays, scheduler scratch. One machine can
// therefore be reused across an entire fuzz or bench campaign without
// per-run allocation (TestInterpSteadyStateZeroAlloc pins this). It
// panics if called while a run is in progress.
func (m *Machine) Reset(cfg Config) {
	if m.started && !m.finished {
		panic("tso: Reset during Run")
	}
	if cfg.MaxTicks == 0 {
		cfg.MaxTicks = DefaultMaxTicks
	}
	if cfg.DrainMargin == 0 {
		cfg.DrainMargin = DefaultDrainMargin
	}
	if cfg.Delta > 0 && cfg.DrainMargin >= cfg.Delta {
		cfg.DrainMargin = cfg.Delta / 2
	}
	m.cfg = cfg
	for i := range m.mem {
		m.mem[i] = 0
	}
	clear(m.memOv)
	for i := range m.sb {
		m.sb[i].reset()
	}
	m.holder = -1
	m.clock = 0
	m.rng.Seed(cfg.Seed)
	m.threads = m.threads[:0]
	m.n = 0
	m.next = 1 // address 0 reserved as an obvious "null"
	if len(m.mem) == 0 {
		m.mem = make([]Word, 1)
	}
	m.stats = Stats{}
	m.sinks = m.sinks[:0]
	m.sinks = append(m.sinks, cfg.Sinks...)
	m.tsink = nil
	if cfg.Trace {
		m.tsink = &traceSink{}
		m.sinks = append(m.sinks, m.tsink)
	}
	m.halted = nil // created on demand: only the goroutine engine's threads select on it
	m.haltErr = nil
	m.started = false
	m.finished = false
}

// memLoad reads machine memory: the dense array when the address is in
// range, the overflow map (zero for absent entries) otherwise.
func (m *Machine) memLoad(a Addr) Word {
	if a < Addr(len(m.mem)) {
		return m.mem[a]
	}
	return m.memOv[a]
}

// memStore writes machine memory, spilling to the overflow map for
// addresses outside the dense range.
func (m *Machine) memStore(a Addr, v Word) {
	if a < Addr(len(m.mem)) {
		m.mem[a] = v
		return
	}
	if m.memOv == nil {
		m.memOv = make(map[Addr]Word)
	}
	m.memOv[a] = v
}

// sizeRun (re)dimensions the per-thread scheduler state for a run with
// n threads, reusing prior capacity.
func (m *Machine) sizeRun(n int) {
	m.n = n
	if cap(m.sb) >= n {
		m.sb = m.sb[:n]
	} else {
		m.sb = append(m.sb[:cap(m.sb)], make([]storeBuf, n-cap(m.sb))...)
	}
	if cap(m.pending) >= n {
		m.pending = m.pending[:n]
	} else {
		m.pending = make([]*request, n)
	}
	if cap(m.drained) >= n {
		m.drained = m.drained[:n]
	} else {
		m.drained = make([]bool, n)
	}
	if cap(m.perm) >= n {
		m.perm = m.perm[:n]
	} else {
		m.perm = make([]int, n)
	}
	for i := 0; i < n; i++ {
		m.sb[i].reset()
		m.pending[i] = nil
		m.drained[i] = false
	}
}

// Delta reports the configured bound in ticks (0 = unbounded TSO).
func (m *Machine) Delta() uint64 { return m.cfg.Delta }

// SetMonitor installs a memory-traffic monitor. It may only be called
// before Run; it overrides Config.Monitor.
func (m *Machine) SetMonitor(mon Monitor) {
	if m.started {
		panic("tso: SetMonitor after Run")
	}
	m.cfg.Monitor = mon
}

// SetTickBoard installs the §6.2 time array's base address (normally
// obtained from AllocWords after New, which is why this is a setter
// rather than only a Config field). It may only be called before Run.
func (m *Machine) SetTickBoard(board Addr) {
	if m.started {
		panic("tso: SetTickBoard after Run")
	}
	m.cfg.TickBoard = board
}

// AllocWords reserves n consecutive words of machine memory and returns
// the address of the first. The reservation extends the machine's dense
// memory array, so all allocated addresses are slice-indexed on the hot
// path; only addresses never covered by an allocation fall back to the
// overflow map. It may only be called before Run.
func (m *Machine) AllocWords(n int) Addr {
	if m.started {
		panic("tso: AllocWords after Run")
	}
	a := m.next
	m.next += Addr(n)
	if int(m.next) > len(m.mem) {
		if int(m.next) <= cap(m.mem) {
			m.mem = m.mem[:m.next]
		} else {
			grown := make([]Word, m.next)
			copy(grown, m.mem)
			m.mem = grown
		}
	}
	return a
}

// SetWord initializes machine memory before the run starts.
func (m *Machine) SetWord(a Addr, v Word) {
	if m.started {
		panic("tso: SetWord after Run")
	}
	m.memStore(a, v)
}

// PeekWord reads machine memory. It is intended for setup and post-run
// inspection and is panic-free for any address, including ones no
// AllocWords call ever covered (those read as zero, exactly as an
// uninitialized word does). Calling it while Run or ExecProgram is in
// progress races with the scheduler: the goroutine engine's scheduler
// loop runs concurrently with the caller, so mid-run reads are
// unsynchronized and may observe torn ordering — inspect only after the
// run finishes (Machine.Finished reports that).
func (m *Machine) PeekWord(a Addr) Word { return m.memLoad(a) }

// Finished reports whether a run was started and has completed, i.e.
// the machine is safe to inspect with PeekWord/Trace.
func (m *Machine) Finished() bool { return m.started && m.finished }

// Spawn registers a thread program. Threads are numbered in spawn order
// starting at 0. It may only be called before Run.
func (m *Machine) Spawn(name string, fn func(*Thread)) int {
	if m.started {
		panic("tso: Spawn after Run")
	}
	id := len(m.threads)
	m.threads = append(m.threads, &threadState{
		name:  name,
		fn:    fn,
		req:   make(chan *request),
		reply: make(chan response, 1),
	})
	return id
}

// NumThreads returns the number of spawned threads.
func (m *Machine) NumThreads() int { return len(m.threads) }

// ThreadName returns the name thread i was spawned with.
func (m *Machine) ThreadName(i int) string { return m.threads[i].name }

func (m *Machine) fail(err error) {
	m.haltMu.Lock()
	defer m.haltMu.Unlock()
	if m.haltErr == nil {
		m.haltErr = err
		// halted is nil for direct-execution runs: no thread goroutines
		// wait on it there, the engine loop polls failure() instead.
		if m.halted != nil {
			close(m.halted)
		}
	}
}

func (m *Machine) failure() error {
	m.haltMu.Lock()
	defer m.haltMu.Unlock()
	return m.haltErr
}
