package tso

import (
	"testing"
)

// collectSink gathers events and the BeginRun notification.
type collectSink struct {
	names  []string
	delta  uint64
	events []Event
}

func (s *collectSink) BeginRun(names []string, delta uint64) { s.names, s.delta = names, delta }
func (s *collectSink) Emit(e Event)                          { s.events = append(s.events, e) }

// mixedWorkload drives a machine through every drain cause: buffered
// stores (policy + Δ), fences, RMWs, a capacity-bounded buffer, timer
// interrupts, and an end-of-run flush.
func mixedWorkload(cfg Config) *Machine {
	m := New(cfg)
	a := m.AllocWords(8)
	for i := 0; i < 3; i++ {
		id := i
		m.Spawn("worker", func(t *Thread) {
			for k := 0; k < 40; k++ {
				t.Store(a+Addr(k%8), Word(k+id))
				if k%9 == 8 {
					t.Fence()
				}
				if k%13 == 12 {
					t.CAS(a, 0, Word(k))
				}
				if k%7 == 6 {
					_ = t.Load(a + Addr((k+1)%8))
				}
			}
			// Leave stores buffered so the final flush has work.
			t.Store(a+Addr(id), Word(99+id))
		})
	}
	return m
}

// TestDrainCausesSumToCommits asserts the satellite invariant: every
// commit has exactly one cause, so the per-cause breakdown sums to
// Commits across machine configurations.
func TestDrainCausesSumToCommits(t *testing.T) {
	cfgs := []Config{
		{Delta: 30, Policy: DrainAdversarial, Seed: 1},
		{Delta: 0, Policy: DrainRandom, Seed: 2},
		{Delta: 0, Policy: DrainEager, Seed: 3},
		{Delta: 50, Policy: DrainRandom, Seed: 4, BufferCap: 2},
		{Delta: 0, Policy: DrainAdversarial, Seed: 5, BufferCap: 3},
		{Delta: 80, Policy: DrainAdversarial, Seed: 6, TickPeriod: 25},
		{Delta: 40, Policy: DrainRandom, Seed: 7, StallProb: 0.2},
	}
	for _, cfg := range cfgs {
		res := mixedWorkload(cfg).Run()
		if res.Err != nil {
			t.Fatalf("cfg %+v: %v", cfg, res.Err)
		}
		if res.Stats.Commits != res.Stats.Stores {
			t.Errorf("cfg %+v: %d commits for %d stores", cfg, res.Stats.Commits, res.Stats.Stores)
		}
		if got := res.Stats.Drains.Total(); got != res.Stats.Commits {
			t.Errorf("cfg %+v: drain causes sum to %d, want Commits=%d (%+v)",
				cfg, got, res.Stats.Commits, res.Stats.Drains)
		}
	}
}

// TestDrainCauseAttribution checks that specific configurations route
// commits to the causes the model says they must.
func TestDrainCauseAttribution(t *testing.T) {
	// Adversarial + Δ: drains are Δ-forced (or fence/RMW/final), never policy.
	res := mixedWorkload(Config{Delta: 30, Policy: DrainAdversarial, Seed: 1}).Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.Drains.Policy != 0 {
		t.Errorf("adversarial policy recorded %d policy drains", res.Stats.Drains.Policy)
	}
	if res.Stats.Drains.Delta == 0 {
		t.Error("adversarial + Δ recorded no Δ-forced drains")
	}

	// TSO[S] under adversarial drains with no Δ: only capacity, fence,
	// RMW and final drains are possible.
	res = mixedWorkload(Config{Delta: 0, Policy: DrainAdversarial, Seed: 2, BufferCap: 2}).Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	d := res.Stats.Drains
	if d.Capacity == 0 {
		t.Error("TSO[S=2] recorded no capacity drains")
	}
	if d.Delta != 0 || d.Policy != 0 || d.Interrupt != 0 {
		t.Errorf("unexpected causes under TSO[S] adversarial: %+v", d)
	}

	// Timer interrupts drain buffers.
	res = mixedWorkload(Config{Delta: 0, Policy: DrainAdversarial, Seed: 3, TickPeriod: 20}).Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.Drains.Interrupt == 0 {
		t.Error("TickPeriod=20 recorded no interrupt drains")
	}
}

// TestSinkSeesTraceEvents asserts an attached sink observes exactly the
// event stream the legacy Config.Trace API records, and that BeginRun
// delivers thread names and Δ.
func TestSinkSeesTraceEvents(t *testing.T) {
	sink := &collectSink{}
	cfg := Config{Delta: 40, Policy: DrainRandom, Seed: 11, Trace: true, Sinks: []Sink{sink}}
	m := mixedWorkload(cfg)
	res := m.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	tr := m.Trace()
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	if len(sink.events) != len(tr) {
		t.Fatalf("sink saw %d events, trace recorded %d", len(sink.events), len(tr))
	}
	for i := range tr {
		if sink.events[i] != tr[i] {
			t.Fatalf("event %d differs: sink %+v trace %+v", i, sink.events[i], tr[i])
		}
	}
	if sink.delta != 40 || len(sink.names) != 3 || sink.names[0] != "worker" {
		t.Fatalf("BeginRun got names=%v delta=%d", sink.names, sink.delta)
	}
	// Commit events must carry a valid cause and enqueue tick.
	commits := 0
	for _, e := range sink.events {
		if e.Kind == EvCommit {
			commits++
			if e.Enq > e.Tick {
				t.Fatalf("commit enqueued at %d after committing at %d", e.Enq, e.Tick)
			}
			if int(e.Cause) < 0 || int(e.Cause) >= NumDrainCauses {
				t.Fatalf("commit with invalid cause %d", e.Cause)
			}
		}
	}
	if uint64(commits) != res.Stats.Commits {
		t.Fatalf("sink saw %d commits, stats say %d", commits, res.Stats.Commits)
	}
}

// TestTraceStillValidatesUnderSinks re-runs the CheckTrace oracle over
// the sink-delivered stream.
func TestTraceStillValidatesUnderSinks(t *testing.T) {
	sink := &collectSink{}
	m := mixedWorkload(Config{Delta: 60, Policy: DrainRandom, Seed: 5, Sinks: []Sink{sink}})
	if res := m.Run(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := CheckTrace(sink.events, 3, 60); err != nil {
		t.Fatalf("sink stream fails the TSO oracle: %v", err)
	}
}

// TestNoSinkZeroAlloc guards the acceptance criterion: with no sink
// attached, the machine's event path allocates nothing. The emit path
// is exercised exactly as the scheduler does — construct the event,
// check the sink count, skip.
func TestNoSinkZeroAlloc(t *testing.T) {
	m := New(Config{Delta: 20, Policy: DrainRandom, Seed: 9})
	allocs := testing.AllocsPerRun(1000, func() {
		if len(m.sinks) > 0 {
			m.emit(Event{Tick: 1, Thread: 0, Kind: EvStore, Addr: 1, Val: 2})
		}
	})
	if allocs != 0 {
		t.Fatalf("no-sink event path allocates %.1f bytes/op, want 0", allocs)
	}
}

// TestEmitWithSinkZeroAlloc asserts that streaming to an allocation-free
// sink allocates nothing per event either (the Event travels by value
// through the interface).
func TestEmitWithSinkZeroAlloc(t *testing.T) {
	m := New(Config{})
	var n int
	m.AttachSink(countSink{&n})
	allocs := testing.AllocsPerRun(1000, func() {
		m.emit(Event{Tick: 1, Thread: 0, Kind: EvLoad, Addr: 3, Val: 4})
	})
	if allocs != 0 {
		t.Fatalf("emit through a no-op sink allocates %.1f bytes/op, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("sink never invoked")
	}
}

type countSink struct{ n *int }

func (c countSink) Emit(Event) { *c.n++ }
