package tso

import "testing"

// Tests for the §6.2 OS-support model: periodic timer interrupts drain
// store buffers and stamp the time array A.

func TestTickPeriodDrainsBuffers(t *testing.T) {
	// Plain TSO + adversarial drains, but with timer interrupts: a
	// store becomes visible within about one period, no fence needed.
	const period = 40
	m := New(Config{Policy: DrainAdversarial, TickPeriod: period, Seed: 1})
	a := m.AllocWords(1)
	var visibleAfter uint64
	var storedAt uint64
	m.Spawn("writer", func(th *Thread) {
		storedAt = th.Clock()
		th.Store(a, 1)
		for i := 0; i < 6*period; i++ {
			th.Yield()
		}
	})
	m.Spawn("reader", func(th *Thread) {
		for {
			if th.Load(a) != 0 {
				visibleAfter = th.Clock() - storedAt
				return
			}
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if visibleAfter == 0 || visibleAfter > 2*period {
		t.Fatalf("store visible after %d ticks, want within ~%d", visibleAfter, period)
	}
}

func TestTickBoardStamped(t *testing.T) {
	const period = 25
	m := New(Config{Policy: DrainAdversarial, TickPeriod: period, Seed: 2})
	board := m.AllocWords(2)
	m.SetTickBoard(board)
	var last Word
	m.Spawn("t0", func(th *Thread) {
		for i := 0; i < 5*period; i++ {
			th.Yield()
		}
		last = th.Load(board)
	})
	m.Spawn("t1", func(th *Thread) {
		for i := 0; i < 5*period; i++ {
			th.Yield()
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if last == 0 {
		t.Fatal("A[0] never stamped")
	}
	if m.PeekWord(board+1) == 0 {
		t.Fatal("A[1] never stamped")
	}
}

func TestTicksAreStaggered(t *testing.T) {
	// Two threads' interrupts should not fire on the same tick (phase
	// offset = period/threads).
	const period = 40
	m := New(Config{Policy: DrainAdversarial, TickPeriod: period, Seed: 3})
	board := m.AllocWords(2)
	m.SetTickBoard(board)
	m.Spawn("t0", func(th *Thread) {
		for i := 0; i < 3*period; i++ {
			th.Yield()
		}
	})
	m.Spawn("t1", func(th *Thread) {
		for i := 0; i < 3*period; i++ {
			th.Yield()
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	a0, a1 := m.PeekWord(board), m.PeekWord(board+1)
	if a0 == a1 {
		t.Fatalf("interrupts not staggered: A = [%d, %d]", a0, a1)
	}
}
