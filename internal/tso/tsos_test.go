package tso

import "testing"

// TSO[S] tests: the spatial bound of [29], which §8 contrasts with
// TBTSO's temporal bound.

func TestTSOSBufferCapEnforced(t *testing.T) {
	m := New(Config{Policy: DrainAdversarial, BufferCap: 4, Seed: 1})
	a := m.AllocWords(16)
	m.Spawn("w", func(th *Thread) {
		for i := 0; i < 12; i++ {
			th.Store(a+Addr(i), 1)
		}
	})
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.Stats.MaxBufOccupancy > 4 {
		t.Fatalf("occupancy %d exceeds S=4", res.Stats.MaxBufOccupancy)
	}
	if res.Stats.Stores != 12 || res.Stats.Commits != 12 {
		t.Fatalf("stores=%d commits=%d", res.Stats.Stores, res.Stats.Commits)
	}
}

func TestTSOSStoreVisibleAfterSMoreStores(t *testing.T) {
	// Under TSO[S], issuing S further stores forces the first one out.
	const s = 3
	m := New(Config{Policy: DrainAdversarial, BufferCap: s, Seed: 2})
	flag := m.AllocWords(1)
	scratch := m.AllocWords(8)
	sawFlag := false
	m.Spawn("writer", func(th *Thread) {
		th.Store(flag, 1)
		for i := 0; i < s; i++ { // push the flag out spatially
			th.Store(scratch+Addr(i), 1)
		}
		for i := 0; i < 200; i++ {
			th.Yield()
		}
	})
	m.Spawn("reader", func(th *Thread) {
		for i := 0; i < 150; i++ {
			if th.Load(flag) != 0 {
				sawFlag = true
				return
			}
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if !sawFlag {
		t.Fatal("S subsequent stores did not force the flag out of the buffer")
	}
}

func TestTSOSDoesNotBoundTime(t *testing.T) {
	// The §8 contrast: under TSO[S] a store from a thread that issues
	// no further stores stays invisible for an unbounded time — exactly
	// why TSO[S] cannot support nonblocking fence-free synchronization
	// and TBTSO can.
	m := New(Config{Policy: DrainAdversarial, BufferCap: 1, Seed: 3})
	flag := m.AllocWords(1)
	saw := false
	m.Spawn("writer", func(th *Thread) {
		th.Store(flag, 1)
		for i := 0; i < 500; i++ {
			th.Yield() // no further stores: nothing pushes the flag out
		}
	})
	m.Spawn("reader", func(th *Thread) {
		for i := 0; i < 400; i++ {
			if th.Load(flag) != 0 {
				saw = true
				return
			}
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if saw {
		t.Fatal("TSO[1] made an idle thread's store visible — spatial bound should not imply temporal bound")
	}
}

func TestTBTSOBeatsTSOSOnIdleThreads(t *testing.T) {
	// Same program, TBTSO[Δ] machine: the flag must appear within Δ.
	m := New(Config{Policy: DrainAdversarial, Delta: 100, Seed: 3})
	flag := m.AllocWords(1)
	saw := false
	m.Spawn("writer", func(th *Thread) {
		th.Store(flag, 1)
		for i := 0; i < 500; i++ {
			th.Yield()
		}
	})
	m.Spawn("reader", func(th *Thread) {
		for i := 0; i < 400; i++ {
			if th.Load(flag) != 0 {
				saw = true
				return
			}
		}
	})
	if res := m.Run(); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if !saw {
		t.Fatal("TBTSO did not deliver the idle thread's store within Δ")
	}
}
