package tso_test

import (
	"fmt"

	"tbtso/internal/tso"
)

// Run the store-buffering litmus test on a plain-TSO machine with
// adversarial drains: both threads read 0, the relaxation that breaks
// the flag principle.
func ExampleMachine_plainTSO() {
	m := tso.New(tso.Config{Policy: tso.DrainAdversarial, Seed: 0})
	x := m.AllocWords(1)
	y := m.AllocWords(1)
	var r0, r1 tso.Word
	m.Spawn("T0", func(th *tso.Thread) {
		th.Store(x, 1)
		r0 = th.Load(y)
	})
	m.Spawn("T1", func(th *tso.Thread) {
		th.Store(y, 1)
		r1 = th.Load(x)
	})
	if res := m.Run(); res.Err != nil {
		fmt.Println("error:", res.Err)
		return
	}
	fmt.Printf("r0=%d r1=%d\n", r0, r1)
	// Output: r0=0 r1=0
}

// The same machine with a Δ bound: a store becomes visible within Δ
// ticks even though the thread never fences.
func ExampleMachine_tbtso() {
	m := tso.New(tso.Config{Delta: 100, Policy: tso.DrainAdversarial, Seed: 0})
	flag := m.AllocWords(1)
	saw := false
	m.Spawn("writer", func(th *tso.Thread) {
		th.Store(flag, 1)
		for i := 0; i < 300; i++ {
			th.Yield() // no fence, no atomics — just time passing
		}
	})
	m.Spawn("reader", func(th *tso.Thread) {
		for i := 0; i < 250; i++ {
			if th.Load(flag) != 0 {
				saw = true
				return
			}
		}
	})
	m.Run()
	fmt.Println("flag observed:", saw)
	// Output: flag observed: true
}
