package tso

// fastSource is a drop-in replacement for math/rand.NewSource's
// generator (the additive lagged-Fibonacci rngSource) producing the
// BIT-IDENTICAL stream for every seed — pinned by
// TestFastSourceMatchesStdlib — with one structural difference: Seed
// is O(1) and register words are materialized lazily, on first read.
//
// Why it exists: the machine re-seeds on every Reset so that
// (program, Config.Seed) fully determines a run. The stdlib seeds by
// walking a 1841-step Lehmer chain through Schrage's algorithm to fill
// all 607 register words up front; profiles showed that re-seeding was
// >60% of total direct-execution campaign time, while a typical run
// draws only a few hundred values — most of the register is filled and
// thrown away. fastSource instead stores the seed and jumps the Lehmer
// chain directly to the three positions backing each word the moment
// that word is first read (x_j = 48271^j·x₀ mod 2³¹−1 via a
// precomputed table of multiplier powers), so a run pays only for the
// register words its draws actually touch.
//
// Replacing the stream itself with a cheaper generator would have been
// faster still, but every committed artifact keyed by a scheduler seed
// (certs/, planted-control shrink results, the DrainRandom golden
// pins) depends on math/rand's stream; fastSource keeps them all
// byte-stable.

const (
	rngLen   = 607
	rngTap   = 273
	rngMask  = 1<<63 - 1
	int32max = 1<<31 - 1
)

// lehmerPow[j] = 48271^j mod (2³¹−1): the jump table for seeding chain
// position j. Word i of the register needs positions 21+3i, 22+3i and
// 23+3i (after the stdlib's 20-step warm-up), so the table spans the
// full 1841-step chain.
var lehmerPow [23 + 3*rngLen + 1]uint64

func init() {
	lehmerPow[0] = 1
	for j := 1; j < len(lehmerPow); j++ {
		lehmerPow[j] = mulmod(lehmerPow[j-1], 48271)
	}
}

// mulmod returns a·b mod (2³¹−1) for a, b < 2³¹, via two
// Mersenne-prime folds of the 62-bit product and one conditional
// subtract — no division.
func mulmod(a, b uint64) uint64 {
	p := a * b
	p = (p & int32max) + (p >> 31)
	p = (p & int32max) + (p >> 31)
	if p >= int32max {
		p -= int32max
	}
	return p
}

type fastSource struct {
	tap, feed int
	x0        uint64 // canonical Lehmer seed of the current generation
	gen       uint32 // current seed generation; vec[i] is live iff vgen[i] == gen
	vec       [rngLen]int64
	vgen      [rngLen]uint32
}

// Seed (re)initializes the generator to the state
// math/rand.NewSource(seed) would hold, in O(1): it canonicalizes the
// seed and invalidates the register by bumping the generation stamp.
// Words are computed on first read by word().
func (s *fastSource) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap

	seed %= int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	s.x0 = uint64(seed)

	s.gen++
	if s.gen == 0 { // stamp wrap-around: stale stamps could read as live
		s.vgen = [rngLen]uint32{}
		s.gen = 1
	}
}

// word returns register word i, materializing it from the seed chain
// on first access: the same three packed Lehmer values XORed with the
// cooked table that rngSource.Seed computes, with the chain entered
// directly at position 21+3i via the jump table.
func (s *fastSource) word(i int) int64 {
	if s.vgen[i] == s.gen {
		return s.vec[i]
	}
	j := 21 + 3*i
	u := mulmod(lehmerPow[j], s.x0) << 40
	u ^= mulmod(lehmerPow[j+1], s.x0) << 20
	u ^= mulmod(lehmerPow[j+2], s.x0)
	v := int64(u) ^ fastRNGCooked[i]
	s.vec[i] = v
	s.vgen[i] = s.gen
	return v
}

// Uint64 returns the next raw 64-bit value of the lagged-Fibonacci
// recurrence, identical to rngSource.Uint64.
func (s *fastSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.word(s.feed) + s.word(s.tap)
	s.vec[s.feed] = x
	s.vgen[s.feed] = s.gen
	return uint64(x)
}

// Int63 implements rand.Source.
func (s *fastSource) Int63() int64 {
	return int64(s.Uint64() & rngMask)
}
